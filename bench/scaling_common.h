#pragma once

// Shared setup for the Fig 4 / Fig 5 scaling benches.
//
// Scale model (DESIGN.md §2): the paper runs the NCNPR query over a 100B-
// fact graph where ~66M UniProt sequences are compared against P29274 on
// 2048-8192 ranks. We generate a structurally identical graph with ~10k
// physical candidate rows and set row_multiplier so the *logical* candidate
// count matches the paper's 66M; rejected rows model the background that
// fails the filter chain, surviving rows (and docking) are real. Per-rank
// critical-path times then land in the paper's regime by construction of
// the calibrated kernel costs, not by hardcoding the totals.

#include <cstdio>

#include "core/workflow.h"

namespace ids::bench {

struct ScalingSetup {
  core::NcnprData data;
  double row_multiplier = 1.0;
  datagen::LifeSciConfig config;
};

/// The paper's scaling workload at laptop scale, sharded for `num_ranks`.
inline ScalingSetup make_scaling_setup(int num_ranks) {
  datagen::LifeSciConfig cfg;
  cfg.num_families = 120;
  cfg.proteins_per_family = 12;
  cfg.num_related_families = 6;
  cfg.compounds_per_family = 60;
  cfg.seq_len_mean = 320;
  cfg.seq_len_jitter = 40;
  cfg.target_min_atoms = 18;
  cfg.target_max_atoms = 24;
  cfg.seed = 20250707;
  cfg.build_keyword_index = false;  // not part of the measured query
  cfg.build_vector_store = false;

  ScalingSetup s;
  s.config = cfg;
  s.data = core::build_ncnpr_data(cfg, num_ranks);

  // Physical (compound, protein) candidate rows ~= reviewed inhibitor
  // edges; scale them up to the paper's ~66M comparisons.
  const double physical_rows =
      static_cast<double>(cfg.num_families * cfg.compounds_per_family) * 2.0 *
      cfg.reviewed_fraction;
  s.row_multiplier = 66.0e6 / physical_rows;
  return s;
}

/// Engine options matching the paper's Cray EX runs at `nodes` nodes
/// (32 ranks/node), with the calibrated operator overhead that produces
/// Fig 4(b)'s scan/join plateau.
inline core::EngineOptions scaling_engine_options(int nodes,
                                                  double row_multiplier) {
  core::EngineOptions opts;
  opts.topology = runtime::Topology::cray_ex(nodes);
  opts.row_multiplier = row_multiplier;
  // Stage populations match the paper: SW/pIC50 run at candidate-set scale
  // (row_multiplier, ~66M logical), DTBA at "thousands of inferences"
  // scale (physical calls x20), docking on the real distinct compounds.
  opts.udf_call_multiplier["ncnpr.dtba"] = 5.0;
  opts.costs.sw_seconds_per_cell = 4.5e-9;  // ~0.46 ms per comparison
  opts.costs.operator_overhead_seconds = 1.35;
  return opts;
}

/// The measured query (§5.1): reviewed proteins -> inhibitor compounds ->
/// SW/pIC50/DTBA filter chain -> docking on the distinct survivors.
inline core::Query scaling_query(const core::NcnprData& data,
                                 bool with_docking) {
  core::NcnprThresholds t;
  t.min_sw_similarity = 0.90;
  t.min_pic50 = 4.5;
  t.min_dtba = 7.0;  // tuned so ~55 distinct compounds reach docking
  return core::make_ncnpr_query(data, t, with_docking);
}

/// Runs one warmup query (no docking) so module-load costs are paid and
/// UDF profiles exist — the paper measures a long-running, profiled
/// instance, and §2.4's optimizations need profile data.
inline void warmup(core::IdsEngine* engine, const core::NcnprData& data) {
  core::Query q = scaling_query(data, /*with_docking=*/false);
  (void)engine->execute(q);
}

inline void print_stage_table(const core::QueryResult& r) {
  std::printf("    %-22s %10s\n", "stage", "seconds");
  for (const auto& st : r.stages) {
    if (st.seconds < 0.0005) continue;
    std::printf("    %-22s %10.2f\n", st.stage.c_str(), st.seconds);
  }
}

}  // namespace ids::bench
