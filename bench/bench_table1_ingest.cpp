// Reproduces Table 1: knowledge-graph dataset characteristics.
//
// The paper's graph integrates seven public RDF sources totalling ≈103 B
// triples / ≈15.6 TB. We regenerate each source at a 1e6 scale divisor
// with matching bytes-per-triple ratios and report both the paper-scale
// spec and the generated measurements (including ingest throughput of the
// sharded in-memory store).

#include <chrono>
#include <cstdio>

#include "common/strings.h"
#include "datagen/sources.h"

int main() {
  using namespace ids;
  constexpr std::uint64_t kScaleDivisor = 1'000'000;
  constexpr int kShards = 64;

  std::printf("=== Table 1: Knowledge Graph Dataset Characteristics ===\n");
  std::printf("(regenerated at 1/%llu scale; paper columns shown for "
              "reference)\n\n",
              static_cast<unsigned long long>(kScaleDivisor));
  std::printf("%-12s %14s %16s | %12s %14s %12s\n", "Dataset",
              "paper raw", "paper triples", "gen triples", "gen raw",
              "ingest s");

  graph::TripleStore store(kShards);
  std::uint64_t total_triples = 0;
  std::uint64_t total_paper_triples = 0;
  double total_seconds = 0;

  std::uint64_t seed = 1;
  for (const auto& spec : datagen::paper_sources()) {
    datagen::SourceStats s =
        datagen::generate_source(&store, spec, kScaleDivisor, seed++);
    std::printf("%-12s %14s %16s | %12llu %14s %12.2f\n", spec.name.c_str(),
                human_bytes(spec.paper_raw_bytes).c_str(),
                human_count(spec.paper_triples).c_str(),
                static_cast<unsigned long long>(s.triples_generated),
                human_bytes(s.raw_bytes_generated).c_str(), s.ingest_seconds);
    total_triples += s.triples_generated;
    total_paper_triples += spec.paper_triples;
    total_seconds += s.ingest_seconds;
  }

  auto t0 = std::chrono::steady_clock::now();
  store.finalize();
  double finalize_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("\npaper total: %s triples; generated %llu triples "
              "(dedup to %zu), %d shards\n",
              human_count(total_paper_triples).c_str(),
              static_cast<unsigned long long>(total_triples),
              store.total_triples(), kShards);
  std::printf("generation %.2f s, index build (3 sort orders) %.2f s, "
              "ingest rate %.0f triples/s\n",
              total_seconds, finalize_s,
              static_cast<double>(total_triples) /
                  (total_seconds + finalize_s));
  return 0;
}
