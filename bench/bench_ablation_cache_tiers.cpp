// Ablation: global cache tier contributions (§3).
//
// Reads a working set of docking-output-sized artifacts under different
// cache configurations and reports where reads were served and at what
// modeled cost:
//   (a) DRAM + SSD tiers (full cache)     (b) DRAM only, no SSD spill
//   (c) remote-only placement (RDMA path) (d) backing store only
// Also exercises node failure + repopulation and the locality query.

#include <cstdio>
#include <string>
#include <vector>

#include "cache/manager.h"
#include "common/rng.h"

int main() {
  using namespace ids;
  std::printf("=== Ablation: cache tier contributions (sec 3) ===\n\n");

  constexpr int kNodes = 4;
  constexpr std::size_t kObjects = 400;
  constexpr std::size_t kObjectBytes = 50'000;  // a Vina output
  constexpr int kReadRounds = 4;

  struct Scenario {
    const char* name;
    cache::CacheConfig config;
    bool remote_reader;  // read from a node that holds no copies
  };

  auto base = [] {
    cache::CacheConfig c;
    c.num_nodes = kNodes;
    c.dram_capacity_bytes = 8ull << 20;   // holds ~160 objects per node
    c.ssd_capacity_bytes = 64ull << 20;
    return c;
  };

  std::vector<Scenario> scenarios;
  scenarios.push_back({"dram+ssd (full)", base(), false});
  {
    auto c = base();
    c.enable_ssd = false;
    scenarios.push_back({"dram only", c, false});
  }
  scenarios.push_back({"remote reads (rdma)", base(), true});
  {
    auto c = base();
    c.dram_capacity_bytes = 1;  // nothing fits: every read goes to backing
    c.enable_ssd = false;
    scenarios.push_back({"backing store only", c, false});
  }

  std::printf("%-22s %12s %9s %9s %9s %9s %9s\n", "configuration",
              "read time s", "l.dram", "l.ssd", "r.dram", "r.ssd", "backing");

  for (auto& sc : scenarios) {
    cache::CacheManager cache(sc.config);
    sim::VirtualClock writer;
    Rng rng(5);
    // Writer on node 0 stores the working set (spilling as needed).
    for (std::size_t i = 0; i < kObjects; ++i) {
      cache.put(writer, 0, "vina/obj" + std::to_string(i),
                std::string(kObjectBytes, 'x'));
    }
    cache.reset_stats();

    sim::VirtualClock reader;
    int reader_node = sc.remote_reader ? 2 : 0;
    for (int round = 0; round < kReadRounds; ++round) {
      for (std::size_t i = 0; i < kObjects; ++i) {
        auto v = cache.get(reader, reader_node, "vina/obj" + std::to_string(i));
        if (!v) std::printf("unexpected miss!\n");
      }
    }
    const auto& st = cache.stats();
    std::printf("%-22s %12.3f %9llu %9llu %9llu %9llu %9llu\n", sc.name,
                sim::to_seconds(reader.now()),
                static_cast<unsigned long long>(st.hits_local_dram),
                static_cast<unsigned long long>(st.hits_local_ssd),
                static_cast<unsigned long long>(st.hits_remote_dram),
                static_cast<unsigned long long>(st.hits_remote_ssd),
                static_cast<unsigned long long>(st.hits_backing));
  }

  // Failure + repopulation drill.
  std::printf("\n--- node failure / repopulation ---\n");
  cache::CacheManager cache(base());
  sim::VirtualClock clock;
  for (std::size_t i = 0; i < 50; ++i) {
    cache.put(clock, 1, "obj" + std::to_string(i), std::string(20'000, 'y'));
  }
  cache.fail_node(1);
  cache.reset_stats();
  sim::VirtualClock reader;
  for (std::size_t i = 0; i < 50; ++i) {
    (void)cache.get(reader, 1, "obj" + std::to_string(i));
  }
  std::printf("after failing node 1: 50 reads -> backing hits=%llu "
              "(authoritative data preserved), re-read cost %.3f s\n",
              static_cast<unsigned long long>(cache.stats().hits_backing),
              sim::to_seconds(reader.now()));
  cache.reset_stats();
  sim::VirtualClock reread;
  for (std::size_t i = 0; i < 50; ++i) {
    (void)cache.get(reread, 1, "obj" + std::to_string(i));
  }
  std::printf("second pass: local DRAM hits=%llu, cost %.3f s "
              "(working set rebuilt)\n",
              static_cast<unsigned long long>(cache.stats().hits_local_dram),
              sim::to_seconds(reread.now()));

  // Locality query demo (the scheduler-facing API).
  int nearest = cache.nearest_node_with("obj0", 3);
  std::printf("\nlocality query: nearest copy of obj0 from node 3 -> node %d\n",
              nearest);
  return 0;
}
