// Kernel microbenchmarks (google-benchmark): the real computational cost
// of every model/substrate kernel on this host. These are wall-clock
// measurements of the actual algorithms (no virtual time), backing the
// per-call magnitudes in §4/§5.1 of the paper: SW <1 ms, pIC50 ~1e-5 s
// (trivially faster here), DTBA per-inference forward pass, docking
// seconds-scale search loops.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "algo/graph_algorithms.h"
#include "cache/manager.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "common/simd.h"
#include "datagen/lifesci.h"
#include "graph/solution.h"
#include "graph/triple_store.h"
#include "models/docking.h"
#include "models/dtba.h"
#include "models/molgen.h"
#include "models/pic50.h"
#include "models/smith_waterman.h"
#include "models/structure.h"
#include "store/vector_store.h"
#include "telemetry/profiler.h"

namespace {

using namespace ids;

/// Pins the SIMD dispatch level for one benchmark's scope (build + timed
/// loop) and restores the previous level on exit. The *Scalar benchmark
/// variants use this so one BENCH_kernels.json recording carries the
/// scalar-vs-dispatched claim directly.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : prev_(simd::active_level()) {
    simd::set_level(level);
  }
  ~ScopedSimdLevel() { simd::set_level(prev_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  simd::Level prev_;
};

void BM_SmithWaterman(benchmark::State& state) {
  Rng rng(1);
  const auto len = static_cast<int>(state.range(0));
  std::string a = datagen::random_protein_sequence(rng, len);
  std::string b = datagen::random_protein_sequence(rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::smith_waterman(a, b));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cells"] = static_cast<double>(len) * len;
}
BENCHMARK(BM_SmithWaterman)->Arg(128)->Arg(350)->Arg(1024);

void BM_SmithWatermanScalar(benchmark::State& state) {
  ScopedSimdLevel scoped(simd::Level::kScalar);
  Rng rng(1);
  const auto len = static_cast<int>(state.range(0));
  std::string a = datagen::random_protein_sequence(rng, len);
  std::string b = datagen::random_protein_sequence(rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::smith_waterman(a, b));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cells"] = static_cast<double>(len) * len;
}
BENCHMARK(BM_SmithWatermanScalar)->Arg(128)->Arg(350)->Arg(1024);

void BM_SwNormalizedSimilarity(benchmark::State& state) {
  Rng rng(2);
  std::string a = datagen::random_protein_sequence(rng, 350);
  std::string b = datagen::mutate_sequence(rng, a, 0.2, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::normalized_similarity(a, b));
  }
}
BENCHMARK(BM_SwNormalizedSimilarity);

void BM_Pic50(benchmark::State& state) {
  double x = 37.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::pic50_from_ic50_nm(x));
  }
}
BENCHMARK(BM_Pic50);

void BM_DtbaPredict(benchmark::State& state) {
  Rng rng(3);
  models::DtbaModel model;
  std::string seq =
      datagen::random_protein_sequence(rng, static_cast<int>(state.range(0)));
  std::string smiles = models::generate_smiles(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(seq, smiles));
  }
}
BENCHMARK(BM_DtbaPredict)->Arg(150)->Arg(350)->Arg(1000);

void BM_StructurePredict(benchmark::State& state) {
  Rng rng(4);
  std::string seq =
      datagen::random_protein_sequence(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::predict_structure(seq));
  }
}
BENCHMARK(BM_StructurePredict)->Arg(150)->Arg(400);

void BM_DockingEnergy(benchmark::State& state) {
  Rng rng(5);
  auto st = models::predict_structure(datagen::random_protein_sequence(rng, 250));
  models::Molecule rec = models::receptor_from_structure(st);
  models::Molecule lig = models::ligand_from_smiles("CCNC(=O)c1ccc1CCOC");
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::interaction_energy(rec, lig));
  }
}
BENCHMARK(BM_DockingEnergy);

void BM_DockingFull(benchmark::State& state) {
  Rng rng(6);
  auto st = models::predict_structure(datagen::random_protein_sequence(rng, 250));
  models::DockingParams p;
  p.exhaustiveness = static_cast<int>(state.range(0));
  models::DockingEngine eng(models::receptor_from_structure(st), p);
  models::Molecule lig = models::ligand_from_smiles("CCNC(=O)c1ccc1CCOCCNCC");
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.dock(lig, seed++));
  }
}
BENCHMARK(BM_DockingFull)->Arg(1)->Arg(8);

void BM_TripleScan(benchmark::State& state) {
  graph::TripleStore store(1);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    store.add_ids({1 + rng.next_below(5000), 100 + rng.next_below(10),
                   1 + rng.next_below(5000)});
  }
  store.finalize();
  graph::TriplePattern q{graph::PatternTerm::Var("s"),
                         graph::PatternTerm::Const(101),
                         graph::PatternTerm::Var("o")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.shard(0).count(q));
  }
  state.counters["triples"] = 100000;
}
BENCHMARK(BM_TripleScan);

void BM_VectorTopK(benchmark::State& state) {
  store::VectorStore vs(1, 128);
  Rng rng(8);
  for (graph::TermId id = 1; id <= 10000; ++id) {
    std::vector<float> v(128);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    vs.add(id, v);
  }
  std::vector<float> q(128);
  for (auto& x : q) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(vs.topk_shard(0, q, 10, store::Metric::kCosine));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_VectorTopK);

void BM_CachePutGet(benchmark::State& state) {
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.dram_capacity_bytes = 256ull << 20;
  cache::CacheManager cache(cc);
  sim::VirtualClock clock;
  cache.put(clock, 0, "obj", std::string(50'000, 'x'));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(clock, 0, "obj"));
  }
}
BENCHMARK(BM_CachePutGet);

// The cost of the live observability plane on an instrumented hot path:
// the same cache-get loop (ProfileScope inside CacheManager::get, tier
// counters on every hit) with the sampling profiler fully off (Arg 0) and
// fully on — scopes collected, sampler thread ticking (Arg 1). tools/
// bench.sh gates the on/off ratio at <5%; the off case is one relaxed
// atomic load per scope, the on case two shadow-stack stores plus a
// 97 Hz sampler that never locks against the mutator on this path.
void BM_TelemetryOverhead(benchmark::State& state) {
  const bool profiled = state.range(0) != 0;
  auto& profiler = telemetry::Profiler::global();
  cache::CacheConfig cc;
  cc.dram_capacity_bytes = 256ull << 20;
  cache::CacheManager cache(cc);
  sim::VirtualClock clock;
  cache.put(clock, 0, "obj", std::string(50'000, 'x'));
  if (profiled) {
    profiler.start();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(clock, 0, "obj"));
  }
  if (profiled) {
    profiler.stop();
    state.counters["profile_samples"] =
        static_cast<double>(profiler.samples_total());
    profiler.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1);

void BM_PageRank(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::TripleStore store(8);
  Rng rng(10);
  for (int i = 0; i < n * 4; ++i) {
    store.add("v" + std::to_string(rng.next_below(n)), "edge",
              "v" + std::to_string(rng.next_below(n)));
  }
  store.finalize();
  runtime::Topology topo = runtime::Topology::laptop(8);
  for (auto _ : state) {
    algo::PageRankOptions opts;
    opts.max_iterations = 10;
    benchmark::DoNotOptimize(algo::pagerank(store, topo, graph::kInvalidTerm,
                                            opts));
  }
  state.counters["edges"] = n * 4;
}
BENCHMARK(BM_PageRank)->Arg(500)->Arg(5000);

void BM_ConnectedComponents(benchmark::State& state) {
  graph::TripleStore store(8);
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    store.add("v" + std::to_string(rng.next_below(1000)), "edge",
              "v" + std::to_string(rng.next_below(1000)));
  }
  store.finalize();
  runtime::Topology topo = runtime::Topology::laptop(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::connected_components(store, topo));
  }
}
BENCHMARK(BM_ConnectedComponents);

void BM_MutateSequence(benchmark::State& state) {
  Rng rng(9);
  std::string base = datagen::random_protein_sequence(rng, 350);
  for (auto _ : state) {
    benchmark::DoNotOptimize(datagen::mutate_sequence(rng, base, 0.1, 0.01));
  }
}
BENCHMARK(BM_MutateSequence);

// ---- Old-vs-new kernel comparisons ---------------------------------------
// Each pair benchmarks the pre-batch-kernel implementation (reconstructed
// here as a baseline) against the engine's current kernel on identical
// inputs, so BENCH_kernels.json records the speedup directly.

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// Single-accumulator loops, as vector_store.cpp/ivf_index.cpp wrote them
// before the shared 4-way kernels. The serial dependence chain is the
// baseline being measured; DoNotOptimize on the accumulator is not needed
// because the result feeds the benchmark sink.
float dot_scalar(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float l2sq_scalar(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void BM_DotScalar(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto a = random_floats(dim, 21);
  auto b = random_floats(dim, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dot_scalar(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_DotScalar)->Arg(128)->Arg(512);

void BM_DotKernel(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto a = random_floats(dim, 21);
  auto b = random_floats(dim, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::dot(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_DotKernel)->Arg(128)->Arg(512);

void BM_L2Scalar(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto a = random_floats(dim, 23);
  auto b = random_floats(dim, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(l2sq_scalar(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_L2Scalar)->Arg(128)->Arg(512);

void BM_L2Kernel(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto a = random_floats(dim, 23);
  auto b = random_floats(dim, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::l2sq(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_L2Kernel)->Arg(128)->Arg(512);

// ---- Batched multi-row scan kernels (ISSUE 7) ---------------------------
// One query against a contiguous row-major candidate block — the
// VectorStore::topk_shard / IvfIndex inner loop. The *Scalar variants pin
// the dispatch level so the recording carries scalar-vs-SIMD directly.

constexpr std::size_t kBatchRows = 4096;

void run_dot_batch(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto rows = random_floats(kBatchRows * dim, 25);
  auto q = random_floats(dim, 26);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    simd::dot_batch(q.data(), rows.data(), kBatchRows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatchRows * dim));
}

void BM_DotBatch(benchmark::State& state) { run_dot_batch(state); }
BENCHMARK(BM_DotBatch)->Arg(128)->Arg(512);

void BM_DotBatchScalar(benchmark::State& state) {
  ScopedSimdLevel scoped(simd::Level::kScalar);
  run_dot_batch(state);
}
BENCHMARK(BM_DotBatchScalar)->Arg(128)->Arg(512);

void run_l2_batch(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto rows = random_floats(kBatchRows * dim, 27);
  auto q = random_floats(dim, 28);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    simd::l2sq_batch(q.data(), rows.data(), kBatchRows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatchRows * dim));
}

void BM_L2Batch(benchmark::State& state) { run_l2_batch(state); }
BENCHMARK(BM_L2Batch)->Arg(128)->Arg(512);

void BM_L2BatchScalar(benchmark::State& state) {
  ScopedSimdLevel scoped(simd::Level::kScalar);
  run_l2_batch(state);
}
BENCHMARK(BM_L2BatchScalar)->Arg(128)->Arg(512);

/// A solution table shaped like the engine's mid-query state: three id
/// columns, one numeric column.
graph::SolutionTable make_shuffle_table(std::size_t rows) {
  graph::SolutionTable t{{"a", "b", "c"}, {"score"}};
  Rng rng(31);
  t.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    graph::TermId ids[3] = {rng.next_u64(), rng.next_u64(), rng.next_u64()};
    double num = rng.uniform(0.0, 1.0);
    t.append_row(ids, {&num, 1});
  }
  return t;
}

// Sizes model per-rank table parts: workloads here shard 1e4-1e5 rows over
// 8-256 ranks, so a part is thousands of rows and its columns sit in L2,
// where the per-destination gathers stream. (Far beyond L2 the gather's
// repeated sparse passes over the source column converge with the per-row
// walk; per-part sizes never reach that regime.)
void BM_ShufflePerRow(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  constexpr int kParts = 16;
  graph::SolutionTable table = make_shuffle_table(rows);
  for (auto _ : state) {
    std::vector<graph::SolutionTable> out(kParts, table.empty_like());
    for (std::size_t row = 0; row < rows; ++row) {
      auto dst = static_cast<std::size_t>(mix64(table.id_at(row, 0)) % kParts);
      out[dst].append_row_from(table, row);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ShufflePerRow)->Arg(1 << 12)->Arg(1 << 14);

void BM_ShuffleBatch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  constexpr int kParts = 16;
  graph::SolutionTable table = make_shuffle_table(rows);
  std::vector<int> dsts(rows);
  for (auto _ : state) {
    std::vector<graph::SolutionTable> out(kParts, table.empty_like());
    const auto& keys = table.id_col(0);
    for (std::size_t row = 0; row < rows; ++row) {
      dsts[row] = static_cast<int>(mix64(keys[row]) % kParts);
    }
    auto lists = graph::SolutionTable::partition_rows(dsts, kParts);
    for (int d = 0; d < kParts; ++d) {
      if (!lists[static_cast<std::size_t>(d)].empty()) {
        out[static_cast<std::size_t>(d)].append_rows_from(
            table, lists[static_cast<std::size_t>(d)]);
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ShuffleBatch)->Arg(1 << 12)->Arg(1 << 14);

/// Build keys with ~4 rows per key (the engine's typical join fan-in) and
/// probe keys drawn from the same domain.
void make_join_keys(std::size_t n, std::vector<std::uint64_t>* build,
                    std::vector<std::uint64_t>* probe) {
  Rng rng(41);
  build->resize(n);
  probe->resize(n);
  const std::uint64_t domain = n / 4 + 1;
  for (auto& k : *build) k = rng.next_below(domain);
  for (auto& k : *probe) k = rng.next_below(domain);
}

void BM_JoinIndexMultimap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> build, probe;
  make_join_keys(n, &build, &probe);
  for (auto _ : state) {
    std::unordered_multimap<std::uint64_t, std::size_t> index;
    index.reserve(n);
    for (std::size_t i = 0; i < n; ++i) index.emplace(build[i], i);
    std::size_t produced = 0;
    for (std::uint64_t key : probe) {
      auto [lo, hi] = index.equal_range(key);
      for (auto it = lo; it != hi; ++it) produced += it->second;
    }
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JoinIndexMultimap)->Arg(1 << 14)->Arg(1 << 17);

void BM_JoinIndexFlat(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> build, probe;
  make_join_keys(n, &build, &probe);
  for (auto _ : state) {
    FlatGroupIndex index(build);
    std::size_t produced = 0;
    for (std::uint64_t key : probe) {
      for (std::uint32_t row : index.probe(key)) produced += row;
    }
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JoinIndexFlat)->Arg(1 << 14)->Arg(1 << 17);

// Probe-side only (index built outside the timed loop): the group-scan
// metadata walk is the measured path, at the dispatched vs scalar level.
void run_flat_group_probe(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> build, probe;
  make_join_keys(n, &build, &probe);
  FlatGroupIndex index(build);
  for (auto _ : state) {
    std::size_t produced = 0;
    for (std::uint64_t key : probe) {
      for (std::uint32_t row : index.probe(key)) produced += row;
    }
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_FlatGroupProbe(benchmark::State& state) { run_flat_group_probe(state); }
BENCHMARK(BM_FlatGroupProbe)->Arg(1 << 14)->Arg(1 << 17);

void BM_FlatGroupProbeScalar(benchmark::State& state) {
  ScopedSimdLevel scoped(simd::Level::kScalar);
  run_flat_group_probe(state);
}
BENCHMARK(BM_FlatGroupProbeScalar)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace

#ifndef IDS_BENCH_BUILD_TYPE
#define IDS_BENCH_BUILD_TYPE "unspecified"
#endif

// Custom main instead of BENCHMARK_MAIN(): stamps provenance (build type,
// SIMD dispatch level) into the JSON context, so a committed
// BENCH_kernels.json can always be traced to the binary that produced it.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("ids_build_type", IDS_BENCH_BUILD_TYPE);
  benchmark::AddCustomContext(
      "ids_simd_level", ids::simd::level_name(ids::simd::active_level()));
  benchmark::AddCustomContext(
      "ids_simd_detected", ids::simd::level_name(ids::simd::detected_level()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
