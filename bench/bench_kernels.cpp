// Kernel microbenchmarks (google-benchmark): the real computational cost
// of every model/substrate kernel on this host. These are wall-clock
// measurements of the actual algorithms (no virtual time), backing the
// per-call magnitudes in §4/§5.1 of the paper: SW <1 ms, pIC50 ~1e-5 s
// (trivially faster here), DTBA per-inference forward pass, docking
// seconds-scale search loops.

#include <benchmark/benchmark.h>

#include "algo/graph_algorithms.h"
#include "cache/manager.h"
#include "common/rng.h"
#include "datagen/lifesci.h"
#include "graph/triple_store.h"
#include "models/docking.h"
#include "models/dtba.h"
#include "models/molgen.h"
#include "models/pic50.h"
#include "models/smith_waterman.h"
#include "models/structure.h"
#include "store/vector_store.h"

namespace {

using namespace ids;

void BM_SmithWaterman(benchmark::State& state) {
  Rng rng(1);
  const auto len = static_cast<int>(state.range(0));
  std::string a = datagen::random_protein_sequence(rng, len);
  std::string b = datagen::random_protein_sequence(rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::smith_waterman(a, b));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cells"] = static_cast<double>(len) * len;
}
BENCHMARK(BM_SmithWaterman)->Arg(128)->Arg(350)->Arg(1024);

void BM_SwNormalizedSimilarity(benchmark::State& state) {
  Rng rng(2);
  std::string a = datagen::random_protein_sequence(rng, 350);
  std::string b = datagen::mutate_sequence(rng, a, 0.2, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::normalized_similarity(a, b));
  }
}
BENCHMARK(BM_SwNormalizedSimilarity);

void BM_Pic50(benchmark::State& state) {
  double x = 37.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::pic50_from_ic50_nm(x));
  }
}
BENCHMARK(BM_Pic50);

void BM_DtbaPredict(benchmark::State& state) {
  Rng rng(3);
  models::DtbaModel model;
  std::string seq =
      datagen::random_protein_sequence(rng, static_cast<int>(state.range(0)));
  std::string smiles = models::generate_smiles(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(seq, smiles));
  }
}
BENCHMARK(BM_DtbaPredict)->Arg(150)->Arg(350)->Arg(1000);

void BM_StructurePredict(benchmark::State& state) {
  Rng rng(4);
  std::string seq =
      datagen::random_protein_sequence(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::predict_structure(seq));
  }
}
BENCHMARK(BM_StructurePredict)->Arg(150)->Arg(400);

void BM_DockingEnergy(benchmark::State& state) {
  Rng rng(5);
  auto st = models::predict_structure(datagen::random_protein_sequence(rng, 250));
  models::Molecule rec = models::receptor_from_structure(st);
  models::Molecule lig = models::ligand_from_smiles("CCNC(=O)c1ccc1CCOC");
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::interaction_energy(rec, lig));
  }
}
BENCHMARK(BM_DockingEnergy);

void BM_DockingFull(benchmark::State& state) {
  Rng rng(6);
  auto st = models::predict_structure(datagen::random_protein_sequence(rng, 250));
  models::DockingParams p;
  p.exhaustiveness = static_cast<int>(state.range(0));
  models::DockingEngine eng(models::receptor_from_structure(st), p);
  models::Molecule lig = models::ligand_from_smiles("CCNC(=O)c1ccc1CCOCCNCC");
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.dock(lig, seed++));
  }
}
BENCHMARK(BM_DockingFull)->Arg(1)->Arg(8);

void BM_TripleScan(benchmark::State& state) {
  graph::TripleStore store(1);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    store.add_ids({1 + rng.next_below(5000), 100 + rng.next_below(10),
                   1 + rng.next_below(5000)});
  }
  store.finalize();
  graph::TriplePattern q{graph::PatternTerm::Var("s"),
                         graph::PatternTerm::Const(101),
                         graph::PatternTerm::Var("o")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.shard(0).count(q));
  }
  state.counters["triples"] = 100000;
}
BENCHMARK(BM_TripleScan);

void BM_VectorTopK(benchmark::State& state) {
  store::VectorStore vs(1, 128);
  Rng rng(8);
  for (graph::TermId id = 1; id <= 10000; ++id) {
    std::vector<float> v(128);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    vs.add(id, v);
  }
  std::vector<float> q(128);
  for (auto& x : q) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(vs.topk_shard(0, q, 10, store::Metric::kCosine));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_VectorTopK);

void BM_CachePutGet(benchmark::State& state) {
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.dram_capacity_bytes = 256ull << 20;
  cache::CacheManager cache(cc);
  sim::VirtualClock clock;
  cache.put(clock, 0, "obj", std::string(50'000, 'x'));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(clock, 0, "obj"));
  }
}
BENCHMARK(BM_CachePutGet);

void BM_PageRank(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::TripleStore store(8);
  Rng rng(10);
  for (int i = 0; i < n * 4; ++i) {
    store.add("v" + std::to_string(rng.next_below(n)), "edge",
              "v" + std::to_string(rng.next_below(n)));
  }
  store.finalize();
  runtime::Topology topo = runtime::Topology::laptop(8);
  for (auto _ : state) {
    algo::PageRankOptions opts;
    opts.max_iterations = 10;
    benchmark::DoNotOptimize(algo::pagerank(store, topo, graph::kInvalidTerm,
                                            opts));
  }
  state.counters["edges"] = n * 4;
}
BENCHMARK(BM_PageRank)->Arg(500)->Arg(5000);

void BM_ConnectedComponents(benchmark::State& state) {
  graph::TripleStore store(8);
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    store.add("v" + std::to_string(rng.next_below(1000)), "edge",
              "v" + std::to_string(rng.next_below(1000)));
  }
  store.finalize();
  runtime::Topology topo = runtime::Topology::laptop(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::connected_components(store, topo));
  }
}
BENCHMARK(BM_ConnectedComponents);

void BM_MutateSequence(benchmark::State& state) {
  Rng rng(9);
  std::string base = datagen::random_protein_sequence(rng, 350);
  for (auto _ : state) {
    benchmark::DoNotOptimize(datagen::mutate_sequence(rng, base, 0.1, 0.01));
  }
}
BENCHMARK(BM_MutateSequence);

}  // namespace

BENCHMARK_MAIN();
