// Reproduces Figure 4 (a) and (b): NCNPR drug-repurposing query scaling
// at 64/128/256 nodes (2048/4096/8192 ranks).
//
// Paper reference values (§5.2):
//   total query time:      86 s / 72 s / 62 s
//   excluding docking:     43 s / 29 s / 19 s
//   docking dominates and does not scale (≈55 compounds, 31-44 s each,
//   thousands of idle ranks); FILTER scales well; scan/join/merge stop
//   scaling beyond ~128 nodes.

#include <cstdio>

#include "scaling_common.h"

int main() {
  using namespace ids;
  std::printf("=== Figure 4: NCNPR drug re-purposing query scaling ===\n");
  std::printf("paper: total 86/72/62 s at 64/128/256 nodes; "
              "excluding docking 43/29/19 s\n\n");

  struct Row {
    int nodes;
    double total, docking, excluding, filter, scanjoin;
    std::size_t compounds;
  };
  std::vector<Row> rows;

  for (int nodes : {64, 128, 256}) {
    bench::ScalingSetup setup =
        bench::make_scaling_setup(32 * nodes);  // 32 ranks/node
    core::EngineOptions opts =
        bench::scaling_engine_options(nodes, setup.row_multiplier);
    core::IdsEngine engine(opts, setup.data.triples.get(),
                           setup.data.features.get());
    core::register_ncnpr_udfs(&engine, setup.data);
    bench::warmup(&engine, setup.data);

    core::Query q = bench::scaling_query(setup.data, /*with_docking=*/true);
    core::QueryResult r = engine.execute(q);

    Row row;
    row.nodes = nodes;
    row.total = r.total_seconds;
    row.docking = r.stage_seconds("invoke:ncnpr.dock");
    row.excluding = r.seconds_excluding("invoke:ncnpr.dock");
    row.filter = r.stage_seconds("filter");
    row.scanjoin = r.stage_seconds("scan") + r.stage_seconds("join") +
                   r.stage_seconds("distinct") + r.stage_seconds("gather");
    row.compounds = r.rows_invoked;
    rows.push_back(row);

    std::printf("--- %d nodes (%d ranks), %zu compounds docked ---\n", nodes,
                32 * nodes, row.compounds);
    bench::print_stage_table(r);
    std::printf("\n");
  }

  std::printf("=== Fig 4(a): end-to-end query time ===\n");
  std::printf("%8s %12s %12s %14s\n", "nodes", "total (s)", "docking (s)",
              "excl. dock (s)");
  for (const auto& r : rows) {
    std::printf("%8d %12.1f %12.1f %14.1f\n", r.nodes, r.total, r.docking,
                r.excluding);
  }

  std::printf("\n=== Fig 4(b): stage breakdown ===\n");
  std::printf("%8s %14s %12s %14s\n", "nodes", "scan/join (s)", "filter (s)",
              "docking (s)");
  for (const auto& r : rows) {
    std::printf("%8d %14.1f %12.1f %14.1f\n", r.nodes, r.scanjoin, r.filter,
                r.docking);
  }

  // Shape assertions (who wins / how it scales), printed as a verdict so
  // regressions are obvious in CI logs.
  bool docking_dominates = true;
  bool docking_flat = rows.back().docking > 0.7 * rows.front().docking;
  bool nondock_scales = rows.back().excluding < rows.front().excluding;
  bool total_decreases = rows.back().total < rows.front().total;
  for (const auto& r : rows) {
    docking_dominates &= r.docking > r.excluding * 0.8;
  }
  std::printf("\nshape check: docking dominates=%s, docking flat=%s, "
              "non-docking scales=%s, total decreases=%s\n",
              docking_dominates ? "yes" : "NO", docking_flat ? "yes" : "NO",
              nondock_scales ? "yes" : "NO", total_decreases ? "yes" : "NO");
  return 0;
}
