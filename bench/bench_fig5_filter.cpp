// Reproduces Figure 5: NCNPR inner-FILTER times at 64/128/256 nodes.
//
// Paper reference values (§5.2): FILTER (Smith-Waterman + pIC50 + DTBA)
// takes ≈27 / 18.5 / 7.7 s at 64 / 128 / 256 nodes, with visible variance
// in DTBA predictions ("most ≈1 s, some longer").

#include <cstdio>

#include "scaling_common.h"

int main() {
  using namespace ids;
  std::printf("=== Figure 5: NCNPR FILTER stage scaling ===\n");
  std::printf("paper: ~27 / 18.5 / 7.7 s at 64 / 128 / 256 nodes\n\n");

  std::printf("%8s %12s %14s %16s\n", "nodes", "filter (s)", "rebalance (s)",
              "rows survived");
  std::vector<double> filter_times;
  core::QueryResult last;
  udf::UdfStats dtba_stats;

  for (int nodes : {64, 128, 256}) {
    bench::ScalingSetup setup = bench::make_scaling_setup(32 * nodes);
    core::EngineOptions opts =
        bench::scaling_engine_options(nodes, setup.row_multiplier);
    core::IdsEngine engine(opts, setup.data.triples.get(),
                           setup.data.features.get());
    core::register_ncnpr_udfs(&engine, setup.data);
    bench::warmup(&engine, setup.data);

    core::Query q = bench::scaling_query(setup.data, /*with_docking=*/false);
    core::QueryResult r = engine.execute(q);
    filter_times.push_back(r.stage_seconds("filter"));
    std::printf("%8d %12.1f %14.2f %16zu\n", nodes, r.stage_seconds("filter"),
                r.stage_seconds("rebalance"), r.rows_after_filters);
    if (nodes == 256) {
      dtba_stats = engine.profiler().aggregate("ncnpr.dtba");
    }
  }

  // DTBA per-call variance, the phenomenon Fig 5's discussion highlights.
  std::printf("\nDTBA profile at 256 nodes: %llu calls, mean %.2f s/call "
              "(slow tail raises some calls ~7x; see CostProfile)\n",
              static_cast<unsigned long long>(dtba_stats.execs),
              dtba_stats.mean_cost_seconds());

  bool scales = filter_times[0] > filter_times[1] &&
                filter_times[1] > filter_times[2];
  std::printf("\nshape check: FILTER scales with nodes=%s "
              "(%.1f -> %.1f -> %.1f s)\n",
              scales ? "yes" : "NO", filter_times[0], filter_times[1],
              filter_times[2]);
  return 0;
}
