// Reproduces Table 2: NCNPR query times across Smith-Waterman selectivity
// thresholds, without and with the global distributed cache.
//
// Paper reference values (§5.2, 2 compute nodes + memory-server nodes):
//
//   threshold  compounds  uncached (s)  cached (s)
//     0.99        56         47.49         8.99
//     0.90        56         47.66         8.5
//     0.80        57         47.87        10.51
//     0.70        57         47.86         9.06
//     0.60        57         48.08         8.3
//     0.50        57         51.7          9.23
//     0.40        121       358.76        28.93
//     0.20       1129      3847.07       242.85
//
// Shape to reproduce: flat while the candidate set is the target clade,
// superlinear growth as diverse (bigger, slower-docking) compounds enter,
// and a 5-15x end-to-end improvement from caching whose cached time is
// dominated by the per-artifact (de)serialization bottleneck (§8).

#include <cstdio>
#include <memory>

#include "core/workflow.h"

namespace {

ids::datagen::LifeSciConfig table2_config() {
  using namespace ids;
  datagen::LifeSciConfig cfg;
  cfg.num_families = 24;
  cfg.num_related_families = 20;
  cfg.proteins_per_family = 10;
  cfg.compounds_per_family = 55;
  cfg.seq_len_mean = 280;
  cfg.seq_len_jitter = 30;
  cfg.seed = 20251116;
  cfg.build_keyword_index = false;
  cfg.build_vector_store = false;
  // Family 1 sits just above the 0.40 threshold; families 2..20 fill the
  // 0.20-0.40 band, so the sweep admits ~55 -> ~110 -> ~1150 compounds.
  cfg.related_divergences = {0.455};
  for (int f = 2; f <= 20; ++f) {
    cfg.related_divergences.push_back(0.50 +
                                      0.14 * static_cast<double>(f - 2) / 18.0);
  }
  // Off-clade compounds are bigger and dock disproportionately slower.
  cfg.offfamily_min_atoms = 36;
  cfg.offfamily_max_atoms = 68;
  cfg.cross_family_edges = 0.0;  // keep the high-threshold rows flat
  return cfg;
}

}  // namespace

int main() {
  using namespace ids;
  std::printf("=== Table 2: query times vs Smith-Waterman threshold ===\n");
  std::printf("paper: 47.5->3847 s uncached, 9->243 s cached (5-15x)\n\n");

  // The paper's 52-node cluster hosts the cache; the IDS instance for this
  // experiment runs on two compute nodes (2 x 64 ranks), with docking at
  // exhaustiveness 4 (cost rate doubled to keep per-ligand seconds
  // calibrated; see EXPERIMENTS.md).
  const runtime::Topology topo = runtime::Topology::cache_testbed(2, 2);
  models::DockingParams dock_params;
  dock_params.exhaustiveness = 2;

  datagen::LifeSciConfig cfg = table2_config();
  core::NcnprData data = core::build_ncnpr_data(cfg, topo.num_ranks());

  auto run_query = [&](double threshold, cache::CacheManager* cache,
                       bool repeat) {
    core::EngineOptions opts;
    opts.topology = topo;
    opts.costs.docking_seconds_per_unit *= 4.0;  // exhaustiveness 2 vs 8
    opts.cache = cache;
    core::IdsEngine engine(opts, data.triples.get(), data.features.get());
    core::register_ncnpr_udfs(&engine, data, dock_params);

    core::NcnprThresholds t;
    t.min_sw_similarity = threshold;
    t.min_pic50 = 4.0;  // Table 2 sweeps only the SW threshold
    t.min_dtba = 4.0;
    core::Query q =
        core::make_ncnpr_query(data, t, true, /*docking_cached=*/cache != nullptr);
    core::QueryResult r = engine.execute(q);
    if (repeat) r = engine.execute(q);  // the measured, cache-warm pass
    return r;
  };

  std::printf("%12s %10s %18s %16s %9s\n", "Selectivity", "Compounds",
              "w/out caching (s)", "with caching (s)", "speedup");

  for (double threshold : {0.99, 0.90, 0.80, 0.70, 0.60, 0.50, 0.40, 0.20}) {
    core::QueryResult uncached = run_query(threshold, nullptr, false);

    // Fresh cache per threshold row, as in the paper's per-row repeats:
    // first pass populates, second pass measures the cached query.
    cache::CacheConfig cc;
    cc.num_nodes = topo.total_nodes();
    cc.dram_capacity_bytes = 512ull << 20;
    cc.ssd_capacity_bytes = 4ull << 30;
    cc.serialization_service_seconds = 0.21;  // §8 serialization bottleneck
    cache::CacheManager cache(cc);
    core::QueryResult cached = run_query(threshold, &cache, true);

    std::printf("%12.2f %10zu %18.2f %16.2f %8.1fx\n", threshold,
                uncached.rows_invoked, uncached.total_seconds,
                cached.total_seconds,
                uncached.total_seconds / cached.total_seconds);
  }
  return 0;
}
