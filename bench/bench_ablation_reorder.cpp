// Ablation: FILTER chain reordering (§2.4.3).
//
// The NCNPR query deliberately lists its conjuncts most-expensive-first
// (DTBA, then Smith-Waterman, then pIC50). With reordering off, every row
// pays DTBA; with reordering on, profiled runs move the cheap,
// high-rejection conjuncts up front. The result set must be identical.

#include <cstdio>

#include "core/workflow.h"

int main() {
  using namespace ids;
  std::printf("=== Ablation: UDF chain reordering (sec 2.4.3) ===\n\n");

  datagen::LifeSciConfig cfg;
  cfg.num_families = 16;
  cfg.proteins_per_family = 10;
  cfg.num_related_families = 6;
  cfg.compounds_per_family = 24;
  cfg.seq_len_mean = 220;
  cfg.seq_len_jitter = 20;
  cfg.seed = 777;
  cfg.build_keyword_index = false;
  cfg.build_vector_store = false;
  const int ranks = 16;
  core::NcnprData data = core::build_ncnpr_data(cfg, ranks);

  auto run = [&](bool reorder) {
    core::EngineOptions opts;
    opts.topology = runtime::Topology::laptop(ranks);
    opts.reorder_filters = reorder;
    core::IdsEngine engine(opts, data.triples.get(), data.features.get());
    core::register_ncnpr_udfs(&engine, data);
    core::NcnprThresholds t;
    t.min_sw_similarity = 0.9;  // SW prunes hard: reordering should shine
    t.min_pic50 = 5.0;
    t.min_dtba = 7.0;
    core::Query q = core::make_ncnpr_query(data, t, /*with_docking=*/false);
    (void)engine.execute(q);  // warmup builds the profiles reordering needs
    core::QueryResult r = engine.execute(q);
    // Evaluations actually performed per UDF (warm run only is isolated by
    // rerunning on a fresh engine, so subtract the warmup by thirds is not
    // needed: report cumulative and rely on identical warmups).
    udf::UdfStats dtba = engine.profiler().aggregate("ncnpr.dtba");
    udf::UdfStats sw = engine.profiler().aggregate("ncnpr.sw_similarity");
    return std::make_tuple(r.stage_seconds("filter"), r.solutions.num_rows(),
                           dtba.execs, sw.execs);
  };

  auto [t_off, rows_off, dtba_off, sw_off] = run(false);
  auto [t_on, rows_on, dtba_on, sw_on] = run(true);

  std::printf("%-18s %12s %10s %14s %14s\n", "reordering", "filter (s)",
              "rows", "DTBA execs", "SW execs");
  std::printf("%-18s %12.2f %10zu %14llu %14llu\n", "off (as written)", t_off,
              rows_off, static_cast<unsigned long long>(dtba_off),
              static_cast<unsigned long long>(sw_off));
  std::printf("%-18s %12.2f %10zu %14llu %14llu\n", "on (profiled)", t_on,
              rows_on, static_cast<unsigned long long>(dtba_on),
              static_cast<unsigned long long>(sw_on));
  std::printf("\nspeedup %.1fx; identical result sets: %s\n", t_off / t_on,
              rows_off == rows_on ? "yes" : "NO");
  return 0;
}
