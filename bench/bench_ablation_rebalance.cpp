// Ablation: solution re-balancing strategies (§2.4.2).
//
// Part 1 replays the paper's closed-form example (1.4M solutions over 900
// ranks at 100/200/300 ops/s) for count-based vs throughput-based
// targets. Part 2 measures the end-to-end effect inside the engine: a
// UDF-heavy FILTER on a heterogeneous machine under the three policies.
// Part 3 sweeps the heterogeneity spread.

#include <cstdio>

#include "core/engine.h"
#include "core/rebalancer.h"
#include "core/workflow.h"

namespace {

using namespace ids;

void paper_example() {
  std::printf("--- paper worked example: 1.4M solutions, 900 ranks "
              "(500@100, 300@200, 100@300 ops/s) ---\n");
  std::vector<double> tp;
  tp.insert(tp.end(), 500, 100.0);
  tp.insert(tp.end(), 300, 200.0);
  tp.insert(tp.end(), 100, 300.0);
  const std::size_t total = 1'400'000;

  auto count = core::count_based_targets(total, 900);
  auto thru = core::throughput_targets(total, tp);
  std::printf("count-based      completion: %7.2f s\n",
              core::completion_seconds(count, tp));
  std::printf("throughput-based completion: %7.2f s  (assignments "
              "%zu/%zu/%zu per rank class)\n",
              core::completion_seconds(thru, tp), thru[0], thru[500],
              thru[899]);
}

double filter_time(core::RebalancePolicy policy, double fast_speed,
                   core::NcnprData& data, int ranks) {
  core::EngineOptions opts;
  opts.topology = runtime::Topology::laptop(ranks);
  opts.rebalance = policy;
  // Half the ranks run at nominal speed, half at `fast_speed`.
  opts.hetero = runtime::HeteroProfile::groups(
      {{ranks / 2, 1.0}, {ranks - ranks / 2, fast_speed}});
  core::IdsEngine engine(opts, data.triples.get(), data.features.get());

  // A fixed-cost UDF isolates rank heterogeneity from row-content
  // variance: every evaluation costs 50 ms of nominal-rank work.
  engine.registry().register_static(
      "unit_sim", [](const udf::UdfContext&, std::span<const expr::Value>) {
        return udf::UdfResult{true, sim::from_millis(50)};
      });

  core::Query q;
  const auto& dict = data.triples->dict();
  q.patterns.push_back({graph::PatternTerm::Var("cpd"),
                        graph::PatternTerm::Const(
                            *dict.lookup(datagen::Vocab::kInhibits)),
                        graph::PatternTerm::Var("prot")});
  q.filters.push_back(
      expr::Expr::Udf("unit_sim", {expr::Expr::Var("prot")}));

  (void)engine.execute(q);  // warmup: per-rank throughput profiles
  (void)engine.execute(q);
  core::QueryResult r = engine.execute(q);
  return r.stage_seconds("filter") + r.stage_seconds("rebalance");
}

}  // namespace

int main() {
  std::printf("=== Ablation: solution re-balancing (sec 2.4.2) ===\n\n");
  paper_example();

  datagen::LifeSciConfig cfg;
  cfg.num_families = 16;
  cfg.proteins_per_family = 10;
  cfg.num_related_families = 8;
  cfg.compounds_per_family = 24;
  cfg.seq_len_mean = 200;
  cfg.seq_len_jitter = 20;
  cfg.seed = 4242;
  cfg.build_keyword_index = false;
  cfg.build_vector_store = false;
  const int ranks = 16;
  core::NcnprData data = core::build_ncnpr_data(cfg, ranks);

  std::printf("\n--- engine FILTER time under 2x heterogeneity "
              "(%d ranks) ---\n", ranks);
  std::printf("%-22s %10s\n", "policy", "filter s");
  std::printf("%-22s %10.2f\n", "none",
              filter_time(core::RebalancePolicy::kNone, 2.0, data, ranks));
  std::printf("%-22s %10.2f\n", "count-based",
              filter_time(core::RebalancePolicy::kCount, 2.0, data, ranks));
  std::printf("%-22s %10.2f\n", "throughput-based",
              filter_time(core::RebalancePolicy::kThroughput, 2.0, data, ranks));

  std::printf("\n--- heterogeneity sweep (count vs throughput policy) ---\n");
  std::printf("%10s %12s %16s %9s\n", "fast/slow", "count (s)",
              "throughput (s)", "gain");
  for (double spread : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    double c = filter_time(core::RebalancePolicy::kCount, spread, data, ranks);
    double t =
        filter_time(core::RebalancePolicy::kThroughput, spread, data, ranks);
    std::printf("%10.1f %12.2f %16.2f %8.2fx\n", spread, c, t, c / t);
  }
  return 0;
}
