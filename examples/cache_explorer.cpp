// Global shared cache tour (§3): two IDS instances on one cluster share
// simulation artifacts through the multi-tier cache; locality queries
// steer placement; a node failure loses only cached copies.
//
//   $ ./examples/cache_explorer

#include <cstdio>

#include "cache/manager.h"
#include "core/workflow.h"
#include "models/docking.h"
#include "models/molgen.h"
#include "models/structure.h"

using namespace ids;

namespace {

const char* tier_name(cache::TierKind t) {
  return t == cache::TierKind::kDram ? "DRAM" : "SSD";
}

void show_locations(const cache::CacheManager& cache, const std::string& key) {
  auto locs = cache.locations(key);
  std::printf("  %-28s ->", key.c_str());
  if (locs.empty()) std::printf(" (backing store only)");
  for (const auto& l : locs) {
    std::printf(" node%d/%s", l.node, tier_name(l.tier));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A 4-node cache: 2 compute nodes (0, 1) + 2 memory-server nodes (2, 3),
  // like the paper's cache testbed.
  cache::CacheConfig cc;
  cc.num_nodes = 4;
  cc.dram_capacity_bytes = 1ull << 20;  // small, to make spills visible
  cc.ssd_capacity_bytes = 16ull << 20;
  cache::CacheManager cache(cc);

  // Instance A (a research group on compute node 0) runs dockings and
  // stashes the full outputs as named artifacts.
  Rng rng(11);
  auto structure =
      models::predict_structure(datagen::random_protein_sequence(rng, 220));
  models::DockingEngine docker(models::receptor_from_structure(structure));

  std::printf("--- instance A docks 12 ligands and stashes the outputs ---\n");
  sim::VirtualClock clock_a;
  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) {
    std::string smiles = models::generate_smiles(rng);
    models::DockingResult result = docker.dock_smiles(smiles, 0);
    std::string key = "vina/demo/" + smiles;
    // Big artifacts stash to the memory servers (placement hint), small
    // ones stay local — an "operator-defined policy" (§3.2).
    cache::PlacementHint hint;
    hint.target_node = (smiles.size() > 24) ? 2 : 0;
    cache.put(clock_a, /*node=*/0, key, models::serialize(result), hint);
    keys.push_back(key);
  }
  std::printf("stashed %zu artifacts in %.3f modeled s; DRAM used: "
              "node0=%llu B node2=%llu B\n",
              keys.size(), sim::to_seconds(clock_a.now()),
              static_cast<unsigned long long>(cache.dram_used(0)),
              static_cast<unsigned long long>(cache.dram_used(2)));

  std::printf("\n--- locality map (the scheduler-facing query) ---\n");
  for (std::size_t i = 0; i < 4; ++i) show_locations(cache, keys[i]);

  // Instance B (another group, compute node 1) reuses A's results instead
  // of re-running the simulations.
  std::printf("\n--- instance B (node 1) reuses A's dockings ---\n");
  sim::VirtualClock clock_b;
  int reused = 0;
  for (const auto& key : keys) {
    auto payload = cache.get(clock_b, /*node=*/1, key);
    models::DockingResult r;
    if (payload && models::deserialize(*payload, &r)) ++reused;
  }
  std::printf("reused %d/%zu docking outputs in %.4f modeled s "
              "(vs ~35 modeled s per re-docking)\n",
              reused, keys.size(), sim::to_seconds(clock_b.now()));
  std::printf("stats: %s\n", cache.stats().to_string().c_str());

  // Failure drill: node 2 (a memory server) dies. Cached copies are lost;
  // authoritative data survives in backing storage and re-populates.
  std::printf("\n--- node 2 fails ---\n");
  cache.fail_node(2);
  cache.reset_stats();
  sim::VirtualClock clock_c;
  int recovered = 0;
  for (const auto& key : keys) {
    if (cache.get(clock_c, /*node=*/1, key)) ++recovered;
  }
  std::printf("all %d artifacts still readable (backing hits: %llu); "
              "re-population rebuilt copies:\n",
              recovered,
              static_cast<unsigned long long>(cache.stats().hits_backing));
  for (std::size_t i = 0; i < 4; ++i) show_locations(cache, keys[i]);
  return 0;
}
