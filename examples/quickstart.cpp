// Quickstart: the IDS public API in ~100 lines.
//
// Builds a tiny knowledge graph + feature store, registers a UDF, and
// runs one query that mixes a graph pattern, a keyword clause, and a
// UDF FILTER — the three retrieval modalities of the unified engine.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/engine.h"

using namespace ids;

int main() {
  // 1. A 4-rank "machine". Every store is sharded to match: shard i of
  //    each store belongs to rank i.
  constexpr int kRanks = 4;
  graph::TripleStore triples(kRanks);
  store::FeatureStore features(kRanks);
  store::InvertedIndex keywords;

  // 2. Ingest a few facts about molecules...
  struct Mol {
    const char* iri;
    double weight;
    const char* doc;
  };
  const Mol mols[] = {
      {"mol:aspirin", 180.2, "analgesic cyclooxygenase inhibitor"},
      {"mol:caffeine", 194.2, "stimulant adenosine receptor antagonist"},
      {"mol:ibuprofen", 206.3, "analgesic cyclooxygenase inhibitor"},
      {"mol:theophylline", 180.2, "bronchodilator adenosine receptor antagonist"},
  };
  for (const Mol& m : mols) {
    triples.add(m.iri, "rdf:type", "chem:Drug");
    graph::TermId id = *triples.dict().lookup(m.iri);
    features.set(id, "weight", m.weight);
    keywords.add_document(id, m.doc);
  }
  triples.finalize();  // build the SPO/POS/OSP indexes and seal the store
  features.freeze();   // ingest done: seal features + keywords for serving
  keywords.freeze();

  // 3. An engine over the stores. Options default to a laptop topology.
  core::EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  core::IdsEngine engine(opts, &triples, &features, &keywords);

  // 4. A user-defined function, dynamically registered (the "Python
  //    module" path): is the molecule lighter than a threshold?
  engine.registry().register_dynamic(
      "demo", "lighter_than",
      [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        double limit = 0.0;
        expr::as_double(args[1], &limit);
        auto w = ctx.features->get_double(e->id, "weight");
        return udf::UdfResult{w.has_value() && *w < limit,
                              sim::from_micros(5)};
      },
      /*load_cost=*/sim::from_millis(300));

  // 5. The query: drugs mentioning "adenosine receptor" lighter than 190.
  core::Query q;
  q.patterns.push_back({graph::PatternTerm::Var("drug"),
                        graph::PatternTerm::Const(*triples.dict().lookup("rdf:type")),
                        graph::PatternTerm::Const(*triples.dict().lookup("chem:Drug"))});
  q.keywords.push_back({"drug", {"adenosine", "receptor"}, /*conjunctive=*/true});
  q.filters.push_back(expr::Expr::Udf(
      "demo.lighter_than",
      {expr::Expr::Var("drug"), expr::Expr::Constant(190.0)}));

  core::QueryResult r = engine.execute(q);

  // 6. Results plus the modeled execution profile.
  std::printf("matched %zu drug(s) in %.4f modeled seconds:\n",
              r.solutions.num_rows(), r.total_seconds);
  int col = r.solutions.id_var_index("drug");
  for (std::size_t row = 0; row < r.solutions.num_rows(); ++row) {
    std::printf("  %s\n",
                triples.dict().name(r.solutions.id_at(row, col)).c_str());
  }
  std::printf("\nstage breakdown:\n");
  for (const auto& st : r.stages) {
    std::printf("  %-10s %.6f s\n", st.stage.c_str(), st.seconds);
  }
  const udf::UdfStats stats = engine.profiler().aggregate("demo.lighter_than");
  std::printf("\nUDF profile: %llu executions, %llu rejections\n",
              static_cast<unsigned long long>(stats.execs),
              static_cast<unsigned long long>(stats.rejects));
  return 0;
}
