// The NCNPR drug re-purposing workflow (§4 of the paper), end to end:
//
//   1. find proteins related to the target (the P29274 analogue)
//   2. retrieve its sequence and predicted structure
//   3. assemble candidate compounds that inhibit related proteins
//   4. filter by Smith-Waterman similarity, pIC50 and DTBA prediction
//   5. dock the surviving compounds against the target receptor
//
// Runs the query twice against the global distributed cache to show the
// interactive-iteration story: the second "what-if" (a refined threshold
// over an overlapping candidate set) reuses cached docking outputs.
//
//   $ ./examples/ncnpr_workflow
//
// Telemetry: `--trace out.json` records both executions as a Chrome
// trace_event file (load it at https://ui.perfetto.dev or in
// chrome://tracing); `--metrics out.prom` dumps the process-global
// metrics registry in Prometheus text exposition format.
//
// Live observability: `--serve-obs PORT` starts the in-process HTTP
// exposition server (PORT 0 picks an ephemeral port, printed on stdout)
// with /metrics, /statusz, /tracez and /profilez; `--hold-obs SEC` keeps
// the process alive serving for SEC seconds after the workflow finishes
// so the endpoints can be scraped. `--profile out.folded` runs the
// sampling profiler across both executions and writes collapsed
// flamegraph stacks (feed to flamegraph.pl or speedscope.app).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/simd.h"
#include "core/workflow.h"
#include "models/structure.h"
#include "telemetry/metrics.h"
#include "telemetry/obs_server.h"
#include "telemetry/profiler.h"
#include "telemetry/query_stats.h"
#include "telemetry/trace.h"

using namespace ids;

namespace {

void dump_to(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror(path);
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  const char* metrics_path = nullptr;
  const char* profile_path = nullptr;
  int obs_port = -1;       // -1 = no obs server; 0 = ephemeral port
  double hold_obs = 0.0;   // seconds to keep serving after the workflow
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--serve-obs") == 0 && i + 1 < argc) {
      obs_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hold-obs") == 0 && i + 1 < argc) {
      hold_obs = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: ncnpr_workflow [--trace out.json] "
                   "[--metrics out.prom] [--profile out.folded] "
                   "[--serve-obs PORT] [--hold-obs SEC]\n");
      return 2;
    }
  }
  // A laptop-scale slice of the life-sciences graph: 30 protein families
  // (5 related to the target clade), with inhibitor compounds and assays.
  datagen::LifeSciConfig cfg;
  cfg.num_families = 30;
  cfg.proteins_per_family = 12;
  cfg.num_related_families = 5;
  cfg.compounds_per_family = 20;
  cfg.seq_len_mean = 250;
  cfg.seq_len_jitter = 30;
  cfg.seed = 7;

  constexpr int kRanks = 16;
  std::printf("building knowledge graph");
  core::NcnprData data = core::build_ncnpr_data(cfg, kRanks);
  std::printf(": %zu proteins, %zu compounds, %zu triples\n",
              data.dataset.proteins.size(), data.dataset.compounds.size(),
              data.triples->total_triples());

  // Step 2 artifacts: sequence + predicted structure of the target.
  auto structure = models::predict_structure(data.target_sequence);
  std::printf("target %s: %zu residues, predicted structure confidence %.0f\n",
              datagen::Vocab::kTargetProtein, data.target_sequence.size(),
              structure.mean_confidence);

  // The cluster-wide cache (2 compute + 2 memory nodes' worth of tiers).
  cache::CacheConfig cc;
  cc.num_nodes = 4;
  cc.dram_capacity_bytes = 64ull << 20;
  cache::CacheManager cache(cc);

  telemetry::Tracer tracer;
  telemetry::TraceRing trace_ring;
  telemetry::QueryStatsRing query_stats;

  core::EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  opts.cache = &cache;
  // The obs server's /tracez needs span trees, so --serve-obs implies
  // tracing even without a --trace output file.
  if (trace_path != nullptr || obs_port >= 0) opts.tracer = &tracer;
  opts.trace_ring = &trace_ring;
  opts.query_stats = &query_stats;

  telemetry::ObsServerOptions obs_opts;
  obs_opts.port = static_cast<std::uint16_t>(obs_port > 0 ? obs_port : 0);
  obs_opts.traces = &trace_ring;
  obs_opts.query_stats = &query_stats;
#ifdef NDEBUG
  obs_opts.build_type = "Release";
#else
  obs_opts.build_type = "Debug";
#endif
  obs_opts.simd_level = simd::level_name(simd::active_level());
  telemetry::ObsServer obs_server(obs_opts);
  if (obs_port >= 0) {
    Status started = obs_server.start();
    if (!started.ok()) {
      std::fprintf(stderr, "obs server failed to start: %s\n",
                   started.to_string().c_str());
      return 1;
    }
    std::printf("obs server listening on http://127.0.0.1:%u\n",
                static_cast<unsigned>(obs_server.port()));
    // stdout is fully buffered when redirected to a log; flush so a smoke
    // harness can discover the ephemeral port before the queries finish.
    std::fflush(stdout);
  }
  if (profile_path != nullptr) telemetry::Profiler::global().start();

  core::IdsEngine engine(opts, data.triples.get(), data.features.get(),
                         data.keywords.get(), data.vectors.get());
  core::register_ncnpr_udfs(&engine, data);

  auto run = [&](const char* label, double sw, double pic50, double dtba) {
    core::NcnprThresholds t;
    t.min_sw_similarity = sw;
    t.min_pic50 = pic50;
    t.min_dtba = dtba;
    core::Query q = core::make_ncnpr_query(data, t, /*with_docking=*/true,
                                           /*docking_cached=*/true);
    core::QueryResult r = engine.execute(q);
    std::printf("\n%s (sw>=%.2f, pIC50>=%.1f, DTBA>=%.1f)\n", label, sw,
                pic50, dtba);
    std::printf("  %zu candidate pairs -> %zu docked compounds in %.1f "
                "modeled s (cache: %zu hits / %zu misses)\n",
                r.rows_after_filters, r.rows_invoked + r.cache_hits,
                r.total_seconds, r.cache_hits, r.cache_misses);
    int cpd = r.solutions.id_var_index("cpd");
    int energy = r.solutions.num_var_index("energy");
    std::size_t show = std::min<std::size_t>(5, r.solutions.num_rows());
    std::printf("  top %zu binders:\n", show);
    for (std::size_t row = 0; row < show; ++row) {
      std::printf("    %-24s %7.2f kcal/mol\n",
                  data.triples->dict().name(r.solutions.id_at(row, cpd)).c_str(),
                  r.solutions.num_at(row, energy));
    }
    return r.total_seconds;
  };

  // First exploration: strict similarity.
  double cold = run("initial query", 0.90, 4.5, 6.5);

  // The scientist relaxes the potency floor — an overlapping candidate
  // set. Docking outputs come from the cache; only new compounds dock.
  double warm = run("refined what-if", 0.90, 4.0, 6.0);

  std::printf("\niteration speedup from the global cache: %.1fx\n",
              cold / warm);
  std::printf("cache state: %s\n", cache.stats().to_string().c_str());

  if (trace_path != nullptr) {
    dump_to(trace_path, tracer.to_chrome_json());
    std::printf("trace: %zu spans -> %s (open in Perfetto)\n", tracer.size(),
                trace_path);
  }
  if (metrics_path != nullptr) {
    dump_to(metrics_path, telemetry::MetricsRegistry::global().to_prometheus());
    std::printf("metrics -> %s\n", metrics_path);
  }
  if (profile_path != nullptr) {
    auto& profiler = telemetry::Profiler::global();
    profiler.stop();
    dump_to(profile_path, profiler.to_folded());
    std::printf("profile: %llu samples -> %s "
                "(flamegraph.pl or speedscope.app)\n",
                static_cast<unsigned long long>(profiler.samples_total()),
                profile_path);
  }
  if (obs_port >= 0 && hold_obs > 0.0) {
    std::printf("holding obs server for %.1f s (curl "
                "http://127.0.0.1:%u/metrics)\n",
                hold_obs, static_cast<unsigned>(obs_server.port()));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(hold_obs));
  }
  if (obs_port >= 0) obs_server.stop();
  return 0;
}
