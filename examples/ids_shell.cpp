// Interactive IDS shell: the client/launcher deployment surface with the
// text query language — the closest analogue to the paper's Jupyter
// front end. Reads commands from stdin (pipe or type them):
//
//   load demo                              # generate the demo life-sci graph
//   add <subj> <pred> <obj>                # ingest one triple
//   SELECT ?x WHERE { ?x rdf:type bio:Protein } LIMIT 5
//   logs                                   # drain backend/agent logs
//   stats <udf>                            # profiler statistics
//   reload <module>                        # force a module reload
//   explain <query>                        # show the plan without running
//   quit
//
//   $ printf 'load demo\nSELECT ?c WHERE { ?c chembl:inhibits ?p } LIMIT 3\nquit\n' | ./examples/ids_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "core/workflow.h"
#include "deploy/service.h"

using namespace ids;

namespace {

using graph::TermId;

void print_result(const core::QueryResult& r, const graph::Dictionary& dict) {
  const auto& t = r.solutions;
  // Header.
  std::printf("|");
  for (const auto& v : t.id_vars()) std::printf(" ?%-22s |", v.c_str());
  for (const auto& v : t.num_vars()) std::printf(" ?%-10s |", v.c_str());
  std::printf("\n");
  for (std::size_t row = 0; row < t.num_rows(); ++row) {
    std::printf("|");
    for (std::size_t c = 0; c < t.id_vars().size(); ++c) {
      TermId id = t.id_at(row, static_cast<int>(c));
      std::printf(" %-23s |",
                  id == graph::kInvalidTerm ? "-" : dict.name(id).c_str());
    }
    for (std::size_t c = 0; c < t.num_vars().size(); ++c) {
      std::printf(" %11.3f |", t.num_at(row, static_cast<int>(c)));
    }
    std::printf("\n");
  }
  std::printf("%zu row(s), %.3f modeled s\n", t.num_rows(), r.total_seconds);
}

}  // namespace

int main() {
  deploy::DatastoreLauncher launcher;
  core::EngineOptions opts;
  opts.topology = runtime::Topology::laptop(8);
  auto sid = launcher.launch(opts);
  if (!sid.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", sid.status().to_string().c_str());
    return 1;
  }
  deploy::DatastoreClient client(&launcher, sid.value());
  std::printf("ids shell — session %llu up on %d ranks. 'load demo' for "
              "sample data; 'quit' to exit.\n",
              static_cast<unsigned long long>(sid.value()),
              opts.topology.num_ranks());

  bool demo_loaded = false;
  deploy::IdsSession* session = launcher.session(sid.value());

  std::string line;
  while (std::printf("ids> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    std::string lower = to_lower(trimmed);

    if (lower == "quit" || lower == "exit") break;

    if (lower == "load demo") {
      if (demo_loaded) {
        std::printf("demo data already loaded\n");
        continue;
      }
      datagen::LifeSciConfig cfg;
      cfg.num_families = 10;
      cfg.proteins_per_family = 8;
      cfg.num_related_families = 4;
      cfg.compounds_per_family = 10;
      cfg.seq_len_mean = 200;
      datagen::generate_lifesci(cfg, &session->triples(),
                                &session->features(), &session->keywords(),
                                &session->vectors());
      session->triples().finalize();
      demo_loaded = true;
      std::printf("demo graph: %zu triples; try\n"
                  "  SELECT ?c ?p WHERE { ?c chembl:inhibits ?p } LIMIT 5\n",
                  session->triples().total_triples());
      continue;
    }

    if (lower.starts_with("add ")) {
      auto parts = split_ws(trimmed.substr(4));
      if (parts.size() != 3) {
        std::printf("usage: add <subj> <pred> <obj>\n");
        continue;
      }
      Status st = client.update({{parts[0], parts[1], parts[2]}});
      std::printf("%s\n", st.to_string().c_str());
      continue;
    }

    if (lower == "logs") {
      for (const auto& e : client.fetch_logs()) {
        std::printf("  [node %d %-8s] %s\n", e.node, e.component.c_str(),
                    e.message.c_str());
      }
      continue;
    }

    if (lower.starts_with("stats ")) {
      std::string name(trim(trimmed.substr(6)));
      udf::UdfStats s = session->engine().profiler().aggregate(name);
      std::printf("%s: execs=%llu mean=%.4g s rejects=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(s.execs),
                  s.mean_cost_seconds(),
                  static_cast<unsigned long long>(s.rejects));
      continue;
    }

    if (lower.starts_with("reload ")) {
      Status st = client.reload_module(std::string(trim(trimmed.substr(7))));
      std::printf("%s\n", st.to_string().c_str());
      continue;
    }

    if (lower.starts_with("explain ")) {
      auto parsed = core::parse_query(trimmed.substr(8),
                                      &session->triples().dict());
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().to_string().c_str());
      } else {
        std::printf("%s", session->engine().explain(parsed.value()).c_str());
      }
      continue;
    }

    // Anything else: a query.
    auto r = client.query(trimmed);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().to_string().c_str());
      continue;
    }
    print_result(r.value(), session->triples().dict());
  }
  std::printf("bye\n");
  (void)launcher.teardown(sid.value());
  return 0;
}
