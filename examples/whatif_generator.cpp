// "What-could-be": generative screening (§1's fourth discovery facet).
//
// Uses the MolGAN stand-in to propose novel compounds conditioned on a
// target molecular weight, ingests them into the datastore as first-class
// entities, and screens them with the same DTBA + docking pipeline the
// curated library uses — generation and retrieval compose in one engine.
//
//   $ ./examples/whatif_generator

#include <cstdio>

#include "core/workflow.h"
#include "models/dtba.h"
#include "models/molgen.h"

using namespace ids;

int main() {
  constexpr int kRanks = 8;

  // A small curated graph provides the target protein...
  datagen::LifeSciConfig cfg;
  cfg.num_families = 6;
  cfg.proteins_per_family = 8;
  cfg.num_related_families = 2;
  cfg.compounds_per_family = 8;
  cfg.seq_len_mean = 220;
  cfg.seed = 31;
  core::NcnprData data = core::build_ncnpr_data(cfg, kRanks);

  // ...and the generator proposes 40 novel candidates near 280 Da.
  models::MolGenParams gen;
  gen.target_weight = 280.0;
  std::vector<std::string> novel = models::generate_library(40, 99, gen);
  std::printf("generated %zu novel candidates (target MW 280)\n",
              novel.size());

  // Ingest the generated compounds like any other data: triples mark them
  // as (generated) inhibitor hypotheses against the target protein.
  // Incremental ingest is an epoch round trip (DESIGN.md §13): reopen the
  // frozen stores, add, then re-freeze before serving queries again.
  data.triples->reopen();
  data.features->reopen();
  auto& dict = data.triples->dict();
  graph::TermId generated_class = dict.intern("gen:Candidate");
  graph::TermId type_pred = *dict.lookup(datagen::Vocab::kType);
  graph::TermId inhibits = *dict.lookup(datagen::Vocab::kInhibits);
  for (std::size_t i = 0; i < novel.size(); ++i) {
    std::string iri = "gen:cand/" + std::to_string(i);
    graph::TermId id = dict.intern(iri);
    data.triples->add_ids({id, type_pred, generated_class});
    data.triples->add_ids({id, inhibits, data.dataset.target_protein});
    data.features->set(id, datagen::Feat::kSmiles, novel[i]);
  }
  // Re-finalize rebuilds the affected shard indexes and re-enters serve.
  data.triples->finalize();
  data.features->freeze();

  core::EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  core::IdsEngine engine(opts, data.triples.get(), data.features.get());
  core::register_ncnpr_udfs(&engine, data);

  // Screen: DTBA prediction on every generated candidate, then dock the
  // best 8. (Direct API use: the same UDFs the query engine calls.)
  const udf::UdfInfo* dtba = engine.registry().find("ncnpr.dtba");
  const udf::UdfInfo* dock = engine.registry().find("ncnpr.dock");
  udf::UdfContext ctx;
  ctx.features = data.features.get();
  Rng rng(3);
  ctx.rng = &rng;

  struct Scored {
    std::string smiles;
    double affinity;
    double energy = 0.0;
  };
  std::vector<Scored> scored;
  for (std::size_t i = 0; i < novel.size(); ++i) {
    graph::TermId id = *dict.lookup("gen:cand/" + std::to_string(i));
    std::vector<expr::Value> args = {expr::Entity{data.dataset.target_protein},
                                     expr::Entity{id}};
    udf::UdfResult r = dtba->fn(ctx, args);
    double a = 0.0;
    expr::as_double(r.value, &a);
    scored.push_back({novel[i], a});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.affinity > b.affinity;
            });

  std::printf("\ntop 8 by predicted binding affinity -> docking:\n");
  std::printf("%-34s %8s %10s\n", "SMILES", "DTBA", "energy");
  for (std::size_t i = 0; i < 8 && i < scored.size(); ++i) {
    // Dock through the registered UDF (cost-modeled like any query would).
    graph::TermId id = graph::kInvalidTerm;
    for (std::size_t j = 0; j < novel.size(); ++j) {
      if (novel[j] == scored[i].smiles) {
        id = *dict.lookup("gen:cand/" + std::to_string(j));
        break;
      }
    }
    std::vector<expr::Value> args = {expr::Entity{id}};
    udf::UdfResult r = dock->fn(ctx, args);
    expr::as_double(r.value, &scored[i].energy);
    std::printf("%-34s %8.2f %10.2f\n", scored[i].smiles.c_str(),
                scored[i].affinity, scored[i].energy);
  }
  std::printf("\n(negative energies bind; hand the winners to a chemist)\n");
  return 0;
}
