#!/usr/bin/env bash
# Unit tests for tools/analyzer (ids-analyzer): the live src/ tree must be
# clean, every bad.cpp fixture under tools/analyzer_fixtures/ must fail
# with its rule's tag, and every good.cpp must pass. Registered with ctest
# as `analyzer_test`; the binary path arrives as $1 (falls back to the
# default build location so the script also runs standalone).

set -u
repo="$(cd "$(dirname "$0")/.." && pwd)"
analyzer="${1:-$repo/build/tools/analyzer/ids-analyzer}"
fixtures="$repo/tools/analyzer_fixtures"
failed=0

if [ ! -x "$analyzer" ]; then
  echo "FAIL: ids-analyzer binary not found at $analyzer" >&2
  exit 1
fi

check() {  # $1 = label, $2 = expected exit, $3 = expected output regex, rest = args
  local label="$1" want_exit="$2" want_msg="$3"
  shift 3
  local out
  out=$("$analyzer" "$@" 2>&1)
  local got=$?
  if [ "$got" -ne "$want_exit" ]; then
    echo "FAIL [$label]: exit $got, wanted $want_exit" >&2
    echo "$out" | sed 's/^/    /' >&2
    failed=1
  elif [ -n "$want_msg" ] && ! echo "$out" | grep -qE "$want_msg"; then
    echo "FAIL [$label]: output missing /$want_msg/:" >&2
    echo "$out" | sed 's/^/    /' >&2
    failed=1
  else
    echo "ok   [$label]"
  fi
}

check "live tree clean" 0 'ids-analyzer: OK' "$repo/src"

check "discarded status flagged" 1 'discarded-status' \
      "$fixtures/discarded_status/bad.cpp"
check "explicit discard accepted" 0 'ids-analyzer: OK' \
      "$fixtures/discarded_status/good.cpp"
# The (void) cast is specifically called out, not merely tolerated.
check "(void) discard flagged" 1 'not an approved discard' \
      "$fixtures/discarded_status/bad.cpp"

check "unchecked value flagged" 1 'unchecked-value' \
      "$fixtures/unchecked_value/bad.cpp"
check "dominated value accepted" 0 'ids-analyzer: OK' \
      "$fixtures/unchecked_value/good.cpp"
check "unguarded status message flagged" 1 'status\(\)\.message\(\)' \
      "$fixtures/unchecked_value/bad.cpp"

check "lock order cycle flagged" 1 'inconsistent lock acquisition order' \
      "$fixtures/lock_order_cycle/bad.cpp"
check "acyclic lock order accepted" 0 'ids-analyzer: OK' \
      "$fixtures/lock_order_cycle/good.cpp"

check "bare assert flagged" 1 'bare-assert' \
      "$fixtures/bare_assert/bad.cpp"
check "IDS_CHECK and static_assert accepted" 0 'ids-analyzer: OK' \
      "$fixtures/bare_assert/good.cpp"

check "no input paths is a usage error" 2 'no input paths'
check "missing path is an IO error" 2 'cannot read' /no/such/path

exit $failed
