#!/usr/bin/env bash
# Unit tests for tools/analyzer (ids-analyzer): the live src/ tree must be
# clean, every bad.cpp fixture under tools/analyzer_fixtures/ must fail
# with its rule's tag, and every good.cpp must pass. Registered with ctest
# as `analyzer_test`; the binary path arrives as $1 (falls back to the
# default build location so the script also runs standalone).

set -u
repo="$(cd "$(dirname "$0")/.." && pwd)"
analyzer="${1:-$repo/build/tools/analyzer/ids-analyzer}"
fixtures="$repo/tools/analyzer_fixtures"
failed=0

if [ ! -x "$analyzer" ]; then
  echo "FAIL: ids-analyzer binary not found at $analyzer" >&2
  exit 1
fi

check() {  # $1 = label, $2 = expected exit, $3 = expected output regex, rest = args
  local label="$1" want_exit="$2" want_msg="$3"
  shift 3
  local out
  out=$("$analyzer" "$@" 2>&1)
  local got=$?
  if [ "$got" -ne "$want_exit" ]; then
    echo "FAIL [$label]: exit $got, wanted $want_exit" >&2
    echo "$out" | sed 's/^/    /' >&2
    failed=1
  elif [ -n "$want_msg" ] && ! echo "$out" | grep -qE "$want_msg"; then
    echo "FAIL [$label]: output missing /$want_msg/:" >&2
    echo "$out" | sed 's/^/    /' >&2
    failed=1
  else
    echo "ok   [$label]"
  fi
}

check "live tree clean" 0 'ids-analyzer: OK' "$repo/src"

check "discarded status flagged" 1 'discarded-status' \
      "$fixtures/discarded_status/bad.cpp"
check "explicit discard accepted" 0 'ids-analyzer: OK' \
      "$fixtures/discarded_status/good.cpp"
# The (void) cast is specifically called out, not merely tolerated.
check "(void) discard flagged" 1 'not an approved discard' \
      "$fixtures/discarded_status/bad.cpp"

check "unchecked value flagged" 1 'unchecked-value' \
      "$fixtures/unchecked_value/bad.cpp"
check "dominated value accepted" 0 'ids-analyzer: OK' \
      "$fixtures/unchecked_value/good.cpp"
check "unguarded status message flagged" 1 'status\(\)\.message\(\)' \
      "$fixtures/unchecked_value/bad.cpp"

check "lock order cycle flagged" 1 'inconsistent lock acquisition order' \
      "$fixtures/lock_order_cycle/bad.cpp"
check "acyclic lock order accepted" 0 'ids-analyzer: OK' \
      "$fixtures/lock_order_cycle/good.cpp"

check "bare assert flagged" 1 'bare-assert' \
      "$fixtures/bare_assert/bad.cpp"
check "IDS_CHECK and static_assert accepted" 0 'ids-analyzer: OK' \
      "$fixtures/bare_assert/good.cpp"

check "cross-TU lock cycle flagged" 1 'cross-TU inconsistent lock acquisition order' \
      "$fixtures/xfile_lock_cycle/bad.cpp" "$fixtures/xfile_lock_cycle/bad_peer.cpp"
check "cross-TU cycle tagged xfile-lock-order" 1 'xfile-lock-order' \
      "$fixtures/xfile_lock_cycle/bad.cpp" "$fixtures/xfile_lock_cycle/bad_peer.cpp"
check "cross-TU hierarchy accepted" 0 'ids-analyzer: OK' \
      "$fixtures/xfile_lock_cycle/good.cpp" "$fixtures/xfile_lock_cycle/good_peer.cpp"

check "transitive blocking under lock flagged" 1 \
      'blocking-under-lock.*write_file.*may block' \
      "$fixtures/blocking_under_lock/bad.cpp"
check "direct sleep under lock flagged" 1 'sleep_for' \
      "$fixtures/blocking_under_lock/bad.cpp"
check "hoist / IDS_MAY_BLOCK / condvar wait accepted" 0 'ids-analyzer: OK' \
      "$fixtures/blocking_under_lock/good.cpp"

check "wall-clock read on execute path flagged" 1 \
      'wallclock-in-engine.*system_clock.*reachable from IdsEngine::execute' \
      "$fixtures/wallclock_in_engine/bad.cpp"
check "raw RNG on execute path flagged" 1 'raw randomness.*mt19937' \
      "$fixtures/wallclock_in_engine/bad.cpp"
check "IDS_WALLCLOCK_OK and ids::Rng accepted" 0 'ids-analyzer: OK' \
      "$fixtures/wallclock_in_engine/good.cpp"

check "wrapper-forwarded discard flagged" 1 \
      'wrapper-discarded-status.*forwards a Status/Result' \
      "$fixtures/wrapper_discarded_status/bad.cpp"
check "consumed wrapper results accepted" 0 'ids-analyzer: OK' \
      "$fixtures/wrapper_discarded_status/good.cpp"

# --- concurrency rules -------------------------------------------------------

check "mixed-lock write flagged" 1 'guarded-by' \
      "$fixtures/guarded_by/bad.cpp"
check "mixed-lock message cites the locked site" 1 \
      'written with .Counter::mu_. held at .* but with no lock here' \
      "$fixtures/guarded_by/bad.cpp"
check "unannotated locked write flagged" 1 \
      'without an IDS_GUARDED_BY annotation' \
      "$fixtures/guarded_by/bad.cpp"
check "annotated and locked writes accepted" 0 'ids-analyzer: OK' \
      "$fixtures/guarded_by/good.cpp"

check "by-ref capture escape flagged" 1 \
      'thread-escape.*mutates by-reference capture' \
      "$fixtures/thread_escape/bad.cpp"
check "captured-this member escape flagged" 1 \
      "mutates member 'Indexer::count_' .* through captured 'this'" \
      "$fixtures/thread_escape/bad.cpp"
check "atomic / per-rank / locked tasks accepted" 0 'ids-analyzer: OK' \
      "$fixtures/thread_escape/good.cpp"

# --- phase/epoch rules -------------------------------------------------------

check "missing freeze method flagged" 1 \
      "phase-discipline.*has no method 'seal'" \
      "$fixtures/phase_discipline/bad.cpp"
check "mutable frozen field flagged" 1 \
      'phase-discipline.*lazy-prepare' \
      "$fixtures/phase_discipline/bad.cpp"
check "serve-phase write flagged" 1 \
      "serve-phase write.*'Store::touch'.*reachable from IdsEngine::execute" \
      "$fixtures/phase_discipline/bad.cpp"
check "freeze call on execute path flagged" 1 \
      "freeze method 'Postings::commit'.*reachable from IdsEngine::execute" \
      "$fixtures/phase_discipline/bad.cpp"
check "eager freeze with guarded ingest accepted" 0 'ids-analyzer: OK' \
      "$fixtures/phase_discipline/good.cpp"

check "unguarded ingest write flagged" 1 \
      "frozen-ingest-guard.*'Ledger::append' without an epoch guard" \
      "$fixtures/frozen_ingest_guard/bad.cpp"
check "positive frozen assert is not a guard" 1 \
      "frozen-ingest-guard.*'Ledger::audit'" \
      "$fixtures/frozen_ingest_guard/bad.cpp"
check "IDS_CHECK/IDS_DCHECK epoch guards accepted" 0 'ids-analyzer: OK' \
      "$fixtures/frozen_ingest_guard/good.cpp"
# Constructor writes and the freeze method itself are exempt: the good
# fixture reserves in the ctor and sorts inside freeze() with no guard.
check "ctor and freeze-method writes exempt" 0 'ids-analyzer: OK' \
      --rule=frozen-ingest-guard "$fixtures/frozen_ingest_guard/good.cpp"

# --- lifetime rules ----------------------------------------------------------

check "view invalidated by direct mutation flagged" 1 \
      "view-invalidation.*view 'p'.*'names.push_back\(\)'" \
      "$fixtures/view_invalidation/bad.cpp"
check "view invalidated through method summary flagged" 1 \
      "view 'base'.*'grow\(\)' \(ids_.resize\)" \
      "$fixtures/view_invalidation/bad.cpp"
check "view invalidated by reassignment flagged" 1 \
      "being reassigned" \
      "$fixtures/view_invalidation/bad.cpp"
check "re-derived / stable-storage views accepted" 0 'ids-analyzer: OK' \
      "$fixtures/view_invalidation/good.cpp"

check "returned reference to local flagged" 1 \
      'dangling-return.*local' \
      "$fixtures/dangling_return/bad.cpp"
check "returned view of by-value param flagged" 1 \
      "dangling-return.*by-value parameter" \
      "$fixtures/dangling_return/bad.cpp"
check "member / parameter-referent returns accepted" 0 'ids-analyzer: OK' \
      "$fixtures/dangling_return/good.cpp"

check "view bound to substr temporary flagged" 1 \
      "temporary-bound-view.*'substr\(...\)' result" \
      "$fixtures/temporary_bound_view/bad.cpp"
check "view member initialized from temporary flagged" 1 \
      "string_view member 'Header::title_'" \
      "$fixtures/temporary_bound_view/bad.cpp"
check "views of named owners accepted" 0 'ids-analyzer: OK' \
      "$fixtures/temporary_bound_view/good.cpp"

check "unjoined by-ref task capture flagged" 1 \
      "task-outlives-capture.*captures 'rows' by reference.*never joins" \
      "$fixtures/task_outlives_capture/bad.cpp"
check "unjoined this capture flagged" 1 \
      "task-outlives-capture.*'this'" \
      "$fixtures/task_outlives_capture/bad.cpp"
check "joined / by-value / waived tasks accepted" 0 'ids-analyzer: OK' \
      "$fixtures/task_outlives_capture/good.cpp"

# --- lexer raw strings -------------------------------------------------------

check "raw string contents produce no findings" 0 'ids-analyzer: OK' \
      "$fixtures/lexer_raw_string/good.cpp"
check "lexer recovers after a raw string" 1 \
      'lexer_raw_string/bad.cpp:11:.*bare-assert' \
      "$fixtures/lexer_raw_string/bad.cpp"

# --- shared-state certificate ------------------------------------------------

check "certify flags execute-path shared state" 1 'shared-state' \
      --certify=concurrent-exec "$fixtures/shared_state/bad.cpp"
check "certify flags function-local statics" 1 'function-local static' \
      --certify=concurrent-exec "$fixtures/shared_state/bad.cpp"
check "certify flags namespace-scope globals" 1 \
      'namespace-scope global .g_queries.' \
      --certify=concurrent-exec "$fixtures/shared_state/bad.cpp"
check "shared-state is certify-only" 0 'ids-analyzer: OK' \
      "$fixtures/shared_state/bad.cpp"
check "certify accepts guarded/atomic/waived engine" 0 'certificate OK' \
      --certify=concurrent-exec "$fixtures/shared_state/good.cpp"
check "certify inventory carries the waiver reason" 0 \
      'fixture_scratch_reuse' \
      --certify=concurrent-exec "$fixtures/shared_state/good.cpp"
check "certify without engine root is an error" 2 \
      'found no IdsEngine::execute' \
      --certify=concurrent-exec "$fixtures/guarded_by/good.cpp"
check "unknown certificate is a usage error" 2 'unknown certificate' \
      --certify=no-such-cert "$fixtures/shared_state/good.cpp"
check "live tree passes the certificate" 0 'certificate OK' \
      --certify=concurrent-exec "$repo/src"

# --- CLI surface -------------------------------------------------------------

check "no input paths is a usage error" 2 'no input paths'
check "missing path is an IO error" 2 'cannot read' /no/such/path
check "--list-rules names every rule" 0 'xfile-lock-order' --list-rules
check "--list-rules names the lifetime rules" 0 'task-outlives-capture' \
      --list-rules
check "unknown --rule is a usage error" 2 'unknown rule' --rule=no-such-rule
check "unknown --format is a usage error" 2 'unknown format' --format=xml \
      "$fixtures/bare_assert/good.cpp"
# Rule filtering: with only bare-assert enabled, the discarded-status
# fixture is clean; with its own rule enabled it still fails.
check "--rule disables other rules" 0 'ids-analyzer: OK' \
      --rule=bare-assert "$fixtures/discarded_status/bad.cpp"
check "--rule keeps the selected rule" 1 'discarded-status' \
      --rule=discarded-status "$fixtures/discarded_status/bad.cpp"
check "--stats reports the resolution ratio" 0 'resolution-ratio=' \
      --stats "$fixtures/lock_order_cycle/good.cpp"
check "--stats reports parse timing and jobs" 0 \
      'parse-seconds=.*\(jobs=1\)' --stats --jobs=1 \
      "$fixtures/lock_order_cycle/good.cpp"
check "--stats reports per-phase wall time" 0 \
      'phase-seconds: lex=.* corpus=.* callgraph=.* rules=.* total=' \
      --stats "$fixtures/lock_order_cycle/good.cpp"
check "--stats breaks findings down per rule" 1 \
      'rule guarded-by *active=2' --stats "$fixtures/guarded_by/bad.cpp"
check "bad --jobs value is a usage error" 2 'bad --jobs' --jobs=many \
      "$fixtures/bare_assert/good.cpp"

# Parallel lexing must be invisible in the results: byte-identical output.
serial=$("$analyzer" "$repo/src" 2>&1)
parallel=$("$analyzer" --jobs=4 "$repo/src" 2>&1)
if [ "$serial" = "$parallel" ]; then
  echo "ok   [--jobs=4 output matches serial]"
else
  echo "FAIL [--jobs=4 output matches serial]" >&2
  failed=1
fi

# --- stats JSON --------------------------------------------------------------

tmp_stats="$(mktemp)"
check "--stats-json runs clean" 0 'ids-analyzer: OK' \
      --stats-json="$tmp_stats" "$fixtures/guarded_by/good.cpp"
if command -v python3 >/dev/null 2>&1; then
  if python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("files", "functions", "resolution_ratio", "jobs",
            "parse_seconds", "analyze_seconds", "findings", "per_rule",
            "phase_seconds"):
    assert key in doc, "missing key: " + key
for key in ("lex", "corpus", "callgraph", "rules", "total"):
    assert key in doc["phase_seconds"], "missing phase: " + key
    assert doc["phase_seconds"][key] >= 0
assert "guarded-by" in doc["per_rule"], "per_rule misses guarded-by"
assert "thread-escape" in doc["per_rule"], "per_rule misses thread-escape"
assert "view-invalidation" in doc["per_rule"], "per_rule misses view-invalidation"
assert "dangling-return" in doc["per_rule"], "per_rule misses dangling-return"
' "$tmp_stats"; then
    echo "ok   [stats JSON validates]"
  else
    echo "FAIL [stats JSON validates]" >&2
    failed=1
  fi
fi
rm -f "$tmp_stats"

# --- SARIF -------------------------------------------------------------------

sarif_check() {  # $1 = label, $2 = expected exit, rest = args
  local label="$1" want_exit="$2"
  shift 2
  local out
  out=$("$analyzer" --format=sarif "$@" 2>/dev/null)
  local got=$?
  if [ "$got" -ne "$want_exit" ]; then
    echo "FAIL [$label]: exit $got, wanted $want_exit" >&2
    failed=1
    return
  fi
  if ! echo "$out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["version"] == "2.1.0", "bad version"
assert len(doc["runs"]) == 1, "expected exactly one run"
run = doc["runs"][0]
rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
for rid in ("discarded-status", "unchecked-value", "lock-order",
            "bare-assert", "xfile-lock-order", "blocking-under-lock",
            "wallclock-in-engine", "wrapper-discarded-status",
            "guarded-by", "thread-escape", "shared-state",
            "phase-discipline", "frozen-ingest-guard",
            "view-invalidation", "dangling-return", "temporary-bound-view",
            "task-outlives-capture"):
    assert rid in rules, "missing rule metadata: " + rid
for res in run["results"]:
    assert res["ruleId"] in rules
    loc = res["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"]
    assert loc["region"]["startLine"] >= 1
print(len(run["results"]))
' >/dev/null; then
    echo "FAIL [$label]: SARIF did not validate" >&2
    failed=1
  else
    echo "ok   [$label]"
  fi
}

if command -v python3 >/dev/null 2>&1; then
  sarif_check "SARIF validates (findings)" 1 "$fixtures/discarded_status/bad.cpp"
  sarif_check "SARIF validates (clean)" 0 "$fixtures/discarded_status/good.cpp"
else
  echo "skip [SARIF validation]: python3 not available"
fi

# --- GitHub annotations ------------------------------------------------------

check "github format emits ::error annotations" 1 \
      '::error file=.*bad\.cpp,line=[0-9]+,title=ids-analyzer/discarded-status::' \
      --format=github "$fixtures/discarded_status/bad.cpp"
check "github format is silent on a clean tree" 0 'ids-analyzer: OK' \
      --format=github "$fixtures/discarded_status/good.cpp"
out=$("$analyzer" --format=github "$fixtures/discarded_status/good.cpp" 2>/dev/null)
if [ -z "$out" ]; then
  echo "ok   [github format stdout empty when clean]"
else
  echo "FAIL [github format stdout empty when clean]" >&2
  failed=1
fi

# --- baseline round-trip -----------------------------------------------------

tmp_baseline="$(mktemp)"
trap 'rm -f "$tmp_baseline"' EXIT
check "baseline write still reports findings" 1 'discarded-status' \
      --write-baseline="$tmp_baseline" "$fixtures/discarded_status/bad.cpp"
if ! grep -q 'discarded-status|' "$tmp_baseline"; then
  echo "FAIL [baseline file has keys]: no discarded-status key in $tmp_baseline" >&2
  failed=1
else
  echo "ok   [baseline file has keys]"
fi
check "baselined findings suppressed" 0 'suppressed' \
      --baseline="$tmp_baseline" "$fixtures/discarded_status/bad.cpp"
check "baseline leaves new findings fatal" 1 'bare-assert' \
      --baseline="$tmp_baseline" "$fixtures/discarded_status/bad.cpp" \
      "$fixtures/bare_assert/bad.cpp"
check "missing baseline is an IO error" 2 'cannot read baseline' \
      --baseline=/no/such/baseline "$fixtures/discarded_status/good.cpp"

exit $failed
