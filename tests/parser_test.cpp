// Parser tests: clause coverage, expression grammar (precedence,
// associativity), error reporting, and a parse-then-execute round trip.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/parser.h"

namespace ids::core {
namespace {

TEST(Parser, MinimalSelectWhere) {
  graph::Dictionary dict;
  auto r = parse_query("SELECT ?x WHERE { ?x rdf:type bio:Protein . }", &dict);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  const Query& q = r.value();
  ASSERT_EQ(q.patterns.size(), 1u);
  EXPECT_TRUE(q.patterns[0].s.is_var);
  EXPECT_EQ(q.patterns[0].s.var, "x");
  EXPECT_FALSE(q.patterns[0].p.is_var);
  EXPECT_EQ(dict.name(q.patterns[0].p.constant), "rdf:type");
  EXPECT_EQ(q.select, (std::vector<std::string>{"x"}));
}

TEST(Parser, SelectStarProjectsEverything) {
  graph::Dictionary dict;
  auto r = parse_query("SELECT * WHERE { ?x p ?y }", &dict);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().select.empty());
}

TEST(Parser, StringLiteralObjectsAreQuoted) {
  graph::Dictionary dict;
  auto r = parse_query(
      "SELECT ?p WHERE { ?p up:reviewed \"true\" . }", &dict);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(dict.name(r.value().patterns[0].o.constant), "\"true\"");
}

TEST(Parser, MultiplePatternsWithDots) {
  graph::Dictionary dict;
  auto r = parse_query(
      "SELECT ?c ?p WHERE { ?p rdf:type bio:Protein . "
      "?c chembl:inhibits ?p . ?p up:reviewed \"true\" }",
      &dict);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().patterns.size(), 3u);
}

TEST(Parser, FilterClause) {
  graph::Dictionary dict;
  auto r = parse_query(
      "SELECT ?p WHERE { ?p a b } "
      "FILTER ncnpr.sw_similarity(?p) >= 0.9 && ncnpr.pic50(?p) >= 5",
      &dict);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_EQ(r.value().filters.size(), 1u);
  EXPECT_EQ(r.value().filters[0]->to_string(),
            "((ncnpr.sw_similarity(?p) >= 0.9) && (ncnpr.pic50(?p) >= 5))");
}

TEST(Parser, KeywordClauseAllAndAny) {
  graph::Dictionary dict;
  auto r = parse_query(
      "SELECT ?p WHERE { ?p a b } "
      "KEYWORD ?p MATCHES ALL (\"adenosine\", \"receptor\") "
      "KEYWORD ?p MATCHES ANY (\"kinase\")",
      &dict);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_EQ(r.value().keywords.size(), 2u);
  EXPECT_TRUE(r.value().keywords[0].conjunctive);
  EXPECT_EQ(r.value().keywords[0].tokens.size(), 2u);
  EXPECT_FALSE(r.value().keywords[1].conjunctive);
}

TEST(Parser, VectorClause) {
  graph::Dictionary dict;
  auto r = parse_query(
      "SELECT ?p WHERE { ?p a b } "
      "VECTOR ?p NEAREST 5 L2 [0.5, -1.25, 3]",
      &dict);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_EQ(r.value().vectors.size(), 1u);
  const VectorClause& vc = r.value().vectors[0];
  EXPECT_EQ(vc.k, 5u);
  EXPECT_EQ(vc.metric, store::Metric::kL2);
  ASSERT_EQ(vc.query.size(), 3u);
  EXPECT_FLOAT_EQ(vc.query[1], -1.25f);
}

TEST(Parser, InvokeWithCacheAndOrderLimit) {
  graph::Dictionary dict;
  auto r = parse_query(
      "SELECT ?c WHERE { ?c a b } "
      "DISTINCT ?c "
      "INVOKE ncnpr.dock(?c) AS ?energy CACHE \"vina/P29274\" "
      "ORDER BY ?energy DESC LIMIT 10",
      &dict);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  const Query& q = r.value();
  EXPECT_EQ(q.distinct_var, "c");
  ASSERT_EQ(q.invokes.size(), 1u);
  EXPECT_EQ(q.invokes[0].udf, "ncnpr.dock");
  EXPECT_EQ(q.invokes[0].out_var, "energy");
  EXPECT_TRUE(q.invokes[0].use_cache);
  EXPECT_EQ(q.invokes[0].cache_prefix, "vina/P29274");
  EXPECT_EQ(q.order_by, "energy");
  EXPECT_TRUE(q.order_descending);
  EXPECT_EQ(q.limit, 10u);
}

TEST(Parser, ExpressionPrecedence) {
  auto r = parse_expression("1 + 2 * 3 == 7 && !false");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  expr::EvalContext ctx;
  EXPECT_TRUE(expr::truthy(expr::eval(*r.value(), ctx)));

  auto left = parse_expression("10 - 2 - 3");  // left associative: 5
  ASSERT_TRUE(left.ok());
  double v = 0;
  expr::Value val = expr::eval(*left.value(), ctx);
  ASSERT_TRUE(expr::as_double(val, &v));
  EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(Parser, UnaryMinusAndParens) {
  expr::EvalContext ctx;
  auto r = parse_expression("-(2 + 3) * -2");
  ASSERT_TRUE(r.ok());
  double v = 0;
  ASSERT_TRUE(expr::as_double(expr::eval(*r.value(), ctx), &v));
  EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(Parser, FeatureAccessChains) {
  auto r = parse_expression("?cpd.ic50_nm < 100");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->to_string(), "(?cpd.ic50_nm < 100)");
}

TEST(Parser, Errors) {
  graph::Dictionary dict;
  EXPECT_FALSE(parse_query("WHERE { ?x a b }", &dict).ok());       // no SELECT
  EXPECT_FALSE(parse_query("SELECT ?x", &dict).ok());              // no WHERE
  EXPECT_FALSE(parse_query("SELECT ?x WHERE { }", &dict).ok());    // empty BGP
  EXPECT_FALSE(parse_query("SELECT ?x WHERE { ?x a b } LIMIT x", &dict).ok());
  EXPECT_FALSE(parse_query("SELECT ?x WHERE { ?x a b } garbage", &dict).ok());
  EXPECT_FALSE(parse_expression("1 +").ok());
  EXPECT_FALSE(parse_expression("(1").ok());
  // Error messages carry position info.
  auto r = parse_query("SELECT ?x WHERE { ?x a b } LIMIT x", &dict);
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(Parser, ParseThenExecuteRoundTrip) {
  constexpr int kRanks = 4;
  graph::TripleStore triples(kRanks);
  store::FeatureStore features(kRanks);
  for (int i = 0; i < 10; ++i) {
    std::string iri = "item" + std::to_string(i);
    triples.add(iri, "rdf:type", "Thing");
    features.set(*triples.dict().lookup(iri), "size",
                 static_cast<double>(i));
  }
  triples.finalize();
  features.freeze();

  auto parsed = parse_query(
      "SELECT ?x WHERE { ?x rdf:type Thing } FILTER ?x.size >= 6 LIMIT 3",
      &triples.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();

  EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  IdsEngine engine(opts, &triples, &features);
  QueryResult r = engine.execute(parsed.value());
  EXPECT_EQ(r.solutions.num_rows(), 3u);  // sizes 6..9, limited to 3
}

}  // namespace
}  // namespace ids::core
