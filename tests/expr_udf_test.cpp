// Tests for expression evaluation, conjunct chains, the UDF registry's
// module cache, and the per-rank profiler.

#include <gtest/gtest.h>

#include "expr/chain.h"
#include "expr/expr.h"
#include "expr/value.h"
#include "store/feature_store.h"
#include "udf/profiler.h"
#include "udf/registry.h"

namespace ids {
namespace {

using expr::CmpOp;
using expr::Entity;
using expr::EvalContext;
using expr::Expr;
using expr::Value;

TEST(Value, Truthiness) {
  EXPECT_FALSE(expr::truthy(expr::null_value()));
  EXPECT_TRUE(expr::truthy(Value{true}));
  EXPECT_FALSE(expr::truthy(Value{false}));
  EXPECT_TRUE(expr::truthy(Value{std::int64_t{5}}));
  EXPECT_FALSE(expr::truthy(Value{0.0}));
  EXPECT_TRUE(expr::truthy(Value{std::string("x")}));
  EXPECT_FALSE(expr::truthy(Value{Entity{graph::kInvalidTerm}}));
}

TEST(Value, CompareNumericPromotion) {
  int c = 0;
  ASSERT_TRUE(expr::compare(Value{std::int64_t{2}}, Value{2.5}, &c));
  EXPECT_EQ(c, -1);
  ASSERT_TRUE(expr::compare(Value{3.0}, Value{std::int64_t{3}}, &c));
  EXPECT_EQ(c, 0);
}

TEST(Value, CompareIncompatibleFails) {
  int c = 0;
  EXPECT_FALSE(expr::compare(Value{std::string("a")}, Value{1.0}, &c));
  EXPECT_FALSE(expr::compare(Value{Entity{1}}, Value{1.0}, &c));
}

TEST(Expr, ConstantAndArithmetic) {
  EvalContext ctx;
  auto e = Expr::Arith(expr::ArithOp::kMul,
                       Expr::Arith(expr::ArithOp::kAdd, Expr::Constant(2.0),
                                   Expr::Constant(3.0)),
                       Expr::Constant(4.0));
  Value v = expr::eval(*e, ctx);
  double d = 0;
  ASSERT_TRUE(expr::as_double(v, &d));
  EXPECT_DOUBLE_EQ(d, 20.0);
}

TEST(Expr, DivisionByZeroYieldsNull) {
  EvalContext ctx;
  auto e = Expr::Arith(expr::ArithOp::kDiv, Expr::Constant(1.0),
                       Expr::Constant(0.0));
  EXPECT_TRUE(expr::is_null(expr::eval(*e, ctx)));
}

TEST(Expr, VarResolvesIdAndNumColumns) {
  graph::SolutionTable t({"prot"}, {"score"});
  graph::TermId id = 42;
  double s = 0.75;
  t.append_row({&id, 1}, {&s, 1});

  EvalContext ctx;
  ctx.row = {&t, 0};
  Value pv = expr::eval(*Expr::Var("prot"), ctx);
  auto* e = std::get_if<Entity>(&pv);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->id, 42u);

  Value sv = expr::eval(*Expr::Var("score"), ctx);
  double d = 0;
  ASSERT_TRUE(expr::as_double(sv, &d));
  EXPECT_DOUBLE_EQ(d, 0.75);

  EXPECT_TRUE(expr::is_null(expr::eval(*Expr::Var("missing"), ctx)));
}

TEST(Expr, FeatureLookup) {
  store::FeatureStore fs(2);
  fs.set(42, "ic50_nm", 100.0);
  graph::SolutionTable t({"cpd"});
  graph::TermId id = 42;
  t.append_row({&id, 1});

  EvalContext ctx;
  ctx.row = {&t, 0};
  ctx.udf_ctx.features = &fs;
  auto e = Expr::Compare(CmpOp::kEq, Expr::Feature(Expr::Var("cpd"), "ic50_nm"),
                         Expr::Constant(100.0));
  EXPECT_TRUE(expr::truthy(expr::eval(*e, ctx)));
}

TEST(Expr, NullPropagatesThroughComparison) {
  EvalContext ctx;
  auto e = Expr::Compare(CmpOp::kLt, Expr::Var("nope"), Expr::Constant(1.0));
  EXPECT_TRUE(expr::is_null(expr::eval(*e, ctx)));  // null -> row rejected
}

TEST(Expr, ShortCircuitSkipsRightCost) {
  udf::UdfRegistry reg;
  int calls = 0;
  reg.register_static("expensive", [&calls](const udf::UdfContext&,
                                            std::span<const Value>) {
    ++calls;
    return udf::UdfResult{true, sim::from_seconds(1.0)};
  });
  udf::UdfProfiler prof(1);

  EvalContext ctx;
  ctx.registry = &reg;
  ctx.profiler = &prof;
  auto e = Expr::And(Expr::Constant(false), Expr::Udf("expensive", {}));
  EXPECT_FALSE(expr::truthy(expr::eval(*e, ctx)));
  EXPECT_EQ(calls, 0);
  EXPECT_LT(ctx.cost, sim::from_seconds(0.5));

  auto e2 = Expr::Or(Expr::Constant(true), Expr::Udf("expensive", {}));
  EXPECT_TRUE(expr::truthy(expr::eval(*e2, ctx)));
  EXPECT_EQ(calls, 0);
}

TEST(Expr, UdfCostScaledBySpeedFactor) {
  udf::UdfRegistry reg;
  reg.register_static("work", [](const udf::UdfContext&,
                                 std::span<const Value>) {
    return udf::UdfResult{1.0, sim::from_seconds(3.0)};
  });
  udf::UdfProfiler prof(2);

  EvalContext fast;
  fast.registry = &reg;
  fast.profiler = &prof;
  fast.udf_ctx.rank = 0;
  fast.speed_factor = 3.0;
  expr::eval(*Expr::Udf("work", {}), fast);
  EXPECT_NEAR(sim::to_seconds(fast.cost), 1.0, 0.01);

  EvalContext slow;
  slow.registry = &reg;
  slow.profiler = &prof;
  slow.udf_ctx.rank = 1;
  slow.speed_factor = 1.0;
  expr::eval(*Expr::Udf("work", {}), slow);
  EXPECT_NEAR(sim::to_seconds(slow.cost), 3.0, 0.01);

  // The profiler sees each rank's effective cost.
  EXPECT_LT(prof.get(0, "work").total_time, prof.get(1, "work").total_time);
}

TEST(Expr, ToStringRendersReadably) {
  auto e = Expr::Compare(CmpOp::kGe, Expr::Udf("sw", {Expr::Var("p")}),
                         Expr::Constant(0.9));
  EXPECT_EQ(e->to_string(), "(sw(?p) >= 0.9)");
}

TEST(Chain, FlattenAndRebuildPreservesSemantics) {
  auto a = Expr::Compare(CmpOp::kGt, Expr::Constant(2.0), Expr::Constant(1.0));
  auto b = Expr::Compare(CmpOp::kLt, Expr::Constant(1.0), Expr::Constant(2.0));
  auto c = Expr::Constant(true);
  auto chain = Expr::And(Expr::And(a, b), c);

  auto conj = expr::flatten_conjuncts(chain);
  ASSERT_EQ(conj.size(), 3u);

  // Any permutation rebuilds to an equivalent expression.
  std::swap(conj[0], conj[2]);
  auto rebuilt = expr::rebuild_chain(conj);
  EvalContext ctx;
  EXPECT_TRUE(expr::truthy(expr::eval(*rebuilt, ctx)));
}

TEST(Chain, CollectsUdfNames) {
  auto e = Expr::And(Expr::Udf("m.f", {}),
                     Expr::Compare(CmpOp::kGt, Expr::Udf("m.g", {}),
                                   Expr::Constant(0.0)));
  auto conj = expr::flatten_conjuncts(e);
  ASSERT_EQ(conj.size(), 2u);
  EXPECT_EQ(conj[0].udfs, (std::vector<std::string>{"m.f"}));
  EXPECT_EQ(conj[1].udfs, (std::vector<std::string>{"m.g"}));
}

TEST(Chain, NonAndIsSingleConjunct) {
  auto e = Expr::Or(Expr::Constant(true), Expr::Constant(false));
  EXPECT_EQ(expr::flatten_conjuncts(e).size(), 1u);
}

TEST(Registry, StaticCannotBeReplaced) {
  udf::UdfRegistry reg;
  auto fn = [](const udf::UdfContext&, std::span<const Value>) {
    return udf::UdfResult{1.0, 0};
  };
  EXPECT_TRUE(reg.register_static("f", fn));
  EXPECT_FALSE(reg.register_static("f", fn));  // §2.3: static once loaded
}

TEST(Registry, DynamicCanBeReplaced) {
  udf::UdfRegistry reg;
  reg.register_dynamic("mod", "f",
                       [](const udf::UdfContext&, std::span<const Value>) {
                         return udf::UdfResult{1.0, 0};
                       },
                       0);
  reg.register_dynamic("mod", "f",
                       [](const udf::UdfContext&, std::span<const Value>) {
                         return udf::UdfResult{2.0, 0};
                       },
                       0);
  const udf::UdfInfo* info = reg.find("mod.f");
  ASSERT_NE(info, nullptr);
  udf::UdfContext ctx;
  double d = 0;
  ASSERT_TRUE(expr::as_double(info->fn(ctx, {}).value, &d));
  EXPECT_DOUBLE_EQ(d, 2.0);
}

TEST(Registry, ModuleLoadChargedOncePerRank) {
  udf::UdfRegistry reg;
  reg.register_dynamic("mod", "f",
                       [](const udf::UdfContext&, std::span<const Value>) {
                         return udf::UdfResult{1.0, 0};
                       },
                       sim::from_seconds(2.0));
  const udf::UdfInfo* info = reg.find("mod.f");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(reg.charge_module_load(0, *info), sim::from_seconds(2.0));
  EXPECT_EQ(reg.charge_module_load(0, *info), 0u);  // cached
  EXPECT_EQ(reg.charge_module_load(1, *info), sim::from_seconds(2.0));
}

TEST(Registry, ForceReloadChargesAgain) {
  udf::UdfRegistry reg;
  reg.register_dynamic("mod", "f",
                       [](const udf::UdfContext&, std::span<const Value>) {
                         return udf::UdfResult{1.0, 0};
                       },
                       sim::from_seconds(1.0));
  const udf::UdfInfo* info = reg.find("mod.f");
  reg.charge_module_load(0, *info);
  reg.force_reload("mod");
  EXPECT_EQ(reg.charge_module_load(0, *info), sim::from_seconds(1.0));
}

TEST(Registry, NamesSorted) {
  udf::UdfRegistry reg;
  auto fn = [](const udf::UdfContext&, std::span<const Value>) {
    return udf::UdfResult{1.0, 0};
  };
  reg.register_static("zeta", fn);
  reg.register_static("alpha", fn);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(Profiler, TracksTheThreePaperStatistics) {
  udf::UdfProfiler prof(2);
  prof.record_exec(0, "f", sim::from_seconds(1.0));
  prof.record_exec(0, "f", sim::from_seconds(3.0));
  prof.record_reject(0, "f");

  const udf::UdfStats s = prof.get(0, "f");
  EXPECT_EQ(s.execs, 2u);                         // (i) execution count
  EXPECT_EQ(s.total_time, sim::from_seconds(4.0));  // (ii) total time
  EXPECT_EQ(s.rejects, 1u);                       // (iii) rejections
  EXPECT_DOUBLE_EQ(s.mean_cost_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(s.rejection_rate(), 0.5);
}

TEST(Profiler, AggregateMergesRanks) {
  udf::UdfProfiler prof(3);
  prof.record_exec(0, "f", sim::from_seconds(1.0));
  prof.record_exec(2, "f", sim::from_seconds(2.0));
  udf::UdfStats agg = prof.aggregate("f");
  EXPECT_EQ(agg.execs, 2u);
  EXPECT_DOUBLE_EQ(agg.mean_cost_seconds(), 1.5);
}

TEST(Profiler, EstimateFallsBackToAggregate) {
  udf::UdfProfiler prof(2);
  prof.record_exec(0, "f", sim::from_seconds(2.0));
  // Rank 1 has no samples: it borrows the cross-rank aggregate.
  EXPECT_DOUBLE_EQ(prof.estimated_cost_seconds(1, "f"), 2.0);
  EXPECT_DOUBLE_EQ(prof.estimated_cost_seconds(1, "unknown"), 0.0);
}

TEST(Profiler, SparseRankEstimateShrinksTowardAggregate) {
  udf::UdfProfiler prof(2);
  // Rank 0 saw one unusually expensive row; rank 1 saw many cheap ones.
  prof.record_exec(0, "f", sim::from_seconds(10.0));
  for (std::uint64_t i = 0; i < udf::UdfProfiler::kFullConfidenceExecs; ++i) {
    prof.record_exec(1, "f", sim::from_seconds(1.0));
  }
  double agg = prof.aggregate("f").mean_cost_seconds();
  // Rank 0's single sample barely moves it off the aggregate...
  EXPECT_LT(prof.estimated_cost_seconds(0, "f"), agg + 1.0);
  // ...while rank 1's well-sampled mean is trusted in full.
  EXPECT_DOUBLE_EQ(prof.estimated_cost_seconds(1, "f"), 1.0);
}

}  // namespace
}  // namespace ids
