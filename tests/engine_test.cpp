// End-to-end engine tests on small hand-checkable graphs: operator
// correctness, FILTER semantics and planner invariance, rebalancing
// effects under heterogeneity, DISTINCT, INVOKE with and without the
// global cache, and stage timing accounting.

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "core/workflow.h"

namespace ids::core {
namespace {

using expr::CmpOp;
using expr::Expr;
using graph::PatternTerm;
using graph::TermId;

/// Tiny social-style graph fixture: people, ages, friendships.
class EngineFixture : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;

  void SetUp() override {
    triples_ = std::make_unique<graph::TripleStore>(kRanks);
    features_ = std::make_unique<store::FeatureStore>(kRanks);
    keywords_ = std::make_unique<store::InvertedIndex>();
    vectors_ = std::make_unique<store::VectorStore>(kRanks, 4);

    auto& d = triples_->dict();
    for (int i = 0; i < 10; ++i) {
      std::string person = "person" + std::to_string(i);
      triples_->add(person, "type", "Person");
      TermId id = *d.lookup(person);
      features_->set(id, "age", static_cast<double>(20 + i));
      keywords_->add_document(id, i % 2 == 0 ? "likes chess" : "likes tennis");
      std::vector<float> v(4, 0.0f);
      v[0] = static_cast<float>(i);
      vectors_->add(id, v);
      ids_.push_back(id);
    }
    // friendship ring: person i knows person (i+1)%10
    for (int i = 0; i < 10; ++i) {
      triples_->add("person" + std::to_string(i), "knows",
                    "person" + std::to_string((i + 1) % 10));
    }
    triples_->finalize();
    features_->freeze();
    keywords_->freeze();
  }

  IdsEngine make_engine(EngineOptions opts = {}) {
    opts.topology = runtime::Topology::laptop(kRanks);
    return IdsEngine(opts, triples_.get(), features_.get(), keywords_.get(),
                     vectors_.get());
  }

  PatternTerm term(const char* iri) {
    return PatternTerm::Const(*triples_->dict().lookup(iri));
  }

  std::set<TermId> result_ids(const QueryResult& r, const char* var) {
    std::set<TermId> out;
    int col = r.solutions.id_var_index(var);
    for (std::size_t row = 0; row < r.solutions.num_rows(); ++row) {
      out.insert(r.solutions.id_at(row, col));
    }
    return out;
  }

  std::unique_ptr<graph::TripleStore> triples_;
  std::unique_ptr<store::FeatureStore> features_;
  std::unique_ptr<store::InvertedIndex> keywords_;
  std::unique_ptr<store::VectorStore> vectors_;
  std::vector<TermId> ids_;
};

TEST_F(EngineFixture, SingleScanFindsAll) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 10u);
  EXPECT_EQ(result_ids(r, "x"), std::set<TermId>(ids_.begin(), ids_.end()));
  EXPECT_GT(r.total_seconds, 0.0);
}

TEST_F(EngineFixture, JoinFollowsEdges) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  q.patterns.push_back({PatternTerm::Var("x"), term("knows"), PatternTerm::Var("y")});
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 10u);  // the full ring
  // Spot-check one edge: person0 knows person1.
  int xc = r.solutions.id_var_index("x");
  int yc = r.solutions.id_var_index("y");
  bool found = false;
  for (std::size_t row = 0; row < r.solutions.num_rows(); ++row) {
    if (r.solutions.id_at(row, xc) == ids_[0]) {
      EXPECT_EQ(r.solutions.id_at(row, yc), ids_[1]);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(EngineFixture, TwoHopJoin) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("knows"), PatternTerm::Var("y")});
  q.patterns.push_back({PatternTerm::Var("y"), term("knows"), PatternTerm::Var("z")});
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 10u);  // ring: each x has exactly one 2-hop
  int xc = r.solutions.id_var_index("x");
  int zc = r.solutions.id_var_index("z");
  for (std::size_t row = 0; row < r.solutions.num_rows(); ++row) {
    // z is two steps around the ring from x.
    std::size_t xi = 0;
    while (ids_[xi] != r.solutions.id_at(row, xc)) ++xi;
    EXPECT_EQ(r.solutions.id_at(row, zc), ids_[(xi + 2) % 10]);
  }
}

TEST_F(EngineFixture, FilterOnFeature) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  q.filters.push_back(Expr::Compare(
      CmpOp::kGe, Expr::Feature(Expr::Var("x"), "age"), Expr::Constant(25.0)));
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 5u);  // ages 25..29
}

TEST_F(EngineFixture, KeywordRestricts) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  q.keywords.push_back({"x", {"chess"}, true});
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 5u);  // even-numbered people
}

TEST_F(EngineFixture, VectorTopkRestricts) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  VectorClause vc;
  vc.var = "x";
  vc.query = {9.0f, 0.0f, 0.0f, 0.0f};
  vc.k = 3;
  vc.metric = store::Metric::kL2;
  q.vectors.push_back(vc);
  QueryResult r = eng.execute(q);
  // Nearest to 9 on the first axis: persons 9, 8, 7.
  EXPECT_EQ(result_ids(r, "x"),
            (std::set<TermId>{ids_[9], ids_[8], ids_[7]}));
}

TEST_F(EngineFixture, UdfFilterAndRejectProfiling) {
  IdsEngine eng = make_engine();
  eng.registry().register_static(
      "age_over", [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        double threshold = 0;
        expr::as_double(args[1], &threshold);
        auto age = ctx.features->get_double(e->id, "age");
        return udf::UdfResult{age && *age > threshold, sim::from_millis(1)};
      });
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  q.filters.push_back(
      Expr::Udf("age_over", {Expr::Var("x"), Expr::Constant(26.5)}));
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 3u);  // 27, 28, 29

  udf::UdfStats agg = eng.profiler().aggregate("age_over");
  EXPECT_EQ(agg.execs, 10u);
  EXPECT_EQ(agg.rejects, 7u);
  EXPECT_GT(agg.total_time, 0u);
}

TEST_F(EngineFixture, ReorderingNeverChangesResults) {
  auto run = [&](bool reorder, RebalancePolicy policy) {
    EngineOptions opts;
    opts.reorder_filters = reorder;
    opts.rebalance = policy;
    IdsEngine eng = make_engine(opts);
    eng.registry().register_static(
        "pass", [](const udf::UdfContext&, std::span<const expr::Value> args) {
          double v = 0;
          expr::as_double(args[0], &v);
          return udf::UdfResult{v < 27.0, sim::from_millis(5)};
        });
    Query q;
    q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
    q.filters.push_back(
        Expr::Udf("pass", {Expr::Feature(Expr::Var("x"), "age")}));
    q.filters.push_back(Expr::Compare(
        CmpOp::kGe, Expr::Feature(Expr::Var("x"), "age"), Expr::Constant(22.0)));
    // Run twice so the second pass has profiles to reorder with.
    eng.execute(q);
    return result_ids(eng.execute(q), "x");
  };
  auto baseline = run(false, RebalancePolicy::kNone);
  EXPECT_EQ(baseline.size(), 5u);  // ages 22..26
  EXPECT_EQ(run(true, RebalancePolicy::kNone), baseline);
  EXPECT_EQ(run(true, RebalancePolicy::kCount), baseline);
  EXPECT_EQ(run(true, RebalancePolicy::kThroughput), baseline);
}

TEST_F(EngineFixture, ThroughputRebalanceKicksInUnderHeterogeneity) {
  EngineOptions opts;
  opts.hetero = runtime::HeteroProfile::groups({{2, 1.0}, {2, 4.0}});
  IdsEngine eng = make_engine(opts);
  eng.registry().register_static(
      "slow_check", [](const udf::UdfContext&, std::span<const expr::Value>) {
        return udf::UdfResult{true, sim::from_seconds(1.0)};
      });
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  q.filters.push_back(Expr::Udf("slow_check", {Expr::Var("x")}));

  QueryResult first = eng.execute(q);  // builds profiles; count-based
  EXPECT_FALSE(first.used_throughput_rebalance);
  // Per-rank estimates shrink toward the aggregate until well-sampled
  // (kFullConfidenceExecs); repeated queries accumulate the samples.
  QueryResult later;
  for (int i = 0; i < 12; ++i) later = eng.execute(q);
  EXPECT_TRUE(later.used_throughput_rebalance);
  EXPECT_EQ(later.solutions.num_rows(), 10u);
}

TEST_F(EngineFixture, DistinctReducesToUniqueValues) {
  IdsEngine eng = make_engine();
  Query q;
  // knows edges: 10 rows but x values 0..9 all distinct; use object var
  // with duplicates instead: every person is known by exactly one other,
  // so distinct on y also gives 10. Take pairs (x knows y) twice via two
  // patterns to create duplicates.
  q.patterns.push_back({PatternTerm::Var("x"), term("knows"), PatternTerm::Var("y")});
  q.patterns.push_back({PatternTerm::Var("y"), term("type"), term("Person")});
  q.distinct_var = "y";
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 10u);
  EXPECT_EQ(result_ids(r, "y").size(), 10u);
}

TEST_F(EngineFixture, InvokeAddsNumericColumn) {
  IdsEngine eng = make_engine();
  eng.registry().register_static(
      "double_age", [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        auto age = ctx.features->get_double(e->id, "age");
        return udf::UdfResult{age ? *age * 2 : 0.0, sim::from_millis(10)};
      });
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  InvokeClause inv;
  inv.udf = "double_age";
  inv.args = {Expr::Var("x")};
  inv.out_var = "result";
  q.invokes.push_back(inv);
  q.order_by = "result";

  QueryResult r = eng.execute(q);
  ASSERT_EQ(r.solutions.num_rows(), 10u);
  int col = r.solutions.num_var_index("result");
  ASSERT_GE(col, 0);
  EXPECT_DOUBLE_EQ(r.solutions.num_at(0, col), 40.0);  // ordered ascending
  EXPECT_DOUBLE_EQ(r.solutions.num_at(9, col), 58.0);
  EXPECT_EQ(r.rows_invoked, 10u);
}

TEST_F(EngineFixture, InvokeWithCacheHitsOnRepeat) {
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.dram_capacity_bytes = 10 << 20;
  cache::CacheManager cache(cc);

  EngineOptions opts;
  opts.cache = &cache;
  IdsEngine eng = make_engine(opts);
  int real_calls = 0;
  eng.registry().register_static(
      "expensive", [&real_calls](const udf::UdfContext& ctx,
                                 std::span<const expr::Value> args) {
        ++real_calls;
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        auto age = ctx.features->get_double(e->id, "age");
        return udf::UdfResult{*age, sim::from_seconds(30.0)};
      });
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  InvokeClause inv;
  inv.udf = "expensive";
  inv.args = {Expr::Var("x")};
  inv.out_var = "v";
  inv.use_cache = true;
  inv.cache_prefix = "sim/expensive";
  inv.cached_payload_bytes = 1000;
  q.invokes.push_back(inv);

  QueryResult cold = eng.execute(q);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 10u);
  EXPECT_EQ(real_calls, 10);

  QueryResult warm = eng.execute(q);
  EXPECT_EQ(warm.cache_hits, 10u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(real_calls, 10);  // no recomputation
  EXPECT_LT(warm.total_seconds, cold.total_seconds * 0.5);

  // Values survive the cache round trip.
  int col = warm.solutions.num_var_index("v");
  std::multiset<double> vals;
  for (std::size_t row = 0; row < warm.solutions.num_rows(); ++row) {
    vals.insert(warm.solutions.num_at(row, col));
  }
  EXPECT_EQ(vals.count(20.0), 1u);
  EXPECT_EQ(vals.count(29.0), 1u);
}

TEST_F(EngineFixture, StageTimingsCoverPipeline) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
  q.patterns.push_back({PatternTerm::Var("x"), term("knows"), PatternTerm::Var("y")});
  q.filters.push_back(Expr::Compare(
      CmpOp::kGe, Expr::Feature(Expr::Var("x"), "age"), Expr::Constant(0.0)));
  QueryResult r = eng.execute(q);

  double stage_sum = 0.0;
  std::set<std::string> names;
  for (const auto& s : r.stages) {
    stage_sum += s.seconds;
    names.insert(s.stage);
  }
  EXPECT_TRUE(names.contains("scan"));
  EXPECT_TRUE(names.contains("join"));
  EXPECT_TRUE(names.contains("filter"));
  EXPECT_TRUE(names.contains("gather"));
  EXPECT_NEAR(stage_sum, r.total_seconds, 1e-9);
  EXPECT_NEAR(r.seconds_excluding("filter") + r.stage_seconds("filter"),
              r.total_seconds, 1e-12);
}

TEST_F(EngineFixture, LimitAndSelectShapeOutput) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), term("knows"), PatternTerm::Var("y")});
  q.select = {"y"};
  q.limit = 3;
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 3u);
  EXPECT_EQ(r.solutions.id_vars(), (std::vector<std::string>{"y"}));
}

TEST_F(EngineFixture, UdfCallMultipliersScaleFilterCost) {
  auto filter_time = [&](double row_mult, double udf_mult) {
    EngineOptions opts;
    opts.row_multiplier = row_mult;
    if (udf_mult > 0.0) opts.udf_call_multiplier["unit_cost"] = udf_mult;
    IdsEngine eng = make_engine(opts);
    eng.registry().register_static(
        "unit_cost", [](const udf::UdfContext&, std::span<const expr::Value>) {
          return udf::UdfResult{true, sim::from_millis(100)};
        });
    Query q;
    q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
    q.filters.push_back(Expr::Udf("unit_cost", {Expr::Var("x")}));
    return eng.execute(q).stage_seconds("filter");
  };
  // Each physical conjunct evaluation stands for row_multiplier logical
  // evaluations...
  double t1 = filter_time(1.0, 0.0);
  double t100 = filter_time(100.0, 0.0);
  EXPECT_NEAR(t100 / t1, 100.0, 1.0);
  // ...unless the UDF has an explicit per-call multiplier override.
  double t_override = filter_time(100.0, 3.0);
  EXPECT_NEAR(t_override / t1, 3.0, 0.1);
}

TEST_F(EngineFixture, DeterministicAcrossRuns) {
  auto run = [&]() {
    IdsEngine eng = make_engine();
    Query q;
    q.patterns.push_back({PatternTerm::Var("x"), term("type"), term("Person")});
    q.patterns.push_back({PatternTerm::Var("x"), term("knows"), PatternTerm::Var("y")});
    QueryResult r = eng.execute(q);
    return std::make_pair(r.total_seconds, r.solutions.num_rows());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace ids::core
