#!/usr/bin/env bash
# Unit tests for tools/lint.sh: the live tree must pass, and every
# negative fixture under tools/lint_fixtures/ must fail with the message
# for exactly the pattern it plants. Registered with ctest as `lint_test`.

set -u
repo="$(cd "$(dirname "$0")/.." && pwd)"
lint="$repo/tools/lint.sh"
failed=0

check() {  # $1 = label, $2 = expected exit, $3 = expected stderr regex, rest = args
  local label="$1" want_exit="$2" want_msg="$3"
  shift 3
  local out
  out=$("$lint" "$@" 2>&1)
  local got=$?
  if [ "$got" -ne "$want_exit" ]; then
    echo "FAIL [$label]: exit $got, wanted $want_exit" >&2
    failed=1
  elif [ -n "$want_msg" ] && ! echo "$out" | grep -qE "$want_msg"; then
    echo "FAIL [$label]: output missing /$want_msg/:" >&2
    echo "$out" | sed 's/^/    /' >&2
    failed=1
  else
    echo "ok   [$label]"
  fi
}

check "live tree clean" 0 'lint: OK'
check "naked mutex flagged" 1 'naked std synchronization primitive' \
      --root "$repo/tools/lint_fixtures/naked_mutex"
check "include cycle flagged" 1 '#include cycle' \
      --root "$repo/tools/lint_fixtures/include_cycle"
check "missing pragma flagged" 1 "missing '#pragma once'" \
      --root "$repo/tools/lint_fixtures/missing_pragma"
check "raw rng flagged" 1 'raw RNG use' \
      --root "$repo/tools/lint_fixtures/raw_rng"
check "unordered container in hot path flagged" 1 'node-based hash container' \
      --root "$repo/tools/lint_fixtures/unordered_hot"
check "bare assert flagged" 1 'bare assert' \
      --root "$repo/tools/lint_fixtures/bare_assert"
check "raw stdout flagged" 1 'raw stdout write' \
      --root "$repo/tools/lint_fixtures/raw_stdout"
check "host-side sleep flagged" 1 'host-side sleep' \
      --root "$repo/tools/lint_fixtures/sleep_in_src"
check "mutable static flagged" 1 'mutable static state' \
      --root "$repo/tools/lint_fixtures/global_state"
check "mutable global flagged" 1 'mutable namespace-scope global' \
      --root "$repo/tools/lint_fixtures/global_state"
check "raw intrinsics flagged" 1 'raw SIMD intrinsics' \
      --root "$repo/tools/lint_fixtures/raw_intrinsics"
check "unknown escape tag flagged" 1 'unknown lint:allow-\* tag' \
      --root "$repo/tools/lint_fixtures/unknown_escape"
check "raw socket header flagged" 1 'raw socket header' \
      --root "$repo/tools/lint_fixtures/raw_sockets"
check "mutable store field flagged" 1 'mutable field in frozen store' \
      --root "$repo/tools/lint_fixtures/mutable_field"

# Rule 11 bans only tags outside the closed set: the fixture's real
# lint:allow-global waiver must not appear among its findings.
out=$("$lint" --root "$repo/tools/lint_fixtures/unknown_escape" 2>&1)
if echo "$out" | grep -q 'lint:allow-global'; then
  echo "FAIL [known escape tag spared]: lint:allow-global was flagged" >&2
  failed=1
else
  echo "ok   [known escape tag spared]"
fi

# Rule 10's escape hatch: the fixture's lint:allow-intrinsics line must not
# appear among the findings (the include and the unmarked _mm calls must).
out=$("$lint" --root "$repo/tools/lint_fixtures/raw_intrinsics" 2>&1)
if echo "$out" | grep -q 'prefetch'; then
  echo "FAIL [intrinsics escape hatch]: lint:allow-intrinsics line was flagged" >&2
  failed=1
else
  echo "ok   [intrinsics escape hatch]"
fi

# Rule 12's two carve-outs: src/telemetry/ is exempt wholesale (the obs
# server's sockets live there), and a lint:allow-sockets line is spared.
out=$("$lint" --root "$repo/tools/lint_fixtures/raw_sockets" 2>&1)
if echo "$out" | grep -q 'telemetry/exporter'; then
  echo "FAIL [sockets telemetry exemption]: src/telemetry/ file was flagged" >&2
  failed=1
else
  echo "ok   [sockets telemetry exemption]"
fi
if echo "$out" | grep -q 'arpa/inet'; then
  echo "FAIL [sockets escape hatch]: lint:allow-sockets line was flagged" >&2
  failed=1
else
  echo "ok   [sockets escape hatch]"
fi

# Rule 13's carve-outs: atomic and IDS_GUARDED_BY members are
# synchronized, the lint:allow-mutable line is opted out, and the rule is
# scoped to src/graph/ + src/store/ (the src/core/ fixture file is out of
# scope) — none of those may appear among the findings.
out=$("$lint" --root "$repo/tools/lint_fixtures/mutable_field" 2>&1)
for spared in 'hits_' 'misses_' 'scratch_' 'last_cost_'; do
  if echo "$out" | grep -q "$spared"; then
    echo "FAIL [mutable carve-outs]: spared member $spared was flagged" >&2
    failed=1
  else
    echo "ok   [mutable carve-out: $spared spared]"
  fi
done
for flagged in 'cache_' 'prepared_'; do
  if echo "$out" | grep -q "$flagged"; then
    echo "ok   [mutable lazy-prepare: $flagged flagged]"
  else
    echo "FAIL [mutable lazy-prepare]: $flagged was not flagged" >&2
    failed=1
  fi
done

exit $failed
