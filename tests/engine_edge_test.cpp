// Engine edge cases: modality-seeded queries (keyword/vector with no
// graph patterns), cartesian joins, constant-subject patterns, descending
// order, null-returning UDFs, empty pipelines, and cache-failure
// injection mid-workload.

#include <gtest/gtest.h>

#include <atomic>

#include "core/engine.h"

namespace ids::core {
namespace {

using expr::CmpOp;
using expr::Expr;
using graph::PatternTerm;
using graph::TermId;

class EdgeFixture : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;

  void SetUp() override {
    triples_ = std::make_unique<graph::TripleStore>(kRanks);
    features_ = std::make_unique<store::FeatureStore>(kRanks);
    keywords_ = std::make_unique<store::InvertedIndex>();
    vectors_ = std::make_unique<store::VectorStore>(kRanks, 2);
    for (int i = 0; i < 8; ++i) {
      std::string iri = "doc" + std::to_string(i);
      triples_->add(iri, "type", "Doc");
      TermId id = *triples_->dict().lookup(iri);
      features_->set(id, "idx", static_cast<double>(i));
      keywords_->add_document(id, i < 4 ? "alpha topic" : "beta topic");
      std::vector<float> v = {static_cast<float>(i), 0.0f};
      vectors_->add(id, v);
      ids_.push_back(id);
    }
    triples_->add("hub", "links", "doc0");
    triples_->add("hub", "links", "doc1");
    triples_->finalize();
    features_->freeze();
    keywords_->freeze();
  }

  IdsEngine make_engine(EngineOptions opts = {}) {
    opts.topology = runtime::Topology::laptop(kRanks);
    return IdsEngine(opts, triples_.get(), features_.get(), keywords_.get(),
                     vectors_.get());
  }

  PatternTerm term(const char* iri) {
    return PatternTerm::Const(*triples_->dict().lookup(iri));
  }

  std::unique_ptr<graph::TripleStore> triples_;
  std::unique_ptr<store::FeatureStore> features_;
  std::unique_ptr<store::InvertedIndex> keywords_;
  std::unique_ptr<store::VectorStore> vectors_;
  std::vector<TermId> ids_;
};

TEST_F(EdgeFixture, KeywordOnlyQuerySeedsSolutions) {
  IdsEngine eng = make_engine();
  Query q;
  q.keywords.push_back({"d", {"alpha"}, true});
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 4u);
}

TEST_F(EdgeFixture, VectorOnlyQuerySeedsSolutions) {
  IdsEngine eng = make_engine();
  Query q;
  VectorClause vc;
  vc.var = "d";
  vc.query = {7.0f, 0.0f};
  vc.k = 2;
  vc.metric = store::Metric::kL2;
  q.vectors.push_back(vc);
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 2u);  // doc7, doc6
}

TEST_F(EdgeFixture, KeywordThenFilterComposes) {
  IdsEngine eng = make_engine();
  Query q;
  q.keywords.push_back({"d", {"beta"}, true});
  q.filters.push_back(Expr::Compare(CmpOp::kGe,
                                    Expr::Feature(Expr::Var("d"), "idx"),
                                    Expr::Constant(6.0)));
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 2u);  // doc6, doc7
}

TEST_F(EdgeFixture, ConstantSubjectPattern) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({term("hub"), term("links"), PatternTerm::Var("x")});
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 2u);
}

TEST_F(EdgeFixture, CartesianJoinWhenNoSharedVariable) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({term("hub"), term("links"), PatternTerm::Var("x")});
  q.patterns.push_back({PatternTerm::Var("y"), term("type"), term("Doc")});
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 2u * 8u);  // full cross product
}

TEST_F(EdgeFixture, OrderDescendingAndLimit) {
  IdsEngine eng = make_engine();
  eng.registry().register_static(
      "idx_of", [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        return udf::UdfResult{*ctx.features->get_double(e->id, "idx"),
                              sim::from_micros(1)};
      });
  Query q;
  q.patterns.push_back({PatternTerm::Var("d"), term("type"), term("Doc")});
  InvokeClause inv;
  inv.udf = "idx_of";
  inv.args = {Expr::Var("d")};
  inv.out_var = "v";
  q.invokes.push_back(inv);
  q.order_by = "v";
  q.order_descending = true;
  q.limit = 3;
  QueryResult r = eng.execute(q);
  ASSERT_EQ(r.solutions.num_rows(), 3u);
  int col = r.solutions.num_var_index("v");
  EXPECT_DOUBLE_EQ(r.solutions.num_at(0, col), 7.0);
  EXPECT_DOUBLE_EQ(r.solutions.num_at(1, col), 6.0);
  EXPECT_DOUBLE_EQ(r.solutions.num_at(2, col), 5.0);
}

TEST_F(EdgeFixture, NullReturningUdfRejectsRows) {
  IdsEngine eng = make_engine();
  eng.registry().register_static(
      "always_null", [](const udf::UdfContext&, std::span<const expr::Value>) {
        return udf::UdfResult{expr::null_value(), sim::from_micros(1)};
      });
  Query q;
  q.patterns.push_back({PatternTerm::Var("d"), term("type"), term("Doc")});
  q.filters.push_back(Expr::Udf("always_null", {Expr::Var("d")}));
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 0u);  // null is falsy in FILTER position
}

TEST_F(EdgeFixture, UnknownUdfInFilterRejectsEverything) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("d"), term("type"), term("Doc")});
  q.filters.push_back(Expr::Udf("no.such_udf", {Expr::Var("d")}));
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 0u);
}

TEST_F(EdgeFixture, EmptyMatchFlowsThroughWholePipeline) {
  IdsEngine eng = make_engine();
  Query q;
  // No triple has this shape.
  q.patterns.push_back({PatternTerm::Var("d"), term("links"), term("Doc")});
  q.filters.push_back(Expr::Constant(true));
  q.distinct_var = "d";
  InvokeClause inv;
  inv.udf = "whatever";
  inv.args = {Expr::Var("d")};
  inv.out_var = "v";
  q.invokes.push_back(inv);
  q.order_by = "v";
  q.limit = 5;
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), 0u);
  EXPECT_EQ(r.rows_invoked, 0u);
}

TEST_F(EdgeFixture, MatchAllTriplesPattern) {
  IdsEngine eng = make_engine();
  Query q;
  q.patterns.push_back({PatternTerm::Var("s"), PatternTerm::Var("p"),
                        PatternTerm::Var("o")});
  QueryResult r = eng.execute(q);
  EXPECT_EQ(r.solutions.num_rows(), triples_->total_triples());
}

TEST_F(EdgeFixture, CacheNodeFailureMidWorkloadRecovers) {
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.dram_capacity_bytes = 8 << 20;
  cache::CacheManager cache(cc);

  EngineOptions opts;
  opts.cache = &cache;
  IdsEngine eng = make_engine(opts);
  // UDFs run on pool threads across ranks — the counter must be atomic.
  std::atomic<int> executions{0};
  eng.registry().register_static(
      "costly", [&executions](const udf::UdfContext& ctx,
                              std::span<const expr::Value> args) {
        ++executions;
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        return udf::UdfResult{*ctx.features->get_double(e->id, "idx"),
                              sim::from_seconds(10)};
      });
  Query q;
  q.patterns.push_back({PatternTerm::Var("d"), term("type"), term("Doc")});
  InvokeClause inv;
  inv.udf = "costly";
  inv.args = {Expr::Var("d")};
  inv.out_var = "v";
  inv.use_cache = true;
  inv.cache_prefix = "sim/costly";
  q.invokes.push_back(inv);

  QueryResult cold = eng.execute(q);
  EXPECT_EQ(executions, 8);

  // Both cache nodes crash. Authoritative copies live in backing storage,
  // so the next run is hits (from backing, re-populating DRAM) — no
  // recomputation.
  cache.fail_node(0);
  cache.fail_node(1);
  QueryResult after_failure = eng.execute(q);
  EXPECT_EQ(executions, 8);
  EXPECT_EQ(after_failure.cache_hits, 8u);
  int col = after_failure.solutions.num_var_index("v");
  std::multiset<double> vals;
  for (std::size_t row = 0; row < after_failure.solutions.num_rows(); ++row) {
    vals.insert(after_failure.solutions.num_at(row, col));
  }
  EXPECT_EQ(vals.count(0.0), 1u);
  EXPECT_EQ(vals.count(7.0), 1u);
}

TEST_F(EdgeFixture, WriteThroughOffFailureForcesRecompute) {
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.dram_capacity_bytes = 8 << 20;
  cc.write_through = false;  // volatile cache: failure loses artifacts
  cache::CacheManager cache(cc);

  EngineOptions opts;
  opts.cache = &cache;
  IdsEngine eng = make_engine(opts);
  std::atomic<int> executions{0};
  eng.registry().register_static(
      "costly2", [&executions](const udf::UdfContext&,
                               std::span<const expr::Value>) {
        ++executions;
        return udf::UdfResult{1.0, sim::from_seconds(10)};
      });
  Query q;
  q.patterns.push_back({PatternTerm::Var("d"), term("type"), term("Doc")});
  InvokeClause inv;
  inv.udf = "costly2";
  inv.args = {Expr::Var("d")};
  inv.out_var = "v";
  inv.use_cache = true;
  inv.cache_prefix = "volatile/costly2";
  q.invokes.push_back(inv);

  (void)eng.execute(q);
  EXPECT_EQ(executions, 8);
  cache.fail_node(0);
  cache.fail_node(1);
  QueryResult again = eng.execute(q);
  // Total miss falls back to re-executing the simulation — the paper's
  // "last resort on a total miss".
  EXPECT_EQ(executions, 16);
  EXPECT_EQ(again.cache_misses, 8u);
}

TEST_F(EdgeFixture, IvfVectorClauseIsCheaperAndFindsNeighbours) {
  IdsEngine eng = make_engine();
  auto run = [&](int nprobe) {
    Query q;
    q.patterns.push_back({PatternTerm::Var("d"), term("type"), term("Doc")});
    VectorClause vc;
    vc.var = "d";
    vc.query = {7.0f, 0.0f};
    vc.k = 2;
    vc.metric = store::Metric::kL2;
    vc.ivf_nprobe = nprobe;
    vc.ivf_clusters = 4;
    q.vectors.push_back(vc);
    return eng.execute(q);
  };
  QueryResult exact = run(0);
  EXPECT_EQ(exact.solutions.num_rows(), 2u);
  // Probing every cluster is exhaustive: same answer.
  QueryResult full_probe = run(4);
  EXPECT_EQ(full_probe.solutions.num_rows(), exact.solutions.num_rows());
  // A 1-probe search scans less modeled work.
  QueryResult one_probe = run(1);
  EXPECT_LE(one_probe.stage_seconds("vector"),
            exact.stage_seconds("vector"));
}

TEST_F(EdgeFixture, ExplainDescribesThePlan) {
  IdsEngine eng = make_engine();
  eng.registry().register_static(
      "cheap", [](const udf::UdfContext&, std::span<const expr::Value>) {
        return udf::UdfResult{true, sim::from_micros(1)};
      });
  eng.registry().register_static(
      "pricey", [](const udf::UdfContext&, std::span<const expr::Value>) {
        return udf::UdfResult{true, sim::from_seconds(2)};
      });
  Query q;
  q.patterns.push_back({PatternTerm::Var("d"), term("type"), term("Doc")});
  q.patterns.push_back({term("hub"), term("links"), PatternTerm::Var("d")});
  // Written expensive-first.
  q.filters.push_back(Expr::Udf("pricey", {Expr::Var("d")}));
  q.filters.push_back(Expr::Udf("cheap", {Expr::Var("d")}));
  q.distinct_var = "d";
  q.limit = 4;

  std::string before = eng.explain(q);
  EXPECT_NE(before.find("scan"), std::string::npos);
  EXPECT_NE(before.find("join"), std::string::npos);
  EXPECT_NE(before.find("est="), std::string::npos);
  EXPECT_NE(before.find("distinct ?d"), std::string::npos);
  EXPECT_NE(before.find("limit 4"), std::string::npos);
  // No profiles yet: the chain stays as written.
  EXPECT_LT(before.find("pricey"), before.find("cheap"));

  // After a profiled run, explain shows the reordered chain.
  (void)eng.execute(q);
  std::string after = eng.explain(q);
  EXPECT_LT(after.find("cheap"), after.find("pricey"));
  EXPECT_NE(after.find("est_cost"), std::string::npos);
}

TEST_F(EdgeFixture, HeterogeneityMakesSlowRanksSlow) {
  // One rank at 1/10 speed: the same homogeneous-work FILTER slows by
  // roughly the rank's share of rows (sanity of the speed model).
  auto run = [&](runtime::HeteroProfile profile) {
    EngineOptions opts;
    opts.hetero = std::move(profile);
    opts.rebalance = RebalancePolicy::kNone;
    IdsEngine eng = make_engine(opts);
    eng.registry().register_static(
        "work", [](const udf::UdfContext&, std::span<const expr::Value>) {
          return udf::UdfResult{true, sim::from_seconds(1)};
        });
    Query q;
    q.patterns.push_back({PatternTerm::Var("d"), term("type"), term("Doc")});
    q.filters.push_back(Expr::Udf("work", {Expr::Var("d")}));
    return eng.execute(q).stage_seconds("filter");
  };
  double base = run(runtime::HeteroProfile::uniform(kRanks, 1.0));
  double slow = run(runtime::HeteroProfile::groups({{1, 0.1}, {3, 1.0}}));
  EXPECT_GT(slow, base * 2);
}

}  // namespace
}  // namespace ids::core
