// NCNPR workflow integration tests: dataset + UDF registration + the
// 5-step query, threshold sweep monotonicity, cache acceleration, and
// planner learning across repeated queries.

#include <gtest/gtest.h>

#include "core/workflow.h"

namespace ids::core {
namespace {

datagen::LifeSciConfig small_config() {
  datagen::LifeSciConfig cfg;
  cfg.num_families = 8;
  cfg.proteins_per_family = 8;
  cfg.num_related_families = 4;
  cfg.compounds_per_family = 8;
  cfg.seq_len_mean = 160;
  cfg.seq_len_jitter = 20;
  cfg.seed = 99;
  return cfg;
}

class WorkflowTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 8;
  void SetUp() override { data_ = build_ncnpr_data(small_config(), kRanks); }

  IdsEngine make_engine(EngineOptions opts = {}) {
    opts.topology = runtime::Topology::laptop(kRanks);
    return IdsEngine(opts, data_.triples.get(), data_.features.get(),
                     data_.keywords.get(), data_.vectors.get());
  }

  NcnprData data_;
};

TEST_F(WorkflowTest, DatasetHasExpectedShape) {
  EXPECT_EQ(data_.dataset.proteins.size(), 64u);
  EXPECT_EQ(data_.dataset.compounds.size(), 64u);
  EXPECT_NE(data_.dataset.target_protein, graph::kInvalidTerm);
  EXPECT_FALSE(data_.target_sequence.empty());
  EXPECT_GT(data_.triples->total_triples(), 200u);
  // The target IRI matches the paper's protein of interest.
  EXPECT_EQ(data_.triples->dict().name(data_.dataset.target_protein),
            "uniprot:P29274");
}

TEST_F(WorkflowTest, UdfsRegistered) {
  IdsEngine eng = make_engine();
  register_ncnpr_udfs(&eng, data_);
  for (const char* name : {"ncnpr.sw_similarity", "ncnpr.pic50", "ncnpr.dtba",
                           "ncnpr.dock"}) {
    EXPECT_NE(eng.registry().find(name), nullptr) << name;
  }
}

TEST_F(WorkflowTest, SwUdfMatchesDirectComputation) {
  IdsEngine eng = make_engine();
  register_ncnpr_udfs(&eng, data_);
  const udf::UdfInfo* sw = eng.registry().find("ncnpr.sw_similarity");
  ASSERT_NE(sw, nullptr);
  udf::UdfContext ctx;
  ctx.features = data_.features.get();

  // The target protein scores 1.0 against itself.
  std::vector<expr::Value> args = {
      expr::Entity{data_.dataset.target_protein}};
  udf::UdfResult r = sw->fn(ctx, args);
  double sim = 0;
  ASSERT_TRUE(expr::as_double(r.value, &sim));
  EXPECT_DOUBLE_EQ(sim, 1.0);
  EXPECT_GT(r.modeled_cost, 0u);
}

TEST_F(WorkflowTest, ThresholdSweepIsMonotonic) {
  // Lower Smith-Waterman thresholds can only admit more compounds — the
  // monotonicity behind Table 2's 56 -> 1129 growth.
  std::size_t prev = 0;
  for (double threshold : {0.9, 0.4, 0.15, 0.02}) {
    IdsEngine eng = make_engine();
    register_ncnpr_udfs(&eng, data_);
    NcnprThresholds t;
    t.min_sw_similarity = threshold;
    t.min_pic50 = 0.0;   // isolate the SW effect
    t.min_dtba = 0.0;
    Query q = make_ncnpr_query(data_, t, /*with_docking=*/false);
    QueryResult r = eng.execute(q);
    EXPECT_GE(r.solutions.num_rows(), prev) << "threshold " << threshold;
    prev = r.solutions.num_rows();
  }
  EXPECT_GT(prev, 0u);
}

TEST_F(WorkflowTest, FullQueryDocksDistinctCompounds) {
  IdsEngine eng = make_engine();
  register_ncnpr_udfs(&eng, data_);
  NcnprThresholds t;
  t.min_sw_similarity = 0.9;
  t.min_pic50 = 4.5;
  t.min_dtba = 0.0;  // keep the candidate set non-trivial at this tiny scale
  Query q = make_ncnpr_query(data_, t);
  QueryResult r = eng.execute(q);

  EXPECT_GT(r.rows_invoked, 0u);
  EXPECT_EQ(r.rows_invoked, r.solutions.num_rows());  // one dock per compound
  int energy = r.solutions.num_var_index("energy");
  ASSERT_GE(energy, 0);
  // Ordered by energy ascending (best binder first).
  for (std::size_t row = 1; row < r.solutions.num_rows(); ++row) {
    EXPECT_LE(r.solutions.num_at(row - 1, energy),
              r.solutions.num_at(row, energy));
  }
  // Docking dominates the runtime, as in Fig 4.
  EXPECT_GT(r.stage_seconds("invoke:ncnpr.dock"),
            r.seconds_excluding("invoke:"));
}

TEST_F(WorkflowTest, CachingAcceleratesRepeatQueries) {
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.dram_capacity_bytes = 64 << 20;
  cache::CacheManager cache(cc);

  EngineOptions opts;
  opts.cache = &cache;
  IdsEngine eng = make_engine(opts);
  register_ncnpr_udfs(&eng, data_);
  NcnprThresholds t;
  t.min_sw_similarity = 0.9;
  t.min_pic50 = 4.5;
  t.min_dtba = 0.0;
  Query q = make_ncnpr_query(data_, t, true, /*docking_cached=*/true);

  QueryResult cold = eng.execute(q);
  ASSERT_GT(cold.cache_misses, 0u);
  QueryResult warm = eng.execute(q);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.cache_hits, cold.cache_misses);
  // The paper reports 5-15x end-to-end; at minimum the warm run must win
  // clearly once docking is served from the cache.
  EXPECT_LT(warm.total_seconds, cold.total_seconds / 2.0);
  // Same compounds, same energies.
  EXPECT_EQ(warm.solutions.num_rows(), cold.solutions.num_rows());
  int ec = warm.solutions.num_var_index("energy");
  for (std::size_t row = 0; row < warm.solutions.num_rows(); ++row) {
    EXPECT_DOUBLE_EQ(warm.solutions.num_at(row, ec),
                     cold.solutions.num_at(row, ec));
  }
}

TEST_F(WorkflowTest, ProfilesImproveFilterOrderingOverTime) {
  IdsEngine eng = make_engine();
  register_ncnpr_udfs(&eng, data_);
  NcnprThresholds t;
  t.min_sw_similarity = 0.9;  // SW rejects most rows cheaply
  Query q = make_ncnpr_query(data_, t, /*with_docking=*/false);

  // First run: no profiles; the query lists DTBA (expensive) first, so
  // every row pays it. Later runs reorder SW (cheap, high-rejection)
  // before DTBA and the FILTER stage gets faster.
  QueryResult first = eng.execute(q);
  QueryResult second = eng.execute(q);
  QueryResult third = eng.execute(q);
  EXPECT_LT(second.stage_seconds("filter"),
            first.stage_seconds("filter") * 0.8);
  // And the result set is unchanged by the reordering.
  EXPECT_EQ(second.solutions.num_rows(), first.solutions.num_rows());
  EXPECT_EQ(third.solutions.num_rows(), first.solutions.num_rows());
}

TEST_F(WorkflowTest, ModuleLoadCostAppearsOnceColdPerRank) {
  IdsEngine eng = make_engine();
  register_ncnpr_udfs(&eng, data_);
  NcnprThresholds t;
  t.min_sw_similarity = 0.0;
  t.min_pic50 = 0.0;
  t.min_dtba = 0.0;
  Query q = make_ncnpr_query(data_, t, /*with_docking=*/false);
  QueryResult cold = eng.execute(q);
  QueryResult warm = eng.execute(q);
  // The 2 s/rank Python-module import is gone on the warm run.
  EXPECT_LT(warm.stage_seconds("filter") + 1.0,
            cold.stage_seconds("filter"));
}

TEST_F(WorkflowTest, DeterministicEndToEnd) {
  auto run = [&]() {
    IdsEngine eng = make_engine();
    register_ncnpr_udfs(&eng, data_);
    NcnprThresholds t;
    t.min_sw_similarity = 0.9;
    t.min_pic50 = 4.5;
    t.min_dtba = 0.0;
    return eng.execute(make_ncnpr_query(data_, t));
  };
  QueryResult a = run();
  QueryResult b = run();
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.solutions.num_rows(), b.solutions.num_rows());
}

}  // namespace
}  // namespace ids::core
