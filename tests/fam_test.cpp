// OpenFAM-substitute tests: allocation, data ops, atomics, capacity
// accounting, cost model, and server failure semantics.

#include <gtest/gtest.h>

#include <cstring>

#include "fam/fam.h"

namespace ids::fam {
namespace {

FamOptions two_servers() {
  FamOptions o;
  o.server_nodes = {0, 1};
  o.server_capacity_bytes = 1024;
  return o;
}

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(Fam, AllocateLookupRoundTrip) {
  FamService fam(two_servers());
  auto d = fam.allocate("region/a", 128);
  ASSERT_TRUE(d.ok());
  auto found = fam.lookup("region/a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().region, d.value().region);
  EXPECT_EQ(found.value().size, 128u);
}

TEST(Fam, DuplicateNameRejected) {
  FamService fam(two_servers());
  ASSERT_TRUE(fam.allocate("x", 16).ok());
  auto again = fam.allocate("x", 16);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(Fam, PutGetRoundTrip) {
  FamService fam(two_servers());
  auto d = fam.allocate("blob", 64);
  ASSERT_TRUE(d.ok());
  sim::VirtualClock clock;
  std::string payload = "hello fabric-attached memory";
  ASSERT_TRUE(fam.put(clock, 0, d.value(), 4, bytes(payload)).ok());
  std::string out(payload.size(), '\0');
  ASSERT_TRUE(fam.get(clock, 0, d.value(), 4,
                      {reinterpret_cast<std::byte*>(out.data()), out.size()})
                  .ok());
  EXPECT_EQ(out, payload);
  EXPECT_GT(clock.now(), 0u);
}

TEST(Fam, OutOfRangeAccessRejected) {
  FamService fam(two_servers());
  auto d = fam.allocate("small", 8);
  ASSERT_TRUE(d.ok());
  sim::VirtualClock clock;
  std::string p = "0123456789";
  EXPECT_EQ(fam.put(clock, 0, d.value(), 0, bytes(p)).code(),
            StatusCode::kOutOfRange);
}

TEST(Fam, CapacityEnforcedAndLeastLoadedPlacement) {
  FamService fam(two_servers());
  ASSERT_TRUE(fam.allocate("a", 800).ok());      // server 0 or 1
  auto b = fam.allocate("b", 800);               // must land on the other
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(fam.used_bytes(0) + fam.used_bytes(1), 1600u);
  auto c = fam.allocate("c", 800);               // no room anywhere
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

TEST(Fam, DeallocateFreesCapacity) {
  FamService fam(two_servers());
  auto d = fam.allocate("a", 1000, 0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(fam.used_bytes(0), 1000u);
  ASSERT_TRUE(fam.deallocate("a").ok());
  EXPECT_EQ(fam.used_bytes(0), 0u);
  EXPECT_EQ(fam.deallocate("a").code(), StatusCode::kNotFound);
}

TEST(Fam, FetchAddAndCompareSwap) {
  FamService fam(two_servers());
  auto d = fam.allocate("counter", 16);
  ASSERT_TRUE(d.ok());
  sim::VirtualClock clock;
  auto old = fam.fetch_add(clock, 0, d.value(), 0, 5);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old.value(), 0u);
  old = fam.fetch_add(clock, 0, d.value(), 0, 3);
  EXPECT_EQ(old.value(), 5u);

  auto cas = fam.compare_swap(clock, 0, d.value(), 0, 8, 100);
  ASSERT_TRUE(cas.ok());
  EXPECT_EQ(cas.value(), 8u);  // previous value; swap succeeded
  cas = fam.compare_swap(clock, 0, d.value(), 0, 8, 200);
  EXPECT_EQ(cas.value(), 100u);  // expected mismatch: no swap
}

TEST(Fam, UnalignedAtomicRejected) {
  FamService fam(two_servers());
  auto d = fam.allocate("c", 16);
  sim::VirtualClock clock;
  EXPECT_EQ(fam.fetch_add(clock, 0, d.value(), 3, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Fam, LocalAccessCheaperThanRemote) {
  FamService fam(two_servers());
  auto d = fam.allocate("blob", 512, 1);  // on server 1 (node 1)
  ASSERT_TRUE(d.ok());
  std::string p(256, 'x');
  sim::VirtualClock local;
  sim::VirtualClock remote;
  ASSERT_TRUE(fam.put(local, 1, d.value(), 0, bytes(p)).ok());
  ASSERT_TRUE(fam.put(remote, 0, d.value(), 0, bytes(p)).ok());
  EXPECT_LT(local.now(), remote.now());
}

TEST(Fam, ServerFailureLosesDataButFreesNames) {
  FamService fam(two_servers());
  auto d = fam.allocate("victim", 64, 0);
  ASSERT_TRUE(d.ok());
  fam.fail_server(0);
  EXPECT_FALSE(fam.server_alive(0));

  sim::VirtualClock clock;
  std::string out(8, '\0');
  EXPECT_FALSE(fam.get(clock, 0, d.value(), 0,
                       {reinterpret_cast<std::byte*>(out.data()), out.size()})
                   .ok());
  EXPECT_FALSE(fam.lookup("victim").ok());  // name records dropped

  fam.recover_server(0);
  EXPECT_TRUE(fam.server_alive(0));
  EXPECT_EQ(fam.used_bytes(0), 0u);
  // The name can be allocated again after recovery.
  EXPECT_TRUE(fam.allocate("victim", 64, 0).ok());
}

TEST(Fam, FailedServerNotUsedForPlacement) {
  FamService fam(two_servers());
  fam.fail_server(0);
  auto d = fam.allocate("x", 64);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().server, 1);
}

TEST(Fam, TransferCostScalesWithSize) {
  FamService fam(two_servers());
  EXPECT_LT(fam.transfer_cost(0, 1, 1024), fam.transfer_cost(0, 1, 1 << 20));
  EXPECT_LT(fam.transfer_cost(0, 0, 1 << 20), fam.transfer_cost(0, 1, 1 << 20));
}

}  // namespace
}  // namespace ids::fam
