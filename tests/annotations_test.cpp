// Compile-time and behavioral smoke tests for common/thread_annotations.h.
//
// The point of this target is mostly that it *compiles* on every supported
// compiler: all annotation macros are exercised in one translation unit, so
// a macro that fails to expand to nothing on GCC (or to a valid attribute
// on Clang) breaks the build here rather than deep inside a subsystem.

#include <gtest/gtest.h>

#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"

namespace ids {
namespace {

// The detector macro is always defined, and active exactly on Clang.
static_assert(IDS_THREAD_SAFETY_ANALYSIS_ENABLED == 0 ||
                  IDS_THREAD_SAFETY_ANALYSIS_ENABLED == 1,
              "detector must be a boolean constant");
#if defined(__clang__)
static_assert(IDS_THREAD_SAFETY_ANALYSIS_ENABLED == 1,
              "annotations must be active under Clang");
#else
static_assert(IDS_THREAD_SAFETY_ANALYSIS_ENABLED == 0,
              "annotations must be no-ops outside Clang");
#endif

// ids::Mutex must satisfy the standard Lockable requirements so it can
// back std-style generic code as well as MutexLock.
static_assert(!std::is_copy_constructible_v<Mutex>);
static_assert(!std::is_copy_constructible_v<MutexLock>);

/// A miniature annotated class exercising every macro in anger. Under
/// Clang -Wthread-safety this compiles warning-free only if the contract
/// is coherent; under GCC the macros vanish.
class AnnotatedCounter {
 public:
  void increment() IDS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    increment_locked();
  }

  // No IDS_EXCLUDES: a try-path is legal to attempt any time (it simply
  // fails when another thread holds the lock).
  bool try_increment() {
    if (!mutex_.try_lock()) return false;
    increment_locked();
    mutex_.unlock();
    return true;
  }

  int value() const IDS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return value_;
  }

  Mutex& mutex() IDS_RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  void increment_locked() IDS_REQUIRES(mutex_) { ++value_; }

  mutable Mutex mutex_;
  int value_ IDS_GUARDED_BY(mutex_) = 0;
  int* remote_ IDS_PT_GUARDED_BY(mutex_) = nullptr;
};

TEST(Annotations, AnnotatedMutexIsAMutex) {
  AnnotatedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), 4000);
}

TEST(Annotations, TryLockPath) {
  AnnotatedCounter counter;
  EXPECT_TRUE(counter.try_increment());
  EXPECT_EQ(counter.value(), 1);

  // Hold the lock from another thread; try_increment must fail cleanly
  // (try_lock from the owning thread would be UB for the wrapped mutex).
  Mutex handshake;
  CondVar cv;
  bool holder_ready = false, release = false;
  std::thread holder([&] {
    counter.mutex().lock();
    {
      MutexLock lock(handshake);
      holder_ready = true;
    }
    cv.notify_all();
    {
      MutexLock lock(handshake);
      cv.wait(handshake, [&] { return release; });
    }
    counter.mutex().unlock();
  });
  {
    MutexLock lock(handshake);
    cv.wait(handshake, [&] { return holder_ready; });
  }
  EXPECT_FALSE(counter.try_increment());  // held by the other thread
  {
    MutexLock lock(handshake);
    release = true;
  }
  cv.notify_all();
  holder.join();

  EXPECT_TRUE(counter.try_increment());
  EXPECT_EQ(counter.value(), 2);
}

TEST(Annotations, CondVarHandshakesWithAnnotatedMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (local, so annotation not needed)

  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.wait(mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

}  // namespace
}  // namespace ids
