// Deployment-layer tests: launcher/client/agent lifecycle, the text query
// endpoint, live updates, dynamic UDF import/reload, logs, and the
// locality-aware scheduler.

#include <gtest/gtest.h>

#include "deploy/scheduler.h"
#include "deploy/service.h"

namespace ids::deploy {
namespace {

core::EngineOptions laptop_options(int ranks = 4) {
  core::EngineOptions o;
  o.topology = runtime::Topology::laptop(ranks);
  return o;
}

TEST(Launcher, LaunchAndTeardownLifecycle) {
  DatastoreLauncher launcher;
  auto id = launcher.launch(laptop_options());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(launcher.active_sessions(), 1u);
  EXPECT_NE(launcher.session(id.value()), nullptr);

  EXPECT_TRUE(launcher.teardown(id.value()).ok());
  EXPECT_EQ(launcher.active_sessions(), 0u);
  EXPECT_EQ(launcher.session(id.value()), nullptr);
  EXPECT_EQ(launcher.teardown(id.value()).code(), StatusCode::kNotFound);
}

TEST(Launcher, RejectsEmptyTopology) {
  DatastoreLauncher launcher;
  core::EngineOptions o;
  o.topology.num_nodes = 0;
  EXPECT_FALSE(launcher.launch(o).ok());
}

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = launcher_.launch(laptop_options());
    ASSERT_TRUE(id.ok());
    client_ = std::make_unique<DatastoreClient>(&launcher_, id.value());
    id_ = id.value();
  }

  DatastoreLauncher launcher_;
  std::unique_ptr<DatastoreClient> client_;
  SessionId id_ = 0;
};

TEST_F(ClientTest, UpdateThenTextQuery) {
  std::vector<TripleUpdate> facts;
  for (int i = 0; i < 6; ++i) {
    facts.push_back({"item" + std::to_string(i), "rdf:type", "Thing"});
  }
  ASSERT_TRUE(client_->update(facts).ok());

  auto r = client_->query("SELECT ?x WHERE { ?x rdf:type Thing }");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().solutions.num_rows(), 6u);
}

TEST_F(ClientTest, IncrementalUpdatesAreVisible) {
  ASSERT_TRUE(client_->update({{"a", "knows", "b"}}).ok());
  auto r1 = client_->query("SELECT ?x ?y WHERE { ?x knows ?y }");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().solutions.num_rows(), 1u);

  ASSERT_TRUE(client_->update({{"b", "knows", "c"}, {"c", "knows", "a"}}).ok());
  auto r2 = client_->query("SELECT ?x ?y WHERE { ?x knows ?y }");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().solutions.num_rows(), 3u);
}

TEST_F(ClientTest, ParseErrorsSurfaceAsStatus) {
  auto r = client_->query("SELEKT broken");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ClientTest, ImportUdfAndUseInQuery) {
  ASSERT_TRUE(client_->update({{"n1", "rdf:type", "Num"},
                               {"n2", "rdf:type", "Num"}})
                  .ok());
  IdsSession* s = launcher_.session(id_);
  s->features().set(*s->triples().dict().lookup("n1"), "v", 1.0);
  s->features().set(*s->triples().dict().lookup("n2"), "v", 9.0);

  ASSERT_TRUE(client_
                  ->import_udf("user", "big",
                               [](const udf::UdfContext& ctx,
                                  std::span<const expr::Value> args) {
                                 const auto* e =
                                     std::get_if<expr::Entity>(&args[0]);
                                 auto v = ctx.features->get_double(e->id, "v");
                                 return udf::UdfResult{v && *v > 5.0,
                                                       sim::from_micros(1)};
                               },
                               sim::from_millis(100))
                  .ok());

  auto r = client_->query(
      "SELECT ?x WHERE { ?x rdf:type Num } FILTER user.big(?x)");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().solutions.num_rows(), 1u);

  // Replace the module and force a reload: behaviour flips.
  ASSERT_TRUE(client_
                  ->import_udf("user", "big",
                               [](const udf::UdfContext&,
                                  std::span<const expr::Value>) {
                                 return udf::UdfResult{true,
                                                       sim::from_micros(1)};
                               },
                               sim::from_millis(100))
                  .ok());
  ASSERT_TRUE(client_->reload_module("user").ok());
  auto r2 = client_->query(
      "SELECT ?x WHERE { ?x rdf:type Num } FILTER user.big(?x)");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().solutions.num_rows(), 2u);
}

TEST_F(ClientTest, LogsAccumulateAndDrain) {
  ASSERT_TRUE(client_->update({{"a", "b", "c"}}).ok());
  (void)client_->query("SELECT ?x WHERE { ?x b c }");
  std::vector<LogEntry> logs = client_->fetch_logs();
  EXPECT_GT(logs.size(), 2u);
  bool saw_query_done = false;
  for (const auto& e : logs) {
    if (e.component == "backend" && e.message.find("query done") == 0) {
      saw_query_done = true;
    }
  }
  EXPECT_TRUE(saw_query_done);
  EXPECT_TRUE(client_->fetch_logs().empty());  // drained
}

TEST_F(ClientTest, DisconnectedAfterTeardown) {
  ASSERT_TRUE(launcher_.teardown(id_).ok());
  EXPECT_FALSE(client_->connected());
  EXPECT_EQ(client_->query("SELECT ?x WHERE { ?x a b }").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(client_->update({{"a", "b", "c"}}).code(),
            StatusCode::kUnavailable);
}

TEST(Launcher, MultipleConcurrentSessions) {
  DatastoreLauncher launcher;
  auto a = launcher.launch(laptop_options(2));
  auto b = launcher.launch(laptop_options(4));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());

  DatastoreClient ca(&launcher, a.value());
  DatastoreClient cb(&launcher, b.value());
  ASSERT_TRUE(ca.update({{"x", "in", "a"}}).ok());
  ASSERT_TRUE(cb.update({{"y", "in", "b"}}).ok());
  // Sessions are isolated.
  auto ra = ca.query("SELECT ?s WHERE { ?s in b }");
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(ra.value().solutions.num_rows(), 0u);
}

// ---- Locality-aware scheduler ----------------------------------------------

TEST(Scheduler, PlacesTasksWithTheirData) {
  cache::CacheConfig cc;
  cc.num_nodes = 4;
  cc.dram_capacity_bytes = 8 << 20;
  cache::CacheManager cache(cc);
  sim::VirtualClock clock;
  // Objects pinned to distinct nodes in REVERSE task order, so the
  // locality-blind round-robin baseline misplaces every task.
  for (int n = 0; n < 4; ++n) {
    cache::PlacementHint hint;
    hint.target_node = 3 - n;
    cache.put(clock, 0, "obj" + std::to_string(n), std::string(200'000, 'x'),
              hint);
  }

  std::vector<TaskSpec> tasks;
  for (int n = 0; n < 4; ++n) {
    tasks.push_back({"task" + std::to_string(n), {"obj" + std::to_string(n)}});
  }
  Placement p = schedule_by_locality(cache, tasks);
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(p.node_of_task.at("task" + std::to_string(n)), 3 - n);
  }
  EXPECT_LT(p.transfer_seconds, p.round_robin_seconds);
  EXPECT_GT(p.improvement(), 1.0);
}

TEST(Scheduler, RespectsSlotCapacity) {
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cache::CacheManager cache(cc);
  sim::VirtualClock clock;
  cache::PlacementHint hint;
  hint.target_node = 0;
  for (int i = 0; i < 4; ++i) {
    cache.put(clock, 0, "o" + std::to_string(i), std::string(100'000, 'x'),
              hint);
  }
  // All data on node 0, but only 2 slots there.
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({"t" + std::to_string(i), {"o" + std::to_string(i)}});
  }
  SchedulerOptions opts;
  opts.slots_per_node = 2;
  Placement p = schedule_by_locality(cache, tasks, opts);
  int on0 = 0;
  for (const auto& [task, node] : p.node_of_task) {
    if (node == 0) ++on0;
  }
  EXPECT_EQ(on0, 2);
}

TEST(Scheduler, AbsentObjectsDoNotBias) {
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cache::CacheManager cache(cc);
  std::vector<TaskSpec> tasks = {{"t", {"missing-object"}}};
  Placement p = schedule_by_locality(cache, tasks);
  EXPECT_EQ(p.node_of_task.count("t"), 1u);
}

}  // namespace
}  // namespace ids::deploy
