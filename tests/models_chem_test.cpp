// Tests for the chemistry stack: molecules, structure prediction, docking
// (determinism, serialization, energetics), DTBA, pIC50, and the molecule
// generator.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "datagen/lifesci.h"
#include "models/cost_profile.h"
#include "models/docking.h"
#include "models/dtba.h"
#include "models/molecule.h"
#include "models/molgen.h"
#include "models/pic50.h"
#include "models/structure.h"

namespace ids::models {
namespace {

TEST(Molecule, ElementsFromSmiles) {
  auto e = elements_from_smiles("CC(=O)Nc1ccc1");
  // C,C,O,N,c,c,c,c -> 8 atoms.
  EXPECT_EQ(e.size(), 8u);
  EXPECT_EQ(e[2], Element::O);
  EXPECT_EQ(e[3], Element::N);
}

TEST(Molecule, LigandEmbeddingIsDeterministic) {
  Molecule a = ligand_from_smiles("CCNOC", 5);
  Molecule b = ligand_from_smiles("CCNOC", 5);
  ASSERT_EQ(a.atoms.size(), b.atoms.size());
  for (std::size_t i = 0; i < a.atoms.size(); ++i) {
    EXPECT_FLOAT_EQ(a.atoms[i].x, b.atoms[i].x);
    EXPECT_FLOAT_EQ(a.atoms[i].y, b.atoms[i].y);
    EXPECT_FLOAT_EQ(a.atoms[i].z, b.atoms[i].z);
  }
  // Different seed -> different conformer.
  Molecule c = ligand_from_smiles("CCNOC", 6);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.atoms.size(); ++i) {
    if (a.atoms[i].x != c.atoms[i].x) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Molecule, LigandCenteredAtOrigin) {
  Molecule m = ligand_from_smiles("CCCCCCCCCC", 0);
  Vec3 c = m.centroid();
  EXPECT_NEAR(c.x, 0.0, 1e-4);
  EXPECT_NEAR(c.y, 0.0, 1e-4);
  EXPECT_NEAR(c.z, 0.0, 1e-4);
}

TEST(Molecule, BondLengthsArePlausible) {
  Molecule m = ligand_from_smiles("CCCCCC", 1);
  for (std::size_t i = 1; i < m.atoms.size(); ++i) {
    double dx = m.atoms[i].x - m.atoms[i - 1].x;
    double dy = m.atoms[i].y - m.atoms[i - 1].y;
    double dz = m.atoms[i].z - m.atoms[i - 1].z;
    EXPECT_NEAR(std::sqrt(dx * dx + dy * dy + dz * dz), 1.5, 1e-3);
  }
}

TEST(Molecule, RotationPreservesShape) {
  Molecule m = ligand_from_smiles("CCNCCOCC", 2);
  double d01_before = std::hypot(m.atoms[0].x - m.atoms[1].x,
                                 m.atoms[0].y - m.atoms[1].y,
                                 m.atoms[0].z - m.atoms[1].z);
  m.rotate(0.7, -0.3, 1.9);
  double d01_after = std::hypot(m.atoms[0].x - m.atoms[1].x,
                                m.atoms[0].y - m.atoms[1].y,
                                m.atoms[0].z - m.atoms[1].z);
  EXPECT_NEAR(d01_before, d01_after, 1e-4);
}

TEST(Molecule, MolecularWeightCounts) {
  // C2: 2 * 12.011.
  EXPECT_NEAR(molecular_weight("CC"), 24.022, 1e-3);
  EXPECT_GT(molecular_weight("CCS"), molecular_weight("CCC"));
}

TEST(Structure, DeterministicAndCompleteTrace) {
  Rng rng(3);
  std::string seq = datagen::random_protein_sequence(rng, 150);
  PredictedStructure a = predict_structure(seq);
  PredictedStructure b = predict_structure(seq);
  ASSERT_EQ(a.ca_trace.size(), seq.size());
  for (std::size_t i = 0; i < a.ca_trace.size(); ++i) {
    EXPECT_FLOAT_EQ(a.ca_trace[i].x, b.ca_trace[i].x);
  }
  EXPECT_GT(a.mean_confidence, 40.0);
  EXPECT_LE(a.mean_confidence, 100.0);
  EXPECT_EQ(a.work_units, 150u * 150u);
}

TEST(Structure, PropensityClasses) {
  EXPECT_EQ(residue_propensity('A'), SecondaryStructure::kHelix);
  EXPECT_EQ(residue_propensity('V'), SecondaryStructure::kSheet);
  EXPECT_EQ(residue_propensity('G'), SecondaryStructure::kCoil);
}

TEST(Structure, ReceptorPocketIsCompactAndCentered) {
  Rng rng(5);
  std::string seq = datagen::random_protein_sequence(rng, 300);
  PredictedStructure s = predict_structure(seq);
  Molecule rec = receptor_from_structure(s, 48);
  ASSERT_EQ(rec.atoms.size(), 48u);
  // The anchor residue sits at the origin; some pocket atoms must be in
  // docking range of it.
  int close = 0;
  for (const auto& a : rec.atoms) {
    if (std::sqrt(a.x * a.x + a.y * a.y + a.z * a.z) < 15.0) ++close;
  }
  EXPECT_GT(close, 8);
}

TEST(Docking, DeterministicForSameInputs) {
  Rng rng(7);
  std::string seq = datagen::random_protein_sequence(rng, 200);
  DockingEngine eng(receptor_from_structure(predict_structure(seq)));
  DockingResult a = eng.dock_smiles("CCNC(=O)c1ccc1", 3);
  DockingResult b = eng.dock_smiles("CCNC(=O)c1ccc1", 3);
  EXPECT_EQ(a, b);
  DockingResult c = eng.dock_smiles("CCNC(=O)c1ccc1", 4);
  EXPECT_NE(a.best_energy, c.best_energy);  // seed matters
}

TEST(Docking, FindsNegativeEnergyPoses) {
  Rng rng(11);
  std::string seq = datagen::random_protein_sequence(rng, 250);
  DockingEngine eng(receptor_from_structure(predict_structure(seq)));
  Rng gen(13);
  int negative = 0;
  for (int i = 0; i < 5; ++i) {
    DockingResult r = eng.dock_smiles(generate_smiles(gen), 0);
    if (r.best_energy < -0.5) ++negative;
  }
  EXPECT_GE(negative, 3);  // most drug-like ligands find a binding pose
}

TEST(Docking, ModeEnergiesSortedBestFirst) {
  Rng rng(17);
  std::string seq = datagen::random_protein_sequence(rng, 200);
  DockingEngine eng(receptor_from_structure(predict_structure(seq)));
  DockingResult r = eng.dock_smiles("CCCNCCOC1CCCC1", 0);
  ASSERT_FALSE(r.mode_energies.empty());
  EXPECT_DOUBLE_EQ(r.best_energy, r.mode_energies.front());
  for (std::size_t i = 1; i < r.mode_energies.size(); ++i) {
    EXPECT_LE(r.mode_energies[i - 1], r.mode_energies[i]);
  }
}

TEST(Docking, WorkScalesWithLigandSizeAndExhaustiveness) {
  Rng rng(19);
  std::string seq = datagen::random_protein_sequence(rng, 200);
  Molecule rec = receptor_from_structure(predict_structure(seq));

  DockingEngine eng8(rec, DockingParams{});
  DockingParams p16;
  p16.exhaustiveness = 16;
  DockingEngine eng16(rec, p16);

  DockingResult small = eng8.dock_smiles("CCCC", 0);
  DockingResult large = eng8.dock_smiles("CCCCCCCCCCCCCCCCCCCCCCCC", 0);
  EXPECT_GT(large.work_units, small.work_units);

  DockingResult deep = eng16.dock_smiles("CCCC", 0);
  EXPECT_GT(deep.work_units, small.work_units);
}

TEST(Docking, ModeledCostInPaperEnvelope) {
  // Typical drug-like ligands must cost tens of seconds (the paper reports
  // 31-44 s per compound; we accept a slightly wider band for the size
  // spread of the synthetic library).
  Rng rng(23);
  std::string seq = datagen::random_protein_sequence(rng, 250);
  DockingEngine eng(receptor_from_structure(predict_structure(seq)));
  CostProfile costs;
  Rng gen(29);
  for (int i = 0; i < 5; ++i) {
    DockingResult r = eng.dock_smiles(generate_smiles(gen), 0);
    double secs = sim::to_seconds(costs.docking_cost(r.work_units));
    EXPECT_GT(secs, 10.0);
    EXPECT_LT(secs, 80.0);
  }
}

TEST(Docking, SerializeRoundTrips) {
  DockingResult r;
  r.best_energy = -7.25;
  r.mode_energies = {-7.25, -6.5, -3.125};
  r.work_units = 123456789;
  r.iterations = 1280;
  DockingResult back;
  ASSERT_TRUE(deserialize(serialize(r), &back));
  EXPECT_EQ(r, back);
}

TEST(Docking, DeserializeRejectsGarbage) {
  DockingResult r;
  EXPECT_FALSE(deserialize("", &r));
  EXPECT_FALSE(deserialize("not;enough", &r));
  EXPECT_FALSE(deserialize("x;1,2;3;4", &r));
}

TEST(Docking, InteractionEnergyFarApartIsZero) {
  Molecule a = ligand_from_smiles("CCC", 0);
  Molecule b = ligand_from_smiles("CCC", 1);
  b.translate(100, 0, 0);
  EXPECT_DOUBLE_EQ(interaction_energy(a, b), 0.0);
}

TEST(Dtba, DeterministicPretrainedWeights) {
  DtbaModel a;
  DtbaModel b;
  auto pa = a.predict("ACDEFGHIKLMNPQRSTVWY", "CCNC");
  auto pb = b.predict("ACDEFGHIKLMNPQRSTVWY", "CCNC");
  EXPECT_DOUBLE_EQ(pa.affinity, pb.affinity);
}

TEST(Dtba, AffinityInPkdRange) {
  DtbaModel m;
  Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    std::string seq = datagen::random_protein_sequence(rng, 150);
    Rng gen(static_cast<std::uint64_t>(i));
    auto p = m.predict(seq, generate_smiles(gen));
    EXPECT_GE(p.affinity, 4.0);
    EXPECT_LE(p.affinity, 11.0);
    EXPECT_GT(p.work_units, 0u);
  }
}

TEST(Dtba, InputsChangePrediction) {
  DtbaModel m;
  auto a = m.predict("AAAAAAAAAAAAAAAA", "CCCC");
  auto b = m.predict("WWWWWWWWWWWWWWWW", "CCCC");
  auto c = m.predict("AAAAAAAAAAAAAAAA", "NNNN");
  EXPECT_NE(a.affinity, b.affinity);
  EXPECT_NE(a.affinity, c.affinity);
}

TEST(Dtba, FeaturesAreL2Normalized) {
  auto f = DtbaModel::protein_features("ACDEFGHIKLMNPQRSTVWYACDEF");
  double norm = 0;
  for (float x : f) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-4);
}

TEST(Dtba, CostTailIsDeterministic) {
  CostProfile costs;
  sim::Nanos a = costs.dtba_cost(10000, 12345);
  sim::Nanos b = costs.dtba_cost(10000, 12345);
  EXPECT_EQ(a, b);
  // Over many call hashes, roughly tail_fraction of calls are slow.
  int slow = 0;
  for (std::uint64_t h = 0; h < 2000; ++h) {
    if (costs.dtba_cost(10000, h) > sim::from_seconds(0.5)) ++slow;
  }
  EXPECT_GT(slow, 100);
  EXPECT_LT(slow, 260);
}

TEST(Pic50, KnownConversions) {
  EXPECT_DOUBLE_EQ(*pic50_from_ic50_nm(1.0), 9.0);    // 1 nM
  EXPECT_DOUBLE_EQ(*pic50_from_ic50_nm(1000.0), 6.0); // 1 uM
  EXPECT_FALSE(pic50_from_ic50_nm(0.0).has_value());
  EXPECT_FALSE(pic50_from_ic50_nm(-5.0).has_value());
}

TEST(Pic50, PotencyThreshold) {
  EXPECT_TRUE(is_potent(1.0, 8.0));     // 1 nM is potent
  EXPECT_FALSE(is_potent(100000.0, 5.0));  // 100 uM is not
}

TEST(MolGen, LibraryIsDistinctAndDeterministic) {
  auto a = generate_library(50, 7);
  auto b = generate_library(50, 7);
  EXPECT_EQ(a, b);
  std::set<std::string> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), a.size());
}

TEST(MolGen, RespectsAtomBounds) {
  MolGenParams p;
  p.min_atoms = 10;
  p.max_atoms = 20;
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    auto smi = generate_smiles(rng, p);
    auto n = elements_from_smiles(smi).size();
    EXPECT_GE(n, 10u);
    EXPECT_LE(n, 20u);
  }
}

TEST(MolGen, WeightConditioningSteers) {
  MolGenParams p;
  p.target_weight = 250.0;
  Rng rng(11);
  double err_sum = 0;
  for (int i = 0; i < 20; ++i) {
    err_sum += std::abs(molecular_weight(generate_smiles(rng, p)) - 250.0);
  }
  MolGenParams q;  // unconditioned
  Rng rng2(11);
  double base_err = 0;
  for (int i = 0; i < 20; ++i) {
    base_err += std::abs(molecular_weight(generate_smiles(rng2, q)) - 250.0);
  }
  EXPECT_LT(err_sum, base_err);
}

}  // namespace
}  // namespace ids::models
