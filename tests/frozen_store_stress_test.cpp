// Frozen-store stress: 8 OS threads run independent queries — each with
// its own IdsEngine — against ONE shared TripleStore / FeatureStore /
// InvertedIndex / VectorStore, all sealed by the ingest→freeze→serve
// epoch transition (IDS_FROZEN_AFTER, DESIGN.md §13). build-tsan runs
// this binary: after freeze() the stores must be pure readers with no
// hidden lazy-prepare mutation, so TSan must see zero races, and every
// thread's result must be bit-identical to a serial run of the same
// query (doubles compared by bit pattern, not epsilon).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"

namespace ids::core {
namespace {

using expr::CmpOp;
using expr::Expr;
using graph::PatternTerm;
using graph::TermId;

constexpr int kRanks = 4;
constexpr int kThreads = 8;
constexpr int kItersPerThread = 3;

/// One shared, frozen world: people in a friendship ring with ages,
/// keyword docs, and embeddings. Built once per test, then only read.
struct FrozenWorld {
  std::unique_ptr<graph::TripleStore> triples;
  std::unique_ptr<store::FeatureStore> features;
  std::unique_ptr<store::InvertedIndex> keywords;
  std::unique_ptr<store::VectorStore> vectors;

  static constexpr int kPeople = 48;

  FrozenWorld() {
    triples = std::make_unique<graph::TripleStore>(kRanks);
    features = std::make_unique<store::FeatureStore>(kRanks);
    keywords = std::make_unique<store::InvertedIndex>();
    vectors = std::make_unique<store::VectorStore>(kRanks, 4);
    auto& d = triples->dict();
    for (int i = 0; i < kPeople; ++i) {
      std::string person = "person" + std::to_string(i);
      triples->add(person, "type", "Person");
      TermId id = *d.lookup(person);
      features->set(id, "age", static_cast<double>(20 + (i % 17)));
      keywords->add_document(id,
                             i % 2 == 0 ? "likes chess" : "likes tennis");
      std::vector<float> v(4, 0.0f);
      v[0] = static_cast<float>(i % 7);
      v[1] = static_cast<float>(i % 11);
      vectors->add(id, v);
    }
    for (int i = 0; i < kPeople; ++i) {
      triples->add("person" + std::to_string(i), "knows",
                   "person" + std::to_string((i + 1) % kPeople));
    }
    triples->finalize();
    features->freeze();
    keywords->freeze();
  }

  IdsEngine make_engine() const {
    EngineOptions opts;
    opts.topology = runtime::Topology::laptop(kRanks);
    return IdsEngine(opts, triples.get(), features.get(), keywords.get(),
                     vectors.get());
  }

  PatternTerm term(const char* iri) const {
    return PatternTerm::Const(*triples->dict().lookup(iri));
  }
};

/// Exact serialization of a result table: schema, then every row's ids
/// and the raw IEEE-754 bits of every numeric cell. Two QueryResults
/// compare equal here only if they are bit-identical.
std::string canonical(const QueryResult& r) {
  const graph::SolutionTable& s = r.solutions;
  std::string out;
  for (const std::string& v : s.id_vars()) out += v + "|";
  out += ";";
  for (const std::string& v : s.num_vars()) out += v + "|";
  out += "\n";
  for (std::size_t row = 0; row < s.num_rows(); ++row) {
    for (std::size_t c = 0; c < s.id_vars().size(); ++c) {
      out += std::to_string(s.id_at(row, static_cast<int>(c)));
      out += ",";
    }
    for (std::size_t c = 0; c < s.num_vars().size(); ++c) {
      const double d = s.num_at(row, static_cast<int>(c));
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      out += std::to_string(bits);
      out += ",";
    }
    out += "\n";
  }
  return out;
}

/// Per-thread query mix: every variant touches the triple store; the mix
/// rotates joins, feature filters, keyword restriction, and a vector
/// top-k so each store sees concurrent readers.
Query make_query(const FrozenWorld& w, int t) {
  Query q;
  q.patterns.push_back({PatternTerm::Var("x"), w.term("type"),
                        w.term("Person")});
  if (t % 2 == 1) {
    q.patterns.push_back({PatternTerm::Var("x"), w.term("knows"),
                          PatternTerm::Var("y")});
  }
  q.filters.push_back(Expr::Compare(CmpOp::kGe,
                                    Expr::Feature(Expr::Var("x"), "age"),
                                    Expr::Constant(21.0 + t)));
  if (t % 4 < 2) {
    q.keywords.push_back({"x", {t % 2 == 0 ? "chess" : "tennis"}, true});
  }
  if (t % 4 == 3) {
    VectorClause vc;
    vc.var = "x";
    vc.query = {3.0f, 5.0f, 0.0f, 0.0f};
    vc.k = 12;
    vc.metric = store::Metric::kL2;
    q.vectors.push_back(vc);
  }
  return q;
}

TEST(FrozenStoreStress, ParallelQueriesBitIdenticalToSerial) {
  FrozenWorld world;
  ASSERT_TRUE(world.triples->frozen());
  ASSERT_TRUE(world.features->frozen());
  ASSERT_TRUE(world.keywords->frozen());

  // Serial reference: one engine per variant, single-threaded.
  std::vector<std::string> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    IdsEngine eng = world.make_engine();
    QueryResult r = eng.execute(make_query(world, t));
    EXPECT_GT(r.solutions.num_rows(), 0u) << "variant " << t << " is empty";
    expected[t] = canonical(r);
  }

  // Concurrent pass: 8 threads, each with its OWN engine (the engine is
  // per-query machinery; the *stores* are the shared frozen state under
  // test), re-running its variant several times for overlap.
  std::vector<std::vector<std::string>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&world, &got, t] {
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        IdsEngine eng = world.make_engine();
        got[t].push_back(canonical(eng.execute(make_query(world, t))));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), static_cast<std::size_t>(kItersPerThread));
    for (int iter = 0; iter < kItersPerThread; ++iter) {
      EXPECT_EQ(got[t][iter], expected[t])
          << "thread " << t << " iteration " << iter
          << " diverged from the serial run";
    }
  }
}

// The epoch round trip under the same shared-world shape: reopening for
// an incremental ingest and re-freezing must leave concurrent readers of
// the *new* epoch bit-identical to a serial run of the new epoch.
TEST(FrozenStoreStress, ReopenedAndRefrozenWorldStillDeterministic) {
  FrozenWorld world;
  world.triples->reopen();
  world.triples->add("personX", "type", "Person");
  world.triples->finalize();
  world.features->reopen();
  TermId id = *world.triples->dict().lookup("personX");
  world.features->set(id, "age", 35.0);
  world.features->freeze();

  std::string expected;
  {
    IdsEngine eng = world.make_engine();
    expected = canonical(eng.execute(make_query(world, 0)));
  }
  std::vector<std::string> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&world, &got, t] {
      IdsEngine eng = world.make_engine();
      got[t] = canonical(eng.execute(make_query(world, 0)));
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(got[t], expected);
}

}  // namespace
}  // namespace ids::core
