// Full-stack integration: the NCNPR workflow driven end-to-end through
// the deployment surface — launcher session, datasets moved via the I/O
// layer, UDFs imported through the client, the query submitted as TEXT,
// docking backed by the global cache, and results consistent across an
// export/import/re-execute cycle.

#include <gtest/gtest.h>

#include <sstream>

#include "algo/graph_algorithms.h"
#include "core/workflow.h"
#include "deploy/service.h"
#include "io/dataset_io.h"

namespace ids {
namespace {

constexpr const char* kQueryText = R"(
  SELECT ?cpd
  WHERE {
    ?prot rdf:type bio:Protein .
    ?prot up:reviewed "true" .
    ?cpd chembl:inhibits ?prot .
  }
  FILTER ncnpr.sw_similarity(?prot) >= 0.9 && ncnpr.pic50(?cpd) >= 4.5
  DISTINCT ?cpd
  INVOKE ncnpr.dock(?cpd) AS ?energy CACHE "vina/P29274"
  ORDER BY ?energy
)";

datagen::LifeSciConfig tiny_config() {
  datagen::LifeSciConfig cfg;
  cfg.num_families = 6;
  cfg.proteins_per_family = 8;
  cfg.num_related_families = 2;
  cfg.compounds_per_family = 8;
  cfg.seq_len_mean = 160;
  cfg.seq_len_jitter = 20;
  cfg.seed = 99;
  return cfg;
}

TEST(Integration, TextQueryThroughDeploymentWithCache) {
  constexpr int kRanks = 8;
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.dram_capacity_bytes = 64 << 20;
  cache::CacheManager cache(cc);

  deploy::DatastoreLauncher launcher;
  core::EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  opts.cache = &cache;
  auto sid = launcher.launch(opts);
  ASSERT_TRUE(sid.ok());
  deploy::DatastoreClient client(&launcher, sid.value());
  deploy::IdsSession* session = launcher.session(sid.value());

  // Build the dataset in a staging store, then move it into the session
  // through the I/O layer — the laptop-to-cluster path.
  graph::TripleStore staging(4);
  store::FeatureStore staging_features(4);
  datagen::generate_lifesci(tiny_config(), &staging, &staging_features,
                            nullptr, nullptr);
  staging.finalize();
  std::stringstream triples_buf, features_buf;
  ASSERT_TRUE(io::export_triples(staging, triples_buf).ok());
  ASSERT_TRUE(
      io::export_features(staging_features, staging.dict(), features_buf).ok());
  ASSERT_TRUE(io::import_triples(&session->triples(), triples_buf).ok());
  ASSERT_TRUE(io::import_features(&session->features(),
                                  &session->triples().dict(), features_buf)
                  .ok());
  session->triples().finalize();

  // Register the workflow UDFs against the *session's* stores. The helper
  // expects an NcnprData, so import the target sequence and register via
  // the engine directly (the same functions the client's import_udf path
  // exercises elsewhere).
  core::NcnprData shim;
  auto seq = session->features().get_string(
      *session->triples().dict().lookup(datagen::Vocab::kTargetProtein),
      datagen::Feat::kSequence);
  ASSERT_TRUE(seq.has_value());
  shim.target_sequence = std::string(*seq);
  shim.triples = nullptr;  // not used by register_ncnpr_udfs
  core::register_ncnpr_udfs(&session->engine(), shim);

  // Cold run: misses populate the cache.
  auto cold = client.query(kQueryText);
  ASSERT_TRUE(cold.ok()) << cold.status().to_string();
  ASSERT_GT(cold.value().rows_invoked, 0u);
  EXPECT_EQ(cold.value().cache_hits, 0u);

  // Warm run: every docking served from the cache, results identical.
  auto warm = client.query(kQueryText);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().cache_misses, 0u);
  EXPECT_EQ(warm.value().cache_hits, cold.value().cache_misses);
  EXPECT_LT(warm.value().total_seconds, cold.value().total_seconds);
  ASSERT_EQ(warm.value().solutions.num_rows(),
            cold.value().solutions.num_rows());
  int ec = warm.value().solutions.num_var_index("energy");
  for (std::size_t row = 0; row < warm.value().solutions.num_rows(); ++row) {
    EXPECT_DOUBLE_EQ(warm.value().solutions.num_at(row, ec),
                     cold.value().solutions.num_at(row, ec));
  }

  // Logs tell the story.
  bool saw_query = false;
  for (const auto& e : client.fetch_logs()) {
    if (e.message.find("query done") == 0) saw_query = true;
  }
  EXPECT_TRUE(saw_query);
}

TEST(Integration, PageRankOverTheWorkflowGraph) {
  // The graph-analytics leg (§2.2) composes with the workflow data:
  // PageRank over inhibitor edges surfaces the most-inhibited proteins.
  constexpr int kRanks = 8;
  core::NcnprData data = core::build_ncnpr_data(tiny_config(), kRanks);
  auto inhibits = data.triples->dict().lookup(datagen::Vocab::kInhibits);
  ASSERT_TRUE(inhibits.has_value());
  algo::PageRankResult pr = algo::pagerank(
      *data.triples, runtime::Topology::laptop(kRanks), *inhibits);
  ASSERT_FALSE(pr.rank.empty());
  // Proteins (edge targets) accumulate rank; compounds (pure sources) stay
  // at the teleport floor.
  double best_protein = 0.0;
  for (graph::TermId p : data.dataset.proteins) {
    auto it = pr.rank.find(p);
    if (it != pr.rank.end()) best_protein = std::max(best_protein, it->second);
  }
  double best_compound = 0.0;
  for (graph::TermId c : data.dataset.compounds) {
    auto it = pr.rank.find(c);
    if (it != pr.rank.end()) best_compound = std::max(best_compound, it->second);
  }
  EXPECT_GT(best_protein, best_compound * 2);
}

}  // namespace
}  // namespace ids
