// Oracle property test: the distributed engine must return exactly the
// same solution set as a naive single-threaded reference evaluator, for
// randomized graphs and queries, across shard counts and planner/
// rebalancer configurations.
//
// The reference evaluator is deliberately naive: nested-loop pattern
// matching over the full triple list and per-row expression evaluation.
// If the engine's planner reorders patterns, its joins redistribute rows,
// or its FILTER chains reorder conjuncts, none of that may change the
// answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/engine.h"

namespace ids::core {
namespace {

using graph::TermId;
using graph::PatternTerm;
using graph::Triple;
using graph::TriplePattern;

using Row = std::map<std::string, TermId>;

bool unify(const PatternTerm& term, TermId value, Row* row) {
  if (!term.is_var) return term.constant == value;
  auto [it, inserted] = row->emplace(term.var, value);
  return inserted || it->second == value;
}

std::vector<Row> reference_match(const std::vector<Triple>& triples,
                                 const std::vector<TriplePattern>& patterns) {
  std::vector<Row> rows = {Row{}};
  for (const auto& p : patterns) {
    std::vector<Row> next;
    for (const Row& row : rows) {
      for (const Triple& t : triples) {
        Row candidate = row;
        if (unify(p.s, t.s, &candidate) && unify(p.p, t.p, &candidate) &&
            unify(p.o, t.o, &candidate)) {
          next.push_back(std::move(candidate));
        }
      }
    }
    rows = std::move(next);
  }
  return rows;
}

bool reference_filter(const Row& row, const std::vector<expr::ExprPtr>& filters,
                      udf::UdfRegistry* registry,
                      const store::FeatureStore* features) {
  // Build a one-row table carrying the bindings.
  std::vector<std::string> vars;
  std::vector<TermId> vals;
  for (const auto& [v, id] : row) {
    vars.push_back(v);
    vals.push_back(id);
  }
  graph::SolutionTable t{vars};
  t.append_row(vals);
  for (const auto& f : filters) {
    expr::EvalContext ctx;
    ctx.row = {&t, 0};
    ctx.registry = registry;
    ctx.udf_ctx.features = features;
    if (!expr::truthy(expr::eval(*f, ctx))) return false;
  }
  return true;
}

/// Canonical representation of a result set for comparison: sorted
/// multiset of value tuples over the given variables.
std::multiset<std::vector<TermId>> canonicalize_rows(
    const std::vector<Row>& rows, const std::vector<std::string>& vars) {
  std::multiset<std::vector<TermId>> out;
  for (const Row& r : rows) {
    std::vector<TermId> tuple;
    for (const auto& v : vars) tuple.push_back(r.at(v));
    out.insert(std::move(tuple));
  }
  return out;
}

std::multiset<std::vector<TermId>> canonicalize_table(
    const graph::SolutionTable& t, const std::vector<std::string>& vars) {
  std::multiset<std::vector<TermId>> out;
  std::vector<int> cols;
  for (const auto& v : vars) cols.push_back(t.id_var_index(v));
  for (std::size_t row = 0; row < t.num_rows(); ++row) {
    std::vector<TermId> tuple;
    for (int c : cols) tuple.push_back(t.id_at(row, c));
    out.insert(std::move(tuple));
  }
  return out;
}

struct Config {
  std::uint64_t seed;
  int shards;
  bool reorder;
  RebalancePolicy rebalance;
  bool hetero;
};

class EngineVsReference : public ::testing::TestWithParam<Config> {};

TEST_P(EngineVsReference, RandomGraphsAndQueries) {
  const Config cfg = GetParam();
  Rng rng(cfg.seed);

  // --- Random graph ---------------------------------------------------
  auto store = std::make_unique<graph::TripleStore>(cfg.shards);
  auto features = std::make_unique<store::FeatureStore>(cfg.shards);
  const int n_entities = 24;
  const int n_preds = 3;
  std::vector<Triple> all;
  auto& dict = store->dict();
  std::vector<TermId> entities;
  std::vector<TermId> preds;
  for (int i = 0; i < n_entities; ++i) {
    TermId id = dict.intern("e" + std::to_string(i));
    entities.push_back(id);
    features->set(id, "score", rng.uniform(0.0, 10.0));
  }
  for (int i = 0; i < n_preds; ++i) {
    preds.push_back(dict.intern("p" + std::to_string(i)));
  }
  int n_triples = 40 + static_cast<int>(rng.next_below(80));
  for (int i = 0; i < n_triples; ++i) {
    Triple t{entities[rng.next_below(entities.size())],
             preds[rng.next_below(preds.size())],
             entities[rng.next_below(entities.size())]};
    store->add_ids(t);
    all.push_back(t);
  }
  store->finalize();
  features->freeze();
  std::sort(all.begin(), all.end(), [](const Triple& a, const Triple& b) {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());

  // --- Engine under the parameterized configuration --------------------
  EngineOptions opts;
  opts.topology = runtime::Topology::laptop(cfg.shards);
  opts.reorder_filters = cfg.reorder;
  opts.rebalance = cfg.rebalance;
  if (cfg.hetero) {
    opts.hetero = runtime::HeteroProfile::random(cfg.shards, 0.5, 3.0,
                                                 cfg.seed);
  }
  IdsEngine engine(opts, store.get(), features.get());
  engine.registry().register_static(
      "score_over",
      [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        double threshold = 0;
        expr::as_double(args[1], &threshold);
        auto s = ctx.features->get_double(e->id, "score");
        return udf::UdfResult{s && *s > threshold, sim::from_micros(3)};
      });
  udf::UdfRegistry ref_registry;
  ref_registry.register_static(
      "score_over",
      [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        double threshold = 0;
        expr::as_double(args[1], &threshold);
        auto s = ctx.features->get_double(e->id, "score");
        return udf::UdfResult{s && *s > threshold, 0};
      });

  // --- Random queries ---------------------------------------------------
  for (int trial = 0; trial < 6; ++trial) {
    Query q;
    // Query shapes: chain (?a p ?b . ?b p ?c), star, or single + constants.
    int shape = static_cast<int>(rng.next_below(3));
    TermId p1 = preds[rng.next_below(preds.size())];
    TermId p2 = preds[rng.next_below(preds.size())];
    if (shape == 0) {
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p1),
                            PatternTerm::Var("b")});
      q.patterns.push_back({PatternTerm::Var("b"), PatternTerm::Const(p2),
                            PatternTerm::Var("c")});
    } else if (shape == 1) {
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p1),
                            PatternTerm::Var("b")});
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p2),
                            PatternTerm::Var("c")});
    } else {
      TermId obj = entities[rng.next_below(entities.size())];
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p1),
                            PatternTerm::Const(obj)});
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p2),
                            PatternTerm::Var("b")});
    }
    // Random UDF + feature filters.
    double threshold = rng.uniform(0.0, 10.0);
    q.filters.push_back(expr::Expr::Udf(
        "score_over",
        {expr::Expr::Var("a"), expr::Expr::Constant(threshold)}));
    if (rng.bernoulli(0.5)) {
      q.filters.push_back(expr::Expr::Compare(
          expr::CmpOp::kLe, expr::Expr::Feature(expr::Expr::Var("b"), "score"),
          expr::Expr::Constant(rng.uniform(2.0, 10.0))));
    }

    // Collect variables for comparison.
    std::set<std::string> var_set;
    for (const auto& p : q.patterns) {
      if (p.s.is_var) var_set.insert(p.s.var);
      if (p.o.is_var) var_set.insert(p.o.var);
    }
    std::vector<std::string> vars(var_set.begin(), var_set.end());

    // Reference answer.
    std::vector<Row> matched = reference_match(all, q.patterns);
    std::vector<Row> kept;
    for (const Row& r : matched) {
      if (reference_filter(r, q.filters, &ref_registry, features.get())) {
        kept.push_back(r);
      }
    }
    auto want = canonicalize_rows(kept, vars);

    // Engine answer.
    QueryResult result = engine.execute(q);
    auto got = canonicalize_table(result.solutions, vars);

    EXPECT_EQ(got, want) << "seed=" << cfg.seed << " trial=" << trial
                         << " shape=" << shape << " shards=" << cfg.shards;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EngineVsReference,
    ::testing::Values(
        Config{1, 1, true, RebalancePolicy::kThroughput, false},
        Config{2, 4, true, RebalancePolicy::kThroughput, false},
        Config{3, 16, true, RebalancePolicy::kThroughput, true},
        Config{4, 4, false, RebalancePolicy::kNone, false},
        Config{5, 8, false, RebalancePolicy::kCount, true},
        Config{6, 32, true, RebalancePolicy::kCount, false},
        Config{7, 3, true, RebalancePolicy::kThroughput, true},
        Config{8, 64, false, RebalancePolicy::kThroughput, false}));

// ---------------------------------------------------------------------------
// Kernel-equivalence suite: the batch columnar kernels (gather appends, flat
// join index, bulk shuffles) are pure wall-clock optimizations. The modeled
// virtual-clock outputs — stage seconds, row counts, cache hit/miss counts,
// profiler exec counts — are pinned here to the exact values the seed
// (row-at-a-time) implementation produced, so any kernel change that shifts
// modeled semantics fails loudly.
// ---------------------------------------------------------------------------

struct GoldenScenario {
  std::unique_ptr<graph::TripleStore> store;
  std::unique_ptr<store::FeatureStore> features;
  std::vector<TermId> entities;
  std::vector<TermId> preds;
};

GoldenScenario make_golden_scenario(int shards) {
  GoldenScenario s;
  Rng rng(123);
  s.store = std::make_unique<graph::TripleStore>(shards);
  s.features = std::make_unique<store::FeatureStore>(shards);
  auto& dict = s.store->dict();
  for (int i = 0; i < 30; ++i) {
    TermId id = dict.intern("e" + std::to_string(i));
    s.entities.push_back(id);
    s.features->set(id, "score", rng.uniform(0.0, 10.0));
  }
  for (int i = 0; i < 3; ++i) {
    s.preds.push_back(dict.intern("p" + std::to_string(i)));
  }
  for (int i = 0; i < 150; ++i) {
    s.store->add_ids({s.entities[rng.next_below(s.entities.size())],
                      s.preds[rng.next_below(s.preds.size())],
                      s.entities[rng.next_below(s.entities.size())]});
  }
  s.store->finalize();
  s.features->freeze();
  return s;
}

EngineOptions golden_options(int shards) {
  EngineOptions opts;
  opts.topology = runtime::Topology::laptop(shards);
  opts.hetero = runtime::HeteroProfile::random(shards, 0.5, 3.0, 99);
  opts.reorder_filters = true;
  opts.rebalance = RebalancePolicy::kThroughput;
  return opts;
}

void register_golden_udfs(IdsEngine* engine) {
  engine->registry().register_static(
      "score_over",
      [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        double threshold = 0;
        expr::as_double(args[1], &threshold);
        auto s = ctx.features->get_double(e->id, "score");
        return udf::UdfResult{s && *s > threshold, sim::from_micros(3)};
      });
  engine->registry().register_static(
      "sq", [](const udf::UdfContext&, std::span<const expr::Value> args) {
        double x = 0;
        expr::as_double(args[0], &x);
        return udf::UdfResult{x * x, sim::from_micros(250)};
      });
}

void print_golden(const char* label, const QueryResult& r) {
  std::printf("golden[%s]: total=%.17g rows_p=%zu rows_f=%zu hits=%zu "
              "misses=%zu invoked=%zu\n",
              label, r.total_seconds, r.rows_after_patterns,
              r.rows_after_filters, r.cache_hits, r.cache_misses,
              r.rows_invoked);
  for (const auto& st : r.stages) {
    std::printf("golden[%s]:   stage %-12s %.17g\n", label, st.stage.c_str(),
                st.seconds);
  }
}

// Join-heavy query (scan + subject-bound extend + hash join + rebalance +
// filter): pins the shuffle / join / redistribute kernels.
TEST(KernelEquivalence, GoldenJoinFilterModeledResults) {
  auto s = make_golden_scenario(8);
  IdsEngine engine(golden_options(8), s.store.get(), s.features.get());
  register_golden_udfs(&engine);

  Query q;
  q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(s.preds[0]),
                        PatternTerm::Var("b")});
  q.patterns.push_back({PatternTerm::Var("b"), PatternTerm::Const(s.preds[1]),
                        PatternTerm::Var("c")});
  // Subject is a fresh variable and the shared variable ?c sits in object
  // position, so this pattern exercises the hash-join kernel (the previous
  // one exercises the subject-bound extend kernel).
  q.patterns.push_back({PatternTerm::Var("d"), PatternTerm::Const(s.preds[2]),
                        PatternTerm::Var("c")});
  q.filters.push_back(expr::Expr::Udf(
      "score_over", {expr::Expr::Var("a"), expr::Expr::Constant(4.0)}));
  q.filters.push_back(expr::Expr::Compare(
      expr::CmpOp::kLe, expr::Expr::Feature(expr::Expr::Var("b"), "score"),
      expr::Expr::Constant(9.0)));

  QueryResult r = engine.execute(q);

  EXPECT_EQ(r.rows_after_patterns, std::size_t{129});
  EXPECT_EQ(r.rows_after_filters, std::size_t{61});
  EXPECT_EQ(r.total_seconds, 0.000101178);
  ASSERT_EQ(r.stages.size(), std::size_t{6});
  EXPECT_EQ(r.stages[0].stage, "scan");
  EXPECT_EQ(r.stages[0].seconds, 5.0999999999999999e-07);
  EXPECT_EQ(r.stages[1].stage, "join");
  EXPECT_EQ(r.stages[1].seconds, 7.8820000000000001e-06);
  EXPECT_EQ(r.stages[2].stage, "join");
  EXPECT_EQ(r.stages[2].seconds, 1.1188e-05);
  EXPECT_EQ(r.stages[3].stage, "rebalance");
  EXPECT_EQ(r.stages[3].seconds, 4.5020000000000003e-06);
  EXPECT_EQ(r.stages[4].stage, "filter");
  EXPECT_EQ(r.stages[4].seconds, 7.6124000000000005e-05);
  EXPECT_EQ(r.stages[5].stage, "gather");
  EXPECT_EQ(r.stages[5].seconds, 9.7199999999999997e-07);
  if (::testing::Test::HasFailure()) print_golden("join", r);
}

// Cartesian-product query (no shared variable): pins the cross-join kernel.
TEST(KernelEquivalence, GoldenCartesianModeledResults) {
  auto s = make_golden_scenario(4);
  IdsEngine engine(golden_options(4), s.store.get(), s.features.get());
  register_golden_udfs(&engine);

  Query q;
  q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(s.preds[0]),
                        PatternTerm::Const(s.entities[3])});
  q.patterns.push_back({PatternTerm::Var("c"), PatternTerm::Const(s.preds[1]),
                        PatternTerm::Const(s.entities[5])});

  QueryResult r = engine.execute(q);

  EXPECT_EQ(r.rows_after_patterns, std::size_t{2});
  EXPECT_EQ(r.total_seconds, 1.4649999999999999e-06);
  ASSERT_EQ(r.stages.size(), std::size_t{3});
  EXPECT_EQ(r.stages[0].stage, "scan");
  EXPECT_EQ(r.stages[0].seconds, 2.36e-07);
  EXPECT_EQ(r.stages[1].stage, "join");
  EXPECT_EQ(r.stages[1].seconds, 6.2900000000000003e-07);
  EXPECT_EQ(r.stages[2].stage, "gather");
  EXPECT_EQ(r.stages[2].seconds, 5.9999999999999997e-07);
  if (::testing::Test::HasFailure()) print_golden("cartesian", r);
}

// DISTINCT + cached INVOKE + ORDER BY + projection, executed twice so the
// second run exercises the warm-cache path: pins the distinct kernel, the
// invoke batch loop, the cache hit/miss accounting, and the projection.
TEST(KernelEquivalence, GoldenDistinctInvokeModeledResults) {
  auto s = make_golden_scenario(8);
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.serialization_service_seconds = 1e-4;
  cache::CacheManager cache(cc);
  EngineOptions opts = golden_options(8);
  opts.cache = &cache;
  IdsEngine engine(opts, s.store.get(), s.features.get());
  register_golden_udfs(&engine);

  Query q;
  q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(s.preds[0]),
                        PatternTerm::Var("b")});
  q.distinct_var = "b";
  InvokeClause inv;
  inv.udf = "sq";
  inv.out_var = "v";
  inv.args.push_back(expr::Expr::Feature(expr::Expr::Var("b"), "score"));
  inv.use_cache = true;
  inv.cache_prefix = "golden/sq";
  inv.cached_payload_bytes = 64;
  q.invokes.push_back(inv);
  q.order_by = "v";
  q.order_descending = true;
  q.limit = 5;
  q.select = {"b"};

  QueryResult cold = engine.execute(q);
  QueryResult warm = engine.execute(q);

  EXPECT_EQ(cold.rows_after_patterns, std::size_t{45});
  EXPECT_EQ(cold.rows_invoked, std::size_t{23});
  EXPECT_EQ(cold.cache_hits, std::size_t{0});
  EXPECT_EQ(cold.cache_misses, std::size_t{23});
  EXPECT_EQ(cold.total_seconds, 0.013058367);
  ASSERT_EQ(cold.stages.size(), std::size_t{4});
  EXPECT_EQ(cold.stages[0].stage, "scan");
  EXPECT_EQ(cold.stages[0].seconds, 5.0999999999999999e-07);
  EXPECT_EQ(cold.stages[1].stage, "distinct");
  EXPECT_EQ(cold.stages[1].seconds, 9.2380000000000003e-06);
  EXPECT_EQ(cold.stages[2].stage, "invoke:sq");
  EXPECT_EQ(cold.stages[2].seconds, 0.013047701);
  EXPECT_EQ(cold.stages[3].stage, "gather");
  EXPECT_EQ(cold.stages[3].seconds, 9.1800000000000004e-07);

  EXPECT_EQ(warm.rows_invoked, std::size_t{0});
  EXPECT_EQ(warm.cache_hits, std::size_t{23});
  EXPECT_EQ(warm.cache_misses, std::size_t{0});
  EXPECT_EQ(warm.total_seconds, 0.0023106659999999998);
  ASSERT_EQ(warm.stages.size(), std::size_t{4});
  EXPECT_EQ(warm.stages[2].stage, "invoke:sq");
  EXPECT_EQ(warm.stages[2].seconds, 0.0023);

  EXPECT_EQ(engine.profiler().aggregate("sq").execs, std::uint64_t{23});

  // The projected result: 5 distinct ?b ordered by v desc, single id column.
  EXPECT_EQ(warm.solutions.num_rows(), std::size_t{5});
  ASSERT_EQ(warm.solutions.id_vars().size(), std::size_t{1});
  EXPECT_EQ(warm.solutions.id_vars()[0], "b");

  if (::testing::Test::HasFailure()) {
    print_golden("cold", cold);
    print_golden("warm", warm);
    std::printf("golden[profiler]: sq execs=%llu\n",
                static_cast<unsigned long long>(
                    engine.profiler().aggregate("sq").execs));
  }
}

// ---------------------------------------------------------------------------
// Batch-primitive equivalence: each columnar kernel must be observably
// identical to the row-at-a-time loop it replaced. The goldens above pin the
// engine's end-to-end modeled outputs; these pin the primitives directly so
// a kernel bug is localized to one operation instead of a changed stage time.
// ---------------------------------------------------------------------------

using graph::RowIndex;
using graph::SolutionTable;

SolutionTable random_table(Rng* rng, std::size_t rows) {
  SolutionTable t{{"a", "b", "c"}, {"x", "y"}};
  for (std::size_t i = 0; i < rows; ++i) {
    TermId ids[3] = {rng->next_u64() % 97, rng->next_u64() % 97,
                     rng->next_u64() % 97};
    double nums[2] = {rng->uniform(-1.0, 1.0), rng->uniform(-1.0, 1.0)};
    t.append_row(ids, nums);
  }
  return t;
}

std::vector<std::vector<TermId>> rows_of(const SolutionTable& t) {
  std::vector<std::vector<TermId>> out(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.id_vars().size(); ++c) {
      out[r].push_back(t.id_at(r, static_cast<int>(c)));
    }
    for (std::size_t c = 0; c < t.num_vars().size(); ++c) {
      // Exact bit pattern: batch moves may not perturb doubles.
      TermId bits;
      double v = t.num_at(r, static_cast<int>(c));
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      out[r].push_back(bits);
    }
  }
  return out;
}

TEST(BatchPrimitives, AppendRowsFromMatchesPerRowLoop) {
  Rng rng(31);
  SolutionTable src = random_table(&rng, 200);
  std::vector<RowIndex> picks;
  for (int i = 0; i < 500; ++i) {
    picks.push_back(static_cast<RowIndex>(rng.next_below(src.num_rows())));
  }

  SolutionTable batch = src.empty_like();
  batch.append_rows_from(src, picks);
  SolutionTable loop = src.empty_like();
  for (RowIndex r : picks) loop.append_row_from(src, r);

  EXPECT_EQ(rows_of(batch), rows_of(loop));
}

TEST(BatchPrimitives, AppendRowRangeFromMatchesPerRowLoop) {
  Rng rng(32);
  SolutionTable src = random_table(&rng, 120);
  SolutionTable batch = src.empty_like();
  batch.append_row_range_from(src, 17, 93);
  SolutionTable loop = src.empty_like();
  for (std::size_t r = 17; r < 93; ++r) loop.append_row_from(src, r);
  EXPECT_EQ(rows_of(batch), rows_of(loop));

  // Empty range is a no-op.
  batch.append_row_range_from(src, 50, 50);
  EXPECT_EQ(batch.num_rows(), std::size_t{76});
}

TEST(BatchPrimitives, PartitionRowsIsAStablePartition) {
  Rng rng(33);
  const int parts = 7;
  std::vector<int> dst;
  for (int i = 0; i < 1000; ++i) {
    dst.push_back(static_cast<int>(rng.next_below(parts)));
  }
  auto lists = SolutionTable::partition_rows(dst, parts);
  ASSERT_EQ(lists.size(), static_cast<std::size_t>(parts));

  std::size_t total = 0;
  for (int d = 0; d < parts; ++d) {
    const auto& rows = lists[static_cast<std::size_t>(d)];
    total += rows.size();
    // Every listed row maps to d, in ascending (stable) order.
    EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
    for (RowIndex r : rows) EXPECT_EQ(dst[r], d);
  }
  EXPECT_EQ(total, dst.size());  // a partition: each row exactly once
}

TEST(BatchPrimitives, AppendPrefixFromMatchesWidenedPerRowBuild) {
  Rng rng(34);
  SolutionTable src = random_table(&rng, 80);
  std::vector<RowIndex> picks;
  std::vector<TermId> new_binding;
  for (int i = 0; i < 150; ++i) {
    picks.push_back(static_cast<RowIndex>(rng.next_below(src.num_rows())));
    new_binding.push_back(rng.next_u64() % 97);
  }

  // Batch path, as the join/extend kernels use it: gather the shared prefix,
  // then write the new trailing column directly.
  SolutionTable batch{{"a", "b", "c", "d"}, {"x", "y"}};
  batch.append_prefix_from(src, picks);
  auto& d_col = batch.id_col_mut(3);
  d_col.insert(d_col.end(), new_binding.begin(), new_binding.end());

  // Row-at-a-time reference.
  SolutionTable loop{{"a", "b", "c", "d"}, {"x", "y"}};
  for (std::size_t i = 0; i < picks.size(); ++i) {
    TermId ids[4] = {src.id_at(picks[i], 0), src.id_at(picks[i], 1),
                     src.id_at(picks[i], 2), new_binding[i]};
    double nums[2] = {src.num_at(picks[i], 0), src.num_at(picks[i], 1)};
    loop.append_row(ids, nums);
  }

  EXPECT_EQ(rows_of(batch), rows_of(loop));
}

TEST(BatchPrimitives, FlatGroupIndexMatchesUnorderedMultimap) {
  Rng rng(35);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back(rng.next_u64() % 400);
  keys.push_back(0);            // edge keys must be probeable too
  keys.push_back(~0ull);

  FlatGroupIndex index(keys);
  std::unordered_multimap<std::uint64_t, std::uint32_t> mm;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    mm.emplace(keys[i], static_cast<std::uint32_t>(i));
  }

  EXPECT_EQ(index.num_rows(), keys.size());
  for (std::uint64_t probe = 0; probe < 420; ++probe) {
    auto group = index.probe(probe);
    // Ascending insertion order within the group; the hash-join kernel
    // iterates this span *in reverse* to reproduce the seed multimap's
    // newest-first enumeration (see engine.cpp).
    EXPECT_TRUE(std::is_sorted(group.begin(), group.end()));
    auto [lo, hi] = mm.equal_range(probe);
    std::multiset<std::uint32_t> want;
    for (auto it = lo; it != hi; ++it) want.insert(it->second);
    std::multiset<std::uint32_t> got(group.begin(), group.end());
    EXPECT_EQ(got, want) << "key " << probe;
    for (std::uint32_t r : group) EXPECT_EQ(keys[r], probe);
  }
  EXPECT_TRUE(index.probe(12345678).empty());
  EXPECT_EQ(index.probe(~0ull).size(), std::size_t{1});
}

TEST(BatchPrimitives, FlatTermSetMatchesStdSet) {
  Rng rng(36);
  FlatTermSet flat(4);  // tiny initial capacity: exercise grow()
  std::set<std::uint64_t> ref;
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t k = rng.next_u64() % 1500;
    if (i == 100) k = 0;       // the all-zero and all-ones keys are valid
    if (i == 200) k = ~0ull;
    EXPECT_EQ(flat.insert(k), ref.insert(k).second);
  }
  EXPECT_EQ(flat.size(), ref.size());
  for (std::uint64_t k = 0; k < 1600; ++k) {
    EXPECT_EQ(flat.contains(k), ref.count(k) != 0) << "key " << k;
  }
}

TEST(BatchPrimitives, VectorKernelsMatchScalarReference) {
  Rng rng(37);
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                        std::size_t{127}, std::size_t{128}, std::size_t{513}}) {
    std::vector<float> a(n), b(n);
    for (auto& x : a) x = static_cast<float>(rng.normal());
    for (auto& x : b) x = static_cast<float>(rng.normal());

    double dot_ref = 0.0, l2_ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot_ref += static_cast<double>(a[i]) * static_cast<double>(b[i]);
      const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
      l2_ref += d * d;
    }

    // The lane-8 kernels associate differently than a serial loop, so
    // compare against the double-precision reference with a float-level
    // tolerance. (Bit-identity *across dispatch levels* is asserted in
    // tests/simd_test.cpp.)
    const double tol = 1e-4 * (1.0 + static_cast<double>(n));
    EXPECT_NEAR(simd::dot(a.data(), b.data(), n), dot_ref, tol) << "n=" << n;
    EXPECT_NEAR(simd::l2sq(a.data(), b.data(), n), l2_ref, tol) << "n=" << n;
  }
}

}  // namespace
}  // namespace ids::core
