// Oracle property test: the distributed engine must return exactly the
// same solution set as a naive single-threaded reference evaluator, for
// randomized graphs and queries, across shard counts and planner/
// rebalancer configurations.
//
// The reference evaluator is deliberately naive: nested-loop pattern
// matching over the full triple list and per-row expression evaluation.
// If the engine's planner reorders patterns, its joins redistribute rows,
// or its FILTER chains reorder conjuncts, none of that may change the
// answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/rng.h"
#include "core/engine.h"

namespace ids::core {
namespace {

using graph::TermId;
using graph::PatternTerm;
using graph::Triple;
using graph::TriplePattern;

using Row = std::map<std::string, TermId>;

bool unify(const PatternTerm& term, TermId value, Row* row) {
  if (!term.is_var) return term.constant == value;
  auto [it, inserted] = row->emplace(term.var, value);
  return inserted || it->second == value;
}

std::vector<Row> reference_match(const std::vector<Triple>& triples,
                                 const std::vector<TriplePattern>& patterns) {
  std::vector<Row> rows = {Row{}};
  for (const auto& p : patterns) {
    std::vector<Row> next;
    for (const Row& row : rows) {
      for (const Triple& t : triples) {
        Row candidate = row;
        if (unify(p.s, t.s, &candidate) && unify(p.p, t.p, &candidate) &&
            unify(p.o, t.o, &candidate)) {
          next.push_back(std::move(candidate));
        }
      }
    }
    rows = std::move(next);
  }
  return rows;
}

bool reference_filter(const Row& row, const std::vector<expr::ExprPtr>& filters,
                      udf::UdfRegistry* registry,
                      const store::FeatureStore* features) {
  // Build a one-row table carrying the bindings.
  std::vector<std::string> vars;
  std::vector<TermId> vals;
  for (const auto& [v, id] : row) {
    vars.push_back(v);
    vals.push_back(id);
  }
  graph::SolutionTable t{vars};
  t.append_row(vals);
  for (const auto& f : filters) {
    expr::EvalContext ctx;
    ctx.row = {&t, 0};
    ctx.registry = registry;
    ctx.udf_ctx.features = features;
    if (!expr::truthy(expr::eval(*f, ctx))) return false;
  }
  return true;
}

/// Canonical representation of a result set for comparison: sorted
/// multiset of value tuples over the given variables.
std::multiset<std::vector<TermId>> canonicalize_rows(
    const std::vector<Row>& rows, const std::vector<std::string>& vars) {
  std::multiset<std::vector<TermId>> out;
  for (const Row& r : rows) {
    std::vector<TermId> tuple;
    for (const auto& v : vars) tuple.push_back(r.at(v));
    out.insert(std::move(tuple));
  }
  return out;
}

std::multiset<std::vector<TermId>> canonicalize_table(
    const graph::SolutionTable& t, const std::vector<std::string>& vars) {
  std::multiset<std::vector<TermId>> out;
  std::vector<int> cols;
  for (const auto& v : vars) cols.push_back(t.id_var_index(v));
  for (std::size_t row = 0; row < t.num_rows(); ++row) {
    std::vector<TermId> tuple;
    for (int c : cols) tuple.push_back(t.id_at(row, c));
    out.insert(std::move(tuple));
  }
  return out;
}

struct Config {
  std::uint64_t seed;
  int shards;
  bool reorder;
  RebalancePolicy rebalance;
  bool hetero;
};

class EngineVsReference : public ::testing::TestWithParam<Config> {};

TEST_P(EngineVsReference, RandomGraphsAndQueries) {
  const Config cfg = GetParam();
  Rng rng(cfg.seed);

  // --- Random graph ---------------------------------------------------
  auto store = std::make_unique<graph::TripleStore>(cfg.shards);
  auto features = std::make_unique<store::FeatureStore>(cfg.shards);
  const int n_entities = 24;
  const int n_preds = 3;
  std::vector<Triple> all;
  auto& dict = store->dict();
  std::vector<TermId> entities;
  std::vector<TermId> preds;
  for (int i = 0; i < n_entities; ++i) {
    TermId id = dict.intern("e" + std::to_string(i));
    entities.push_back(id);
    features->set(id, "score", rng.uniform(0.0, 10.0));
  }
  for (int i = 0; i < n_preds; ++i) {
    preds.push_back(dict.intern("p" + std::to_string(i)));
  }
  int n_triples = 40 + static_cast<int>(rng.next_below(80));
  for (int i = 0; i < n_triples; ++i) {
    Triple t{entities[rng.next_below(entities.size())],
             preds[rng.next_below(preds.size())],
             entities[rng.next_below(entities.size())]};
    store->add_ids(t);
    all.push_back(t);
  }
  store->finalize();
  std::sort(all.begin(), all.end(), [](const Triple& a, const Triple& b) {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());

  // --- Engine under the parameterized configuration --------------------
  EngineOptions opts;
  opts.topology = runtime::Topology::laptop(cfg.shards);
  opts.reorder_filters = cfg.reorder;
  opts.rebalance = cfg.rebalance;
  if (cfg.hetero) {
    opts.hetero = runtime::HeteroProfile::random(cfg.shards, 0.5, 3.0,
                                                 cfg.seed);
  }
  IdsEngine engine(opts, store.get(), features.get());
  engine.registry().register_static(
      "score_over",
      [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        double threshold = 0;
        expr::as_double(args[1], &threshold);
        auto s = ctx.features->get_double(e->id, "score");
        return udf::UdfResult{s && *s > threshold, sim::from_micros(3)};
      });
  udf::UdfRegistry ref_registry;
  ref_registry.register_static(
      "score_over",
      [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        double threshold = 0;
        expr::as_double(args[1], &threshold);
        auto s = ctx.features->get_double(e->id, "score");
        return udf::UdfResult{s && *s > threshold, 0};
      });

  // --- Random queries ---------------------------------------------------
  for (int trial = 0; trial < 6; ++trial) {
    Query q;
    // Query shapes: chain (?a p ?b . ?b p ?c), star, or single + constants.
    int shape = static_cast<int>(rng.next_below(3));
    TermId p1 = preds[rng.next_below(preds.size())];
    TermId p2 = preds[rng.next_below(preds.size())];
    if (shape == 0) {
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p1),
                            PatternTerm::Var("b")});
      q.patterns.push_back({PatternTerm::Var("b"), PatternTerm::Const(p2),
                            PatternTerm::Var("c")});
    } else if (shape == 1) {
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p1),
                            PatternTerm::Var("b")});
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p2),
                            PatternTerm::Var("c")});
    } else {
      TermId obj = entities[rng.next_below(entities.size())];
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p1),
                            PatternTerm::Const(obj)});
      q.patterns.push_back({PatternTerm::Var("a"), PatternTerm::Const(p2),
                            PatternTerm::Var("b")});
    }
    // Random UDF + feature filters.
    double threshold = rng.uniform(0.0, 10.0);
    q.filters.push_back(expr::Expr::Udf(
        "score_over",
        {expr::Expr::Var("a"), expr::Expr::Constant(threshold)}));
    if (rng.bernoulli(0.5)) {
      q.filters.push_back(expr::Expr::Compare(
          expr::CmpOp::kLe, expr::Expr::Feature(expr::Expr::Var("b"), "score"),
          expr::Expr::Constant(rng.uniform(2.0, 10.0))));
    }

    // Collect variables for comparison.
    std::set<std::string> var_set;
    for (const auto& p : q.patterns) {
      if (p.s.is_var) var_set.insert(p.s.var);
      if (p.o.is_var) var_set.insert(p.o.var);
    }
    std::vector<std::string> vars(var_set.begin(), var_set.end());

    // Reference answer.
    std::vector<Row> matched = reference_match(all, q.patterns);
    std::vector<Row> kept;
    for (const Row& r : matched) {
      if (reference_filter(r, q.filters, &ref_registry, features.get())) {
        kept.push_back(r);
      }
    }
    auto want = canonicalize_rows(kept, vars);

    // Engine answer.
    QueryResult result = engine.execute(q);
    auto got = canonicalize_table(result.solutions, vars);

    EXPECT_EQ(got, want) << "seed=" << cfg.seed << " trial=" << trial
                         << " shape=" << shape << " shards=" << cfg.shards;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EngineVsReference,
    ::testing::Values(
        Config{1, 1, true, RebalancePolicy::kThroughput, false},
        Config{2, 4, true, RebalancePolicy::kThroughput, false},
        Config{3, 16, true, RebalancePolicy::kThroughput, true},
        Config{4, 4, false, RebalancePolicy::kNone, false},
        Config{5, 8, false, RebalancePolicy::kCount, true},
        Config{6, 32, true, RebalancePolicy::kCount, false},
        Config{7, 3, true, RebalancePolicy::kThroughput, true},
        Config{8, 64, false, RebalancePolicy::kThroughput, false}));

}  // namespace
}  // namespace ids::core
