// Unit tests for src/common: RNG determinism, hashing stability, string
// utilities, statistics, Result/Status, and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace ids {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowIsInRangeAndCoversAll) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.pick_weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.fork(1);
  Rng fb = b.fork(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Hash, Fnv1aStableValues) {
  // Known FNV-1a test vector: empty string hashes to the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(fnv1a64("hello"), fnv1a64("hello"));
}

TEST(Hash, Mix64SpreadsSmallInputs) {
  std::set<std::uint64_t> buckets;
  for (std::uint64_t i = 0; i < 64; ++i) buckets.insert(mix64(i) % 16);
  EXPECT_GE(buckets.size(), 12u);  // small dense ids spread over shards
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  auto parts = split_ws("  foo \t bar\nbaz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Strings, HumanBytesMatchesTable1Style) {
  EXPECT_EQ(human_bytes(12700ull * 1000 * 1000 * 1000), "12.7 TB");
  EXPECT_EQ(human_bytes(81ull * 1000 * 1000 * 1000), "81.0 GB");
}

TEST(Strings, HumanCountMatchesTable1Style) {
  EXPECT_EQ(human_count(87600ull * 1000 * 1000), "87.6 Billion");
  EXPECT_EQ(human_count(539ull * 1000 * 1000), "539 Million");
  EXPECT_EQ(human_count(42), "42");
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, MergeEqualsCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, SampleSetPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-9);
}

TEST(Stats, SampleSetConstPercentileMatchesMutable) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  const SampleSet& cs = s;  // const overload copies instead of sorting
  EXPECT_NEAR(cs.median(), 3.0, 1e-9);
  EXPECT_NEAR(cs.percentile(1.0), 5.0, 1e-9);
  EXPECT_NEAR(s.percentile(0.5), 3.0, 1e-9);  // mutable overload agrees
  s.add(6.0);  // const path must also work on the unsorted tail
  EXPECT_NEAR(cs.percentile(1.0), 6.0, 1e-9);
}

TEST(Stats, RunningStatsToString) {
  RunningStats r;
  r.add(1.0);
  r.add(3.0);
  EXPECT_EQ(r.to_string(), "n=2 mean=2 min=1 max=3 sd=1.41421");
}

TEST(Logging, ShouldLogEveryNFiresOnMultiples) {
  std::atomic<std::uint64_t> counter{0};
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (internal::should_log_every_n(&counter, 4)) ++fired;
  }
  EXPECT_EQ(fired, 3);  // calls 0, 4, 8
  std::atomic<std::uint64_t> every1{0};
  EXPECT_TRUE(internal::should_log_every_n(&every1, 1));
  EXPECT_TRUE(internal::should_log_every_n(&every1, 0));
}

TEST(Result, OkAndErrorPaths) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Result, StatusToString) {
  EXPECT_EQ(Status::Ok().to_string(), "OK");
  EXPECT_EQ(Status::InvalidArgument("bad").to_string(),
            "INVALID_ARGUMENT: bad");
}

TEST(Result, StatusEqualityComparesCodeAndMessage) {
  // Regression: operator== used to compare only the code, so two failures
  // of the same kind with different contexts compared equal.
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::Ok(), Status::Ok());

  // Category-only comparison is still available, but opt-in.
  EXPECT_TRUE(Status::NotFound("a").code_equals(Status::NotFound("b")));
  EXPECT_FALSE(Status::NotFound("a").code_equals(Status::Internal("a")));
}

TEST(ResultDeathTest, ValueOnErrorAbortsWithCarriedStatus) {
  // value() on an error must hard-abort in every build type (this test
  // runs under RelWithDebInfo/Release with NDEBUG defined, so it also
  // proves the check survives NDEBUG) and print the carried Status.
  Result<int> err(Status::NotFound("missing row 7"));
  EXPECT_DEATH((void)err.value(),
               "Result::value\\(\\) on error: NOT_FOUND: missing row 7");
}

TEST(CheckDeathTest, IdsCheckAbortsWithLocationAndMessage) {
  int x = -3;
  EXPECT_DEATH(IDS_CHECK(x > 0) << "x was " << x,
               "common_test\\.cpp:[0-9]+: IDS_CHECK\\(x > 0\\) failed: "
               "x was -3");
}

TEST(CheckDeathTest, IdsDcheckMatchesBuildType) {
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return false;
  };
#ifdef NDEBUG
  IDS_DCHECK(touch());  // must neither abort nor even evaluate
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_DEATH(IDS_DCHECK(touch()), "IDS_CHECK\\(touch\\(\\)\\) failed");
#endif
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneWork) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(50, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

}  // namespace
}  // namespace ids
