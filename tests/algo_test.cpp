// Graph algorithm tests: PageRank properties on known topologies, BFS vs
// naive distances, components on disjoint cliques — across shard counts
// (parameterized), since results must be partition-invariant.

#include <gtest/gtest.h>

#include <memory>
#include <queue>

#include "algo/graph_algorithms.h"
#include "common/rng.h"

namespace ids::algo {
namespace {

using graph::TermId;
using graph::TripleStore;

constexpr const char* kEdge = "edge";

std::unique_ptr<TripleStore> ring_graph(int n, int shards) {
  auto store = std::make_unique<TripleStore>(shards);
  for (int i = 0; i < n; ++i) {
    store->add("v" + std::to_string(i), kEdge,
               "v" + std::to_string((i + 1) % n));
  }
  store->finalize();
  return store;
}

class AlgoShards : public ::testing::TestWithParam<int> {};

TEST_P(AlgoShards, PageRankUniformOnRing) {
  const int shards = GetParam();
  auto store = ring_graph(12, shards);
  runtime::Topology topo = runtime::Topology::laptop(shards);
  PageRankResult r = pagerank(*store, topo);
  ASSERT_EQ(r.rank.size(), 12u);
  double sum = 0.0;
  for (const auto& [v, pr] : r.rank) {
    EXPECT_NEAR(pr, 1.0 / 12.0, 1e-6);  // symmetric graph: uniform rank
    sum += pr;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(r.modeled_seconds, 0.0);
}

TEST_P(AlgoShards, PageRankStarCenterWins) {
  const int shards = GetParam();
  TripleStore store(shards);
  for (int i = 1; i <= 8; ++i) {
    store.add("leaf" + std::to_string(i), kEdge, "center");
    store.add("center", kEdge, "leaf" + std::to_string(i));
  }
  store.finalize();
  runtime::Topology topo = runtime::Topology::laptop(shards);
  PageRankResult r = pagerank(store, topo);
  TermId center = *store.dict().lookup("center");
  double center_rank = r.rank.at(center);
  for (const auto& [v, pr] : r.rank) {
    if (v != center) {
      EXPECT_GT(center_rank, pr * 3);
    }
  }
}

TEST_P(AlgoShards, PageRankPartitionInvariant) {
  // The same graph must produce the same ranks regardless of sharding.
  auto a = ring_graph(20, GetParam());
  auto b = ring_graph(20, 1);
  PageRankResult ra = pagerank(*a, runtime::Topology::laptop(GetParam()));
  PageRankResult rb = pagerank(*b, runtime::Topology::laptop(1));
  for (const auto& [v, pr] : ra.rank) {
    // Dictionaries assign identical ids (same insert order).
    EXPECT_NEAR(pr, rb.rank.at(v), 1e-9);
  }
}

TEST_P(AlgoShards, BfsDistancesMatchNaive) {
  const int shards = GetParam();
  // Random graph, then compare against a serial BFS.
  TripleStore store(shards);
  Rng rng(42);
  const int n = 40;
  std::vector<std::pair<int, int>> edge_list;
  for (int i = 0; i < 90; ++i) {
    int u = static_cast<int>(rng.next_below(n));
    int v = static_cast<int>(rng.next_below(n));
    if (u == v) continue;
    store.add("n" + std::to_string(u), kEdge, "n" + std::to_string(v));
    edge_list.emplace_back(u, v);
  }
  store.finalize();

  TermId source = *store.dict().lookup("n" + std::to_string(edge_list[0].first));
  BfsResult got = bfs(store, runtime::Topology::laptop(shards), source);

  // Naive undirected BFS over the integer edge list.
  std::vector<std::vector<int>> adj(n);
  for (auto [u, v] : edge_list) {
    adj[static_cast<std::size_t>(u)].push_back(v);
    adj[static_cast<std::size_t>(v)].push_back(u);
  }
  std::vector<int> dist(n, -1);
  std::queue<int> q;
  q.push(edge_list[0].first);
  dist[static_cast<std::size_t>(edge_list[0].first)] = 0;
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  for (int v = 0; v < n; ++v) {
    auto id = store.dict().lookup("n" + std::to_string(v));
    if (!id) continue;  // vertex never materialized
    auto it = got.distance.find(*id);
    if (dist[static_cast<std::size_t>(v)] < 0) {
      EXPECT_EQ(it, got.distance.end());
    } else {
      ASSERT_NE(it, got.distance.end()) << "n" << v;
      EXPECT_EQ(it->second, dist[static_cast<std::size_t>(v)]) << "n" << v;
    }
  }
}

TEST_P(AlgoShards, ComponentsOnDisjointCliques) {
  const int shards = GetParam();
  TripleStore store(shards);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        store.add("c" + std::to_string(c) + "_" + std::to_string(i), kEdge,
                  "c" + std::to_string(c) + "_" + std::to_string(j));
      }
    }
  }
  store.finalize();
  ComponentsResult r =
      connected_components(store, runtime::Topology::laptop(shards));
  EXPECT_EQ(r.num_components, 3u);
  // All vertices of a clique share a label.
  for (int c = 0; c < 3; ++c) {
    TermId first = *store.dict().lookup("c" + std::to_string(c) + "_0");
    for (int i = 1; i < 4; ++i) {
      TermId v = *store.dict().lookup("c" + std::to_string(c) + "_" +
                                      std::to_string(i));
      EXPECT_EQ(r.component.at(v), r.component.at(first));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, AlgoShards,
                         ::testing::Values(1, 4, 16));

TEST(Algo, PredicateFilterRestrictsEdges) {
  TripleStore store(4);
  store.add("a", "follows", "b");
  store.add("b", "follows", "c");
  store.add("a", "other", "z");
  store.finalize();
  TermId follows = *store.dict().lookup("follows");
  TermId a = *store.dict().lookup("a");
  BfsResult r = bfs(store, runtime::Topology::laptop(4), a, follows);
  EXPECT_EQ(r.distance.size(), 3u);  // a, b, c — not z
  EXPECT_FALSE(r.distance.contains(*store.dict().lookup("z")));
}

TEST(Algo, EmptyGraphIsSafe) {
  TripleStore store(4);
  store.finalize();
  PageRankResult pr = pagerank(store, runtime::Topology::laptop(4));
  EXPECT_TRUE(pr.rank.empty());
  ComponentsResult cc =
      connected_components(store, runtime::Topology::laptop(4));
  EXPECT_EQ(cc.num_components, 0u);
}

TEST(Algo, ModeledTimeGrowsWithMachineCommunication) {
  // The same algorithm on a multi-node machine pays fabric costs a
  // single node does not.
  auto store = ring_graph(64, 64);
  PageRankResult local = pagerank(*store, runtime::Topology::laptop(64));
  PageRankResult multi = pagerank(*store, runtime::Topology::cray_ex(2));
  EXPECT_GT(multi.modeled_seconds, local.modeled_seconds);
}

}  // namespace
}  // namespace ids::algo
