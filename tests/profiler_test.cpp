// Sampling-profiler tests. The profiler is a process-wide singleton, so
// every test starts from clear() + set_enabled and restores the disabled
// state on exit; aggregation tests drive sample_once() directly so the
// folded counts are fully deterministic (no timer involved). The
// start/stop tests exercise the real sampler thread and must stay clean
// under ASan and TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/profiler.h"

namespace ids::telemetry {
namespace {

/// Enables collection for one test body and guarantees the global
/// profiler is stopped, disabled, and emptied afterwards, so tests stay
/// order-independent within this binary.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler& p = Profiler::global();
    p.stop();
    p.clear();
    p.set_enabled(true);
  }
  void TearDown() override {
    Profiler& p = Profiler::global();
    p.stop();
    p.clear();
  }
};

TEST_F(ProfilerTest, FoldedAggregationIsDeterministic) {
  Profiler& p = Profiler::global();
  {
    ProfileScope outer("alpha");
    {
      ProfileScope inner("beta");
      for (int i = 0; i < 3; ++i) p.sample_once();
    }
    for (int i = 0; i < 2; ++i) p.sample_once();
  }
  // Main thread is idle now: the tick counts, the sample does not.
  p.sample_once();

  EXPECT_EQ(p.to_folded(),
            "alpha 2\n"
            "alpha;beta 3\n");
  EXPECT_EQ(p.samples_total(), 5u);
  EXPECT_EQ(p.ticks_total(), 6u);
}

TEST_F(ProfilerTest, EverySampleLandsInANamedScope) {
  Profiler& p = Profiler::global();
  // 10 idle ticks: nothing on this thread's shadow stack, so the sampler
  // must record zero samples — an idle thread never produces an
  // anonymous/empty path.
  for (int i = 0; i < 10; ++i) p.sample_once();
  EXPECT_EQ(p.samples_total(), 0u);
  EXPECT_EQ(p.to_folded(), "");

  {
    ProfileScope s("gamma");
    p.sample_once();
  }
  // The one non-idle tick produced exactly one sample, attributed to the
  // scope by name — 100% of samples live in named scopes.
  EXPECT_EQ(p.samples_total(), 1u);
  EXPECT_EQ(p.to_folded(), "gamma 1\n");
}

TEST_F(ProfilerTest, DepthOverflowTruncatesButStaysBalanced) {
  Profiler& p = Profiler::global();
  constexpr std::size_t kDepth = kMaxProfileDepth + 8;
  {
    std::vector<std::unique_ptr<ProfileScope>> scopes;
    scopes.reserve(kDepth);
    for (std::size_t i = 0; i < kDepth; ++i) {
      scopes.push_back(std::make_unique<ProfileScope>("deep"));
    }
    p.sample_once();
  }  // all kDepth frames pop here; pops past the cap must balance

  std::string folded = p.to_folded();
  // The recorded path holds exactly kMaxProfileDepth frames plus the
  // truncation marker.
  std::size_t frames = 0;
  for (std::size_t pos = folded.find("deep"); pos != std::string::npos;
       pos = folded.find("deep", pos + 1)) {
    ++frames;
  }
  EXPECT_EQ(frames, kMaxProfileDepth);
  EXPECT_NE(folded.find("[truncated] 1"), std::string::npos) << folded;

  // The stack fully unwound: a fresh scope records a single-frame path,
  // not one nested under leftover "deep" frames.
  p.clear();
  {
    ProfileScope s("after");
    p.sample_once();
  }
  EXPECT_EQ(p.to_folded(), "after 1\n");
}

TEST_F(ProfilerTest, SamplesWorkerThreadStacks) {
  Profiler& p = Profiler::global();
  std::atomic<bool> in_scope{false};
  std::atomic<bool> sampled{false};
  std::thread worker([&] {
    ProfileScope s("worker.busy");
    in_scope.store(true, std::memory_order_release);
    while (!sampled.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!in_scope.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  p.sample_once();  // main thread is idle; worker is in scope
  sampled.store(true, std::memory_order_release);
  worker.join();

  EXPECT_EQ(p.to_folded(), "worker.busy 1\n");
  EXPECT_EQ(p.samples_total(), 1u);
}

TEST_F(ProfilerTest, JsonTopSelfAndTotalCounts) {
  Profiler& p = Profiler::global();
  {
    ProfileScope outer("outer");
    p.sample_once();  // outer self
    ProfileScope inner("inner");
    p.sample_once();  // inner self, outer total
    p.sample_once();
  }
  std::string json = p.to_json_top();
  EXPECT_NE(json.find("\"samples_total\":3"), std::string::npos) << json;
  // inner: self 2, total 2; outer: self 1, total 3. Sorted by self desc.
  const std::size_t inner_pos =
      json.find("{\"frame\":\"inner\",\"self\":2,\"total\":2}");
  const std::size_t outer_pos =
      json.find("{\"frame\":\"outer\",\"self\":1,\"total\":3}");
  ASSERT_NE(inner_pos, std::string::npos) << json;
  ASSERT_NE(outer_pos, std::string::npos) << json;
  EXPECT_LT(inner_pos, outer_pos);
}

TEST_F(ProfilerTest, DisabledScopesAreInvisible) {
  Profiler& p = Profiler::global();
  p.set_enabled(false);
  {
    ProfileScope s("ghost");
    p.sample_once();
  }
  EXPECT_EQ(p.samples_total(), 0u);
  EXPECT_EQ(p.to_folded(), "");
}

TEST_F(ProfilerTest, StartStopIsIdempotentAndJoinsCleanly) {
  Profiler& p = Profiler::global();
  EXPECT_FALSE(p.running());
  p.start(/*hertz=*/500.0);
  EXPECT_TRUE(p.running());
  p.start();  // second start: no-op, no second thread
  EXPECT_TRUE(p.running());

  // The sampler thread is really ticking: wait (bounded) for ticks to
  // accumulate while this thread sits in a scope, so samples land too.
  {
    ProfileScope s("spin");
    const std::uint64_t before = p.ticks_total();
    for (int i = 0; i < 100000 && p.ticks_total() < before + 3; ++i) {
      std::this_thread::yield();
    }
    EXPECT_GT(p.ticks_total(), before);
  }

  p.stop();
  EXPECT_FALSE(p.running());
  p.stop();  // idempotent
  EXPECT_FALSE(p.running());

  // stop() disables collection and retains the aggregate for export.
  const std::uint64_t kept = p.ticks_total();
  EXPECT_GT(kept, 0u);
  p.sample_once();
  EXPECT_EQ(p.ticks_total(), kept + 1);

  // Restartable after a stop.
  p.start();
  EXPECT_TRUE(p.running());
  p.stop();
  EXPECT_FALSE(p.running());
}

}  // namespace
}  // namespace ids::telemetry
