// Tests for the 3-in-1 datastore legs: feature store, vector store (exact
// + IVF), and keyword inverted index.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "store/feature_store.h"
#include "store/inverted_index.h"
#include "store/ivf_index.h"
#include "store/vector_store.h"

namespace ids::store {
namespace {

TEST(FeatureStore, SetGetTyped) {
  FeatureStore fs(4);
  fs.set(1, "ic50_nm", 12.5);
  fs.set(1, "length", std::int64_t{320});
  fs.set(1, "sequence", std::string("ACDEF"));

  EXPECT_DOUBLE_EQ(*fs.get_double(1, "ic50_nm"), 12.5);
  EXPECT_EQ(*fs.get_int(1, "length"), 320);
  EXPECT_EQ(*fs.get_string(1, "sequence"), "ACDEF");
  EXPECT_EQ(fs.size(), 3u);
}

TEST(FeatureStore, OverwriteDoesNotGrow) {
  FeatureStore fs(2);
  fs.set(5, "x", 1.0);
  fs.set(5, "x", 2.0);
  EXPECT_EQ(fs.size(), 1u);
  EXPECT_DOUBLE_EQ(*fs.get_double(5, "x"), 2.0);
}

TEST(FeatureStore, MissingReturnsNullopt) {
  FeatureStore fs(2);
  fs.set(5, "x", 1.0);
  EXPECT_FALSE(fs.get_double(5, "y").has_value());
  EXPECT_FALSE(fs.get_double(6, "x").has_value());
  EXPECT_FALSE(fs.get_string(5, "x").has_value());  // wrong type
}

TEST(FeatureStore, IntPromotesToDouble) {
  FeatureStore fs(2);
  fs.set(1, "n", std::int64_t{7});
  EXPECT_DOUBLE_EQ(*fs.get_double(1, "n"), 7.0);
}

TEST(FeatureStore, ValueBytes) {
  EXPECT_EQ(FeatureStore::value_bytes(FeatureValue{1.0}), 8u);
  EXPECT_EQ(FeatureStore::value_bytes(FeatureValue{std::string("abcd")}), 4u);
}

class VectorStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    for (graph::TermId id = 1; id <= 200; ++id) {
      std::vector<float> v(8);
      for (auto& x : v) x = static_cast<float>(rng.normal());
      store_.add(id, v);
      data_[id] = v;
    }
  }

  std::vector<VectorHit> naive_topk(std::span<const float> q, std::size_t k,
                                    Metric m) {
    std::vector<VectorHit> hits;
    for (auto& [id, v] : data_) {
      hits.push_back({id, VectorStore::similarity(q, v, m)});
    }
    std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.id < b.id;
    });
    hits.resize(k);
    return hits;
  }

  VectorStore store_{4, 8};
  std::map<graph::TermId, std::vector<float>> data_;
};

TEST_F(VectorStoreTest, TopkMatchesNaiveForAllMetrics) {
  Rng rng(7);
  std::vector<float> q(8);
  for (auto& x : q) x = static_cast<float>(rng.normal());
  for (Metric m : {Metric::kCosine, Metric::kDot, Metric::kL2}) {
    auto got = store_.topk(q, 10, m);
    auto want = naive_topk(q, 10, m);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "metric " << static_cast<int>(m);
      EXPECT_FLOAT_EQ(got[i].score, want[i].score);
    }
  }
}

TEST_F(VectorStoreTest, SelfIsNearestUnderCosine) {
  auto v = store_.get(17);
  ASSERT_FALSE(v.empty());
  auto hits = store_.topk(v, 1, Metric::kCosine);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 17u);
  EXPECT_NEAR(hits[0].score, 1.0f, 1e-5);
}

TEST_F(VectorStoreTest, OverwriteReplacesVector) {
  std::vector<float> v(8, 1.0f);
  store_.add(17, v);
  auto got = store_.get(17);
  for (float x : got) EXPECT_FLOAT_EQ(x, 1.0f);
  EXPECT_EQ(store_.size(), 200u);  // no growth
}

TEST_F(VectorStoreTest, MissingIdScoresAsSentinel) {
  std::vector<float> q(8, 1.0f);
  for (Metric m : {Metric::kCosine, Metric::kDot, Metric::kL2}) {
    EXPECT_EQ(store_.score(q, 9999, m), kMissingScore)
        << "metric " << static_cast<int>(m);
  }
  // The sentinel ranks below any stored vector's score under every metric.
  for (Metric m : {Metric::kCosine, Metric::kDot, Metric::kL2}) {
    EXPECT_GT(store_.score(q, 17, m), kMissingScore);
  }
}

TEST_F(VectorStoreTest, L2ScoreIsNegatedDistance) {
  std::vector<float> a(8, 0.0f);
  std::vector<float> b(8, 0.0f);
  b[0] = 3.0f;
  EXPECT_FLOAT_EQ(VectorStore::similarity(a, b, Metric::kL2), -3.0f);
}

TEST_F(VectorStoreTest, ScanWorkUnitsScaleWithShardSize) {
  std::uint64_t total = 0;
  for (int s = 0; s < store_.num_shards(); ++s) {
    total += store_.scan_work_units(s);
  }
  EXPECT_EQ(total, 200u * 8u);
}

TEST(IvfIndex, RecallIsHighWithAllProbes) {
  Rng rng(11);
  VectorStore store(1, 16);
  for (graph::TermId id = 1; id <= 500; ++id) {
    std::vector<float> v(16);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    store.add(id, v);
  }
  IvfIndex index(store, 0, IvfIndex::Params{8, 6, 3});

  // With nprobe == num_clusters the IVF search is exhaustive: results must
  // equal the exact scan.
  std::vector<float> q(16);
  for (auto& x : q) x = static_cast<float>(rng.normal());
  auto exact = store.topk_shard(0, q, 10, Metric::kCosine);
  auto approx = index.topk(q, 10, Metric::kCosine, 8);
  ASSERT_EQ(exact.size(), approx.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i].id, approx[i].id);
  }
}

TEST(IvfIndex, PartialProbeRecallReasonable) {
  Rng rng(13);
  VectorStore store(1, 16);
  for (graph::TermId id = 1; id <= 1000; ++id) {
    std::vector<float> v(16);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    store.add(id, v);
  }
  IvfIndex index(store, 0, IvfIndex::Params{16, 8, 5});

  int found = 0;
  int total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> q(16);
    for (auto& x : q) x = static_cast<float>(rng.normal());
    auto exact = store.topk_shard(0, q, 5, Metric::kL2);
    auto approx = index.topk(q, 5, Metric::kL2, 6);
    for (const auto& e : exact) {
      ++total;
      for (const auto& a : approx) {
        if (a.id == e.id) {
          ++found;
          break;
        }
      }
    }
  }
  // 6/16 probes should recover well over half of the true neighbours.
  EXPECT_GT(static_cast<double>(found) / total, 0.6);
  EXPECT_LT(index.scan_fraction(6), 0.5);
  EXPECT_GT(index.work_units(6), 0u);
}

TEST(IvfIndex, EmptyShardIsSafe) {
  VectorStore store(2, 4);
  std::vector<float> v(4, 1.0f);
  store.add(1, v);  // lands in one shard; the other stays empty
  for (int s = 0; s < 2; ++s) {
    IvfIndex index(store, s, {});
    auto hits = index.topk(v, 3, Metric::kCosine, 4);
    EXPECT_LE(hits.size(), 1u);
  }
}

TEST(InvertedIndex, TokenizeLowercasesAndSplits) {
  auto toks = InvertedIndex::tokenize("Hello, World! x2");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
  EXPECT_EQ(toks[2], "x2");
}

TEST(InvertedIndex, AndSemantics) {
  InvertedIndex idx;
  idx.add_document(1, "adenosine receptor protein");
  idx.add_document(2, "adenosine kinase");
  idx.add_document(3, "receptor tyrosine kinase");
  idx.freeze();
  auto hits = idx.search_and({"adenosine", "receptor"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(InvertedIndex, OrSemantics) {
  InvertedIndex idx;
  idx.add_document(1, "alpha");
  idx.add_document(2, "beta");
  idx.add_document(3, "gamma");
  idx.freeze();
  auto hits = idx.search_or({"alpha", "beta", "missing"});
  EXPECT_EQ(hits, (std::vector<graph::TermId>{1, 2}));
}

TEST(InvertedIndex, MissingTokenMakesAndEmpty) {
  InvertedIndex idx;
  idx.add_document(1, "alpha beta");
  idx.freeze();
  EXPECT_TRUE(idx.search_and({"alpha", "zzz"}).empty());
  EXPECT_TRUE(idx.search_and({}).empty());
}

TEST(InvertedIndex, DuplicateMentionsDedup) {
  InvertedIndex idx;
  idx.add_document(7, "spam spam spam");
  idx.freeze();
  auto hits = idx.search_or({"spam"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(idx.posting_size("spam"), 1u);
}

TEST(InvertedIndex, CaseInsensitiveQuery) {
  InvertedIndex idx;
  idx.add_document(1, "Receptor");
  idx.freeze();
  EXPECT_EQ(idx.search_and({"RECEPTOR"}).size(), 1u);
}

TEST(InvertedIndex, FreezeReopenEpochRoundTrip) {
  InvertedIndex idx;
  EXPECT_FALSE(idx.frozen());
  idx.add_document(1, "alpha");
  idx.freeze();
  EXPECT_TRUE(idx.frozen());
  idx.freeze();  // idempotent
  EXPECT_EQ(idx.search_or({"alpha"}).size(), 1u);
  idx.reopen();
  EXPECT_FALSE(idx.frozen());
  idx.add_document(2, "alpha");
  idx.freeze();
  EXPECT_EQ(idx.search_or({"alpha"}).size(), 2u);
}

TEST(FeatureStore, FreezeReopenEpochRoundTrip) {
  FeatureStore fs(2);
  EXPECT_FALSE(fs.frozen());
  fs.set(1, "score", 2.0);
  fs.freeze();
  EXPECT_TRUE(fs.frozen());
  EXPECT_EQ(fs.get_double(1, "score"), 2.0);
  fs.reopen();
  fs.set(1, "score", 3.0);
  fs.freeze();
  EXPECT_EQ(fs.get_double(1, "score"), 3.0);
}

}  // namespace
}  // namespace ids::store
