// Telemetry tests: metrics registry (series identity, bucket edges,
// Prometheus/JSON exposition goldens, concurrency under TSan), the query
// tracer (span tree, cap, Chrome trace_event schema), and the engine
// integration contract — per-stage trace spans must match
// QueryResult::stages exactly, on the same integer-nanosecond clock.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cache/manager.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/query_stats.h"
#include "telemetry/trace.h"

namespace ids::telemetry {
namespace {

using core::EngineOptions;
using core::IdsEngine;
using core::Query;
using core::QueryResult;
using expr::Expr;
using graph::PatternTerm;
using graph::TermId;

// ---- Minimal JSON syntax validator --------------------------------------
// Recursive descent over the full JSON grammar; used to check that both
// exporters emit well-formed documents without depending on a JSON lib.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// ---- MetricsRegistry -----------------------------------------------------

TEST(Metrics, SameSeriesReturnsSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.counter("ids_t_total", {{"k", "v"}});
  Counter* b = reg.counter("ids_t_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  a->inc();
  a->inc(4);
  EXPECT_EQ(b->value(), 5u);
  EXPECT_NE(reg.counter("ids_t_total", {{"k", "w"}}), a);
  EXPECT_NE(reg.counter("ids_t_total"), a);
}

TEST(Metrics, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  Counter* a = reg.counter("ids_t_total", {{"a", "1"}, {"b", "2"}});
  Counter* b = reg.counter("ids_t_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("ids_t_depth");
  g->set(2.5);
  g->add(1.0);
  EXPECT_DOUBLE_EQ(g->value(), 3.5);
  g->add(-4.0);
  EXPECT_DOUBLE_EQ(g->value(), -0.5);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry reg;
  const double bounds[] = {1.0, 2.0, 4.0};
  Histogram* h = reg.histogram("ids_t_seconds", bounds);
  for (double x : {0.5, 1.0, 1.5, 2.0, 4.0, 5.0}) h->observe(x);
  std::vector<std::uint64_t> counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // 0.5 and exactly-1.0: le is inclusive
  EXPECT_EQ(counts[1], 2u);      // 1.5, 2.0
  EXPECT_EQ(counts[2], 1u);      // 4.0
  EXPECT_EQ(counts[3], 1u);      // 5.0 -> +Inf
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 14.0);
}

TEST(Metrics, HistogramQuantileInterpolatesAndHitsBucketEdgesExactly) {
  MetricsRegistry reg;
  const double bounds[] = {1.0, 2.0, 4.0};
  Histogram* h = reg.histogram("ids_t_seconds", bounds);
  EXPECT_TRUE(std::isnan(h->quantile(0.5)));  // empty histogram

  // One observation per bucket (including +Inf): counts [1,1,1,1].
  for (double x : {0.5, 1.5, 3.0, 10.0}) h->observe(x);

  // Quantiles that exhaust a bucket land exactly on its upper edge —
  // no accumulated float error at the boundaries.
  EXPECT_DOUBLE_EQ(h->quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.75), 4.0);
  // Inside a bucket, linear interpolation: the 0.375-quantile sits
  // halfway through bucket (1, 2].
  EXPECT_DOUBLE_EQ(h->quantile(0.375), 1.5);
  // q=0 resolves to the first bucket's lower edge (0 for positive
  // bounds); q=1 inside +Inf clamps to the largest finite bound.
  EXPECT_DOUBLE_EQ(h->quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h->quantile(1.0), 4.0);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(h->quantile(-3.0), h->quantile(0.0));
  EXPECT_DOUBLE_EQ(h->quantile(7.0), h->quantile(1.0));

  // The member and the free function agree on the same snapshot.
  std::vector<std::uint64_t> counts = h->bucket_counts();
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.375),
                   h->quantile(0.375));
}

TEST(Metrics, HistogramQuantileOverflowAndNegativeEdges) {
  MetricsRegistry reg;
  const double bounds[] = {1.0, 2.0};
  Histogram* h = reg.histogram("ids_t_seconds", bounds);
  h->observe(50.0);  // only the +Inf bucket is populated
  // Best available estimate: clamp to the largest finite bound.
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 2.0);

  // A first bucket with a negative upper edge uses that edge (not 0) as
  // its lower bound, so the estimate never overshoots the data.
  const double neg_bounds[] = {-2.0, 2.0};
  Histogram* n = reg.histogram("ids_t_delta", neg_bounds);
  n->observe(-3.0);
  EXPECT_DOUBLE_EQ(n->quantile(0.0), -2.0);
  EXPECT_DOUBLE_EQ(n->quantile(1.0), -2.0);
}

TEST(Metrics, JsonSnapshotCarriesQuantiles) {
  MetricsRegistry reg;
  const double bounds[] = {1.0, 2.0, 4.0};
  Histogram* h = reg.histogram("ids_t_seconds", bounds);
  std::string empty_json = reg.to_json();
  // Empty histogram: quantiles are NaN, so the keys are omitted and the
  // document stays valid JSON.
  EXPECT_EQ(empty_json.find("\"p50\""), std::string::npos);
  EXPECT_TRUE(JsonValidator(empty_json).valid()) << empty_json;

  for (double x : {0.5, 1.5, 3.0, 10.0}) h->observe(x);
  std::string json = reg.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // Derived from the same snapshot as the buckets: p50 exhausts bucket
  // (1,2], p95/p99 fall in +Inf and clamp to the largest finite bound.
  EXPECT_NE(json.find(",\"p50\":2,\"p95\":4,\"p99\":4"), std::string::npos)
      << json;
}

TEST(Metrics, PrometheusGolden) {
  MetricsRegistry reg;
  reg.counter("ids_t_total", {{"cache", "c0"}})->inc(3);
  reg.gauge("ids_t_depth")->set(2.5);
  const double bounds[] = {0.1, 1.0};
  Histogram* h = reg.histogram("ids_t_seconds", bounds);
  // Dyadic values: the sum is exact in binary, so the golden is stable.
  h->observe(0.0625);
  h->observe(0.5);
  h->observe(5.0);
  EXPECT_EQ(reg.to_prometheus(),
            "# TYPE ids_t_depth gauge\n"
            "ids_t_depth 2.5\n"
            "# TYPE ids_t_seconds histogram\n"
            "ids_t_seconds_bucket{le=\"0.1\"} 1\n"
            "ids_t_seconds_bucket{le=\"1\"} 2\n"
            "ids_t_seconds_bucket{le=\"+Inf\"} 3\n"
            "ids_t_seconds_sum 5.5625\n"
            "ids_t_seconds_count 3\n"
            "# TYPE ids_t_total counter\n"
            "ids_t_total{cache=\"c0\"} 3\n");
}

TEST(Metrics, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("ids_t_total", {{"k", "a\"b\\c\nd"}})->inc();
  EXPECT_EQ(reg.to_prometheus(),
            "# TYPE ids_t_total counter\n"
            "ids_t_total{k=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(Metrics, JsonExportIsValidAndCarriesValues) {
  MetricsRegistry reg;
  reg.counter("ids_t_total")->inc(2);
  reg.gauge("ids_t_depth")->set(1.5);
  const double bounds[] = {1.0};
  reg.histogram("ids_t_seconds", bounds)->observe(0.5);
  std::string json = reg.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"name\":\"ids_t_total\",\"labels\":{},\"value\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"le\":\"1\",\"count\":1}"), std::string::npos);
}

TEST(Metrics, FormatDoubleRoundTrips) {
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(2.5e-6), "2.5e-06");
  EXPECT_EQ(format_double(1.0 / 3.0), "0.3333333333333333");
}

TEST(Metrics, ConcurrentRecordingIsExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Resolve inside the thread: registration itself must be safe too.
      Counter* c = reg.counter("ids_t_total");
      Histogram* h =
          reg.histogram("ids_t_seconds", latency_seconds_buckets());
      Gauge* g = reg.gauge("ids_t_depth");
      for (int i = 0; i < kIters; ++i) {
        c->inc();
        h->observe(1e-4);
        g->add(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto total = static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(reg.counter("ids_t_total")->value(), total);
  EXPECT_EQ(
      reg.histogram("ids_t_seconds", latency_seconds_buckets())->count(),
      total);
  EXPECT_DOUBLE_EQ(reg.gauge("ids_t_depth")->value(),
                   static_cast<double>(total));
}

TEST(Metrics, CacheTierCountersOnPrivateRegistry) {
  MetricsRegistry reg;
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.metrics = &reg;
  cc.name = "t";
  cache::CacheManager cache(cc);
  sim::VirtualClock clock;
  cache.put(clock, 0, "obj", std::string(100, 'a'));
  ASSERT_TRUE(cache.get(clock, 0, "obj").has_value());
  EXPECT_EQ(reg.counter("ids_cache_hits_total",
                        {{"cache", "t"}, {"tier", "local_dram"}})
                ->value(),
            1u);
  EXPECT_EQ(reg.counter("ids_cache_puts_total", {{"cache", "t"}})->value(),
            1u);
  EXPECT_EQ(reg.counter("ids_cache_misses_total", {{"cache", "t"}})->value(),
            0u);
}

// ---- Tracer --------------------------------------------------------------

TEST(Trace, SpanTreeAndAttrs) {
  Tracer tracer;
  SpanId root = tracer.begin_span("query", "query", kNoSpan, -1, 0);
  ASSERT_NE(root, kNoSpan);
  SpanId child = tracer.begin_span("scan", "stage", root, -1, 10);
  tracer.add_attr(child, "rows", std::uint64_t{42});
  tracer.add_attr(child, "note", std::string_view("hi"));
  tracer.end_span(child, 30);
  tracer.end_span(root, 40);

  std::vector<Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].virt_duration(), 40u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].virt_start, 10u);
  EXPECT_EQ(spans[1].virt_duration(), 20u);
  ASSERT_EQ(spans[1].attrs.size(), 2u);
  EXPECT_EQ(spans[1].attrs[0].first, "rows");
  EXPECT_EQ(spans[1].attrs[0].second, "42");
  EXPECT_LE(spans[1].wall_start_ns, spans[1].wall_end_ns);
}

TEST(Trace, CapDropsExcessSpansAndNoSpanIsInert) {
  Tracer tracer(/*max_spans=*/2);
  EXPECT_NE(tracer.begin_span("a", "x", kNoSpan, -1, 0), kNoSpan);
  EXPECT_NE(tracer.record_span("b", "x", kNoSpan, -1, 0, 1, 0, 1), kNoSpan);
  EXPECT_EQ(tracer.begin_span("c", "x", kNoSpan, -1, 0), kNoSpan);
  EXPECT_EQ(tracer.record_span("d", "x", kNoSpan, -1, 0, 1, 0, 1), kNoSpan);
  tracer.end_span(kNoSpan, 5);                     // no-op
  tracer.add_attr(kNoSpan, "k", std::uint64_t{1});  // no-op
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_NE(tracer.to_chrome_json().find("\"dropped_spans\":2"),
            std::string::npos);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, ChromeJsonIsValidJson) {
  Tracer tracer;
  SpanId q = tracer.begin_span("query", "query", kNoSpan, -1, 0);
  SpanId s = tracer.begin_span("scan", "stage", q, -1, 0);
  SpanId r = tracer.begin_span("scan", "rank", s, 2, 0);
  tracer.add_attr(r, "matches", std::uint64_t{7});
  tracer.end_span(r, 1500);
  tracer.end_span(s, 2000);
  tracer.end_span(q, 2000);

  std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Rank 2 maps to tid 3; the engine timeline is tid 0.
  EXPECT_NE(json.find("\"tid\":3,\"args\":{\"name\":\"rank 2\"}"),
            std::string::npos);
  // Modeled times become microseconds with 3 decimals, exactly.
  EXPECT_NE(json.find("\"ts\":0.000,\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"modeled_ns\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"matches\":\"7\""), std::string::npos);
}

TEST(Trace, TextReportTreeAndCategorySummary) {
  Tracer tracer;
  SpanId q = tracer.begin_span("query", "query", kNoSpan, -1, 0);
  SpanId s = tracer.begin_span("filter", "stage", q, -1, 0);
  tracer.end_span(s, sim::from_seconds(1.5));
  tracer.end_span(q, sim::from_seconds(1.5));
  std::string report = tracer.to_text_report();
  EXPECT_NE(report.find("trace: 2 spans"), std::string::npos) << report;
  EXPECT_NE(report.find("query"), std::string::npos);
  EXPECT_NE(report.find("  filter"), std::string::npos);  // indented child
  EXPECT_NE(report.find("by category (modeled seconds):"), std::string::npos);
  EXPECT_NE(report.find("n=1"), std::string::npos);  // RunningStats summary
}

TEST(Trace, DroppedSpansFlowIntoMetricsCounter) {
  MetricsRegistry reg;
  Tracer tracer(/*max_spans=*/2, &reg);
  Counter* dropped = reg.counter("ids_trace_dropped_spans_total");
  EXPECT_EQ(dropped->value(), 0u);
  for (int i = 0; i < 5; ++i) {
    tracer.begin_span("s", "stage", kNoSpan, -1, 0);
  }
  // 2 spans fit, 3 are dropped — the tracer's own count and the exported
  // counter agree exactly.
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(dropped->value(), 3u);
  // record_span drops are counted through the same series.
  tracer.record_span("r", "stage", kNoSpan, -1, 0, 1, 0, 1);
  EXPECT_EQ(dropped->value(), 4u);
  // clear() resets the tracer but not the monotonic counter.
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(dropped->value(), 4u);
}

TEST(Trace, RingRetainsNewestEntriesWithSequences) {
  TraceRing ring(/*capacity=*/3);
  EXPECT_EQ(ring.snapshot().size(), 0u);
  EXPECT_NE(ring.to_text_report().find("0 of 0 completed queries"),
            std::string::npos);

  MetricsRegistry reg;
  for (int i = 0; i < 5; ++i) {
    Tracer tracer(/*max_spans=*/16, &reg);
    SpanId root = tracer.begin_span("query", "query", kNoSpan, -1, 0);
    tracer.add_attr(root, "n", static_cast<std::uint64_t>(i));
    tracer.end_span(root, 1000 * (i + 1));
    ring.push(tracer.snapshot(), tracer.dropped());
  }

  EXPECT_EQ(ring.total_pushed(), 5u);
  std::vector<TraceRing::Entry> entries = ring.snapshot();
  ASSERT_EQ(entries.size(), 3u);  // oldest two fell out
  EXPECT_EQ(entries[0].sequence, 3u);
  EXPECT_EQ(entries[2].sequence, 5u);
  ASSERT_EQ(entries[2].spans.size(), 1u);
  EXPECT_EQ(entries[2].spans[0].virt_end, 5000u);

  // Text report is newest-first with per-trace headers.
  std::string report = ring.to_text_report();
  const std::size_t newest = report.find("trace #5");
  const std::size_t oldest = report.find("trace #3");
  ASSERT_NE(newest, std::string::npos) << report;
  ASSERT_NE(oldest, std::string::npos) << report;
  EXPECT_LT(newest, oldest);
  EXPECT_EQ(report.find("trace #1"), std::string::npos);

  // Chrome export renders the newest retained trace.
  std::string json = ring.to_chrome_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"n\":\"4\""), std::string::npos) << json;
}

// ---- Query resource accounts ---------------------------------------------

TEST(QueryStats, AccountJsonGolden) {
  QueryResourceAccount a;
  a.sequence = 3;
  a.modeled_seconds = 2.5;
  a.wall_seconds = 0.5;
  a.rows_gathered = 24;
  a.rows_partitioned = 124;
  a.udf_invocations = 7;
  a.peak_solution_bytes = 4096;
  a.cache_bytes_written = 2048;
  a.cache_misses = 2;
  a.tiers.push_back({"local_dram", 1024, 5});
  a.tiers.push_back({"remote_dram", 512, 1});
  a.stages.push_back({"scan", 1.0, 0.25});
  a.stages.push_back({"gather", 1.5, 0.25});
  EXPECT_EQ(
      a.to_json(),
      "{\"sequence\":3,\"modeled_seconds\":2.5,\"wall_seconds\":0.5,"
      "\"divergence_seconds\":-2,\"rows_gathered\":24,"
      "\"rows_partitioned\":124,\"udf_invocations\":7,"
      "\"peak_solution_bytes\":4096,\"cache_bytes_written\":2048,"
      "\"cache_misses\":2,\"tiers\":["
      "{\"tier\":\"local_dram\",\"bytes_in\":1024,\"hits\":5},"
      "{\"tier\":\"remote_dram\",\"bytes_in\":512,\"hits\":1}],"
      "\"stages\":["
      "{\"stage\":\"scan\",\"modeled_seconds\":1,\"wall_seconds\":0.25,"
      "\"divergence_seconds\":-0.75},"
      "{\"stage\":\"gather\",\"modeled_seconds\":1.5,\"wall_seconds\":0.25,"
      "\"divergence_seconds\":-1.25}]}");
  EXPECT_TRUE(JsonValidator(a.to_json()).valid());
}

TEST(QueryStats, RingStampsSequencesAndEvictsOldest) {
  QueryStatsRing ring(/*capacity=*/2);
  for (int i = 0; i < 3; ++i) {
    QueryResourceAccount a;
    a.rows_gathered = static_cast<std::uint64_t>(i);
    EXPECT_EQ(ring.push(std::move(a)), static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(ring.total_pushed(), 3u);
  std::vector<QueryResourceAccount> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].sequence, 2u);  // oldest retained
  EXPECT_EQ(kept[1].sequence, 3u);

  // JSON is newest-first under a total count.
  std::string json = ring.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  const std::size_t newest = json.find("\"sequence\":3");
  const std::size_t older = json.find("\"sequence\":2");
  ASSERT_NE(newest, std::string::npos) << json;
  ASSERT_NE(older, std::string::npos) << json;
  EXPECT_LT(newest, older);
  EXPECT_NE(json.find("\"total\":3"), std::string::npos);
}

// ---- Engine integration --------------------------------------------------

/// Tiny graph fixture mirroring tests/engine_test.cpp: 10 people with an
/// age feature and a friendship ring, sharded over 4 ranks.
class TelemetryEngineFixture : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;

  void SetUp() override {
    triples_ = std::make_unique<graph::TripleStore>(kRanks);
    features_ = std::make_unique<store::FeatureStore>(kRanks);
    auto& d = triples_->dict();
    for (int i = 0; i < 10; ++i) {
      std::string person = "person" + std::to_string(i);
      triples_->add(person, "type", "Person");
      features_->set(*d.lookup(person), "age", static_cast<double>(20 + i));
    }
    for (int i = 0; i < 10; ++i) {
      triples_->add("person" + std::to_string(i), "knows",
                    "person" + std::to_string((i + 1) % 10));
    }
    triples_->finalize();
    features_->freeze();
  }

  PatternTerm term(const char* iri) {
    return PatternTerm::Const(*triples_->dict().lookup(iri));
  }

  /// Scan + join + UDF filter + distinct + cached invoke + gather: every
  /// stage kind the tracer knows about.
  Query full_query() {
    Query q;
    q.patterns.push_back(
        {PatternTerm::Var("x"), term("type"), term("Person")});
    q.patterns.push_back(
        {PatternTerm::Var("x"), term("knows"), PatternTerm::Var("y")});
    q.filters.push_back(Expr::Udf("coarse", {Expr::Var("x")}));
    q.distinct_var = "x";
    core::InvokeClause inv;
    inv.udf = "score";
    inv.args = {Expr::Var("x")};
    inv.out_var = "s";
    inv.use_cache = true;
    inv.cache_prefix = "score";
    q.invokes.push_back(inv);
    return q;
  }

  void register_udfs(IdsEngine* eng) {
    eng->registry().register_static(
        "coarse", [](const udf::UdfContext& ctx,
                     std::span<const expr::Value> args) {
          const auto* e = std::get_if<expr::Entity>(&args[0]);
          auto age = ctx.features->get_double(e->id, "age");
          return udf::UdfResult{age && *age >= 22.0, sim::from_millis(2)};
        });
    eng->registry().register_static(
        "score", [](const udf::UdfContext& ctx,
                    std::span<const expr::Value> args) {
          const auto* e = std::get_if<expr::Entity>(&args[0]);
          auto age = ctx.features->get_double(e->id, "age");
          return udf::UdfResult{age ? *age * 2 : 0.0, sim::from_seconds(3)};
        });
  }

  std::unique_ptr<graph::TripleStore> triples_;
  std::unique_ptr<store::FeatureStore> features_;
};

TEST_F(TelemetryEngineFixture, StageSpansMatchQueryResultExactly) {
  Tracer tracer;
  MetricsRegistry reg;
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.metrics = &reg;
  cache::CacheManager cache(cc);

  EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  opts.cache = &cache;
  opts.tracer = &tracer;
  opts.metrics = &reg;
  IdsEngine eng(opts, triples_.get(), features_.get());
  register_udfs(&eng);

  QueryResult r = eng.execute(full_query());
  ASSERT_GT(r.stages.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);

  std::vector<Span> spans = tracer.snapshot();
  std::vector<Span> stage_spans;
  const Span* root = nullptr;
  for (const Span& s : spans) {
    if (s.category == "stage") stage_spans.push_back(s);
    if (s.category == "query") root = &s;
  }
  ASSERT_NE(root, nullptr);

  // One stage span per StageTiming, same names, same order, and the
  // modeled duration converts to the *identical* double.
  ASSERT_EQ(stage_spans.size(), r.stages.size());
  sim::Nanos cursor = 0;
  sim::Nanos total = 0;
  for (std::size_t i = 0; i < stage_spans.size(); ++i) {
    EXPECT_EQ(stage_spans[i].name, r.stages[i].stage);
    EXPECT_EQ(sim::to_seconds(stage_spans[i].virt_duration()),
              r.stages[i].seconds)
        << "stage " << r.stages[i].stage;
    EXPECT_EQ(stage_spans[i].parent, root->id);
    // Stages tile the query's modeled timeline with no gaps.
    EXPECT_EQ(stage_spans[i].virt_start, cursor);
    cursor = stage_spans[i].virt_end;
    total += stage_spans[i].virt_duration();
  }
  EXPECT_EQ(root->virt_start, 0u);
  EXPECT_EQ(root->virt_end, cursor);
  EXPECT_EQ(root->virt_duration(), total);
  EXPECT_EQ(sim::to_seconds(cursor), r.total_seconds);

  // The stage list contains the expected pipeline for full_query().
  std::vector<std::string> names;
  names.reserve(r.stages.size());
  for (const auto& st : r.stages) names.push_back(st.stage);
  EXPECT_EQ(names,
            (std::vector<std::string>{"scan", "join", "rebalance", "filter",
                                      "distinct", "invoke:score", "gather"}));

  // Per-rank operator spans hang off stage spans; per-call spans hang off
  // rank spans.
  bool saw_rank = false;
  bool saw_cache_call = false;
  bool saw_udf_call = false;
  for (const Span& s : spans) {
    if (s.category == "rank") {
      saw_rank = true;
      EXPECT_GE(s.rank, 0);
    }
    if (s.category == "cache") saw_cache_call = true;
    if (s.category == "udf") saw_udf_call = true;
  }
  EXPECT_TRUE(saw_rank);
  EXPECT_TRUE(saw_cache_call);
  EXPECT_TRUE(saw_udf_call);

  // The Chrome export of a real query is valid JSON.
  EXPECT_TRUE(JsonValidator(tracer.to_chrome_json()).valid());

  // QueryResult hit/miss counters are derived from the cache's registry
  // counters, so the two must agree exactly.
  cache::CacheStats cs = cache.stats();
  EXPECT_EQ(r.cache_hits, cs.total_hits());
  EXPECT_EQ(r.cache_misses, cs.misses);

  // The UDF latency histogram reached the engine's private registry.
  EXPECT_EQ(reg.histogram("ids_udf_exec_seconds", latency_seconds_buckets(),
                          {{"udf", "score"}})
                ->count(),
            r.rows_invoked);
  EXPECT_EQ(reg.counter("ids_engine_queries_total")->value(), 1u);
}

TEST_F(TelemetryEngineFixture, ResourceAccountMatchesQueryResult) {
  Tracer tracer;
  MetricsRegistry reg;
  TraceRing traces;
  QueryStatsRing stats;
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.metrics = &reg;
  cache::CacheManager cache(cc);

  EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  opts.cache = &cache;
  opts.tracer = &tracer;
  opts.metrics = &reg;
  opts.trace_ring = &traces;
  opts.query_stats = &stats;
  IdsEngine eng(opts, triples_.get(), features_.get());
  register_udfs(&eng);

  QueryResult r = eng.execute(full_query());
  const QueryResourceAccount& a = r.account;

  // The account mirrors the QueryResult's own counters exactly.
  EXPECT_EQ(a.sequence, 1u);
  EXPECT_EQ(a.modeled_seconds, r.total_seconds);
  EXPECT_EQ(a.udf_invocations, static_cast<std::uint64_t>(r.rows_invoked));
  EXPECT_EQ(a.cache_misses, static_cast<std::uint64_t>(r.cache_misses));
  EXPECT_EQ(a.rows_gathered, r.solutions.num_rows());
  EXPECT_GT(a.rows_partitioned, 0u);   // rows crossed ranks in the join
  EXPECT_GT(a.peak_solution_bytes, 0u);
  EXPECT_GT(a.wall_seconds, 0.0);
  EXPECT_EQ(a.divergence_seconds(), a.wall_seconds - a.modeled_seconds);

  // Per-stage accounting lines up 1:1 with StageTiming on the modeled
  // clock, and every stage carries a wall measurement.
  ASSERT_EQ(a.stages.size(), r.stages.size());
  double stage_modeled = 0.0;
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].stage, r.stages[i].stage);
    EXPECT_EQ(a.stages[i].modeled_seconds, r.stages[i].seconds);
    EXPECT_GE(a.stages[i].wall_seconds, 0.0);
    stage_modeled += a.stages[i].modeled_seconds;
  }
  EXPECT_NEAR(stage_modeled, a.modeled_seconds, 1e-9);

  // Tier byte accounting: hits sum to the result's hit count, and every
  // reported tier actually served bytes.
  std::uint64_t tier_hits = 0;
  for (const auto& t : a.tiers) {
    EXPECT_GT(t.bytes_in + t.hits, 0u);
    tier_hits += t.hits;
  }
  EXPECT_EQ(tier_hits, static_cast<std::uint64_t>(r.cache_hits));

  // The account was pushed to the ring and the span tree to the trace
  // ring, with the root span carrying the account attrs for /tracez.
  ASSERT_EQ(stats.snapshot().size(), 1u);
  EXPECT_EQ(stats.snapshot()[0].sequence, 1u);
  ASSERT_EQ(traces.total_pushed(), 1u);
  const std::vector<Span> spans = traces.snapshot()[0].spans;
  const Span* root = nullptr;
  for (const Span& s : spans) {
    if (s.category == "query") root = &s;
  }
  ASSERT_NE(root, nullptr);
  bool saw_partitioned = false;
  bool saw_divergence = false;
  for (const auto& [key, value] : root->attrs) {
    if (key == "rows_partitioned") {
      saw_partitioned = true;
      EXPECT_EQ(value, std::to_string(a.rows_partitioned));
    }
    if (key == "divergence_seconds") saw_divergence = true;
  }
  EXPECT_TRUE(saw_partitioned);
  EXPECT_TRUE(saw_divergence);

  // The ids_query_* instruments saw the same numbers.
  EXPECT_EQ(reg.counter("ids_query_rows_gathered_total")->value(),
            a.rows_gathered);
  EXPECT_EQ(reg.counter("ids_query_udf_invocations_total")->value(),
            a.udf_invocations);
  EXPECT_EQ(reg.histogram("ids_query_modeled_seconds",
                          latency_seconds_buckets())
                ->count(),
            1u);

  // A second query advances the sequence; the account is per-execution.
  QueryResult r2 = eng.execute(full_query());
  EXPECT_EQ(r2.account.sequence, 2u);
  ASSERT_EQ(r2.account.stages.size(), r2.stages.size());
  EXPECT_EQ(stats.total_pushed(), 2u);
}

TEST_F(TelemetryEngineFixture, ExplainAndTraceAgreeOnStages) {
  Tracer tracer;
  MetricsRegistry reg;
  EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  opts.tracer = &tracer;
  opts.metrics = &reg;
  IdsEngine eng(opts, triples_.get(), features_.get());
  register_udfs(&eng);

  Query q = full_query();
  q.invokes[0].use_cache = false;  // no cache configured in this engine
  std::string plan = eng.explain(q);
  QueryResult r = eng.execute(q);

  // Every operator the plan lists shows up as a traced stage, and vice
  // versa: scan, join, filter chain, distinct, invoke.
  EXPECT_NE(plan.find("scan"), std::string::npos);
  EXPECT_NE(plan.find("join"), std::string::npos);
  EXPECT_NE(plan.find("filter chain"), std::string::npos);
  EXPECT_NE(plan.find("distinct ?x"), std::string::npos);
  EXPECT_NE(plan.find("invoke score"), std::string::npos);

  std::vector<std::string> traced;
  for (const Span& s : tracer.snapshot()) {
    if (s.category == "stage") traced.push_back(s.name);
  }
  std::vector<std::string> timed;
  timed.reserve(r.stages.size());
  for (const auto& st : r.stages) timed.push_back(st.stage);
  EXPECT_EQ(traced, timed);
  for (std::string_view want :
       {"scan", "join", "filter", "distinct", "invoke:score"}) {
    EXPECT_NE(std::find(traced.begin(), traced.end(), want), traced.end())
        << "missing stage " << want;
  }

  // The text report covers the stages too (with the stats.h summary).
  std::string report = tracer.to_text_report();
  EXPECT_NE(report.find("invoke:score"), std::string::npos);
  EXPECT_NE(report.find("n="), std::string::npos);
}

TEST_F(TelemetryEngineFixture, UntracedRunRecordsNothingButSameResult) {
  EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  MetricsRegistry reg;
  opts.metrics = &reg;

  Tracer tracer;
  EngineOptions traced_opts = opts;
  traced_opts.tracer = &tracer;

  Query q = full_query();
  q.invokes[0].use_cache = false;

  IdsEngine plain(opts, triples_.get(), features_.get());
  register_udfs(&plain);
  QueryResult a = plain.execute(q);

  IdsEngine traced(traced_opts, triples_.get(), features_.get());
  register_udfs(&traced);
  QueryResult b = traced.execute(q);

  // Tracing must not perturb the modeled result.
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].stage, b.stages[i].stage);
    EXPECT_EQ(a.stages[i].seconds, b.stages[i].seconds);
  }
  EXPECT_GT(tracer.size(), 0u);
}

TEST(ThreadPoolMetrics, TasksFlowIntoGlobalRegistry) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::uint64_t before = reg.counter("ids_threadpool_tasks_total")->value();
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.parallel_for(64, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
  EXPECT_GT(reg.counter("ids_threadpool_tasks_total")->value(), before);
  EXPECT_GT(
      reg.histogram("ids_threadpool_task_run_seconds",
                    latency_seconds_buckets())
          ->count(),
      0u);
}

}  // namespace
}  // namespace ids::telemetry
