// Stress tests pinning the single-threaded contracts of the flat
// open-addressing containers (src/common/flat_map.h).
//
// Both containers are query-local scratch structures: FlatGroupIndex is
// build-once (probe-only after the constructor) and FlatTermSet mutates
// on insert, including wholesale rehashes — neither is safe to share
// across threads, and the engine never does (each operator builds its
// own). These tests pin the properties that make the single-threaded
// usage correct: rehashes must not lose or duplicate keys, probe results
// must be stable across unrelated probes, and duplicate-heavy input —
// the open-addressing analogue of a tombstone-laden table, where probe
// chains run long because most slots repeat the same few keys — must
// neither grow the table nor corrupt the chains.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"

namespace ids {
namespace {

TEST(FlatTermSet, RehashPreservesEveryKeyAtEachGrowth) {
  // Start at the minimum capacity and push through ~10 doublings,
  // re-checking every previously inserted key whenever the table is about
  // to rehash. An element lost (or resurrected) by grow() fails here at
  // the exact boundary that broke it.
  Rng rng(91);
  FlatTermSet set(0);
  std::vector<std::uint64_t> inserted;
  std::size_t next_check = 8;
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t k = rng.next_u64();
    if (set.insert(k)) inserted.push_back(k);
    if (inserted.size() >= next_check) {
      for (std::uint64_t old : inserted) {
        ASSERT_TRUE(set.contains(old)) << "lost key after rehash near size "
                                       << inserted.size();
      }
      next_check *= 2;
    }
  }
  EXPECT_EQ(set.size(), inserted.size());
}

TEST(FlatTermSet, CapacityMarksTheExactRehashBoundary) {
  // insert() is annotated IDS_INVALIDATES(keys_): crossing the load factor
  // rehashes into fresh storage, so pointers into the table die there.
  // capacity() is the observable contract — while size() < capacity() an
  // insert must not move storage (capacity unchanged), and the insert that
  // reaches capacity() must grow it. Callers holding spans over the keys
  // rely on exactly this boundary.
  Rng rng(17);
  FlatTermSet set(0);
  std::size_t rehashes = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t cap_before = set.capacity();
    const bool stable = set.size() + 1 < cap_before;
    set.insert(rng.next_u64());
    if (stable) {
      ASSERT_EQ(set.capacity(), cap_before)
          << "storage moved below the advertised capacity, at size "
          << set.size();
    } else if (set.capacity() > cap_before) {
      ++rehashes;
    }
  }
  EXPECT_GE(rehashes, 5u);  // ~10 doublings from the minimum table
  EXPECT_GE(set.capacity(), set.size());
}

TEST(FlatTermSet, DuplicateHeavyWorkloadStaysBounded) {
  // 100k inserts over 17 distinct keys: the table must absorb the
  // duplicates without growing past the handful of live slots, and every
  // duplicate insert must report "already present".
  FlatTermSet set(0);
  std::size_t fresh = 0;
  for (int round = 0; round < 100000; ++round) {
    std::uint64_t k = static_cast<std::uint64_t>(round % 17) * 0x9e3779b9ull;
    if (set.insert(k)) ++fresh;
  }
  EXPECT_EQ(fresh, 17u);
  EXPECT_EQ(set.size(), 17u);
  for (int i = 0; i < 17; ++i) {
    EXPECT_TRUE(set.contains(static_cast<std::uint64_t>(i) * 0x9e3779b9ull));
  }
}

TEST(FlatTermSet, ClusteredKeysSurviveLongProbeChains) {
  // Sequential keys cluster under any multiplicative hash; with the edge
  // keys 0 and ~0 mixed in, the linear probe chains get as long as the
  // engine will ever see. Mirror against std::set through interleaved
  // insert/contains.
  FlatTermSet flat(2);
  std::set<std::uint64_t> ref;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    std::uint64_t k = (i % 2 == 0) ? i / 2 : ~0ull - i / 2;
    EXPECT_EQ(flat.insert(k), ref.insert(k).second);
    // Immediately re-query both the new key and its cluster neighbour.
    EXPECT_TRUE(flat.contains(k));
    EXPECT_EQ(flat.contains(k + 1), ref.count(k + 1) != 0);
  }
  EXPECT_EQ(flat.size(), ref.size());
}

TEST(FlatGroupIndex, ProbeSpansStableAcrossUnrelatedProbes) {
  // probe() is const and the grouped rows live in storage owned by the
  // index — a span handed out must stay valid and bit-identical no matter
  // how many other probes run between reads. This is the property that
  // lets the join kernel hold a group span across its inner loop.
  Rng rng(92);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.next_u64() % 64);
  FlatGroupIndex index(keys);

  auto first = index.probe(7);
  std::vector<std::uint32_t> snapshot(first.begin(), first.end());
  for (std::uint64_t k = 0; k < 100; ++k) (void)index.probe(k);
  auto second = index.probe(7);
  ASSERT_EQ(second.size(), snapshot.size());
  EXPECT_TRUE(std::equal(snapshot.begin(), snapshot.end(), second.begin()));
  EXPECT_EQ(first.data(), second.data());  // same underlying storage
}

TEST(FlatGroupIndex, DuplicateHeavyBuildKeepsGroupsDisjointAndComplete) {
  // One dominant key (90% of rows) plus a tail of singletons: group
  // extents must partition the row space exactly, each group must be
  // ascending, and membership must round-trip.
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 9000; ++i) keys.push_back(42);
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(1000 + static_cast<std::uint64_t>(i));
  }
  FlatGroupIndex index(keys);
  EXPECT_EQ(index.num_rows(), keys.size());
  EXPECT_EQ(index.num_keys(), 1001u);

  auto big = index.probe(42);
  ASSERT_EQ(big.size(), 9000u);
  EXPECT_TRUE(std::is_sorted(big.begin(), big.end()));
  for (std::uint32_t r : big) EXPECT_EQ(keys[r], 42u);

  std::size_t covered = big.size();
  for (int i = 0; i < 1000; ++i) {
    auto g = index.probe(1000 + static_cast<std::uint64_t>(i));
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(keys[g[0]], 1000 + static_cast<std::uint64_t>(i));
    covered += g.size();
  }
  EXPECT_EQ(covered, keys.size());
  EXPECT_TRUE(index.probe(999).empty());
}

TEST(FlatGroupIndex, EmptyAndSingletonBuilds) {
  FlatGroupIndex empty({});
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_EQ(empty.num_keys(), 0u);
  EXPECT_TRUE(empty.probe(0).empty());

  std::vector<std::uint64_t> one = {7};
  FlatGroupIndex single(one);
  EXPECT_EQ(single.num_rows(), 1u);
  ASSERT_EQ(single.probe(7).size(), 1u);
  EXPECT_EQ(single.probe(7)[0], 0u);
}

}  // namespace
}  // namespace ids
