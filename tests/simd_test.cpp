// Cross-level equivalence sweep for the runtime-dispatched SIMD layer.
//
// Every test runs its subject at each dispatch level the host CPU supports
// and compares against the scalar reference. Float kernels must be
// BIT-identical (EXPECT_EQ on float, not EXPECT_NEAR) per the determinism
// contract in DESIGN.md §11; integer kernels (striped Smith–Waterman,
// group-metadata scans) must be exactly equal by construction. A scalar-
// only host degenerates to scalar-vs-scalar, which keeps the suite green
// everywhere while exercising the full sweep on x86.

#include "common/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "models/smith_waterman.h"
#include "store/ivf_index.h"
#include "store/vector_store.h"

namespace ids {
namespace {

using simd::Level;

/// Restores the pre-test dispatch level even when an assertion fails.
class ScopedLevel {
 public:
  ScopedLevel() : saved_(simd::active_level()) {}
  ~ScopedLevel() { simd::set_level(saved_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level saved_;
};

/// Every level this host can actually run, scalar first.
std::vector<Level> supported_levels() {
  std::vector<Level> out{Level::kScalar};
  if (simd::detected_level() >= Level::kSse42) out.push_back(Level::kSse42);
  if (simd::detected_level() >= Level::kAvx2) out.push_back(Level::kAvx2);
  return out;
}

std::vector<float> random_vec(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

TEST(SimdDispatch, ParseAndNames) {
  EXPECT_EQ(simd::parse_level("scalar"), Level::kScalar);
  EXPECT_EQ(simd::parse_level("sse4.2"), Level::kSse42);
  EXPECT_EQ(simd::parse_level("sse42"), Level::kSse42);
  EXPECT_EQ(simd::parse_level("avx2"), Level::kAvx2);
  EXPECT_EQ(simd::parse_level("neon"), std::nullopt);
  EXPECT_EQ(simd::parse_level(""), std::nullopt);
  EXPECT_STREQ(simd::level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(Level::kSse42), "sse4.2");
  EXPECT_STREQ(simd::level_name(Level::kAvx2), "avx2");
}

TEST(SimdDispatch, SetLevelClampsToDetected) {
  ScopedLevel guard;
  // Requesting more than the CPU supports installs the detected maximum.
  Level got = simd::set_level(Level::kAvx2);
  EXPECT_EQ(got, std::min(Level::kAvx2, simd::detected_level()));
  EXPECT_EQ(simd::active_level(), got);
  EXPECT_EQ(simd::set_level(Level::kScalar), Level::kScalar);
  EXPECT_EQ(simd::active_level(), Level::kScalar);
}

// Ragged sizes: below one lane-group, non-multiples of 8 and 16, around
// the 4-row blocking boundary, plus a zero-length edge.
const std::size_t kSizes[] = {0, 1, 2, 3, 5, 7, 8, 9, 13, 15, 16, 17,
                              31, 33, 63, 100, 127, 128, 129, 255, 1000};

TEST(SimdFloat, DotAndL2BitIdenticalAcrossLevels) {
  ScopedLevel guard;
  Rng rng(42);
  for (std::size_t n : kSizes) {
    auto a = random_vec(rng, n);
    auto b = random_vec(rng, n);
    simd::set_level(Level::kScalar);
    const float dot_ref = simd::dot(a.data(), b.data(), n);
    const float l2_ref = simd::l2sq(a.data(), b.data(), n);
    for (Level lv : supported_levels()) {
      simd::set_level(lv);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(simd::dot(a.data(), b.data(), n), dot_ref)
          << "dot n=" << n << " level=" << simd::level_name(lv);
      EXPECT_EQ(simd::l2sq(a.data(), b.data(), n), l2_ref)
          << "l2sq n=" << n << " level=" << simd::level_name(lv);
    }
  }
}

TEST(SimdFloat, BatchKernelsMatchSingleRowAtEveryLevel) {
  ScopedLevel guard;
  Rng rng(7);
  // Row counts around the 4-row blocking boundary; ragged dims.
  for (std::size_t num_rows : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 33u}) {
    for (std::size_t dim : {1u, 7u, 16u, 33u, 96u}) {
      auto query = random_vec(rng, dim);
      auto rows = random_vec(rng, num_rows * dim);
      simd::set_level(Level::kScalar);
      std::vector<float> dot_ref(num_rows), l2_ref(num_rows);
      for (std::size_t r = 0; r < num_rows; ++r) {
        dot_ref[r] = simd::dot(query.data(), rows.data() + r * dim, dim);
        l2_ref[r] = simd::l2sq(query.data(), rows.data() + r * dim, dim);
      }
      for (Level lv : supported_levels()) {
        simd::set_level(lv);
        std::vector<float> out(num_rows, -1.0f);
        simd::dot_batch(query.data(), rows.data(), num_rows, dim, out.data());
        EXPECT_EQ(out, dot_ref) << "dot_batch rows=" << num_rows
                                << " dim=" << dim << " level="
                                << simd::level_name(lv);
        simd::l2sq_batch(query.data(), rows.data(), num_rows, dim, out.data());
        EXPECT_EQ(out, l2_ref) << "l2sq_batch rows=" << num_rows
                               << " dim=" << dim << " level="
                               << simd::level_name(lv);
      }
    }
  }
}

TEST(SimdFloat, SelfDotAndIndexedBatchesBitIdentical) {
  ScopedLevel guard;
  Rng rng(11);
  const std::size_t dim = 33;
  const std::size_t num_rows = 29;
  auto query = random_vec(rng, dim);
  auto rows = random_vec(rng, num_rows * dim);
  // A gathered, shuffled, repeating index set (the IVF member path).
  std::vector<std::size_t> idx = {28, 0, 5, 5, 17, 3, 28, 9, 1, 20, 13};

  simd::set_level(Level::kScalar);
  std::vector<float> self_ref(num_rows);
  for (std::size_t r = 0; r < num_rows; ++r) {
    self_ref[r] =
        simd::dot(rows.data() + r * dim, rows.data() + r * dim, dim);
  }
  std::vector<float> dot_ref(idx.size()), l2_ref(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    dot_ref[i] = simd::dot(query.data(), rows.data() + idx[i] * dim, dim);
    l2_ref[i] = simd::l2sq(query.data(), rows.data() + idx[i] * dim, dim);
  }

  for (Level lv : supported_levels()) {
    simd::set_level(lv);
    std::vector<float> self_out(num_rows, -1.0f);
    simd::self_dot_batch(rows.data(), num_rows, dim, self_out.data());
    EXPECT_EQ(self_out, self_ref) << simd::level_name(lv);

    std::vector<float> out(idx.size(), -1.0f);
    simd::dot_batch_indexed(query.data(), rows.data(), dim, idx.data(),
                            idx.size(), out.data());
    EXPECT_EQ(out, dot_ref) << simd::level_name(lv);
    simd::l2sq_batch_indexed(query.data(), rows.data(), dim, idx.data(),
                             idx.size(), out.data());
    EXPECT_EQ(out, l2_ref) << simd::level_name(lv);
  }
}

TEST(SimdGroupScan, MasksExactAtEveryLevel) {
  ScopedLevel guard;
  Rng rng(3);
  alignas(16) std::uint8_t ctrl[simd::kGroupWidth];
  for (int trial = 0; trial < 200; ++trial) {
    for (auto& c : ctrl) {
      // Mix of empties and 7-bit tags, including tag 0 and tag 0x7f.
      c = rng.bernoulli(0.3)
              ? simd::kCtrlEmpty
              : static_cast<std::uint8_t>(rng.next_below(128));
    }
    const auto tag = static_cast<std::uint8_t>(rng.next_below(128));
    simd::set_level(Level::kScalar);
    const std::uint32_t match_ref = simd::group_match(ctrl, tag);
    const std::uint32_t empty_ref = simd::group_match_empty(ctrl);
    for (Level lv : supported_levels()) {
      simd::set_level(lv);
      EXPECT_EQ(simd::group_match(ctrl, tag), match_ref)
          << "trial " << trial << " level " << simd::level_name(lv);
      EXPECT_EQ(simd::group_match_empty(ctrl), empty_ref)
          << "trial " << trial << " level " << simd::level_name(lv);
    }
  }
}

TEST(SimdGroupScan, FlatContainersAgreeAcrossLevels) {
  ScopedLevel guard;
  Rng rng(17);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.next_below(120));
  keys.push_back(0);
  keys.push_back(~0ull);

  // Build and probe under every level; the group masks are exact, so the
  // table layout and every probe result must be identical.
  simd::set_level(Level::kScalar);
  FlatGroupIndex ref_idx(keys);
  FlatTermSet ref_set;
  std::vector<bool> ref_new;
  for (auto k : keys) ref_new.push_back(ref_set.insert(k));

  for (Level lv : supported_levels()) {
    simd::set_level(lv);
    FlatGroupIndex idx(keys);
    ASSERT_EQ(idx.num_keys(), ref_idx.num_keys()) << simd::level_name(lv);
    for (std::uint64_t probe = 0; probe < 130; ++probe) {
      auto got = idx.probe(probe);
      auto want = ref_idx.probe(probe);
      ASSERT_EQ(got.size(), want.size()) << simd::level_name(lv);
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], want[i]);
      }
    }
    FlatTermSet set;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(set.insert(keys[i]), ref_new[i]) << simd::level_name(lv);
    }
    EXPECT_EQ(set.size(), ref_set.size());
    EXPECT_TRUE(set.contains(~0ull));
    EXPECT_FALSE(set.contains(1234567ull));
  }
}

std::string random_protein(Rng& rng, int len, bool with_unknowns) {
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    if (with_unknowns && rng.bernoulli(0.1)) {
      // Characters outside ARNDCQEGHILKMFPSTWYV: must map to the padded
      // "unknown" residue class identically on both paths.
      const char junk[] = {'X', 'B', 'Z', '*', '1'};
      s.push_back(junk[rng.next_below(5)]);
    } else {
      s.push_back(models::kAminoAcids[rng.next_below(20)]);
    }
  }
  return s;
}

TEST(SimdSmithWaterman, ExactlyEqualsScalarAcrossLevels) {
  ScopedLevel guard;
  Rng rng(23);
  std::vector<std::pair<std::string, std::string>> cases;
  // Ragged lengths around the 8-lane stripe boundary plus unknowns.
  for (int trial = 0; trial < 60; ++trial) {
    int m = 1 + static_cast<int>(rng.next_below(40));
    int n = 1 + static_cast<int>(rng.next_below(40));
    cases.emplace_back(random_protein(rng, m, trial % 3 == 0),
                       random_protein(rng, n, trial % 3 == 0));
  }
  cases.emplace_back("A", "A");
  cases.emplace_back("W", "V");
  cases.emplace_back("XXXX", "XXXX");
  cases.emplace_back(random_protein(rng, 200, true),
                     random_protein(rng, 175, true));

  for (const auto& [a, b] : cases) {
    simd::set_level(Level::kScalar);
    const models::SwResult ref = models::smith_waterman(a, b);
    for (Level lv : supported_levels()) {
      simd::set_level(lv);
      const models::SwResult got = models::smith_waterman(a, b);
      EXPECT_EQ(got.score, ref.score) << simd::level_name(lv);
      EXPECT_EQ(got.end_a, ref.end_a) << simd::level_name(lv);
      EXPECT_EQ(got.end_b, ref.end_b) << simd::level_name(lv);
      // Modeled cost must not depend on the dispatch level (the virtual
      // clock goldens would drift otherwise).
      EXPECT_EQ(got.cells, ref.cells) << simd::level_name(lv);
    }
  }
}

TEST(SimdSmithWaterman, Int16OverflowFallsBackToScalar) {
  ScopedLevel guard;
  // 4000 aligned tryptophans score 4000 * 11 = 44000 > INT16_MAX, so the
  // striped kernel must flag saturation and the wrapper must rerun the
  // int32 scalar DP — at every level, with identical results.
  const std::string a(4000, 'W');
  simd::set_level(Level::kScalar);
  const models::SwResult ref = models::smith_waterman(a, a);
  EXPECT_EQ(ref.score, 44000);
  for (Level lv : supported_levels()) {
    simd::set_level(lv);
    const models::SwResult got = models::smith_waterman(a, a);
    EXPECT_EQ(got.score, ref.score) << simd::level_name(lv);
    EXPECT_EQ(got.end_a, ref.end_a) << simd::level_name(lv);
    EXPECT_EQ(got.end_b, ref.end_b) << simd::level_name(lv);
  }

  // Direct kernel probes: the saturated case must report overflow (never a
  // silently wrong score), and the scalar level must decline cleanly.
  if (simd::detected_level() != Level::kScalar) {
    simd::set_level(simd::detected_level());
    const std::int8_t match11[] = {11};
    std::vector<std::uint8_t> idx(4000, 0);
    const simd::SwScore raw = simd::sw_striped_i16(
        idx.data(), 4000, idx.data(), 4000, match11, 1, 11, 1);
    ASSERT_TRUE(raw.used_simd);
    EXPECT_TRUE(raw.overflow);
  }
  simd::set_level(Level::kScalar);
  std::vector<std::uint8_t> idx(4, 0);
  const std::int8_t match1[] = {1};
  const simd::SwScore declined =
      simd::sw_striped_i16(idx.data(), 4, idx.data(), 4, match1, 1, 11, 1);
  EXPECT_FALSE(declined.used_simd);
}

TEST(SimdStore, ExactTopkBitIdenticalAcrossLevels) {
  ScopedLevel guard;
  Rng rng(31);
  const int dim = 48;
  store::VectorStore vs(2, dim);
  for (graph::TermId id = 1; id <= 300; ++id) {
    vs.add(id, random_vec(rng, static_cast<std::size_t>(dim)));
  }
  auto query = random_vec(rng, static_cast<std::size_t>(dim));

  for (auto metric :
       {store::Metric::kCosine, store::Metric::kDot, store::Metric::kL2}) {
    simd::set_level(Level::kScalar);
    const auto ref = vs.topk(query, 25, metric);
    for (Level lv : supported_levels()) {
      simd::set_level(lv);
      const auto got = vs.topk(query, 25, metric);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, ref[i].id) << simd::level_name(lv);
        // Scores, not just ranks, are bit-identical.
        EXPECT_EQ(got[i].score, ref[i].score) << simd::level_name(lv);
      }
    }
  }
}

TEST(SimdStore, IvfIndexBitIdenticalAcrossLevels) {
  ScopedLevel guard;
  Rng rng(37);
  const int dim = 32;
  store::VectorStore vs(1, dim);
  for (graph::TermId id = 1; id <= 400; ++id) {
    vs.add(id, random_vec(rng, static_cast<std::size_t>(dim)));
  }
  auto query = random_vec(rng, static_cast<std::size_t>(dim));

  simd::set_level(Level::kScalar);
  store::IvfIndex::Params params;
  params.num_clusters = 8;
  const store::IvfIndex ref_index(vs, 0, params);
  const auto ref = ref_index.topk(query, 20, store::Metric::kCosine, 3);

  for (Level lv : supported_levels()) {
    simd::set_level(lv);
    // K-means itself must converge to the identical clustering (the
    // assignment argmin compares bit-identical distances).
    const store::IvfIndex index(vs, 0, params);
    const auto got = index.topk(query, 20, store::Metric::kCosine, 3);
    ASSERT_EQ(got.size(), ref.size()) << simd::level_name(lv);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, ref[i].id) << simd::level_name(lv);
      EXPECT_EQ(got[i].score, ref[i].score) << simd::level_name(lv);
    }
  }
}

}  // namespace
}  // namespace ids
