// Smith-Waterman tests: exact values on tiny alignments, algebraic
// properties (identity, symmetry, bounds), and parameterized monotonicity
// under mutation.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/lifesci.h"
#include "models/cost_profile.h"
#include "models/smith_waterman.h"

namespace ids::models {
namespace {

TEST(Blosum62, KnownEntries) {
  EXPECT_EQ(blosum62('A', 'A'), 4);
  EXPECT_EQ(blosum62('W', 'W'), 11);
  EXPECT_EQ(blosum62('A', 'R'), -1);
  EXPECT_EQ(blosum62('R', 'A'), -1);  // symmetric
  EXPECT_EQ(blosum62('X', 'A'), -4);  // unknown residue
}

TEST(Blosum62, MatrixIsSymmetric) {
  for (char a : kAminoAcids) {
    for (char b : kAminoAcids) {
      EXPECT_EQ(blosum62(a, b), blosum62(b, a));
    }
  }
}

TEST(ResidueIndex, RoundTripsAlphabet) {
  for (std::size_t i = 0; i < kAminoAcids.size(); ++i) {
    EXPECT_EQ(residue_index(kAminoAcids[i]), static_cast<int>(i));
  }
  EXPECT_EQ(residue_index('X'), -1);
  EXPECT_EQ(residue_index('a'), 0);  // lowercase accepted
}

TEST(SmithWaterman, EmptyInputsScoreZero) {
  EXPECT_EQ(smith_waterman("", "ACD").score, 0);
  EXPECT_EQ(smith_waterman("ACD", "").score, 0);
}

TEST(SmithWaterman, IdenticalSequenceScoresSelfScore) {
  std::string seq = "ARNDCQEGHILKMFPSTWYV";
  SwResult r = smith_waterman(seq, seq);
  EXPECT_EQ(r.score, self_score(seq));
}

TEST(SmithWaterman, ExactValueSimpleMatch) {
  // "AAAA" vs "AAAA": 4 matches * 4 = 16.
  EXPECT_EQ(smith_waterman("AAAA", "AAAA").score, 16);
}

TEST(SmithWaterman, LocalAlignmentIgnoresFlanks) {
  // The common core "WWWW" dominates; unrelated flanks don't reduce it.
  int core = smith_waterman("WWWW", "WWWW").score;
  int flanked = smith_waterman("GGGGWWWWGGGG", "PPPPWWWWPPPP").score;
  EXPECT_GE(flanked, core);
}

TEST(SmithWaterman, GapInsertionCostsAffine) {
  // One gap: score = matches - (open + extend).
  std::string a = "WWWWWW";
  std::string b = "WWWXWWW";  // X never matches; best local may skip it
  SwResult r = smith_waterman(a, b);
  EXPECT_GT(r.score, 0);
  EXPECT_LE(r.score, self_score(a));
}

TEST(SmithWaterman, ScoreIsSymmetric) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a = datagen::random_protein_sequence(rng, 60);
    std::string b = datagen::random_protein_sequence(rng, 80);
    EXPECT_EQ(smith_waterman(a, b).score, smith_waterman(b, a).score);
  }
}

TEST(SmithWaterman, CellsAreMTimesN) {
  SwResult r = smith_waterman("ACDEFG", "ACD");
  EXPECT_EQ(r.cells, 18u);
}

TEST(NormalizedSimilarity, IdentityIsOne) {
  Rng rng(5);
  std::string seq = datagen::random_protein_sequence(rng, 120);
  EXPECT_DOUBLE_EQ(normalized_similarity(seq, seq), 1.0);
}

TEST(NormalizedSimilarity, BoundsAndSymmetry) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::string a = datagen::random_protein_sequence(rng, 100);
    std::string b = datagen::random_protein_sequence(rng, 100);
    double ab = normalized_similarity(a, b);
    double ba = normalized_similarity(b, a);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(ab, ba);
  }
}

TEST(NormalizedSimilarity, UnrelatedSequencesScoreLow) {
  Rng rng(9);
  std::string a = datagen::random_protein_sequence(rng, 300);
  std::string b = datagen::random_protein_sequence(rng, 300);
  EXPECT_LT(normalized_similarity(a, b), 0.2);
}

// Parameterized monotonicity: more mutation -> lower similarity, and the
// similarity bands must land where the Table 2 sweep expects them.
class MutationSweep : public ::testing::TestWithParam<double> {};

TEST_P(MutationSweep, SimilarityDecreasesWithDivergence) {
  const double rate = GetParam();
  Rng rng(42);
  std::string base = datagen::random_protein_sequence(rng, 250);
  std::string mutated = datagen::mutate_sequence(rng, base, rate, 0.001);
  double sim = normalized_similarity(base, mutated);

  std::string more_mutated =
      datagen::mutate_sequence(rng, base, std::min(1.0, rate + 0.3), 0.001);
  double sim_more = normalized_similarity(base, more_mutated);

  EXPECT_GT(sim, sim_more) << "rate " << rate;
  if (rate <= 0.01) {
    EXPECT_GT(sim, 0.95);
  }
  if (rate >= 0.6) {
    EXPECT_LT(sim, 0.35);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, MutationSweep,
                         ::testing::Values(0.005, 0.05, 0.15, 0.3, 0.45, 0.6));

TEST(SwCost, UnderOneMillisecondPerComparisonAtPaperScale) {
  // The paper's <1 ms/comparison budget at ~350-residue sequences must hold
  // under our calibrated cost model.
  CostProfile costs;
  std::uint64_t cells = 350ull * 350ull;
  EXPECT_LT(sim::to_seconds(costs.sw_cost(cells)), 1e-3);
}

}  // namespace
}  // namespace ids::models
