// Tests for virtual time, the fabric cost model, topology, heterogeneity
// profiles, and the costed collectives.

#include <gtest/gtest.h>

#include <numeric>

#include "runtime/exchange.h"
#include "runtime/hetero.h"
#include "runtime/rank_exec.h"
#include "runtime/topology.h"
#include "sim/fabric.h"
#include "sim/time.h"
#include "sim/virtual_clock.h"

namespace ids {
namespace {

using runtime::Topology;

TEST(SimTime, Conversions) {
  EXPECT_EQ(sim::from_seconds(1.0), sim::kNanosPerSecond);
  EXPECT_EQ(sim::from_millis(1.5), 1'500'000u);
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::from_seconds(42.0)), 42.0);
}

TEST(VirtualClock, AdvanceAndRaise) {
  sim::VirtualClock c;
  c.advance(100);
  EXPECT_EQ(c.now(), 100u);
  c.raise_to(50);  // never moves backwards
  EXPECT_EQ(c.now(), 100u);
  c.raise_to(200);
  EXPECT_EQ(c.now(), 200u);
}

TEST(ClockSet, BarrierRaisesAllToMax) {
  sim::ClockSet clocks(4);
  clocks.at(0).advance(10);
  clocks.at(2).advance(99);
  sim::Nanos m = clocks.barrier();
  EXPECT_EQ(m, 99u);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(clocks.at(r).now(), 99u);
}

TEST(LinkModel, AlphaBetaCost) {
  sim::LinkModel link{1000, 1.0e9};  // 1 us latency, 1 GB/s
  // 1 MB at 1 GB/s = 1 ms, plus latency.
  EXPECT_EQ(link.transfer_cost(1'000'000), 1000u + 1'000'000u);
  EXPECT_EQ(link.transfer_cost(0), 1000u);
}

TEST(Topology, RankNodeMapping) {
  Topology t = Topology::cray_ex(4);
  EXPECT_EQ(t.num_ranks(), 128);
  EXPECT_EQ(t.node_of_rank(0), 0);
  EXPECT_EQ(t.node_of_rank(31), 0);
  EXPECT_EQ(t.node_of_rank(32), 1);
  EXPECT_TRUE(t.same_node(0, 31));
  EXPECT_FALSE(t.same_node(31, 32));
}

TEST(Topology, LinkSelection) {
  Topology t = Topology::laptop(4);
  // All ranks on one node: intra link everywhere.
  EXPECT_EQ(&t.link(0, 3), &t.fabric.intra_node);
  Topology c = Topology::cray_ex(2);
  EXPECT_EQ(&c.link(0, 33), &c.fabric.inter_node);
}

TEST(Hetero, GroupsMatchPaperExample) {
  auto h = runtime::HeteroProfile::groups({{500, 1.0}, {300, 2.0}, {100, 3.0}});
  EXPECT_EQ(h.num_ranks(), 900);
  EXPECT_DOUBLE_EQ(h.at(0), 1.0);
  EXPECT_DOUBLE_EQ(h.at(500), 2.0);
  EXPECT_DOUBLE_EQ(h.at(899), 3.0);
  EXPECT_DOUBLE_EQ(h.min_speed(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_speed(), 3.0);
}

TEST(Hetero, EmptyProfileIsHomogeneous) {
  runtime::HeteroProfile h;
  EXPECT_DOUBLE_EQ(h.at(12345), 1.0);
}

TEST(Hetero, RandomIsDeterministicInSeed) {
  auto a = runtime::HeteroProfile::random(64, 0.5, 2.0, 9);
  auto b = runtime::HeteroProfile::random(64, 0.5, 2.0, 9);
  EXPECT_EQ(a.speeds(), b.speeds());
  for (double s : a.speeds()) {
    EXPECT_GE(s, 0.5);
    EXPECT_LE(s, 2.0);
  }
}

TEST(RankExec, ForEachRankRunsAll) {
  std::vector<int> hits(64, 0);
  runtime::for_each_rank(64, [&](int r) { hits[static_cast<std::size_t>(r)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Exchange, AlltoallvMovesDataCorrectly) {
  Topology topo = Topology::cray_ex(2);  // 64 ranks
  const int p = topo.num_ranks();
  sim::ClockSet clocks(static_cast<std::size_t>(p));

  // Rank r sends value r*1000+d to rank d.
  std::vector<std::vector<std::vector<int>>> send(
      static_cast<std::size_t>(p),
      std::vector<std::vector<int>>(static_cast<std::size_t>(p)));
  for (int r = 0; r < p; ++r) {
    for (int d = 0; d < p; ++d) {
      send[static_cast<std::size_t>(r)][static_cast<std::size_t>(d)] = {
          r * 1000 + d};
    }
  }
  auto recv = runtime::alltoallv(clocks, topo, send);
  for (int d = 0; d < p; ++d) {
    ASSERT_EQ(recv[static_cast<std::size_t>(d)].size(),
              static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(recv[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)],
                r * 1000 + d);
    }
  }
  // Everyone communicated: clocks advanced and were synchronized.
  EXPECT_GT(clocks.max(), 0u);
  EXPECT_EQ(clocks.min(), clocks.max());
}

TEST(Exchange, AlltoallvCostGrowsWithBytes) {
  Topology topo = Topology::cray_ex(2);
  const int p = topo.num_ranks();
  auto run = [&](std::size_t items) {
    sim::ClockSet clocks(static_cast<std::size_t>(p));
    std::vector<std::vector<std::vector<std::uint64_t>>> send(
        static_cast<std::size_t>(p),
        std::vector<std::vector<std::uint64_t>>(static_cast<std::size_t>(p)));
    for (int d = 0; d < p; ++d) {
      send[0][static_cast<std::size_t>(d)].assign(items, 7);
    }
    runtime::alltoallv(clocks, topo, send);
    return clocks.max();
  };
  EXPECT_GT(run(10000), run(10));
}

TEST(Exchange, ChargeTrafficIntraCheaperThanInter) {
  Topology topo = Topology::cray_ex(2);
  sim::VirtualClock intra;
  sim::VirtualClock inter;
  runtime::TrafficSummary ti;
  ti.intra_sent = 1 << 20;
  ti.messages = 1;
  runtime::TrafficSummary te;
  te.inter_sent = 1 << 20;
  te.messages = 1;
  runtime::charge_traffic(intra, topo, ti);
  runtime::charge_traffic(inter, topo, te);
  EXPECT_LT(intra.now(), inter.now());
}

TEST(Exchange, AllreduceCombinesAndCharges) {
  Topology topo = Topology::cray_ex(1);
  const int p = topo.num_ranks();
  sim::ClockSet clocks(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> vals(static_cast<std::size_t>(p));
  std::iota(vals.begin(), vals.end(), 0);
  std::uint64_t sum = runtime::allreduce(
      clocks, topo, vals, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(p) * (p - 1) / 2);
  EXPECT_GT(clocks.max(), 0u);
}

TEST(Exchange, TreeCollectiveScalesLogarithmically) {
  auto cost_at = [](int nodes) {
    Topology topo = Topology::cray_ex(nodes);
    sim::ClockSet clocks(static_cast<std::size_t>(topo.num_ranks()));
    runtime::charge_tree_collective(clocks, topo, 1024);
    return clocks.max();
  };
  sim::Nanos c64 = cost_at(64);
  sim::Nanos c256 = cost_at(256);
  // 4x the machine adds exactly 2 tree steps, not 4x the cost.
  EXPECT_GT(c256, c64);
  EXPECT_LT(c256, 2 * c64);
}

}  // namespace
}  // namespace ids
