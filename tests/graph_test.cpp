// Unit tests for the graph substrate: dictionary, shard indexes/scans,
// the sharded triple store, and solution tables.

#include <gtest/gtest.h>

#include "graph/dictionary.h"
#include "graph/shard.h"
#include "graph/solution.h"
#include "graph/triple_store.h"

namespace ids::graph {
namespace {

TEST(Dictionary, InternIsIdempotent) {
  Dictionary d;
  TermId a = d.intern("foo");
  TermId b = d.intern("foo");
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.name(a), "foo");
}

TEST(Dictionary, IdsAreDenseAndOrdered) {
  Dictionary d;
  EXPECT_EQ(d.intern("a"), 1u);
  EXPECT_EQ(d.intern("b"), 2u);
  EXPECT_EQ(d.intern("c"), 3u);
}

TEST(Dictionary, LookupMissingReturnsNullopt) {
  Dictionary d;
  EXPECT_FALSE(d.lookup("nope").has_value());
  d.intern("yes");
  EXPECT_TRUE(d.lookup("yes").has_value());
}

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small graph: edges (s, p, o) with ids 1..4 as terms.
    for (TermId s = 1; s <= 4; ++s) {
      for (TermId o = 1; o <= 4; ++o) {
        if (s != o) shard_.add({s, 10, o});
      }
    }
    shard_.add({1, 11, 1});  // self loop on different predicate
    shard_.add({1, 11, 1});  // duplicate: must dedup
    shard_.finalize();
  }
  GraphShard shard_;
};

TEST_F(ShardTest, FinalizeDedups) {
  EXPECT_EQ(shard_.size(), 13u);  // 12 edges + 1 self loop
}

TEST_F(ShardTest, FullyBoundLookup) {
  TriplePattern p{PatternTerm::Const(1), PatternTerm::Const(10),
                  PatternTerm::Const(2)};
  EXPECT_EQ(shard_.count(p), 1u);
  p.o = PatternTerm::Const(1);
  EXPECT_EQ(shard_.count(p), 0u);
}

TEST_F(ShardTest, SubjectBoundScan) {
  TriplePattern p{PatternTerm::Const(2), PatternTerm::Var("p"),
                  PatternTerm::Var("o")};
  EXPECT_EQ(shard_.count(p), 3u);
}

TEST_F(ShardTest, PredicateBoundUsesPos) {
  TriplePattern p{PatternTerm::Var("s"), PatternTerm::Const(11),
                  PatternTerm::Var("o")};
  EXPECT_EQ(GraphShard::choose_index(p), IndexOrder::kPOS);
  EXPECT_EQ(shard_.count(p), 1u);
}

TEST_F(ShardTest, ObjectBoundUsesOsp) {
  TriplePattern p{PatternTerm::Var("s"), PatternTerm::Var("p"),
                  PatternTerm::Const(3)};
  EXPECT_EQ(GraphShard::choose_index(p), IndexOrder::kOSP);
  EXPECT_EQ(shard_.count(p), 3u);
}

TEST_F(ShardTest, UnboundScansEverything) {
  TriplePattern p{PatternTerm::Var("s"), PatternTerm::Var("p"),
                  PatternTerm::Var("o")};
  EXPECT_EQ(shard_.count(p), 13u);
}

TEST_F(ShardTest, RepeatedVariableConstrains) {
  // {?x ?p ?x} matches only the self loop.
  TriplePattern p{PatternTerm::Var("x"), PatternTerm::Var("p"),
                  PatternTerm::Var("x")};
  EXPECT_EQ(shard_.count(p), 1u);
}

TEST(TripleStore, ShardingIsStableAndComplete) {
  TripleStore store(4);
  for (int i = 0; i < 100; ++i) {
    store.add("s" + std::to_string(i), "p", "o" + std::to_string(i));
  }
  store.finalize();
  EXPECT_EQ(store.total_triples(), 100u);
  // Every subject hashes to the same shard repeatedly.
  TermId s0 = *store.dict().lookup("s0");
  EXPECT_EQ(store.shard_of_subject(s0), store.shard_of_subject(s0));
  // Shards are reasonably balanced for 100 distinct subjects.
  for (int sh = 0; sh < 4; ++sh) {
    EXPECT_GT(store.shard(sh).size(), 10u);
  }
}

TEST(TripleStore, FreezeReopenEpochRoundTrip) {
  TripleStore store(2);
  EXPECT_FALSE(store.frozen());
  store.add("a", "knows", "b");
  store.finalize();
  EXPECT_TRUE(store.frozen());
  store.finalize();  // idempotent
  EXPECT_EQ(store.total_triples(), 1u);
  store.reopen();
  EXPECT_FALSE(store.frozen());
  store.add("b", "knows", "c");
  store.finalize();
  EXPECT_EQ(store.total_triples(), 2u);
}

TEST(TripleStore, MatchAllSpansShards) {
  TripleStore store(8);
  store.add("a", "knows", "b");
  store.add("b", "knows", "c");
  store.add("c", "knows", "a");
  store.finalize();
  TriplePattern p{PatternTerm::Var("x"),
                  PatternTerm::Const(*store.dict().lookup("knows")),
                  PatternTerm::Var("y")};
  EXPECT_EQ(store.match_all(p).size(), 3u);
}

TEST(SolutionTable, AppendAndAccess) {
  SolutionTable t({"a", "b"}, {"score"});
  TermId row1[] = {1, 2};
  double num1[] = {0.5};
  t.append_row(row1, num1);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.id_at(0, t.id_var_index("a")), 1u);
  EXPECT_EQ(t.id_at(0, t.id_var_index("b")), 2u);
  EXPECT_DOUBLE_EQ(t.num_at(0, t.num_var_index("score")), 0.5);
}

TEST(SolutionTable, VarIndexMissingIsNegative) {
  SolutionTable t({"a"});
  EXPECT_EQ(t.id_var_index("zzz"), -1);
  EXPECT_EQ(t.num_var_index("zzz"), -1);
}

TEST(SolutionTable, FilterRowsIsStable) {
  SolutionTable t({"x"});
  for (TermId i = 1; i <= 6; ++i) t.append_row({&i, 1});
  t.filter_rows({1, 0, 1, 0, 1, 0});
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.id_at(0, 0), 1u);
  EXPECT_EQ(t.id_at(1, 0), 3u);
  EXPECT_EQ(t.id_at(2, 0), 5u);
}

TEST(SolutionTable, TruncateAndTakeRows) {
  SolutionTable t({"x"});
  for (TermId i = 1; i <= 5; ++i) t.append_row({&i, 1});
  std::size_t rows[] = {4, 0};
  SolutionTable picked = t.take_rows(rows);
  ASSERT_EQ(picked.num_rows(), 2u);
  EXPECT_EQ(picked.id_at(0, 0), 5u);
  EXPECT_EQ(picked.id_at(1, 0), 1u);
  t.truncate(2);
  EXPECT_EQ(t.num_rows(), 2u);
  t.truncate(10);  // no-op
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(SolutionTable, AppendTableRequiresSameSchemaAndConcats) {
  SolutionTable a({"x"}, {"s"});
  SolutionTable b({"x"}, {"s"});
  TermId v = 7;
  double s = 1.5;
  b.append_row({&v, 1}, {&s, 1});
  a.append_table(b);
  a.append_table(b);
  EXPECT_EQ(a.num_rows(), 2u);
  EXPECT_TRUE(a.same_schema(b));
}

TEST(SolutionTable, AddNumVarBackfillsZero) {
  SolutionTable t({"x"});
  TermId v = 1;
  t.append_row({&v, 1});
  int col = t.add_num_var("energy");
  EXPECT_DOUBLE_EQ(t.num_at(0, col), 0.0);
  t.set_num(0, col, -7.5);
  EXPECT_DOUBLE_EQ(t.num_at(0, col), -7.5);
}

TEST(SolutionTable, RowBytesCountsBothKinds) {
  SolutionTable t({"a", "b"}, {"s"});
  EXPECT_EQ(t.row_bytes(), 2 * sizeof(TermId) + sizeof(double));
}

}  // namespace
}  // namespace ids::graph
