// Planner and rebalancer tests, including the paper's §2.4.2 worked
// example (900 heterogeneous ranks) as a closed-form check.

#include <gtest/gtest.h>

#include <numeric>

#include "core/planner.h"
#include "core/rebalancer.h"
#include "expr/chain.h"
#include "graph/triple_store.h"

namespace ids::core {
namespace {

using expr::Expr;

TEST(Rebalancer, CountTargetsConserveTotal) {
  auto t = count_based_targets(1001, 10);
  EXPECT_EQ(std::accumulate(t.begin(), t.end(), std::size_t{0}), 1001u);
  // Remainder spread: first one rank gets the extra row.
  EXPECT_EQ(t[0], 101u);
  EXPECT_EQ(t[9], 100u);
}

TEST(Rebalancer, ThroughputTargetsConserveTotal) {
  std::vector<double> tp = {1.0, 2.0, 3.0, 0.5};
  for (std::size_t total : {0u, 1u, 7u, 1000u, 999983u}) {
    auto t = throughput_targets(total, tp);
    EXPECT_EQ(std::accumulate(t.begin(), t.end(), std::size_t{0}), total);
  }
}

TEST(Rebalancer, ThroughputTargetsProportional) {
  std::vector<double> tp = {100.0, 200.0, 300.0};
  auto t = throughput_targets(600, tp);
  EXPECT_EQ(t[0], 100u);
  EXPECT_EQ(t[1], 200u);
  EXPECT_EQ(t[2], 300u);
}

TEST(Rebalancer, PaperWorkedExample) {
  // §2.4.2: 1.4M solutions; 500 ranks @100 ops/s, 300 @200, 100 @300.
  std::vector<double> tp;
  tp.insert(tp.end(), 500, 100.0);
  tp.insert(tp.end(), 300, 200.0);
  tp.insert(tp.end(), 100, 300.0);
  const std::size_t total = 1'400'000;

  auto targets = throughput_targets(total, tp);
  EXPECT_EQ(std::accumulate(targets.begin(), targets.end(), std::size_t{0}),
            total);
  // Slow ranks get 1000 solutions, 2x ranks 2000, 3x ranks 3000
  // (the paper's chunk_size * rank_ratio assignment).
  EXPECT_EQ(targets[0], 1000u);
  EXPECT_EQ(targets[500], 2000u);
  EXPECT_EQ(targets[899], 3000u);

  // Completion: balanced = total / aggregate throughput = 10 s; count-based
  // is bounded by the slowest rank at ~15.6 s. Throughput-based wins by the
  // ratio the paper's example illustrates.
  double balanced = completion_seconds(targets, tp);
  double count_based =
      completion_seconds(count_based_targets(total, 900), tp);
  EXPECT_NEAR(balanced, 10.0, 0.01);
  EXPECT_NEAR(count_based, 1556.0 / 100.0, 0.1);
  EXPECT_LT(balanced, count_based);
}

TEST(Rebalancer, DecideUsesCountWhenSimilar) {
  // All ranks within 20% of the slowest: count-based (the paper's rule).
  std::vector<std::size_t> counts = {10, 20, 30, 0};
  std::vector<double> tp = {100, 110, 105, 119};
  auto d = decide_rebalance(RebalancePolicy::kThroughput, counts, tp);
  EXPECT_TRUE(d.rebalance);
  EXPECT_FALSE(d.used_throughput);
  EXPECT_EQ(d.targets, count_based_targets(60, 4));
}

TEST(Rebalancer, DecideUsesThroughputWhenDivergent) {
  std::vector<std::size_t> counts = {30, 30};
  std::vector<double> tp = {100, 300};
  auto d = decide_rebalance(RebalancePolicy::kThroughput, counts, tp);
  EXPECT_TRUE(d.used_throughput);
  EXPECT_EQ(d.targets[0], 15u);
  EXPECT_EQ(d.targets[1], 45u);
  EXPECT_NEAR(d.speed_ratio, 3.0, 1e-9);
}

TEST(Rebalancer, MissingProfilesForceCountBased) {
  std::vector<std::size_t> counts = {5, 5};
  std::vector<double> tp = {100, 0.0};  // rank 1 never ran the UDF
  auto d = decide_rebalance(RebalancePolicy::kThroughput, counts, tp);
  EXPECT_FALSE(d.used_throughput);
}

TEST(Rebalancer, PolicyNoneDoesNothing) {
  auto d = decide_rebalance(RebalancePolicy::kNone, {1, 2}, {1.0, 2.0});
  EXPECT_FALSE(d.rebalance);
}

TEST(Rebalancer, PolicyCountIgnoresThroughput) {
  auto d = decide_rebalance(RebalancePolicy::kCount, {9, 1}, {100.0, 900.0});
  EXPECT_TRUE(d.rebalance);
  EXPECT_FALSE(d.used_throughput);
}

// --- Pattern ordering -------------------------------------------------------

class PatternOrdering : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<graph::TripleStore>(4);
    // 100 proteins, 10 reviewed, 200 inhibit edges.
    for (int i = 0; i < 100; ++i) {
      std::string p = "prot" + std::to_string(i);
      store_->add(p, "type", "Protein");
      if (i < 10) store_->add(p, "reviewed", "true");
    }
    for (int i = 0; i < 200; ++i) {
      store_->add("cpd" + std::to_string(i % 50), "inhibits",
                  "prot" + std::to_string(i % 100));
    }
    store_->finalize();
  }

  graph::TriplePattern pat(const char* s, const char* p, const char* o) {
    auto term = [this](const char* t) -> graph::PatternTerm {
      if (t[0] == '?') return graph::PatternTerm::Var(t + 1);
      return graph::PatternTerm::Const(*store_->dict().lookup(t));
    };
    return {term(s), term(p), term(o)};
  }

  std::unique_ptr<graph::TripleStore> store_;
};

TEST_F(PatternOrdering, CardinalityEstimatesAreExact) {
  EXPECT_EQ(estimate_cardinality(*store_, pat("?x", "type", "Protein")), 100u);
  EXPECT_EQ(estimate_cardinality(*store_, pat("?x", "reviewed", "true")), 10u);
}

TEST_F(PatternOrdering, MostSelectiveFirstThenConnected) {
  std::vector<graph::TriplePattern> patterns = {
      pat("?p", "type", "Protein"),        // card 100
      pat("?c", "inhibits", "?p"),         // card 200
      pat("?p", "reviewed", "true"),       // card 10  <- should go first
  };
  auto order = order_patterns(*store_, patterns);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);  // reviewed (10)
  EXPECT_EQ(order[1], 0u);  // type (100), subject-bound extension
  EXPECT_EQ(order[2], 1u);  // inhibits joins last
}

TEST_F(PatternOrdering, DisconnectedPatternsGoLast) {
  std::vector<graph::TriplePattern> patterns = {
      pat("?a", "reviewed", "true"),
      pat("?z", "inhibits", "?w"),  // shares nothing with ?a
  };
  auto order = order_patterns(*store_, patterns);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

// --- Conjunct ordering ------------------------------------------------------

TEST(ConjunctOrdering, AscendingProfiledCost) {
  udf::UdfProfiler prof(1);
  prof.record_exec(0, "cheap", sim::from_millis(1));
  prof.record_exec(0, "mid", sim::from_seconds(0.2));
  prof.record_exec(0, "costly", sim::from_seconds(30));

  std::vector<expr::Conjunct> conj = {
      {Expr::Udf("costly", {}), {"costly"}},
      {Expr::Udf("cheap", {}), {"cheap"}},
      {Expr::Udf("mid", {}), {"mid"}},
  };
  auto order = order_conjuncts(conj, 0, prof);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(ConjunctOrdering, TieBrokenByRejectionRate) {
  udf::UdfProfiler prof(1);
  // Equal cost; g rejects more.
  for (int i = 0; i < 10; ++i) {
    prof.record_exec(0, "f", sim::from_seconds(1.0));
    prof.record_exec(0, "g", sim::from_seconds(1.0));
  }
  prof.record_reject(0, "f");
  for (int i = 0; i < 8; ++i) prof.record_reject(0, "g");

  std::vector<expr::Conjunct> conj = {
      {Expr::Udf("f", {}), {"f"}},
      {Expr::Udf("g", {}), {"g"}},
  };
  auto order = order_conjuncts(conj, 0, prof);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0}));  // g first
}

TEST(ConjunctOrdering, UnprofiledKeepsOriginalOrder) {
  udf::UdfProfiler prof(1);
  std::vector<expr::Conjunct> conj = {
      {Expr::Udf("a", {}), {"a"}},
      {Expr::Udf("b", {}), {"b"}},
      {Expr::Constant(true), {}},
  };
  auto order = order_conjuncts(conj, 0, prof);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ConjunctOrdering, PerRankOrdersDiffer) {
  udf::UdfProfiler prof(2);
  // Rank 0 finds f cheap; rank 1 finds f expensive. Enough samples that
  // the shrinkage toward the aggregate trusts the per-rank means.
  for (std::uint64_t i = 0; i < udf::UdfProfiler::kFullConfidenceExecs; ++i) {
    prof.record_exec(0, "f", sim::from_millis(1));
    prof.record_exec(1, "f", sim::from_seconds(10));
    prof.record_exec(0, "g", sim::from_seconds(1));
    prof.record_exec(1, "g", sim::from_seconds(1));
  }

  std::vector<expr::Conjunct> conj = {
      {Expr::Udf("f", {}), {"f"}},
      {Expr::Udf("g", {}), {"g"}},
  };
  auto o0 = order_conjuncts(conj, 0, prof);
  auto o1 = order_conjuncts(conj, 1, prof);
  EXPECT_EQ(o0, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(o1, (std::vector<std::size_t>{1, 0}));
}

TEST(ConjunctOrdering, SolutionTimeEstimateDiscountsBySelectivity) {
  udf::UdfProfiler prof(1);
  for (int i = 0; i < 10; ++i) {
    prof.record_exec(0, "first", sim::from_seconds(1.0));
    prof.record_exec(0, "second", sim::from_seconds(10.0));
  }
  for (int i = 0; i < 9; ++i) prof.record_reject(0, "first");  // rejects 90%

  std::vector<expr::Conjunct> conj = {
      {Expr::Udf("first", {}), {"first"}},
      {Expr::Udf("second", {}), {"second"}},
  };
  std::vector<std::size_t> order = {0, 1};
  double est = estimate_solution_seconds(conj, order, 0, prof);
  // 1.0 + 0.1 * 10.0 = 2.0 (the second conjunct runs only 10% of the time).
  EXPECT_NEAR(est, 2.0, 1e-9);
}

}  // namespace
}  // namespace ids::core
