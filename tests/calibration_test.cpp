// Calibration guards: the cost-profile constants and topology presets are
// the contract between the simulation and the paper's stated magnitudes
// (§4/§5). These tests pin the calibrated behaviour so an accidental
// constant change is caught before it silently reshapes every benchmark.

#include <gtest/gtest.h>

#include "cache/stats.h"
#include "models/cost_profile.h"
#include "models/docking.h"
#include "models/molgen.h"
#include "models/structure.h"
#include "datagen/lifesci.h"
#include "runtime/topology.h"

namespace ids {
namespace {

using models::CostProfile;

TEST(Calibration, SwComparisonUnderOneMillisecond) {
  // §5.1: Smith-Waterman averages < 1 ms per comparison at UniProt-scale
  // sequence lengths (~350 residues).
  const CostProfile& c = CostProfile::paper();
  EXPECT_LT(sim::to_seconds(c.sw_cost(350ull * 350ull)), 1e-3);
  EXPECT_GT(sim::to_seconds(c.sw_cost(350ull * 350ull)), 1e-5);
}

TEST(Calibration, Pic50IsTheCheapestUdf) {
  const CostProfile& c = CostProfile::paper();
  EXPECT_DOUBLE_EQ(sim::to_seconds(c.pic50_cost()), 1e-5);  // §5.1 verbatim
  EXPECT_LT(c.pic50_cost(), c.sw_cost(350ull * 350ull));
}

TEST(Calibration, DtbaTenthsOfASecondWithTail) {
  const CostProfile& c = CostProfile::paper();
  // A typical forward pass (§4: "tenths of a second").
  std::uint64_t units = 192 * 64 + 64 * 16 + 16 + 350;
  // Find a non-tail call hash.
  double base = 1e9;
  for (std::uint64_t h = 0; h < 50; ++h) {
    base = std::min(base, sim::to_seconds(c.dtba_cost(units, h)));
  }
  EXPECT_GT(base, 0.05);
  EXPECT_LT(base, 0.5);
  // The tail is a multiple of the base, not a different model.
  double worst = 0;
  for (std::uint64_t h = 0; h < 200; ++h) {
    worst = std::max(worst, sim::to_seconds(c.dtba_cost(units, h)));
  }
  EXPECT_NEAR(worst / base, c.dtba_tail_multiplier, 0.01);
}

TEST(Calibration, DockingEnvelopeMatchesPaper) {
  // §5.2: docking 31-44 s per compound. Average over the default synthetic
  // library must land inside a slightly widened band (ligand-size spread).
  Rng rng(2);
  auto structure =
      models::predict_structure(datagen::random_protein_sequence(rng, 250));
  models::DockingEngine engine(models::receptor_from_structure(structure));
  const CostProfile& c = CostProfile::paper();
  Rng gen(3);
  double total = 0;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    auto r = engine.dock_smiles(models::generate_smiles(gen), 0);
    total += sim::to_seconds(c.docking_cost(r.work_units));
  }
  double mean = total / n;
  EXPECT_GT(mean, 25.0);
  EXPECT_LT(mean, 55.0);
}

TEST(Calibration, ModuleLoadIsSecondsScale) {
  // §2.3: "loading Python modules can be time-consuming".
  const CostProfile& c = CostProfile::paper();
  EXPECT_GE(sim::to_seconds(c.module_load_cost()), 1.0);
  EXPECT_LE(sim::to_seconds(c.module_load_cost()), 10.0);
}

TEST(Calibration, OperatorOverheadOffByDefault) {
  // Simple "what-is" queries must stay milliseconds-scale by default (§1);
  // the Fig 4(b) plateau overhead is an explicit bench calibration.
  EXPECT_DOUBLE_EQ(CostProfile{}.operator_overhead_seconds, 0.0);
}

TEST(Calibration, FabricDefaultsAreSlingshotClass) {
  sim::FabricParams f;
  EXPECT_DOUBLE_EQ(f.inter_node.bytes_per_second, 25.0e9);  // §5: 25 GB/s
  EXPECT_LT(f.inter_node.latency, sim::from_micros(5));
  // Tier ordering: DRAM fabric < SSD < backing store for a 1 MB object.
  std::uint64_t mb = 1 << 20;
  EXPECT_LT(f.inter_node.transfer_cost(mb), f.local_ssd.transfer_cost(mb));
  EXPECT_LT(f.local_ssd.transfer_cost(mb), f.backing_store.transfer_cost(mb));
}

TEST(Calibration, TopologyPresetsMatchPaperTestbeds) {
  // §5: scaling runs use 32 ranks/node at 64/128/256 nodes.
  for (int nodes : {64, 128, 256}) {
    runtime::Topology t = runtime::Topology::cray_ex(nodes);
    EXPECT_EQ(t.ranks_per_node, 32);
    EXPECT_EQ(t.num_ranks(), nodes * 32);
  }
  // §5: the cache testbed has dedicated memory nodes and 64-core sockets.
  runtime::Topology c = runtime::Topology::cache_testbed(2, 2);
  EXPECT_EQ(c.num_nodes, 2);
  EXPECT_EQ(c.num_memory_nodes, 2);
  EXPECT_EQ(c.total_nodes(), 4);
  EXPECT_EQ(c.ranks_per_node, 64);
}

TEST(Calibration, WhatIsQueryIsMilliseconds) {
  // §1: "A simple what-is query returns in milliseconds." A bound-subject
  // lookup on the default profile must cost well under a second.
  const CostProfile& c = CostProfile::paper();
  double lookup = sim::to_seconds(c.triple_scan_cost(100));
  EXPECT_LT(lookup, 1e-3);
}

TEST(Calibration, CacheStatsRendersAllCounters) {
  cache::CacheStats s;
  s.hits_local_dram = 1;
  s.hits_backing = 2;
  s.misses = 3;
  s.puts = 4;
  std::string str = s.to_string();
  for (const char* needle : {"local_dram=1", "backing=2", "misses=3", "puts=4"}) {
    EXPECT_NE(str.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(s.total_hits(), 3u);
  EXPECT_EQ(s.cache_tier_hits(), 1u);
}

}  // namespace
}  // namespace ids
