// Dataset I/O tests: round trips for triples and features, determinism of
// exports, literals with spaces, and malformed-input errors.

#include <gtest/gtest.h>

#include <sstream>

#include "common/strings.h"
#include "datagen/lifesci.h"
#include "io/dataset_io.h"

namespace ids::io {
namespace {

TEST(TripleIo, RoundTrip) {
  graph::TripleStore a(4);
  a.add("uniprot:P1", "rdf:type", "bio:Protein");
  a.add("uniprot:P1", "rdfs:label", "\"adenosine receptor A2a\"");
  a.add("chembl:C1", "chembl:inhibits", "uniprot:P1");
  a.finalize();

  std::stringstream buf;
  auto exported = export_triples(a, buf);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported.value(), 3u);

  graph::TripleStore b(2);  // different sharding on purpose
  auto imported = import_triples(&b, buf);
  ASSERT_TRUE(imported.ok()) << imported.status().to_string();
  EXPECT_EQ(imported.value(), 3u);
  b.finalize();
  EXPECT_EQ(b.total_triples(), 3u);

  // Semantics preserved: the label literal with spaces survives.
  auto label = b.dict().lookup("\"adenosine receptor A2a\"");
  ASSERT_TRUE(label.has_value());
  graph::TriplePattern q{
      graph::PatternTerm::Var("s"),
      graph::PatternTerm::Const(*b.dict().lookup("rdfs:label")),
      graph::PatternTerm::Const(*label)};
  EXPECT_EQ(b.match_all(q).size(), 1u);
}

TEST(TripleIo, ExportIsDeterministic) {
  auto build_and_export = [](int shards) {
    graph::TripleStore s(shards);
    // Insert in different orders: export must still agree.
    if (shards == 2) {
      s.add("a", "p", "b");
      s.add("c", "p", "d");
    } else {
      s.add("c", "p", "d");
      s.add("a", "p", "b");
    }
    s.finalize();
    std::stringstream buf;
    EXPECT_TRUE(export_triples(s, buf).ok());
    return buf.str();
  };
  // Note: ids differ by insert order, so compare via a normalized reimport.
  graph::TripleStore x(1);
  graph::TripleStore y(1);
  std::stringstream bx(build_and_export(2));
  std::stringstream by(build_and_export(8));
  ASSERT_TRUE(import_triples(&x, bx).ok());
  ASSERT_TRUE(import_triples(&y, by).ok());
  x.finalize();
  y.finalize();
  std::stringstream out_x, out_y;
  ASSERT_TRUE(export_triples(x, out_x).ok());
  ASSERT_TRUE(export_triples(y, out_y).ok());
  // Same triple *set* either way.
  std::vector<std::string> lx = ids::split(out_x.str(), '\n');
  std::vector<std::string> ly = ids::split(out_y.str(), '\n');
  std::sort(lx.begin(), lx.end());
  std::sort(ly.begin(), ly.end());
  EXPECT_EQ(lx, ly);
}

TEST(TripleIo, CommentsAndBlanksSkipped) {
  graph::TripleStore s(2);
  std::stringstream in("# header\n\na p b .\n");
  auto r = import_triples(&s, in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1u);
}

TEST(TripleIo, MalformedLineReportsLineNumber) {
  graph::TripleStore s(2);
  std::stringstream in("a p b .\nonly two\n");
  auto r = import_triples(&s, in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(FeatureIo, RoundTripAllTypes) {
  graph::Dictionary dict_a;
  store::FeatureStore fa(4);
  graph::TermId e1 = dict_a.intern("chembl:C1");
  graph::TermId e2 = dict_a.intern("uniprot:P1");
  fa.set(e1, "ic50_nm", 37.5);
  fa.set(e1, "smiles", std::string("CCN(C)C=O"));
  fa.set(e2, "length", std::int64_t{320});

  std::stringstream buf;
  auto exported = export_features(fa, dict_a, buf);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported.value(), 3u);

  graph::Dictionary dict_b;
  store::FeatureStore fb(2);
  auto imported = import_features(&fb, &dict_b, buf);
  ASSERT_TRUE(imported.ok()) << imported.status().to_string();
  EXPECT_EQ(imported.value(), 3u);

  graph::TermId c1 = *dict_b.lookup("chembl:C1");
  graph::TermId p1 = *dict_b.lookup("uniprot:P1");
  EXPECT_DOUBLE_EQ(*fb.get_double(c1, "ic50_nm"), 37.5);
  EXPECT_EQ(*fb.get_string(c1, "smiles"), "CCN(C)C=O");
  EXPECT_EQ(*fb.get_int(p1, "length"), 320);
}

TEST(FeatureIo, DoublePrecisionSurvives) {
  graph::Dictionary d;
  store::FeatureStore fs(1);
  double v = 0.1 + 0.2;  // not exactly representable as short decimal
  fs.set(d.intern("e"), "x", v);
  std::stringstream buf;
  ASSERT_TRUE(export_features(fs, d, buf).ok());
  graph::Dictionary d2;
  store::FeatureStore fs2(1);
  ASSERT_TRUE(import_features(&fs2, &d2, buf).ok());
  EXPECT_EQ(*fs2.get_double(*d2.lookup("e"), "x"), v);  // bit-exact
}

TEST(FeatureIo, MalformedRejected) {
  graph::Dictionary d;
  store::FeatureStore fs(1);
  std::stringstream bad1("e\tonlythree\tf\n");
  EXPECT_FALSE(import_features(&fs, &d, bad1).ok());
  std::stringstream bad2("e\tfeat\tz\tvalue\n");
  EXPECT_FALSE(import_features(&fs, &d, bad2).ok());
}

TEST(DatasetIo, FullLifeSciRoundTripPreservesQueries) {
  // Generate, export, import into a differently-sharded instance, and
  // check a query answer is identical — the laptop-to-cluster move.
  datagen::LifeSciConfig cfg;
  cfg.num_families = 6;
  cfg.proteins_per_family = 6;
  cfg.num_related_families = 2;
  cfg.compounds_per_family = 6;
  cfg.seq_len_mean = 120;
  cfg.seed = 5;

  graph::TripleStore src(4);
  store::FeatureStore src_features(4);
  datagen::generate_lifesci(cfg, &src, &src_features, nullptr, nullptr);
  src.finalize();

  std::stringstream triples_buf, features_buf;
  ASSERT_TRUE(export_triples(src, triples_buf).ok());
  ASSERT_TRUE(export_features(src_features, src.dict(), features_buf).ok());

  graph::TripleStore dst(16);
  store::FeatureStore dst_features(16);
  ASSERT_TRUE(import_triples(&dst, triples_buf).ok());
  ASSERT_TRUE(import_features(&dst_features, &dst.dict(), features_buf).ok());
  dst.finalize();

  EXPECT_EQ(dst.total_triples(), src.total_triples());
  // Every protein keeps its sequence.
  graph::TriplePattern proteins{
      graph::PatternTerm::Var("p"),
      graph::PatternTerm::Const(*dst.dict().lookup(datagen::Vocab::kType)),
      graph::PatternTerm::Const(*dst.dict().lookup(datagen::Vocab::kProtein))};
  auto matches = dst.match_all(proteins);
  EXPECT_EQ(matches.size(), 36u);
  for (const auto& t : matches) {
    std::string iri = dst.dict().name(t.s);
    graph::TermId src_id = *src.dict().lookup(iri);
    EXPECT_EQ(*dst_features.get_string(t.s, datagen::Feat::kSequence),
              *src_features.get_string(src_id, datagen::Feat::kSequence));
  }
}

}  // namespace
}  // namespace ids::io
