#!/usr/bin/env bash
# ids-analyzer dogfooding: the checker must hold itself to its own rules,
# and its call-graph construction must stay honest on the real tree.
#
#   1. `ids-analyzer tools/analyzer` exits 0 — the analyzer's own sources
#      pass every rule (it uses Status-free plain C++, no locks, and no
#      wall-clock reads, so a finding here is a checker bug or a real
#      defect; either way it fails this test).
#   2. `ids-analyzer --stats src` resolves at least 95% of call sites
#      (resolved / (resolved + unresolved)). The unresolved bucket is
#      expression calls like `fn_ptr()(...)` the token-stream resolver
#      cannot name; if it grows past 5% the interprocedural rules are
#      analyzing a fiction and the regression should fail loudly.
#
# Registered with ctest as `analyzer_selftest`; the binary path arrives as
# $1 (falls back to the default build location so the script also runs
# standalone).

set -u
repo="$(cd "$(dirname "$0")/.." && pwd)"
analyzer="${1:-$repo/build/tools/analyzer/ids-analyzer}"
failed=0

if [ ! -x "$analyzer" ]; then
  echo "FAIL: ids-analyzer binary not found at $analyzer" >&2
  exit 1
fi

out=$("$analyzer" "$repo/tools/analyzer" 2>&1)
if [ $? -ne 0 ]; then
  echo "FAIL [analyzer clean on itself]: findings in tools/analyzer:" >&2
  echo "$out" | sed 's/^/    /' >&2
  failed=1
else
  echo "ok   [analyzer clean on itself]"
fi

stats=$("$analyzer" --stats "$repo/src" 2>&1 >/dev/null)
ratio=$(echo "$stats" | sed -n 's/.*resolution-ratio=\([0-9.]*\).*/\1/p')
if [ -z "$ratio" ]; then
  echo "FAIL [stats emitted]: no resolution-ratio in --stats output:" >&2
  echo "$stats" | sed 's/^/    /' >&2
  failed=1
else
  echo "ok   [stats emitted] (resolution-ratio=$ratio)"
  # Compare without bc/awk float support surprises: scale to basis points.
  bp=$(echo "$ratio" | awk '{printf "%d", $1 * 10000}')
  if [ "$bp" -lt 9500 ]; then
    echo "FAIL [resolution >= 95%]: ratio $ratio is below 0.95" >&2
    failed=1
  else
    echo "ok   [resolution >= 95%]"
  fi
fi

exit $failed
