// Observability-server tests, in two layers:
//
//   * handle(target) — the socketless routing table, driven directly so
//     every endpoint's content is pinned without a network in the loop
//     (including the Prometheus exposition golden: the HTTP body must be
//     byte-identical to MetricsRegistry::to_prometheus()).
//   * a real loopback scrape — raw BSD-socket GETs against the server's
//     ephemeral port, including scrapes racing live engine queries on
//     multiple threads (the concurrency contract: handlers only read
//     thread-safe snapshots, so a scrape mid-query is always coherent).
//
// Sockets are banned in src/ outside src/telemetry/ (tools/lint.sh rule
// 12) but tests are transport clients, so the includes below are legal.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cache/manager.h"
#include "core/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/obs_server.h"
#include "telemetry/query_stats.h"
#include "telemetry/trace.h"

namespace ids::telemetry {
namespace {

using core::EngineOptions;
using core::IdsEngine;
using core::Query;
using graph::PatternTerm;

// ---- Loopback HTTP client ------------------------------------------------

/// One blocking GET against 127.0.0.1:port; returns the raw response
/// (status line, headers, body) or "" on any socket error.
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return "";
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  return response;
}

/// Body of a raw HTTP response (everything after the blank line).
std::string_view body_of(std::string_view response) {
  const std::size_t sep = response.find("\r\n\r\n");
  return sep == std::string_view::npos ? std::string_view{}
                                       : response.substr(sep + 4);
}

// ---- Socketless routing --------------------------------------------------

TEST(ObsServerHandle, MetricsBodyIsTheRegistryExpositionExactly) {
  MetricsRegistry reg;
  reg.counter("ids_t_total", {{"cache", "c0"}})->inc(3);
  reg.gauge("ids_t_depth")->set(2.5);

  ObsServerOptions opts;
  opts.metrics = &reg;
  ObsServer server(opts);

  // Golden: the endpoint adds nothing and reorders nothing — scrape
  // stability is the registry's deterministic exposition, verbatim.
  EXPECT_EQ(server.handle("/metrics"),
            "# TYPE ids_t_depth gauge\n"
            "ids_t_depth 2.5\n"
            "# TYPE ids_t_total counter\n"
            "ids_t_total{cache=\"c0\"} 3\n");
  EXPECT_EQ(server.handle("/metrics"), reg.to_prometheus());
}

TEST(ObsServerHandle, StatuszCarriesBuildInfoAndQueryAccounts) {
  MetricsRegistry reg;
  QueryStatsRing ring;
  QueryResourceAccount account;
  account.modeled_seconds = 2.0;
  account.wall_seconds = 0.5;
  ring.push(std::move(account));

  ObsServerOptions opts;
  opts.metrics = &reg;
  opts.query_stats = &ring;
  opts.build_type = "Release";
  opts.simd_level = "avx2";
  ObsServer server(opts);

  const std::string body = server.handle("/statusz");
  EXPECT_NE(body.find("\"build_type\":\"Release\""), std::string::npos);
  EXPECT_NE(body.find("\"simd_level\":\"avx2\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"queries\":{\"total\":1,\"recent\":[{\"sequence\":1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"divergence_seconds\":-1.5"), std::string::npos);
  EXPECT_NE(body.find("\"metrics\":{"), std::string::npos);
}

TEST(ObsServerHandle, StatuszWithoutRingDegradesGracefully) {
  MetricsRegistry reg;
  ObsServerOptions opts;
  opts.metrics = &reg;
  ObsServer server(opts);
  EXPECT_NE(server.handle("/statusz").find(
                "\"queries\":{\"total\":0,\"recent\":[]}"),
            std::string::npos);
  EXPECT_NE(server.handle("/tracez").find("no trace ring attached"),
            std::string::npos);
}

TEST(ObsServerHandle, TracezRendersRingInBothFormats) {
  MetricsRegistry reg;
  TraceRing ring;
  Tracer tracer(/*max_spans=*/16, &reg);
  const SpanId root = tracer.begin_span("query", "query", kNoSpan, -1, 0);
  tracer.end_span(root, 1000);
  ring.push(tracer.snapshot(), tracer.dropped());

  ObsServerOptions opts;
  opts.metrics = &reg;
  opts.traces = &ring;
  ObsServer server(opts);

  EXPECT_NE(server.handle("/tracez").find("trace #1"), std::string::npos);
  EXPECT_NE(server.handle("/tracez?fmt=json").find("\"traceEvents\":["),
            std::string::npos);
}

TEST(ObsServerHandle, UnknownPathIs404) {
  MetricsRegistry reg;
  ObsServerOptions opts;
  opts.metrics = &reg;
  ObsServer server(opts);
  EXPECT_NE(server.handle("/nope").find("not found: /nope"),
            std::string::npos);
  EXPECT_NE(server.handle("/").find("ids observability plane"),
            std::string::npos);
}

// ---- Loopback transport --------------------------------------------------

TEST(ObsServerSocket, ServesMetricsOverLoopbackWithHttpFraming) {
  MetricsRegistry reg;
  reg.counter("ids_t_total")->inc(7);

  ObsServerOptions opts;
  opts.metrics = &reg;
  ObsServer server(opts);
  ASSERT_TRUE(server.start().ok());
  ASSERT_NE(server.port(), 0);

  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find(
                "Content-Type: text/plain; version=0.0.4; charset=utf-8"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(body_of(response), reg.to_prometheus());

  const std::string missing = http_get(server.port(), "/bogus");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(ObsServerSocket, StartIsRestartableAndReportsBindFailure) {
  MetricsRegistry reg;
  ObsServerOptions opts;
  opts.metrics = &reg;
  ObsServer a(opts);
  ASSERT_TRUE(a.start().ok());

  // A second server on the same (now busy) port must fail cleanly.
  ObsServerOptions busy = opts;
  busy.port = a.port();
  ObsServer b(busy);
  EXPECT_FALSE(b.start().ok());

  a.stop();
  ASSERT_TRUE(a.start().ok());  // restart after stop
  EXPECT_NE(http_get(a.port(), "/metrics").find("HTTP/1.1 200 OK"),
            std::string::npos);
  a.stop();

  ObsServerOptions bad = opts;
  bad.bind_address = "not-an-address";
  ObsServer c(bad);
  EXPECT_FALSE(c.start().ok());
}

// ---- Scrapes racing live queries -----------------------------------------

/// Tiny graph shared by all engines: 12 people in a friendship ring.
struct SharedGraph {
  static constexpr int kRanks = 4;

  SharedGraph() {
    triples = std::make_unique<graph::TripleStore>(kRanks);
    features = std::make_unique<store::FeatureStore>(kRanks);
    auto& d = triples->dict();
    for (int i = 0; i < 12; ++i) {
      std::string person = "person" + std::to_string(i);
      triples->add(person, "type", "Person");
      features->set(*d.lookup(person), "age", static_cast<double>(20 + i));
    }
    for (int i = 0; i < 12; ++i) {
      triples->add("person" + std::to_string(i), "knows",
                   "person" + std::to_string((i + 1) % 12));
    }
    triples->finalize();
    features->freeze();
  }

  PatternTerm term(const char* iri) const {
    return PatternTerm::Const(*triples->dict().lookup(iri));
  }

  Query query() const {
    Query q;
    q.patterns.push_back({PatternTerm::Var("x"), term("type"),
                          term("Person")});
    q.patterns.push_back(
        {PatternTerm::Var("x"), term("knows"), PatternTerm::Var("y")});
    return q;
  }

  std::unique_ptr<graph::TripleStore> triples;
  std::unique_ptr<store::FeatureStore> features;
};

TEST(ObsServerSocket, ScrapesStayCoherentDuringConcurrentQueries) {
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 6;

  SharedGraph graph;
  MetricsRegistry reg;
  cache::CacheConfig cc;
  cc.num_nodes = 2;
  cc.metrics = &reg;
  cache::CacheManager cache(cc);
  TraceRing traces;
  QueryStatsRing query_stats;

  ObsServerOptions opts;
  opts.metrics = &reg;
  opts.traces = &traces;
  opts.query_stats = &query_stats;
  ObsServer server(opts);
  ASSERT_TRUE(server.start().ok());
  const std::uint16_t port = server.port();

  // kThreads engines execute queries into the shared cache/registry/rings
  // while the main thread scrapes over loopback the whole time.
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&graph, &cache, &reg, &traces, &query_stats] {
      Tracer tracer(/*max_spans=*/1u << 12, &reg);
      EngineOptions eo;
      eo.topology = runtime::Topology::laptop(SharedGraph::kRanks);
      eo.cache = &cache;
      eo.metrics = &reg;
      eo.tracer = &tracer;
      eo.trace_ring = &traces;
      eo.query_stats = &query_stats;
      IdsEngine engine(eo, graph.triples.get(), graph.features.get());
      for (int i = 0; i < kQueriesPerThread; ++i) {
        core::QueryResult r = engine.execute(graph.query());
        EXPECT_GT(r.account.wall_seconds, 0.0);
        EXPECT_GT(r.account.sequence, 0u);
      }
    });
  }

  int scrapes = 0;
  while (query_stats.total_pushed() <
         static_cast<std::uint64_t>(kThreads) * kQueriesPerThread) {
    const std::string metrics = http_get(port, "/metrics");
    ASSERT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
    const std::string statusz = http_get(port, "/statusz");
    ASSERT_NE(statusz.find("\"queries\":{\"total\":"), std::string::npos);
    ASSERT_NE(http_get(port, "/tracez").find("HTTP/1.1 200 OK"),
              std::string::npos);
    ++scrapes;
  }
  for (auto& w : workers) w.join();
  EXPECT_GT(scrapes, 0);

  // After the dust settles the shared state is consistent: every query
  // pushed one account and the engine counter matches.
  EXPECT_EQ(query_stats.total_pushed(),
            static_cast<std::uint64_t>(kThreads) * kQueriesPerThread);
  EXPECT_EQ(traces.total_pushed(),
            static_cast<std::uint64_t>(kThreads) * kQueriesPerThread);
  const std::string final_scrape = http_get(port, "/metrics");
  EXPECT_NE(final_scrape.find("ids_engine_queries_total 24"),
            std::string::npos)
      << final_scrape;
  server.stop();

  // With the server down, connections are refused — no zombie listener.
  EXPECT_EQ(http_get(port, "/metrics"), "");
}

}  // namespace
}  // namespace ids::telemetry
