// Property tests: index-backed shard scans must agree with a naive
// filter over the raw triples, for every pattern shape, on randomized
// graphs (parameterized over graph size and seed).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/shard.h"
#include "graph/triple_store.h"

namespace ids::graph {
namespace {

struct Params {
  std::uint64_t seed;
  int n_subjects;
  int n_predicates;
  int n_objects;
  int n_triples;
};

class ScanVsNaive : public ::testing::TestWithParam<Params> {};

std::vector<Triple> naive_match(const std::vector<Triple>& all,
                                const TriplePattern& q) {
  std::vector<Triple> out;
  const bool same_sp = q.s.is_var && q.p.is_var && q.s.var == q.p.var;
  const bool same_so = q.s.is_var && q.o.is_var && q.s.var == q.o.var;
  const bool same_po = q.p.is_var && q.o.is_var && q.p.var == q.o.var;
  for (const auto& t : all) {
    if (!q.s.is_var && t.s != q.s.constant) continue;
    if (!q.p.is_var && t.p != q.p.constant) continue;
    if (!q.o.is_var && t.o != q.o.constant) continue;
    if (same_sp && t.s != t.p) continue;
    if (same_so && t.s != t.o) continue;
    if (same_po && t.p != t.o) continue;
    out.push_back(t);
  }
  return out;
}

bool triple_less(const Triple& a, const Triple& b) {
  return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
}

TEST_P(ScanVsNaive, AllPatternShapesAgree) {
  const Params p = GetParam();
  Rng rng(p.seed);

  GraphShard shard;
  std::vector<Triple> all;
  for (int i = 0; i < p.n_triples; ++i) {
    Triple t{1 + rng.next_below(static_cast<std::uint64_t>(p.n_subjects)),
             100 + rng.next_below(static_cast<std::uint64_t>(p.n_predicates)),
             1 + rng.next_below(static_cast<std::uint64_t>(p.n_objects))};
    shard.add(t);
    all.push_back(t);
  }
  shard.finalize();
  // Dedup the reference set the same way finalize does.
  std::sort(all.begin(), all.end(), triple_less);
  all.erase(std::unique(all.begin(), all.end()), all.end());

  auto check = [&](const TriplePattern& q) {
    std::vector<Triple> got;
    shard.scan(q, [&got](const Triple& t) { got.push_back(t); });
    std::vector<Triple> want = naive_match(all, q);
    std::sort(got.begin(), got.end(), triple_less);
    std::sort(want.begin(), want.end(), triple_less);
    EXPECT_EQ(got, want) << "pattern bound=" << q.bound_positions();
    EXPECT_EQ(shard.count(q), want.size());
  };

  auto s_const = PatternTerm::Const(1 + rng.next_below(
                     static_cast<std::uint64_t>(p.n_subjects)));
  auto p_const = PatternTerm::Const(100 + rng.next_below(
                     static_cast<std::uint64_t>(p.n_predicates)));
  auto o_const = PatternTerm::Const(1 + rng.next_below(
                     static_cast<std::uint64_t>(p.n_objects)));

  // All 8 bound/unbound shapes.
  check({PatternTerm::Var("s"), PatternTerm::Var("p"), PatternTerm::Var("o")});
  check({s_const, PatternTerm::Var("p"), PatternTerm::Var("o")});
  check({PatternTerm::Var("s"), p_const, PatternTerm::Var("o")});
  check({PatternTerm::Var("s"), PatternTerm::Var("p"), o_const});
  check({s_const, p_const, PatternTerm::Var("o")});
  check({s_const, PatternTerm::Var("p"), o_const});
  check({PatternTerm::Var("s"), p_const, o_const});
  check({s_const, p_const, o_const});

  // Repeated-variable shapes.
  check({PatternTerm::Var("x"), PatternTerm::Var("p"), PatternTerm::Var("x")});
  check({PatternTerm::Var("x"), PatternTerm::Var("x"), PatternTerm::Var("o")});
  check({PatternTerm::Var("x"), p_const, PatternTerm::Var("x")});
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ScanVsNaive,
    ::testing::Values(Params{1, 5, 2, 5, 40},       // tiny, dense
                      Params{2, 50, 5, 50, 500},    // medium
                      Params{3, 10, 1, 10, 200},    // single predicate
                      Params{4, 200, 10, 5, 800},   // few objects
                      Params{5, 3, 3, 3, 100},      // heavy duplication
                      Params{6, 1000, 20, 1000, 2000}));  // sparse

class StoreShardingProperty : public ::testing::TestWithParam<int> {};

TEST_P(StoreShardingProperty, MatchAllEqualsNaiveAcrossShardCounts) {
  const int shards = GetParam();
  Rng rng(77);
  TripleStore store(shards);
  std::vector<Triple> all;
  for (int i = 0; i < 600; ++i) {
    Triple t{1 + rng.next_below(80), 100 + rng.next_below(4),
             1 + rng.next_below(80)};
    store.add_ids(t);
    all.push_back(t);
  }
  store.finalize();
  std::sort(all.begin(), all.end(), triple_less);
  all.erase(std::unique(all.begin(), all.end()), all.end());
  EXPECT_EQ(store.total_triples(), all.size());

  TriplePattern q{PatternTerm::Var("s"), PatternTerm::Const(101),
                  PatternTerm::Var("o")};
  auto got = store.match_all(q);
  auto want = naive_match(all, q);
  std::sort(got.begin(), got.end(), triple_less);
  std::sort(want.begin(), want.end(), triple_less);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, StoreShardingProperty,
                         ::testing::Values(1, 2, 3, 8, 32, 101));

}  // namespace
}  // namespace ids::graph
