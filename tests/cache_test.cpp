// Global multi-tier cache tests: tier hit paths and their cost ordering,
// LRU + spill, locality queries, placement hints, node failure and
// repopulation, write-through semantics, and statistics.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "cache/cross_cluster.h"
#include "cache/manager.h"
#include "core/engine.h"

namespace ids::cache {
namespace {

CacheConfig small_config() {
  CacheConfig c;
  c.num_nodes = 4;
  c.dram_capacity_bytes = 1000;
  c.ssd_capacity_bytes = 4000;
  return c;
}

std::string blob(std::size_t n, char fill = 'a') { return std::string(n, fill); }

TEST(ObjectIdTest, StableAndDistinct) {
  EXPECT_EQ(object_id("vina/P29274/CCN"), object_id("vina/P29274/CCN"));
  EXPECT_NE(object_id("a"), object_id("b"));
}

TEST(Cache, PutThenLocalGetHitsLocalDram) {
  CacheManager cache(small_config());
  sim::VirtualClock clock;
  cache.put(clock, 0, "obj", blob(100));
  auto got = cache.get(clock, 0, "obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 100u);
  EXPECT_EQ(cache.stats().hits_local_dram, 1u);
}

TEST(Cache, RemoteGetHitsRemoteDramAndCostsMore) {
  CacheManager cache(small_config());
  sim::VirtualClock w;
  cache.put(w, 0, "obj", blob(400));

  sim::VirtualClock local;
  sim::VirtualClock remote;
  ASSERT_TRUE(cache.get(local, 0, "obj").has_value());
  ASSERT_TRUE(cache.get(remote, 2, "obj").has_value());
  EXPECT_EQ(cache.stats().hits_local_dram, 1u);
  EXPECT_EQ(cache.stats().hits_remote_dram, 1u);
  EXPECT_LT(local.now(), remote.now());
}

TEST(Cache, DramEvictionSpillsToSsdLru) {
  CacheManager cache(small_config());  // 1000 B DRAM per node
  sim::VirtualClock clock;
  cache.put(clock, 0, "a", blob(400));
  cache.put(clock, 0, "b", blob(400));
  // Touch "a" so "b" is the LRU victim.
  ASSERT_TRUE(cache.get(clock, 0, "a").has_value());
  cache.put(clock, 0, "c", blob(400));  // evicts b -> SSD

  EXPECT_EQ(cache.stats().spills_to_ssd, 1u);
  auto locs = cache.locations("b");
  ASSERT_EQ(locs.size(), 1u);
  EXPECT_EQ(locs[0].tier, TierKind::kSsd);
  // And "b" is still served (from SSD).
  cache.reset_stats();
  ASSERT_TRUE(cache.get(clock, 0, "b").has_value());
  EXPECT_EQ(cache.stats().hits_local_ssd, 1u);
}

TEST(Cache, SsdDisabledDropsOnEviction) {
  CacheConfig cfg = small_config();
  cfg.enable_ssd = false;
  cfg.write_through = false;  // nothing in backing either
  CacheManager cache(cfg);
  sim::VirtualClock clock;
  cache.put(clock, 0, "a", blob(600));
  cache.put(clock, 0, "b", blob(600));  // evicts a, which is simply dropped
  EXPECT_EQ(cache.stats().spills_to_ssd, 0u);
  EXPECT_FALSE(cache.get(clock, 0, "a").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, TierCostOrdering) {
  // local DRAM < local SSD < remote DRAM(+) < backing store for a sizable
  // object, matching §3's motivation for the tier hierarchy.
  CacheConfig cfg = small_config();
  cfg.dram_capacity_bytes = 1 << 20;
  cfg.ssd_capacity_bytes = 4 << 20;
  CacheManager cache(cfg);
  sim::VirtualClock w;
  const std::size_t size = 512 * 1024;

  cache.put(w, 0, "dram_obj", blob(size));

  auto timed_get = [&cache](int node, const std::string& name) {
    sim::VirtualClock c;
    EXPECT_TRUE(cache.get(c, node, name).has_value());
    return c.now();
  };

  sim::Nanos local_dram = timed_get(0, "dram_obj");
  sim::Nanos remote_dram = timed_get(1, "dram_obj");
  EXPECT_LT(local_dram, remote_dram);

  // Force a spill to SSD by filling node 0's DRAM.
  cache.put(w, 0, "filler1", blob(512 * 1024));
  cache.put(w, 0, "filler2", blob(512 * 1024));
  auto locs = cache.locations("dram_obj");
  ASSERT_FALSE(locs.empty());
  ASSERT_EQ(locs[0].tier, TierKind::kSsd);
  sim::Nanos local_ssd = timed_get(0, "dram_obj");
  EXPECT_GT(local_ssd, local_dram);
}

TEST(Cache, BackingStoreServesAfterAllCopiesLost) {
  CacheManager cache(small_config());
  sim::VirtualClock clock;
  cache.put(clock, 0, "persist", blob(200));
  cache.fail_node(0);
  EXPECT_TRUE(cache.locations("persist").empty());

  // Served from the backing store and re-populated into local DRAM.
  cache.reset_stats();
  ASSERT_TRUE(cache.get(clock, 1, "persist").has_value());
  EXPECT_EQ(cache.stats().hits_backing, 1u);
  auto locs = cache.locations("persist");
  ASSERT_EQ(locs.size(), 1u);
  EXPECT_EQ(locs[0].node, 1);
  EXPECT_EQ(locs[0].tier, TierKind::kDram);

  // Second read is a local DRAM hit: the working set rebuilt itself.
  cache.reset_stats();
  ASSERT_TRUE(cache.get(clock, 1, "persist").has_value());
  EXPECT_EQ(cache.stats().hits_local_dram, 1u);
}

TEST(Cache, WriteThroughOffMeansFailureLosesData) {
  CacheConfig cfg = small_config();
  cfg.write_through = false;
  CacheManager cache(cfg);
  sim::VirtualClock clock;
  cache.put(clock, 2, "volatile", blob(100));
  ASSERT_TRUE(cache.get(clock, 2, "volatile").has_value());
  cache.fail_node(2);
  EXPECT_FALSE(cache.get(clock, 2, "volatile").has_value());
}

TEST(Cache, PlacementHintPinsNode) {
  CacheManager cache(small_config());
  sim::VirtualClock clock;
  PlacementHint hint;
  hint.target_node = 3;
  cache.put(clock, 0, "pinned", blob(100), hint);
  auto locs = cache.locations("pinned");
  ASSERT_EQ(locs.size(), 1u);
  EXPECT_EQ(locs[0].node, 3);
}

TEST(Cache, LocalityQueryPrefersLocalThenRemoteDram) {
  CacheManager cache(small_config());
  sim::VirtualClock clock;
  cache.put(clock, 1, "obj", blob(100));
  EXPECT_EQ(cache.nearest_node_with("obj", 1), 1);
  EXPECT_EQ(cache.nearest_node_with("obj", 0), 1);
  EXPECT_EQ(cache.nearest_node_with("missing", 0), -1);
}

TEST(Cache, PromoteOnRemoteHitCreatesLocalCopy) {
  CacheConfig cfg = small_config();
  cfg.promote_on_remote_hit = true;
  CacheManager cache(cfg);
  sim::VirtualClock clock;
  cache.put(clock, 0, "hot", blob(200));
  ASSERT_TRUE(cache.get(clock, 3, "hot").has_value());
  EXPECT_EQ(cache.stats().promotions, 1u);
  // Now node 3 has its own DRAM copy.
  cache.reset_stats();
  ASSERT_TRUE(cache.get(clock, 3, "hot").has_value());
  EXPECT_EQ(cache.stats().hits_local_dram, 1u);
}

TEST(Cache, RelocateMovesDramCopy) {
  CacheManager cache(small_config());
  sim::VirtualClock clock;
  cache.put(clock, 0, "mv", blob(100));
  cache.relocate(clock, "mv", 2);
  auto locs = cache.locations("mv");
  ASSERT_EQ(locs.size(), 1u);
  EXPECT_EQ(locs[0].node, 2);
  EXPECT_EQ(cache.dram_used(0), 0u);
  EXPECT_EQ(cache.dram_used(2), 100u);
}

TEST(Cache, InvalidateRemovesEverywhere) {
  CacheManager cache(small_config());
  sim::VirtualClock clock;
  cache.put(clock, 0, "gone", blob(100));
  cache.invalidate("gone");
  EXPECT_FALSE(cache.contains("gone"));
  EXPECT_FALSE(cache.get(clock, 0, "gone").has_value());
  EXPECT_EQ(cache.num_objects(), 0u);
}

TEST(Cache, OverwriteReplacesPayload) {
  CacheManager cache(small_config());
  sim::VirtualClock clock;
  cache.put(clock, 0, "v", "first");
  cache.put(clock, 0, "v", "second-version");
  auto got = cache.get(clock, 0, "v");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "second-version");
  EXPECT_EQ(cache.num_objects(), 1u);
}

TEST(Cache, ObjectBiggerThanDramGoesToSsd) {
  CacheManager cache(small_config());  // DRAM 1000, SSD 4000
  sim::VirtualClock clock;
  cache.put(clock, 0, "big", blob(2000));
  auto locs = cache.locations("big");
  ASSERT_EQ(locs.size(), 1u);
  EXPECT_EQ(locs[0].tier, TierKind::kSsd);
  ASSERT_TRUE(cache.get(clock, 0, "big").has_value());
}

TEST(Cache, StatsBytesAccounting) {
  CacheManager cache(small_config());
  sim::VirtualClock clock;
  cache.put(clock, 0, "x", blob(300));
  cache.get(clock, 0, "x");
  EXPECT_EQ(cache.stats().bytes_written, 300u);
  EXPECT_EQ(cache.stats().bytes_read, 300u);
  EXPECT_EQ(cache.stats().puts, 1u);
  EXPECT_FALSE(cache.stats().to_string().empty());
}

TEST(Cache, MissOnUnknownObject) {
  CacheManager cache(small_config());
  sim::VirtualClock clock;
  EXPECT_FALSE(cache.get(clock, 0, "never-put").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SerializationServiceChargesPerOp) {
  CacheConfig cfg = small_config();
  cfg.serialization_service_seconds = 0.25;
  CacheManager cache(cfg);
  sim::VirtualClock clock;
  cache.put(clock, 0, "obj", blob(100));
  sim::Nanos after_put = clock.now();
  EXPECT_GE(after_put, sim::from_seconds(0.25));
  ASSERT_TRUE(cache.get(clock, 0, "obj").has_value());
  EXPECT_GE(clock.now(), after_put + sim::from_seconds(0.25));
}

TEST(Cache, EstimatedGetCostMatchesTierOrdering) {
  CacheConfig cfg = small_config();
  cfg.dram_capacity_bytes = 1 << 20;
  CacheManager cache(cfg);
  sim::VirtualClock clock;
  cache.put(clock, 1, "obj", blob(400'000));
  sim::Nanos local = cache.estimated_get_cost(1, "obj");
  sim::Nanos remote = cache.estimated_get_cost(0, "obj");
  EXPECT_LT(local, remote);
  EXPECT_EQ(cache.estimated_get_cost(0, "nope"),
            std::numeric_limits<sim::Nanos>::max());
}

TEST(CrossCluster, ReadThroughFetchAndLocalization) {
  CacheManager cluster_a(small_config());
  CacheManager cluster_b(small_config());
  CrossClusterBridge bridge(&cluster_b, &cluster_a);  // b reads through a

  // Researchers on cluster A stash an artifact.
  sim::VirtualClock wa;
  cluster_a.put(wa, 0, "vina/shared", blob(300, 'z'));

  // Cluster B's first read goes over the WAN...
  sim::VirtualClock wan_read;
  auto got = bridge.get(wan_read, 2, "vina/shared");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 300u);
  EXPECT_EQ(bridge.stats().peer_fetches, 1u);
  EXPECT_EQ(bridge.stats().bytes_over_wan, 300u);
  EXPECT_GE(wan_read.now(), sim::from_millis(30));  // WAN latency paid

  // ...and localizes the artifact: the second read is cluster-B-local
  // and much cheaper.
  sim::VirtualClock local_read;
  ASSERT_TRUE(bridge.get(local_read, 2, "vina/shared").has_value());
  EXPECT_EQ(bridge.stats().local_hits, 1u);
  EXPECT_LT(local_read.now(), wan_read.now() / 10);
}

TEST(CrossCluster, MissInBothClusters) {
  CacheManager a(small_config());
  CacheManager b(small_config());
  CrossClusterBridge bridge(&b, &a);
  sim::VirtualClock clock;
  EXPECT_FALSE(bridge.get(clock, 0, "nowhere").has_value());
  EXPECT_EQ(bridge.stats().misses, 1u);
}

TEST(CrossCluster, WritesStayLocal) {
  CacheManager a(small_config());
  CacheManager b(small_config());
  CrossClusterBridge bridge(&b, &a);
  sim::VirtualClock clock;
  bridge.put(clock, 0, "local-artifact", blob(64));
  EXPECT_TRUE(b.contains("local-artifact"));
  EXPECT_FALSE(a.contains("local-artifact"));
}

// QueryResult::cache_hits/cache_misses are *derived* from the same
// registry counters the cache manager records (telemetry equivalence):
// summed over a cold and a warm run of the same cached INVOKE, they must
// account for every counter increment exactly — no parallel bookkeeping.
TEST(CacheEngineEquivalence, QueryResultCountersMatchRegistry) {
  telemetry::MetricsRegistry reg;
  CacheConfig cc;
  cc.num_nodes = 2;
  cc.dram_capacity_bytes = 10 << 20;
  cc.metrics = &reg;
  cc.name = "eq";
  CacheManager cache(cc);

  constexpr int kRanks = 4;
  auto triples = std::make_unique<graph::TripleStore>(kRanks);
  auto features = std::make_unique<store::FeatureStore>(kRanks);
  auto& d = triples->dict();
  for (int i = 0; i < 10; ++i) {
    std::string person = "person" + std::to_string(i);
    triples->add(person, "type", "Person");
    features->set(*d.lookup(person), "age", 20.0 + i);
  }
  triples->finalize();
  features->freeze();

  core::EngineOptions opts;
  opts.topology = runtime::Topology::laptop(kRanks);
  opts.cache = &cache;
  core::IdsEngine eng(opts, triples.get(), features.get());
  eng.registry().register_static(
      "expensive",
      [](const udf::UdfContext& ctx, std::span<const expr::Value> args) {
        const auto* e = std::get_if<expr::Entity>(&args[0]);
        auto age = ctx.features->get_double(e->id, "age");
        return udf::UdfResult{age ? *age : 0.0, sim::from_seconds(30.0)};
      });
  core::Query q;
  q.patterns.push_back({graph::PatternTerm::Var("x"),
                        graph::PatternTerm::Const(*d.lookup("type")),
                        graph::PatternTerm::Const(*d.lookup("Person"))});
  core::InvokeClause inv;
  inv.udf = "expensive";
  inv.args = {expr::Expr::Var("x")};
  inv.out_var = "v";
  inv.use_cache = true;
  inv.cache_prefix = "exp";
  q.invokes.push_back(inv);

  core::QueryResult cold = eng.execute(q);  // misses; results get stashed
  core::QueryResult warm = eng.execute(q);  // every row served from cache

  CacheStats cs = cache.stats();
  EXPECT_EQ(cold.cache_misses, 10u);
  EXPECT_EQ(cold.cache_hits + warm.cache_misses, 0u);
  EXPECT_EQ(warm.cache_hits, 10u);
  EXPECT_EQ(cold.cache_hits + warm.cache_hits, cs.total_hits());
  EXPECT_EQ(cold.cache_misses + warm.cache_misses, cs.misses);

  // The stats struct itself is a view over the same registry counters.
  EXPECT_EQ(cs.misses,
            reg.counter("ids_cache_misses_total", {{"cache", "eq"}})->value());
  EXPECT_EQ(cs.hits_local_dram,
            reg.counter("ids_cache_hits_total",
                        {{"cache", "eq"}, {"tier", "local_dram"}})
                ->value());
  EXPECT_EQ(cs.puts,
            reg.counter("ids_cache_puts_total", {{"cache", "eq"}})->value());
}

}  // namespace
}  // namespace ids::cache
