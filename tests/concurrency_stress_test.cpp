// Multi-threaded hammer tests for the shared-state subsystems, designed to
// give -fsanitize=thread real races to hunt (build-tsan runs this same
// binary). Each test spins several OS threads against one shared object
// with overlapping key sets, then checks cross-thread invariants that only
// hold if the internal locking is airtight. Iteration counts are sized so
// the suite stays in the low seconds even single-core under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cache/cross_cluster.h"
#include "cache/manager.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/rebalancer.h"
#include "graph/dictionary.h"
#include "sim/virtual_clock.h"
#include "udf/profiler.h"
#include "udf/registry.h"

namespace ids {
namespace {

constexpr int kThreads = 4;

/// Runs fn(thread_index) on kThreads OS threads and joins them. Real
/// std::threads, not the pool: TSan should watch genuinely concurrent
/// callers, and the pool itself is one of the systems under test.
template <typename Fn>
void hammer(const Fn& fn) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fn, t] { fn(t); });
  }
  for (auto& th : threads) th.join();
}

TEST(ConcurrencyStress, CacheManagerGetPutEvictAcrossTiers) {
  cache::CacheConfig cfg;
  cfg.num_nodes = 3;
  // Tiny tiers so concurrent puts force constant DRAM eviction and SSD
  // spill/drop traffic — the interesting interleavings.
  cfg.dram_capacity_bytes = 4 << 10;
  cfg.ssd_capacity_bytes = 8 << 10;
  cache::CacheManager cache(cfg);

  constexpr int kObjects = 24;
  constexpr int kOpsPerThread = 300;

  hammer([&](int t) {
    sim::VirtualClock clock;  // per-thread clock, like per-rank execution
    Rng rng(0xace0 + static_cast<std::uint64_t>(t));
    int node = t % cfg.num_nodes;
    for (int i = 0; i < kOpsPerThread; ++i) {
      auto obj = static_cast<int>(rng.next_below(kObjects));
      std::string name = "obj/" + std::to_string(obj);
      switch (rng.next_below(8)) {
        case 0:
          cache.put(clock, node, name,
                    std::string(512 + 16 * static_cast<std::size_t>(obj), 'x'));
          break;
        case 1:
          cache.invalidate(name);
          break;
        case 2:
          (void)cache.locations(name);
          break;
        case 3:
          (void)cache.estimated_get_cost(node, name);
          break;
        case 4:
          (void)cache.contains(name);
          break;
        case 5:
          cache.relocate(clock, name, static_cast<int>(rng.next_below(
                                          static_cast<std::uint64_t>(cfg.num_nodes))));
          break;
        default: {
          auto hit = cache.get(clock, node, name);
          if (hit) {
            // Payload integrity: size is a pure function of the object id.
            EXPECT_EQ(hit->size(), 512 + 16 * static_cast<std::size_t>(obj));
          }
          break;
        }
      }
    }
  });

  // Accounting invariants survive the storm.
  for (int n = 0; n < cfg.num_nodes; ++n) {
    EXPECT_LE(cache.dram_used(n), cfg.dram_capacity_bytes);
    EXPECT_LE(cache.ssd_used(n), cfg.ssd_capacity_bytes);
  }
  const cache::CacheStats stats = cache.stats();
  EXPECT_GT(stats.puts, 0u);
}

TEST(ConcurrencyStress, CacheManagerNodeFailureDuringTraffic) {
  cache::CacheConfig cfg;
  cfg.num_nodes = 2;
  cache::CacheManager cache(cfg);
  std::atomic<bool> stop{false};

  std::thread failer([&] {
    for (int i = 0; i < 50; ++i) {
      cache.fail_node(i % cfg.num_nodes);
      std::this_thread::yield();
    }
    stop.store(true);
  });

  hammer([&](int t) {
    sim::VirtualClock clock;
    int node = t % cfg.num_nodes;
    for (int i = 0; !stop.load() && i < 2000; ++i) {
      std::string name = "f/" + std::to_string(i % 8);
      cache.put(clock, node, name, "payload-" + std::to_string(i % 8));
      auto hit = cache.get(clock, node, name);
      // Write-through means a name we just put can never fully miss, even
      // if the owning node was failed in between: backing store survives.
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(hit->rfind("payload-", 0), 0u);
    }
  });
  failer.join();
}

TEST(ConcurrencyStress, CrossClusterBridgeStats) {
  cache::CacheConfig cfg;
  cfg.num_nodes = 2;
  cache::CacheManager local(cfg), peer(cfg);
  cache::CrossClusterBridge bridge(&local, &peer, {0, 1.0e9});

  {
    sim::VirtualClock clock;
    for (int i = 0; i < 8; ++i) {
      peer.put(clock, 0, "peer/" + std::to_string(i), std::string(64, 'p'));
    }
  }

  constexpr int kOps = 200;
  hammer([&](int t) {
    sim::VirtualClock clock;
    Rng rng(0xb41d6e + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kOps; ++i) {
      switch (rng.next_below(3)) {
        case 0:
          bridge.put(clock, 0, "local/" + std::to_string(rng.next_below(4)),
                     std::string(32, 'l'));
          break;
        case 1:
          (void)bridge.get(clock, 0, "peer/" + std::to_string(rng.next_below(8)));
          break;
        default:
          (void)bridge.get(clock, 0, "absent/" + std::to_string(rng.next_below(4)));
          break;
      }
    }
  });

  const cache::BridgeStats stats = bridge.stats();
  // Every get resolved to exactly one of the three counters.
  EXPECT_GT(stats.local_hits + stats.peer_fetches + stats.misses, 0u);
  EXPECT_LE(stats.local_hits + stats.peer_fetches + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(ConcurrencyStress, DictionaryInterning) {
  graph::Dictionary dict;
  constexpr int kTerms = 64;
  constexpr int kRounds = 400;

  std::vector<std::vector<graph::TermId>> seen(
      kThreads, std::vector<graph::TermId>(kTerms, graph::kInvalidTerm));

  hammer([&](int t) {
    Rng rng(0xd1c7 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kRounds; ++i) {
      auto term = static_cast<int>(rng.next_below(kTerms));
      std::string s = "term:" + std::to_string(term);
      graph::TermId id = dict.intern(s);
      ASSERT_NE(id, graph::kInvalidTerm);
      // Interning is idempotent per term, also across threads (checked
      // after the join below); name() round-trips even while other
      // threads keep growing the dictionary.
      if (seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(term)] !=
          graph::kInvalidTerm) {
        ASSERT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(term)], id);
      }
      seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(term)] = id;
      ASSERT_EQ(dict.name(id), s);
      auto found = dict.lookup(s);
      ASSERT_TRUE(found.has_value());
      ASSERT_EQ(*found, id);
    }
  });

  // Cross-thread agreement: all threads resolved every term to one id.
  EXPECT_EQ(dict.size(), static_cast<std::size_t>(kTerms));
  for (int term = 0; term < kTerms; ++term) {
    graph::TermId expected = graph::kInvalidTerm;
    for (int t = 0; t < kThreads; ++t) {
      graph::TermId id = seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(term)];
      if (id == graph::kInvalidTerm) continue;
      if (expected == graph::kInvalidTerm) expected = id;
      EXPECT_EQ(id, expected) << "term " << term;
    }
  }
}

TEST(ConcurrencyStress, UdfRegistryRegisterFindReload) {
  udf::UdfRegistry reg;
  auto fn = [](const udf::UdfContext&, std::span<const expr::Value>) {
    return udf::UdfResult{expr::Value(1.0), sim::Nanos(10)};
  };
  ASSERT_TRUE(reg.register_static("stable", fn));

  hammer([&](int t) {
    Rng rng(0x5eed + static_cast<std::uint64_t>(t));
    for (int i = 0; i < 300; ++i) {
      switch (rng.next_below(5)) {
        case 0:
          reg.register_dynamic("mod" + std::to_string(rng.next_below(4)), "f",
                               fn, sim::from_seconds(0.5));
          break;
        case 1:
          reg.force_reload("mod" + std::to_string(rng.next_below(4)));
          break;
        case 2: {
          // Static entries are immutable: the pointer and its contents
          // stay valid under concurrent dynamic churn.
          const udf::UdfInfo* info = reg.find("stable");
          ASSERT_NE(info, nullptr);
          ASSERT_EQ(info->name, "stable");
          ASSERT_FALSE(info->dynamic);
          break;
        }
        case 3: {
          const udf::UdfInfo* info =
              reg.find("mod" + std::to_string(rng.next_below(4)) + ".f");
          if (info != nullptr) {
            (void)reg.charge_module_load(t, *info);
          }
          break;
        }
        default:
          (void)reg.names();
          break;
      }
    }
  });

  // "stable" plus up to 4 dynamic modules.
  std::vector<std::string> names = reg.names();
  EXPECT_GE(names.size(), 1u);
  EXPECT_LE(names.size(), 5u);
}

TEST(ConcurrencyStress, ProfilerCountersFeedRebalancerUnderLoad) {
  // Ranks record execs while the planner thread concurrently reads
  // aggregates and runs re-balancing decisions off the live counters —
  // the paper's §2.4.1/§2.4.2 loop, compressed.
  constexpr int kRanks = kThreads;
  udf::UdfProfiler prof(kRanks);
  std::atomic<bool> stop{false};

  std::thread planner([&] {
    while (!stop.load()) {
      std::vector<double> throughput(kRanks, 0.0);
      for (int r = 0; r < kRanks; ++r) {
        double mean = prof.estimated_cost_seconds(r, "udf");
        throughput[static_cast<std::size_t>(r)] = mean > 0.0 ? 1.0 / mean : 0.0;
      }
      core::RebalanceDecision d = core::decide_rebalance(
          core::RebalancePolicy::kThroughput, {100, 100, 100, 100}, throughput);
      if (d.rebalance) {
        std::size_t total = 0;
        for (std::size_t v : d.targets) total += v;
        // Re-balancing conserves rows no matter how torn its input was.
        ASSERT_EQ(total, 400u);
      }
      std::this_thread::yield();
    }
  });

  constexpr int kExecs = 500;
  hammer([&](int rank) {
    // Rank r's modeled cost is (r+1) ms per exec, so the final per-rank
    // means are exact despite concurrent reads.
    for (int i = 0; i < kExecs; ++i) {
      prof.record_exec(rank, "udf", sim::from_seconds(0.001 * (rank + 1)));
      if (i % 10 == 0) prof.record_reject(rank, "udf");
    }
  });
  stop.store(true);
  planner.join();

  udf::UdfStats agg = prof.aggregate("udf");
  EXPECT_EQ(agg.execs, static_cast<std::uint64_t>(kRanks) * kExecs);
  EXPECT_EQ(agg.rejects, static_cast<std::uint64_t>(kRanks) * (kExecs / 10));
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_NEAR(prof.get(r, "udf").mean_cost_seconds(), 0.001 * (r + 1), 1e-9);
  }
}

TEST(ConcurrencyStress, ThreadPoolNestedUseAndReuse) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(64, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2);
  }
  // Concurrent parallel_for from several submitter threads: completion
  // latches are per-call, so calls must not steal each other's wakeups.
  hammer([&](int) {
    for (int round = 0; round < 10; ++round) {
      std::atomic<int> count{0};
      pool.parallel_for(32, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
      });
      ASSERT_EQ(count.load(), 32);
    }
  });
}

}  // namespace
}  // namespace ids
