// Dataset generator tests: similarity band structure (the mechanism behind
// Table 2's threshold sweep), graph shape, determinism, and the Table-1
// source regeneration.

#include <gtest/gtest.h>

#include "datagen/lifesci.h"
#include "datagen/sources.h"
#include "models/smith_waterman.h"

namespace ids::datagen {
namespace {

LifeSciConfig test_config() {
  LifeSciConfig cfg;
  cfg.num_families = 10;
  cfg.proteins_per_family = 6;
  cfg.num_related_families = 4;
  cfg.compounds_per_family = 6;
  cfg.seq_len_mean = 150;
  cfg.seq_len_jitter = 20;
  cfg.seed = 7;
  return cfg;
}

struct Built {
  graph::TripleStore triples{4};
  store::FeatureStore features{4};
  store::InvertedIndex keywords;
  store::VectorStore vectors{4, 128};
  LifeSciDataset ds;
};

std::unique_ptr<Built> build(const LifeSciConfig& cfg) {
  auto b = std::make_unique<Built>();
  b->ds = generate_lifesci(cfg, &b->triples, &b->features, &b->keywords,
                           &b->vectors);
  b->triples.finalize();
  return b;
}

TEST(LifeSci, CountsMatchConfig) {
  auto cfg = test_config();
  auto b = build(cfg);
  EXPECT_EQ(b->ds.proteins.size(), 60u);
  EXPECT_EQ(b->ds.compounds.size(), 60u);
  EXPECT_EQ(b->ds.protein_family.size(), 60u);
  EXPECT_GT(b->triples.total_triples(), 240u);  // 3/protein + 2+/compound
}

TEST(LifeSci, EveryProteinHasSequenceAndFlag) {
  auto b = build(test_config());
  for (graph::TermId p : b->ds.proteins) {
    auto seq = b->features.get_string(p, Feat::kSequence);
    ASSERT_TRUE(seq.has_value());
    EXPECT_GT(seq->size(), 30u);
    EXPECT_TRUE(b->features.get_int(p, Feat::kLength).has_value());
  }
}

TEST(LifeSci, EveryCompoundHasSmilesAndIc50) {
  auto b = build(test_config());
  for (graph::TermId c : b->ds.compounds) {
    ASSERT_TRUE(b->features.get_string(c, Feat::kSmiles).has_value());
    auto ic50 = b->features.get_double(c, Feat::kIc50Nm);
    ASSERT_TRUE(ic50.has_value());
    EXPECT_GT(*ic50, 0.0);
    EXPECT_LE(*ic50, 100000.0);
  }
}

TEST(LifeSci, SimilarityBandsSupportThresholdSweep) {
  auto cfg = test_config();
  auto b = build(cfg);
  auto target_seq =
      std::string(*b->features.get_string(b->ds.target_protein, Feat::kSequence));

  // Per-family mean similarity to the target.
  std::vector<double> mean(static_cast<std::size_t>(cfg.num_families), 0.0);
  std::vector<int> n(static_cast<std::size_t>(cfg.num_families), 0);
  for (std::size_t i = 0; i < b->ds.proteins.size(); ++i) {
    auto f = static_cast<std::size_t>(b->ds.protein_family[i]);
    auto seq = b->features.get_string(b->ds.proteins[i], Feat::kSequence);
    mean[f] += models::normalized_similarity(target_seq, *seq);
    ++n[f];
  }
  for (std::size_t f = 0; f < mean.size(); ++f) mean[f] /= n[f];

  // Target family plateaus above the paper's top threshold.
  EXPECT_GT(mean[0], 0.98);
  // Related families fill the sweep band, trending downward across the
  // divergence ladder (mutation noise allows local inversions).
  for (int f = 1; f <= cfg.num_related_families; ++f) {
    EXPECT_LT(mean[static_cast<std::size_t>(f)], 0.6);
    EXPECT_GT(mean[static_cast<std::size_t>(f)], 0.12);
  }
  EXPECT_GT(mean[1],
            mean[static_cast<std::size_t>(cfg.num_related_families)]);
  // ...and background families sit below 0.2.
  for (int f = cfg.num_related_families + 1; f < cfg.num_families; ++f) {
    EXPECT_LT(mean[static_cast<std::size_t>(f)], 0.2);
  }
}

TEST(LifeSci, InhibitsEdgesPointAtProteins) {
  auto b = build(test_config());
  auto inhibits = b->triples.dict().lookup(Vocab::kInhibits);
  ASSERT_TRUE(inhibits.has_value());
  graph::TriplePattern p{graph::PatternTerm::Var("c"),
                         graph::PatternTerm::Const(*inhibits),
                         graph::PatternTerm::Var("p")};
  auto edges = b->triples.match_all(p);
  EXPECT_GE(edges.size(), b->ds.compounds.size());  // >= 1 edge per compound
  std::set<graph::TermId> protein_set(b->ds.proteins.begin(),
                                      b->ds.proteins.end());
  for (const auto& t : edges) {
    EXPECT_TRUE(protein_set.contains(t.o));
  }
}

TEST(LifeSci, DeterministicInSeed) {
  auto a = build(test_config());
  auto b = build(test_config());
  ASSERT_EQ(a->ds.proteins.size(), b->ds.proteins.size());
  for (std::size_t i = 0; i < a->ds.proteins.size(); ++i) {
    auto sa = a->features.get_string(a->ds.proteins[i], Feat::kSequence);
    auto sb = b->features.get_string(b->ds.proteins[i], Feat::kSequence);
    EXPECT_EQ(*sa, *sb);
  }
  EXPECT_EQ(a->triples.total_triples(), b->triples.total_triples());
}

TEST(LifeSci, DifferentSeedDifferentData) {
  auto cfg = test_config();
  auto a = build(cfg);
  cfg.seed = 8;
  auto b = build(cfg);
  auto sa = a->features.get_string(a->ds.proteins[1], Feat::kSequence);
  auto sb = b->features.get_string(b->ds.proteins[1], Feat::kSequence);
  EXPECT_NE(*sa, *sb);
}

TEST(LifeSci, MutateSequenceRates) {
  Rng rng(5);
  std::string base = random_protein_sequence(rng, 400);
  std::string same = mutate_sequence(rng, base, 0.0, 0.0);
  EXPECT_EQ(same, base);
  std::string heavy = mutate_sequence(rng, base, 0.9, 0.0);
  int diff = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (heavy[i] != base[i]) ++diff;
  }
  EXPECT_GT(diff, 300);  // ~90% substituted (minus back-substitutions)
}

TEST(Sources, PaperTableHasSevenRows) {
  const auto& sources = paper_sources();
  ASSERT_EQ(sources.size(), 7u);
  EXPECT_EQ(sources[0].name, "UniProt");
  EXPECT_EQ(sources[0].paper_triples, 87'600'000'000ull);
  EXPECT_EQ(sources[6].name, "Reactome");
}

TEST(Sources, GenerateAtScaleDivisor) {
  graph::TripleStore store(4);
  SourceSpec spec{"TestSource", 1'000'000'000ull, 10'000'000ull};
  SourceStats stats = generate_source(&store, spec, 100'000, 1);
  EXPECT_EQ(stats.triples_generated, 100u);
  EXPECT_GT(stats.raw_bytes_generated, 0u);
  store.finalize();
  EXPECT_GT(store.total_triples(), 0u);
  EXPECT_LE(store.total_triples(), 100u);  // dedup may shrink slightly
}

TEST(Sources, BytesPerTripleTracksSpec) {
  graph::TripleStore store(2);
  // UniProt: ~145 bytes/triple on disk.
  SourceStats uni = generate_source(&store, paper_sources()[0], 1'000'000, 2);
  double bpt = static_cast<double>(uni.raw_bytes_generated) /
               static_cast<double>(uni.triples_generated);
  double paper_bpt = static_cast<double>(paper_sources()[0].paper_raw_bytes) /
                     static_cast<double>(paper_sources()[0].paper_triples);
  EXPECT_NEAR(bpt, paper_bpt, paper_bpt);  // same order of magnitude
}

TEST(Sources, DeterministicInSeed) {
  graph::TripleStore a(2);
  graph::TripleStore b(2);
  SourceSpec spec{"S", 1'000'000ull, 100'000ull};
  auto sa = generate_source(&a, spec, 1000, 3);
  auto sb = generate_source(&b, spec, 1000, 3);
  EXPECT_EQ(sa.triples_generated, sb.triples_generated);
  EXPECT_EQ(sa.raw_bytes_generated, sb.raw_bytes_generated);
  a.finalize();
  b.finalize();
  EXPECT_EQ(a.total_triples(), b.total_triples());
}

}  // namespace
}  // namespace ids::datagen
