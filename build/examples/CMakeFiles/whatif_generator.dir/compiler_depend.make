# Empty compiler generated dependencies file for whatif_generator.
# This may be replaced when dependencies are built.
