file(REMOVE_RECURSE
  "CMakeFiles/whatif_generator.dir/whatif_generator.cpp.o"
  "CMakeFiles/whatif_generator.dir/whatif_generator.cpp.o.d"
  "whatif_generator"
  "whatif_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
