file(REMOVE_RECURSE
  "CMakeFiles/ncnpr_workflow.dir/ncnpr_workflow.cpp.o"
  "CMakeFiles/ncnpr_workflow.dir/ncnpr_workflow.cpp.o.d"
  "ncnpr_workflow"
  "ncnpr_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncnpr_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
