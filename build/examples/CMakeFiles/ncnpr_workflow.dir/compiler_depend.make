# Empty compiler generated dependencies file for ncnpr_workflow.
# This may be replaced when dependencies are built.
