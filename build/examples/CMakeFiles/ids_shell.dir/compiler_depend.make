# Empty compiler generated dependencies file for ids_shell.
# This may be replaced when dependencies are built.
