file(REMOVE_RECURSE
  "CMakeFiles/ids_shell.dir/ids_shell.cpp.o"
  "CMakeFiles/ids_shell.dir/ids_shell.cpp.o.d"
  "ids_shell"
  "ids_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
