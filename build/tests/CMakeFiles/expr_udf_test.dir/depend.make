# Empty dependencies file for expr_udf_test.
# This may be replaced when dependencies are built.
