file(REMOVE_RECURSE
  "CMakeFiles/expr_udf_test.dir/expr_udf_test.cpp.o"
  "CMakeFiles/expr_udf_test.dir/expr_udf_test.cpp.o.d"
  "expr_udf_test"
  "expr_udf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_udf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
