file(REMOVE_RECURSE
  "CMakeFiles/models_sw_test.dir/models_sw_test.cpp.o"
  "CMakeFiles/models_sw_test.dir/models_sw_test.cpp.o.d"
  "models_sw_test"
  "models_sw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_sw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
