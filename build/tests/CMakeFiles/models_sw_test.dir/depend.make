# Empty dependencies file for models_sw_test.
# This may be replaced when dependencies are built.
