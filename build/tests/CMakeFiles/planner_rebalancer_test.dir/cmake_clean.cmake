file(REMOVE_RECURSE
  "CMakeFiles/planner_rebalancer_test.dir/planner_rebalancer_test.cpp.o"
  "CMakeFiles/planner_rebalancer_test.dir/planner_rebalancer_test.cpp.o.d"
  "planner_rebalancer_test"
  "planner_rebalancer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_rebalancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
