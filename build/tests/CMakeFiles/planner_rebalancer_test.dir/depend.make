# Empty dependencies file for planner_rebalancer_test.
# This may be replaced when dependencies are built.
