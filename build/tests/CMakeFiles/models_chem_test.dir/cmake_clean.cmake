file(REMOVE_RECURSE
  "CMakeFiles/models_chem_test.dir/models_chem_test.cpp.o"
  "CMakeFiles/models_chem_test.dir/models_chem_test.cpp.o.d"
  "models_chem_test"
  "models_chem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_chem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
