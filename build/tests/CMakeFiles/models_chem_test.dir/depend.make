# Empty dependencies file for models_chem_test.
# This may be replaced when dependencies are built.
