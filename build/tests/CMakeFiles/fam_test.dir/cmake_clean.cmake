file(REMOVE_RECURSE
  "CMakeFiles/fam_test.dir/fam_test.cpp.o"
  "CMakeFiles/fam_test.dir/fam_test.cpp.o.d"
  "fam_test"
  "fam_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
