# Empty dependencies file for fam_test.
# This may be replaced when dependencies are built.
