# Empty dependencies file for engine_reference_test.
# This may be replaced when dependencies are built.
