file(REMOVE_RECURSE
  "CMakeFiles/engine_reference_test.dir/engine_reference_test.cpp.o"
  "CMakeFiles/engine_reference_test.dir/engine_reference_test.cpp.o.d"
  "engine_reference_test"
  "engine_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
