file(REMOVE_RECURSE
  "CMakeFiles/ids_datagen.dir/lifesci.cpp.o"
  "CMakeFiles/ids_datagen.dir/lifesci.cpp.o.d"
  "CMakeFiles/ids_datagen.dir/sources.cpp.o"
  "CMakeFiles/ids_datagen.dir/sources.cpp.o.d"
  "libids_datagen.a"
  "libids_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
