# Empty compiler generated dependencies file for ids_datagen.
# This may be replaced when dependencies are built.
