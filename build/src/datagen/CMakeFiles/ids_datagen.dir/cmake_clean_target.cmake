file(REMOVE_RECURSE
  "libids_datagen.a"
)
