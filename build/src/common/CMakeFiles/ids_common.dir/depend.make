# Empty dependencies file for ids_common.
# This may be replaced when dependencies are built.
