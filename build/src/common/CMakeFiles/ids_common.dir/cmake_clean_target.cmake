file(REMOVE_RECURSE
  "libids_common.a"
)
