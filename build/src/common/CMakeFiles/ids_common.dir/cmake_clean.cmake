file(REMOVE_RECURSE
  "CMakeFiles/ids_common.dir/logging.cpp.o"
  "CMakeFiles/ids_common.dir/logging.cpp.o.d"
  "CMakeFiles/ids_common.dir/strings.cpp.o"
  "CMakeFiles/ids_common.dir/strings.cpp.o.d"
  "CMakeFiles/ids_common.dir/thread_pool.cpp.o"
  "CMakeFiles/ids_common.dir/thread_pool.cpp.o.d"
  "libids_common.a"
  "libids_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
