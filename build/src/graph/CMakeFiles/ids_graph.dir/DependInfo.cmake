
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dictionary.cpp" "src/graph/CMakeFiles/ids_graph.dir/dictionary.cpp.o" "gcc" "src/graph/CMakeFiles/ids_graph.dir/dictionary.cpp.o.d"
  "/root/repo/src/graph/shard.cpp" "src/graph/CMakeFiles/ids_graph.dir/shard.cpp.o" "gcc" "src/graph/CMakeFiles/ids_graph.dir/shard.cpp.o.d"
  "/root/repo/src/graph/solution.cpp" "src/graph/CMakeFiles/ids_graph.dir/solution.cpp.o" "gcc" "src/graph/CMakeFiles/ids_graph.dir/solution.cpp.o.d"
  "/root/repo/src/graph/triple_store.cpp" "src/graph/CMakeFiles/ids_graph.dir/triple_store.cpp.o" "gcc" "src/graph/CMakeFiles/ids_graph.dir/triple_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ids_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
