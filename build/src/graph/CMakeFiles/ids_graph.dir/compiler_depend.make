# Empty compiler generated dependencies file for ids_graph.
# This may be replaced when dependencies are built.
