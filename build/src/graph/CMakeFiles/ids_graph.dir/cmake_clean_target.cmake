file(REMOVE_RECURSE
  "libids_graph.a"
)
