file(REMOVE_RECURSE
  "CMakeFiles/ids_graph.dir/dictionary.cpp.o"
  "CMakeFiles/ids_graph.dir/dictionary.cpp.o.d"
  "CMakeFiles/ids_graph.dir/shard.cpp.o"
  "CMakeFiles/ids_graph.dir/shard.cpp.o.d"
  "CMakeFiles/ids_graph.dir/solution.cpp.o"
  "CMakeFiles/ids_graph.dir/solution.cpp.o.d"
  "CMakeFiles/ids_graph.dir/triple_store.cpp.o"
  "CMakeFiles/ids_graph.dir/triple_store.cpp.o.d"
  "libids_graph.a"
  "libids_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
