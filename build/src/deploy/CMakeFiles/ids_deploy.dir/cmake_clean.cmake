file(REMOVE_RECURSE
  "CMakeFiles/ids_deploy.dir/scheduler.cpp.o"
  "CMakeFiles/ids_deploy.dir/scheduler.cpp.o.d"
  "CMakeFiles/ids_deploy.dir/service.cpp.o"
  "CMakeFiles/ids_deploy.dir/service.cpp.o.d"
  "libids_deploy.a"
  "libids_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
