file(REMOVE_RECURSE
  "libids_deploy.a"
)
