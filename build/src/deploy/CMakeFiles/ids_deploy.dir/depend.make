# Empty dependencies file for ids_deploy.
# This may be replaced when dependencies are built.
