file(REMOVE_RECURSE
  "libids_core.a"
)
