# Empty compiler generated dependencies file for ids_core.
# This may be replaced when dependencies are built.
