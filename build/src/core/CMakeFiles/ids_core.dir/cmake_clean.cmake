file(REMOVE_RECURSE
  "CMakeFiles/ids_core.dir/engine.cpp.o"
  "CMakeFiles/ids_core.dir/engine.cpp.o.d"
  "CMakeFiles/ids_core.dir/parser.cpp.o"
  "CMakeFiles/ids_core.dir/parser.cpp.o.d"
  "CMakeFiles/ids_core.dir/planner.cpp.o"
  "CMakeFiles/ids_core.dir/planner.cpp.o.d"
  "CMakeFiles/ids_core.dir/rebalancer.cpp.o"
  "CMakeFiles/ids_core.dir/rebalancer.cpp.o.d"
  "CMakeFiles/ids_core.dir/workflow.cpp.o"
  "CMakeFiles/ids_core.dir/workflow.cpp.o.d"
  "libids_core.a"
  "libids_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
