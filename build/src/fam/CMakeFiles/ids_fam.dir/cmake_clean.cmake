file(REMOVE_RECURSE
  "CMakeFiles/ids_fam.dir/fam.cpp.o"
  "CMakeFiles/ids_fam.dir/fam.cpp.o.d"
  "libids_fam.a"
  "libids_fam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_fam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
