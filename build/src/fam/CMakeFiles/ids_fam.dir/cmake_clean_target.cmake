file(REMOVE_RECURSE
  "libids_fam.a"
)
