# Empty dependencies file for ids_fam.
# This may be replaced when dependencies are built.
