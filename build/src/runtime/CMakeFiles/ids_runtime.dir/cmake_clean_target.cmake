file(REMOVE_RECURSE
  "libids_runtime.a"
)
