# Empty compiler generated dependencies file for ids_runtime.
# This may be replaced when dependencies are built.
