file(REMOVE_RECURSE
  "CMakeFiles/ids_runtime.dir/hetero.cpp.o"
  "CMakeFiles/ids_runtime.dir/hetero.cpp.o.d"
  "CMakeFiles/ids_runtime.dir/rank_exec.cpp.o"
  "CMakeFiles/ids_runtime.dir/rank_exec.cpp.o.d"
  "CMakeFiles/ids_runtime.dir/topology.cpp.o"
  "CMakeFiles/ids_runtime.dir/topology.cpp.o.d"
  "libids_runtime.a"
  "libids_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
