
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/hetero.cpp" "src/runtime/CMakeFiles/ids_runtime.dir/hetero.cpp.o" "gcc" "src/runtime/CMakeFiles/ids_runtime.dir/hetero.cpp.o.d"
  "/root/repo/src/runtime/rank_exec.cpp" "src/runtime/CMakeFiles/ids_runtime.dir/rank_exec.cpp.o" "gcc" "src/runtime/CMakeFiles/ids_runtime.dir/rank_exec.cpp.o.d"
  "/root/repo/src/runtime/topology.cpp" "src/runtime/CMakeFiles/ids_runtime.dir/topology.cpp.o" "gcc" "src/runtime/CMakeFiles/ids_runtime.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ids_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
