file(REMOVE_RECURSE
  "libids_models.a"
)
