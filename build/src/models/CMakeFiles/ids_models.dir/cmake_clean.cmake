file(REMOVE_RECURSE
  "CMakeFiles/ids_models.dir/docking.cpp.o"
  "CMakeFiles/ids_models.dir/docking.cpp.o.d"
  "CMakeFiles/ids_models.dir/dtba.cpp.o"
  "CMakeFiles/ids_models.dir/dtba.cpp.o.d"
  "CMakeFiles/ids_models.dir/molecule.cpp.o"
  "CMakeFiles/ids_models.dir/molecule.cpp.o.d"
  "CMakeFiles/ids_models.dir/molgen.cpp.o"
  "CMakeFiles/ids_models.dir/molgen.cpp.o.d"
  "CMakeFiles/ids_models.dir/pic50.cpp.o"
  "CMakeFiles/ids_models.dir/pic50.cpp.o.d"
  "CMakeFiles/ids_models.dir/smith_waterman.cpp.o"
  "CMakeFiles/ids_models.dir/smith_waterman.cpp.o.d"
  "CMakeFiles/ids_models.dir/structure.cpp.o"
  "CMakeFiles/ids_models.dir/structure.cpp.o.d"
  "CMakeFiles/ids_models.dir/tensor.cpp.o"
  "CMakeFiles/ids_models.dir/tensor.cpp.o.d"
  "libids_models.a"
  "libids_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
