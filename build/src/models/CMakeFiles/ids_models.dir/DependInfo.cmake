
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/docking.cpp" "src/models/CMakeFiles/ids_models.dir/docking.cpp.o" "gcc" "src/models/CMakeFiles/ids_models.dir/docking.cpp.o.d"
  "/root/repo/src/models/dtba.cpp" "src/models/CMakeFiles/ids_models.dir/dtba.cpp.o" "gcc" "src/models/CMakeFiles/ids_models.dir/dtba.cpp.o.d"
  "/root/repo/src/models/molecule.cpp" "src/models/CMakeFiles/ids_models.dir/molecule.cpp.o" "gcc" "src/models/CMakeFiles/ids_models.dir/molecule.cpp.o.d"
  "/root/repo/src/models/molgen.cpp" "src/models/CMakeFiles/ids_models.dir/molgen.cpp.o" "gcc" "src/models/CMakeFiles/ids_models.dir/molgen.cpp.o.d"
  "/root/repo/src/models/pic50.cpp" "src/models/CMakeFiles/ids_models.dir/pic50.cpp.o" "gcc" "src/models/CMakeFiles/ids_models.dir/pic50.cpp.o.d"
  "/root/repo/src/models/smith_waterman.cpp" "src/models/CMakeFiles/ids_models.dir/smith_waterman.cpp.o" "gcc" "src/models/CMakeFiles/ids_models.dir/smith_waterman.cpp.o.d"
  "/root/repo/src/models/structure.cpp" "src/models/CMakeFiles/ids_models.dir/structure.cpp.o" "gcc" "src/models/CMakeFiles/ids_models.dir/structure.cpp.o.d"
  "/root/repo/src/models/tensor.cpp" "src/models/CMakeFiles/ids_models.dir/tensor.cpp.o" "gcc" "src/models/CMakeFiles/ids_models.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ids_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
