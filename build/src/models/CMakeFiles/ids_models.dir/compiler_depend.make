# Empty compiler generated dependencies file for ids_models.
# This may be replaced when dependencies are built.
