file(REMOVE_RECURSE
  "libids_store.a"
)
