file(REMOVE_RECURSE
  "CMakeFiles/ids_store.dir/feature_store.cpp.o"
  "CMakeFiles/ids_store.dir/feature_store.cpp.o.d"
  "CMakeFiles/ids_store.dir/inverted_index.cpp.o"
  "CMakeFiles/ids_store.dir/inverted_index.cpp.o.d"
  "CMakeFiles/ids_store.dir/ivf_index.cpp.o"
  "CMakeFiles/ids_store.dir/ivf_index.cpp.o.d"
  "CMakeFiles/ids_store.dir/vector_store.cpp.o"
  "CMakeFiles/ids_store.dir/vector_store.cpp.o.d"
  "libids_store.a"
  "libids_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
