# Empty dependencies file for ids_store.
# This may be replaced when dependencies are built.
