file(REMOVE_RECURSE
  "libids_expr.a"
)
