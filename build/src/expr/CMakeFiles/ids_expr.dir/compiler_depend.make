# Empty compiler generated dependencies file for ids_expr.
# This may be replaced when dependencies are built.
