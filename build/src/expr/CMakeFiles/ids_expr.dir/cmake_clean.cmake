file(REMOVE_RECURSE
  "CMakeFiles/ids_expr.dir/chain.cpp.o"
  "CMakeFiles/ids_expr.dir/chain.cpp.o.d"
  "CMakeFiles/ids_expr.dir/expr.cpp.o"
  "CMakeFiles/ids_expr.dir/expr.cpp.o.d"
  "CMakeFiles/ids_expr.dir/value.cpp.o"
  "CMakeFiles/ids_expr.dir/value.cpp.o.d"
  "libids_expr.a"
  "libids_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
