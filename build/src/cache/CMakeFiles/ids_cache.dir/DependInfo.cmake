
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cross_cluster.cpp" "src/cache/CMakeFiles/ids_cache.dir/cross_cluster.cpp.o" "gcc" "src/cache/CMakeFiles/ids_cache.dir/cross_cluster.cpp.o.d"
  "/root/repo/src/cache/manager.cpp" "src/cache/CMakeFiles/ids_cache.dir/manager.cpp.o" "gcc" "src/cache/CMakeFiles/ids_cache.dir/manager.cpp.o.d"
  "/root/repo/src/cache/stats.cpp" "src/cache/CMakeFiles/ids_cache.dir/stats.cpp.o" "gcc" "src/cache/CMakeFiles/ids_cache.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fam/CMakeFiles/ids_fam.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
