file(REMOVE_RECURSE
  "CMakeFiles/ids_cache.dir/cross_cluster.cpp.o"
  "CMakeFiles/ids_cache.dir/cross_cluster.cpp.o.d"
  "CMakeFiles/ids_cache.dir/manager.cpp.o"
  "CMakeFiles/ids_cache.dir/manager.cpp.o.d"
  "CMakeFiles/ids_cache.dir/stats.cpp.o"
  "CMakeFiles/ids_cache.dir/stats.cpp.o.d"
  "libids_cache.a"
  "libids_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
