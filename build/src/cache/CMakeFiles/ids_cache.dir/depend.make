# Empty dependencies file for ids_cache.
# This may be replaced when dependencies are built.
