file(REMOVE_RECURSE
  "libids_cache.a"
)
