# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("runtime")
subdirs("graph")
subdirs("algo")
subdirs("store")
subdirs("expr")
subdirs("udf")
subdirs("fam")
subdirs("cache")
subdirs("models")
subdirs("datagen")
subdirs("io")
subdirs("core")
subdirs("deploy")
