# Empty compiler generated dependencies file for ids_udf.
# This may be replaced when dependencies are built.
