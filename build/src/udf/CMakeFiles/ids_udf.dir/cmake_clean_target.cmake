file(REMOVE_RECURSE
  "libids_udf.a"
)
