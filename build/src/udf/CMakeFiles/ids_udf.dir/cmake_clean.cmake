file(REMOVE_RECURSE
  "CMakeFiles/ids_udf.dir/registry.cpp.o"
  "CMakeFiles/ids_udf.dir/registry.cpp.o.d"
  "libids_udf.a"
  "libids_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
