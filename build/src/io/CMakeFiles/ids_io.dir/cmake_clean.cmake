file(REMOVE_RECURSE
  "CMakeFiles/ids_io.dir/dataset_io.cpp.o"
  "CMakeFiles/ids_io.dir/dataset_io.cpp.o.d"
  "libids_io.a"
  "libids_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
