# Empty compiler generated dependencies file for ids_io.
# This may be replaced when dependencies are built.
