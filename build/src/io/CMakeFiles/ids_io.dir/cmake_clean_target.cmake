file(REMOVE_RECURSE
  "libids_io.a"
)
