file(REMOVE_RECURSE
  "CMakeFiles/ids_algo.dir/graph_algorithms.cpp.o"
  "CMakeFiles/ids_algo.dir/graph_algorithms.cpp.o.d"
  "libids_algo.a"
  "libids_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
