# Empty dependencies file for ids_algo.
# This may be replaced when dependencies are built.
