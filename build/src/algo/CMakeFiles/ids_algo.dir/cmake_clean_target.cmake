file(REMOVE_RECURSE
  "libids_algo.a"
)
