# Empty dependencies file for bench_ablation_rebalance.
# This may be replaced when dependencies are built.
