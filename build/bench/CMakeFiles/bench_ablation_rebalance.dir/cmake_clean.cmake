file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rebalance.dir/bench_ablation_rebalance.cpp.o"
  "CMakeFiles/bench_ablation_rebalance.dir/bench_ablation_rebalance.cpp.o.d"
  "bench_ablation_rebalance"
  "bench_ablation_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
