# Empty dependencies file for bench_table2_cache.
# This may be replaced when dependencies are built.
