
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_ingest.cpp" "bench/CMakeFiles/bench_table1_ingest.dir/bench_table1_ingest.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_ingest.dir/bench_table1_ingest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deploy/CMakeFiles/ids_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ids_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ids_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/ids_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/ids_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ids_models.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ids_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fam/CMakeFiles/ids_fam.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/ids_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/ids_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/ids_store.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ids_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ids_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ids_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
