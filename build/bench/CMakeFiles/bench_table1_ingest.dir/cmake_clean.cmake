file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ingest.dir/bench_table1_ingest.cpp.o"
  "CMakeFiles/bench_table1_ingest.dir/bench_table1_ingest.cpp.o.d"
  "bench_table1_ingest"
  "bench_table1_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
