// Companion to the raw_sockets fixture: the same includes inside
// src/telemetry/ are the sanctioned home for real sockets (the
// observability server lives there), so this file must NOT be flagged.
#include <netinet/in.h>
#include <sys/socket.h>

int exporter_socket() { return socket(AF_INET, SOCK_STREAM, 0); }
