// Negative fixture for lint rule 12: raw socket headers outside
// src/telemetry/. A transport layer that opens BSD sockets from engine
// code bypasses the modeled-I/O contract and makes every translation
// unit that links it unportable to socketless sandboxes. This file must
// be flagged on both unmarked includes; the opted-out line at the bottom
// must NOT be flagged.
#include <sys/socket.h>

#include <netinet/in.h>

int open_listener(unsigned short port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = static_cast<unsigned short>((port << 8) | (port >> 8));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return -1;
  }
  return fd;
}

#include <arpa/inet.h>  // lint:allow-sockets
