// Fixture for lint rule 11: `lint:allow-everything` is not in the closed
// tag set and must be flagged; the `lint:allow-global` tag below is real
// and must pass untouched.

namespace fixture {

int add(int a, int b) {
  return a + b;  // lint:allow-everything
}

static int counter = 0;  // lint:allow-global

int bump() { return ++counter; }

}  // namespace fixture
