// Negative fixture for lint rule 9: mutable static/global state in
// library code. Both shapes planted here are invisible to callers but
// shared by every query the process serves — exactly what the
// concurrent-serving certificate exists to flush out.

namespace ids {

long g_request_count = 0;  // BAD: mutable namespace-scope global

int next_ticket() {
  static int ticket = 0;  // BAD: mutable function-local static
  return ++ticket;
}

}  // namespace ids
