// Negative fixture: a node-based hash container on an engine hot path.
// The allowlisted line below must NOT be flagged; the bare one must.
#include <unordered_map>

namespace fixture {

std::unordered_map<int, int> allowed_config_table;  // lint:allow-unordered

int lookup(int key) {
  std::unordered_map<int, int> index;
  index.emplace(key, 1);
  return index.count(key) ? index[key] : 0;
}

}  // namespace fixture
