#include <cstdlib>

// Fixture: raw C RNG outside common/rng.h must be flagged.
int roll() { return std::rand() % 6; }
