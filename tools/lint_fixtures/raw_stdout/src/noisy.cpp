// Negative fixture for lint rule 7: library code writing to stdout. The
// process's stdout belongs to the example/tool binary; a library that
// printf()s corrupts pipelines (e.g. `ncnpr_workflow --metrics - | ...`)
// and bypasses the IDS_LOG level filter.
#include <cstdio>
#include <iostream>

void report_progress(int done, int total) {
  std::cout << "progress " << done << "/" << total << "\n";
  std::printf("done %d\n", done);
}
