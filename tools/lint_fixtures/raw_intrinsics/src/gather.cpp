// Negative fixture for lint rule 10: raw SIMD intrinsics outside
// src/common/simd.*. Hand-rolled intrinsics bypass the dispatch layer's
// scalar fallback and cross-level determinism contract; this file must be
// flagged on both the include and the _mm call. The opted-out line at the
// bottom must NOT be flagged.
#include <immintrin.h>

float sum8(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_hadd_ps(s, s);
  s = _mm_hadd_ps(s, s);
  return _mm_cvtss_f32(s);
}

void prefetch_ok(const char* p) {
  _mm_prefetch(p, _MM_HINT_T0);  // lint:allow-intrinsics
}
