// Fixture: header with no #pragma once.
inline int answer() { return 42; }
