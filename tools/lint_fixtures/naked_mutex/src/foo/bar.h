#pragma once

#include <mutex>

// Fixture: a naked std::mutex member outside src/common/ must be flagged.
class Bad {
 private:
  std::mutex mutex_;
};
