#pragma once
// Rule 13 is scoped to the frozen stores: a mutable member outside
// src/graph/ + src/store/ (here, src/core/) is out of scope for the
// regex rule and must NOT be flagged — the analyzer's [phase-discipline]
// and the shared-state certificate cover engine-reachable state with
// token fidelity instead.

class PlannerScratch {
 private:
  mutable int last_cost_ = 0;
};
