#pragma once
// Negative fixture for lint rule 13: `mutable` fields in the frozen
// stores (src/graph/ + src/store/). cache_ and prepared_ are the
// lazy-prepare shape — a const read path mutating after freeze() — and
// must be flagged. The atomic member, the IDS_GUARDED_BY member, and the
// opted-out line must NOT be flagged.

#include <atomic>
#include <vector>

class LazyIndex {
 public:
  int lookup(int key) const;

 private:
  mutable std::vector<int> cache_;
  mutable bool prepared_ = false;
  mutable std::atomic<long> hits_{0};
  mutable long misses_ IDS_GUARDED_BY(mu_) = 0;
  mutable int scratch_ = 0;  // lint:allow-mutable
};
