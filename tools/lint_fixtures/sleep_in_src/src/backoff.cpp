// Negative fixture for lint rule 8: a host-side sleep in modeled code.
// Stalling the OS thread does not advance the sim::VirtualClock, so the
// retry loop below costs nothing in modeled time while making every test
// that exercises it wall-clock dependent and slow.
#include <chrono>
#include <thread>

bool try_reserve_slot();

void reserve_slot_with_backoff() {
  while (!try_reserve_slot()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}
