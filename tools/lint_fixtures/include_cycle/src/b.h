#pragma once

#include "a.h"
