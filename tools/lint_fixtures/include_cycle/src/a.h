#pragma once

// Fixture: a.h -> b.h -> a.h is an include cycle.
#include "b.h"
