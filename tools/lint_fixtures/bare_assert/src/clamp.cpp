// Negative fixture for lint rule 6: a bare assert() in src/. It vanishes
// under NDEBUG, so the invariant goes unchecked exactly in the builds
// that ship — IDS_CHECK keeps it armed everywhere.
#include <cassert>

int clamp_rank(int rank, int num_ranks) {
  assert(rank >= 0 && rank < num_ranks);
  return rank;
}
