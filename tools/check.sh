#!/usr/bin/env bash
# Full correctness gate: custom lint, the ids-analyzer static checks, then
# the test suite under TSan and under ASan+UBSan. This is what CI runs on
# every PR (tools/ci.sh) and what a developer should run before pushing
# concurrency-touching changes.
#
# Usage: tools/check.sh [--jobs N]

set -eu

jobs=$(nproc 2>/dev/null || echo 2)
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "usage: $0 [--jobs N]" >&2; exit 2 ;;
  esac
done

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "==> lint"
tools/lint.sh

echo "==> ids-analyzer (src/, SARIF, gated on tools/analyzer_baseline.txt)"
cmake -B build-analyze -S . > build-analyze-configure.log 2>&1 || {
  cat build-analyze-configure.log >&2; exit 1
}
rm -f build-analyze-configure.log
cmake --build build-analyze --target ids-analyzer -j "$jobs"
analyzer=build-analyze/tools/analyzer/ids-analyzer
# SARIF and the stats JSON land next to the build so CI can archive them;
# findings outside the committed baseline fail the gate.
"$analyzer" --format=sarif --stats \
  --stats-json=build-analyze/ids-analyzer-stats.json \
  --baseline=tools/analyzer_baseline.txt src \
  > build-analyze/ids-analyzer.sarif
# Baseline drift: a fixed finding must also be removed from the baseline,
# so regenerating it has to reproduce the committed file byte-for-byte.
fresh_baseline=$(mktemp)
"$analyzer" --write-baseline="$fresh_baseline" src > /dev/null || true
if ! diff -u tools/analyzer_baseline.txt "$fresh_baseline"; then
  rm -f "$fresh_baseline"
  echo "check: tools/analyzer_baseline.txt is stale; regenerate with" >&2
  echo "  $analyzer --write-baseline=tools/analyzer_baseline.txt src" >&2
  exit 1
fi
rm -f "$fresh_baseline"

echo "==> ids-analyzer wall-time budget"
# The summary/spawner fixed points must stay effectively linear in the
# corpus; a superlinear blowup shows up here long before it hurts a
# developer. The budget is ~200x the current wall time on src/.
if command -v python3 > /dev/null 2>&1; then
  python3 - build-analyze/ids-analyzer-stats.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
total = doc["phase_seconds"]["total"]
budget = 20.0
assert total <= budget, \
    "analyzer spent %.3fs on src/ (budget %.0fs)" % (total, budget)
print("analyzer wall time %.3fs (budget %.0fs)" % (total, budget))
EOF
fi

echo "==> ids-analyzer certify (concurrent-exec shared-state certificate)"
# The certificate must pass (exit 0) AND match the committed inventory, so
# every newly waived or reclassified entry shows up in review.
fresh_cert=$(mktemp)
"$analyzer" --certify=concurrent-exec src > "$fresh_cert"
if ! diff -u tools/concurrency_certificate.json "$fresh_cert"; then
  rm -f "$fresh_cert"
  echo "check: tools/concurrency_certificate.json is stale; regenerate with" >&2
  echo "  $analyzer --certify=concurrent-exec src > tools/concurrency_certificate.json" >&2
  exit 1
fi
rm -f "$fresh_cert"

echo "==> ids-analyzer self-test (dogfood + resolution ratio)"
bash tests/analyzer_selftest.sh "$analyzer"

echo "==> trace smoke (ncnpr_workflow --trace/--metrics)"
cmake --build build-analyze --target ncnpr_workflow -j "$jobs"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
build-analyze/examples/ncnpr_workflow \
  --trace "$smoke_dir/trace.json" --metrics "$smoke_dir/metrics.prom" \
  > "$smoke_dir/stdout.log"
[ -s "$smoke_dir/trace.json" ] || { echo "trace smoke: empty trace" >&2; exit 1; }
grep -q '"traceEvents"' "$smoke_dir/trace.json" || {
  echo "trace smoke: no traceEvents in trace.json" >&2; exit 1
}
grep -q '^ids_cache_hits_total{' "$smoke_dir/metrics.prom" || {
  echo "trace smoke: cache metrics missing from exposition" >&2; exit 1
}
grep -q '^ids_udf_exec_seconds_bucket{' "$smoke_dir/metrics.prom" || {
  echo "trace smoke: UDF latency histogram missing from exposition" >&2; exit 1
}
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$smoke_dir/trace.json" > /dev/null || {
    echo "trace smoke: trace.json is not valid JSON" >&2; exit 1
  }
fi

echo "==> observability smoke (ncnpr_workflow --serve-obs/--profile)"
# Live-plane end-to-end: the workflow serves /metrics, /statusz, /tracez
# and /profilez on an ephemeral port while holding after the run, and the
# smoke script scrapes it over loopback like an operator with curl would.
bash tools/obs_smoke.sh build-analyze/examples/ncnpr_workflow \
  "$smoke_dir/obs"

build_and_test() {  # $1 = build dir, $2 = IDS_SANITIZE value
  echo "==> $2 build ($1)"
  mkdir -p "$1"
  cmake -B "$1" -S . -DIDS_SANITIZE="$2" -DIDS_WERROR=ON > "$1/configure.log"
  cmake --build "$1" -j "$jobs"
  # Two passes: auto-detected SIMD dispatch, then the forced-scalar
  # kernels. Both must be green under the sanitizer — the scalar run is
  # what non-x86 hosts would execute, and divergence between the passes
  # means the determinism contract (DESIGN.md §11) is broken.
  echo "==> $2 ctest (IDS_SIMD_LEVEL=auto)"
  (cd "$1" && ctest --output-on-failure -j "$jobs")
  echo "==> $2 ctest (IDS_SIMD_LEVEL=scalar)"
  (cd "$1" && IDS_SIMD_LEVEL=scalar ctest --output-on-failure -j "$jobs")
}

build_and_test build-tsan thread
build_and_test build-asan address

echo "==> all checks passed"
