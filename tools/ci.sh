#!/usr/bin/env bash
# CI entry point: the {Release, ASan+UBSan, TSan} × {build, ctest} matrix
# plus the custom lint pass and the ids-analyzer static checks. Mirrors
# .github/workflows/ci.yml for environments where GitHub Actions is
# unavailable.

set -eu

jobs=$(nproc 2>/dev/null || echo 2)
repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "==> lint"
tools/lint.sh

echo "==> ids-analyzer (src/, SARIF, gated on tools/analyzer_baseline.txt)"
cmake -B build-ci-analyze -S . > /dev/null
cmake --build build-ci-analyze --target ids-analyzer -j "$jobs"
analyzer=build-ci-analyze/tools/analyzer/ids-analyzer
"$analyzer" --format=sarif --stats \
  --stats-json=build-ci-analyze/ids-analyzer-stats.json \
  --baseline=tools/analyzer_baseline.txt src \
  > build-ci-analyze/ids-analyzer.sarif
fresh_baseline=$(mktemp)
"$analyzer" --write-baseline="$fresh_baseline" src > /dev/null || true
if ! diff -u tools/analyzer_baseline.txt "$fresh_baseline"; then
  rm -f "$fresh_baseline"
  echo "ci: tools/analyzer_baseline.txt is stale; regenerate with" >&2
  echo "  $analyzer --write-baseline=tools/analyzer_baseline.txt src" >&2
  exit 1
fi
rm -f "$fresh_baseline"

echo "==> ids-analyzer wall-time budget"
if command -v python3 > /dev/null 2>&1; then
  python3 - build-ci-analyze/ids-analyzer-stats.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
total = doc["phase_seconds"]["total"]
budget = 20.0
assert total <= budget, \
    "analyzer spent %.3fs on src/ (budget %.0fs)" % (total, budget)
print("analyzer wall time %.3fs (budget %.0fs)" % (total, budget))
EOF
fi

echo "==> ids-analyzer certify (concurrent-exec shared-state certificate)"
fresh_cert=$(mktemp)
"$analyzer" --certify=concurrent-exec src > "$fresh_cert"
if ! diff -u tools/concurrency_certificate.json "$fresh_cert"; then
  rm -f "$fresh_cert"
  echo "ci: tools/concurrency_certificate.json is stale; regenerate with" >&2
  echo "  $analyzer --certify=concurrent-exec src > tools/concurrency_certificate.json" >&2
  exit 1
fi
rm -f "$fresh_cert"

echo "==> ids-analyzer self-test (dogfood + resolution ratio)"
bash tests/analyzer_selftest.sh "$analyzer"

run_config() {  # $1 = build dir, $2... = extra cmake args
  local dir="$1"
  shift
  echo "==> configure $dir ($*)"
  cmake -B "$dir" -S . -DIDS_WERROR=ON "$@"
  echo "==> build $dir"
  cmake --build "$dir" -j "$jobs"
  echo "==> ctest $dir"
  (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

run_config build-ci-release -DCMAKE_BUILD_TYPE=Release

echo "==> observability smoke (live /metrics scrape + flamegraph export)"
cmake --build build-ci-release --target ncnpr_workflow -j "$jobs"
bash tools/obs_smoke.sh build-ci-release/examples/ncnpr_workflow

run_config build-ci-asan -DIDS_SANITIZE=address
run_config build-ci-tsan -DIDS_SANITIZE=thread

echo "==> CI matrix green"
