#!/usr/bin/env bash
# CI entry point: the {Release, ASan+UBSan, TSan} × {build, ctest} matrix
# plus the custom lint pass and the ids-analyzer static checks. Mirrors
# .github/workflows/ci.yml for environments where GitHub Actions is
# unavailable.

set -eu

jobs=$(nproc 2>/dev/null || echo 2)
repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "==> lint"
tools/lint.sh

echo "==> ids-analyzer (src/)"
cmake -B build-ci-analyze -S . > /dev/null
cmake --build build-ci-analyze --target ids-analyzer -j "$jobs"
build-ci-analyze/tools/analyzer/ids-analyzer src

run_config() {  # $1 = build dir, $2... = extra cmake args
  local dir="$1"
  shift
  echo "==> configure $dir ($*)"
  cmake -B "$dir" -S . -DIDS_WERROR=ON "$@"
  echo "==> build $dir"
  cmake --build "$dir" -j "$jobs"
  echo "==> ctest $dir"
  (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

run_config build-ci-release -DCMAKE_BUILD_TYPE=Release
run_config build-ci-asan -DIDS_SANITIZE=address
run_config build-ci-tsan -DIDS_SANITIZE=thread

echo "==> CI matrix green"
