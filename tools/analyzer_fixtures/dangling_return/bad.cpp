// Fixture (negative): returns that outlive their referent. Shapes
// ids-analyzer must flag under [dangling-return]:
//   1. pick() returns a reference to a local.
//   2. addr() returns the address of a local.
//   3. head() returns buffer.data() of a local string.
//   4. label() returns a string_view bound to a by-value parameter.
//   5. render() returns a string_view bound to a substr temporary.

namespace fixture {

const int& pick(int a, int b) {
  int chosen = a < b ? a : b;
  return chosen;  // BAD: reference to a dead frame slot
}

const long* addr(long seed) {
  long scratch = seed * 3;
  return &scratch;  // BAD: address of a local
}

const char* head() {
  std::string buffer = make_name();
  return buffer.data();  // BAD: the string dies with the frame
}

std::string_view label(std::string tag) {
  return tag;  // BAD: by-value parameter dies at return
}

std::string_view render(const std::string& row) {
  return row.substr(1, 4);  // BAD: substr of a string is a temporary
}

}  // namespace fixture
