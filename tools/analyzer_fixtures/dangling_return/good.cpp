// Fixture (positive): returns the lifetime rules must accept — references
// to members and parameters (the referent outlives the call), views into
// a string_view parameter (the caller owns the bytes), values returned by
// copy, pointers into static storage, and a reference parameter passed
// through.

namespace fixture {

class Catalog {
 public:
  const std::string& name() const { return name_; }  // member outlives call
  const char* bytes() const { return name_.data(); }

 private:
  std::string name_;
};

const int& larger(const int& a, const int& b) {
  return a < b ? b : a;  // reference parameters pass through
}

std::string_view strip(std::string_view s) {
  return s.substr(1);  // view of caller-owned bytes, not a temporary
}

std::string spell(int v) {
  std::string out = std::to_string(v);
  return out;  // by value: the copy is the caller's
}

const long* shared_zero() {
  static long zero = 0;
  return &zero;  // static storage survives the frame
}

}  // namespace fixture
