// Fixture (positive): every Status/Result return value is consumed — by
// assignment, by a control-flow test, or via the explicit
// IDS_IGNORE_ERROR escape hatch. ids-analyzer must accept this file.

namespace fixture {

class Status {
 public:
  bool ok() const;
};

template <typename T>
class Result {
 public:
  bool ok() const;
};

Status flush_segment(int fd);
Result<int> append_record(int fd, int payload);

int checkpoint(int fd) {
  Status st = flush_segment(fd);          // consumed: assignment
  if (!st.ok()) return -1;
  if (!flush_segment(fd).ok()) return -1; // consumed: condition
  IDS_IGNORE_ERROR(flush_segment(fd));    // consumed: sanctioned discard
  auto rec = append_record(fd, 42);       // consumed: assignment
  return rec.ok() ? 0 : -1;
}

}  // namespace fixture
