// Fixture (negative): Status/Result return values dropped on the floor.
// ids-analyzer must flag both the bare call statement and the `(void)`
// cast — only IDS_IGNORE_ERROR is an approved discard. Fixtures are
// analyzed, never compiled, so the types are minimal stand-ins.

namespace fixture {

class Status {
 public:
  bool ok() const;
};

template <typename T>
class Result {
 public:
  bool ok() const;
};

Status flush_segment(int fd);
Result<int> append_record(int fd, int payload);

void checkpoint(int fd) {
  flush_segment(fd);           // BAD: Status silently discarded
  (void)flush_segment(fd);     // BAD: (void) is not an approved discard
  append_record(fd, 42);       // BAD: Result silently discarded
}

}  // namespace fixture
