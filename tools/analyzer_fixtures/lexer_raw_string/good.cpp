// Fixture (positive): raw string literals must lex as single string
// tokens. Everything inside the R"doc(...)doc" block below *looks* like
// rule violations — a bare assert, a sleep call, an unbalanced quote and
// paren — but none of it is code. A lexer that mishandles the raw-string
// delimiter would leak these tokens into the corpus and produce findings.

namespace fixture {

const char* kManual = R"doc(
  Usage notes (not code):
    assert(value > 0);
    std::this_thread::sleep_for(std::chrono::seconds(1));
    an unbalanced quote " and paren ( live here
)doc";

const char* kEmpty = R"()";

int manual_size() {
  const char* p = kManual;
  int n = 0;
  while (*p != '\0') {
    ++n;
    ++p;
  }
  return n + (kEmpty[0] == '\0' ? 1 : 0);
}

}  // namespace fixture
