// Fixture (negative): the lexer must *recover* after a raw string — the
// real bare assert below the literal has to be flagged with the correct
// line number, proving the raw-string scan consumed exactly the literal
// (newlines counted) and nothing after it.

namespace fixture {

const char* kBanner = R"(ids query engine — "scientific data exploration")";

void guard(int v) {
  assert(v > 0);  // BAD: a real assert, after the raw string
}

}  // namespace fixture
