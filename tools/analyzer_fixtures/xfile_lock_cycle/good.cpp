// Fixture (positive, analyzed together with good_peer.cpp): the same
// two-TU shape as the bad pair, but with a consistent hierarchy —
// Scheduler::mu_ is always acquired before Worker::mu_, and the worker
// never calls back into the scheduler while holding its lock. The
// cross-file edge Scheduler::mu_ -> Worker::mu_ exists, but the graph is
// acyclic, so ids-analyzer must accept the pair.

namespace fixture {

class Mutex {};
class Worker;

class Scheduler {
 public:
  void submit() IDS_EXCLUDES(mu_);

 private:
  Mutex mu_;
  Worker* worker_;
};

void Scheduler::submit() {
  MutexLock lock(mu_);
  worker_->steal();  // Scheduler::mu_ -> Worker::mu_, the only ordering
}

}  // namespace fixture
