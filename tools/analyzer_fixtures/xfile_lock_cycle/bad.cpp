// Fixture (negative, analyzed together with bad_peer.cpp): a lock-order
// cycle whose edges span translation units. Scheduler::submit (this file)
// holds Scheduler::mu_ and calls Worker::steal, whose own mutex lives in
// bad_peer.cpp — so the edge Scheduler::mu_ -> Worker::mu_ is established
// against an acquisition in *another file*. bad_peer.cpp closes the cycle
// the other way round. No single-file analysis can see this deadlock;
// ids-analyzer must reject the pair under [xfile-lock-order] with a
// "cross-TU" message.

namespace fixture {

class Mutex {};
class Worker;

class Scheduler {
 public:
  void submit() IDS_EXCLUDES(mu_);
  void drain() IDS_EXCLUDES(mu_);

 private:
  Mutex mu_;
  Worker* worker_;
};

void Scheduler::submit() {
  MutexLock lock(mu_);
  worker_->steal();  // acquires Worker::mu_ (bad_peer.cpp) under our lock
}

void Scheduler::drain() {
  MutexLock lock(mu_);
}

}  // namespace fixture
