// Fixture (negative, second TU of the xfile_lock_cycle pair — see
// bad.cpp). Worker::steal holds Worker::mu_ and calls back into
// Scheduler::drain, which acquires Scheduler::mu_ in the *other* file:
// the cross-TU edge Worker::mu_ -> Scheduler::mu_ completes the cycle.

namespace fixture {

class Mutex {};
class Scheduler;

class Worker {
 public:
  void steal() IDS_EXCLUDES(mu_);

 private:
  Mutex mu_;
  Scheduler* boss_;
};

void Worker::steal() {
  MutexLock lock(mu_);
  boss_->drain();  // acquires Scheduler::mu_ (bad.cpp) — cycle closed
}

}  // namespace fixture
