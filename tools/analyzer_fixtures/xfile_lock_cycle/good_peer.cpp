// Fixture (positive, second TU of the xfile_lock_cycle good pair — see
// good.cpp). Worker::steal is a leaf critical section: it acquires only
// its own mutex and calls nothing that locks, so no back-edge exists.

namespace fixture {

class Mutex {};

class Worker {
 public:
  void steal() IDS_EXCLUDES(mu_);
  int backlog() const;

 private:
  Mutex mu_;
};

void Worker::steal() {
  MutexLock lock(mu_);
  // Leaf critical section: no calls that acquire other locks.
}

}  // namespace fixture
