// Fixture (negative): views bound to rvalue temporaries. Shapes
// ids-analyzer must flag under [temporary-bound-view]:
//   1. suffix() binds a string_view local to a std::string::substr result.
//   2. digits() binds a string_view local to a to_string temporary.
//   3. glued() binds a string_view local to a '+' concatenation.
//   4. Header::title_ member is initialized from a substr temporary.

namespace fixture {

int suffix(const std::string& name) {
  std::string_view tail = name.substr(2);  // BAD: substr returns a string
  return static_cast<int>(tail.size());
}

int digits(long v) {
  std::string_view s = std::to_string(v);  // BAD: temporary dies here
  return static_cast<int>(s.size());
}

int glued(const std::string& a, const std::string& b) {
  std::string_view joined = a + b;  // BAD: concatenation temporary
  return static_cast<int>(joined.size());
}

class Header {
 public:
  int width() const;

 private:
  std::string raw_;
  std::string_view title_ = raw_.substr(0, 8);  // BAD: temporary initializer
};

}  // namespace fixture
