// Fixture (positive): view bindings the analyzer must accept — views of
// named owners that outlive the view, string_view::substr (a view of the
// caller's bytes, not a temporary), spans over locals used in-frame, and
// a named materialization of a temporary before the view is taken.

namespace fixture {

int suffix(const std::string& name) {
  std::string_view whole = name;  // view of a named parameter
  std::string_view tail = whole.substr(2);  // view-of-view: same owner
  return static_cast<int>(tail.size());
}

int digits(long v) {
  std::string owned = std::to_string(v);  // temporary materialized first
  std::string_view s = owned;
  return static_cast<int>(s.size());
}

int sum(std::vector<int>& vals) {
  std::span<int> window(vals);  // span over a named container
  int total = 0;
  for (int x : window) total += x;
  return total;
}

class Header {
 public:
  int width() const;

 private:
  std::string raw_;
  std::string_view title_ = raw_;  // view of a member: same lifetime
};

}  // namespace fixture
