// Fixture (positive): invariants stated with IDS_CHECK / IDS_DCHECK
// (checked in every build type / debug-only by design, never silently).
// static_assert is a different beast and stays allowed.

namespace fixture {

static_assert(sizeof(int) >= 4, "ILP32 or wider");

int clamp_rank(int rank, int num_ranks) {
  IDS_CHECK(rank >= 0 && rank < num_ranks) << "rank " << rank;
  IDS_DCHECK(num_ranks > 0);
  return rank;
}

}  // namespace fixture
