// Fixture (negative): a bare assert(). Compiled out under NDEBUG, so the
// invariant silently stops being checked in release builds — the repo
// bans it in favor of IDS_CHECK / IDS_DCHECK (or a returned Status for
// recoverable conditions).

namespace fixture {

int clamp_rank(int rank, int num_ranks) {
  assert(rank >= 0 && rank < num_ranks);  // BAD: vanishes under NDEBUG
  return rank;
}

}  // namespace fixture
