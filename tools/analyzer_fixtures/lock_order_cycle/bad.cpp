// Fixture (negative): inconsistent lock acquisition order. Ping holds
// A::mu_ and calls B::pong (which IDS_EXCLUDES its own mu_, i.e. acquires
// it), while pong holds B::mu_ and calls back into A::ping — the lock
// graph A::mu_ -> B::mu_ -> A::mu_ has a cycle, so two threads can
// deadlock. ids-analyzer must reject this file.

namespace fixture {

class Mutex {};
class B;

class A {
 public:
  void ping() IDS_EXCLUDES(mu_);

 private:
  Mutex mu_;
  B* peer_;
};

class B {
 public:
  void pong() IDS_EXCLUDES(mu_);

 private:
  Mutex mu_;
  A* peer_;
};

void A::ping() {
  MutexLock lock(mu_);
  peer_->pong();  // acquires B::mu_ while holding A::mu_
}

void B::pong() {
  MutexLock lock(mu_);
  peer_->ping();  // acquires A::mu_ while holding B::mu_ — cycle
}

}  // namespace fixture
