// Fixture (positive): a consistent lock hierarchy. A::ping acquires
// A::mu_ then calls into B (edge A::mu_ -> B::mu_); B never calls back
// into A while holding its lock, so the lock graph is acyclic.

namespace fixture {

class Mutex {};
class B;

class A {
 public:
  void ping() IDS_EXCLUDES(mu_);

 private:
  Mutex mu_;
  B* peer_;
};

class B {
 public:
  void pong() IDS_EXCLUDES(mu_);
  int depth() const;

 private:
  Mutex mu_;
};

void A::ping() {
  MutexLock lock(mu_);
  peer_->pong();  // A::mu_ -> B::mu_, the only ordering in this corpus
}

void B::pong() {
  MutexLock lock(mu_);
  // Leaf critical section: no calls that acquire other locks.
}

}  // namespace fixture
