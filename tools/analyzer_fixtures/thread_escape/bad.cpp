// Fixture (negative): state escaping into pool tasks. Two shapes
// ids-analyzer must flag under [thread-escape]:
//   1. tally() hands parallel_for a task that mutates the by-reference
//      captured local `total` — every worker shares the one slot.
//   2. Indexer::build hands submit() a task that bumps member count_
//      through the captured `this` without taking a lock.

namespace fixture {

class ThreadPool {
 public:
  void submit(const std::function<void()>& fn);
};

void parallel_for(int n, const std::function<void(int)>& fn);

long tally(int n) {
  long total = 0;
  parallel_for(n, [&](int i) {
    total += i;  // BAD: by-ref capture mutated by every worker
  });
  return total;
}

class Indexer {
 public:
  void build(ThreadPool& pool);

 private:
  long count_ = 0;
};

void Indexer::build(ThreadPool& pool) {
  pool.submit([this] {
    count_ += 1;  // BAD: member mutated through captured this, no lock
  });
}

}  // namespace fixture
