// Fixture (positive): tasks that share state safely. Per-rank slots are
// written through disjoint subscripts, cross-task counters are atomic or
// locked inside the task, and by-value captures copy into each task.

namespace fixture {

class ThreadPool {
 public:
  void submit(const std::function<void()>& fn);
  void wait_idle();
};

void parallel_for(int n, const std::function<void(int)>& fn);

void consume(long v);

long tally(ThreadPool& pool, int n) {
  std::vector<long> per_rank(static_cast<std::size_t>(n), 0);
  std::atomic<long> total{0};
  parallel_for(n, [&](int i) {
    per_rank[i] += i;    // per-rank slot: disjoint by construction
    total.fetch_add(i);  // atomic: safe to share by reference
  });
  long base = 7;
  pool.submit([base] { consume(base + 1); });  // by-value copy
  return total.load();
}

class Indexer {
 public:
  void build(ThreadPool& pool);

 private:
  Mutex mu_;
  long count_ IDS_GUARDED_BY(mu_) = 0;
};

void Indexer::build(ThreadPool& pool) {
  pool.submit([this] {
    MutexLock lock(mu_);
    count_ += 1;  // lock taken inside the task
  });
  pool.wait_idle();  // joins before returning: 'this' cannot dangle
}

}  // namespace fixture
