// Fixture (positive): every ingest-phase write is epoch-guarded. The
// public mutator checks IDS_CHECK(!frozen()) before touching the frozen
// field, the private helper uses IDS_DCHECK(!frozen()) (the sanctioned
// hot-path form), constructor writes are exempt (no concurrent observer
// exists yet), and the freeze method itself is exempt — it IS the epoch
// transition.

namespace fixture {

class Ledger {
 public:
  Ledger() { entries_.reserve(16); }
  void append(int v);
  void freeze();
  bool frozen() const { return frozen_.load(); }

 private:
  void intern(int v);

  std::vector<int> entries_ IDS_FROZEN_AFTER(freeze);
  std::atomic<bool> frozen_{false};
};

void Ledger::append(int v) {
  IDS_CHECK(!frozen()) << "Ledger::append after freeze()";
  intern(v);
}

void Ledger::intern(int v) {
  IDS_DCHECK(!frozen());
  entries_.push_back(v);
}

void Ledger::freeze() {
  if (frozen()) return;
  std::sort(entries_.begin(), entries_.end());
  frozen_.store(true);
}

}  // namespace fixture
