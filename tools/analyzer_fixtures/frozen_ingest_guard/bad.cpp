// Fixture (negative): an ingest-phase write with no epoch guard. Ledger
// declares entries_ IDS_FROZEN_AFTER(freeze) and defines the freeze
// method, but append() mutates the field without checking
// IDS_CHECK(!frozen()) first — a caller holding a stale handle could keep
// appending after the store was published to the serve phase, and nothing
// would abort. [frozen-ingest-guard] flags the write site; a positive
// assert on the frozen flag (as in audit()) does not count as a guard.

namespace fixture {

class Ledger {
 public:
  void append(int v);
  void audit(int v);
  void freeze();
  bool frozen() const { return frozen_; }

 private:
  std::vector<int> entries_ IDS_FROZEN_AFTER(freeze);
  bool frozen_ = false;
};

void Ledger::append(int v) { entries_.push_back(v); }

void Ledger::audit(int v) {
  IDS_CHECK(frozen()) << "audit only runs on a sealed ledger";
  entries_.push_back(v);
}

void Ledger::freeze() { frozen_ = true; }

}  // namespace fixture
