// Fixture (positive): the deterministic counterparts ids-analyzer must
// accept. stamp() still reads the wall clock but is annotated
// IDS_WALLCLOCK_OK (a sanctioned host-side measurement that never feeds
// modeled time), and jitter() draws from the seeded ids::Rng stand-in
// instead of a raw std engine, so the execute path is replayable.

namespace fixture {

class Rng {
 public:
  explicit Rng(unsigned long seed);
  unsigned long next_u64();
};

long stamp() IDS_WALLCLOCK_OK {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long jitter() {
  Rng rng(12345);  // deterministic: same seed, same stream
  return static_cast<long>(rng.next_u64());
}

class IdsEngine {
 public:
  long execute();
};

long IdsEngine::execute() {
  return stamp() + jitter();
}

}  // namespace fixture
