// Fixture (negative): nondeterminism reachable from the engine. Both
// shapes ids-analyzer must flag under [wallclock-in-engine]:
//   1. stamp() reads std::chrono::system_clock — a wall-clock read outside
//      src/telemetry/, and reachable from IdsEngine::execute to boot, so
//      modeled time silently depends on the host.
//   2. jitter() seeds a std::mt19937 — raw randomness on the execute path
//      instead of the deterministic ids::Rng.

namespace fixture {

long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // BAD
}

long jitter() {
  std::mt19937 gen(12345);  // BAD: raw RNG on the execute path
  return static_cast<long>(gen());
}

class IdsEngine {
 public:
  long execute();
};

long IdsEngine::execute() {
  return stamp() + jitter();
}

}  // namespace fixture
