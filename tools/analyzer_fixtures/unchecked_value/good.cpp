// Fixture (positive): every value()/status().message() access is
// dominated by an ok() check on the same variable — both the early-return
// shape and the IDS_CHECK(v.ok()) shape count.

namespace fixture {

class Status {
 public:
  const char* message() const;
};

template <typename T>
class Result {
 public:
  bool ok() const;
  T value() const;
  Status status() const;
};

Result<int> find_row(int key);

int guarded_lookup(int key) {
  auto row = find_row(key);
  if (!row.ok()) return -1;
  return row.value();
}

const char* guarded_error(int key) {
  auto row = find_row(key);
  if (row.ok()) return "no error";
  return row.status().message();
}

int checked_lookup(int key) {
  auto row = find_row(key);
  IDS_CHECK(row.ok()) << "row must exist";
  return row.value();
}

}  // namespace fixture
