// Fixture (negative): Result::value() and .status().message() reached
// without a dominating ok() check. On an error, value() aborts — the
// caller must branch on ok() first.

namespace fixture {

class Status {
 public:
  const char* message() const;
};

template <typename T>
class Result {
 public:
  bool ok() const;
  T value() const;
  Status status() const;
};

Result<int> find_row(int key);

int blind_lookup(int key) {
  auto row = find_row(key);
  return row.value();  // BAD: no ok() check dominates this access
}

const char* blind_error(int key) {
  auto row = find_row(key);
  return row.status().message();  // BAD: reads error details unguarded
}

}  // namespace fixture
