// Fixture (positive): detached-task captures the analyzer must accept —
// by-value captures (each task owns its copy), frames that join the pool
// before returning, parallel_for (which joins internally), by-ref
// captures of reference parameters (the caller owns the referent), and an
// audited IDS_VIEW_OK waiver for a pool whose shutdown joins everything.

namespace fixture {

class ThreadPool {
 public:
  void submit(const std::function<void()>& fn);
  void wait_idle();
};

void parallel_for(int n, const std::function<void(int)>& fn);

void consume(const std::vector<int>& v);
void bump(std::vector<long>& slots, int i);

void fire_by_value(ThreadPool& pool) {
  std::vector<int> rows = {1, 2, 3};
  pool.submit([rows] { consume(rows); });  // copy: task owns its rows
}

void fire_and_join(ThreadPool& pool) {
  std::vector<int> rows = {4, 5, 6};
  pool.submit([&rows] { consume(rows); });
  pool.wait_idle();  // joined: rows outlives the task
}

void fan_out(std::vector<long>& slots, int n) {
  parallel_for(n, [&slots](int i) {  // parallel_for joins before returning
    bump(slots, i);
  });
}

void relay(ThreadPool& pool, std::vector<int>& shared) {
  // `shared` is a reference parameter: its referent belongs to the
  // caller, which is responsible for outliving the pool.
  pool.submit([&shared] { consume(shared); });
}

class Loader {
 public:
  void kick(ThreadPool& pool) IDS_VIEW_OK("fixture: pool joins in ~Loader");

 private:
  std::atomic<long> loaded_{0};
};

void Loader::kick(ThreadPool& pool)
    IDS_VIEW_OK("fixture: pool joins in ~Loader") {
  pool.submit([this] { loaded_.fetch_add(1); });
}

}  // namespace fixture
