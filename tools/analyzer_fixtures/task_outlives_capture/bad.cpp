// Fixture (negative): detached tasks that capture frame state. Shapes
// ids-analyzer must flag under [task-outlives-capture]:
//   1. fire() submits a task capturing local `rows` by reference and
//      returns without joining — the task may run after `rows` is gone.
//   2. Loader::kick submits a task capturing `this` and returns; the
//      loader can be destroyed while the task still runs.
//   3. forward() reaches submit through a wrapper that forwards its
//      callable parameter (the async-spawner fixed point).

namespace fixture {

class ThreadPool {
 public:
  void submit(const std::function<void()>& fn);
  void wait_idle();
};

void consume(const std::vector<int>& v);

void fire(ThreadPool& pool) {
  std::vector<int> rows = {1, 2, 3};
  pool.submit([&rows] { consume(rows); });  // BAD: rows dies at return
}

class Loader {
 public:
  void kick(ThreadPool& pool);

 private:
  long loaded_ = 0;
};

void Loader::kick(ThreadPool& pool) {
  pool.submit([this] { loaded_ += 1; });  // BAD: this may dangle
}

void enqueue(ThreadPool& pool, const std::function<void()>& task) {
  pool.submit(task);  // wrapper: forwards its parameter to submit
}

void forward(ThreadPool& pool) {
  int budget = 9;
  enqueue(pool, [&budget] { budget -= 1; });  // BAD: via the wrapper
}

}  // namespace fixture
