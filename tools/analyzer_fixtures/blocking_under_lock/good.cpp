// Fixture (positive): the three sanctioned ways to combine locks and
// blocking work, all of which ids-analyzer must accept:
//   1. Store::flush snapshots state under the lock, then does the file
//      I/O after the guard's scope closes (the hoist the rule asks for).
//   2. Store::drain is annotated IDS_MAY_BLOCK — the author accepted the
//      blocking, and callers see the function as a sink instead.
//   3. Store::wait_idle blocks in cv_.wait(mu_, ...) — a condition-variable
//      wait that *releases* the held mutex is not a deadlock.

namespace fixture {

class Mutex {};
class CondVar {
 public:
  template <typename Pred>
  void wait(Mutex& mu, Pred pred);
};

void write_file(const char* path, const char* data) {
  std::ofstream out(path);  // blocking sink: file open
  out << data;
}

class Store {
 public:
  void flush() IDS_EXCLUDES(mu_);
  void drain() IDS_EXCLUDES(mu_) IDS_MAY_BLOCK;
  void wait_idle() IDS_EXCLUDES(mu_);

 private:
  Mutex mu_;
  CondVar cv_;
  const char* pending_;
  int backlog_;
};

void Store::flush() {
  const char* snapshot;
  {
    MutexLock lock(mu_);
    snapshot = pending_;  // copy out under the lock...
  }
  write_file("/tmp/store.dat", snapshot);  // ...block outside it
}

void Store::drain() {
  MutexLock lock(mu_);
  write_file("/tmp/store.dat", pending_);  // accepted via IDS_MAY_BLOCK
}

void Store::wait_idle() {
  MutexLock lock(mu_);
  cv_.wait(mu_, [this] { return backlog_ == 0; });  // releases mu_ while waiting
}

}  // namespace fixture
