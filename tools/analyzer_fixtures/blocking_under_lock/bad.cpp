// Fixture (negative): blocking work inside a critical section. Two
// shapes ids-analyzer must flag under [blocking-under-lock]:
//   1. Store::flush calls write_file while holding Store::mu_, and
//      write_file transitively blocks (it opens a std::ofstream) — the
//      interprocedural summary carries the sink to the call site.
//   2. Store::nap sleeps directly (std::this_thread::sleep_for is an
//      external blocking sink) while holding the same lock.

namespace fixture {

class Mutex {};

void write_file(const char* path, const char* data) {
  std::ofstream out(path);  // blocking sink: file open
  out << data;
}

class Store {
 public:
  void flush() IDS_EXCLUDES(mu_);
  void nap() IDS_EXCLUDES(mu_);

 private:
  Mutex mu_;
  const char* pending_;
};

void Store::flush() {
  MutexLock lock(mu_);
  write_file("/tmp/store.dat", pending_);  // BAD: blocks while mu_ held
}

void Store::nap() {
  MutexLock lock(mu_);
  std::this_thread::sleep_for(backoff());  // BAD: sleeps while mu_ held
}

}  // namespace fixture
