// Fixture (negative): racy writes in a mutex-owning class. Two shapes
// ids-analyzer must flag under [guarded-by]:
//   1. Counter::hit_rate_ is written with mu_ held in record() but with
//      no lock at all in reset() — inconsistent locking on one field.
//   2. Counter::total_ is only ever written under the lock, but carries
//      no IDS_GUARDED_BY annotation, so Clang's thread-safety analysis
//      cannot check any of its accesses.

namespace fixture {

class Counter {
 public:
  void record(double v);
  void reset();

 private:
  Mutex mu_;
  double hit_rate_ = 0.0;
  long total_ = 0;
};

void Counter::record(double v) {
  MutexLock lock(mu_);
  hit_rate_ = v;  // BAD shape 1: locked here...
  total_ += 1;    // BAD shape 2: no IDS_GUARDED_BY on total_
}

void Counter::reset() {
  hit_rate_ = 0.0;  // BAD shape 1: ...but not here
}

}  // namespace fixture
