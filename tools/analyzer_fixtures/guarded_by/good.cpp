// Fixture (positive): the same shape with the locking contract declared.
// hit_rate_ and total_ are annotated IDS_GUARDED_BY(mu_) — exercising the
// annotation-plus-initializer declarator parse — and every write takes
// the lock; hits_ is atomic and needs no lock at all.

namespace fixture {

class Counter {
 public:
  void record(double v);
  void reset();

 private:
  Mutex mu_;
  double hit_rate_ IDS_GUARDED_BY(mu_) = 0.0;
  long total_ IDS_GUARDED_BY(mu_) = 0;
  std::atomic<long> hits_{0};
};

void Counter::record(double v) {
  MutexLock lock(mu_);
  hit_rate_ = v;
  total_ += 1;
  hits_.fetch_add(1);
}

void Counter::reset() {
  MutexLock lock(mu_);
  hit_rate_ = 0.0;
}

}  // namespace fixture
