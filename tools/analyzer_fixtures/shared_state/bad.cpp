// Fixture (negative): shared mutable state on the execute path. Three
// shapes `--certify=concurrent-exec` must flag under [shared-state]:
//   1. IdsEngine::served_ is a plain member written during execute().
//   2. execute() keeps a mutable function-local static cursor.
//   3. g_queries is a mutable namespace-scope global.
// None of these fire in default mode — [shared-state] is certify-only.

namespace fixture {

long g_queries = 0;

class IdsEngine {
 public:
  int execute();

 private:
  long served_ = 0;
};

int IdsEngine::execute() {
  static int cursor = 0;
  ++cursor;
  served_ += 1;
  g_queries += 1;
  return cursor;
}

}  // namespace fixture
