// Fixture (positive): everything execute() reaches is immutable, guarded,
// atomic, or explicitly waived — the certificate passes, and the waiver
// lands in the inventory as the concurrent-serving worklist entry.

namespace fixture {

const long kQueryLimit = 64;

class IdsEngine {
 public:
  int execute();

 private:
  Mutex mu_;
  long served_ IDS_GUARDED_BY(mu_) = 0;
  std::atomic<long> ticks_{0};
  std::vector<int> scratch_ IDS_SINGLE_QUERY_ONLY(fixture_scratch_reuse);
};

int IdsEngine::execute() {
  static constexpr int kBatch = 8;
  {
    MutexLock lock(mu_);
    served_ += 1;
  }
  ticks_.fetch_add(1);
  scratch_.push_back(kBatch);
  return static_cast<int>(kQueryLimit);
}

}  // namespace fixture
