// Fixture (negative): a Status discarded through a thin forwarding
// wrapper. flush_soon()'s declared return type is the alias FlushOutcome,
// which the textual return classifier cannot recognize — but its body is
// exactly `return flush_now(...);` and flush_now returns Status, so the
// wrapper inference marks it Status-returning. Dropping its result must
// be flagged under [wrapper-discarded-status].

namespace fixture {

class Status {
 public:
  bool ok() const;
};

using FlushOutcome = Status;

Status flush_now(int fd);

FlushOutcome flush_soon(int fd) {
  return flush_now(fd);  // thin wrapper: forwards the callee's Status
}

void checkpoint(int fd) {
  flush_soon(fd);  // BAD: the forwarded Status is silently discarded
}

}  // namespace fixture
