// Fixture (positive): the same alias-returning wrapper as bad.cpp, but
// every call site consumes the forwarded Status — by assignment, by a
// control-flow test, or via the explicit IDS_IGNORE_ERROR escape hatch.
// ids-analyzer must accept this file.

namespace fixture {

class Status {
 public:
  bool ok() const;
};

using FlushOutcome = Status;

Status flush_now(int fd);

FlushOutcome flush_soon(int fd) {
  return flush_now(fd);  // thin wrapper: forwards the callee's Status
}

int checkpoint(int fd) {
  FlushOutcome st = flush_soon(fd);     // consumed: assignment
  if (!st.ok()) return -1;
  if (!flush_soon(fd).ok()) return -1;  // consumed: condition
  IDS_IGNORE_ERROR(flush_soon(fd));     // consumed: sanctioned discard
  return 0;
}

}  // namespace fixture
