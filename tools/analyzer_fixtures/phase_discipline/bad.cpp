// Fixture (negative): four breaks of the ingest→freeze→serve discipline
// [phase-discipline] must flag on IDS_FROZEN_AFTER fields:
//   1. Catalog::rows_ names a freeze method (`seal`) the class never
//      defines — the epoch transition cannot happen.
//   2. Index::cache_ is mutable — the lazy-prepare shape where a "const"
//      read path populates state on first use; preparation belongs in the
//      freeze method, eagerly.
//   3. Store::vals_ is written by Store::touch, and IdsEngine::execute
//      reaches touch through a unique call edge — a serve-phase mutation.
//   4. Postings::commit is the freeze method, and execute calls it — the
//      serve phase must never trigger the epoch transition itself.

namespace fixture {

class Catalog {
 public:
  void add(int v);

 private:
  std::vector<int> rows_ IDS_FROZEN_AFTER(seal);
};

void Catalog::add(int v) { rows_.push_back(v); }

class Index {
 public:
  void freeze();
  bool frozen() const { return frozen_; }

 private:
  mutable std::vector<int> cache_ IDS_FROZEN_AFTER(freeze);
  bool frozen_ = false;
};

void Index::freeze() { frozen_ = true; }

class Store {
 public:
  void publish();
  void touch(int v);

 private:
  std::vector<int> vals_ IDS_FROZEN_AFTER(publish);
};

void Store::publish() {}

void Store::touch(int v) { vals_.push_back(v); }

class Postings {
 public:
  void commit();

 private:
  std::vector<int> lists_ IDS_FROZEN_AFTER(commit);
};

void Postings::commit() {}

class IdsEngine {
 public:
  int execute();

 private:
  Store store_;
  Postings postings_;
};

int IdsEngine::execute() {
  store_.touch(1);
  postings_.commit();
  return 0;
}

}  // namespace fixture
