// Fixture (positive): the ingest→freeze→serve discipline done right.
// Store defines the freeze method its IDS_FROZEN_AFTER annotation names,
// the field is not mutable (preparation happens eagerly inside freeze()),
// every ingest write is epoch-guarded, and IdsEngine::execute only reads
// — neither a write to the frozen field nor freeze() itself is reachable
// from the serve phase.

namespace fixture {

class Store {
 public:
  void add(int v);
  void freeze();
  bool frozen() const { return frozen_.load(); }
  int sum() const;

 private:
  std::vector<int> vals_ IDS_FROZEN_AFTER(freeze);
  std::atomic<bool> frozen_{false};
};

void Store::add(int v) {
  IDS_CHECK(!frozen()) << "Store::add after freeze(); reopen first";
  vals_.push_back(v);
}

void Store::freeze() {
  if (frozen()) return;
  std::sort(vals_.begin(), vals_.end());
  frozen_.store(true);
}

int Store::sum() const {
  int s = 0;
  for (int v : vals_) s += v;
  return s;
}

class IdsEngine {
 public:
  int execute();

 private:
  Store store_;
};

int IdsEngine::execute() { return store_.sum(); }

}  // namespace fixture
