// Fixture (negative): views used after the backing storage may have
// moved. Four shapes ids-analyzer must flag under [view-invalidation]:
//   1. scan() keeps a pointer from names.data() across a push_back.
//   2. first_term() holds a reference to terms.front() across an insert.
//   3. Table::append_all uses a span into a member column after calling
//      its own grow() — the summary inference propagates grow()'s
//      ids_.resize fact to the call site.
//   4. Registry::swap_in reads a view after std::move gutted the owner.

namespace fixture {

int scan(int n) {
  std::vector<int> names;
  names.push_back(1);
  const int* p = names.data();
  names.push_back(2);  // BAD: may reallocate; p dangles
  return *p + n;
}

int first_term() {
  std::vector<int> terms;
  terms.push_back(3);
  const int& first = terms.front();
  terms.insert(terms.begin(), 4);  // BAD: relocation invalidates `first`
  return first;
}

class Table {
 public:
  void append_all(int n);

 private:
  void grow();
  std::vector<int> ids_;
};

void Table::grow() { ids_.resize(ids_.size() * 2 + 1); }

void Table::append_all(int n) {
  const int* base = ids_.data();
  grow();  // BAD: reaches ids_.resize via the invalidation summary
  for (int i = 0; i < n; ++i) consume(base[i]);
}

class Registry {
 public:
  long swap_in(std::vector<long> next);

 private:
  std::vector<long> rows_;
};

long Registry::swap_in(std::vector<long> next) {
  const long* head = rows_.data();
  rows_ = std::move(next);
  return head[0];  // BAD: the old buffer died with the assignment
}

}  // namespace fixture
