// Fixture (positive): view lifetimes the analyzer must accept — views
// re-derived after the mutation, stable-storage mutators
// (IDS_STABLE_STORAGE), the sanctioned erase-loop idiom (the iterator is
// reassigned from erase's return before it is read again), mutation of a
// *different* container, and an audited IDS_VIEW_OK waiver.

namespace fixture {

int rederive(int n) {
  std::vector<int> names;
  names.push_back(1);
  names.push_back(2);
  const int* p = names.data();  // derived after every mutation
  return p[0] + n;
}

int other_container() {
  std::vector<int> a;
  std::vector<int> b;
  a.push_back(1);
  const int* pa = a.data();
  b.push_back(2);  // mutating b leaves views into a alone
  return *pa;
}

class Arena {
 public:
  // Deque-style storage: growth never moves settled elements.
  void push(int v) IDS_STABLE_STORAGE;
  const int* head() const;
};

int stable(Arena& arena) {
  const int* h = arena.head();
  arena.push(5);  // IDS_STABLE_STORAGE: h stays valid
  return *h;
}

void erase_loop(std::vector<int>& v) {
  for (auto it = v.begin(); it != v.end();) {
    if (*it < 0) {
      it = v.erase(it);  // reassigned before any further read
    } else {
      ++it;
    }
  }
}

int waived(std::vector<int>& v) IDS_VIEW_OK("fixture: capacity reserved out of band") {
  const int* p = v.data();
  v.push_back(9);
  return *p;
}

}  // namespace fixture
