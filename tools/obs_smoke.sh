#!/usr/bin/env bash
# Observability-plane smoke: runs the NCNPR workflow with the in-process
# exposition server and the sampling profiler on, scrapes every endpoint
# over loopback during the post-run hold window (as an operator with curl
# would), and asserts the ids_* metric families, the retained query
# traces, and non-empty named-scope flamegraph stacks.
#
# Usage: tools/obs_smoke.sh WORKFLOW_BINARY [OUT_DIR]
#   WORKFLOW_BINARY  path to a built examples/ncnpr_workflow
#   OUT_DIR          scratch dir for logs/profile (default: mktemp -d)

set -eu

if [ $# -lt 1 ] || [ ! -x "$1" ]; then
  echo "usage: $0 WORKFLOW_BINARY [OUT_DIR]" >&2
  exit 2
fi
workflow="$1"
if [ $# -ge 2 ]; then
  outdir="$2"
  mkdir -p "$outdir"
  cleanup=""
else
  outdir=$(mktemp -d)
  cleanup="$outdir"
fi
obs_pid=""
trap '[ -n "$obs_pid" ] && kill "$obs_pid" 2>/dev/null; [ -n "$cleanup" ] && rm -rf "$cleanup"' EXIT

"$workflow" --serve-obs 0 --profile "$outdir/profile.folded" --hold-obs 10 \
  > "$outdir/obs.log" 2>&1 &
obs_pid=$!

# The workflow binds port 0 (kernel-assigned, no collisions on a busy
# runner) and prints + flushes the listening banner as soon as the server
# is up, so the actual port is discoverable well before the queries run.
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's#^obs server listening on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' \
           "$outdir/obs.log")
  [ -n "$port" ] && break
  if ! kill -0 "$obs_pid" 2>/dev/null; then
    echo "obs smoke: workflow died before the server came up:" >&2
    cat "$outdir/obs.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "obs smoke: server never printed the listening banner:" >&2
  cat "$outdir/obs.log" >&2
  exit 1
fi

# The hold banner marks both queries done and the server idle-serving —
# that is when /statusz and /tracez carry the full run. Sanitizer builds
# can take a while to get there, so poll generously with a liveness check
# instead of a short fixed window.
held=""
for _ in $(seq 1 600); do
  if grep -q '^holding obs server for ' "$outdir/obs.log"; then
    held=1
    break
  fi
  if ! kill -0 "$obs_pid" 2>/dev/null; then
    echo "obs smoke: workflow died before the hold phase:" >&2
    cat "$outdir/obs.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$held" ]; then
  echo "obs smoke: server never reached the hold phase:" >&2
  cat "$outdir/obs.log" >&2
  exit 1
fi

if command -v python3 > /dev/null 2>&1; then
  python3 - "$port" <<'EOF'
import sys, urllib.request
port = sys.argv[1]
def fetch(path):
    with urllib.request.urlopen("http://127.0.0.1:%s%s" % (port, path),
                                timeout=5) as r:
        return r.read().decode()
metrics = fetch("/metrics")
for family in ("ids_engine_queries_total", "ids_cache_hits_total{",
               "ids_query_rows_gathered_total", "ids_query_wall_seconds_"):
    assert family in metrics, "missing %s in live /metrics" % family
statusz = fetch("/statusz")
for key in ('"build_type":', '"simd_level":', '"queries":{"total":2'):
    assert key in statusz, "missing %s in /statusz" % key
assert "trace #" in fetch("/tracez"), "/tracez lost the query traces"
folded = fetch("/profilez?fmt=folded")
assert folded.strip(), "/profilez?fmt=folded is empty"
for line in folded.strip().splitlines():
    path, _, count = line.rpartition(" ")
    assert path and int(count) > 0, "unnamed profile sample: %r" % line
print("obs smoke: /metrics /statusz /tracez /profilez all serving")
EOF
else
  echo "obs smoke: python3 unavailable, skipping live scrape" >&2
fi

wait "$obs_pid" || { echo "obs smoke: workflow exited nonzero" >&2; exit 1; }
obs_pid=""
[ -s "$outdir/profile.folded" ] || {
  echo "obs smoke: --profile wrote no folded stacks" >&2
  exit 1
}
grep -q 'engine.query' "$outdir/profile.folded" || {
  echo "obs smoke: folded output lacks engine.query frames" >&2
  exit 1
}
echo "obs smoke: OK"
