#pragma once

// Thread-escape analysis for ids-analyzer's concurrency layer.
//
// A *spawner* is a function that hands a callable to the thread pool:
// ThreadPool::submit / ThreadPool::parallel_for themselves, plus — by a
// fixed point over the call graph — every function that forwards one of
// its own parameters into a spawner call (runtime::for_each_rank wraps
// parallel_for this way). At each spawner call site the analysis parses
// the lambda arguments, resolves their captures, and flags state that is
// captured by reference (or reached through a captured `this`) and then
// mutated inside the task body without a guarding MutexLock, an atomic
// type, an IDS_GUARDED_BY/IDS_SINGLE_QUERY_ONLY annotation, or an
// internally-synchronized receiver class.
//
// The sanctioned per-rank pattern — `dst[rank] = ...` indexed writes into
// disjoint slots — is exempt by construction: any subscripted access is
// assumed rank-partitioned (the analysis cannot prove disjointness, and
// the codebase's parallel loops all use it deliberately).

#include <set>
#include <string>
#include <vector>

#include "corpus.h"
#include "field_access.h"

namespace ids::analyzer {

/// The spawner fixed point (see above). Seeded by name so fixture code
/// with a stub `pool.parallel_for(...)` resolves without a full
/// ThreadPool definition in the corpus.
std::set<const MergedFunc*> compute_spawners(const Corpus& corpus);

/// Like compute_spawners but seeded with `submit` only — the detached-task
/// entry points whose callable may outlive the submitting frame.
/// parallel_for stays out: it joins before returning, so its captures
/// cannot dangle. Feeds [task-outlives-capture].
std::set<const MergedFunc*> compute_async_spawners(const Corpus& corpus);

struct EscapeFinding {
  std::string path;
  int line = 0;
  std::string message;
};

/// Scans every function body for lambdas passed to spawner calls and
/// returns the unprotected mutations of escaped state.
std::vector<EscapeFinding> find_escapes(
    const Corpus& corpus, const FieldTable& fields,
    const std::set<const MergedFunc*>& spawners);

/// Scans every function body for lambdas handed to an *async* spawner
/// (compute_async_spawners) in a frame that never joins the task — no
/// wait/get/join/drain call between the submit and the end of the body.
/// By-reference and `this` captures of such a task dangle if the task
/// outlives the frame; each one becomes a finding. IDS_VIEW_OK(reason) on
/// the submitting function waives it. Feeds [task-outlives-capture].
std::vector<EscapeFinding> find_task_lifetime(
    const Corpus& corpus, const std::set<const MergedFunc*>& async_spawners);

}  // namespace ids::analyzer
