// Concurrency-readiness rules and the shared-state certificate.
//
// [guarded-by]   Per-field write-site × held-lock inference on classes
//                that own an ids::Mutex: a field written under the lock on
//                some paths but not others, or written anywhere without an
//                IDS_GUARDED_BY annotation, is a latent race the Clang
//                thread-safety analysis cannot see (it only checks
//                annotations that were written).
// [thread-escape] Captured state mutated inside tasks handed to
//                ThreadPool::submit/parallel_for (escape.h).
// [shared-state] --certify=concurrent-exec: everything transitively
//                reachable from IdsEngine::execute — class members via the
//                field-type closure, function-local statics via call-graph
//                reachability (over-approximated edges, as for the clock
//                rule: missing a virtual dispatch would hide a race),
//                namespace-scope globals unconditionally — classified as
//                const-after-init / guarded / frozen-after-init / atomic /
//                sync-primitive / internally-synchronized / waived, with
//                everything else a violation. The machine-readable
//                inventory goes to stdout and is committed as
//                tools/concurrency_certificate.json. IDS_FROZEN_AFTER
//                fields land on the frozen-after-init rung only when the
//                phase analysis (phase.h) proves their ingest→freeze→serve
//                discipline; a phase violation is a certificate violation.

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "analysis.h"
#include "escape.h"
#include "field_access.h"
#include "phase.h"

namespace ids::analyzer {
namespace {

bool class_internally_synchronized(const std::string& type_class,
                                   const Corpus& corpus,
                                   const FieldTable& t) {
  // corpus.classes, not corpus.merged: a method-less struct (a lock-plus-
  // guarded-map shard, say) never appears in the merged function table but
  // is still a class whose safety the field table settled.
  return !type_class.empty() && corpus.classes.count(type_class) != 0 &&
         t.class_safe(type_class) && t.mutable_trap.count(type_class) == 0;
}

void run_guarded_by(Analysis& a, const FieldTable& t) {
  if (!a.rule_enabled("guarded-by")) return;
  for (std::size_t idx = 0; idx < t.fields.size(); ++idx) {
    const FieldInfo& fi = t.fields[idx];
    if (fi.klass.empty() || t.class_has_mutex.count(fi.klass) == 0) continue;
    if (fi.protected_state() || fi.is_static) continue;
    const std::vector<WriteSite>* all = t.sites(idx);
    if (all == nullptr) continue;
    std::vector<const WriteSite*> locked, unlocked;
    for (const WriteSite& ws : *all) {
      if (ws.in_ctor) continue;
      (ws.under_lock ? locked : unlocked).push_back(&ws);
    }
    if (locked.empty() && unlocked.empty()) continue;
    if (!locked.empty() && !unlocked.empty()) {
      const WriteSite& bad = *unlocked.front();
      const WriteSite& good = *locked.front();
      a.findings.push_back(
          {"guarded-by", bad.path, bad.line,
           "field '" + fi.qualified() + "' is written with '" + good.lock +
               "' held at " + good.path + ":" + std::to_string(good.line) +
               " but with no lock here; annotate it IDS_GUARDED_BY and take "
               "the lock on every write",
           {},
           false});
    } else {
      const WriteSite& site =
          *(locked.empty() ? unlocked.front() : locked.front());
      std::string hint =
          locked.empty()
              ? "annotate it IDS_GUARDED_BY(<mutex>) and guard the writes, "
                "make it atomic, or waive it with IDS_SINGLE_QUERY_ONLY"
              : "annotate it IDS_GUARDED_BY(" + site.lock.substr(
                    site.lock.rfind("::") == std::string::npos
                        ? 0
                        : site.lock.rfind("::") + 2) +
                    ") so the Clang thread-safety analysis can check every "
                    "access";
      a.findings.push_back(
          {"guarded-by", site.path, site.line,
           "field '" + fi.qualified() + "' of mutex-owning class '" +
               fi.klass + "' is written ('" + site.detail +
               "') without an IDS_GUARDED_BY annotation; " + hint,
           {},
           false});
    }
  }
}

void run_thread_escape(Analysis& a, const FieldTable& t) {
  if (!a.rule_enabled("thread-escape")) return;
  const Corpus& corpus = *a.corpus;
  std::set<const MergedFunc*> spawners = compute_spawners(corpus);
  for (const EscapeFinding& e : find_escapes(corpus, t, spawners)) {
    a.findings.push_back({"thread-escape", e.path, e.line, e.message, {},
                          false});
  }
}

// --- certificate ------------------------------------------------------------

struct Entry {
  std::string name;    // field/static/global name (qualified for statics)
  std::string status;  // const-after-init | guarded | atomic | ...
  std::string detail;  // guard node, waiver reason, or type class
  std::string path;
  int line = 0;
  bool violation() const { return status == "violation"; }
};

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void emit_entry(std::ostream& os, const char* indent, const Entry& e,
                const char* key, bool last) {
  os << indent << "{\"" << key << "\": " << json_str(e.name)
     << ", \"status\": " << json_str(e.status);
  if (!e.detail.empty()) os << ", \"detail\": " << json_str(e.detail);
  if (!e.path.empty()) os << ", \"file\": " << json_str(e.path);
  os << "}" << (last ? "" : ",") << "\n";
}

/// Classifies a non-member declaration (function-local static or
/// namespace-scope global) against the certificate ladder.
Entry classify_standalone(const FieldInfo& fi, const Corpus& corpus,
                          const FieldTable& t) {
  Entry e;
  e.name = fi.name;
  e.path = fi.path;
  e.line = fi.line;
  if (!fi.waiver.empty()) {
    e.status = "waived";
    e.detail = fi.waiver;
  } else if (fi.is_sync) {
    e.status = "sync-primitive";
  } else if (fi.is_atomic) {
    e.status = "atomic";
  } else if (class_internally_synchronized(fi.type_class, corpus, t)) {
    e.status = "internally-synchronized";
    e.detail = fi.type_class;
  } else {
    e.status = "violation";
  }
  return e;
}

}  // namespace

void run_concurrency_rules(Analysis& a) {
  FieldTable t = build_field_table(*a.corpus);
  run_guarded_by(a, t);
  run_thread_escape(a, t);
}

std::size_t run_certificate(Analysis& a, std::ostream& os, bool* root_found) {
  const Corpus& corpus = *a.corpus;
  *root_found = false;
  auto ci = corpus.merged.find("IdsEngine");
  if (ci == corpus.merged.end()) return 0;
  auto mi = ci->second.find("execute");
  if (mi == ci->second.end()) return 0;
  *root_found = true;
  const MergedFunc* root = &mi->second;

  FieldTable t = build_field_table(corpus);
  PhaseAnalysis phases = analyze_phases(corpus, *a.graph, t);

  // Class closure over field types, rooted at the engine. A waived field
  // cuts its subtree: its object is owned by the single-query contract the
  // waiver records, so inventorying its internals would be noise. A
  // guarded field cuts it too — the annotated mutex protects the whole
  // object, and Clang's analysis already checks every access to it — and
  // so does a frozen field: the phase analysis proves it immutable after
  // its freeze method, so its internals cannot race either.
  std::set<std::string> closure = {"IdsEngine"};
  std::vector<std::string> queue = {"IdsEngine"};
  while (!queue.empty()) {
    std::string c = queue.back();
    queue.pop_back();
    auto bc = t.by_class.find(c);
    if (bc == t.by_class.end()) continue;
    for (const auto& [name, idx] : bc->second) {
      const FieldInfo& fi = t.fields[idx];
      if (!fi.waiver.empty() || !fi.guarded_by.empty() ||
          !fi.frozen_after.empty()) {
        continue;
      }
      if (fi.type_class.empty()) continue;
      if (closure.insert(fi.type_class).second) {
        queue.push_back(fi.type_class);
      }
    }
  }

  std::size_t violations = 0;
  std::size_t const_fields = 0;
  std::map<std::string, std::vector<Entry>> classes;  // class -> entries
  std::map<std::string, std::size_t> status_counts;

  auto record = [&](const std::string& klass, Entry e,
                    const std::string& report_name) {
    status_counts[e.status] += 1;
    if (e.violation()) {
      ++violations;
      a.findings.push_back(
          {"shared-state", e.path, e.line,
           report_name + " is reachable from IdsEngine::execute but is "
           "neither const, guarded, atomic, internally synchronized, "
           "phase-frozen (IDS_FROZEN_AFTER), nor IDS_SINGLE_QUERY_ONLY-"
           "waived (" + e.detail +
           "); concurrent queries would race on it",
           {},
           false});
    }
    classes[klass].push_back(std::move(e));
  };

  for (const std::string& c : closure) {
    auto bc = t.by_class.find(c);
    if (bc == t.by_class.end()) continue;
    classes[c];  // deterministic: every closure class appears
    for (const auto& [name, idx] : bc->second) {
      const FieldInfo& fi = t.fields[idx];
      if (fi.is_const) {
        ++const_fields;
        status_counts["const"] += 1;
        continue;  // immutable by declaration: not inventoried
      }
      Entry e;
      e.name = fi.name;
      e.path = fi.path;
      e.line = fi.line;
      if (!fi.waiver.empty()) {
        e.status = "waived";
        e.detail = fi.waiver;
      } else if (fi.is_sync) {
        e.status = "sync-primitive";
      } else if (fi.is_atomic) {
        e.status = "atomic";
      } else if (!fi.guarded_by.empty()) {
        e.status = "guarded";
        e.detail = fi.guarded_by;
      } else if (!fi.frozen_after.empty()) {
        // The rung is earned, not declared: the phase analysis must have
        // proven the ingest→freeze→serve discipline for this field.
        if (phases.field_ok(idx)) {
          e.status = "frozen-after-init";
          e.detail = fi.frozen_after;
        } else {
          e.status = "violation";
          e.detail = "IDS_FROZEN_AFTER(" + fi.frozen_after +
                     ") phase contract not proven; run the phase-discipline"
                     "/frozen-ingest-guard rules for the sites";
        }
      } else if (fi.is_mutable &&
                 !class_internally_synchronized(fi.type_class, corpus, t)) {
        e.status = "violation";
        e.detail = "mutable member written behind const access paths";
      } else {
        const std::vector<WriteSite>* sites = t.sites(idx);
        const WriteSite* bad = nullptr;
        if (sites != nullptr) {
          for (const WriteSite& ws : *sites) {
            if (!ws.in_ctor) {
              bad = &ws;
              break;
            }
          }
        }
        if (bad != nullptr) {
          e.status = "violation";
          e.detail = "written at " + bad->path + ":" +
                     std::to_string(bad->line) + " ('" + bad->detail + "')";
        } else {
          e.status = "const-after-init";
        }
      }
      record(c, std::move(e), "member '" + fi.qualified() + "'");
    }
  }

  // Function-local statics in bodies reachable from the engine.
  std::set<const MergedFunc*> reach = a.graph->reachable_from({root});
  std::map<std::string, Entry> statics;  // qualified name -> entry
  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    auto fci = corpus.merged.find(fn.klass);
    if (fci == corpus.merged.end()) continue;
    auto fmi = fci->second.find(fn.name);
    if (fmi == fci->second.end() || reach.count(&fmi->second) == 0) continue;
    const FileData& f = *fn.file;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (!tok_ident(f.toks[i]) || !tok_is(f.toks[i], "static")) continue;
      std::size_t j = i + 1;
      while (j < fn.body_end && !tok_is(f.toks[j], ";")) {
        if ((tok_is(f.toks[j], "(") || tok_is(f.toks[j], "{") ||
             tok_is(f.toks[j], "[")) &&
            f.partner[j] != kNone && f.partner[j] < fn.body_end) {
          j = f.partner[j];
        }
        ++j;
      }
      FieldInfo fi;
      if (!parse_decl_span(f, i, j, "", corpus, &fi)) {
        i = j;
        continue;
      }
      if (fi.is_const) {
        ++const_fields;
        status_counts["const"] += 1;
        i = j;
        continue;
      }
      Entry e = classify_standalone(fi, corpus, t);
      e.name = fmi->second.qualified() + "::" + fi.name;
      if (e.violation()) e.detail = "function-local static";
      auto [it, inserted] = statics.insert({e.name, e});
      if (inserted) {
        status_counts[e.status] += 1;
        if (e.violation()) {
          ++violations;
          a.findings.push_back(
              {"shared-state", e.path, e.line,
               "function-local static '" + e.name +
                   "' is reachable from IdsEngine::execute but is neither "
                   "const, atomic, internally synchronized, nor "
                   "IDS_SINGLE_QUERY_ONLY-waived; concurrent queries would "
                   "race on its mutation",
               {},
               false});
        }
      }
      i = j;
    }
  }

  // Namespace-scope globals: shared by construction, engine-reachable or
  // not — a process serving concurrent queries shares every one of them.
  std::vector<Entry> globals;
  for (const FieldInfo& fi : t.globals) {
    if (fi.is_const) {
      ++const_fields;
      status_counts["const"] += 1;
      continue;
    }
    Entry e = classify_standalone(fi, corpus, t);
    if (e.violation()) {
      ++violations;
      a.findings.push_back(
          {"shared-state", e.path, e.line,
           "namespace-scope global '" + e.name +
               "' is mutable shared state; make it const, atomic, "
               "internally synchronized, or waive it with "
               "IDS_SINGLE_QUERY_ONLY",
           {},
           false});
    }
    status_counts[e.status] += 1;
    globals.push_back(std::move(e));
  }

  // --- machine-readable inventory (committed; CI diffs it) ---------------
  os << "{\n"
     << "  \"certificate\": \"concurrent-exec\",\n"
     << "  \"root\": \"IdsEngine::execute\",\n"
     << "  \"classes\": [\n";
  std::size_t ck = 0;
  for (const auto& [klass, entries] : classes) {
    os << "    {\"class\": " << json_str(klass) << ", \"fields\": [";
    if (entries.empty()) {
      os << "]}";
    } else {
      os << "\n";
      for (std::size_t k = 0; k < entries.size(); ++k) {
        emit_entry(os, "      ", entries[k], "field",
                   k + 1 == entries.size());
      }
      os << "    ]}";
    }
    os << (++ck == classes.size() ? "" : ",") << "\n";
  }
  os << "  ],\n"
     << "  \"statics\": [\n";
  std::size_t sk = 0;
  for (const auto& [name, e] : statics) {
    emit_entry(os, "    ", e, "static", ++sk == statics.size());
  }
  os << "  ],\n"
     << "  \"globals\": [\n";
  for (std::size_t k = 0; k < globals.size(); ++k) {
    emit_entry(os, "    ", globals[k], "global", k + 1 == globals.size());
  }
  os << "  ],\n"
     << "  \"summary\": {\n"
     << "    \"classes\": " << classes.size() << ",\n"
     << "    \"const\": " << const_fields << ",\n";
  for (const char* s : {"const-after-init", "guarded", "frozen-after-init",
                        "sync-primitive", "atomic",
                        "internally-synchronized", "waived"}) {
    os << "    \"" << s << "\": " << status_counts[s] << ",\n";
  }
  os << "    \"violations\": " << violations << "\n"
     << "  }\n"
     << "}\n";
  return violations;
}

}  // namespace ids::analyzer
