// Phase/epoch analysis: the IDS_FROZEN_AFTER rule family (phase.h has
// the contract). analyze_phases() is the shared engine; run_phase_rules
// reports its violations in default mode, and run_certificate consults
// field_ok() to place frozen fields on the `frozen-after-init` rung.

#include "phase.h"

#include <string>

#include "analysis.h"
#include "field_access.h"

namespace ids::analyzer {
namespace {

const MergedFunc* lookup_merged(const Corpus& corpus, const std::string& klass,
                                const std::string& name) {
  auto ci = corpus.merged.find(klass);
  if (ci == corpus.merged.end()) return nullptr;
  auto mi = ci->second.find(name);
  return mi == ci->second.end() ? nullptr : &mi->second;
}

/// True when `fn`'s body contains an epoch guard: IDS_CHECK/IDS_DCHECK
/// whose argument negates a frozen query — `IDS_CHECK(!frozen())`,
/// `IDS_DCHECK(!store.frozen())`. A positive assert (IDS_CHECK(frozen()))
/// is a serve-side precondition, not an ingest guard, and does not count.
bool has_ingest_guard(const FuncDecl& fn) {
  const FileData& f = *fn.file;
  for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    if (!tok_ident(f.toks[i])) continue;
    const std::string& n = f.toks[i].text;
    if (n != "IDS_CHECK" && n != "IDS_DCHECK") continue;
    if (!tok_is(f.toks[i + 1], "(") || f.partner[i + 1] == kNone) continue;
    const std::size_t close = f.partner[i + 1];
    bool saw_not = false;
    for (std::size_t k = i + 2; k < close && k < fn.body_end; ++k) {
      if (tok_is(f.toks[k], "!")) {
        saw_not = true;
      } else if (saw_not && tok_ident(f.toks[k]) &&
                 f.toks[k].text.rfind("frozen", 0) == 0) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

PhaseAnalysis analyze_phases(const Corpus& corpus, const CallGraph& graph,
                             const FieldTable& table) {
  PhaseAnalysis out;

  // Serve phase = unique-edge reachability from IdsEngine::execute. A
  // corpus without the engine (fixtures, the analyzer itself) has no
  // serve phase and the reachability set stays empty.
  std::set<const MergedFunc*> serve;
  if (const MergedFunc* root = lookup_merged(corpus, "IdsEngine", "execute")) {
    serve = graph.reachable_from_unique({root});
  }

  auto add = [&](const char* rule, std::size_t idx, const std::string& path,
                 int line, std::string msg) {
    out.violations.push_back({rule, idx, path, line, std::move(msg)});
    out.violating_fields.insert(idx);
  };

  for (std::size_t idx = 0; idx < table.fields.size(); ++idx) {
    const FieldInfo& fi = table.fields[idx];
    if (fi.frozen_after.empty()) continue;
    const std::string qual = fi.qualified();

    if (fi.klass.empty()) {
      add("phase-discipline", idx, fi.path, fi.line,
          "IDS_FROZEN_AFTER(" + fi.frozen_after + ") on non-member '" +
              fi.name + "'; the epoch contract needs an owning class with "
              "a freeze method");
      continue;
    }
    const MergedFunc* freeze =
        lookup_merged(corpus, fi.klass, fi.frozen_after);
    if (freeze == nullptr) {
      add("phase-discipline", idx, fi.path, fi.line,
          "field '" + qual + "' is IDS_FROZEN_AFTER(" + fi.frozen_after +
              ") but class '" + fi.klass + "' has no method '" +
              fi.frozen_after + "'; declare the freeze method the epoch "
              "transitions through");
    }
    if (fi.is_mutable) {
      add("phase-discipline", idx, fi.path, fi.line,
          "field '" + qual + "' is declared mutable and IDS_FROZEN_AFTER(" +
              fi.frozen_after + "); mutable lets const read paths mutate "
              "after the freeze (the lazy-prepare shape) — prepare eagerly "
              "in '" + fi.frozen_after + "()' and drop the mutable");
    }
    if (freeze != nullptr && serve.count(freeze) != 0) {
      const FuncDecl* d = freeze->decls.empty() ? nullptr : freeze->decls[0];
      add("phase-discipline", idx, d != nullptr ? d->file->path : fi.path,
          d != nullptr ? d->line : fi.line,
          "freeze method '" + fi.klass + "::" + fi.frozen_after +
              "' of IDS_FROZEN_AFTER field '" + qual + "' is reachable "
              "from IdsEngine::execute; a query that can re-freeze can "
              "also mutate the frozen state");
    }

    const std::vector<WriteSite>* sites = table.sites(idx);
    if (sites == nullptr) continue;
    for (const WriteSite& ws : *sites) {
      if (ws.in_ctor || ws.fn == nullptr) continue;
      // Writes inside the freeze method are the epoch transition itself
      // (eager preparation at freeze is exactly what the rule wants).
      if (ws.fn->klass == fi.klass && ws.fn->name == fi.frozen_after) {
        continue;
      }
      const std::string writer =
          (ws.fn->klass.empty() ? "" : ws.fn->klass + "::") + ws.fn->name;
      const MergedFunc* m = lookup_merged(corpus, ws.fn->klass, ws.fn->name);
      if (m != nullptr && serve.count(m) != 0) {
        add("phase-discipline", idx, ws.path, ws.line,
            "serve-phase write: '" + writer + "' writes frozen field '" +
                qual + "' ('" + ws.detail + "') and is reachable from "
                "IdsEngine::execute; hoist the mutation into '" +
                fi.frozen_after + "()' or an ingest-phase mutator");
        continue;
      }
      if (!has_ingest_guard(*ws.fn)) {
        add("frozen-ingest-guard", idx, ws.path, ws.line,
            "ingest-phase write to frozen field '" + qual + "' ('" +
                ws.detail + "') in '" + writer + "' without an epoch "
                "guard; add IDS_CHECK(!frozen()) (or IDS_DCHECK for "
                "private helpers) so a post-freeze call aborts "
                "deterministically");
      }
    }
  }
  return out;
}

void run_phase_rules(Analysis& a) {
  if (!a.rule_enabled("phase-discipline") &&
      !a.rule_enabled("frozen-ingest-guard")) {
    return;
  }
  FieldTable t = build_field_table(*a.corpus);
  PhaseAnalysis phases = analyze_phases(*a.corpus, *a.graph, t);
  for (const PhaseViolation& v : phases.violations) {
    if (!a.rule_enabled(v.rule)) continue;
    a.findings.push_back({v.rule, v.path, v.line, v.message, {}, false});
  }
}

}  // namespace ids::analyzer
