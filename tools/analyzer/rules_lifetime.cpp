// Lifetime rule families (DESIGN.md §8) — the safety gate for handing
// container views to overlapping tasks:
//
// [view-invalidation]   A view (span, string_view, reference, pointer,
//                       iterator, .data()/.c_str() result) derived from a
//                       container is used after a may-invalidate operation
//                       on that container: a reallocating/rehashing std
//                       mutator by name, or a corpus method whose
//                       invalidation summary (lifetime.h) says so.
//                       Tracking is a linear per-body walk: derivations
//                       and reassignments update the view set,
//                       invalidations mark it, a later use reports once.
// [dangling-return]     Returning a reference/pointer/view bound to a
//                       local, a by-value parameter, or a temporary.
// [temporary-bound-view] string_view/span locals and members bound to
//                       rvalue temporaries (substr results, + concats,
//                       by-value-returning calls): the owner dies at the
//                       end of the full expression.
// [task-outlives-capture] By-ref/this captures handed to an async spawner
//                       (ThreadPool::submit) in a frame that never joins
//                       the task (escape.cpp does the scan).
//
// IDS_VIEW_OK(reason) on a function waives all four families for its body;
// the reason string is the audit trail.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis.h"
#include "escape.h"
#include "field_access.h"
#include "lifetime.h"

namespace ids::analyzer {
namespace {

const MergedFunc* merged_of(const Corpus& corpus, const FuncDecl& fn) {
  auto ci = corpus.merged.find(fn.klass);
  if (ci == corpus.merged.end()) return nullptr;
  auto mi = ci->second.find(fn.name);
  return mi == ci->second.end() ? nullptr : &mi->second;
}

bool is_view_type_head(const std::string& h) {
  return h == "span" || h == "string_view";
}

/// Methods whose result is always a view into the receiver's element
/// storage, whatever it binds to.
bool is_always_view_method(const std::string& n) {
  static const std::set<std::string> k = {"data",   "c_str",  "begin",
                                          "end",    "cbegin", "cend",
                                          "rbegin", "rend",   "crbegin",
                                          "crend"};
  return k.count(n) != 0;
}

/// Element accessors that yield a view only when bound by reference
/// (`auto x = v.front()` copies).
bool is_element_view_method(const std::string& n) {
  return n == "front" || n == "back" || n == "at" || n == "top";
}

/// Calls that produce an owning temporary a view must not bind to.
bool is_temp_producer(const std::string& n) {
  static const std::set<std::string> k = {"substr", "to_string", "str",
                                          "string", "format"};
  return k.count(n) != 0;
}

/// Owning types whose element storage dies with the object — the locals
/// [dangling-return] refuses to return views into.
bool is_owning_type_head(const std::string& h) {
  return h == "string" || h == "basic_string" || h == "vector" ||
         h == "array" || h == "deque" || h == "ostringstream" ||
         h == "stringstream";
}

std::string describe_origin(const InvalidationOrigin* o) {
  if (o == nullptr) return "";
  return o->via.empty() ? o->what : o->what + " via " + o->via;
}

/// True when the receiver a producer call is made on is itself a known
/// view-typed local or by-value parameter: `sv.substr(...)` on a
/// string_view yields a view into storage the *caller* owns — not a
/// temporary — so the temporary rules must stay quiet.
bool known_view_receiver(const std::vector<std::string>& chain,
                         const std::map<std::string, LocalInfo>& locals,
                         const std::map<std::string, std::string>& params) {
  if (chain.empty()) return false;
  auto li = locals.find(chain.front());
  if (li != locals.end()) return is_view_type_head(li->second.type_head);
  auto pi = params.find(chain.front());
  return pi != params.end() && is_view_type_head(pi->second);
}

/// Pure receiver chain of the member call at `i` (f.toks[i-1] is '.' or
/// '->'): dotted idents only, a leading `this->` stripped. "" when the
/// receiver contains subscripts, call results, or casts — those don't
/// match tracked containers exactly, so staying quiet beats guessing.
std::string strict_chain(const FileData& f, std::size_t i,
                         std::size_t begin) {
  std::vector<std::string> parts;
  std::size_t k = i;
  while (k >= begin + 2 &&
         (tok_is(f.toks[k - 1], ".") || tok_is(f.toks[k - 1], "->"))) {
    if (!tok_ident(f.toks[k - 2])) return "";
    parts.push_back(f.toks[k - 2].text);
    k -= 2;
  }
  if (parts.empty()) return "";
  if (k >= begin + 1) {
    const std::string& prev = f.toks[k - 1].text;
    if (prev == "::" || prev == ")" || prev == "]") return "";
  }
  if (parts.back() == "this") parts.pop_back();
  if (parts.empty()) return "";
  std::string joined;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    joined += (joined.empty() ? "" : ".") + *it;
  }
  return joined;
}

/// One right-hand side (of an initializer, assignment, or return),
/// classified just far enough for the view rules: the pure ident chain it
/// starts with, whether that chain was subscripted, the last call made on
/// it, and whether the expression starts with a call (a temporary).
struct Rhs {
  std::vector<std::string> chain;
  bool amp = false;            // leading '&'
  bool had_subscript = false;  // chain[...]  — element storage access
  bool first_is_call = false;  // f(...)...   — rooted in a temporary
  bool call_then_member = false;  // f(...).m  — member of a temporary
  std::string first_call;
  std::string final_call;
  std::size_t final_call_idx = kNone;
  bool plus = false;  // top-level '+': a concatenation temporary
  std::size_t stop = kNone;  // first token after the parsed pattern

  std::string chain_joined() const {
    std::string j;
    for (const std::string& p : chain) j += (j.empty() ? "" : ".") + p;
    return j;
  }
};

Rhs parse_rhs(const FileData& f, std::size_t r, std::size_t end) {
  Rhs out;
  {
    int depth = 0;
    for (std::size_t i = r; i < end; ++i) {
      const std::string& t = f.toks[i].text;
      if (f.toks[i].kind != Token::Kind::kPunct) continue;
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") {
        if (depth == 0) break;
        --depth;
      } else if ((t == ";" || t == ",") && depth == 0) {
        break;
      } else if (t == "+" && depth == 0) {
        out.plus = true;
      }
    }
  }
  std::size_t k = r;
  if (k < end && tok_is(f.toks[k], "&")) {
    out.amp = true;
    ++k;
  }
  bool chain_open = true;
  bool first_elem = true;
  while (k < end) {
    if (tok_is(f.toks[k], "this") && k + 1 < end &&
        tok_is(f.toks[k + 1], "->")) {
      k += 2;
      continue;
    }
    while (k + 1 < end && tok_ident(f.toks[k]) &&
           tok_is(f.toks[k + 1], "::")) {
      k += 2;  // namespace/class qualifiers
    }
    if (k >= end || !tok_ident(f.toks[k]) || is_keyword(f.toks[k].text)) {
      break;
    }
    const std::string name = f.toks[k].text;
    ++k;
    if (k < end && tok_is(f.toks[k], "(") && f.partner[k] != kNone &&
        f.partner[k] < end) {
      out.final_call = name;
      out.final_call_idx = k - 1;
      if (first_elem) {
        out.first_is_call = true;
        out.first_call = name;
      }
      chain_open = false;
      k = f.partner[k] + 1;
      if (k < end && (tok_is(f.toks[k], ".") || tok_is(f.toks[k], "->"))) {
        if (out.first_is_call) out.call_then_member = true;
        ++k;
        first_elem = false;
        continue;
      }
      break;
    }
    if (chain_open) out.chain.push_back(name);
    first_elem = false;
    while (k < end && tok_is(f.toks[k], "[") && f.partner[k] != kNone &&
           f.partner[k] < end) {
      out.had_subscript = true;
      chain_open = false;
      k = f.partner[k] + 1;
    }
    if (k < end && (tok_is(f.toks[k], ".") || tok_is(f.toks[k], "->"))) {
      ++k;
      continue;
    }
    break;
  }
  out.stop = k;
  return out;
}

// --- [view-invalidation] + [temporary-bound-view] locals --------------------

struct ViewState {
  std::string container;
  int derived_line = 0;
  bool invalid = false;
  std::string invalidated_by;
  int invalidated_line = 0;
};

/// A deferred invalidation: takes effect after token `pos` (the mutating
/// call's closing paren), so views used *inside* the call's own arguments
/// — `v.push_back(v[0])` is required to work — stay clean.
struct PendingInvalidation {
  std::size_t pos;
  bool members_only = false;  // bare same-class call: member views only
  std::string chain;          // exact/prefix match target otherwise
  std::vector<std::string> only_members;  // IDS_INVALIDATES(...) names
  std::string why;
  int line = 0;
};

void scan_body(Analysis& a, const FuncDecl& fn, const Corpus& corpus,
               const InvalidationSummaries& sums,
               const std::map<std::string, LocalInfo>& locals,
               const std::map<std::string, std::string>& val_params,
               const std::set<std::string>& frame) {
  const FileData& f = *fn.file;
  const bool want_views = a.rule_enabled("view-invalidation");
  const bool want_temp = a.rule_enabled("temporary-bound-view");
  std::map<std::string, ViewState> views;
  std::vector<PendingInvalidation> pending;

  // Does any live view look into `chain` (or a member reached through it)?
  auto tracks_into = [&](const std::string& chain) {
    for (const auto& [name, v] : views) {
      if (!v.invalid && (v.container == chain ||
                         v.container.rfind(chain + ".", 0) == 0)) {
        return true;
      }
    }
    return false;
  };
  // First token past the statement containing `from` — where an
  // assignment to a container takes effect (its RHS still reads the old
  // storage legitimately).
  auto statement_close = [&](std::size_t from) {
    int depth = 0;
    std::size_t k = from;
    while (k < fn.body_end) {
      const std::string& u = f.toks[k].text;
      if (f.toks[k].kind == Token::Kind::kPunct) {
        if (u == "(" || u == "[" || u == "{") {
          ++depth;
        } else if (u == ")" || u == "]" || u == "}") {
          if (depth == 0) break;
          --depth;
        } else if (u == ";" && depth == 0) {
          break;
        }
      }
      ++k;
    }
    return k;
  };

  auto apply = [&](const PendingInvalidation& p) {
    for (auto& [name, v] : views) {
      if (v.invalid) continue;
      bool hit;
      if (p.members_only) {
        const std::string base = v.container.substr(0, v.container.find('.'));
        if (frame.count(base) != 0) continue;  // view into a local: unrelated
        hit = p.only_members.empty() ||
              std::find(p.only_members.begin(), p.only_members.end(), base) !=
                  p.only_members.end();
      } else {
        hit = v.container == p.chain ||
              v.container.rfind(p.chain + ".", 0) == 0;
      }
      if (hit) {
        v.invalid = true;
        v.invalidated_by = p.why;
        v.invalidated_line = p.line;
      }
    }
  };

  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    while (!pending.empty()) {
      auto it = std::find_if(pending.begin(), pending.end(),
                             [&](const PendingInvalidation& p) {
                               return p.pos < i;
                             });
      if (it == pending.end()) break;
      apply(*it);
      pending.erase(it);
    }
    const Token& t = f.toks[i];
    if (!tok_ident(t)) continue;
    const std::string& n = t.text;

    // Range-for header: `for (T v : range)` declares a fresh `v` each
    // iteration — by-ref it is a new view into `range`, by-value a copy.
    // Either way it replaces whatever state a same-named outer variable
    // left behind (the analyzer does not track scopes).
    if (n == "for" && want_views && i + 1 < fn.body_end &&
        tok_is(f.toks[i + 1], "(") && f.partner[i + 1] != kNone &&
        f.partner[i + 1] <= fn.body_end) {
      const std::size_t close = f.partner[i + 1];
      std::size_t colon = kNone;
      int depth = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (tok_is(f.toks[j], "(") || tok_is(f.toks[j], "[") ||
            tok_is(f.toks[j], "{")) {
          ++depth;
        } else if (tok_is(f.toks[j], ")") || tok_is(f.toks[j], "]") ||
                   tok_is(f.toks[j], "}")) {
          --depth;
        } else if (depth == 0 && (tok_is(f.toks[j], ";") ||
                                  tok_is(f.toks[j], "?") ||
                                  tok_is(f.toks[j], "="))) {
          break;  // classic for / ternary / init-statement: not handled
        } else if (depth == 0 && tok_is(f.toks[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon != kNone) {
        std::size_t vi = kNone;
        bool by_ref = false;
        for (std::size_t j = i + 2; j < colon; ++j) {
          if (tok_is(f.toks[j], "&")) by_ref = true;
          if (tok_ident(f.toks[j]) && !is_keyword(f.toks[j].text)) {
            views.erase(f.toks[j].text);  // fresh declaration shadows it
            vi = j;
          }
        }
        if (vi != kNone && by_ref) {
          Rhs range = parse_rhs(f, colon + 1, close);
          if (!range.chain.empty() && !range.first_is_call &&
              range.final_call.empty() && !range.had_subscript) {
            const std::string cont = range.chain_joined();
            if (cont != f.toks[vi].text) {
              views[f.toks[vi].text] =
                  ViewState{cont, f.toks[vi].line, false, "", 0};
            }
          }
        }
      }
      continue;
    }
    if (is_keyword(n) || is_macro_name(n)) continue;
    const bool after_access =
        i > fn.body_begin &&
        (tok_is(f.toks[i - 1], ".") || tok_is(f.toks[i - 1], "->") ||
         tok_is(f.toks[i - 1], "::"));
    const bool via_this = after_access && i >= fn.body_begin + 2 &&
                          tok_is(f.toks[i - 1], "->") &&
                          tok_is(f.toks[i - 2], "this");
    const bool is_call = i + 1 < fn.body_end && tok_is(f.toks[i + 1], "(") &&
                         f.partner[i + 1] != kNone &&
                         f.partner[i + 1] <= fn.body_end;

    // --- declaration or assignment targeting n ---------------------------
    if (!after_access) {
      DeclHead dh = declarator_head(f, i, fn.body_begin);
      std::size_t r = kNone;
      std::size_t rhs_end = fn.body_end;
      if (i + 1 < fn.body_end && tok_is(f.toks[i + 1], "=")) {
        r = i + 2;
      } else if (!dh.head.empty() && is_view_type_head(dh.head) && is_call) {
        r = i + 2;  // std::span<T> s(vec) — constructor-style init
        rhs_end = f.partner[i + 1];
      } else if (!dh.head.empty() && is_view_type_head(dh.head) &&
                 i + 1 < fn.body_end && tok_is(f.toks[i + 1], "{") &&
                 f.partner[i + 1] != kNone) {
        r = i + 2;
        rhs_end = f.partner[i + 1];
      }
      if (r != kNone) {
        // Reassigning a tracked container replaces its storage: views
        // into it dangle once the statement completes.
        if (want_views && tracks_into(n)) {
          pending.push_back(PendingInvalidation{
              statement_close(r), false, n, {},
              "'" + n + "' being reassigned", t.line});
        }
        Rhs rhs = parse_rhs(f, r, rhs_end);
        const MergedFunc* rcallee =
            rhs.final_call_idx == kNone
                ? nullptr
                : resolve_call(f, rhs.final_call_idx, fn.klass, corpus);
        std::string container;
        if (!rhs.chain.empty() && !rhs.first_is_call) {
          if (!rhs.final_call.empty() &&
              is_always_view_method(rhs.final_call)) {
            container = rhs.chain_joined();
          } else if (rhs.amp) {
            container = rhs.chain_joined();
          } else if (dh.is_reference && rhs.final_call.empty() &&
                     rhs.had_subscript) {
            container = rhs.chain_joined();
          } else if (dh.is_reference &&
                     is_element_view_method(rhs.final_call)) {
            container = rhs.chain_joined();
          } else if (is_view_type_head(dh.head) && rhs.final_call.empty() &&
                     !rhs.had_subscript) {
            container = rhs.chain_joined();
          } else if (rcallee != nullptr &&
                     is_view_type_head(rcallee->ret_head)) {
            container = rhs.chain_joined();
          }
        }
        const bool lhs_viewish =
            dh.head.empty() || dh.is_pointer || dh.is_reference ||
            dh.head == "auto" || is_view_type_head(dh.head) ||
            dh.head.find("iterator") != std::string::npos;
        if (want_views) {
          if (!container.empty() && lhs_viewish && container != n) {
            views[n] = ViewState{container, t.line, false, "", 0};
          } else {
            views.erase(n);  // overwritten with a non-view value
          }
        }
        if (want_temp && !dh.head.empty() && is_view_type_head(dh.head) &&
            !dh.is_pointer && !dh.is_reference) {
          std::string bound_to;
          if (rhs.call_then_member && (is_always_view_method(rhs.final_call) ||
                                       is_temp_producer(rhs.final_call))) {
            bound_to = "the temporary returned by '" + rhs.first_call + "()'";
          } else if (!rhs.final_call.empty() && !rhs.first_is_call &&
                     is_temp_producer(rhs.final_call) &&
                     !known_view_receiver(rhs.chain, locals, val_params)) {
            bound_to = "the '" + rhs.final_call + "(...)' result";
          } else if (rhs.first_is_call && rhs.final_call == rhs.first_call &&
                     is_temp_producer(rhs.final_call)) {
            bound_to = "the '" + rhs.final_call + "(...)' result";
          } else if (rcallee != nullptr &&
                     is_owning_type_head(rcallee->ret_head)) {
            bound_to = "the temporary '" + rcallee->ret_head +
                       "' returned by '" + rhs.final_call + "()'";
          } else if (dh.head == "string_view" && rhs.plus) {
            bound_to = "a '+' concatenation temporary";
          }
          if (!bound_to.empty()) {
            a.report("temporary-bound-view", f, t.line,
                     dh.head + " '" + n + "' is bound to " + bound_to +
                         ", which dies at the end of the statement; "
                         "materialize the owner in a named variable or "
                         "annotate the function IDS_VIEW_OK(reason)");
          }
        }
        continue;
      }
    }

    // --- append-assignment to a tracked container ------------------------
    if (!after_access && want_views && i + 1 < fn.body_end &&
        tok_is(f.toks[i + 1], "+=") && tracks_into(n)) {
      pending.push_back(PendingInvalidation{
          statement_close(i + 2), false, n, {},
          "'" + n + " +=' growing the storage", t.line});
      continue;
    }

    // --- assignment through a member chain (x.col_ = ..., this->m_ = ...) --
    if (want_views && after_access && !is_call && i + 1 < fn.body_end &&
        (tok_is(f.toks[i + 1], "=") || tok_is(f.toks[i + 1], "+="))) {
      const std::string prefix = strict_chain(f, i, fn.body_begin);
      if (!prefix.empty() || via_this) {
        const std::string full = prefix.empty() ? n : prefix + "." + n;
        if (tracks_into(full)) {
          pending.push_back(PendingInvalidation{
              statement_close(i + 2), false, full, {},
              "'" + full + "' being reassigned", t.line});
        }
      }
      continue;
    }

    // --- member-call invalidation ----------------------------------------
    if (after_access && !via_this && is_call) {
      std::string chain = strict_chain(f, i, fn.body_begin);
      if (!chain.empty() && want_views) {
        bool inval = false;
        std::string why;
        const MergedFunc* callee = resolve_call(f, i, fn.klass, corpus);
        if (callee != nullptr) {
          if (!callee->stable_storage && sums.may_invalidate(callee)) {
            inval = true;
            why = "'" + chain + "." + n + "()' (" +
                  describe_origin(sums.origin(callee)) + ")";
          }
        } else if (is_invalidating_container_method(n)) {
          inval = true;
          why = "'" + chain + "." + n + "()'";
        } else {
          // Untyped receiver: when *every* corpus method of this name has
          // an invalidation summary, the call invalidates whichever class
          // it lands on (SolutionTable append on a local table).
          auto bi = corpus.by_name.find(n);
          if (bi != corpus.by_name.end() && !bi->second.empty()) {
            bool all = true;
            for (const MergedFunc* m : bi->second) {
              if (!sums.may_invalidate(m)) {
                all = false;
                break;
              }
            }
            if (all) {
              inval = true;
              why = "'" + chain + "." + n + "()' (" +
                    describe_origin(sums.origin(bi->second[0])) + ")";
            }
          }
        }
        if (inval) {
          pending.push_back(PendingInvalidation{
              f.partner[i + 1], false, chain, {}, why, t.line});
        }
      }
      continue;
    }

    // --- bare / this-> calls: same-class invalidators, std::move ---------
    if (is_call && (!after_access || via_this)) {
      const bool decl_style = !after_access && i > fn.body_begin &&
                              tok_ident(f.toks[i - 1]) &&
                              !is_keyword(f.toks[i - 1].text);
      if (!decl_style && want_views) {
        if (n == "move") {
          std::size_t close = f.partner[i + 1];
          if (close == i + 3 && tok_ident(f.toks[i + 2])) {
            pending.push_back(PendingInvalidation{
                close, false, f.toks[i + 2].text, {},
                "'std::move(" + f.toks[i + 2].text + ")'", t.line});
          }
        } else if (!fn.klass.empty()) {
          const MergedFunc* callee = resolve_call(f, i, fn.klass, corpus);
          if (callee != nullptr && callee->klass == fn.klass &&
              !callee->stable_storage && sums.may_invalidate(callee)) {
            pending.push_back(PendingInvalidation{
                f.partner[i + 1], true, "", callee->invalidates_args,
                "'" + n + "()' (" + describe_origin(sums.origin(callee)) +
                    ")",
                t.line});
          }
        }
      }
      continue;
    }

    // --- use of an invalidated view --------------------------------------
    if (want_views && !after_access) {
      auto vi = views.find(n);
      if (vi != views.end() && vi->second.invalid) {
        a.report("view-invalidation", f, t.line,
                 "view '" + n + "' into '" + vi->second.container +
                     "' (derived at line " +
                     std::to_string(vi->second.derived_line) +
                     ") is used after " + vi->second.invalidated_by +
                     " at line " +
                     std::to_string(vi->second.invalidated_line) +
                     " may have invalidated it; re-derive the view after "
                     "the mutation, annotate the mutator "
                     "IDS_STABLE_STORAGE, or waive the function with "
                     "IDS_VIEW_OK(reason)");
        views.erase(vi);  // one report per view
      }
    }
  }
}

// --- [dangling-return] ------------------------------------------------------

void check_returns(Analysis& a, const FuncDecl& fn, const Corpus& corpus,
                   const std::map<std::string, LocalInfo>& locals,
                   const std::map<std::string, std::string>& val_params) {
  const MergedFunc* self = merged_of(corpus, fn);
  std::string ret = fn.ret_head;
  if (ret.empty() && self != nullptr) ret = self->ret_head;
  const bool ret_ref = ret == "&";
  const bool ret_ptr = ret == "*";
  const bool ret_view = is_view_type_head(ret);
  if (!ret_ref && !ret_ptr && !ret_view) return;
  const FileData& f = *fn.file;

  // What does name X denote, and does its storage die with the frame?
  auto frame_owner = [&](const std::string& x, std::string* kind,
                         std::string* head) {
    auto li = locals.find(x);
    if (li != locals.end()) {
      if (li->second.is_reference) return false;  // referent isn't ours
      *kind = "local";
      *head = li->second.is_pointer ? "*" : li->second.type_head;
      return true;
    }
    auto pi = val_params.find(x);
    if (pi != val_params.end()) {
      *kind = "by-value parameter";
      *head = pi->second;
      return true;
    }
    return false;
  };

  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (!tok_is(f.toks[i], "return")) continue;
    std::size_t j = i + 1;
    if (j >= fn.body_end || tok_is(f.toks[j], ";")) continue;
    std::string kind, head;

    // return &x;
    if (tok_is(f.toks[j], "&") && j + 2 < fn.body_end &&
        tok_ident(f.toks[j + 1]) && tok_is(f.toks[j + 2], ";")) {
      const std::string& x = f.toks[j + 1].text;
      if (ret_ptr && frame_owner(x, &kind, &head) && head != "*") {
        a.report("dangling-return", f, f.toks[j].line,
                 "returns the address of " + kind + " '" + x +
                     "'; the storage dies when the frame unwinds");
      }
      i = j + 2;
      continue;
    }

    // return x;
    if (tok_ident(f.toks[j]) && j + 1 < fn.body_end &&
        tok_is(f.toks[j + 1], ";")) {
      const std::string& x = f.toks[j].text;
      if (!is_keyword(x) && frame_owner(x, &kind, &head)) {
        if (ret_ref && head != "*") {
          a.report("dangling-return", f, f.toks[j].line,
                   "returns a reference to " + kind + " '" + x +
                       "'; the referent dies when the frame unwinds");
        } else if (ret_view && is_owning_type_head(head)) {
          a.report("dangling-return", f, f.toks[j].line,
                   "returns a " + ret + " into " + kind + " '" + x + "' (" +
                       head + "); the owner dies when the frame unwinds");
        }
      }
      i = j + 1;
      continue;
    }

    Rhs rhs = parse_rhs(f, j, fn.body_end);
    if (rhs.stop == kNone || rhs.stop >= fn.body_end ||
        !tok_is(f.toks[rhs.stop], ";")) {
      continue;  // a compound expression; stay quiet
    }
    const MergedFunc* rcallee =
        rhs.final_call_idx == kNone
            ? nullptr
            : resolve_call(f, rhs.final_call_idx, fn.klass, corpus);

    // return x.data(); / return x.c_str();
    if ((ret_ptr || ret_view) && rhs.chain.size() == 1 &&
        !rhs.first_is_call &&
        (rhs.final_call == "data" || rhs.final_call == "c_str") &&
        frame_owner(rhs.chain[0], &kind, &head) &&
        is_owning_type_head(head)) {
      a.report("dangling-return", f, f.toks[j].line,
               "returns a pointer/view into " + kind + " '" + rhs.chain[0] +
                   "' via ." + rhs.final_call +
                   "(); the owner dies when the frame unwinds");
      continue;
    }

    // return <temporary-producing call>; for view returns. A producer on
    // a known view-typed receiver (string_view::substr) yields a view the
    // caller's argument owns — not a temporary — and stays quiet.
    const bool temp_producer_return =
        (rhs.call_then_member && (is_always_view_method(rhs.final_call) ||
                                  is_temp_producer(rhs.final_call))) ||
        (!rhs.final_call.empty() && !rhs.first_is_call &&
         is_temp_producer(rhs.final_call) &&
         !known_view_receiver(rhs.chain, locals, val_params)) ||
        (rhs.first_is_call && rhs.final_call == rhs.first_call &&
         is_temp_producer(rhs.final_call)) ||
        (rcallee != nullptr && is_owning_type_head(rcallee->ret_head));
    if (ret_view && temp_producer_return) {
      a.report("dangling-return", f, f.toks[j].line,
               "returns a " + ret + " bound to a temporary ('" +
                   (rhs.call_then_member ? rhs.first_call : rhs.final_call) +
                   "' result); the owner dies before the caller can look");
    }
  }
}

// --- [temporary-bound-view] members -----------------------------------------

void check_member_views(Analysis& a, const Corpus& corpus) {
  for (const MemberSpan& s : corpus.member_spans) {
    const FileData& f = *s.file;
    std::size_t eq = kNone;
    for (std::size_t i = s.begin; i < s.end; ++i) {
      if (tok_is(f.toks[i], "=")) {
        eq = i;
        break;
      }
      if ((tok_is(f.toks[i], "(") || tok_is(f.toks[i], "{") ||
           tok_is(f.toks[i], "[")) &&
          f.partner[i] != kNone && f.partner[i] < s.end) {
        i = f.partner[i];
      }
    }
    if (eq == kNone || eq == s.begin) continue;
    std::size_t name_idx = kNone;
    for (std::size_t i = s.begin; i < eq; ++i) {
      if (tok_ident(f.toks[i]) && !is_keyword(f.toks[i].text) &&
          f.toks[i].text.rfind("IDS_", 0) != 0) {
        name_idx = i;
      }
    }
    if (name_idx == kNone) continue;
    DeclHead d = declarator_head(f, name_idx, s.begin);
    if (d.head.empty() || !is_view_type_head(d.head) || d.is_pointer ||
        d.is_reference) {
      continue;
    }
    Rhs rhs = parse_rhs(f, eq + 1, s.end);
    const MergedFunc* rcallee =
        rhs.final_call_idx == kNone
            ? nullptr
            : resolve_call(f, rhs.final_call_idx, s.klass, corpus);
    std::string bound_to;
    if (rhs.call_then_member && (is_always_view_method(rhs.final_call) ||
                                 is_temp_producer(rhs.final_call))) {
      bound_to = "the temporary returned by '" + rhs.first_call + "()'";
    } else if (!rhs.final_call.empty() && is_temp_producer(rhs.final_call) &&
               (rhs.first_is_call ? rhs.final_call == rhs.first_call
                                  : true)) {
      bound_to = "the '" + rhs.final_call + "(...)' result";
    } else if (rcallee != nullptr && is_owning_type_head(rcallee->ret_head)) {
      bound_to = "the temporary '" + rcallee->ret_head + "' returned by '" +
                 rhs.final_call + "()'";
    } else if (d.head == "string_view" && rhs.plus) {
      bound_to = "a '+' concatenation temporary";
    }
    if (bound_to.empty()) continue;
    const std::string qual =
        s.klass.empty() ? f.toks[name_idx].text
                        : s.klass + "::" + f.toks[name_idx].text;
    a.report("temporary-bound-view", f, f.toks[name_idx].line,
             d.head + " member '" + qual + "' is initialized from " +
                 bound_to + ", which dies before the member is ever read; "
                 "store an owning type instead");
  }
}

}  // namespace

void run_lifetime_rules(Analysis& a) {
  const Corpus& corpus = *a.corpus;
  const bool want_views = a.rule_enabled("view-invalidation");
  const bool want_ret = a.rule_enabled("dangling-return");
  const bool want_temp = a.rule_enabled("temporary-bound-view");
  const bool want_task = a.rule_enabled("task-outlives-capture");
  if (!want_views && !want_ret && !want_temp && !want_task) return;

  InvalidationSummaries sums;
  if (want_views) sums = compute_invalidation_summaries(corpus, *a.graph);

  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    const MergedFunc* self = merged_of(corpus, fn);
    if (self != nullptr && !self->view_ok.empty()) continue;  // audited
    const std::map<std::string, LocalInfo> locals = collect_locals_typed(fn);
    const std::map<std::string, std::string> val_params =
        by_value_params_typed(fn);
    if (want_views || want_temp) {
      std::set<std::string> frame;
      for (const auto& [n, info] : locals) frame.insert(n);
      for (const std::string& p : param_names(fn)) frame.insert(p);
      scan_body(a, fn, corpus, sums, locals, val_params, frame);
    }
    if (want_ret) check_returns(a, fn, corpus, locals, val_params);
  }
  if (want_temp) check_member_views(a, corpus);
  if (want_task) {
    std::set<const MergedFunc*> spawners = compute_async_spawners(corpus);
    for (const EscapeFinding& e : find_task_lifetime(corpus, spawners)) {
      a.findings.push_back({"task-outlives-capture", e.path, e.line,
                            e.message, {}, false});
    }
  }
}

}  // namespace ids::analyzer
