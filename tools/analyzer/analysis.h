#pragma once

// Shared analysis state for ids-analyzer's rules: the finding model, the
// rule registry (stable ids + one-line summaries, exported through
// --list-rules and the SARIF rules metadata), and the entry points the
// driver calls. Output formatting (text / SARIF / baseline) lives in
// output.cpp.

#include <cstddef>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "callgraph.h"
#include "corpus.h"

namespace ids::analyzer {

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the analyzer knows, in documentation order. Ids are stable:
/// they appear in findings, --rule= filters, baselines, and SARIF.
const std::vector<RuleInfo>& rule_table();
bool known_rule(const std::string& id);

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;             // first line of the finding
  std::vector<std::string> notes;  // extra context lines (cycle edges)
  bool suppressed = false;         // matched the baseline
};

struct Analysis {
  const Corpus* corpus = nullptr;
  const CallGraph* graph = nullptr;
  /// Rules selected via --rule=; empty means all rules run.
  std::set<std::string> enabled;
  std::vector<Finding> findings;

  bool rule_enabled(const std::string& id) const {
    return enabled.empty() || enabled.count(id) != 0;
  }
  void report(const std::string& rule, const FileData& f, int line,
              std::string msg, std::vector<std::string> notes = {}) {
    if (!rule_enabled(rule)) return;
    findings.push_back(
        {rule, f.path, line, std::move(msg), std::move(notes), false});
  }
};

/// File-local rules ported from the v1 analyzer: [discarded-status] (with
/// [wrapper-discarded-status] attribution when the return kind was
/// inferred through a forwarding wrapper), [unchecked-value],
/// [bare-assert].
void run_local_rules(Analysis& a);

/// Interprocedural rules over the call graph: [lock-order] /
/// [xfile-lock-order] (whole-program acquisition-order cycles and
/// self-deadlock), [blocking-under-lock], [wallclock-in-engine].
void run_interproc_rules(Analysis& a);

/// Concurrency-readiness rules: [guarded-by] inference over per-field
/// write-site × held-lock summaries, and [thread-escape] tracking of
/// by-reference captures mutated inside ThreadPool tasks.
void run_concurrency_rules(Analysis& a);

/// Phase/epoch rules over IDS_FROZEN_AFTER fields (phase.h):
/// [phase-discipline] missing freeze method, mutable frozen fields (the
/// lazy-prepare shape), and post-freeze writes reachable from
/// IdsEngine::execute; [frozen-ingest-guard] ingest-phase writes missing
/// the IDS_CHECK(!frozen()) epoch guard.
void run_phase_rules(Analysis& a);

/// Lifetime rules over the corpus + invalidation summaries (lifetime.h):
/// [view-invalidation] uses of container views after a may-invalidate
/// mutation, [dangling-return] refs/pointers/views into frame storage,
/// [temporary-bound-view] string_view/span bound to rvalue temporaries,
/// [task-outlives-capture] by-ref/this captures handed to detached tasks.
void run_lifetime_rules(Analysis& a);

/// --certify=concurrent-exec: walks everything transitively reachable
/// from IdsEngine::execute, writes the machine-readable shared-state
/// inventory to `os`, and reports one [shared-state] finding per
/// violation. Returns the violation count; sets *root_found to false
/// (and emits nothing) when the corpus has no IdsEngine::execute.
std::size_t run_certificate(Analysis& a, std::ostream& os, bool* root_found);

/// Stable ordering for output and baselines: path, line, rule, message.
void sort_findings(std::vector<Finding>& findings);

}  // namespace ids::analyzer
