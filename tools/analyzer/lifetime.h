#pragma once

// Lifetime layer for ids-analyzer (DESIGN.md §8): the shared substrate of
// the four view/lifetime rule families in rules_lifetime.cpp.
//
// The center of it is the *invalidation summary*: per method, "calling
// this may invalidate views (spans, string_views, references, pointers,
// iterators) previously derived from the receiver's element storage".
// Direct facts come from an IDS_INVALIDATES annotation or from the body
// calling a reallocating/rehashing container mutator (push_back, insert,
// clear, reserve, assign, ...) on a member; the facts then propagate over
// *unique* call edges restricted to same-class caller→callee pairs —
// invalidation is receiver-specific, so cross-class propagation over a
// receiver-agnostic edge set would manufacture findings the way
// over-approximated edges would for may-block. IDS_STABLE_STORAGE drops a
// method from the inference entirely (deque-style storage, arenas).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "callgraph.h"
#include "corpus.h"

namespace ids::analyzer {

/// Why a method may invalidate views into its object: the mutating
/// operation itself, and — for propagated facts — the callee it reaches.
struct InvalidationOrigin {
  std::string what;  // "keys_.assign", "IDS_INVALIDATES", ...
  std::string via;   // "" for direct facts; qualified callee when inherited
};

struct InvalidationSummaries {
  std::map<const MergedFunc*, InvalidationOrigin> origins;

  bool may_invalidate(const MergedFunc* m) const {
    return origins.count(m) != 0;
  }
  const InvalidationOrigin* origin(const MergedFunc* m) const {
    auto it = origins.find(m);
    return it == origins.end() ? nullptr : &it->second;
  }
};

/// Computes the per-method invalidation summaries (see above).
InvalidationSummaries compute_invalidation_summaries(const Corpus& corpus,
                                                     const CallGraph& graph);

/// Standard-library container mutators that may reallocate, rehash, or
/// destroy element storage — the name-matched invalidation facts applied
/// to receivers the corpus cannot type (std::vector locals, etc.).
bool is_invalidating_container_method(const std::string& name);

/// One declared local of a function body.
struct LocalInfo {
  std::string type_head;  // "vector" for std::vector<T>, "auto", "uint8_t"
  bool is_pointer = false;
  bool is_reference = false;
};

/// Locals declared in `fn`'s body, keyed by name, with the declared type's
/// head token. Function-local statics are excluded (their referents
/// survive the frame, so returning a view of one is fine). Reference
/// locals are included but flagged — [dangling-return] must skip them
/// (their referent is not frame storage).
std::map<std::string, LocalInfo> collect_locals_typed(const FuncDecl& fn);

/// By-value parameters of `fn` (no '&'/'*' in the declarator), keyed by
/// name with the type head — the set whose storage dies with the frame.
std::map<std::string, std::string> by_value_params_typed(const FuncDecl& fn);

/// Declarator classification for the identifier at `name_idx`: walks back
/// over '&'/'*'/template-argument tokens to the type head. `head` is empty
/// when the tokens before the name do not spell a declaration (plain
/// assignment, expression use). Shared by the local collector and the
/// per-statement view tracker.
struct DeclHead {
  std::string head;
  bool is_pointer = false;
  bool is_reference = false;
};
DeclHead declarator_head(const FileData& f, std::size_t name_idx,
                         std::size_t begin);

}  // namespace ids::analyzer
