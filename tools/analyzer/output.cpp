#include "output.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <tuple>

namespace ids::analyzer {

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kTable = {
      {"discarded-status",
       "Status/Result return values must be consumed or wrapped in "
       "IDS_IGNORE_ERROR(...); '(void)' is not an approved discard."},
      {"unchecked-value",
       "Result::value() / .status().message() requires a dominating .ok() "
       "check in the same function."},
      {"lock-order",
       "ids::MutexLock acquisition order must be globally consistent; "
       "calling a function that acquires a held lock is a self-deadlock."},
      {"bare-assert",
       "assert() is banned in analyzed sources; use IDS_CHECK / IDS_DCHECK "
       "or return a Status for recoverable conditions."},
      {"xfile-lock-order",
       "Whole-program lock-order: acquisition chains propagated through "
       "the call graph must stay acyclic across translation units."},
      {"blocking-under-lock",
       "No call that transitively reaches a blocking sink (sleep, join, "
       "file/process I/O, condition waits) while an ids::MutexLock is "
       "held; IDS_MAY_BLOCK declares sanctioned blocking."},
      {"wallclock-in-engine",
       "No wall-clock reads outside src/telemetry/ and no raw randomness "
       "reachable from IdsEngine::execute; IDS_WALLCLOCK_OK sanctions a "
       "deliberate wall-clock read."},
      {"wrapper-discarded-status",
       "Discarding the result of a thin wrapper that forwards its "
       "callee's Status/Result is as bad as discarding the Status "
       "itself."},
      {"guarded-by",
       "Fields of classes that own an ids::Mutex must hold the lock "
       "consistently at every write and carry IDS_GUARDED_BY (or be "
       "atomic/const/IDS_SINGLE_QUERY_ONLY-waived)."},
      {"thread-escape",
       "State captured by reference (or via 'this') in a task handed to "
       "ThreadPool::submit/parallel_for must not be mutated without a "
       "guarding MutexLock or atomic type; indexed writes into disjoint "
       "per-rank slots are the sanctioned pattern."},
      {"shared-state",
       "--certify=concurrent-exec: every static, global, and member "
       "transitively reachable from IdsEngine::execute must be immutable, "
       "guarded, atomic, internally synchronized, phase-frozen "
       "(IDS_FROZEN_AFTER), or IDS_SINGLE_QUERY_ONLY-waived."},
      {"phase-discipline",
       "An IDS_FROZEN_AFTER(freeze) field's owning class must define the "
       "freeze method, the field must not be mutable (lazy-prepare: "
       "prepare eagerly in freeze() instead), and neither a write to the "
       "field nor the freeze method itself may be reachable from "
       "IdsEngine::execute — the serve phase never mutates frozen "
       "state."},
      {"frozen-ingest-guard",
       "Every ingest-phase write to an IDS_FROZEN_AFTER field outside a "
       "constructor or the freeze method must sit in a function that "
       "checks IDS_CHECK(!frozen()) (IDS_DCHECK for private helpers) so "
       "post-freeze mutation aborts deterministically."},
      {"view-invalidation",
       "A span/string_view/reference/pointer/iterator derived from a "
       "container must not be used after an operation that may reallocate "
       "or destroy the element storage (push_back, rehash, clear, a method "
       "annotated IDS_INVALIDATES, or one inferred to reach such a "
       "mutation); IDS_STABLE_STORAGE exempts a mutator, IDS_VIEW_OK "
       "waives a function with an audit reason."},
      {"dangling-return",
       "Functions must not return a reference, pointer, span, or "
       "string_view bound to a local variable, a by-value parameter, or a "
       "temporary — the storage dies when the frame unwinds."},
      {"temporary-bound-view",
       "string_view/span locals and members must not be bound to rvalue "
       "temporaries (substr results, '+' concatenations, by-value-"
       "returning calls); the owner dies at the end of the statement."},
      {"task-outlives-capture",
       "Tasks handed to ThreadPool::submit must not capture frame state "
       "by reference (or 'this') unless the submitting function joins the "
       "task before returning; IDS_VIEW_OK(reason) records an audited "
       "exception."},
  };
  return kTable;
}

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : rule_table()) {
    if (id == r.id) return true;
  }
  return false;
}

void sort_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.path, a.line, a.rule, a.message) <
                            std::tie(b.path, b.line, b.rule, b.message);
                   });
}

namespace {

std::string squash_digits(const std::string& s) {
  std::string out;
  bool in_run = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (!in_run) out += '#';
      in_run = true;
    } else {
      out += c;
      in_run = false;
    }
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string full_message(const Finding& fd) {
  std::string msg = fd.message;
  for (const std::string& n : fd.notes) msg += "\n  " + n;
  return msg;
}

}  // namespace

std::string baseline_key(const Finding& fd) {
  return fd.rule + "|" + fd.path + "|" + squash_digits(full_message(fd));
}

bool load_baseline(const std::string& path, std::set<std::string>* keys) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ids-analyzer: cannot read baseline '" << path << "'\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    keys->insert(line);
  }
  return true;
}

void apply_baseline(const std::set<std::string>& keys,
                    std::vector<Finding>* findings) {
  for (Finding& fd : *findings) {
    if (keys.count(baseline_key(fd)) != 0) fd.suppressed = true;
  }
}

bool write_baseline(const std::string& path,
                    const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "ids-analyzer: cannot write baseline '" << path << "'\n";
    return false;
  }
  out << "# ids-analyzer baseline: one `rule|path|message` key per line\n"
      << "# (digit runs squashed to '#'). Findings matching a key are\n"
      << "# suppressed; regenerate with --write-baseline=FILE.\n";
  std::set<std::string> keys;
  for (const Finding& fd : findings) keys.insert(baseline_key(fd));
  for (const std::string& k : keys) out << k << "\n";
  return static_cast<bool>(out.flush());
}

void print_text(std::ostream& os, const std::vector<Finding>& findings) {
  for (const Finding& fd : findings) {
    if (fd.suppressed) continue;
    os << fd.path << ":" << fd.line << ": [" << fd.rule << "] " << fd.message
       << "\n";
    for (const std::string& n : fd.notes) os << "  " << n << "\n";
  }
}

namespace {

/// Escapes a workflow-command value: GitHub unescapes %25/%0D/%0A, so
/// literal '%', CR, and LF must be encoded (properties additionally need
/// it for ',' and ':', but rule ids and paths never contain those).
std::string github_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void print_github(std::ostream& os, const std::vector<Finding>& findings) {
  for (const Finding& fd : findings) {
    if (fd.suppressed) continue;
    os << "::error file=" << github_escape(fd.path)
       << ",line=" << (fd.line > 0 ? fd.line : 1)
       << ",title=ids-analyzer/" << github_escape(fd.rule)
       << "::" << github_escape(full_message(fd)) << "\n";
  }
}

void print_sarif(std::ostream& os, const std::vector<Finding>& findings) {
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"ids-analyzer\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/ids/tools/analyzer\",\n"
     << "          \"rules\": [\n";
  const auto& rules = rule_table();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "            {\n"
       << "              \"id\": \"" << rules[i].id << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << json_escape(rules[i].summary) << "\" },\n"
       << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
       << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  bool first = true;
  for (const Finding& fd : findings) {
    if (!first) os << ",\n";
    first = false;
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(fd.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \""
       << json_escape(full_message(fd)) << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(fd.path) << "\" },\n"
       << "                \"region\": { \"startLine\": "
       << (fd.line > 0 ? fd.line : 1) << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]" << (fd.suppressed ? ",\n          \"suppressions\": "
                                            "[ { \"kind\": \"external\" } ]"
                                          : "")
       << "\n"
       << "        }";
  }
  if (!first) os << "\n";
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
}

}  // namespace ids::analyzer
