#include "escape.h"

#include <algorithm>

#include "lifetime.h"

namespace ids::analyzer {
namespace {

bool is_pool_sink_name(const std::string& n) {
  return n == "parallel_for" || n == "submit";
}

bool is_assign_op(const std::string& t) {
  static const std::set<std::string> kOps = {
      "=",  "+=", "-=",  "*=",  "/=",  "%=",
      "&=", "|=", "^=", "<<=", ">>="};
  return kOps.count(t) != 0;
}

const MergedFunc* merged_of(const Corpus& corpus, const FuncDecl& fn) {
  auto ci = corpus.merged.find(fn.klass);
  if (ci == corpus.merged.end()) return nullptr;
  auto mi = ci->second.find(fn.name);
  return mi == ci->second.end() ? nullptr : &mi->second;
}

/// Does the call at name-token `i` spawn onto the pool? By name for the
/// pool's own entry points, by unique resolution for wrappers.
bool call_spawns(const FileData& f, std::size_t i, const FuncDecl& fn,
                 const Corpus& corpus,
                 const std::set<const MergedFunc*>& spawners) {
  const std::string& n = f.toks[i].text;
  if (is_pool_sink_name(n)) return true;
  const MergedFunc* target = resolve_call(f, i, fn.klass, corpus);
  return target != nullptr && spawners.count(target) != 0;
}

struct Captures {
  bool default_ref = false;  // [&]
  bool default_val = false;  // [=]  (still captures `this` by pointer)
  bool this_cap = false;     // [this]
  bool this_by_val = false;  // [*this] — members become task-local copies
  std::set<std::string> by_ref;
  std::set<std::string> by_val;
};

Captures parse_captures(const FileData& f, std::size_t open,
                        std::size_t close) {
  Captures c;
  int depth = 0;
  std::vector<std::size_t> item;  // token indices of the current item
  auto flush = [&] {
    if (item.empty()) return;
    const std::string& first = f.toks[item[0]].text;
    if (item.size() == 1) {
      if (first == "&") c.default_ref = true;
      else if (first == "=") c.default_val = true;
      else if (first == "this") c.this_cap = true;
      else if (tok_ident(f.toks[item[0]])) c.by_val.insert(first);
    } else if (first == "*" && f.toks[item[1]].text == "this") {
      c.this_by_val = true;
    } else if (first == "&" && tok_ident(f.toks[item[1]])) {
      c.by_ref.insert(f.toks[item[1]].text);  // &x and &x = expr
    } else if (tok_ident(f.toks[item[0]])) {
      c.by_val.insert(first);  // x = expr init-capture
    }
    item.clear();
  };
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = f.toks[i].text;
    if (f.toks[i].kind == Token::Kind::kPunct) {
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      else if (t == "," && depth == 0) {
        flush();
        continue;
      }
    }
    if (depth == 0) item.push_back(i);
  }
  flush();
  return c;
}

/// Names declared inside [begin, end): `Type name`, `Type& name`,
/// `auto [a, b]` bindings, and every identifier of a parameter list region
/// (over-broad for the latter — type names are never mutated, so the
/// extra entries are harmless).
void collect_locals(const FileData& f, std::size_t begin, std::size_t end,
                    std::set<std::string>* locals) {
  for (std::size_t i = begin; i < end; ++i) {
    if (!tok_ident(f.toks[i]) || is_keyword(f.toks[i].text)) continue;
    std::size_t p = i;
    while (p > begin && (tok_is(f.toks[p - 1], "&") ||
                         tok_is(f.toks[p - 1], "&&") ||
                         tok_is(f.toks[p - 1], "*") ||
                         tok_is(f.toks[p - 1], ">") ||
                         tok_is(f.toks[p - 1], ">>"))) {
      --p;
    }
    if (p > begin && tok_ident(f.toks[p - 1]) &&
        !is_keyword(f.toks[p - 1].text) &&
        f.toks[p - 1].text.rfind("IDS_", 0) != 0) {
      locals->insert(f.toks[i].text);
    }
    // Structured bindings: auto [a, b] = / auto& [a, b] :
    if (tok_is(f.toks[p > begin ? p - 1 : p], "auto")) {
      locals->insert(f.toks[i].text);
    }
  }
  // auto [a, b] — the bracket group's idents.
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!tok_is(f.toks[i], "auto")) continue;
    std::size_t j = i + 1;
    while (j < end && (tok_is(f.toks[j], "&") || tok_is(f.toks[j], "&&"))) ++j;
    if (j < end && tok_is(f.toks[j], "[") && f.partner[j] != kNone &&
        f.partner[j] < end) {
      for (std::size_t k = j + 1; k < f.partner[j]; ++k) {
        if (tok_ident(f.toks[k])) locals->insert(f.toks[k].text);
      }
    }
  }
}

/// True when the statement (within the enclosing function, before the
/// lambda) declaring `name` spells an atomic or Mutex type — a by-ref
/// capture of such a variable is synchronized by construction.
bool declared_synchronized(const FileData& f, const FuncDecl& fn,
                           std::size_t before, const std::string& name,
                           bool* found) {
  *found = false;
  for (auto [sb, se] : statements(f, fn.body_begin, before)) {
    bool has_name = false, has_sync = false;
    for (std::size_t i = sb; i < se; ++i) {
      if (!tok_ident(f.toks[i])) continue;
      if (f.toks[i].text == name) has_name = true;
      if (f.toks[i].text.rfind("atomic", 0) == 0 ||
          f.toks[i].text == "Mutex") {
        has_sync = true;
      }
    }
    if (has_name) {
      *found = true;
      return has_sync;
    }
  }
  return false;
}

/// Analyzes one lambda argument of a spawner call. Returns the index of
/// the lambda's closing body brace (so the caller can skip nested lambdas
/// — they run synchronously inside the task and their mutations are
/// judged against the *task's* locals, not as tasks of their own), or the
/// capture-list close when the lambda does not parse.
std::size_t analyze_lambda(const FuncDecl& fn, const Corpus& corpus,
                           const FieldTable& fields,
                           const std::string& spawn_name,
                           std::size_t cap_open, std::size_t call_close,
                           std::vector<EscapeFinding>* out) {
  const FileData& f = *fn.file;
  std::size_t cap_close = f.partner[cap_open];
  if (cap_close == kNone || cap_close >= call_close) return cap_open;
  Captures caps = parse_captures(f, cap_open, cap_close);

  std::set<std::string> locals;
  std::size_t p = cap_close + 1;
  if (p < call_close && tok_is(f.toks[p], "(") && f.partner[p] != kNone) {
    for (std::size_t k = p + 1; k < f.partner[p]; ++k) {
      if (tok_ident(f.toks[k])) locals.insert(f.toks[k].text);
    }
    p = f.partner[p] + 1;
  }
  while (p < call_close && !tok_is(f.toks[p], "{")) {
    if ((tok_is(f.toks[p], "(") || tok_is(f.toks[p], "[")) &&
        f.partner[p] != kNone) {
      p = f.partner[p] + 1;  // noexcept(...), attribute
    } else {
      ++p;  // mutable, ->, trailing return tokens
    }
  }
  if (p >= call_close || f.partner[p] == kNone) return cap_close;
  const std::size_t body_begin = p + 1, body_end = f.partner[p];
  collect_locals(f, body_begin, body_end, &locals);

  const std::set<std::string> fn_params = [&] {
    auto v = param_names(fn);
    return std::set<std::string>(v.begin(), v.end());
  }();

  // Brace-relative lock tracking inside the task body: any MutexLock the
  // task itself takes protects the rest of its scope.
  int depth = 0;
  std::vector<int> guard_depths;
  for (std::size_t i = body_begin; i < body_end; ++i) {
    const Token& t = f.toks[i];
    if (tok_is(t, "{")) {
      ++depth;
      continue;
    }
    if (tok_is(t, "}")) {
      guard_depths.erase(std::remove(guard_depths.begin(), guard_depths.end(),
                                     depth),
                         guard_depths.end());
      depth = std::max(0, depth - 1);
      continue;
    }
    if (!tok_ident(t)) continue;
    if (t.text == "MutexLock" && i + 2 < body_end &&
        tok_ident(f.toks[i + 1]) && tok_is(f.toks[i + 2], "(")) {
      guard_depths.push_back(depth);
      continue;
    }
    if (is_keyword(t.text)) continue;
    const std::string& n = t.text;

    // Receiver resolution: bare names and `this->member`; other member
    // accesses were already considered at their receiver token.
    bool via_this = false;
    if (i > body_begin && (tok_is(f.toks[i - 1], ".") ||
                           tok_is(f.toks[i - 1], "->") ||
                           tok_is(f.toks[i - 1], "::"))) {
      via_this = i >= 2 && tok_is(f.toks[i - 1], "->") &&
                 tok_is(f.toks[i - 2], "this");
      if (!via_this) continue;
    }

    // Subscripted access is the sanctioned per-rank disjoint-slot pattern.
    std::size_t j = i + 1;
    bool subscripted = false;
    while (j < body_end && tok_is(f.toks[j], "[") && f.partner[j] != kNone &&
           f.partner[j] < body_end) {
      j = f.partner[j] + 1;
      subscripted = true;
    }
    if (subscripted) continue;

    bool mutation = false;
    std::string how;
    if (j < body_end) {
      const std::string& op = f.toks[j].text;
      if (is_assign_op(op) || op == "++" || op == "--") {
        mutation = true;
        how = "'" + op + "'";
      } else if ((tok_is(f.toks[j], ".") || tok_is(f.toks[j], "->")) &&
                 j + 2 < body_end && tok_ident(f.toks[j + 1]) &&
                 tok_is(f.toks[j + 2], "(") &&
                 is_mutating_container_method(f.toks[j + 1].text)) {
        mutation = true;
        how = "." + f.toks[j + 1].text + "()";
      }
    }
    if (!mutation && i > body_begin &&
        (tok_is(f.toks[i - 1], "++") || tok_is(f.toks[i - 1], "--"))) {
      mutation = true;
      how = "'" + f.toks[i - 1].text + "'";
    }
    if (!mutation) continue;
    if (!guard_depths.empty()) continue;  // task holds its own lock
    if (!via_this && (locals.count(n) != 0 || caps.by_val.count(n) != 0)) {
      continue;
    }

    // Member of the enclosing class, reached through a captured `this`.
    const FieldInfo* field = fields.find(fn.klass, n);
    if (field != nullptr || via_this) {
      const bool this_escapes =
          caps.this_cap || caps.default_ref || caps.default_val;
      if (!this_escapes || caps.this_by_val) continue;
      if (field == nullptr) continue;  // unmodeled member
      if (field->protected_state()) continue;
      if (!field->type_class.empty() &&
          fields.class_safe(field->type_class) &&
          corpus.merged.count(field->type_class) != 0) {
        continue;  // internally-synchronized receiver class
      }
      out->push_back(
          {f.path, t.line,
           "task passed to '" + spawn_name + "' mutates member '" +
               field->qualified() + "' (" + how +
               ") through captured 'this' without a lock; guard it, make "
               "it atomic, or give each task its own slot"});
      continue;
    }

    // By-reference captured local (explicit, or implicit via [&]).
    const bool explicit_ref = caps.by_ref.count(n) != 0;
    if (!explicit_ref && !caps.default_ref) continue;
    if (fn_params.count(n) != 0) continue;  // origin unknown; stay quiet
    bool found = false;
    const bool synced = declared_synchronized(f, fn, cap_open, n, &found);
    if (synced) continue;
    if (!found && !explicit_ref) continue;  // likely a global or a function
    out->push_back(
        {f.path, t.line,
         "task passed to '" + spawn_name + "' mutates by-reference capture '" +
             n + "' (" + how +
         ") without a lock or atomic type; every pool worker shares it"});
  }
  return body_end;  // the closing brace: the lambda's full extent
}

/// A wait point that pins the submitted task's lifetime to the frame:
/// once the body reaches one after the submit, the captures outlive the
/// task and [task-outlives-capture] stays quiet.
bool is_join_name(const std::string& n) {
  static const std::set<std::string> kJoins = {
      "wait",      "get",        "join",           "wait_all",
      "wait_idle", "drain",      "wait_for_tasks", "wait_until_idle",
      "sync"};
  return kJoins.count(n) != 0;
}

/// One lambda handed to an async spawner in a frame with no later join:
/// flags by-ref captures of frame state, [&]-implicit references, and an
/// escaping `this`. Returns the closing body-brace index (skip extent).
std::size_t check_task_lambda(const FuncDecl& fn,
                              const std::string& spawn_name,
                              std::size_t cap_open, std::size_t call_close,
                              std::vector<EscapeFinding>* out) {
  const FileData& f = *fn.file;
  std::size_t cap_close = f.partner[cap_open];
  if (cap_close == kNone || cap_close >= call_close) return cap_open;
  Captures caps = parse_captures(f, cap_open, cap_close);
  const int line = f.toks[cap_open].line;

  std::set<std::string> task_locals;
  std::size_t p = cap_close + 1;
  if (p < call_close && tok_is(f.toks[p], "(") && f.partner[p] != kNone) {
    for (std::size_t k = p + 1; k < f.partner[p]; ++k) {
      if (tok_ident(f.toks[k])) task_locals.insert(f.toks[k].text);
    }
    p = f.partner[p] + 1;
  }
  while (p < call_close && !tok_is(f.toks[p], "{")) {
    if ((tok_is(f.toks[p], "(") || tok_is(f.toks[p], "[")) &&
        f.partner[p] != kNone) {
      p = f.partner[p] + 1;
    } else {
      ++p;
    }
  }
  if (p >= call_close || f.partner[p] == kNone) return cap_close;
  const std::size_t body_begin = p + 1, body_end = f.partner[p];
  collect_locals(f, body_begin, body_end, &task_locals);

  // Frame state the capture can dangle on: locals declared before the
  // lambda plus by-value parameters. Reference parameters stay out — their
  // referent belongs to the caller, whose lifetime this frame cannot see.
  std::set<std::string> frame;
  collect_locals(f, fn.body_begin, cap_open, &frame);
  for (const auto& [pn, head] : by_value_params_typed(fn)) frame.insert(pn);

  auto report = [&](const std::string& what, const std::string& how) {
    out->push_back(
        {f.path, line,
         "task passed to '" + spawn_name + "' captures " + what + " " + how +
             " but '" + fn.name + "' never joins it; the capture dangles "
             "if the task outlives the frame — capture by value, "
             "wait/join before returning, or annotate the function "
             "IDS_VIEW_OK(reason)"});
  };
  std::set<std::string> flagged;
  for (const std::string& nm : caps.by_ref) {
    if (frame.count(nm) != 0 && flagged.insert(nm).second) {
      report("'" + nm + "'", "by reference");
    }
  }
  if (caps.default_ref) {
    for (std::size_t k = body_begin; k < body_end; ++k) {
      if (!tok_ident(f.toks[k]) || is_keyword(f.toks[k].text)) continue;
      const std::string& nm = f.toks[k].text;
      if (k > body_begin && (tok_is(f.toks[k - 1], ".") ||
                             tok_is(f.toks[k - 1], "->") ||
                             tok_is(f.toks[k - 1], "::"))) {
        continue;
      }
      if (k + 1 < body_end && tok_is(f.toks[k + 1], "(")) continue;  // call
      if (frame.count(nm) == 0 || task_locals.count(nm) != 0) continue;
      if (caps.by_val.count(nm) != 0 || caps.by_ref.count(nm) != 0) continue;
      if (flagged.insert(nm).second) {
        report("'" + nm + "'", "by reference (via [&])");
      }
    }
  }
  bool this_escapes = caps.this_cap;
  if (!this_escapes && (caps.default_ref || caps.default_val)) {
    for (std::size_t k = body_begin; k < body_end && !this_escapes; ++k) {
      if (tok_is(f.toks[k], "this")) this_escapes = true;
    }
  }
  if (this_escapes && !caps.this_by_val && !fn.klass.empty()) {
    report("'this'", "by pointer");
  }
  return body_end;
}

/// The shared spawner fixed point: seed by name, then absorb every
/// function that forwards one of its own parameters into a spawner call.
std::set<const MergedFunc*> spawner_fixed_point(
    const Corpus& corpus, const std::vector<const char*>& seeds) {
  std::set<const MergedFunc*> spawners;
  for (const char* s : seeds) {
    auto it = corpus.by_name.find(s);
    if (it == corpus.by_name.end()) continue;
    for (MergedFunc* m : it->second) spawners.insert(m);
  }
  auto name_is_seed = [&](const std::string& n) {
    for (const char* s : seeds) {
      if (n == s) return true;
    }
    return false;
  };
  for (bool changed = true; changed;) {
    changed = false;
    for (const FuncDecl& fn : corpus.funcs) {
      if (!fn.has_body()) continue;
      const MergedFunc* self = merged_of(corpus, fn);
      if (self == nullptr || spawners.count(self) != 0) continue;
      std::vector<std::string> params = param_names(fn);
      if (params.empty()) continue;
      const FileData& f = *fn.file;
      bool spawns = false;
      for (std::size_t i = fn.body_begin; i + 1 < fn.body_end && !spawns;
           ++i) {
        if (!tok_ident(f.toks[i]) || !tok_is(f.toks[i + 1], "(")) continue;
        const std::string& n = f.toks[i].text;
        if (is_keyword(n) || is_macro_name(n)) continue;
        if (!name_is_seed(n)) {
          const MergedFunc* target = resolve_call(f, i, fn.klass, corpus);
          if (target == nullptr || spawners.count(target) == 0) continue;
        }
        std::size_t close = f.partner[i + 1];
        if (close == kNone || close > fn.body_end) continue;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (tok_ident(f.toks[k]) &&
              std::find(params.begin(), params.end(), f.toks[k].text) !=
                  params.end()) {
            spawns = true;
            break;
          }
        }
      }
      if (spawns) {
        spawners.insert(self);
        changed = true;
      }
    }
  }
  return spawners;
}

}  // namespace

std::set<const MergedFunc*> compute_spawners(const Corpus& corpus) {
  return spawner_fixed_point(corpus, {"parallel_for", "submit"});
}

std::set<const MergedFunc*> compute_async_spawners(const Corpus& corpus) {
  return spawner_fixed_point(corpus, {"submit"});
}

std::vector<EscapeFinding> find_escapes(
    const Corpus& corpus, const FieldTable& fields,
    const std::set<const MergedFunc*>& spawners) {
  std::vector<EscapeFinding> out;
  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    const FileData& f = *fn.file;
    for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
      if (!tok_ident(f.toks[i]) || !tok_is(f.toks[i + 1], "(")) continue;
      const std::string& n = f.toks[i].text;
      if (is_keyword(n) || is_macro_name(n)) continue;
      // `Type var(init)` declarations are not calls.
      if (i > fn.body_begin && tok_ident(f.toks[i - 1]) &&
          !is_keyword(f.toks[i - 1].text)) {
        continue;
      }
      if (!call_spawns(f, i, fn, corpus, spawners)) continue;
      std::size_t close = f.partner[i + 1];
      if (close == kNone || close > fn.body_end) continue;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (!tok_is(f.toks[k], "[") || f.partner[k] == kNone ||
            f.partner[k] >= close) {
          continue;
        }
        // Lambda introducers follow '(' or ','; subscripts follow a value.
        if (!tok_is(f.toks[k - 1], "(") && !tok_is(f.toks[k - 1], ",")) {
          continue;
        }
        k = analyze_lambda(fn, corpus, fields, n, k, close, &out);
      }
      i = close;
    }
  }
  return out;
}

std::vector<EscapeFinding> find_task_lifetime(
    const Corpus& corpus, const std::set<const MergedFunc*>& async_spawners) {
  std::vector<EscapeFinding> out;
  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    const MergedFunc* self = merged_of(corpus, fn);
    if (self != nullptr && !self->view_ok.empty()) continue;  // audited
    const FileData& f = *fn.file;
    for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
      if (!tok_ident(f.toks[i]) || !tok_is(f.toks[i + 1], "(")) continue;
      const std::string& n = f.toks[i].text;
      if (is_keyword(n) || is_macro_name(n)) continue;
      if (i > fn.body_begin && tok_ident(f.toks[i - 1]) &&
          !is_keyword(f.toks[i - 1].text)) {
        continue;  // `Type var(init)` declaration
      }
      bool spawns = n == "submit";
      if (!spawns) {
        const MergedFunc* target = resolve_call(f, i, fn.klass, corpus);
        spawns = target != nullptr && async_spawners.count(target) != 0;
      }
      if (!spawns) continue;
      std::size_t close = f.partner[i + 1];
      if (close == kNone || close > fn.body_end) continue;
      // A later wait/join in the same body pins the task to the frame.
      bool joined = false;
      for (std::size_t k = close; k + 1 < fn.body_end && !joined; ++k) {
        if (tok_ident(f.toks[k]) && is_join_name(f.toks[k].text) &&
            tok_is(f.toks[k + 1], "(")) {
          joined = true;
        }
      }
      if (joined) {
        i = close;
        continue;
      }
      for (std::size_t k = i + 2; k < close; ++k) {
        if (!tok_is(f.toks[k], "[") || f.partner[k] == kNone ||
            f.partner[k] >= close) {
          continue;
        }
        if (!tok_is(f.toks[k - 1], "(") && !tok_is(f.toks[k - 1], ",")) {
          continue;
        }
        k = check_task_lambda(fn, n, k, close, &out);
      }
      i = close;
    }
  }
  return out;
}

}  // namespace ids::analyzer
