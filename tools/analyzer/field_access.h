#pragma once

// Per-field access model for ids-analyzer's concurrency layer.
//
// Builds on the corpus' member-declaration spans: every data member of
// every class is classified (const, static, atomic, synchronization
// primitive, IDS_GUARDED_BY annotation, IDS_SINGLE_QUERY_ONLY waiver), and
// every function body is scanned for write sites against those fields —
// direct assignments, increments, and mutating method calls — each tagged
// with whether the site runs inside a constructor/destructor and which
// ids::MutexLock guards (if any) are alive at the site.
//
// Two consumers: [guarded-by] inference (rules_concurrency.cpp) compares
// held-lock sets across a field's write sites, and the
// --certify=concurrent-exec walk classifies every field transitively
// reachable from IdsEngine::execute. The class-safety fixed point lives
// here too: a class is concurrency-safe when every field is const, a sync
// primitive, atomic, lock-annotated, waived, or never written outside its
// constructor — with mutating method calls resolved against the callee
// class' own safety, iterated until stable.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "corpus.h"

namespace ids::analyzer {

struct FieldInfo {
  std::string klass;       // owning class
  std::string name;        // member name
  std::string type_class;  // corpus class of the declared type ("" = external)
  std::string path;        // file of the declaration
  int line = 0;
  bool is_const = false;    // const/constexpr value or reference binding
  bool is_static = false;   // class-static data member
  bool is_mutable = false;  // declared mutable (writable from const methods)
  bool is_atomic = false;   // std::atomic<...> (or atomic_* alias)
  bool is_sync = false;     // ids::Mutex / ids::CondVar
  std::string guarded_by;   // IDS_GUARDED_BY argument ("" = unannotated)
  std::string waiver;       // IDS_SINGLE_QUERY_ONLY reason ("" = not waived)
  std::string frozen_after;  // IDS_FROZEN_AFTER freeze method ("" = none)

  std::string qualified() const { return klass + "::" + name; }
  /// const, sync primitive, atomic, lock-annotated, waived, or phase-
  /// frozen — the field can never be an *unguarded* race by itself (for
  /// frozen fields the phase rules carry the proof obligation).
  bool protected_state() const {
    return is_const || is_sync || is_atomic || !guarded_by.empty() ||
           !waiver.empty() || !frozen_after.empty();
  }
};

struct WriteSite {
  std::string path;
  int line = 0;
  bool in_ctor = false;     // inside a constructor/destructor of the class
  bool under_lock = false;  // some MutexLock / IDS_REQUIRES guard is alive
  std::string lock;         // a held lock node at the site ("" = none)
  bool via_method = false;  // mutation through a non-const method call
  std::string detail;       // operator or method name that mutates
  const FuncDecl* fn = nullptr;  // enclosing function (owned by the corpus)
};

struct FieldTable {
  std::vector<FieldInfo> fields;  // sorted by (class, name); stable once built
  /// Namespace-scope variable declarations (klass == ""), sorted by
  /// (path, name) — the global side of the shared-state certificate.
  std::vector<FieldInfo> globals;
  /// class -> member name -> index into `fields`.
  std::map<std::string, std::map<std::string, std::size_t>> by_class;
  /// field index -> write sites (declaration order of the enclosing funcs).
  std::map<std::size_t, std::vector<WriteSite>> writes;
  /// Classes that directly own an ids::Mutex member.
  std::set<std::string> class_has_mutex;
  /// Classes with an unprotected `mutable` field: their const methods can
  /// mutate shared state, so const-ness alone does not prove a call safe.
  std::set<std::string> mutable_trap;
  /// Complement of the concurrency-safe greatest fixed point: a class in
  /// this set has at least one field that is mutable shared state.
  std::set<std::string> unsafe_classes;

  const FieldInfo* find(const std::string& klass,
                        const std::string& name) const {
    auto ci = by_class.find(klass);
    if (ci == by_class.end()) return nullptr;
    auto fi = ci->second.find(name);
    return fi == ci->second.end() ? nullptr : &fields[fi->second];
  }
  bool class_safe(const std::string& klass) const {
    return unsafe_classes.count(klass) == 0;
  }
  /// Non-ctor write sites of the field at `idx` (empty when never written).
  const std::vector<WriteSite>* sites(std::size_t idx) const {
    auto it = writes.find(idx);
    return it == writes.end() ? nullptr : &it->second;
  }
};

/// Builds the field table, write-site summaries, and the class-safety
/// fixed point for the whole corpus.
FieldTable build_field_table(const Corpus& corpus);

/// Parses one variable-declaration token span (a class-member span, a
/// namespace-scope span, or a function-local `static` declaration) into a
/// FieldInfo: initializer cut at the top-level '=', trailing IDS_*(...)
/// annotation groups recorded, const/static/mutable/atomic/sync flags and
/// the declared type's corpus class resolved. Returns false for spans
/// that are not data declarations.
bool parse_decl_span(const FileData& f, std::size_t begin, std::size_t end,
                     const std::string& klass, const Corpus& corpus,
                     FieldInfo* out);

/// True for method names that mutate their receiver on standard-library
/// containers (push_back, insert, clear, ...) — used when the receiver's
/// class is outside the corpus and const-ness cannot be resolved.
bool is_mutating_container_method(const std::string& name);

/// Parameter names of the declarator's parameter list (last identifier of
/// each top-level comma-separated parameter, defaults skipped).
std::vector<std::string> param_names(const FuncDecl& fn);

/// Scope-aware held-lock tracker, shared by the write-site collector and
/// the escape analysis: feed it every token of a body in order and it
/// maintains the set of ids::MutexLock guards (plus IDS_REQUIRES
/// contracts) alive at the current position, expiring each guard with its
/// enclosing brace scope.
class LockScope {
 public:
  LockScope(const FuncDecl& fn, const Corpus& corpus);

  /// Advances over the token at `i`; call once per index, in order.
  void step(std::size_t i);

  bool any_held() const { return !held_.empty(); }
  /// Most recently acquired lock node ("" when none is held).
  const std::string& innermost() const {
    static const std::string kNone_;
    return held_.empty() ? kNone_ : held_.back().node;
  }
  bool holds(const std::string& node) const;

 private:
  struct Guard {
    std::string node;
    int depth;
  };
  const FuncDecl& fn_;
  const Corpus& corpus_;
  const FileData& f_;
  std::vector<Guard> held_;
  int depth_ = 0;
};

}  // namespace ids::analyzer
