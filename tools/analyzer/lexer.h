#pragma once

// Token stream for ids-analyzer: a minimal C++ lexer with exactly the
// fidelity the analysis rules need — identifiers, multi-character
// operators, and line numbers survive; comments, string/char literal
// *contents*, and preprocessor directives do not. No libclang: the
// analyzer reasons over this stream with file-local dataflow only.

#include <cctype>
#include <string>
#include <vector>

namespace ids::analyzer {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;  // punctuation keeps its spelling ("::", "->", "<=", ...)
  int line;
};

inline bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
inline bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Lexes `src`. Preprocessor lines (including backslash continuations) are
/// dropped entirely, so macro *definitions* never reach the rules — only
/// macro *uses* in normal code do, which is what the annotation- and
/// escape-hatch-aware rules key on.
inline std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto skip_to_eol = [&](bool honor_continuation) {
    while (i < n) {
      if (src[i] == '\\' && honor_continuation && i + 1 < n &&
          (src[i + 1] == '\n' ||
           (src[i + 1] == '\r' && i + 2 < n && src[i + 2] == '\n'))) {
        i += src[i + 1] == '\n' ? 2 : 3;
        ++line;
        continue;
      }
      if (src[i] == '\n') return;  // caller consumes the newline
      ++i;
    }
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {  // preprocessor directive
      skip_to_eol(/*honor_continuation=*/true);
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      skip_to_eol(/*honor_continuation=*/false);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    if (c == '"' || c == '\'') {
      // Classic string/char literal; escapes are honored. Raw strings are
      // recognized from the identifier branch below (the R prefix lexes
      // first), so this path never sees one.
      char quote = c;
      int start_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.push_back({Token::Kind::kString, quote == '"' ? "\"\"" : "''",
                     start_line});
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t b = i;
      while (i < n && is_ident_char(src[i])) ++i;
      std::string word = src.substr(b, i - b);
      // Raw string literal: R"delim( ... )delim" (plus encoding prefixes).
      // The payload is uninterpreted — lexing its parens/braces/quotes as
      // tokens would desync every scope downstream (same failure family as
      // the digit-separator case above), so consume it as one kString.
      if (i < n && src[i] == '"' &&
          (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
           word == "LR")) {
        int start_line = line;
        std::size_t q = i + 1;  // first d-char after the opening quote
        std::string delim;
        while (q < n && src[q] != '(' && src[q] != '"' && src[q] != ')' &&
               src[q] != '\\' && !std::isspace(static_cast<unsigned char>(src[q])) &&
               delim.size() < 16) {
          delim += src[q++];
        }
        if (q < n && src[q] == '(') {
          const std::string closer = ")" + delim + "\"";
          std::size_t end_pos = src.find(closer, q + 1);
          if (end_pos == std::string::npos) end_pos = n;
          for (std::size_t k = q + 1; k < end_pos; ++k) {
            if (src[k] == '\n') ++line;
          }
          i = end_pos + closer.size() <= n ? end_pos + closer.size() : n;
          out.push_back({Token::Kind::kString, "\"\"", start_line});
          continue;
        }
        // Malformed prefix (no d-char-seq opener): fall through and let the
        // plain-string branch pick up the quote on the next iteration.
      }
      out.push_back({Token::Kind::kIdent, word, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t b = i;
      // A '\'' between digits is a C++14 digit separator (50'000), not a
      // char-literal opener — mistaking it for one swallows source until
      // the next quote and collapses every scope in between.
      while (i < n && (is_ident_char(src[i]) || src[i] == '.' ||
                       (src[i] == '\'' && i + 1 < n &&
                        is_ident_char(src[i + 1])) ||
                       ((src[i] == '+' || src[i] == '-') && i > b &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        ++i;
      }
      out.push_back({Token::Kind::kNumber, src.substr(b, i - b), line});
      continue;
    }
    // Multi-character operators first (longest match), so "->" and "::"
    // are single tokens the rules can pattern-match on.
    static const char* kOps3[] = {"<<=", ">>=", "...", "->*"};
    static const char* kOps2[] = {"::", "->", "==", "!=", "<=", ">=", "&&",
                                  "||", "<<", ">>", "++", "--", "+=", "-=",
                                  "*=", "/=", "%=", "&=", "|=", "^=", ".*"};
    std::string op(1, c);
    for (const char* o : kOps3) {
      if (src.compare(i, 3, o) == 0) {
        op = o;
        break;
      }
    }
    if (op.size() == 1) {
      for (const char* o : kOps2) {
        if (src.compare(i, 2, o) == 0) {
          op = o;
          break;
        }
      }
    }
    out.push_back({Token::Kind::kPunct, op, line});
    i += op.size();
  }
  return out;
}

}  // namespace ids::analyzer
