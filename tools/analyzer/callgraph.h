#pragma once

// Whole-program call graph for ids-analyzer. Nodes are MergedFunc entries
// from the corpus; edges come from scanning every recorded function body
// for call sites and resolving each one:
//
//   unique      typed resolution (member call on a typed receiver, a
//               Class::qualified call, the current class, or a globally
//               unique name) — exactly one target.
//   overapprox  virtual-call over-approximation: an untyped receiver or an
//               ambiguous free name fans out to every corpus function with
//               that name whose declared arity admits the argument count.
//   external    provably outside the corpus: unknown name, a typed
//               receiver whose class has no such method (smart-pointer
//               `.get()`, container `.size()`), or an arity-incompatible
//               name collision.
//   unresolved  a call through an expression we cannot name — function
//               pointers, functors, `tasks[i]()` — the honest residue the
//               resolution ratio reports.
//
// The interprocedural rules consume the edge set for fixed-point summary
// propagation (may-acquire, may-block, reachability) and re-classify call
// sites token-by-token while walking bodies.

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "corpus.h"

namespace ids::analyzer {

struct CallTargets {
  enum class Kind { kUnique, kOverapprox, kExternal, kUnresolved };
  Kind kind = Kind::kExternal;
  std::vector<const MergedFunc*> targets;  // empty for external/unresolved
};

/// Classifies the call whose callee-name token sits at `idx` (see the
/// taxonomy above). `idx` must point at an identifier followed by '('.
CallTargets resolve_targets(const FileData& f, std::size_t idx,
                            const std::string& cur_class,
                            const Corpus& corpus);

/// Walks `fn`'s body and invokes `visit(tok, ct)` for every call site:
/// `tok` is the callee-name token index for named calls, or the index of
/// the '(' for calls through an expression (ct.kind == kUnresolved).
/// Lambda introducers and declaration-style `Type var(init)` idents are
/// not call sites and are skipped.
void for_each_call(
    const FuncDecl& fn, const Corpus& corpus,
    const std::function<void(std::size_t, const CallTargets&)>& visit);

struct CallGraphStats {
  std::size_t decls = 0;       // FuncDecl records (declarations+definitions)
  std::size_t functions = 0;   // merged (class, name) entries
  std::size_t bodies = 0;      // definitions with a body
  std::size_t call_sites = 0;
  std::size_t edges = 0;       // distinct caller->callee pairs
  std::size_t resolved_unique = 0;
  std::size_t resolved_overapprox = 0;
  std::size_t external = 0;
  std::size_t unresolved = 0;

  /// Share of in-corpus-bindable call sites the graph actually bound:
  /// resolved / (resolved + unresolved). External calls are out of scope
  /// by construction and do not count against the analyzer.
  double resolution_ratio() const {
    const std::size_t resolved = resolved_unique + resolved_overapprox;
    const std::size_t denom = resolved + unresolved;
    return denom == 0 ? 1.0 : static_cast<double>(resolved) / denom;
  }
};

struct CallGraph {
  /// caller -> callees, over unique + overapprox resolutions.
  std::map<const MergedFunc*, std::set<const MergedFunc*>> out;
  /// Edges from unique resolutions only — the subgraph the lock/blocking
  /// summaries propagate over (over-approximated edges would manufacture
  /// un-actionable findings).
  std::map<const MergedFunc*, std::set<const MergedFunc*>> out_unique;
  CallGraphStats stats;

  void build(const Corpus& corpus);

  /// Forward reachability over `out` (the over-approximated graph).
  std::set<const MergedFunc*> reachable_from(
      const std::vector<const MergedFunc*>& roots) const;

  /// Forward reachability over `out_unique` only. The phase rules use
  /// this for serve-phase classification: over-approximated edges fan
  /// common names (`add`, `freeze`) out to unrelated classes and would
  /// manufacture post-freeze-write findings that no real path executes.
  std::set<const MergedFunc*> reachable_from_unique(
      const std::vector<const MergedFunc*>& roots) const;
};

}  // namespace ids::analyzer
