#include "callgraph.h"

#include <deque>

namespace ids::analyzer {
namespace {

/// Receiver class of the member call at `idx` (token after '.'/'->'), or
/// "" when the receiver cannot be typed.
std::string receiver_class(const FileData& f, std::size_t idx,
                           const std::string& cur_class,
                           const Corpus& corpus) {
  if (idx < 2) return "";
  if (!tok_is(f.toks[idx - 1], ".") && !tok_is(f.toks[idx - 1], "->")) {
    return "";
  }
  if (!tok_ident(f.toks[idx - 2])) return "";
  const std::string& recv = f.toks[idx - 2].text;
  if (recv == "this") return cur_class;
  auto mi = corpus.members.find(cur_class);
  if (mi != corpus.members.end()) {
    auto ri = mi->second.find(recv);
    if (ri != mi->second.end()) return ri->second;
  }
  return "";
}

}  // namespace

CallTargets resolve_targets(const FileData& f, std::size_t idx,
                            const std::string& cur_class,
                            const Corpus& corpus) {
  using Kind = CallTargets::Kind;
  if (const MergedFunc* m = resolve_call(f, idx, cur_class, corpus)) {
    return {Kind::kUnique, {m}};
  }
  const std::string& name = f.toks[idx].text;
  const bool member_call =
      idx >= 1 &&
      (tok_is(f.toks[idx - 1], ".") || tok_is(f.toks[idx - 1], "->"));
  if (member_call &&
      !receiver_class(f, idx, cur_class, corpus).empty()) {
    // Typed receiver whose class has no such method: the call targets code
    // outside the corpus (std::unique_ptr::get, std::vector::size, ...).
    return {Kind::kExternal, {}};
  }
  if (!member_call && idx >= 2 && tok_is(f.toks[idx - 1], "::") &&
      tok_ident(f.toks[idx - 2]) &&
      corpus.classes.count(f.toks[idx - 2].text)) {
    return {Kind::kExternal, {}};  // Class:: qualifier, method not recorded
  }
  auto bi = corpus.by_name.find(name);
  if (bi == corpus.by_name.end()) return {Kind::kExternal, {}};
  const std::size_t argc = call_arg_count(f, idx + 1);
  std::vector<const MergedFunc*> cands;
  for (const MergedFunc* m : bi->second) {
    if (m->arity_compatible(argc)) cands.push_back(m);
  }
  if (cands.empty()) {
    // The name exists in the corpus but no declaration admits this
    // argument count: an external name collision (e.g. `w.join()` vs the
    // corpus's two-argument string join).
    return {Kind::kExternal, {}};
  }
  return {Kind::kOverapprox, std::move(cands)};
}

void for_each_call(
    const FuncDecl& fn, const Corpus& corpus,
    const std::function<void(std::size_t, const CallTargets&)>& visit) {
  const FileData& f = *fn.file;
  // '(' indices that open a lambda parameter list — `](...)` is a lambda
  // introducer, not a call through the preceding ']'.
  std::set<std::size_t> lambda_parens;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (!tok_is(f.toks[i], "[")) continue;
    const bool subscript =
        i > fn.body_begin &&
        (tok_ident(f.toks[i - 1]) || tok_is(f.toks[i - 1], ")") ||
         tok_is(f.toks[i - 1], "]"));
    if (subscript) continue;
    std::size_t close = f.partner[i];
    if (close != kNone && close + 1 < fn.body_end &&
        tok_is(f.toks[close + 1], "(")) {
      lambda_parens.insert(close + 1);
    }
  }
  for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    if (!tok_is(f.toks[i + 1], "(")) continue;
    if (tok_ident(f.toks[i])) {
      const std::string& name = f.toks[i].text;
      if (is_keyword(name) || is_macro_name(name)) continue;
      // `Type var(init)` is a declaration, not a call: the name right
      // before the parens is preceded by another (non-keyword) identifier.
      if (i > fn.body_begin && tok_ident(f.toks[i - 1]) &&
          !is_keyword(f.toks[i - 1].text)) {
        continue;
      }
      visit(i, resolve_targets(f, i, fn.klass, corpus));
    } else if ((tok_is(f.toks[i], ")") || tok_is(f.toks[i], "]")) &&
               lambda_parens.count(i + 1) == 0) {
      visit(i + 1, {CallTargets::Kind::kUnresolved, {}});
    }
  }
}

void CallGraph::build(const Corpus& corpus) {
  stats.decls = corpus.funcs.size();
  for (const auto& [klass, fns] : corpus.merged) {
    (void)klass;
    stats.functions += fns.size();
  }
  std::set<std::pair<const MergedFunc*, const MergedFunc*>> seen;
  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    stats.bodies += 1;
    auto ci = corpus.merged.find(fn.klass);
    if (ci == corpus.merged.end()) continue;
    auto fi = ci->second.find(fn.name);
    if (fi == ci->second.end()) continue;
    const MergedFunc* caller = &fi->second;
    for_each_call(fn, corpus, [&](std::size_t, const CallTargets& ct) {
      stats.call_sites += 1;
      switch (ct.kind) {
        case CallTargets::Kind::kUnique:
          stats.resolved_unique += 1;
          break;
        case CallTargets::Kind::kOverapprox:
          stats.resolved_overapprox += 1;
          break;
        case CallTargets::Kind::kExternal:
          stats.external += 1;
          break;
        case CallTargets::Kind::kUnresolved:
          stats.unresolved += 1;
          break;
      }
      for (const MergedFunc* target : ct.targets) {
        if (seen.insert({caller, target}).second) stats.edges += 1;
        out[caller].insert(target);
        if (ct.kind == CallTargets::Kind::kUnique) {
          out_unique[caller].insert(target);
        }
      }
    });
  }
}

std::set<const MergedFunc*> CallGraph::reachable_from(
    const std::vector<const MergedFunc*>& roots) const {
  std::set<const MergedFunc*> seen(roots.begin(), roots.end());
  std::deque<const MergedFunc*> queue(roots.begin(), roots.end());
  while (!queue.empty()) {
    const MergedFunc* u = queue.front();
    queue.pop_front();
    auto it = out.find(u);
    if (it == out.end()) continue;
    for (const MergedFunc* v : it->second) {
      if (seen.insert(v).second) queue.push_back(v);
    }
  }
  return seen;
}

std::set<const MergedFunc*> CallGraph::reachable_from_unique(
    const std::vector<const MergedFunc*>& roots) const {
  std::set<const MergedFunc*> seen(roots.begin(), roots.end());
  std::deque<const MergedFunc*> queue(roots.begin(), roots.end());
  while (!queue.empty()) {
    const MergedFunc* u = queue.front();
    queue.pop_front();
    auto it = out_unique.find(u);
    if (it == out_unique.end()) continue;
    for (const MergedFunc* v : it->second) {
      if (seen.insert(v).second) queue.push_back(v);
    }
  }
  return seen;
}

}  // namespace ids::analyzer
