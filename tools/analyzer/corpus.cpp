#include "corpus.h"

#include <algorithm>

namespace ids::analyzer {
namespace {

/// Pass A: one linear scan per file, recursing into class and namespace
/// bodies, recording function declarations/definitions and class-member
/// declaration spans. Function *bodies* are recorded, not recursed into;
/// the rules walk them later.

void compute_partners(FileData& f) {
  f.partner.assign(f.toks.size(), kNone);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < f.toks.size(); ++i) {
    const std::string& t = f.toks[i].text;
    if (f.toks[i].kind != Token::Kind::kPunct) continue;
    if (t == "(" || t == "{" || t == "[") {
      stack.push_back(i);
    } else if (t == ")" || t == "}" || t == "]") {
      const char open = t == ")" ? '(' : (t == "}" ? '{' : '[');
      // Tolerate mismatches: pop until the matching opener kind.
      while (!stack.empty() && f.toks[stack.back()].text[0] != open) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        f.partner[stack.back()] = i;
        f.partner[i] = stack.back();
        stack.pop_back();
      }
    }
  }
}

/// Skips a template parameter list starting at `i` (which may or may not
/// point at '<'); returns the index after the closing '>'.
std::size_t skip_template_params(const FileData& f, std::size_t i,
                                 std::size_t end) {
  if (i >= end || !tok_is(f.toks[i], "<")) return i;
  int depth = 0;
  while (i < end) {
    const std::string& t = f.toks[i].text;
    if (t == "<") depth += 1;
    else if (t == ">") depth -= 1;
    else if (t == ">>") depth -= 2;
    ++i;
    if (depth <= 0) break;
  }
  return i;
}

/// Splits annotation-macro arguments: tokens between the parens, separated
/// at top-level commas, each joined into a single string ("mu", "a.mu_").
std::vector<std::string> annotation_args(const FileData& f, std::size_t open) {
  std::vector<std::string> out;
  std::size_t close = f.partner[open];
  if (close == kNone) return out;
  std::string cur;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = f.toks[i].text;
    if (t == "(") ++depth;
    if (t == ")") --depth;
    if (t == "," && depth == 0) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += t;
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Return-type classification for the declarator whose name token is at
/// `name_idx`: walk back over `Class::` qualifiers, then look at the token
/// just before — `Status` or `Result<...>`.
Ret classify_return(const FileData& f, std::size_t name_idx) {
  std::size_t q = name_idx;
  while (q >= 2 && tok_is(f.toks[q - 1], "::") && tok_ident(f.toks[q - 2])) {
    q -= 2;
  }
  if (q == 0) return Ret::kOther;
  std::size_t k = q - 1;
  if (tok_is(f.toks[k], "Status")) return Ret::kStatus;
  if (tok_is(f.toks[k], ">") || tok_is(f.toks[k], ">>")) {
    int depth = 0;
    std::size_t m = k;
    while (true) {
      const std::string& t = f.toks[m].text;
      if (t == ">") depth += 1;
      else if (t == ">>") depth += 2;
      else if (t == "<") depth -= 1;
      if (depth <= 0) break;
      if (m == 0) return Ret::kOther;
      --m;
    }
    if (m >= 1 && tok_is(f.toks[m - 1], "Result")) return Ret::kResult;
  }
  return Ret::kOther;
}

/// Head token of the return declarator for FuncDecl::ret_head: walk back
/// over `Class::` qualifiers from the name, then classify the token just
/// before it — "&"/"*" for references and pointers, the template head for
/// `std::vector<T>`/`std::span<T>` ("vector", "span"), otherwise the type
/// ident itself. "" when nothing parseable precedes the name (constructors,
/// macros, operators).
std::string compute_ret_head(const FileData& f, std::size_t name_idx) {
  std::size_t q = name_idx;
  while (q >= 2 && tok_is(f.toks[q - 1], "::") && tok_ident(f.toks[q - 2])) {
    q -= 2;
  }
  if (q == 0) return "";
  std::size_t k = q - 1;
  const std::string& prev = f.toks[k].text;
  if (prev == "&" || prev == "&&") return "&";
  if (prev == "*") return "*";
  if (prev == ">" || prev == ">>") {
    // Template type: walk back to the matching '<', the ident before it is
    // the head ("vector", "span", "unique_ptr", ...).
    int depth = 0;
    std::size_t m = k;
    while (true) {
      const std::string& t = f.toks[m].text;
      if (t == ">") depth += 1;
      else if (t == ">>") depth += 2;
      else if (t == "<") depth -= 1;
      if (depth <= 0) break;
      if (m == 0) return "";
      --m;
    }
    if (m >= 1 && tok_ident(f.toks[m - 1])) return f.toks[m - 1].text;
    return "";
  }
  if (tok_ident(f.toks[k]) && !is_keyword(prev) && prev != "const" &&
      prev != "constexpr" && prev != "inline" && prev != "static" &&
      prev != "virtual" && prev != "explicit" && prev != "friend" &&
      !is_macro_name(prev)) {
    return prev;
  }
  return "";
}

/// Parameter-count range [min, max] for the parameter list at `open`
/// (top-level comma count; '=' defaults lower the minimum; "..." makes the
/// maximum unbounded).
void declared_arity(const FileData& f, std::size_t open, std::size_t* min_out,
                    std::size_t* max_out) {
  std::size_t close = f.partner[open];
  *min_out = 0;
  *max_out = 0;
  if (close == kNone || close <= open + 1) return;  // "()" or unbalanced
  std::size_t params = 1, defaults = 0;
  bool variadic = false;
  int depth = 0, angle = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = f.toks[i].text;
    if (f.toks[i].kind == Token::Kind::kPunct) {
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      else if (t == "<") ++angle;
      else if (t == ">") angle = std::max(0, angle - 1);
      else if (t == ">>") angle = std::max(0, angle - 2);
      else if (depth == 0 && angle == 0) {
        if (t == ",") ++params;
        else if (t == "=") ++defaults;
        else if (t == "...") variadic = true;
      }
    }
  }
  *max_out = variadic ? kVariadic : params;
  *min_out = params >= defaults ? params - defaults : 0;
}

void scan_range(FileData& f, std::size_t begin, std::size_t end,
                const std::string& cur_class, Corpus& corpus);

/// Parses one function declarator whose name token is at `i` (followed by
/// '('). Records the FuncDecl and returns the index to resume scanning at.
std::size_t handle_declarator(FileData& f, std::size_t i, std::size_t end,
                              const std::string& cur_class, Corpus& corpus) {
  FuncDecl fn;
  fn.name = f.toks[i].text;
  fn.klass = cur_class;
  fn.file = &f;
  fn.line = f.toks[i].line;
  if (i >= 2 && tok_is(f.toks[i - 1], "::") && tok_ident(f.toks[i - 2])) {
    fn.klass = f.toks[i - 2].text;  // out-of-line Class::name definition
  }
  fn.ret = classify_return(f, i);
  fn.ret_head = compute_ret_head(f, i);

  std::size_t open = i + 1;
  if (f.partner[open] == kNone) return i + 2;  // unbalanced; bail
  declared_arity(f, open, &fn.min_args, &fn.max_args);
  fn.params_begin = open + 1;
  fn.params_end = f.partner[open];
  std::size_t p = f.partner[open] + 1;

  auto record = [&](std::size_t resume) {
    corpus.funcs.push_back(fn);
    return resume;
  };

  while (p < end) {
    const Token& t = f.toks[p];
    if (tok_ident(t)) {
      if (t.text == "const" || t.text == "override" || t.text == "final" ||
          t.text == "mutable" || t.text == "volatile") {
        if (t.text == "const") fn.is_const_method = true;
        ++p;
      } else if (t.text == "noexcept") {
        if (p + 1 < end && tok_is(f.toks[p + 1], "(") &&
            f.partner[p + 1] != kNone) {
          p = f.partner[p + 1] + 1;
        } else {
          ++p;
        }
      } else if (t.text.rfind("IDS_", 0) == 0) {
        if (p + 1 < end && tok_is(f.toks[p + 1], "(") &&
            f.partner[p + 1] != kNone) {
          auto args = annotation_args(f, p + 1);
          if (t.text == "IDS_EXCLUDES") {
            fn.excludes = std::move(args);
          } else if (t.text == "IDS_REQUIRES" ||
                     t.text == "IDS_REQUIRES_SHARED") {
            fn.requires_held = std::move(args);
          } else if (t.text == "IDS_INVALIDATES") {
            fn.invalidates = true;
            fn.invalidates_args = std::move(args);
          } else if (t.text == "IDS_VIEW_OK") {
            fn.view_ok = args.empty() ? "unspecified" : args.front();
          }
          p = f.partner[p + 1] + 1;
        } else {
          // Paren-less contract markers (see common/thread_annotations.h).
          if (t.text == "IDS_MAY_BLOCK") fn.may_block = true;
          if (t.text == "IDS_WALLCLOCK_OK") fn.wallclock_ok = true;
          if (t.text == "IDS_STABLE_STORAGE") fn.stable_storage = true;
          ++p;
        }
      } else {
        // Unrecognized trailing ident (e.g. a type we misparsed): record
        // what we have and let the caller rescan from here.
        return record(p);
      }
    } else if (tok_is(t, "&") || tok_is(t, "&&")) {
      ++p;
    } else if (tok_is(t, "[") && f.partner[p] != kNone) {
      p = f.partner[p] + 1;  // [[attribute]]
    } else if (tok_is(t, "->")) {
      ++p;  // trailing return type: skip to '{' or ';'
      while (p < end && !tok_is(f.toks[p], "{") && !tok_is(f.toks[p], ";")) {
        if ((tok_is(f.toks[p], "(") || tok_is(f.toks[p], "[")) &&
            f.partner[p] != kNone) {
          p = f.partner[p] + 1;
        } else {
          ++p;
        }
      }
    } else if (tok_is(t, "=")) {
      p += 2;  // = default / = delete / = 0
    } else if (tok_is(t, ":")) {
      // Constructor init list: member(init) and member{init} items, then
      // the body brace (whose predecessor is ')' or '}').
      ++p;
      while (p < end) {
        if (tok_is(f.toks[p], "{")) {
          if (p > 0 && tok_ident(f.toks[p - 1])) {
            if (f.partner[p] == kNone) return record(p + 1);
            p = f.partner[p] + 1;  // brace-init of a member
          } else {
            break;  // function body
          }
        } else if (tok_is(f.toks[p], "(") && f.partner[p] != kNone) {
          p = f.partner[p] + 1;
        } else {
          ++p;
        }
      }
    } else if (tok_is(t, "{")) {
      if (f.partner[p] == kNone) return record(p + 1);
      fn.body_begin = p + 1;
      fn.body_end = f.partner[p];
      return record(f.partner[p] + 1);
    } else if (tok_is(t, ";") || tok_is(t, ",")) {
      return record(p + 1);
    } else {
      return record(p);  // something we don't model; stop cleanly
    }
  }
  return record(end);
}

void handle_class(FileData& f, std::size_t i, std::size_t end,
                  const std::string& cur_class, Corpus& corpus,
                  std::size_t* resume) {
  std::size_t j = i + 1;
  // Skip [[attributes]], alignas(...), and IDS_* annotation macros between
  // the class keyword and the name.
  while (j < end) {
    const Token& t = f.toks[j];
    if (tok_is(t, "[") && f.partner[j] != kNone) {
      j = f.partner[j] + 1;
    } else if (tok_ident(t) && (t.text.rfind("IDS_", 0) == 0 ||
                                t.text == "alignas")) {
      if (j + 1 < end && tok_is(f.toks[j + 1], "(") &&
          f.partner[j + 1] != kNone) {
        j = f.partner[j + 1] + 1;
      } else {
        ++j;
      }
    } else {
      break;
    }
  }
  std::string name;
  if (j < end && tok_ident(f.toks[j])) {
    name = f.toks[j].text;
    corpus.classes.insert(name);
    ++j;
  }
  std::size_t k = j;
  while (k < end && !tok_is(f.toks[k], "{") && !tok_is(f.toks[k], ";")) {
    if ((tok_is(f.toks[k], "(") || tok_is(f.toks[k], "[")) &&
        f.partner[k] != kNone) {
      k = f.partner[k] + 1;
    } else {
      ++k;
    }
  }
  if (k < end && tok_is(f.toks[k], "{") && f.partner[k] != kNone) {
    scan_range(f, k + 1, f.partner[k], name.empty() ? cur_class : name,
               corpus);
    *resume = f.partner[k] + 1;
  } else {
    *resume = k < end ? k + 1 : end;
  }
}

void scan_range(FileData& f, std::size_t begin, std::size_t end,
                const std::string& cur_class, Corpus& corpus) {
  std::size_t span_start = kNone;
  auto flush_span = [&](std::size_t span_end) {
    if (span_start != kNone && span_end > span_start) {
      if (!cur_class.empty()) {
        corpus.member_spans.push_back({cur_class, &f, span_start, span_end});
      } else {
        // Namespace-scope declaration: a global-variable candidate for the
        // shared-state certificate (field_access.cpp classifies it).
        corpus.global_spans.push_back({"", &f, span_start, span_end});
      }
    }
    span_start = kNone;
  };
  std::size_t i = begin;
  while (i < end) {
    const Token& t = f.toks[i];
    if (tok_ident(t)) {
      if (t.text == "template") {
        span_start = kNone;
        i = skip_template_params(f, i + 1, end);
        continue;
      }
      if (t.text == "namespace") {
        span_start = kNone;
        std::size_t j = i + 1;
        while (j < end && !tok_is(f.toks[j], "{") && !tok_is(f.toks[j], ";")) {
          ++j;
        }
        if (j < end && tok_is(f.toks[j], "{") && f.partner[j] != kNone) {
          scan_range(f, j + 1, f.partner[j], cur_class, corpus);
          i = f.partner[j] + 1;
        } else {
          i = j < end ? j + 1 : end;
        }
        continue;
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union") {
        span_start = kNone;
        std::size_t resume = i + 1;
        handle_class(f, i, end, cur_class, corpus, &resume);
        i = resume;
        continue;
      }
      if (t.text == "enum") {
        span_start = kNone;
        std::size_t j = i + 1;
        while (j < end && !tok_is(f.toks[j], "{") && !tok_is(f.toks[j], ";")) {
          ++j;
        }
        if (j < end && tok_is(f.toks[j], "{") && f.partner[j] != kNone) {
          i = f.partner[j] + 1;  // enumerators are not members
        } else {
          i = j < end ? j + 1 : end;
        }
        continue;
      }
      if (t.text == "using" || t.text == "typedef" ||
          t.text == "static_assert") {
        span_start = kNone;
        std::size_t j = i + 1;
        while (j < end && !tok_is(f.toks[j], ";")) {
          if ((tok_is(f.toks[j], "(") || tok_is(f.toks[j], "{") ||
               tok_is(f.toks[j], "[")) &&
              f.partner[j] != kNone) {
            j = f.partner[j] + 1;
          } else {
            ++j;
          }
        }
        i = j < end ? j + 1 : end;
        continue;
      }
      // Function declarator candidate: ident immediately followed by '('.
      // Not one when an '=' already opened an initializer in this span —
      // `T name_ = make_default();` is a member with a call initializer,
      // and the span must survive intact for the lifetime rules.
      if (i + 1 < end && tok_is(f.toks[i + 1], "(") && !is_keyword(t.text) &&
          !is_macro_name(t.text)) {
        bool in_initializer = false;
        for (std::size_t q = span_start == kNone ? i : span_start; q < i;
             ++q) {
          if (tok_is(f.toks[q], "=")) {
            in_initializer = true;
            break;
          }
        }
        if (!in_initializer) {
          span_start = kNone;
          i = handle_declarator(f, i, end, cur_class, corpus);
          continue;
        }
        // Skip the initializer call opaquely so its arguments cannot look
        // like declarators of their own.
        i = f.partner[i + 1] != kNone && f.partner[i + 1] < end
                ? f.partner[i + 1] + 1
                : i + 2;
        continue;
      }
    } else if (tok_is(t, "{")) {
      // Brace initializer on a declaration span (`atomic<bool> done_{false};`,
      // `std::vector<int> v{1, 2};`): the group closes straight onto the
      // terminating ';', so skip it opaquely and keep the span alive for
      // flush — otherwise brace-initialized members would never reach the
      // field table or the shared-state certificate.
      if (span_start != kNone && f.partner[i] != kNone &&
          f.partner[i] + 1 < end && tok_is(f.toks[f.partner[i] + 1], ";")) {
        i = f.partner[i] + 1;
        continue;
      }
      // Block we did not recognize (operator overload body, extern "C",
      // ...): skip it opaquely.
      span_start = kNone;
      if (f.partner[i] != kNone) {
        i = f.partner[i] + 1;
      } else {
        ++i;
      }
      continue;
    } else if (tok_is(t, ";")) {
      flush_span(i);
      ++i;
      continue;
    }
    if (span_start == kNone) span_start = i;
    ++i;
  }
}

/// Pass B: resolve member declaration spans into class->member->class once
/// every class name in the corpus is known.
void resolve_members(Corpus& corpus) {
  for (const MemberSpan& s : corpus.member_spans) {
    const FileData& f = *s.file;
    std::size_t b = s.begin, e = s.end;
    // Only the declarator matters: `T name_ = make_default();` carries its
    // initializer's parens, so cut at the first top-level '=' before the
    // function-pointer/operator screen below.
    for (std::size_t i = b; i < e; ++i) {
      if (tok_is(f.toks[i], "=")) {
        e = i;
        break;
      }
      if ((tok_is(f.toks[i], "(") || tok_is(f.toks[i], "{") ||
           tok_is(f.toks[i], "[")) &&
          f.partner[i] != kNone && f.partner[i] < e) {
        i = f.partner[i];
      }
    }
    // Strip trailing IDS_* annotation groups: `T name_ IDS_GUARDED_BY(mu_)`
    // (after the '='-cut, so an initializer does not hide them).
    while (e > b && tok_is(f.toks[e - 1], ")") && f.partner[e - 1] != kNone) {
      std::size_t o = f.partner[e - 1];
      if (o > b && tok_ident(f.toks[o - 1]) &&
          f.toks[o - 1].text.rfind("IDS_", 0) == 0) {
        e = o - 1;
      } else {
        break;
      }
    }
    bool has_paren = false;
    for (std::size_t i = b; i < e; ++i) {
      if (tok_is(f.toks[i], "(")) has_paren = true;
    }
    if (has_paren) continue;  // operator decls, function pointers, ...
    std::string member, klass;
    for (std::size_t i = b; i < e; ++i) {
      if (!tok_ident(f.toks[i])) continue;
      if (klass.empty() && corpus.classes.count(f.toks[i].text)) {
        klass = f.toks[i].text;
      }
      if (!is_keyword(f.toks[i].text)) member = f.toks[i].text;
    }
    if (!member.empty() && !klass.empty() && member != klass) {
      corpus.members[s.klass][member] = klass;
    }
  }
}

void build_merged(Corpus& corpus) {
  for (const FuncDecl& fn : corpus.funcs) {
    MergedFunc& m = corpus.merged[fn.klass][fn.name];
    m.name = fn.name;
    m.klass = fn.klass;
    switch (fn.ret) {
      case Ret::kStatus: m.saw_status = true; break;
      case Ret::kResult: m.saw_result = true; break;
      case Ret::kOther: m.saw_other = true; break;
    }
    if (!fn.excludes.empty()) m.excludes = fn.excludes;
    if (!fn.requires_held.empty()) m.requires_held = fn.requires_held;
    m.may_block = m.may_block || fn.may_block;
    m.wallclock_ok = m.wallclock_ok || fn.wallclock_ok;
    m.invalidates = m.invalidates || fn.invalidates;
    for (const std::string& a : fn.invalidates_args) {
      if (std::find(m.invalidates_args.begin(), m.invalidates_args.end(), a) ==
          m.invalidates_args.end()) {
        m.invalidates_args.push_back(a);
      }
    }
    m.stable_storage = m.stable_storage || fn.stable_storage;
    if (m.view_ok.empty()) m.view_ok = fn.view_ok;
    if (m.ret_head.empty()) m.ret_head = fn.ret_head;
    m.min_args = std::min(m.min_args, fn.min_args);
    if (m.max_args != kVariadic) {
      m.max_args = fn.max_args == kVariadic ? kVariadic
                                            : std::max(m.max_args, fn.max_args);
    }
    m.decls.push_back(&fn);
  }
  for (auto& [klass, fns] : corpus.merged) {
    for (auto& [name, m] : fns) corpus.by_name[name].push_back(&m);
  }
}

/// Pass C: thin-wrapper return-kind inference. A body that is exactly
/// `return <call-chain>(...);` whose callee is known to return Status or
/// Result makes the wrapper Status/Result-returning even when its declared
/// spelling (an alias, a typedef) defeated classify_return. Iterated to a
/// fixed point so wrappers of wrappers resolve too.
void infer_wrapper_returns(Corpus& corpus) {
  for (bool changed = true; changed;) {
    changed = false;
    for (const FuncDecl& fn : corpus.funcs) {
      if (!fn.has_body()) continue;
      MergedFunc& m = corpus.merged[fn.klass][fn.name];
      if (m.saw_status || m.saw_result || m.inferred != Ret::kOther) continue;
      const FileData& f = *fn.file;
      std::size_t b = fn.body_begin, e = fn.body_end;
      if (e <= b || !tok_is(f.toks[b], "return")) continue;
      if (e < b + 4 || !tok_is(f.toks[e - 1], ";")) continue;
      // The callee name is the ident right before the final '(' whose close
      // ends the statement; everything before it must be a receiver chain.
      if (!tok_is(f.toks[e - 2], ")")) continue;
      std::size_t open = f.partner[e - 2];
      if (open == kNone || open <= b + 1) continue;
      std::size_t name_idx = open - 1;
      if (!tok_ident(f.toks[name_idx])) continue;
      std::size_t k = name_idx;
      while (k >= b + 3 &&
             (tok_is(f.toks[k - 1], ".") || tok_is(f.toks[k - 1], "->") ||
              tok_is(f.toks[k - 1], "::")) &&
             tok_ident(f.toks[k - 2])) {
        k -= 2;
      }
      if (k != b + 1) continue;  // not a pure forwarding expression
      const std::string& callee = f.toks[name_idx].text;
      if (is_keyword(callee) || is_macro_name(callee)) continue;
      Ret r = resolve_ret(f, name_idx, fn.klass, corpus);
      if (r == Ret::kOther) continue;
      m.inferred = r;
      changed = true;
    }
  }
}

}  // namespace

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if", "while", "for", "switch", "return", "do", "else", "case",
      "default", "break", "continue", "goto", "co_return", "co_await",
      "co_yield", "throw", "new", "delete", "sizeof", "alignof", "typeid",
      "catch", "try", "using", "typedef", "static_assert", "decltype",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
      "operator", "public", "private", "protected", "this"};
  return kKw.count(s) != 0;
}

bool is_macro_name(const std::string& s) {
  return s.rfind("IDS_", 0) == 0 || s == "RETURN_IF_ERROR" ||
         s == "ASSIGN_OR_RETURN";
}

std::string qualify_lock(const std::string& lock, const std::string& klass) {
  if (klass.empty()) return lock;
  if (lock.find("::") != std::string::npos ||
      lock.find('.') != std::string::npos ||
      lock.find("->") != std::string::npos) {
    return lock;
  }
  return klass + "::" + lock;
}

std::size_t call_arg_count(const FileData& f, std::size_t open) {
  std::size_t close = f.partner[open];
  if (close == kNone || close <= open + 1) return 0;
  std::size_t args = 1;
  int depth = 0, angle = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = f.toks[i].text;
    if (f.toks[i].kind != Token::Kind::kPunct) continue;
    if (t == "(" || t == "[" || t == "{") ++depth;
    else if (t == ")" || t == "]" || t == "}") --depth;
    else if (t == "<") ++angle;
    else if (t == ">") angle = std::max(0, angle - 1);
    else if (t == ">>") angle = std::max(0, angle - 2);
    else if (t == "," && depth == 0 && angle == 0) ++args;
  }
  return args;
}

std::vector<std::pair<std::size_t, std::size_t>> statements(
    const FileData& f, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::size_t start = begin;
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = f.toks[i].text;
    if (f.toks[i].kind == Token::Kind::kPunct) {
      if (t == "(") ++depth;
      else if (t == ")") depth = std::max(0, depth - 1);
      else if (t == "{" || t == "}") {
        if (i > start) out.emplace_back(start, i);
        start = i + 1;
        depth = 0;
        continue;
      } else if (t == ";" && depth == 0) {
        if (i > start) out.emplace_back(start, i);
        start = i + 1;
        continue;
      }
    }
  }
  if (end > start) out.emplace_back(start, end);
  return out;
}

const MergedFunc* resolve_call(const FileData& f, std::size_t idx,
                               const std::string& cur_class,
                               const Corpus& corpus) {
  const std::string& name = f.toks[idx].text;
  auto in_class = [&](const std::string& c) -> const MergedFunc* {
    auto ci = corpus.merged.find(c);
    if (ci == corpus.merged.end()) return nullptr;
    auto fi = ci->second.find(name);
    return fi == ci->second.end() ? nullptr : &fi->second;
  };
  if (idx >= 2 &&
      (tok_is(f.toks[idx - 1], ".") || tok_is(f.toks[idx - 1], "->"))) {
    if (!tok_ident(f.toks[idx - 2])) return nullptr;
    const std::string& recv = f.toks[idx - 2].text;
    std::string c;
    if (recv == "this") {
      c = cur_class;
    } else {
      auto mi = corpus.members.find(cur_class);
      if (mi != corpus.members.end()) {
        auto ri = mi->second.find(recv);
        if (ri != mi->second.end()) c = ri->second;
      }
    }
    if (c.empty()) return nullptr;  // receiver of unknown type
    return in_class(c);
  }
  if (idx >= 2 && tok_is(f.toks[idx - 1], "::") && tok_ident(f.toks[idx - 2])) {
    const std::string& qual = f.toks[idx - 2].text;
    if (corpus.classes.count(qual)) return in_class(qual);
    // Namespace qualifier: fall through to the global lookup.
  } else if (!cur_class.empty()) {
    if (const MergedFunc* m = in_class(cur_class)) return m;
  }
  auto bi = corpus.by_name.find(name);
  if (bi == corpus.by_name.end() || bi->second.size() != 1) return nullptr;
  return bi->second[0];
}

Ret resolve_ret(const FileData& f, std::size_t idx,
                const std::string& cur_class, const Corpus& corpus,
                bool* inferred) {
  if (inferred != nullptr) *inferred = false;
  if (const MergedFunc* m = resolve_call(f, idx, cur_class, corpus)) {
    if (m->ambiguous_ret()) return Ret::kOther;
    if (inferred != nullptr) *inferred = m->ret_is_inferred();
    return m->ret();
  }
  // A member call whose receiver we could not type (a local variable, a
  // nested chain) must not fall back to the global name table: `x.f()` on
  // an unrelated type would inherit f's corpus-wide return kind.
  if (idx >= 1 &&
      (tok_is(f.toks[idx - 1], ".") || tok_is(f.toks[idx - 1], "->"))) {
    return Ret::kOther;
  }
  auto bi = corpus.by_name.find(f.toks[idx].text);
  if (bi == corpus.by_name.end() || bi->second.empty()) return Ret::kOther;
  Ret r = bi->second[0]->ret();
  bool inf = bi->second[0]->ret_is_inferred();
  for (const MergedFunc* m : bi->second) {
    if (m->ambiguous_ret() || m->ret() != r) return Ret::kOther;
    inf = inf || m->ret_is_inferred();
  }
  if (inferred != nullptr) *inferred = inf;
  return r;
}

std::unique_ptr<FileData> make_file_data(std::string path,
                                         const std::string& src) {
  auto fd = std::make_unique<FileData>();
  fd->path = std::move(path);
  fd->toks = lex(src);
  compute_partners(*fd);
  return fd;
}

void Corpus::add_file(std::string path, const std::string& src) {
  files.push_back(make_file_data(std::move(path), src));
}

void Corpus::adopt_file(std::unique_ptr<FileData> fd) {
  files.push_back(std::move(fd));
}

void Corpus::finalize() {
  for (auto& fd : files) scan_range(*fd, 0, fd->toks.size(), "", *this);
  resolve_members(*this);
  build_merged(*this);
  infer_wrapper_returns(*this);
}

}  // namespace ids::analyzer
