#pragma once

// Phase/epoch analysis for IDS_FROZEN_AFTER fields (DESIGN.md §13).
//
// An IDS_FROZEN_AFTER(freeze_method) annotation declares an ingest→
// freeze→serve epoch for one field: writes are legal only before the
// owning class's freeze method has run, and the serve phase (everything
// reachable from IdsEngine::execute) must never mutate it. The analysis
// checks, per annotated field:
//
//   [phase-discipline]
//     - the owning class defines the named freeze method;
//     - the field is not `mutable` (a mutable frozen field is the
//       lazy-prepare shape: const read paths that mutate post-freeze);
//     - no write site sits in a function reachable from
//       IdsEngine::execute over unique call edges (serve-phase write);
//     - the freeze method itself is not reachable from execute (a query
//       that can re-freeze can also observe the mutation).
//   [frozen-ingest-guard]
//     - every write site outside a constructor and outside the freeze
//       method sits in a function that checks the epoch first:
//       IDS_CHECK(!frozen...) / IDS_DCHECK(!frozen...) — the runtime
//       guard that turns a phase bug into a deterministic abort.
//
// Reachability runs over unique edges only (CallGraph::out_unique):
// over-approximated edges fan common mutator names out to unrelated
// classes and would flag writes no real serve path executes.
//
// Consumers: run_phase_rules (default mode) reports the violations as
// findings; run_certificate consults the same analysis to decide whether
// an IDS_FROZEN_AFTER field lands on the `frozen-after-init` rung or is
// a certificate violation.

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "callgraph.h"
#include "corpus.h"
#include "field_access.h"

namespace ids::analyzer {

struct PhaseViolation {
  std::string rule;  // "phase-discipline" | "frozen-ingest-guard"
  std::size_t field_idx = 0;  // index into FieldTable::fields
  std::string path;
  int line = 0;
  std::string message;
};

struct PhaseAnalysis {
  std::vector<PhaseViolation> violations;
  /// Field indexes (into FieldTable::fields) with >= 1 violation.
  std::set<std::size_t> violating_fields;

  bool field_ok(std::size_t idx) const {
    return violating_fields.count(idx) == 0;
  }
};

/// Runs the phase checks over every IDS_FROZEN_AFTER field in the table.
/// `graph` supplies serve-phase reachability from IdsEngine::execute (no
/// execute in the corpus means nothing is serve-phase).
PhaseAnalysis analyze_phases(const Corpus& corpus, const CallGraph& graph,
                             const FieldTable& table);

}  // namespace ids::analyzer
