// ids-analyzer: the repository's compiled static checker.
//
// No libclang: the binary lexes the given sources itself (lexer.h), builds
// a corpus-wide symbol table (which functions return Status/Result, which
// carry IDS_REQUIRES/IDS_EXCLUDES contracts, which members have which
// class types), and then runs four file-local dataflow rules over every
// recognized function body:
//
//   [discarded-status]  every Status/Result return value must be consumed
//                       or explicitly discarded via IDS_IGNORE_ERROR(...);
//                       a `(void)` cast is not an approved discard.
//   [unchecked-value]   no Result::value() / .status().message() without a
//                       dominating ok() check in the same function.
//   [lock-order]        lock acquisition order must be globally consistent:
//                       MutexLock acquisitions plus callee IDS_EXCLUDES
//                       contracts build a lock graph; any cycle fails, as
//                       does calling a function that IDS_EXCLUDES a lock
//                       the caller currently holds (self-deadlock).
//   [bare-assert]       assert( is banned; use IDS_CHECK / IDS_DCHECK or
//                       return a Status for recoverable conditions.
//
// The analysis is deliberately conservative: a call it cannot resolve
// (ambiguous name, receiver of unknown type, operator overload) is skipped
// rather than guessed at, so a finding is always actionable.
//
// Exit codes: 0 clean, 1 findings, 2 usage / IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"

namespace ids::analyzer {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

struct FileData {
  std::string path;
  std::vector<Token> toks;
  std::vector<std::size_t> partner;  // open<->close indices for () {} []
};

enum class Ret { kOther, kStatus, kResult };

struct FuncDecl {
  std::string name;
  std::string klass;  // enclosing class, or "Class" from Class::name; "" = free
  Ret ret = Ret::kOther;
  std::vector<std::string> excludes;       // raw IDS_EXCLUDES args
  std::vector<std::string> requires_held;  // raw IDS_REQUIRES args
  const FileData* file = nullptr;
  std::size_t body_begin = 0, body_end = 0;  // token range; begin==end: none
  int line = 0;
  bool has_body() const { return body_end > body_begin; }
};

/// Merged view of all declarations of (class, name): definitions usually
/// repeat neither the annotations nor the return type spelling of the
/// header declaration, so resolution wants the union.
struct MergedFunc {
  std::string name, klass;
  bool saw_status = false, saw_result = false, saw_other = false;
  std::vector<std::string> excludes, requires_held;

  Ret ret() const {
    // Overload sets that disagree are treated as unresolvable.
    if (saw_status && !saw_result && !saw_other) return Ret::kStatus;
    if (saw_result && !saw_status && !saw_other) return Ret::kResult;
    return Ret::kOther;
  }
  bool ambiguous_ret() const {
    return (saw_status || saw_result) && saw_other;
  }
};

struct MemberSpan {
  std::string klass;
  const FileData* file = nullptr;
  std::size_t begin = 0, end = 0;
};

struct Corpus {
  std::vector<std::unique_ptr<FileData>> files;
  std::vector<FuncDecl> funcs;  // one per declaration/definition, in order
  std::set<std::string> classes;
  std::vector<MemberSpan> member_spans;
  // Resolved after all files are parsed:
  std::map<std::string, std::map<std::string, MergedFunc>> merged;  // class->name
  std::map<std::string, std::vector<const MergedFunc*>> by_name;
  std::map<std::string, std::map<std::string, std::string>> members;  // class->member->class
};

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if", "while", "for", "switch", "return", "do", "else", "case",
      "default", "break", "continue", "goto", "co_return", "co_await",
      "co_yield", "throw", "new", "delete", "sizeof", "alignof", "typeid",
      "catch", "try", "using", "typedef", "static_assert", "decltype",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
      "operator", "public", "private", "protected", "this"};
  return kKw.count(s) != 0;
}

bool is_macro_name(const std::string& s) {
  return s.rfind("IDS_", 0) == 0 || s == "RETURN_IF_ERROR" ||
         s == "ASSIGN_OR_RETURN";
}

bool tok_is(const Token& t, const char* text) { return t.text == text; }
bool tok_ident(const Token& t) { return t.kind == Token::Kind::kIdent; }

/// Lock name resolution: a bare `mu_` in class C becomes "C::mu_" so two
/// classes that both call their lock `mutex_` stay distinct graph nodes.
std::string qualify_lock(const std::string& lock, const std::string& klass) {
  if (klass.empty()) return lock;
  if (lock.find("::") != std::string::npos ||
      lock.find('.') != std::string::npos ||
      lock.find("->") != std::string::npos) {
    return lock;
  }
  return klass + "::" + lock;
}

// ---------------------------------------------------------------------------
// Parsing: one linear scan per file, recursing into class and namespace
// bodies, recording function declarations/definitions and class-member
// declaration spans. Function *bodies* are recorded, not recursed into;
// the rules walk them later.
// ---------------------------------------------------------------------------

void compute_partners(FileData& f) {
  f.partner.assign(f.toks.size(), kNone);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < f.toks.size(); ++i) {
    const std::string& t = f.toks[i].text;
    if (f.toks[i].kind != Token::Kind::kPunct) continue;
    if (t == "(" || t == "{" || t == "[") {
      stack.push_back(i);
    } else if (t == ")" || t == "}" || t == "]") {
      const char open = t == ")" ? '(' : (t == "}" ? '{' : '[');
      // Tolerate mismatches: pop until the matching opener kind.
      while (!stack.empty() && f.toks[stack.back()].text[0] != open) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        f.partner[stack.back()] = i;
        f.partner[i] = stack.back();
        stack.pop_back();
      }
    }
  }
}

/// Skips a template parameter list starting at `i` (which may or may not
/// point at '<'); returns the index after the closing '>'.
std::size_t skip_template_params(const FileData& f, std::size_t i,
                                 std::size_t end) {
  if (i >= end || !tok_is(f.toks[i], "<")) return i;
  int depth = 0;
  while (i < end) {
    const std::string& t = f.toks[i].text;
    if (t == "<") depth += 1;
    else if (t == ">") depth -= 1;
    else if (t == ">>") depth -= 2;
    ++i;
    if (depth <= 0) break;
  }
  return i;
}

/// Splits annotation-macro arguments: tokens between the parens, separated
/// at top-level commas, each joined into a single string ("mu", "a.mu_").
std::vector<std::string> annotation_args(const FileData& f, std::size_t open) {
  std::vector<std::string> out;
  std::size_t close = f.partner[open];
  if (close == kNone) return out;
  std::string cur;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = f.toks[i].text;
    if (t == "(") ++depth;
    if (t == ")") --depth;
    if (t == "," && depth == 0) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += t;
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Return-type classification for the declarator whose name token is at
/// `name_idx`: walk back over `Class::` qualifiers, then look at the token
/// just before — `Status` or `Result<...>`.
Ret classify_return(const FileData& f, std::size_t name_idx) {
  std::size_t q = name_idx;
  while (q >= 2 && tok_is(f.toks[q - 1], "::") && tok_ident(f.toks[q - 2])) {
    q -= 2;
  }
  if (q == 0) return Ret::kOther;
  std::size_t k = q - 1;
  if (tok_is(f.toks[k], "Status")) return Ret::kStatus;
  if (tok_is(f.toks[k], ">") || tok_is(f.toks[k], ">>")) {
    int depth = 0;
    std::size_t m = k;
    while (true) {
      const std::string& t = f.toks[m].text;
      if (t == ">") depth += 1;
      else if (t == ">>") depth += 2;
      else if (t == "<") depth -= 1;
      if (depth <= 0) break;
      if (m == 0) return Ret::kOther;
      --m;
    }
    if (m >= 1 && tok_is(f.toks[m - 1], "Result")) return Ret::kResult;
  }
  return Ret::kOther;
}

void scan_range(FileData& f, std::size_t begin, std::size_t end,
                const std::string& cur_class, Corpus& corpus);

/// Parses one function declarator whose name token is at `i` (followed by
/// '('). Records the FuncDecl and returns the index to resume scanning at.
std::size_t handle_declarator(FileData& f, std::size_t i, std::size_t end,
                              const std::string& cur_class, Corpus& corpus) {
  FuncDecl fn;
  fn.name = f.toks[i].text;
  fn.klass = cur_class;
  fn.file = &f;
  fn.line = f.toks[i].line;
  if (i >= 2 && tok_is(f.toks[i - 1], "::") && tok_ident(f.toks[i - 2])) {
    fn.klass = f.toks[i - 2].text;  // out-of-line Class::name definition
  }
  fn.ret = classify_return(f, i);

  std::size_t open = i + 1;
  if (f.partner[open] == kNone) return i + 2;  // unbalanced; bail
  std::size_t p = f.partner[open] + 1;

  auto record = [&](std::size_t resume) {
    corpus.funcs.push_back(fn);
    return resume;
  };

  while (p < end) {
    const Token& t = f.toks[p];
    if (tok_ident(t)) {
      if (t.text == "const" || t.text == "override" || t.text == "final" ||
          t.text == "mutable" || t.text == "volatile") {
        ++p;
      } else if (t.text == "noexcept") {
        if (p + 1 < end && tok_is(f.toks[p + 1], "(") &&
            f.partner[p + 1] != kNone) {
          p = f.partner[p + 1] + 1;
        } else {
          ++p;
        }
      } else if (t.text.rfind("IDS_", 0) == 0) {
        if (p + 1 < end && tok_is(f.toks[p + 1], "(") &&
            f.partner[p + 1] != kNone) {
          auto args = annotation_args(f, p + 1);
          if (t.text == "IDS_EXCLUDES") {
            fn.excludes = std::move(args);
          } else if (t.text == "IDS_REQUIRES" ||
                     t.text == "IDS_REQUIRES_SHARED") {
            fn.requires_held = std::move(args);
          }
          p = f.partner[p + 1] + 1;
        } else {
          ++p;
        }
      } else {
        // Unrecognized trailing ident (e.g. a type we misparsed): record
        // what we have and let the caller rescan from here.
        return record(p);
      }
    } else if (tok_is(t, "&") || tok_is(t, "&&")) {
      ++p;
    } else if (tok_is(t, "[") && f.partner[p] != kNone) {
      p = f.partner[p] + 1;  // [[attribute]]
    } else if (tok_is(t, "->")) {
      ++p;  // trailing return type: skip to '{' or ';'
      while (p < end && !tok_is(f.toks[p], "{") && !tok_is(f.toks[p], ";")) {
        if ((tok_is(f.toks[p], "(") || tok_is(f.toks[p], "[")) &&
            f.partner[p] != kNone) {
          p = f.partner[p] + 1;
        } else {
          ++p;
        }
      }
    } else if (tok_is(t, "=")) {
      p += 2;  // = default / = delete / = 0
    } else if (tok_is(t, ":")) {
      // Constructor init list: member(init) and member{init} items, then
      // the body brace (whose predecessor is ')' or '}').
      ++p;
      while (p < end) {
        if (tok_is(f.toks[p], "{")) {
          if (p > 0 && tok_ident(f.toks[p - 1])) {
            if (f.partner[p] == kNone) return record(p + 1);
            p = f.partner[p] + 1;  // brace-init of a member
          } else {
            break;  // function body
          }
        } else if (tok_is(f.toks[p], "(") && f.partner[p] != kNone) {
          p = f.partner[p] + 1;
        } else {
          ++p;
        }
      }
    } else if (tok_is(t, "{")) {
      if (f.partner[p] == kNone) return record(p + 1);
      fn.body_begin = p + 1;
      fn.body_end = f.partner[p];
      return record(f.partner[p] + 1);
    } else if (tok_is(t, ";") || tok_is(t, ",")) {
      return record(p + 1);
    } else {
      return record(p);  // something we don't model; stop cleanly
    }
  }
  return record(end);
}

void handle_class(FileData& f, std::size_t i, std::size_t end,
                  const std::string& cur_class, Corpus& corpus,
                  std::size_t* resume) {
  std::size_t j = i + 1;
  // Skip [[attributes]], alignas(...), and IDS_* annotation macros between
  // the class keyword and the name.
  while (j < end) {
    const Token& t = f.toks[j];
    if (tok_is(t, "[") && f.partner[j] != kNone) {
      j = f.partner[j] + 1;
    } else if (tok_ident(t) && (t.text.rfind("IDS_", 0) == 0 ||
                                t.text == "alignas")) {
      if (j + 1 < end && tok_is(f.toks[j + 1], "(") &&
          f.partner[j + 1] != kNone) {
        j = f.partner[j + 1] + 1;
      } else {
        ++j;
      }
    } else {
      break;
    }
  }
  std::string name;
  if (j < end && tok_ident(f.toks[j])) {
    name = f.toks[j].text;
    corpus.classes.insert(name);
    ++j;
  }
  std::size_t k = j;
  while (k < end && !tok_is(f.toks[k], "{") && !tok_is(f.toks[k], ";")) {
    if ((tok_is(f.toks[k], "(") || tok_is(f.toks[k], "[")) &&
        f.partner[k] != kNone) {
      k = f.partner[k] + 1;
    } else {
      ++k;
    }
  }
  if (k < end && tok_is(f.toks[k], "{") && f.partner[k] != kNone) {
    scan_range(f, k + 1, f.partner[k], name.empty() ? cur_class : name,
               corpus);
    *resume = f.partner[k] + 1;
  } else {
    *resume = k < end ? k + 1 : end;
  }
}

void scan_range(FileData& f, std::size_t begin, std::size_t end,
                const std::string& cur_class, Corpus& corpus) {
  std::size_t span_start = kNone;
  auto flush_span = [&](std::size_t span_end) {
    if (span_start != kNone && !cur_class.empty() && span_end > span_start) {
      corpus.member_spans.push_back({cur_class, &f, span_start, span_end});
    }
    span_start = kNone;
  };
  std::size_t i = begin;
  while (i < end) {
    const Token& t = f.toks[i];
    if (tok_ident(t)) {
      if (t.text == "template") {
        span_start = kNone;
        i = skip_template_params(f, i + 1, end);
        continue;
      }
      if (t.text == "namespace") {
        span_start = kNone;
        std::size_t j = i + 1;
        while (j < end && !tok_is(f.toks[j], "{") && !tok_is(f.toks[j], ";")) {
          ++j;
        }
        if (j < end && tok_is(f.toks[j], "{") && f.partner[j] != kNone) {
          scan_range(f, j + 1, f.partner[j], cur_class, corpus);
          i = f.partner[j] + 1;
        } else {
          i = j < end ? j + 1 : end;
        }
        continue;
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union") {
        span_start = kNone;
        std::size_t resume = i + 1;
        handle_class(f, i, end, cur_class, corpus, &resume);
        i = resume;
        continue;
      }
      if (t.text == "enum") {
        span_start = kNone;
        std::size_t j = i + 1;
        while (j < end && !tok_is(f.toks[j], "{") && !tok_is(f.toks[j], ";")) {
          ++j;
        }
        if (j < end && tok_is(f.toks[j], "{") && f.partner[j] != kNone) {
          i = f.partner[j] + 1;  // enumerators are not members
        } else {
          i = j < end ? j + 1 : end;
        }
        continue;
      }
      if (t.text == "using" || t.text == "typedef" ||
          t.text == "static_assert") {
        span_start = kNone;
        std::size_t j = i + 1;
        while (j < end && !tok_is(f.toks[j], ";")) {
          if ((tok_is(f.toks[j], "(") || tok_is(f.toks[j], "{") ||
               tok_is(f.toks[j], "[")) &&
              f.partner[j] != kNone) {
            j = f.partner[j] + 1;
          } else {
            ++j;
          }
        }
        i = j < end ? j + 1 : end;
        continue;
      }
      // Function declarator candidate: ident immediately followed by '('.
      if (i + 1 < end && tok_is(f.toks[i + 1], "(") && !is_keyword(t.text) &&
          !is_macro_name(t.text)) {
        span_start = kNone;
        i = handle_declarator(f, i, end, cur_class, corpus);
        continue;
      }
    } else if (tok_is(t, "{")) {
      // Block we did not recognize (operator overload body, extern "C",
      // ...): skip it opaquely.
      span_start = kNone;
      if (f.partner[i] != kNone) {
        i = f.partner[i] + 1;
      } else {
        ++i;
      }
      continue;
    } else if (tok_is(t, ";")) {
      flush_span(i);
      ++i;
      continue;
    }
    if (span_start == kNone) span_start = i;
    ++i;
  }
}

/// Pass B: resolve member declaration spans into class->member->class once
/// every class name in the corpus is known.
void resolve_members(Corpus& corpus) {
  for (const MemberSpan& s : corpus.member_spans) {
    const FileData& f = *s.file;
    std::size_t b = s.begin, e = s.end;
    // Strip trailing IDS_* annotation groups: `T name_ IDS_GUARDED_BY(mu_)`.
    while (e > b && tok_is(f.toks[e - 1], ")") && f.partner[e - 1] != kNone) {
      std::size_t o = f.partner[e - 1];
      if (o > b && tok_ident(f.toks[o - 1]) &&
          f.toks[o - 1].text.rfind("IDS_", 0) == 0) {
        e = o - 1;
      } else {
        break;
      }
    }
    bool has_paren = false;
    for (std::size_t i = b; i < e; ++i) {
      if (tok_is(f.toks[i], "(")) has_paren = true;
    }
    if (has_paren) continue;  // operator decls, function pointers, ...
    std::string member, klass;
    for (std::size_t i = b; i < e; ++i) {
      if (!tok_ident(f.toks[i])) continue;
      if (klass.empty() && corpus.classes.count(f.toks[i].text)) {
        klass = f.toks[i].text;
      }
      if (!is_keyword(f.toks[i].text)) member = f.toks[i].text;
    }
    if (!member.empty() && !klass.empty() && member != klass) {
      corpus.members[s.klass][member] = klass;
    }
  }
}

void build_merged(Corpus& corpus) {
  for (const FuncDecl& fn : corpus.funcs) {
    MergedFunc& m = corpus.merged[fn.klass][fn.name];
    m.name = fn.name;
    m.klass = fn.klass;
    switch (fn.ret) {
      case Ret::kStatus: m.saw_status = true; break;
      case Ret::kResult: m.saw_result = true; break;
      case Ret::kOther: m.saw_other = true; break;
    }
    if (!fn.excludes.empty()) m.excludes = fn.excludes;
    if (!fn.requires_held.empty()) m.requires_held = fn.requires_held;
  }
  for (auto& [klass, fns] : corpus.merged) {
    for (auto& [name, m] : fns) corpus.by_name[name].push_back(&m);
  }
}

// ---------------------------------------------------------------------------
// Call resolution shared by the rules.
// ---------------------------------------------------------------------------

/// Resolves the call whose callee-name token sits at `idx` to a unique
/// MergedFunc, or nullptr when the analysis cannot be sure (unknown
/// receiver type, ambiguous overload set across classes).
const MergedFunc* resolve_call(const FileData& f, std::size_t idx,
                               const std::string& cur_class,
                               const Corpus& corpus) {
  const std::string& name = f.toks[idx].text;
  auto in_class = [&](const std::string& c) -> const MergedFunc* {
    auto ci = corpus.merged.find(c);
    if (ci == corpus.merged.end()) return nullptr;
    auto fi = ci->second.find(name);
    return fi == ci->second.end() ? nullptr : &fi->second;
  };
  if (idx >= 2 &&
      (tok_is(f.toks[idx - 1], ".") || tok_is(f.toks[idx - 1], "->"))) {
    if (!tok_ident(f.toks[idx - 2])) return nullptr;
    const std::string& recv = f.toks[idx - 2].text;
    std::string c;
    if (recv == "this") {
      c = cur_class;
    } else {
      auto mi = corpus.members.find(cur_class);
      if (mi != corpus.members.end()) {
        auto ri = mi->second.find(recv);
        if (ri != mi->second.end()) c = ri->second;
      }
    }
    if (c.empty()) return nullptr;  // receiver of unknown type
    return in_class(c);
  }
  if (idx >= 2 && tok_is(f.toks[idx - 1], "::") && tok_ident(f.toks[idx - 2])) {
    const std::string& qual = f.toks[idx - 2].text;
    if (corpus.classes.count(qual)) return in_class(qual);
    // Namespace qualifier: fall through to the global lookup.
  } else if (!cur_class.empty()) {
    if (const MergedFunc* m = in_class(cur_class)) return m;
  }
  auto bi = corpus.by_name.find(name);
  if (bi == corpus.by_name.end() || bi->second.size() != 1) return nullptr;
  return bi->second[0];
}

/// Like resolve_call but answers only "what does this call return" —
/// usable when the call is ambiguous across classes yet every overload
/// agrees on the return kind.
Ret resolve_ret(const FileData& f, std::size_t idx,
                const std::string& cur_class, const Corpus& corpus) {
  if (const MergedFunc* m = resolve_call(f, idx, cur_class, corpus)) {
    return m->ambiguous_ret() ? Ret::kOther : m->ret();
  }
  // A member call whose receiver we could not type (a local variable, a
  // nested chain) must not fall back to the global name table: `x.f()` on
  // an unrelated type would inherit f's corpus-wide return kind.
  if (idx >= 1 &&
      (tok_is(f.toks[idx - 1], ".") || tok_is(f.toks[idx - 1], "->"))) {
    return Ret::kOther;
  }
  auto bi = corpus.by_name.find(f.toks[idx].text);
  if (bi == corpus.by_name.end() || bi->second.empty()) return Ret::kOther;
  Ret r = bi->second[0]->ret();
  for (const MergedFunc* m : bi->second) {
    if (m->ambiguous_ret() || m->ret() != r) return Ret::kOther;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

struct LockGraph {
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::string, std::string> edge_loc;  // "a\0b" -> "file:line"

  void add_edge(const std::string& a, const std::string& b,
                const std::string& file, int line) {
    if (a == b) return;
    adj[a].insert(b);
    adj[b];  // ensure the node exists for deterministic iteration
    std::string key = a + '\0' + b;
    if (!edge_loc.count(key)) {
      edge_loc[key] = file + ":" + std::to_string(line);
    }
  }
};

struct Analysis {
  const Corpus* corpus = nullptr;
  std::vector<std::string> findings;
  LockGraph locks;

  void report(const FileData& f, int line, const char* rule,
              const std::string& msg) {
    findings.push_back(f.path + ":" + std::to_string(line) + ": [" + rule +
                       "] " + msg);
  }
};

/// Statement boundaries inside a body: split at top-level ';' and at every
/// brace (nested blocks and lambda bodies fall out as their own
/// statements; an unbalanced tail is tolerated).
std::vector<std::pair<std::size_t, std::size_t>> statements(
    const FileData& f, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::size_t start = begin;
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = f.toks[i].text;
    if (f.toks[i].kind == Token::Kind::kPunct) {
      if (t == "(") ++depth;
      else if (t == ")") depth = std::max(0, depth - 1);
      else if (t == "{" || t == "}") {
        if (i > start) out.emplace_back(start, i);
        start = i + 1;
        depth = 0;
        continue;
      } else if (t == ";" && depth == 0) {
        if (i > start) out.emplace_back(start, i);
        start = i + 1;
        continue;
      }
    }
  }
  if (end > start) out.emplace_back(start, end);
  return out;
}

/// [discarded-status]: a statement that is exactly a call to a function
/// known to return Status/Result, with nothing consuming the value.
void rule_discarded(const FileData& f, const FuncDecl& fn,
                    const std::string& cur_class, Analysis& a) {
  for (auto [sb, se] : statements(f, fn.body_begin, fn.body_end)) {
    std::size_t b = sb;
    bool void_cast = false;
    if (se - b >= 3 && tok_is(f.toks[b], "(") && tok_is(f.toks[b + 1], "void") &&
        tok_is(f.toks[b + 2], ")")) {
      void_cast = true;
      b += 3;
    }
    if (se <= b) continue;
    if (tok_ident(f.toks[b]) && is_keyword(f.toks[b].text)) continue;
    // Assignment anywhere at paren depth 0 consumes the value.
    {
      int depth = 0;
      bool assigned = false;
      for (std::size_t i = b; i < se; ++i) {
        const std::string& t = f.toks[i].text;
        if (f.toks[i].kind != Token::Kind::kPunct) continue;
        if (t == "(") ++depth;
        else if (t == ")") --depth;
        else if (depth == 0 && (t == "=" || t == "+=" || t == "-=" ||
                                t == "*=" || t == "/=" || t == "%=" ||
                                t == "&=" || t == "|=" || t == "^=")) {
          assigned = true;
          break;
        }
      }
      if (assigned) continue;
    }
    // The statement must be exactly `chain(args)`: find the first '(',
    // require its close to end the statement and the callee chain to start
    // the statement.
    std::size_t open = kNone;
    for (std::size_t i = b; i < se; ++i) {
      if (tok_is(f.toks[i], "(")) {
        open = i;
        break;
      }
    }
    if (open == kNone || open == b) continue;
    if (f.partner[open] == kNone || f.partner[open] != se - 1) continue;
    std::size_t name_idx = open - 1;
    if (!tok_ident(f.toks[name_idx])) continue;
    // Walk the receiver chain back to the statement start.
    std::size_t k = name_idx;
    while (k >= b + 2 &&
           (tok_is(f.toks[k - 1], ".") || tok_is(f.toks[k - 1], "->") ||
            tok_is(f.toks[k - 1], "::")) &&
           tok_ident(f.toks[k - 2])) {
      k -= 2;
    }
    if (k != b) continue;  // something else precedes the call expression
    const std::string& callee = f.toks[name_idx].text;
    if (is_macro_name(callee) || is_keyword(callee)) continue;
    if (resolve_ret(f, name_idx, cur_class, *a.corpus) == Ret::kOther) {
      continue;
    }
    a.report(f, f.toks[name_idx].line, "discarded-status",
             void_cast
                 ? "'(void)' is not an approved discard of '" + callee +
                       "'; wrap the call in IDS_IGNORE_ERROR(...)"
                 : "return value of '" + callee +
                       "' (Status/Result) is discarded; consume it or wrap "
                       "the call in IDS_IGNORE_ERROR(...)");
  }
}

/// [unchecked-value]: Result::value() / .status().message() on a variable
/// initialized from a Result-returning call, with no `v.ok()` appearing
/// earlier in the function.
void rule_unchecked_value(const FileData& f, const FuncDecl& fn,
                          const std::string& cur_class, Analysis& a) {
  std::map<std::string, bool> tracked;  // var -> ok() seen
  for (auto [sb, se] : statements(f, fn.body_begin, fn.body_end)) {
    // Uses and checks first, in token order within the statement.
    for (std::size_t i = sb; i + 3 < se; ++i) {
      if (!tok_ident(f.toks[i])) continue;
      auto ti = tracked.find(f.toks[i].text);
      if (ti == tracked.end()) continue;
      if (!tok_is(f.toks[i + 1], ".") && !tok_is(f.toks[i + 1], "->")) {
        continue;
      }
      const std::string& mem = f.toks[i + 2].text;
      if (!tok_is(f.toks[i + 3], "(")) continue;
      if (mem == "ok") {
        ti->second = true;
      } else if (mem == "value" && !ti->second) {
        a.report(f, f.toks[i].line, "unchecked-value",
                 "'" + ti->first +
                     ".value()' without a dominating '" + ti->first +
                     ".ok()' check in this function");
      } else if (mem == "status" && !ti->second) {
        std::size_t close = f.partner[i + 3];
        if (close != kNone && close + 2 < se &&
            tok_is(f.toks[close + 1], ".") &&
            tok_is(f.toks[close + 2], "message")) {
          a.report(f, f.toks[i].line, "unchecked-value",
                   "'" + ti->first + ".status().message()' without a "
                   "dominating '" + ti->first + ".ok()' check");
        }
      }
    }
    // Then assignment tracking: `V = <first call returning Result>(...)`.
    int depth = 0;
    for (std::size_t i = sb; i < se; ++i) {
      const std::string& t = f.toks[i].text;
      if (f.toks[i].kind == Token::Kind::kPunct) {
        if (t == "(") ++depth;
        else if (t == ")") depth = std::max(0, depth - 1);
      }
      if (depth != 0 || !tok_is(f.toks[i], "=") || i <= sb) continue;
      if (!tok_ident(f.toks[i - 1]) || is_keyword(f.toks[i - 1].text)) break;
      const std::string var = f.toks[i - 1].text;
      for (std::size_t j = i + 1; j + 1 < se; ++j) {
        if (tok_ident(f.toks[j]) && tok_is(f.toks[j + 1], "(") &&
            !is_keyword(f.toks[j].text) && !is_macro_name(f.toks[j].text)) {
          if (resolve_ret(f, j, cur_class, *a.corpus) == Ret::kResult) {
            tracked[var] = false;  // (re)assigned: check required again
          }
          break;  // only the outermost/first call decides
        }
      }
      break;  // one assignment per statement is enough
    }
  }
}

/// [lock-order]: MutexLock acquisitions plus callee IDS_EXCLUDES contracts
/// build a global lock graph; calling a function that excludes a held lock
/// is an immediate violation.
void rule_lock_order(const FileData& f, const FuncDecl& fn,
                     const std::string& cur_class, Analysis& a) {
  const Corpus& corpus = *a.corpus;
  std::set<std::string> held;
  if (auto ci = corpus.merged.find(fn.klass); ci != corpus.merged.end()) {
    if (auto fi = ci->second.find(fn.name); fi != ci->second.end()) {
      for (const std::string& r : fi->second.requires_held) {
        held.insert(qualify_lock(r, fn.klass));
      }
    }
  }
  auto resolve_lock = [&](std::size_t open) -> std::string {
    std::size_t close = f.partner[open];
    if (close == kNone || close <= open + 1) return "";
    if (close == open + 2 && tok_ident(f.toks[open + 1])) {
      return qualify_lock(f.toks[open + 1].text, cur_class);
    }
    if (close == open + 4 && tok_ident(f.toks[open + 1]) &&
        (tok_is(f.toks[open + 2], ".") || tok_is(f.toks[open + 2], "->")) &&
        tok_ident(f.toks[open + 3])) {
      const std::string& recv = f.toks[open + 1].text;
      auto mi = corpus.members.find(cur_class);
      if (mi != corpus.members.end()) {
        auto ri = mi->second.find(recv);
        if (ri != mi->second.end()) {
          return ri->second + "::" + f.toks[open + 3].text;
        }
      }
    }
    std::string joined;
    for (std::size_t i = open + 1; i < close; ++i) joined += f.toks[i].text;
    return joined;
  };

  for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    if (!tok_ident(f.toks[i])) continue;
    const std::string& name = f.toks[i].text;
    if (name == "MutexLock" && i + 2 < fn.body_end &&
        tok_ident(f.toks[i + 1]) && tok_is(f.toks[i + 2], "(")) {
      std::string node = resolve_lock(i + 2);
      if (!node.empty()) {
        for (const std::string& h : held) {
          a.locks.add_edge(h, node, f.path, f.toks[i].line);
        }
        held.insert(node);
      }
      if (f.partner[i + 2] != kNone) i = f.partner[i + 2];
      continue;
    }
    if (!tok_is(f.toks[i + 1], "(") || is_keyword(name) ||
        is_macro_name(name) || name == "MutexLock") {
      continue;
    }
    const MergedFunc* callee = resolve_call(f, i, cur_class, corpus);
    if (!callee || callee->excludes.empty()) continue;
    for (const std::string& raw : callee->excludes) {
      std::string m = qualify_lock(raw, callee->klass);
      if (held.count(m)) {
        a.report(f, f.toks[i].line, "lock-order",
                 "call to '" + callee->klass + "::" + callee->name +
                     "' which IDS_EXCLUDES '" + m +
                     "' while '" + m + "' is held (self-deadlock)");
      } else {
        for (const std::string& h : held) {
          a.locks.add_edge(h, m, f.path, f.toks[i].line);
        }
      }
    }
  }
}

/// [bare-assert]: any `assert(` token pair, anywhere in the file.
void rule_bare_assert(const FileData& f, Analysis& a) {
  for (std::size_t i = 0; i + 1 < f.toks.size(); ++i) {
    if (tok_ident(f.toks[i]) && f.toks[i].text == "assert" &&
        tok_is(f.toks[i + 1], "(")) {
      a.report(f, f.toks[i].line, "bare-assert",
               "bare assert(); use IDS_CHECK / IDS_DCHECK for invariants or "
               "return a Status for recoverable conditions");
    }
  }
}

/// Lock-graph cycle detection (iterative DFS, deterministic order).
void report_lock_cycles(Analysis& a) {
  const auto& adj = a.locks.adj;
  std::map<std::string, int> state;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    state[u] = 1;
    path.push_back(u);
    auto it = adj.find(u);
    if (it != adj.end()) {
      for (const std::string& v : it->second) {
        if (state[v] == 1) {
          auto pos = std::find(path.begin(), path.end(), v);
          std::vector<std::string> cycle(pos, path.end());
          // Normalize: rotate so the lexicographically-smallest lock leads.
          auto mn = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), mn, cycle.end());
          std::string desc;
          for (const std::string& n : cycle) desc += n + " -> ";
          desc += cycle.front();
          if (reported.insert(desc).second) {
            std::ostringstream msg;
            msg << "ids-analyzer: [lock-order] inconsistent lock "
                   "acquisition order: "
                << desc;
            for (std::size_t i = 0; i < cycle.size(); ++i) {
              const std::string& from = cycle[i];
              const std::string& to = cycle[(i + 1) % cycle.size()];
              auto li = a.locks.edge_loc.find(from + '\0' + to);
              if (li != a.locks.edge_loc.end()) {
                msg << "\n  edge " << from << " -> " << to
                    << " established at " << li->second;
              }
            }
            a.findings.push_back(msg.str());
          }
        } else if (state[v] == 0) {
          dfs(v);
        }
      }
    }
    path.pop_back();
    state[u] = 2;
  };
  for (const auto& [node, _] : adj) {
    if (state[node] == 0) dfs(node);
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

bool analyzable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

int run(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--") continue;
    if (arg == "-h" || arg == "--help") {
      std::cout << "usage: ids-analyzer PATH...\n"
                << "Analyzes .h/.hpp/.cc/.cpp files (directories are walked "
                   "recursively)\nfor the IDS error-handling and locking "
                   "discipline. Exit 0 = clean,\n1 = findings, 2 = usage/IO "
                   "error.\n";
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "ids-analyzer: no input paths (try --help)\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(p, ec);
           !ec && it != std::filesystem::recursive_directory_iterator();
           it.increment(ec)) {
        if (it->is_regular_file() && analyzable(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (std::filesystem::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "ids-analyzer: cannot read '" << p << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  if (files.empty()) {
    std::cerr << "ids-analyzer: no analyzable files under the given paths\n";
    return 2;
  }

  Corpus corpus;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "ids-analyzer: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    auto fd = std::make_unique<FileData>();
    fd->path = path;
    fd->toks = lex(ss.str());
    compute_partners(*fd);
    corpus.files.push_back(std::move(fd));
  }
  for (auto& fd : corpus.files) {
    scan_range(*fd, 0, fd->toks.size(), "", corpus);
  }
  resolve_members(corpus);
  build_merged(corpus);

  Analysis a;
  a.corpus = &corpus;
  for (const auto& fd : corpus.files) rule_bare_assert(*fd, a);
  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    rule_discarded(*fn.file, fn, fn.klass, a);
    rule_unchecked_value(*fn.file, fn, fn.klass, a);
    rule_lock_order(*fn.file, fn, fn.klass, a);
  }
  report_lock_cycles(a);

  for (const std::string& finding : a.findings) std::cout << finding << "\n";
  if (!a.findings.empty()) {
    std::cerr << "ids-analyzer: " << a.findings.size() << " finding(s) in "
              << corpus.files.size() << " file(s)\n";
    return 1;
  }
  std::cerr << "ids-analyzer: OK (" << corpus.files.size() << " files, "
            << corpus.funcs.size() << " functions)\n";
  return 0;
}

}  // namespace
}  // namespace ids::analyzer

int main(int argc, char** argv) { return ids::analyzer::run(argc, argv); }
