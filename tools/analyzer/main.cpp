// ids-analyzer: the repository's compiled static checker.
//
// No libclang: the binary lexes the given sources itself (lexer.h), builds
// a corpus-wide symbol table plus a whole-program call graph
// (corpus.{h,cpp}, callgraph.{h,cpp}), and runs two rule families:
//
// file-local (rules_local.cpp):
//   [discarded-status]          every Status/Result return value must be
//                               consumed or wrapped in IDS_IGNORE_ERROR;
//                               a `(void)` cast is not an approved discard.
//   [wrapper-discarded-status]  the same, escalated through thin wrappers
//                               that forward their callee's Status/Result.
//   [unchecked-value]           no Result::value() / .status().message()
//                               without a dominating ok() check.
//   [bare-assert]               assert( is banned; use IDS_CHECK/IDS_DCHECK
//                               or return a Status.
//
// interprocedural (rules_interproc.cpp):
//   [lock-order]                lock acquisition order must be globally
//                               consistent (MutexLock + IDS_EXCLUDES +
//                               propagated acquisition summaries).
//   [xfile-lock-order]          the same, for chains that cross files.
//   [blocking-under-lock]       no call transitively reaching a blocking
//                               sink while a MutexLock is held
//                               (IDS_MAY_BLOCK escapes).
//   [wallclock-in-engine]       no wall-clock reads outside src/telemetry/,
//                               no raw randomness reachable from
//                               IdsEngine::execute (IDS_WALLCLOCK_OK
//                               escapes).
//
// concurrency (rules_concurrency.cpp, field_access.cpp, escape.cpp):
//   [guarded-by]                fields of mutex-owning classes written
//                               without a consistent held-lock set or an
//                               IDS_GUARDED_BY annotation.
//   [thread-escape]             by-reference captures (or members via a
//                               captured `this`) mutated inside tasks
//                               handed to ThreadPool::submit/parallel_for.
//   [shared-state]              only under --certify=concurrent-exec: the
//                               shared-state certificate rooted at
//                               IdsEngine::execute (inventory on stdout,
//                               findings on stderr; IDS_SINGLE_QUERY_ONLY
//                               waives an entry and records the worklist
//                               for concurrent serving).
//
// phase/epoch (rules_phase.cpp, phase.h):
//   [phase-discipline]          IDS_FROZEN_AFTER(freeze) fields: the
//                               owning class must define the freeze
//                               method, the field must not be mutable
//                               (the lazy-prepare shape), and neither a
//                               write to it nor the freeze method itself
//                               may be reachable from IdsEngine::execute.
//   [frozen-ingest-guard]       every ingest-phase write outside a
//                               constructor or the freeze method must sit
//                               in a function checking
//                               IDS_CHECK(!frozen()).
//
// lifetime (rules_lifetime.cpp, lifetime.cpp, escape.cpp):
//   [view-invalidation]         views (span/string_view/reference/pointer/
//                               iterator/.data()) derived from a container
//                               and used after a may-invalidate operation
//                               — a reallocating std mutator, or a method
//                               whose inferred/annotated invalidation
//                               summary says so (IDS_INVALIDATES asserts,
//                               IDS_STABLE_STORAGE exempts).
//   [dangling-return]           returning a reference/pointer/view into a
//                               local, a by-value parameter, or a
//                               temporary.
//   [temporary-bound-view]      string_view/span locals and members bound
//                               to rvalue temporaries.
//   [task-outlives-capture]     by-ref/this captures handed to
//                               ThreadPool::submit in a frame that never
//                               joins the task (IDS_VIEW_OK waives, with
//                               the reason as audit trail).
//
// The analysis is deliberately conservative: a call it cannot resolve
// (ambiguous name, receiver of unknown type, operator overload) is skipped
// rather than guessed at, so a finding is always actionable.
//
// Exit codes: 0 clean (or all findings baseline-suppressed), 1 findings,
// 2 usage / IO error.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis.h"
#include "callgraph.h"
#include "corpus.h"
#include "output.h"

// The analyzer dogfoods itself (tests/analyzer_selftest.sh): the marker
// below sanctions the --stats timing reads for [wallclock-in-engine] while
// expanding to nothing for the compiler.
#define IDS_WALLCLOCK_OK

namespace ids::analyzer {
namespace {

/// Wall-clock timing for --stats only; never feeds analysis results.
double wall_seconds() IDS_WALLCLOCK_OK {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool analyzable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

void usage(std::ostream& os) {
  os << "usage: ids-analyzer [OPTIONS] PATH...\n"
     << "Analyzes .h/.hpp/.cc/.cpp files (directories are walked "
        "recursively)\nfor the IDS error-handling, locking, and "
        "determinism discipline.\n\nOptions:\n"
     << "  --list-rules          print every rule id + summary and exit 0\n"
     << "  --rule=ID             run only this rule (repeatable)\n"
     << "  --format=text|sarif|github\n"
     << "                        output format (default: text; github "
        "emits\n"
     << "                        ::error workflow-command annotations)\n"
     << "  --baseline=FILE       suppress findings matching the baseline\n"
     << "  --write-baseline=FILE write current findings as a baseline\n"
     << "  --jobs=N              lex/load files on N threads (default and "
        "0:\n"
     << "                        all cores)\n"
     << "  --certify=concurrent-exec\n"
     << "                        emit the shared-state certificate rooted "
        "at\n"
     << "                        IdsEngine::execute (inventory JSON on "
        "stdout,\n"
     << "                        [shared-state] findings on stderr; the\n"
     << "                        baseline does not apply)\n"
     << "  --stats               print corpus/call-graph statistics, parse "
        "and\n"
     << "                        analysis wall time, and per-rule finding\n"
     << "                        counts to stderr\n"
     << "  --stats-json=FILE     also write the statistics as JSON (for "
        "CI\n"
     << "                        artifact archiving)\n"
     << "\nExit 0 = clean (or fully suppressed), 1 = findings, "
        "2 = usage/IO error.\n";
}

int run(int argc, char** argv) {
  std::vector<std::string> paths;
  std::set<std::string> enabled;
  std::string format = "text";
  std::string baseline_path, write_baseline_path;
  std::string certify, stats_json_path;
  bool want_stats = false;
  long jobs = std::max(1u, std::thread::hardware_concurrency());
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--") continue;
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_table()) {
        std::cout << r.id << "\n    " << r.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      std::string id = arg.substr(7);
      if (!known_rule(id)) {
        std::cerr << "ids-analyzer: unknown rule '" << id
                  << "' (see --list-rules)\n";
        return 2;
      }
      enabled.insert(id);
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "sarif" && format != "github") {
        std::cerr << "ids-analyzer: unknown format '" << format
                  << "' (expected text, sarif, or github)\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      continue;
    }
    if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
      continue;
    }
    if (arg == "--stats") {
      want_stats = true;
      continue;
    }
    if (arg.rfind("--stats-json=", 0) == 0) {
      stats_json_path = arg.substr(13);
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      char* end = nullptr;
      jobs = std::strtol(arg.c_str() + 7, &end, 10);
      if (end == nullptr || *end != '\0' || jobs < 0) {
        std::cerr << "ids-analyzer: bad --jobs value '" << arg.substr(7)
                  << "' (expected a non-negative integer)\n";
        return 2;
      }
      if (jobs == 0) {
        jobs = std::max(1u, std::thread::hardware_concurrency());
      }
      continue;
    }
    if (arg.rfind("--certify=", 0) == 0) {
      certify = arg.substr(10);
      if (certify != "concurrent-exec") {
        std::cerr << "ids-analyzer: unknown certificate '" << certify
                  << "' (expected concurrent-exec)\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "ids-analyzer: unknown option '" << arg
                << "' (try --help)\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "ids-analyzer: no input paths (try --help)\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(p, ec);
           !ec && it != std::filesystem::recursive_directory_iterator();
           it.increment(ec)) {
        if (it->is_regular_file() && analyzable(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (std::filesystem::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "ids-analyzer: cannot read '" << p << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  if (files.empty()) {
    std::cerr << "ids-analyzer: no analyzable files under the given paths\n";
    return 2;
  }

  const double lex_start = wall_seconds();
  Corpus corpus;
  if (jobs <= 1 || files.size() < 2) {
    for (const std::string& path : files) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cerr << "ids-analyzer: cannot open '" << path << "'\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      corpus.add_file(path, ss.str());
    }
  } else {
    // Read + lex on worker threads (make_file_data is a pure function);
    // adopt in input order so the corpus — and every downstream table,
    // finding, and baseline key — is byte-identical to a serial run.
    std::vector<std::unique_ptr<FileData>> slots(files.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> io_error{false};
    const std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs), files.size());
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t idx = next.fetch_add(1);
          if (idx >= slots.size()) return;
          std::ifstream in(files[idx], std::ios::binary);
          if (!in) {
            io_error.store(true);
            return;
          }
          std::ostringstream ss;
          ss << in.rdbuf();
          slots[idx] = make_file_data(files[idx], ss.str());
        }
      });
    }
    for (std::thread& th : pool) th.join();
    if (io_error.load()) {
      std::cerr << "ids-analyzer: cannot open an input file (--jobs run)\n";
      return 2;
    }
    for (std::unique_ptr<FileData>& fd : slots) {
      corpus.adopt_file(std::move(fd));
    }
  }
  const double lex_seconds = wall_seconds() - lex_start;
  const double corpus_start = wall_seconds();
  corpus.finalize();
  const double corpus_seconds = wall_seconds() - corpus_start;
  const double parse_seconds = lex_seconds + corpus_seconds;

  const double callgraph_start = wall_seconds();
  CallGraph graph;
  graph.build(corpus);
  const double callgraph_seconds = wall_seconds() - callgraph_start;

  Analysis a;
  a.corpus = &corpus;
  a.graph = &graph;
  a.enabled = enabled;

  const double analyze_start = wall_seconds();
  std::size_t cert_violations = 0;
  if (!certify.empty()) {
    // Certificate mode: only the [shared-state] walk runs; stdout carries
    // the inventory, findings go to stderr, the baseline does not apply.
    bool root_found = false;
    cert_violations = run_certificate(a, std::cout, &root_found);
    if (!root_found) {
      std::cerr << "ids-analyzer: --certify=" << certify
                << " found no IdsEngine::execute in the corpus\n";
      return 2;
    }
    sort_findings(a.findings);
  } else {
    run_local_rules(a);
    run_interproc_rules(a);
    run_concurrency_rules(a);
    run_phase_rules(a);
    run_lifetime_rules(a);
    sort_findings(a.findings);

    if (!baseline_path.empty()) {
      std::set<std::string> keys;
      if (!load_baseline(baseline_path, &keys)) return 2;
      apply_baseline(keys, &a.findings);
    }
    if (!write_baseline_path.empty()) {
      if (!write_baseline(write_baseline_path, a.findings)) return 2;
    }
  }
  const double analyze_seconds = wall_seconds() - analyze_start;
  const double total_seconds =
      parse_seconds + callgraph_seconds + analyze_seconds;

  // Per-rule counts: every known rule appears (zeros included) so the CI
  // archive is a stable schema.
  std::map<std::string, std::pair<std::size_t, std::size_t>> per_rule;
  for (const RuleInfo& r : rule_table()) per_rule[r.id];
  std::size_t active = 0, suppressed = 0;
  for (const Finding& fd : a.findings) {
    if (fd.suppressed) {
      ++suppressed;
      per_rule[fd.rule].second += 1;
    } else {
      ++active;
      per_rule[fd.rule].first += 1;
    }
  }

  if (want_stats) {
    const CallGraphStats& s = graph.stats;
    std::fprintf(stderr,
                 "ids-analyzer stats: files=%zu decls=%zu functions=%zu "
                 "bodies=%zu\n"
                 "  call-sites=%zu edges=%zu resolved-unique=%zu "
                 "resolved-overapprox=%zu external=%zu unresolved=%zu\n"
                 "  resolution-ratio=%.4f (resolved / (resolved + "
                 "unresolved))\n"
                 "  parse-seconds=%.3f (jobs=%ld) analyze-seconds=%.3f\n"
                 "  phase-seconds: lex=%.3f corpus=%.3f callgraph=%.3f "
                 "rules=%.3f total=%.3f\n",
                 corpus.files.size(), s.decls, s.functions, s.bodies,
                 s.call_sites, s.edges, s.resolved_unique,
                 s.resolved_overapprox, s.external, s.unresolved,
                 s.resolution_ratio(), parse_seconds, jobs, analyze_seconds,
                 lex_seconds, corpus_seconds, callgraph_seconds,
                 analyze_seconds, total_seconds);
    for (const auto& [rule, counts] : per_rule) {
      if (counts.first == 0 && counts.second == 0) continue;
      std::fprintf(stderr, "  rule %-24s active=%zu suppressed=%zu\n",
                   rule.c_str(), counts.first, counts.second);
    }
  }
  if (!stats_json_path.empty()) {
    std::ofstream js(stats_json_path, std::ios::trunc);
    if (!js) {
      std::cerr << "ids-analyzer: cannot write stats JSON '"
                << stats_json_path << "'\n";
      return 2;
    }
    const CallGraphStats& s = graph.stats;
    char ratio[32], psec[32], asec[32];
    char lsec[32], csec[32], gsec[32], tsec[32];
    std::snprintf(ratio, sizeof(ratio), "%.4f", s.resolution_ratio());
    std::snprintf(psec, sizeof(psec), "%.3f", parse_seconds);
    std::snprintf(asec, sizeof(asec), "%.3f", analyze_seconds);
    std::snprintf(lsec, sizeof(lsec), "%.3f", lex_seconds);
    std::snprintf(csec, sizeof(csec), "%.3f", corpus_seconds);
    std::snprintf(gsec, sizeof(gsec), "%.3f", callgraph_seconds);
    std::snprintf(tsec, sizeof(tsec), "%.3f", total_seconds);
    js << "{\n"
       << "  \"files\": " << corpus.files.size() << ",\n"
       << "  \"decls\": " << s.decls << ",\n"
       << "  \"functions\": " << s.functions << ",\n"
       << "  \"bodies\": " << s.bodies << ",\n"
       << "  \"call_sites\": " << s.call_sites << ",\n"
       << "  \"edges\": " << s.edges << ",\n"
       << "  \"resolved_unique\": " << s.resolved_unique << ",\n"
       << "  \"resolved_overapprox\": " << s.resolved_overapprox << ",\n"
       << "  \"external\": " << s.external << ",\n"
       << "  \"unresolved\": " << s.unresolved << ",\n"
       << "  \"resolution_ratio\": " << ratio << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"parse_seconds\": " << psec << ",\n"
       << "  \"analyze_seconds\": " << asec << ",\n"
       << "  \"phase_seconds\": {\"lex\": " << lsec << ", \"corpus\": "
       << csec << ", \"callgraph\": " << gsec << ", \"rules\": " << asec
       << ", \"total\": " << tsec << "},\n"
       << "  \"findings\": {\"active\": " << active << ", \"suppressed\": "
       << suppressed << "},\n"
       << "  \"per_rule\": {\n";
    std::size_t k = 0;
    for (const auto& [rule, counts] : per_rule) {
      js << "    \"" << rule << "\": {\"active\": " << counts.first
         << ", \"suppressed\": " << counts.second << "}"
         << (++k == per_rule.size() ? "" : ",") << "\n";
    }
    js << "  }\n}\n";
    if (!js.flush()) {
      std::cerr << "ids-analyzer: cannot write stats JSON '"
                << stats_json_path << "'\n";
      return 2;
    }
  }

  if (!certify.empty()) {
    print_text(std::cerr, a.findings);
    if (cert_violations > 0) {
      std::cerr << "ids-analyzer: certificate FAILED: " << cert_violations
                << " shared-state violation(s) in " << corpus.files.size()
                << " file(s)\n";
      return 1;
    }
    std::cerr << "ids-analyzer: certificate OK (" << corpus.files.size()
              << " files)\n";
    return 0;
  }

  if (format == "sarif") {
    print_sarif(std::cout, a.findings);
  } else if (format == "github") {
    print_github(std::cout, a.findings);
  } else {
    print_text(std::cout, a.findings);
  }

  if (active > 0) {
    std::cerr << "ids-analyzer: " << active << " finding(s)";
    if (suppressed > 0) std::cerr << " (+" << suppressed << " suppressed)";
    std::cerr << " in " << corpus.files.size() << " file(s)\n";
    return 1;
  }
  std::cerr << "ids-analyzer: OK (" << corpus.files.size() << " files, "
            << corpus.funcs.size() << " functions";
  if (suppressed > 0) std::cerr << ", " << suppressed << " suppressed";
  std::cerr << ")\n";
  return 0;
}

}  // namespace
}  // namespace ids::analyzer

int main(int argc, char** argv) { return ids::analyzer::run(argc, argv); }
