// ids-analyzer: the repository's compiled static checker.
//
// No libclang: the binary lexes the given sources itself (lexer.h), builds
// a corpus-wide symbol table plus a whole-program call graph
// (corpus.{h,cpp}, callgraph.{h,cpp}), and runs two rule families:
//
// file-local (rules_local.cpp):
//   [discarded-status]          every Status/Result return value must be
//                               consumed or wrapped in IDS_IGNORE_ERROR;
//                               a `(void)` cast is not an approved discard.
//   [wrapper-discarded-status]  the same, escalated through thin wrappers
//                               that forward their callee's Status/Result.
//   [unchecked-value]           no Result::value() / .status().message()
//                               without a dominating ok() check.
//   [bare-assert]               assert( is banned; use IDS_CHECK/IDS_DCHECK
//                               or return a Status.
//
// interprocedural (rules_interproc.cpp):
//   [lock-order]                lock acquisition order must be globally
//                               consistent (MutexLock + IDS_EXCLUDES +
//                               propagated acquisition summaries).
//   [xfile-lock-order]          the same, for chains that cross files.
//   [blocking-under-lock]       no call transitively reaching a blocking
//                               sink while a MutexLock is held
//                               (IDS_MAY_BLOCK escapes).
//   [wallclock-in-engine]       no wall-clock reads outside src/telemetry/,
//                               no raw randomness reachable from
//                               IdsEngine::execute (IDS_WALLCLOCK_OK
//                               escapes).
//
// The analysis is deliberately conservative: a call it cannot resolve
// (ambiguous name, receiver of unknown type, operator overload) is skipped
// rather than guessed at, so a finding is always actionable.
//
// Exit codes: 0 clean (or all findings baseline-suppressed), 1 findings,
// 2 usage / IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis.h"
#include "callgraph.h"
#include "corpus.h"
#include "output.h"

namespace ids::analyzer {
namespace {

bool analyzable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

void usage(std::ostream& os) {
  os << "usage: ids-analyzer [OPTIONS] PATH...\n"
     << "Analyzes .h/.hpp/.cc/.cpp files (directories are walked "
        "recursively)\nfor the IDS error-handling, locking, and "
        "determinism discipline.\n\nOptions:\n"
     << "  --list-rules          print every rule id + summary and exit 0\n"
     << "  --rule=ID             run only this rule (repeatable)\n"
     << "  --format=text|sarif   output format (default: text)\n"
     << "  --baseline=FILE       suppress findings matching the baseline\n"
     << "  --write-baseline=FILE write current findings as a baseline\n"
     << "  --stats               print corpus/call-graph statistics to "
        "stderr\n\nExit 0 = clean (or fully suppressed), 1 = findings, "
        "2 = usage/IO error.\n";
}

int run(int argc, char** argv) {
  std::vector<std::string> paths;
  std::set<std::string> enabled;
  std::string format = "text";
  std::string baseline_path, write_baseline_path;
  bool want_stats = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--") continue;
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_table()) {
        std::cout << r.id << "\n    " << r.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      std::string id = arg.substr(7);
      if (!known_rule(id)) {
        std::cerr << "ids-analyzer: unknown rule '" << id
                  << "' (see --list-rules)\n";
        return 2;
      }
      enabled.insert(id);
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "sarif") {
        std::cerr << "ids-analyzer: unknown format '" << format
                  << "' (expected text or sarif)\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      continue;
    }
    if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
      continue;
    }
    if (arg == "--stats") {
      want_stats = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "ids-analyzer: unknown option '" << arg
                << "' (try --help)\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "ids-analyzer: no input paths (try --help)\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(p, ec);
           !ec && it != std::filesystem::recursive_directory_iterator();
           it.increment(ec)) {
        if (it->is_regular_file() && analyzable(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (std::filesystem::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "ids-analyzer: cannot read '" << p << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  if (files.empty()) {
    std::cerr << "ids-analyzer: no analyzable files under the given paths\n";
    return 2;
  }

  Corpus corpus;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "ids-analyzer: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    corpus.add_file(path, ss.str());
  }
  corpus.finalize();

  CallGraph graph;
  graph.build(corpus);

  Analysis a;
  a.corpus = &corpus;
  a.graph = &graph;
  a.enabled = enabled;
  run_local_rules(a);
  run_interproc_rules(a);
  sort_findings(a.findings);

  if (!baseline_path.empty()) {
    std::set<std::string> keys;
    if (!load_baseline(baseline_path, &keys)) return 2;
    apply_baseline(keys, &a.findings);
  }
  if (!write_baseline_path.empty()) {
    if (!write_baseline(write_baseline_path, a.findings)) return 2;
  }

  if (want_stats) {
    const CallGraphStats& s = graph.stats;
    std::fprintf(stderr,
                 "ids-analyzer stats: files=%zu decls=%zu functions=%zu "
                 "bodies=%zu\n"
                 "  call-sites=%zu edges=%zu resolved-unique=%zu "
                 "resolved-overapprox=%zu external=%zu unresolved=%zu\n"
                 "  resolution-ratio=%.4f (resolved / (resolved + "
                 "unresolved))\n",
                 corpus.files.size(), s.decls, s.functions, s.bodies,
                 s.call_sites, s.edges, s.resolved_unique,
                 s.resolved_overapprox, s.external, s.unresolved,
                 s.resolution_ratio());
  }

  if (format == "sarif") {
    print_sarif(std::cout, a.findings);
  } else {
    print_text(std::cout, a.findings);
  }

  std::size_t active = 0, suppressed = 0;
  for (const Finding& fd : a.findings) {
    (fd.suppressed ? suppressed : active) += 1;
  }
  if (active > 0) {
    std::cerr << "ids-analyzer: " << active << " finding(s)";
    if (suppressed > 0) std::cerr << " (+" << suppressed << " suppressed)";
    std::cerr << " in " << corpus.files.size() << " file(s)\n";
    return 1;
  }
  std::cerr << "ids-analyzer: OK (" << corpus.files.size() << " files, "
            << corpus.funcs.size() << " functions";
  if (suppressed > 0) std::cerr << ", " << suppressed << " suppressed";
  std::cerr << ")\n";
  return 0;
}

}  // namespace
}  // namespace ids::analyzer

int main(int argc, char** argv) { return ids::analyzer::run(argc, argv); }
