#pragma once

// Corpus model for ids-analyzer: every analyzed file lexed into a token
// stream, every function declaration/definition recorded with its
// annotations (IDS_EXCLUDES / IDS_REQUIRES / IDS_MAY_BLOCK /
// IDS_WALLCLOCK_OK), return-type classification (Status / Result<T>),
// parameter-arity range, and class-member typing — the shared substrate
// the file-local rules, the call graph, and the interprocedural rules all
// resolve against. No libclang: parsing is a linear token scan (lexer.h).

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer.h"

namespace ids::analyzer {

inline constexpr std::size_t kNone = static_cast<std::size_t>(-1);
/// Arity sentinel for variadic ("...") parameter lists.
inline constexpr std::size_t kVariadic = static_cast<std::size_t>(-1);

struct FileData {
  std::string path;
  std::vector<Token> toks;
  std::vector<std::size_t> partner;  // open<->close indices for () {} []
};

enum class Ret { kOther, kStatus, kResult };

struct FuncDecl {
  std::string name;
  std::string klass;  // enclosing class, or "Class" from Class::name; "" = free
  Ret ret = Ret::kOther;
  std::vector<std::string> excludes;       // raw IDS_EXCLUDES args
  std::vector<std::string> requires_held;  // raw IDS_REQUIRES args
  bool may_block = false;                  // IDS_MAY_BLOCK on this decl
  bool wallclock_ok = false;               // IDS_WALLCLOCK_OK on this decl
  bool invalidates = false;                // IDS_INVALIDATES on this decl
  std::vector<std::string> invalidates_args;  // raw IDS_INVALIDATES args
  bool stable_storage = false;             // IDS_STABLE_STORAGE on this decl
  std::string view_ok;                     // IDS_VIEW_OK reason; "" = none
  /// Head token of the return declarator, walking back from the name over
  /// `Class::` qualifiers: "&" / "*" for references and pointers, the
  /// template head for `std::vector<T>` / `std::span<T>` ("vector",
  /// "span"), otherwise the type ident itself ("Status", "string_view",
  /// "void", "auto", ...). "" when nothing parseable precedes the name.
  std::string ret_head;
  bool is_const_method = false;            // trailing const qualifier
  std::size_t min_args = 0, max_args = 0;  // declared parameter-count range
  const FileData* file = nullptr;
  std::size_t body_begin = 0, body_end = 0;  // token range; begin==end: none
  /// Parameter-list token range (between the declarator's parens).
  std::size_t params_begin = 0, params_end = 0;
  int line = 0;
  bool has_body() const { return body_end > body_begin; }
};

/// Merged view of all declarations of (class, name): definitions usually
/// repeat neither the annotations nor the return type spelling of the
/// header declaration, so resolution wants the union. Overload sets merge
/// into one entry; their arity range is the union of the overloads'.
struct MergedFunc {
  std::string name, klass;
  bool saw_status = false, saw_result = false, saw_other = false;
  std::vector<std::string> excludes, requires_held;
  bool may_block = false;
  bool wallclock_ok = false;
  bool invalidates = false;                   // any decl has IDS_INVALIDATES
  std::vector<std::string> invalidates_args;  // union over declarations
  bool stable_storage = false;                // any decl has IDS_STABLE_STORAGE
  std::string view_ok;  // IDS_VIEW_OK reason from any decl; "" = none
  std::string ret_head;  // first nonempty FuncDecl::ret_head
  std::size_t min_args = kVariadic, max_args = 0;  // union over declarations
  /// Return kind inferred through thin forwarding wrappers
  /// (`X f() { return g(); }` where g returns Status and X is an alias the
  /// token scan cannot classify). Feeds [wrapper-discarded-status].
  Ret inferred = Ret::kOther;
  /// Every declaration/definition that contributed (definitions carry the
  /// bodies the interprocedural rules walk).
  std::vector<const FuncDecl*> decls;

  Ret ret() const {
    // Overload sets that disagree are treated as unresolvable.
    if (saw_status && !saw_result && !saw_other) return Ret::kStatus;
    if (saw_result && !saw_status && !saw_other) return Ret::kResult;
    if (!saw_status && !saw_result && inferred != Ret::kOther) return inferred;
    return Ret::kOther;
  }
  bool ambiguous_ret() const { return (saw_status || saw_result) && saw_other; }
  bool ret_is_inferred() const {
    return !saw_status && !saw_result && inferred != Ret::kOther;
  }
  bool arity_compatible(std::size_t n) const {
    if (min_args == kVariadic) return true;  // no parsed declaration
    return n >= min_args && (max_args == kVariadic || n <= max_args);
  }
  /// Every declaration carries a trailing const qualifier — calling the
  /// method cannot mutate the receiver (mutable members excepted; the
  /// concurrency layer accounts for those separately).
  bool all_const() const {
    for (const FuncDecl* d : decls) {
      if (!d->is_const_method) return false;
    }
    return !decls.empty();
  }
  std::string qualified() const {
    return klass.empty() ? name : klass + "::" + name;
  }
};

struct MemberSpan {
  std::string klass;  // "" for namespace-scope (global) declarations
  const FileData* file = nullptr;
  std::size_t begin = 0, end = 0;
};

struct Corpus {
  std::vector<std::unique_ptr<FileData>> files;
  std::vector<FuncDecl> funcs;  // one per declaration/definition, in order
  std::set<std::string> classes;
  std::vector<MemberSpan> member_spans;
  /// Namespace-scope declaration spans (global variables, extern decls):
  /// raw token runs the concurrency layer classifies for the shared-state
  /// certificate.
  std::vector<MemberSpan> global_spans;
  // Resolved after all files are parsed:
  std::map<std::string, std::map<std::string, MergedFunc>> merged;  // class->name
  std::map<std::string, std::vector<MergedFunc*>> by_name;
  std::map<std::string, std::map<std::string, std::string>> members;  // class->member->class

  /// Lexes `src` as `path` and queues it for parsing.
  void add_file(std::string path, const std::string& src);
  /// Queues an already-lexed file (see make_file_data) — the --jobs=N
  /// path, where lexing happens on worker threads and adoption restores
  /// the deterministic file order.
  void adopt_file(std::unique_ptr<FileData> fd);
  /// Parses every queued file and builds the merged/member tables plus the
  /// wrapper return-kind inference. Call exactly once, after all add_file.
  void finalize();
};

/// Lexes `src` as `path` into a FileData with partner indices computed.
/// Pure function of its arguments — safe to call from multiple threads.
std::unique_ptr<FileData> make_file_data(std::string path,
                                         const std::string& src);

// --- token helpers shared by the rules --------------------------------------

bool is_keyword(const std::string& s);
bool is_macro_name(const std::string& s);
inline bool tok_is(const Token& t, const char* text) { return t.text == text; }
inline bool tok_ident(const Token& t) { return t.kind == Token::Kind::kIdent; }

/// Lock name resolution: a bare `mu_` in class C becomes "C::mu_" so two
/// classes that both call their lock `mutex_` stay distinct graph nodes.
std::string qualify_lock(const std::string& lock, const std::string& klass);

/// Number of top-level arguments in the call whose '(' sits at `open`
/// (template angle brackets heuristically skipped); 0 for `()`.
std::size_t call_arg_count(const FileData& f, std::size_t open);

/// Statement boundaries inside a body: split at top-level ';' and at every
/// brace (nested blocks and lambda bodies fall out as their own
/// statements; an unbalanced tail is tolerated).
std::vector<std::pair<std::size_t, std::size_t>> statements(
    const FileData& f, std::size_t begin, std::size_t end);

// --- call resolution --------------------------------------------------------

/// Resolves the call whose callee-name token sits at `idx` to a unique
/// MergedFunc, or nullptr when the analysis cannot be sure (unknown
/// receiver type, ambiguous overload set across classes).
const MergedFunc* resolve_call(const FileData& f, std::size_t idx,
                               const std::string& cur_class,
                               const Corpus& corpus);

/// Like resolve_call but answers only "what does this call return" —
/// usable when the call is ambiguous across classes yet every overload
/// agrees on the return kind. `inferred` (optional) is set when the kind
/// came from wrapper inference rather than a declared spelling.
Ret resolve_ret(const FileData& f, std::size_t idx,
                const std::string& cur_class, const Corpus& corpus,
                bool* inferred = nullptr);

}  // namespace ids::analyzer
