// Interprocedural rules: whole-program lock-order ([lock-order] /
// [xfile-lock-order]), [blocking-under-lock], and [wallclock-in-engine].
//
// All three share the same machinery: per-function summaries (which locks
// a function may acquire, whether it may block) propagated to a fixed
// point over the call graph's *unique* edges — over-approximated edges
// would manufacture summaries no human can act on — plus a scope-aware
// walk of every body that tracks the set of ids::MutexLock guards alive at
// each token (RAII: a guard dies with its enclosing brace scope).
// Reachability for the clock rule intentionally uses the over-approximated
// graph instead: missing a virtual dispatch there would hide real
// nondeterminism, and the worst case is an overly-wide "reachable from the
// engine" label on a finding the sweep half of the rule raises anyway.

#include <algorithm>
#include <functional>
#include <sstream>

#include "analysis.h"

namespace ids::analyzer {
namespace {

/// Calls that block by definition when they do not resolve into the
/// corpus: sleeps, thread/future joins, condition waits, file and process
/// I/O, socket I/O.
bool is_blocking_sink_name(const std::string& s) {
  static const std::set<std::string> kSinks = {
      "sleep_for", "sleep_until", "usleep",  "nanosleep", "join",
      "getline",   "fopen",       "fread",   "fwrite",    "fflush",
      "fclose",    "fgets",       "fputs",   "system",    "popen",
      "wait",      "wait_for",    "wait_until", "accept", "recv",
      "send",      "connect"};
  return kSinks.count(s) != 0;
}

/// Stream types whose construction opens a file: `std::ifstream in(path)`
/// blocks even though no call site is visible.
bool is_blocking_construction(const std::string& s) {
  return s == "ifstream" || s == "ofstream" || s == "fstream";
}

bool is_clock_token(const std::string& s) {
  static const std::set<std::string> kClock = {
      "steady_clock", "system_clock", "high_resolution_clock",
      "clock_gettime", "gettimeofday", "timespec_get",
      "localtime", "localtime_r", "gmtime", "gmtime_r"};
  return kClock.count(s) != 0;
}

bool is_rng_token(const std::string& s) {
  static const std::set<std::string> kRng = {
      "mt19937", "mt19937_64", "random_device", "default_random_engine",
      "minstd_rand", "rand", "srand", "drand48", "lrand48"};
  return kRng.count(s) != 0;
}

bool path_in_telemetry(const std::string& path) {
  return path.find("telemetry/") != std::string::npos;
}

bool path_is_rng_home(const std::string& path) {
  return path.find("common/rng.h") != std::string::npos;
}

const MergedFunc* merged_of(const Corpus& corpus, const FuncDecl& fn) {
  auto ci = corpus.merged.find(fn.klass);
  if (ci == corpus.merged.end()) return nullptr;
  auto fi = ci->second.find(fn.name);
  return fi == ci->second.end() ? nullptr : &fi->second;
}

// --- summaries --------------------------------------------------------------

struct AcquireOrigin {
  std::string path;   // file of the decl that directly acquires the lock
  int line = 0;
  std::string via;    // qualified callee the summary flowed through ("" = direct)
};

struct BlockOrigin {
  std::string what;  // sink name or "IDS_MAY_BLOCK"
  std::string via;   // qualified callee the summary flowed through
};

struct Summaries {
  std::map<const MergedFunc*, std::map<std::string, AcquireOrigin>> acquires;
  std::map<const MergedFunc*, BlockOrigin> blocks;

  bool may_block(const MergedFunc* m) const { return blocks.count(m) != 0; }
};

/// Lock node for the argument list at `open` ("mu_" -> "Class::mu_",
/// "peer.mu_" -> "Peer::mu_" when the member type is known).
std::string resolve_lock(const FileData& f, std::size_t open,
                         const std::string& cur_class, const Corpus& corpus) {
  std::size_t close = f.partner[open];
  if (close == kNone || close <= open + 1) return "";
  if (close == open + 2 && tok_ident(f.toks[open + 1])) {
    return qualify_lock(f.toks[open + 1].text, cur_class);
  }
  if (close == open + 4 && tok_ident(f.toks[open + 1]) &&
      (tok_is(f.toks[open + 2], ".") || tok_is(f.toks[open + 2], "->")) &&
      tok_ident(f.toks[open + 3])) {
    const std::string& recv = f.toks[open + 1].text;
    auto mi = corpus.members.find(cur_class);
    if (mi != corpus.members.end()) {
      auto ri = mi->second.find(recv);
      if (ri != mi->second.end()) {
        return ri->second + "::" + f.toks[open + 3].text;
      }
    }
  }
  std::string joined;
  for (std::size_t i = open + 1; i < close; ++i) joined += f.toks[i].text;
  return joined;
}

Summaries build_summaries(const Corpus& corpus, const CallGraph& graph) {
  Summaries s;
  // Direct facts per merged function.
  for (const auto& [klass, fns] : corpus.merged) {
    (void)klass;
    for (const auto& [name, m] : fns) {
      (void)name;
      // IDS_EXCLUDES is a contract that the function acquires these locks.
      for (const FuncDecl* d : m.decls) {
        for (const std::string& raw : d->excludes) {
          s.acquires[&m].insert(
              {qualify_lock(raw, m.klass), {d->file->path, d->line, ""}});
        }
      }
      if (m.may_block) s.blocks[&m] = {"IDS_MAY_BLOCK", ""};
    }
  }
  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    const MergedFunc* m = merged_of(corpus, fn);
    if (m == nullptr) continue;
    const FileData& f = *fn.file;
    for (std::size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
      if (!tok_ident(f.toks[i])) continue;
      const std::string& t = f.toks[i].text;
      if (t == "MutexLock" && tok_ident(f.toks[i + 1]) &&
          tok_is(f.toks[i + 2], "(")) {
        std::string node = resolve_lock(f, i + 2, fn.klass, corpus);
        if (!node.empty()) {
          s.acquires[m].insert({node, {f.path, f.toks[i].line, ""}});
        }
      } else if (is_blocking_construction(t)) {
        s.blocks.insert({m, {"std::" + t + " (file open)", ""}});
      } else if (tok_is(f.toks[i + 1], "(") && !is_keyword(t) &&
                 !is_macro_name(t) && is_blocking_sink_name(t)) {
        CallTargets ct = resolve_targets(f, i, fn.klass, corpus);
        if (ct.kind == CallTargets::Kind::kExternal) {
          s.blocks.insert({m, {t, ""}});
        }
      }
    }
  }
  // Fixed point over the unique-resolution subgraph.
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [caller, callees] : graph.out_unique) {
      for (const MergedFunc* callee : callees) {
        auto ai = s.acquires.find(callee);
        if (ai != s.acquires.end()) {
          auto& mine = s.acquires[caller];
          for (const auto& [lock, origin] : ai->second) {
            if (mine.insert({lock, {origin.path, origin.line,
                                    callee->qualified()}})
                    .second) {
              changed = true;
            }
          }
        }
        auto bi = s.blocks.find(callee);
        if (bi != s.blocks.end() && s.blocks.count(caller) == 0) {
          s.blocks[caller] = {bi->second.what, callee->qualified()};
          changed = true;
        }
      }
    }
  }
  return s;
}

// --- whole-program lock order + blocking-under-lock -------------------------

struct LockEdge {
  std::string path;
  int line = 0;
  bool xfile = false;
};

struct LockGraph {
  std::map<std::string, std::map<std::string, LockEdge>> adj;

  void add_edge(const std::string& a, const std::string& b,
                const std::string& path, int line, bool xfile) {
    if (a == b) return;
    adj[a].insert({b, {path, line, xfile}});
    adj[b];  // ensure the node exists for deterministic iteration
  }
};

struct HeldLock {
  std::string node;
  std::string var;  // MutexLock variable name ("" for IDS_REQUIRES locks)
  int depth = 0;    // brace depth the guard lives at (-1: whole function)
};

void walk_body(const FuncDecl& fn, Analysis& a, const Summaries& sums,
               LockGraph& locks) {
  const Corpus& corpus = *a.corpus;
  const FileData& f = *fn.file;
  const MergedFunc* self = merged_of(corpus, fn);
  const bool self_may_block = self != nullptr && self->may_block;

  std::vector<HeldLock> held;
  if (self != nullptr) {
    for (const std::string& r : self->requires_held) {
      held.push_back({qualify_lock(r, fn.klass), "", -1});
    }
  }
  auto held_node = [&](const std::string& node) {
    return std::any_of(held.begin(), held.end(),
                       [&](const HeldLock& h) { return h.node == node; });
  };

  int depth = 0;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = f.toks[i];
    if (tok_is(t, "{")) {
      ++depth;
      continue;
    }
    if (tok_is(t, "}")) {
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const HeldLock& h) {
                                  return h.depth == depth;
                                }),
                 held.end());
      depth = std::max(0, depth - 1);
      continue;
    }
    if (!tok_ident(t) || i + 1 >= fn.body_end) continue;
    const std::string& name = t.text;

    if (name == "MutexLock" && i + 2 < fn.body_end &&
        tok_ident(f.toks[i + 1]) && tok_is(f.toks[i + 2], "(")) {
      std::string node = resolve_lock(f, i + 2, fn.klass, corpus);
      if (!node.empty()) {
        for (const HeldLock& h : held) {
          locks.add_edge(h.node, node, f.path, t.line, false);
        }
        held.push_back({node, f.toks[i + 1].text, depth});
      }
      if (f.partner[i + 2] != kNone) i = f.partner[i + 2];
      continue;
    }

    // Blocking stream construction under a lock.
    if (is_blocking_construction(name) && !held.empty() && !self_may_block &&
        a.rule_enabled("blocking-under-lock")) {
      a.report("blocking-under-lock", f, t.line,
               "constructs 'std::" + name + "' (file open) while '" +
                   held.back().node +
                   "' is held; do the I/O outside the critical section or "
                   "annotate the enclosing function IDS_MAY_BLOCK");
      continue;
    }

    if (!tok_is(f.toks[i + 1], "(") || is_keyword(name) ||
        is_macro_name(name)) {
      continue;
    }
    // `Type var(init)` is a declaration, not a call (MutexLock handled
    // above).
    if (i > fn.body_begin && tok_ident(f.toks[i - 1]) &&
        !is_keyword(f.toks[i - 1].text)) {
      continue;
    }

    CallTargets ct = resolve_targets(f, i, fn.klass, corpus);

    // Condition-variable waits that *release* the held lock are the one
    // sanctioned way to block under it: `cv_.wait(mutex_, ...)` where the
    // first argument names the only held mutex (or its guard variable).
    bool condvar_wait_on_held = false;
    if ((name == "wait" || name == "wait_for" || name == "wait_until") &&
        held.size() == 1 && i + 2 < fn.body_end &&
        tok_ident(f.toks[i + 2])) {
      const std::string& arg = f.toks[i + 2].text;
      condvar_wait_on_held =
          arg == held.front().var ||
          qualify_lock(arg, fn.klass) == held.front().node;
    }

    // Lock-order: declared and transitive acquisitions of every uniquely
    // resolved callee.
    if (ct.kind == CallTargets::Kind::kUnique) {
      const MergedFunc* callee = ct.targets.front();
      std::set<std::string> declared;
      for (const std::string& raw : callee->excludes) {
        declared.insert(qualify_lock(raw, callee->klass));
      }
      auto ai = sums.acquires.find(callee);
      if (ai != sums.acquires.end()) {
        for (const auto& [lock, origin] : ai->second) {
          const bool xfile = origin.path != f.path;
          if (held_node(lock)) {
            const char* rule = xfile ? "xfile-lock-order" : "lock-order";
            std::string msg;
            if (declared.count(lock)) {
              msg = "call to '" + callee->qualified() +
                    "' which IDS_EXCLUDES '" + lock + "' while '" + lock +
                    "' is held (self-deadlock)";
            } else {
              msg = "call to '" + callee->qualified() +
                    "' which transitively acquires '" + lock +
                    "' (acquired at " + origin.path + ":" +
                    std::to_string(origin.line) +
                    (origin.via.empty() ? "" : ", via '" + origin.via + "'") +
                    ") while '" + lock + "' is held (self-deadlock)";
            }
            a.report(rule, f, t.line, std::move(msg));
          } else {
            for (const HeldLock& h : held) {
              locks.add_edge(h.node, lock, f.path, t.line, xfile);
            }
          }
        }
      }
    }

    // Blocking-under-lock.
    if (held.empty() || self_may_block || condvar_wait_on_held ||
        !a.rule_enabled("blocking-under-lock")) {
      continue;
    }
    std::string block_what, block_via;
    bool blocking = false;
    if (ct.kind == CallTargets::Kind::kUnique) {
      auto bi = sums.blocks.find(ct.targets.front());
      if (bi != sums.blocks.end()) {
        blocking = true;
        block_what = bi->second.what;
        block_via = bi->second.via;
      }
    } else if (ct.kind == CallTargets::Kind::kOverapprox) {
      // Over-approximated targets: only flag when *every* candidate
      // blocks, so a name collision cannot manufacture a finding.
      blocking = !ct.targets.empty() &&
                 std::all_of(ct.targets.begin(), ct.targets.end(),
                             [&](const MergedFunc* m) {
                               return sums.may_block(m);
                             });
      if (blocking) {
        const auto& b = sums.blocks.at(ct.targets.front());
        block_what = b.what;
        block_via = b.via;
      }
    } else if (ct.kind == CallTargets::Kind::kExternal &&
               is_blocking_sink_name(name)) {
      blocking = true;
      block_what = name;
    }
    if (!blocking) continue;
    std::string target =
        ct.targets.empty() ? ("'" + name + "'")
                           : ("'" + ct.targets.front()->qualified() + "'");
    std::string reason = block_what == "IDS_MAY_BLOCK"
                             ? "annotated IDS_MAY_BLOCK"
                             : "reaches '" + block_what + "'";
    if (!block_via.empty()) reason += " via '" + block_via + "'";
    a.report("blocking-under-lock", f, t.line,
             "call to " + target + " may block (" + reason + ") while '" +
                 held.back().node +
                 "' is held; hoist the blocking work out of the critical "
                 "section or annotate the enclosing function IDS_MAY_BLOCK");
  }
}

/// Lock-graph cycle detection (iterative over nodes, DFS per component,
/// deterministic order). A cycle with any cross-file edge is reported
/// under [xfile-lock-order], otherwise [lock-order].
void report_lock_cycles(Analysis& a, const LockGraph& locks) {
  const auto& adj = locks.adj;
  std::map<std::string, int> state;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    state[u] = 1;
    path.push_back(u);
    auto it = adj.find(u);
    if (it != adj.end()) {
      for (const auto& [v, edge] : it->second) {
        (void)edge;
        if (state[v] == 1) {
          auto pos = std::find(path.begin(), path.end(), v);
          std::vector<std::string> cycle(pos, path.end());
          // Normalize: rotate so the lexicographically-smallest lock leads.
          auto mn = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), mn, cycle.end());
          std::string desc;
          for (const std::string& n : cycle) desc += n + " -> ";
          desc += cycle.front();
          if (reported.insert(desc).second) {
            bool xfile = false;
            std::vector<std::string> notes;
            std::string at_path = "<lock-graph>";
            int at_line = 0;
            for (std::size_t i = 0; i < cycle.size(); ++i) {
              const std::string& from = cycle[i];
              const std::string& to = cycle[(i + 1) % cycle.size()];
              auto fi = adj.find(from);
              if (fi == adj.end()) continue;
              auto ei = fi->second.find(to);
              if (ei == fi->second.end()) continue;
              xfile = xfile || ei->second.xfile;
              if (at_line == 0) {
                at_path = ei->second.path;
                at_line = ei->second.line;
              }
              notes.push_back("edge " + from + " -> " + to +
                              " established at " + ei->second.path + ":" +
                              std::to_string(ei->second.line));
            }
            const char* rule = xfile ? "xfile-lock-order" : "lock-order";
            if (a.rule_enabled(rule)) {
              a.findings.push_back({rule, at_path, at_line,
                                    std::string(xfile ? "cross-TU " : "") +
                                        "inconsistent lock acquisition "
                                        "order: " + desc,
                                    std::move(notes), false});
            }
          }
        } else if (state[v] == 0) {
          dfs(v);
        }
      }
    }
    path.pop_back();
    state[u] = 2;
  };
  for (const auto& [node, _] : adj) {
    if (state[node] == 0) dfs(node);
  }
}

// --- clock / determinism discipline -----------------------------------------

void rule_wallclock(Analysis& a) {
  const Corpus& corpus = *a.corpus;
  // Roots: the modeled-clock execution path.
  std::vector<const MergedFunc*> roots;
  if (auto ci = corpus.merged.find("IdsEngine"); ci != corpus.merged.end()) {
    if (auto fi = ci->second.find("execute"); fi != ci->second.end()) {
      roots.push_back(&fi->second);
    }
  }
  std::set<const MergedFunc*> reach =
      roots.empty() ? std::set<const MergedFunc*>{}
                    : a.graph->reachable_from(roots);

  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    const FileData& f = *fn.file;
    if (path_in_telemetry(f.path)) continue;  // the sanctioned wall-clock home
    const MergedFunc* m = merged_of(corpus, fn);
    if (m != nullptr && m->wallclock_ok) continue;
    const bool in_reach = m != nullptr && reach.count(m) != 0;
    const std::string qn = m != nullptr
                               ? m->qualified()
                               : (fn.klass.empty() ? fn.name
                                                  : fn.klass + "::" + fn.name);
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (!tok_ident(f.toks[i])) continue;
      const std::string& t = f.toks[i].text;
      if (is_clock_token(t)) {
        std::string msg = "wall-clock read ('" + t + "') in '" + qn + "'";
        msg += in_reach
                   ? ", which is reachable from IdsEngine::execute — modeled "
                     "time must come from the per-rank virtual clocks"
                   : " outside src/telemetry/";
        msg += "; route it through telemetry::Tracer::wall_now_ns() or "
               "annotate the function IDS_WALLCLOCK_OK";
        a.report("wallclock-in-engine", f, f.toks[i].line, std::move(msg));
      } else if (in_reach && is_rng_token(t) && !path_is_rng_home(f.path)) {
        a.report("wallclock-in-engine", f, f.toks[i].line,
                 "raw randomness ('" + t + "') in '" + qn +
                     "', which is reachable from IdsEngine::execute; use "
                     "the deterministic ids::Rng instead");
      }
    }
  }
}

}  // namespace

void run_interproc_rules(Analysis& a) {
  const bool want_locks = a.rule_enabled("lock-order") ||
                          a.rule_enabled("xfile-lock-order") ||
                          a.rule_enabled("blocking-under-lock");
  if (want_locks) {
    Summaries sums = build_summaries(*a.corpus, *a.graph);
    LockGraph locks;
    for (const FuncDecl& fn : a.corpus->funcs) {
      if (fn.has_body()) walk_body(fn, a, sums, locks);
    }
    report_lock_cycles(a, locks);
  }
  if (a.rule_enabled("wallclock-in-engine")) rule_wallclock(a);
}

}  // namespace ids::analyzer
