// File-local rules: [discarded-status] / [wrapper-discarded-status],
// [unchecked-value], [bare-assert]. These need only the corpus symbol
// tables, not the call graph; the interprocedural escalation of the
// discard rule happens through the corpus's wrapper return-kind inference
// (corpus.cpp) — a discarded call whose Status-ness was *inferred* through
// a thin forwarding wrapper is attributed to [wrapper-discarded-status].

#include <algorithm>
#include <map>

#include "analysis.h"

namespace ids::analyzer {
namespace {

/// [discarded-status]: a statement that is exactly a call to a function
/// known to return Status/Result, with nothing consuming the value.
void rule_discarded(const FileData& f, const FuncDecl& fn,
                    const std::string& cur_class, Analysis& a) {
  for (auto [sb, se] : statements(f, fn.body_begin, fn.body_end)) {
    std::size_t b = sb;
    bool void_cast = false;
    if (se - b >= 3 && tok_is(f.toks[b], "(") &&
        tok_is(f.toks[b + 1], "void") && tok_is(f.toks[b + 2], ")")) {
      void_cast = true;
      b += 3;
    }
    if (se <= b) continue;
    if (tok_ident(f.toks[b]) && is_keyword(f.toks[b].text)) continue;
    // Assignment anywhere at paren depth 0 consumes the value.
    {
      int depth = 0;
      bool assigned = false;
      for (std::size_t i = b; i < se; ++i) {
        const std::string& t = f.toks[i].text;
        if (f.toks[i].kind != Token::Kind::kPunct) continue;
        if (t == "(") ++depth;
        else if (t == ")") --depth;
        else if (depth == 0 && (t == "=" || t == "+=" || t == "-=" ||
                                t == "*=" || t == "/=" || t == "%=" ||
                                t == "&=" || t == "|=" || t == "^=")) {
          assigned = true;
          break;
        }
      }
      if (assigned) continue;
    }
    // The statement must be exactly `chain(args)`: find the first '(',
    // require its close to end the statement and the callee chain to start
    // the statement.
    std::size_t open = kNone;
    for (std::size_t i = b; i < se; ++i) {
      if (tok_is(f.toks[i], "(")) {
        open = i;
        break;
      }
    }
    if (open == kNone || open == b) continue;
    if (f.partner[open] == kNone || f.partner[open] != se - 1) continue;
    std::size_t name_idx = open - 1;
    if (!tok_ident(f.toks[name_idx])) continue;
    // Walk the receiver chain back to the statement start.
    std::size_t k = name_idx;
    while (k >= b + 2 &&
           (tok_is(f.toks[k - 1], ".") || tok_is(f.toks[k - 1], "->") ||
            tok_is(f.toks[k - 1], "::")) &&
           tok_ident(f.toks[k - 2])) {
      k -= 2;
    }
    if (k != b) continue;  // something else precedes the call expression
    const std::string& callee = f.toks[name_idx].text;
    if (is_macro_name(callee) || is_keyword(callee)) continue;
    bool inferred = false;
    if (resolve_ret(f, name_idx, cur_class, *a.corpus, &inferred) ==
        Ret::kOther) {
      continue;
    }
    const std::string rule =
        inferred ? "wrapper-discarded-status" : "discarded-status";
    std::string msg;
    if (void_cast) {
      msg = "'(void)' is not an approved discard of '" + callee +
            "'; wrap the call in IDS_IGNORE_ERROR(...)";
    } else if (inferred) {
      msg = "return value of '" + callee +
            "' is discarded; it forwards a Status/Result from its callee — "
            "consume it or wrap the call in IDS_IGNORE_ERROR(...)";
    } else {
      msg = "return value of '" + callee +
            "' (Status/Result) is discarded; consume it or wrap the call "
            "in IDS_IGNORE_ERROR(...)";
    }
    a.report(rule, f, f.toks[name_idx].line, std::move(msg));
  }
}

/// [unchecked-value]: Result::value() / .status().message() on a variable
/// initialized from a Result-returning call, with no `v.ok()` appearing
/// earlier in the function.
void rule_unchecked_value(const FileData& f, const FuncDecl& fn,
                          const std::string& cur_class, Analysis& a) {
  std::map<std::string, bool> tracked;  // var -> ok() seen
  for (auto [sb, se] : statements(f, fn.body_begin, fn.body_end)) {
    // Uses and checks first, in token order within the statement.
    for (std::size_t i = sb; i + 3 < se; ++i) {
      if (!tok_ident(f.toks[i])) continue;
      auto ti = tracked.find(f.toks[i].text);
      if (ti == tracked.end()) continue;
      if (!tok_is(f.toks[i + 1], ".") && !tok_is(f.toks[i + 1], "->")) {
        continue;
      }
      const std::string& mem = f.toks[i + 2].text;
      if (!tok_is(f.toks[i + 3], "(")) continue;
      if (mem == "ok") {
        ti->second = true;
      } else if (mem == "value" && !ti->second) {
        a.report("unchecked-value", f, f.toks[i].line,
                 "'" + ti->first + ".value()' without a dominating '" +
                     ti->first + ".ok()' check in this function");
      } else if (mem == "status" && !ti->second) {
        std::size_t close = f.partner[i + 3];
        if (close != kNone && close + 2 < se &&
            tok_is(f.toks[close + 1], ".") &&
            tok_is(f.toks[close + 2], "message")) {
          a.report("unchecked-value", f, f.toks[i].line,
                   "'" + ti->first + ".status().message()' without a "
                   "dominating '" + ti->first + ".ok()' check");
        }
      }
    }
    // Then assignment tracking: `V = <first call returning Result>(...)`.
    int depth = 0;
    for (std::size_t i = sb; i < se; ++i) {
      const std::string& t = f.toks[i].text;
      if (f.toks[i].kind == Token::Kind::kPunct) {
        if (t == "(") ++depth;
        else if (t == ")") depth = std::max(0, depth - 1);
      }
      if (depth != 0 || !tok_is(f.toks[i], "=") || i <= sb) continue;
      if (!tok_ident(f.toks[i - 1]) || is_keyword(f.toks[i - 1].text)) break;
      const std::string var = f.toks[i - 1].text;
      for (std::size_t j = i + 1; j + 1 < se; ++j) {
        if (tok_ident(f.toks[j]) && tok_is(f.toks[j + 1], "(") &&
            !is_keyword(f.toks[j].text) && !is_macro_name(f.toks[j].text)) {
          if (resolve_ret(f, j, cur_class, *a.corpus) == Ret::kResult) {
            tracked[var] = false;  // (re)assigned: check required again
          }
          break;  // only the outermost/first call decides
        }
      }
      break;  // one assignment per statement is enough
    }
  }
}

/// [bare-assert]: any `assert(` token pair, anywhere in the file.
void rule_bare_assert(const FileData& f, Analysis& a) {
  for (std::size_t i = 0; i + 1 < f.toks.size(); ++i) {
    if (tok_ident(f.toks[i]) && f.toks[i].text == "assert" &&
        tok_is(f.toks[i + 1], "(")) {
      a.report("bare-assert", f, f.toks[i].line,
               "bare assert(); use IDS_CHECK / IDS_DCHECK for invariants or "
               "return a Status for recoverable conditions");
    }
  }
}

}  // namespace

void run_local_rules(Analysis& a) {
  const Corpus& corpus = *a.corpus;
  if (a.rule_enabled("bare-assert")) {
    for (const auto& fd : corpus.files) rule_bare_assert(*fd, a);
  }
  const bool discard = a.rule_enabled("discarded-status") ||
                       a.rule_enabled("wrapper-discarded-status");
  const bool unchecked = a.rule_enabled("unchecked-value");
  if (!discard && !unchecked) return;
  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    if (discard) rule_discarded(*fn.file, fn, fn.klass, a);
    if (unchecked) rule_unchecked_value(*fn.file, fn, fn.klass, a);
  }
}

}  // namespace ids::analyzer
