#pragma once

// Finding emission for ids-analyzer: human text, SARIF 2.1.0 JSON, and
// the baseline/suppression workflow. A baseline entry is
// `rule|path|message` with every digit run squashed to '#' so line-number
// drift does not invalidate it; `--baseline=FILE` marks matching findings
// suppressed (exit 0 when everything is suppressed), `--write-baseline=`
// emits the current findings in that format.

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "analysis.h"

namespace ids::analyzer {

/// Baseline key for a finding (digit runs in path/message squashed).
std::string baseline_key(const Finding& fd);

/// Loads baseline keys from `path` ('#'-comment and blank lines skipped).
/// Returns false (with a message on stderr) when the file cannot be read.
bool load_baseline(const std::string& path, std::set<std::string>* keys);

/// Marks findings whose key appears in `keys` as suppressed.
void apply_baseline(const std::set<std::string>& keys,
                    std::vector<Finding>* findings);

/// Writes the deduplicated keys of all (unsuppressed) findings to `path`.
bool write_baseline(const std::string& path,
                    const std::vector<Finding>& findings);

void print_text(std::ostream& os, const std::vector<Finding>& findings);

/// SARIF 2.1.0: one run, tool.driver.rules metadata for every rule in
/// rule_table(), one result per unsuppressed finding (suppressed findings
/// are emitted with suppressions[].kind = "external").
void print_sarif(std::ostream& os, const std::vector<Finding>& findings);

/// GitHub Actions workflow commands: one `::error file=...,line=...,
/// title=ids-analyzer/<rule>::<message>` line per unsuppressed finding,
/// so findings annotate the diff inline on PRs (%, CR, LF escaped per the
/// workflow-command syntax). Suppressed findings are skipped.
void print_github(std::ostream& os, const std::vector<Finding>& findings);

}  // namespace ids::analyzer
