#include "field_access.h"

#include <algorithm>

namespace ids::analyzer {
namespace {

bool is_assign_op(const std::string& t) {
  static const std::set<std::string> kOps = {
      "=",  "+=", "-=",  "*=",  "/=",  "%=",
      "&=", "|=", "^=", "<<=", ">>="};
  return kOps.count(t) != 0;
}

/// Lock node for the MutexLock argument list at `open` — mirrors the
/// interprocedural walker's resolution: "mu_" -> "Class::mu_",
/// "peer.mu_" -> "Peer::mu_" when the member type is known.
std::string resolve_lock_arg(const FileData& f, std::size_t open,
                             const std::string& cur_class,
                             const Corpus& corpus) {
  std::size_t close = f.partner[open];
  if (close == kNone || close <= open + 1) return "";
  if (close == open + 2 && tok_ident(f.toks[open + 1])) {
    return qualify_lock(f.toks[open + 1].text, cur_class);
  }
  if (close == open + 4 && tok_ident(f.toks[open + 1]) &&
      (tok_is(f.toks[open + 2], ".") || tok_is(f.toks[open + 2], "->")) &&
      tok_ident(f.toks[open + 3])) {
    const std::string& recv = f.toks[open + 1].text;
    auto mi = corpus.members.find(cur_class);
    if (mi != corpus.members.end()) {
      auto ri = mi->second.find(recv);
      if (ri != mi->second.end()) {
        return ri->second + "::" + f.toks[open + 3].text;
      }
    }
  }
  return "";
}

}  // namespace

bool parse_decl_span(const FileData& f, std::size_t begin, std::size_t end,
                     const std::string& klass, const Corpus& corpus,
                     FieldInfo* out) {
  std::size_t b = begin, e = end;
  // Cut at the first top-level '=' or '{' (initializer — `T x = ...` or
  // `T x{...}`), skipping balanced groups reached through the declarator.
  for (std::size_t i = b; i < e; ++i) {
    if (tok_is(f.toks[i], "=") || tok_is(f.toks[i], "{")) {
      e = i;
      break;
    }
    if ((tok_is(f.toks[i], "(") || tok_is(f.toks[i], "[")) &&
        f.partner[i] != kNone && f.partner[i] < e) {
      i = f.partner[i];
    }
  }
  // Strip trailing IDS_*(...) annotation groups (after the '='-cut, so an
  // initializer does not hide them), recording the two this layer consumes.
  while (e > b && tok_is(f.toks[e - 1], ")") && f.partner[e - 1] != kNone) {
    std::size_t o = f.partner[e - 1];
    if (o > b && tok_ident(f.toks[o - 1]) &&
        f.toks[o - 1].text.rfind("IDS_", 0) == 0) {
      const std::string& macro = f.toks[o - 1].text;
      std::string arg;
      for (std::size_t k = o + 1; k + 1 < e; ++k) arg += f.toks[k].text;
      if (macro == "IDS_GUARDED_BY" || macro == "IDS_PT_GUARDED_BY") {
        out->guarded_by = arg.empty() ? "?" : arg;
      } else if (macro == "IDS_SINGLE_QUERY_ONLY") {
        out->waiver = arg.empty() ? "unspecified" : arg;
      } else if (macro == "IDS_FROZEN_AFTER") {
        out->frozen_after = arg.empty() ? "?" : arg;
      }
      e = o - 1;
    } else {
      break;
    }
  }
  if (e <= b) return false;
  bool has_amp = false, has_const = false, last_is_star = false;
  bool const_binds = false;  // const not followed by a later '*'
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = f.toks[i];
    if (tok_is(t, "(")) return false;  // function decl / function pointer
    if (tok_ident(t)) {
      const std::string& n = t.text;
      if (n == "operator" || n == "friend" || n == "extern") return false;
      if (n == "const") {
        has_const = true;
        const_binds = true;  // cleared again if a '*' follows
      }
      if (n == "constexpr") out->is_const = true;
      // thread_local storage is per-thread by construction: not shared
      // state, so it classifies with the immutables.
      if (n == "thread_local") out->is_const = true;
      if (n == "static") out->is_static = true;
      if (n == "mutable") out->is_mutable = true;
      if (n.rfind("atomic", 0) == 0) out->is_atomic = true;
      if (n == "Mutex" || n == "CondVar" || n == "mutex" ||
          n == "shared_mutex" || n == "recursive_mutex" ||
          n == "condition_variable" || n == "condition_variable_any") {
        out->is_sync = true;  // ids:: wrappers and the std:: primitives
      }
      if (!is_keyword(n) && n.rfind("IDS_", 0) != 0) out->name = n;
      last_is_star = false;
    } else if (tok_is(t, "*")) {
      const_binds = false;  // the const seen so far qualifies the pointee
      last_is_star = true;
    } else if (tok_is(t, "&") || tok_is(t, "&&")) {
      has_amp = true;
      last_is_star = false;
    }
  }
  (void)last_is_star;
  if (out->name.empty()) return false;
  // `const T x`, `T& x`, and `T* const x` bindings are immutable;
  // `const T* x` is a re-pointable pointer to const and stays mutable.
  if ((has_const && const_binds) || has_amp) out->is_const = true;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = f.toks[i];
    if (tok_ident(t) && t.text != out->name &&
        corpus.classes.count(t.text) != 0) {
      out->type_class = t.text;
      break;
    }
  }
  out->klass = klass;
  out->path = f.path;
  out->line = f.toks[b].line;
  return true;
}

namespace {

/// Collects write sites for every field, resolving mutating method calls
/// against the current unsafe-class set (one iteration of the fixed point).
std::map<std::size_t, std::vector<WriteSite>> collect_writes(
    const Corpus& corpus, const FieldTable& t,
    const std::set<std::string>& unsafe) {
  std::map<std::size_t, std::vector<WriteSite>> out;
  for (const FuncDecl& fn : corpus.funcs) {
    if (!fn.has_body()) continue;
    const FileData& f = *fn.file;
    const bool in_ctor = !fn.klass.empty() && fn.name == fn.klass;
    LockScope scope(fn, corpus);
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      scope.step(i);
      if (!tok_ident(f.toks[i]) || is_keyword(f.toks[i].text)) continue;
      const std::string& n = f.toks[i].text;
      // Resolve the owner class of a would-be field access.
      std::string owner;
      const bool after_member =
          i > 0 && (tok_is(f.toks[i - 1], ".") || tok_is(f.toks[i - 1], "->"));
      if (i > 0 && tok_is(f.toks[i - 1], "::")) continue;
      if (after_member) {
        if (i >= 2 && tok_ident(f.toks[i - 2])) {
          const std::string& recv = f.toks[i - 2].text;
          if (recv == "this") {
            owner = fn.klass;
          } else {
            auto mi = corpus.members.find(fn.klass);
            if (mi != corpus.members.end()) {
              auto ri = mi->second.find(recv);
              if (ri != mi->second.end()) owner = ri->second;
            }
          }
        }
        if (owner.empty()) continue;
      } else {
        owner = fn.klass;
        // `Type n = ...` declares a local that shadows the field.
        if (i > fn.body_begin && tok_ident(f.toks[i - 1]) &&
            !is_keyword(f.toks[i - 1].text)) {
          continue;
        }
      }
      if (owner.empty()) continue;
      auto ci = t.by_class.find(owner);
      if (ci == t.by_class.end()) continue;
      auto fi = ci->second.find(n);
      if (fi == ci->second.end()) continue;
      const std::size_t idx = fi->second;
      const FieldInfo& field = t.fields[idx];

      // Skip over subscript chains: `f[i] = v` still assigns into the
      // container, so the op after the chain decides.
      std::size_t j = i + 1;
      while (j < fn.body_end && tok_is(f.toks[j], "[") &&
             f.partner[j] != kNone && f.partner[j] < fn.body_end) {
        j = f.partner[j] + 1;
      }
      WriteSite ws;
      ws.path = f.path;
      ws.line = f.toks[i].line;
      ws.in_ctor = in_ctor;
      ws.under_lock = scope.any_held();
      ws.lock = scope.innermost();
      ws.fn = &fn;
      bool is_write = false;
      if (j < fn.body_end) {
        const std::string& op = f.toks[j].text;
        if (is_assign_op(op) || op == "++" || op == "--") {
          is_write = true;
          ws.detail = op;
        } else if ((tok_is(f.toks[j], ".") || tok_is(f.toks[j], "->")) &&
                   j + 2 < fn.body_end && tok_ident(f.toks[j + 1]) &&
                   tok_is(f.toks[j + 2], "(")) {
          const std::string& method = f.toks[j + 1].text;
          const std::string& tc = field.type_class;
          if (tc.empty() || corpus.merged.count(tc) == 0) {
            // External type: fall back to the container-method name list.
            if (is_mutating_container_method(method)) {
              is_write = true;
              ws.via_method = true;
              ws.detail = method;
            }
          } else if (unsafe.count(tc) != 0) {
            // A method call on an object of a class that is not internally
            // synchronized: non-const methods mutate; const methods do too
            // when the class hides unprotected `mutable` state.
            auto mc = corpus.merged.find(tc);
            auto mm = mc->second.find(method);
            const bool non_const = mm == mc->second.end()
                                       ? is_mutating_container_method(method)
                                       : !mm->second.all_const();
            if (non_const || t.mutable_trap.count(tc) != 0) {
              is_write = true;
              ws.via_method = true;
              ws.detail = method;
            }
          }
          // An internally-synchronized (or immutable) class absorbs the
          // call — not a write against this field.
        }
      }
      if (!is_write && i > fn.body_begin &&
          (tok_is(f.toks[i - 1], "++") || tok_is(f.toks[i - 1], "--"))) {
        is_write = true;  // pre-increment/decrement
        ws.detail = f.toks[i - 1].text;
      }
      if (is_write) out[idx].push_back(ws);
    }
  }
  return out;
}

/// One unsafe-set iteration from a write map: a class is unsafe when some
/// field is neither protected nor ctor-confined — or hides unprotected
/// `mutable` state (written from const readers the collector cannot see).
std::set<std::string> compute_unsafe(
    const FieldTable& t,
    const std::map<std::size_t, std::vector<WriteSite>>& writes,
    const std::set<std::string>& prev_unsafe) {
  std::set<std::string> out;
  for (std::size_t idx = 0; idx < t.fields.size(); ++idx) {
    const FieldInfo& fi = t.fields[idx];
    if (fi.protected_state()) continue;
    if (fi.is_mutable &&
        (fi.type_class.empty() || prev_unsafe.count(fi.type_class) != 0 ||
         t.mutable_trap.count(fi.type_class) != 0)) {
      out.insert(fi.klass);
      continue;
    }
    auto wi = writes.find(idx);
    if (wi == writes.end()) continue;
    for (const WriteSite& ws : wi->second) {
      if (!ws.in_ctor) {
        out.insert(fi.klass);
        break;
      }
    }
  }
  return out;
}

}  // namespace

bool is_mutating_container_method(const std::string& name) {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back", "push_front", "pop_front",
      "insert",    "emplace",      "erase",    "clear",      "resize",
      "assign",    "push",         "pop",      "reserve",    "swap",
      "store",     "fetch_add",    "fetch_sub"};
  return kMutators.count(name) != 0;
}

std::vector<std::string> param_names(const FuncDecl& fn) {
  std::vector<std::string> out;
  if (fn.file == nullptr || fn.params_end <= fn.params_begin) return out;
  const FileData& f = *fn.file;
  int depth = 0, angle = 0;
  std::string last_ident;
  bool defaulted = false;
  auto flush = [&] {
    if (!defaulted && !last_ident.empty() && !is_keyword(last_ident)) {
      out.push_back(last_ident);
    }
    last_ident.clear();
    defaulted = false;
  };
  for (std::size_t i = fn.params_begin; i < fn.params_end; ++i) {
    const Token& t = f.toks[i];
    if (t.kind == Token::Kind::kPunct) {
      const std::string& p = t.text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      else if (p == "<") ++angle;
      else if (p == ">") angle = std::max(0, angle - 1);
      else if (p == ">>") angle = std::max(0, angle - 2);
      else if (depth == 0 && angle == 0) {
        if (p == ",") flush();
        else if (p == "=") defaulted = true;  // name precedes the default
      }
      continue;
    }
    if (depth == 0 && angle == 0 && !defaulted && tok_ident(t)) {
      last_ident = t.text;
    }
  }
  flush();
  return out;
}

LockScope::LockScope(const FuncDecl& fn, const Corpus& corpus)
    : fn_(fn), corpus_(corpus), f_(*fn.file) {
  auto ci = corpus.merged.find(fn.klass);
  if (ci != corpus.merged.end()) {
    auto mi = ci->second.find(fn.name);
    if (mi != ci->second.end()) {
      for (const std::string& r : mi->second.requires_held) {
        held_.push_back({qualify_lock(r, fn.klass), -1});
      }
    }
  }
}

void LockScope::step(std::size_t i) {
  const Token& t = f_.toks[i];
  if (tok_is(t, "{")) {
    ++depth_;
    return;
  }
  if (tok_is(t, "}")) {
    held_.erase(std::remove_if(held_.begin(), held_.end(),
                               [&](const Guard& g) {
                                 return g.depth == depth_;
                               }),
                held_.end());
    depth_ = std::max(0, depth_ - 1);
    return;
  }
  if (tok_ident(t) && t.text == "MutexLock" && i + 2 < f_.toks.size() &&
      tok_ident(f_.toks[i + 1]) && tok_is(f_.toks[i + 2], "(")) {
    std::string node = resolve_lock_arg(f_, i + 2, fn_.klass, corpus_);
    if (!node.empty()) held_.push_back({node, depth_});
  }
}

bool LockScope::holds(const std::string& node) const {
  return std::any_of(held_.begin(), held_.end(),
                     [&](const Guard& g) { return g.node == node; });
}

FieldTable build_field_table(const Corpus& corpus) {
  FieldTable t;
  for (const MemberSpan& s : corpus.member_spans) {
    FieldInfo fi;
    if (parse_decl_span(*s.file, s.begin, s.end, s.klass, corpus, &fi)) {
      t.fields.push_back(std::move(fi));
    }
  }
  for (const MemberSpan& s : corpus.global_spans) {
    FieldInfo fi;
    if (parse_decl_span(*s.file, s.begin, s.end, "", corpus, &fi)) {
      t.globals.push_back(std::move(fi));
    }
  }
  auto by_qual = [](const FieldInfo& a, const FieldInfo& b) {
    if (a.klass != b.klass) return a.klass < b.klass;
    if (a.name != b.name) return a.name < b.name;
    return a.path < b.path;
  };
  std::stable_sort(t.fields.begin(), t.fields.end(), by_qual);
  t.fields.erase(std::unique(t.fields.begin(), t.fields.end(),
                             [](const FieldInfo& a, const FieldInfo& b) {
                               return a.klass == b.klass && a.name == b.name;
                             }),
                 t.fields.end());
  std::stable_sort(t.globals.begin(), t.globals.end(),
                   [](const FieldInfo& a, const FieldInfo& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.name < b.name;
                   });
  for (std::size_t i = 0; i < t.fields.size(); ++i) {
    const FieldInfo& fi = t.fields[i];
    t.by_class[fi.klass][fi.name] = i;
    if (fi.is_sync && !fi.klass.empty() &&
        fi.guarded_by.empty()) {  // a guarded CondVar is not the lock
      t.class_has_mutex.insert(fi.klass);
    }
    if (fi.is_mutable && !fi.protected_state() &&
        (fi.type_class.empty() || corpus.merged.count(fi.type_class) == 0)) {
      t.mutable_trap.insert(fi.klass);
    }
  }
  // Greatest fixed point on class safety: start from "every class safe",
  // collect writes under that assumption, recompute the unsafe set, and
  // iterate — the set only grows, so this terminates in <= #classes steps.
  std::set<std::string> unsafe;
  for (;;) {
    auto writes = collect_writes(corpus, t, unsafe);
    auto next = compute_unsafe(t, writes, unsafe);
    if (next == unsafe) {
      t.writes = std::move(writes);
      t.unsafe_classes = std::move(next);
      break;
    }
    unsafe = std::move(next);
  }
  return t;
}

}  // namespace ids::analyzer
