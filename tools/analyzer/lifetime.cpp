#include "lifetime.h"

#include <algorithm>

#include "field_access.h"

namespace ids::analyzer {
namespace {

const MergedFunc* merged_of(const Corpus& corpus, const FuncDecl& fn) {
  auto ci = corpus.merged.find(fn.klass);
  if (ci == corpus.merged.end()) return nullptr;
  auto mi = ci->second.find(fn.name);
  return mi == ci->second.end() ? nullptr : &mi->second;
}

/// Receiver chain of the member call whose callee-name token is at `i`
/// (f.toks[i-1] is '.' or '->'). Walks back over ident and subscript-group
/// segments — `keys_.assign`, `id_cols_[i].push_back`, `this->ctrl_.clear`
/// all root — and returns the base ident ("" when the receiver is a call
/// result, cast, or parenthesized expression). `chain` gets the dotted
/// spelling for finding messages.
std::string member_call_base(const FileData& f, std::size_t i,
                             std::size_t begin, std::string* chain) {
  std::vector<std::string> parts;
  std::size_t k = i;
  while (k >= begin + 2 &&
         (tok_is(f.toks[k - 1], ".") || tok_is(f.toks[k - 1], "->"))) {
    std::size_t q = k - 2;
    while (q > begin && tok_is(f.toks[q], "]") && f.partner[q] != kNone &&
           f.partner[q] > begin && f.partner[q] >= 1) {
      q = f.partner[q] - 1;  // the token before the '[' of member[expr]
    }
    if (!tok_ident(f.toks[q])) return "";
    parts.push_back(f.toks[q].text);
    k = q;
  }
  if (parts.empty()) return "";
  if (k >= begin + 1) {
    const std::string& prev = f.toks[k - 1].text;
    if (prev == "::" || prev == ")" || prev == "]") return "";
  }
  std::string joined;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    joined += (joined.empty() ? "" : ".") + *it;
  }
  *chain = joined;
  return parts.back();
}

}  // namespace

bool is_invalidating_container_method(const std::string& name) {
  static const std::set<std::string> kOps = {
      "push_back", "emplace_back", "pop_back",      "push_front",
      "pop_front", "insert",       "emplace",       "emplace_hint",
      "erase",     "clear",        "resize",        "reserve",
      "assign",    "append",       "shrink_to_fit", "rehash"};
  return kOps.count(name) != 0;
}

DeclHead declarator_head(const FileData& f, std::size_t name_idx,
                         std::size_t begin) {
  DeclHead d;
  std::size_t p = name_idx;
  while (p > begin) {
    const std::string& t = f.toks[p - 1].text;
    if (t == "&" || t == "&&") {
      d.is_reference = true;
      --p;
      continue;
    }
    if (t == "*") {
      d.is_pointer = true;
      --p;
      continue;
    }
    if (t == ">" || t == ">>") {
      // Template type: match back to the '<' and take the ident before it.
      int depth = 0;
      std::size_t m = p - 1;
      while (true) {
        const std::string& u = f.toks[m].text;
        if (u == ">") depth += 1;
        else if (u == ">>") depth += 2;
        else if (u == "<") depth -= 1;
        if (depth <= 0) break;
        if (m == begin) return DeclHead{};
        --m;
      }
      if (m >= begin + 1 && tok_ident(f.toks[m - 1]) &&
          !is_keyword(f.toks[m - 1].text)) {
        d.head = f.toks[m - 1].text;
        return d;
      }
      return DeclHead{};
    }
    break;
  }
  static const std::set<std::string> kNotTypes = {
      "const",    "constexpr", "inline",  "static",   "mutable",
      "volatile", "typename",  "extern",  "register", "thread_local",
      "explicit", "virtual",   "friend",  "struct",   "class",
      "enum",     "union",     "noexcept"};
  if (p > begin && tok_ident(f.toks[p - 1])) {
    const std::string& t = f.toks[p - 1].text;
    if (!is_keyword(t) && kNotTypes.count(t) == 0 &&
        t.rfind("IDS_", 0) != 0) {
      d.head = t;
      return d;
    }
  }
  return DeclHead{};
}

std::map<std::string, LocalInfo> collect_locals_typed(const FuncDecl& fn) {
  std::map<std::string, LocalInfo> out;
  if (!fn.has_body()) return out;
  const FileData& f = *fn.file;
  for (auto [sb, se] : statements(f, fn.body_begin, fn.body_end)) {
    bool is_static = false;
    for (std::size_t i = sb; i < se; ++i) {
      if (tok_is(f.toks[i], "static")) {
        is_static = true;
        break;
      }
      if (tok_is(f.toks[i], "=")) break;
    }
    if (is_static) continue;  // referent survives the frame
    for (std::size_t i = sb; i < se; ++i) {
      if (!tok_ident(f.toks[i]) || is_keyword(f.toks[i].text)) continue;
      if (i + 1 < se) {
        // A declared name is followed by an initializer, another
        // declarator, a subscript (arrays), a range-for ':', or the
        // statement end — anything else is expression context.
        const std::string& nx = f.toks[i + 1].text;
        if (nx != "=" && nx != "," && nx != "(" && nx != "{" && nx != "[" &&
            nx != ":") {
          continue;
        }
      }
      DeclHead d = declarator_head(f, i, sb);
      if (d.head.empty()) continue;
      out.emplace(f.toks[i].text,
                  LocalInfo{d.head, d.is_pointer, d.is_reference});
    }
  }
  return out;
}

std::map<std::string, std::string> by_value_params_typed(const FuncDecl& fn) {
  std::map<std::string, std::string> out;
  if (fn.file == nullptr || fn.params_end == kNone ||
      fn.params_end <= fn.params_begin) {
    return out;
  }
  const FileData& f = *fn.file;
  auto flush = [&](std::size_t sb, std::size_t se) {
    // Cut the segment at a top-level '=' (default argument).
    std::size_t cut = se;
    int depth = 0, angle = 0;
    for (std::size_t i = sb; i < se; ++i) {
      const std::string& t = f.toks[i].text;
      if (f.toks[i].kind != Token::Kind::kPunct) continue;
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      else if (t == "<") ++angle;
      else if (t == ">") angle = std::max(0, angle - 1);
      else if (t == ">>") angle = std::max(0, angle - 2);
      else if (t == "=" && depth == 0 && angle == 0) {
        cut = i;
        break;
      }
    }
    std::size_t name_idx = kNone;
    for (std::size_t i = sb; i < cut; ++i) {
      const std::string& t = f.toks[i].text;
      if (t == "&" || t == "&&" || t == "*" || t == "...") return;  // by-ref
      if (tok_ident(f.toks[i]) && !is_keyword(t) &&
          t.rfind("IDS_", 0) != 0) {
        name_idx = i;
      }
    }
    if (name_idx == kNone) return;
    DeclHead d = declarator_head(f, name_idx, sb);
    if (!d.head.empty()) out.emplace(f.toks[name_idx].text, d.head);
  };
  std::size_t seg = fn.params_begin;
  int depth = 0, angle = 0;
  for (std::size_t i = fn.params_begin; i < fn.params_end; ++i) {
    const std::string& t = f.toks[i].text;
    if (f.toks[i].kind != Token::Kind::kPunct) continue;
    if (t == "(" || t == "[" || t == "{") ++depth;
    else if (t == ")" || t == "]" || t == "}") --depth;
    else if (t == "<") ++angle;
    else if (t == ">") angle = std::max(0, angle - 1);
    else if (t == ">>") angle = std::max(0, angle - 2);
    else if (t == "," && depth == 0 && angle == 0) {
      flush(seg, i);
      seg = i + 1;
    }
  }
  flush(seg, fn.params_end);
  return out;
}

InvalidationSummaries compute_invalidation_summaries(const Corpus& corpus,
                                                     const CallGraph& graph) {
  InvalidationSummaries s;

  // Direct facts: annotations first, then body evidence — a reallocating
  // container mutator (or std::move) applied to a member of the receiver.
  for (const FuncDecl& fn : corpus.funcs) {
    const MergedFunc* self = merged_of(corpus, fn);
    if (self == nullptr || self->stable_storage) continue;
    if (s.origins.count(self) != 0) continue;
    if (self->invalidates) {
      s.origins[self] = {"IDS_INVALIDATES", ""};
      continue;
    }
    if (fn.klass.empty() || !fn.has_body()) continue;
    const FileData& f = *fn.file;
    std::set<std::string> frame;
    for (const std::string& p : param_names(fn)) frame.insert(p);
    for (const auto& [n, info] : collect_locals_typed(fn)) frame.insert(n);
    for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
      if (!tok_ident(f.toks[i]) || !tok_is(f.toks[i + 1], "(")) continue;
      const std::string& n = f.toks[i].text;
      if (n == "move") {
        // std::move(member_): the moved-from container's storage is gone.
        std::size_t close = f.partner[i + 1];
        if (close == i + 3 && tok_ident(f.toks[i + 2]) &&
            frame.count(f.toks[i + 2].text) == 0 &&
            !is_keyword(f.toks[i + 2].text)) {
          s.origins[self] = {"std::move(" + f.toks[i + 2].text + ")", ""};
          break;
        }
        continue;
      }
      if (!is_invalidating_container_method(n)) continue;
      if (i == fn.body_begin ||
          (!tok_is(f.toks[i - 1], ".") && !tok_is(f.toks[i - 1], "->"))) {
        continue;
      }
      std::string chain;
      std::string base = member_call_base(f, i, fn.body_begin, &chain);
      if (base.empty()) continue;
      if (base != "this" && frame.count(base) != 0) continue;
      s.origins[self] = {chain + "." + n, ""};
      break;
    }
  }

  // Fixed point over unique call edges, same-class only: a method that
  // calls an invalidating method *of its own class* inherits the fact
  // (FlatTermSet::insert → grow). Cross-class edges stay out — the callee
  // there mutates a different object than the caller's receiver.
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [caller, callees] : graph.out_unique) {
      if (caller->klass.empty() || caller->stable_storage) continue;
      if (s.origins.count(caller) != 0) continue;
      for (const MergedFunc* callee : callees) {
        if (callee->klass != caller->klass) continue;
        auto it = s.origins.find(callee);
        if (it == s.origins.end()) continue;
        s.origins[caller] = {it->second.what, callee->qualified()};
        changed = true;
        break;
      }
    }
  }
  return s;
}

}  // namespace ids::analyzer
