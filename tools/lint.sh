#!/usr/bin/env bash
# Custom lint pass for the IDS tree. Fails (exit 1) on banned patterns:
#
#   1. Naked std::mutex / std::lock_guard / std::condition_variable &co.
#      outside src/common/ — everything else must use the annotated
#      ids::Mutex / ids::MutexLock / ids::CondVar wrappers so Clang's
#      -Wthread-safety analysis covers it.
#   2. #include cycles among repo headers.
#   3. Headers missing #pragma once.
#   4. std::rand / srand / std::random_device / std::mt19937 outside
#      src/common/rng.h — all randomness flows through the deterministic
#      common RNG for reproducibility.
#   5. Node-based hash containers in the engine hot paths (src/core,
#      src/graph).
#   6. Bare assert( in src/ — compiled out under NDEBUG; invariants use
#      IDS_CHECK / IDS_DCHECK (common/check.h), recoverable conditions
#      return a Status. tools/analyzer enforces the same ban with full
#      token fidelity; this regex rule keeps the signal in plain `lint`.
#   7. Raw stdout writes (std::cout / printf / fprintf(stdout) / puts) in
#      src/ — library code reports through IDS_LOG (stderr) or the
#      telemetry exporters; stdout belongs to the examples and tools that
#      own the process. src/telemetry/ is exempt (it renders the export
#      formats); snprintf and fprintf(stderr, ...) are always fine. A
#      deliberate use opts out with a trailing `// lint:allow-stdout`.
#   8. std::this_thread::sleep_for / sleep_until in src/ outside src/sim/ —
#      time in the engine is *modeled* (sim::VirtualClock); a host-side
#      sleep stalls a real thread without advancing modeled time and makes
#      tests wall-clock dependent. Only the simulation layer may pace real
#      time. tools/analyzer's [blocking-under-lock] catches the worst case
#      (sleeping under a mutex) interprocedurally; this regex rule bans the
#      primitive outright.
#   9. Mutable static/global state in src/: `static` locals that are not
#      const/constexpr/atomic/thread_local, and namespace-scope `g_*`
#      globals that are not const/atomic/sync — hidden shared state that
#      defeats the concurrent-serving certificate (`ids-analyzer
#      --certify=concurrent-exec` walks the same territory with token
#      fidelity; this regex rule keeps the signal in plain `lint`).
#      src/telemetry/ and src/common/logging.cpp are exempt (process-wide
#      registries and the log level are global by design); a deliberate
#      use opts out with a trailing `// lint:allow-global`.
#  10. Raw SIMD intrinsics outside src/common/simd.* — #include
#      <immintrin.h> (or the narrower *mmintrin headers) and _mm/_mm256
#      calls. Every kernel goes through the dispatched ids::simd layer so
#      the scalar fallback, the determinism contract, and the
#      IDS_SIMD_LEVEL override stay in one place. A deliberate use opts
#      out with a trailing `// lint:allow-intrinsics`.
#  11. Unknown `lint:allow-*` tags. The opt-out vocabulary is a closed set
#      (stdout, global, unordered, intrinsics, sockets); a typo such as
#      `lint:allow-stdio` suppresses nothing while *looking* audited, so
#      any tag outside the set is itself a finding.
#  12. Raw socket headers in src/ outside src/telemetry/ — #include of
#      <sys/socket.h>, <netinet/*.h> or <arpa/inet.h>. The engine is a
#      library with modeled I/O; the only component that opens real
#      sockets is the observability server, and confining the headers
#      keeps it that way (and keeps every other translation unit portable
#      to socketless sandboxes). A deliberate use opts out with a
#      trailing `// lint:allow-sockets`.
#  13. `mutable` fields in src/graph/ + src/store/ — the stores obey the
#      ingest→freeze→serve contract (IDS_FROZEN_AFTER, DESIGN.md §13),
#      and a mutable member is the lazy-prepare shape that lets "const"
#      read paths mutate after the freeze. Atomic, IDS_GUARDED_BY, and
#      sync-primitive (Mutex/CondVar) members are exempt; a deliberate
#      use opts out
#      with a trailing `// lint:allow-mutable`. tools/analyzer's
#      [phase-discipline] enforces the same ban on annotated fields with
#      token fidelity; this regex rule covers unannotated ones too.
#
# Usage: tools/lint.sh [--root DIR]
#   --root DIR   lint DIR instead of the repository (used by the negative
#                fixture tests under tools/lint_fixtures/).

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
while [ $# -gt 0 ]; do
  case "$1" in
    --root) root="$2"; shift 2 ;;
    *) echo "usage: $0 [--root DIR]" >&2; exit 2 ;;
  esac
done

if [ ! -d "$root" ]; then
  echo "lint: no such directory: $root" >&2
  exit 2
fi
cd "$root" || exit 2

dirs=()
for d in src tests bench examples; do
  [ -d "$d" ] && dirs+=("$d")
done
if [ ${#dirs[@]} -eq 0 ]; then
  echo "lint: no source directories under $root" >&2
  exit 2
fi

list_files() {  # $1 = glob suffix
  find "${dirs[@]}" -type f -name "$1" | LC_ALL=C sort
}

failures=0
fail() {
  echo "lint: $1" >&2
  failures=$((failures + 1))
}

# --- 1. naked standard synchronization primitives outside src/common/ ----
while IFS= read -r f; do
  case "$f" in
    src/common/*) continue ;;
  esac
  hits=$(grep -nE 'std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable)' "$f")
  if [ -n "$hits" ]; then
    fail "naked std synchronization primitive in $f (use ids::Mutex/MutexLock/CondVar from common/thread_annotations.h):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 2. include cycles among repo headers -------------------------------
# Build the quoted-include edge list (repo-relative resolution: includes
# are rooted at src/, matching the -I layout) and feed it to tsort, which
# reports "input contains a loop" on a cycle.
edges=$(mktemp)
while IFS= read -r f; do
  while IFS= read -r inc; do
    target=""
    if [ -f "src/$inc" ]; then
      target="src/$inc"
    elif [ -f "$(dirname "$f")/$inc" ]; then
      target="$(dirname "$f")/$inc"
    fi
    # Skip system/library includes and self-includes.
    [ -n "$target" ] && [ "$target" != "$f" ] && echo "$f $target"
  done < <(sed -n 's/^[[:space:]]*#[[:space:]]*include[[:space:]]*"\([^"]*\)".*/\1/p' "$f")
done < <(list_files '*.h') > "$edges"
cycle_report=$(tsort "$edges" 2>&1 >/dev/null)
if echo "$cycle_report" | grep -q 'loop'; then
  fail "#include cycle detected among headers:
$(echo "$cycle_report" | sed 's/^tsort: //')"
fi
rm -f "$edges"

# --- 3. headers missing #pragma once ------------------------------------
while IFS= read -r f; do
  if ! head -5 "$f" | grep -q '^#pragma once'; then
    fail "missing '#pragma once' in $f"
  fi
done < <(list_files '*.h')

# --- 4. raw C/unseeded randomness outside src/common/rng.h --------------
while IFS= read -r f; do
  [ "$f" = "src/common/rng.h" ] && continue
  hits=$(grep -nE 'std::rand\b|[^_[:alnum:]]s?rand\(|std::random_device|std::mt19937|std::default_random_engine' "$f")
  if [ -n "$hits" ]; then
    fail "raw RNG use in $f (use ids::Rng from common/rng.h):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 5. node-based hash containers in engine hot paths ------------------
# src/core/ and src/graph/ hold the query-operator inner loops; per-node
# allocating std::unordered_{map,multimap} were deliberately evicted in
# favor of the flat containers in common/flat_map.h. Cold-path uses
# (per-query config tables, build-time interning) opt out with a trailing
# `// lint:allow-unordered` comment on the offending line.
while IFS= read -r f; do
  case "$f" in
    src/core/*|src/graph/*) ;;
    *) continue ;;
  esac
  hits=$(grep -nE 'std::unordered_(multi)?map' "$f" | grep -v 'lint:allow-unordered')
  if [ -n "$hits" ]; then
    fail "node-based hash container in hot path $f (use FlatGroupIndex/FlatTermSet from common/flat_map.h, or mark a cold-path use with // lint:allow-unordered):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 6. bare assert( in src/ --------------------------------------------
# Comment-stripped so prose mentioning assert() (e.g. in common/check.h)
# does not trip the rule; static_assert survives the word boundary.
while IFS= read -r f; do
  case "$f" in
    src/*) ;;
    *) continue ;;
  esac
  hits=$(sed 's|//.*||' "$f" | grep -nE '(^|[^_[:alnum:]])assert[[:space:]]*\(')
  if [ -n "$hits" ]; then
    fail "bare assert in $f (use IDS_CHECK/IDS_DCHECK from common/check.h, or return a Status for recoverable conditions):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 7. raw stdout writes in src/ ---------------------------------------
# Library code must not claim the process's stdout: logs go to stderr via
# IDS_LOG, structured data goes through the telemetry exporters (which
# return strings). snprintf/fprintf(stderr) never match; whole-line
# comments are skipped; `// lint:allow-stdout` opts a line out.
while IFS= read -r f; do
  case "$f" in
    src/telemetry/*) continue ;;
    src/*) ;;
    *) continue ;;
  esac
  hits=$(grep -nE 'std::cout|(^|[^_[:alnum:]])printf[[:space:]]*\(|fprintf[[:space:]]*\([[:space:]]*stdout|(^|[^_[:alnum:]])puts[[:space:]]*\(' "$f" \
           | grep -v 'lint:allow-stdout' \
           | grep -vE '^[0-9]+:[[:space:]]*//')
  if [ -n "$hits" ]; then
    fail "raw stdout write in $f (log via IDS_LOG, return strings from exporters, or mark a deliberate use with // lint:allow-stdout):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 8. host-side sleeps in src/ outside src/sim/ -----------------------
# Modeled code advances sim::VirtualClock; it never stalls the host. The
# simulation layer itself may pace real time (e.g. when bridging to a
# live process) and is exempt.
while IFS= read -r f; do
  case "$f" in
    src/sim/*) continue ;;
    src/*) ;;
    *) continue ;;
  esac
  hits=$(grep -nE 'std::this_thread::sleep_(for|until)' "$f")
  if [ -n "$hits" ]; then
    fail "host-side sleep in $f (advance the sim::VirtualClock instead; only src/sim/ may pace real time):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 9. mutable static/global state in src/ -----------------------------
# Two shapes: (a) `static` declarations that are neither immutable
# (const/constexpr), synchronized (atomic/Mutex/CondVar), nor per-thread
# (thread_local) — lines with '(' are skipped, which screens out static
# member-function declarations and statics initialized from calls (the
# analyzer's [shared-state] certificate classifies those with full token
# fidelity); (b) declarations of g_-prefixed namespace-scope globals (the
# repo's naming convention for them) lacking the same protections.
while IFS= read -r f; do
  case "$f" in
    src/telemetry/*|src/common/logging.cpp) continue ;;
    src/*) ;;
    *) continue ;;
  esac
  # Blank out opted-out lines wholesale, then strip //-comment tails, so
  # neither prose mentioning "static" nor the escape marker itself match.
  hits=$(sed -e '/lint:allow-global/s/.*//' -e 's|//.*||' "$f" \
           | grep -nE '(^|[[:space:]])static[[:space:]]' \
           | grep -vE 'const|constexpr|atomic|thread_local|Mutex|CondVar|\(')
  if [ -n "$hits" ]; then
    fail "mutable static state in $f (make it const/atomic, guard it, or mark a deliberate use with // lint:allow-global):
$hits"
  fi
  hits=$(sed -e '/lint:allow-global/s/.*//' -e 's|//.*||' "$f" \
           | grep -nE '^[A-Za-z_][A-Za-z0-9_:<>,&* ]*[[:space:]]g_[a-z0-9_]+[[:space:]]*[={;]' \
           | grep -vE 'const|atomic|Mutex|CondVar' \
           | grep -vE '^[0-9]+:[[:space:]]*(return|if|while|for|case|delete|throw)\b')
  if [ -n "$hits" ]; then
    fail "mutable namespace-scope global in $f (make it const/atomic/internally synchronized, or mark a deliberate use with // lint:allow-global):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 10. raw SIMD intrinsics outside src/common/simd.* ------------------
# The dispatch layer is the only place intrinsics may live: everything
# else calls ids::simd, which owns the scalar fallback and the
# cross-level determinism contract. Matches the umbrella and per-ISA
# intrinsic headers plus _mm*/_mm256*/_mm512* calls; comment tails are
# stripped so prose about intrinsics stays legal.
while IFS= read -r f; do
  case "$f" in
    src/common/simd.h|src/common/simd.cpp) continue ;;
  esac
  hits=$(sed -e '/lint:allow-intrinsics/s/.*//' -e 's|//.*||' "$f" \
           | grep -nE '#[[:space:]]*include[[:space:]]*<(immintrin|[a-z]{3}mmintrin|avxintrin|avx2intrin)\.h>|(^|[^_[:alnum:]])_mm(256|512)?_[a-z0-9_]+[[:space:]]*\(')
  if [ -n "$hits" ]; then
    fail "raw SIMD intrinsics in $f (route through ids::simd in common/simd.h, or mark a deliberate use with // lint:allow-intrinsics):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 11. unknown lint:allow-* escape tags -------------------------------
# Rules 5/7/9/10/12/13 honor exactly six tags. Anything else — a typo, or
# a tag invented for a rule that does not read it — would ride along in
# review looking like an audited waiver while suppressing nothing. Closed
# set, enforced here.
while IFS= read -r f; do
  hits=$(grep -noE 'lint:allow-[a-z0-9-]+' "$f" \
           | grep -vE 'lint:allow-(stdout|global|unordered|intrinsics|sockets|mutable)$')
  if [ -n "$hits" ]; then
    fail "unknown lint:allow-* tag in $f (known tags: stdout, global, unordered, intrinsics, sockets, mutable):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 12. raw socket headers in src/ outside src/telemetry/ --------------
# The observability server (src/telemetry/obs_server.cpp) is the single
# place the process touches BSD sockets; everything else models its I/O,
# so a socket include anywhere else is an architecture leak. Comment
# tails are stripped so prose about sockets stays legal.
while IFS= read -r f; do
  case "$f" in
    src/telemetry/*) continue ;;
    src/*) ;;
    *) continue ;;
  esac
  hits=$(sed -e '/lint:allow-sockets/s/.*//' -e 's|//.*||' "$f" \
           | grep -nE '#[[:space:]]*include[[:space:]]*<(sys/socket\.h|netinet/[a-z0-9_]+\.h|arpa/inet\.h)>')
  if [ -n "$hits" ]; then
    fail "raw socket header in $f (real sockets live in src/telemetry/ only; mark a deliberate use with // lint:allow-sockets):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

# --- 13. mutable fields in the frozen stores ----------------------------
# src/graph/ and src/store/ hold the IDS_FROZEN_AFTER stores: after
# freeze() their state is immutable and concurrently readable, and a
# `mutable` member is exactly the lazy-prepare backdoor that breaks the
# contract from a const read path. Synchronized members (atomic or
# IDS_GUARDED_BY) are exempt; comment tails are stripped so prose about
# mutability stays legal; `// lint:allow-mutable` opts a line out.
while IFS= read -r f; do
  case "$f" in
    src/graph/*|src/store/*) ;;
    *) continue ;;
  esac
  hits=$(sed -e '/lint:allow-mutable/s/.*//' -e 's|//.*||' "$f" \
           | grep -nE '(^|[[:space:]])mutable[[:space:]]' \
           | grep -vE 'atomic|IDS_GUARDED_BY|Mutex|CondVar')
  if [ -n "$hits" ]; then
    fail "mutable field in frozen store $f (prepare eagerly in freeze(), make it atomic/IDS_GUARDED_BY, or mark a deliberate use with // lint:allow-mutable):
$hits"
  fi
done < <(list_files '*.h'; list_files '*.cpp')

if [ "$failures" -gt 0 ]; then
  echo "lint: $failures finding(s)" >&2
  exit 1
fi
echo "lint: OK (${#dirs[@]} directories clean)"
exit 0
