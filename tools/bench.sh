#!/usr/bin/env bash
# Runs the kernel microbenchmarks (google-benchmark) and writes the JSON
# report to BENCH_kernels.json at the repository root — the perf trajectory
# data referenced by ROADMAP.md. Numbers are only meaningful from a Release
# build, so the script refuses any other build type unless --allow-debug is
# given (smoke runs in CI use it); the binary itself stamps the build type
# and the active SIMD dispatch level into the JSON context, so a recording's
# provenance is auditable after the fact.
#
# Usage: tools/bench.sh [--smoke] [--allow-debug] [--build-dir DIR]
#                       [--out FILE] [--filter RE]
#   --smoke       cap per-benchmark min time at 0.01s (CI smoke signal: the
#                 harness runs end to end and emits valid JSON; timings are
#                 noisy and must not be checked in)
#   --allow-debug run even when the build dir is not CMAKE_BUILD_TYPE=Release
#                 (the stamped context still records the real build type)
#   --build-dir   Release build directory (default: build-release)
#   --out         output path (default: <repo>/BENCH_kernels.json)
#   --filter      benchmark regex (default: all)

set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo/build-release"
out="$repo/BENCH_kernels.json"
min_time=0.1
filter='.*'
allow_debug=0

while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) min_time=0.01; shift ;;
    --allow-debug) allow_debug=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    --filter) filter="$2"; shift 2 ;;
    *) echo "usage: $0 [--smoke] [--allow-debug] [--build-dir DIR] [--out FILE] [--filter RE]" >&2
       exit 2 ;;
  esac
done

if [ ! -x "$build_dir/bench/bench_kernels" ]; then
  echo "==> configuring Release build in $build_dir"
  cmake -S "$repo" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
fi

# Provenance gate: recordings from non-Release builds are noise, not data.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt" 2>/dev/null || true)"
if [ "$build_type" != "Release" ] && [ "$allow_debug" -ne 1 ]; then
  echo "error: $build_dir is CMAKE_BUILD_TYPE='${build_type:-<unset>}', not Release." >&2
  echo "       Benchmark recordings must come from a Release build; pass" >&2
  echo "       --allow-debug to run anyway (e.g. for a CI smoke check)." >&2
  exit 1
fi

echo "==> building bench_kernels"
cmake --build "$build_dir" --target bench_kernels -j "$(nproc 2>/dev/null || echo 2)"

echo "==> running benchmarks (min_time=${min_time}s, filter=$filter)"
"$build_dir/bench/bench_kernels" \
  --benchmark_filter="$filter" \
  --benchmark_min_time="$min_time" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json

echo "==> wrote $out (build_type=$build_type)"

# Telemetry-overhead gate: the observability plane (ProfileScope on the
# cache hot path + the 97 Hz sampler) must cost <5% on the instrumented
# loop. Compares BM_TelemetryOverhead/1 (profiler on) against /0 (off)
# from the recording just made; skipped when the filter excluded them.
if command -v python3 > /dev/null 2>&1; then
  python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
times = {}
for b in doc.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    name = b.get("name", "")
    if name.startswith("BM_TelemetryOverhead/"):
        times[name.rsplit("/", 1)[1]] = float(b["real_time"])
if "0" in times and "1" in times:
    ratio = times["1"] / times["0"]
    budget = 1.05
    assert ratio <= budget, (
        "telemetry overhead %.1f%% exceeds the 5%% budget "
        "(off %.1fns, on %.1fns)"
        % ((ratio - 1.0) * 100.0, times["0"], times["1"]))
    print("telemetry overhead %+.2f%% (budget +5%%)" % ((ratio - 1.0) * 100.0))
else:
    print("telemetry overhead gate skipped (BM_TelemetryOverhead not in run)")
EOF
fi
