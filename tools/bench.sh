#!/usr/bin/env bash
# Runs the kernel microbenchmarks (google-benchmark) and writes the JSON
# report to BENCH_kernels.json at the repository root — the perf trajectory
# data referenced by ROADMAP.md. Numbers are only meaningful from a Release
# build; the script configures/builds one itself if needed.
#
# Usage: tools/bench.sh [--smoke] [--build-dir DIR] [--out FILE] [--filter RE]
#   --smoke       cap per-benchmark min time at 0.01s (CI smoke signal: the
#                 harness runs end to end and emits valid JSON; timings are
#                 noisy and must not be checked in)
#   --build-dir   Release build directory (default: build-release)
#   --out         output path (default: <repo>/BENCH_kernels.json)
#   --filter      benchmark regex (default: all)

set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo/build-release"
out="$repo/BENCH_kernels.json"
min_time=0.1
filter='.*'

while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) min_time=0.01; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    --filter) filter="$2"; shift 2 ;;
    *) echo "usage: $0 [--smoke] [--build-dir DIR] [--out FILE] [--filter RE]" >&2
       exit 2 ;;
  esac
done

if [ ! -x "$build_dir/bench/bench_kernels" ]; then
  echo "==> configuring Release build in $build_dir"
  cmake -S "$repo" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
fi
echo "==> building bench_kernels"
cmake --build "$build_dir" --target bench_kernels -j "$(nproc 2>/dev/null || echo 2)"

echo "==> running benchmarks (min_time=${min_time}s, filter=$filter)"
"$build_dir/bench/bench_kernels" \
  --benchmark_filter="$filter" \
  --benchmark_min_time="$min_time" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json

echo "==> wrote $out"
