#include "datagen/lifesci.h"

#include <algorithm>
#include <cstdio>

#include "models/dtba.h"
#include "models/molgen.h"
#include "models/smith_waterman.h"

namespace ids::datagen {

namespace {

/// Background amino-acid frequencies (approximate UniProt composition).
const std::vector<double>& residue_weights() {
  // Order matches models::kAminoAcids = "ARNDCQEGHILKMFPSTWYV".
  static const std::vector<double> w = {
      8.3, 5.5, 4.1, 5.5, 1.4, 3.9, 6.7, 7.1, 2.3, 5.9,
      9.7, 5.8, 2.4, 3.9, 4.7, 6.6, 5.4, 1.1, 2.9, 6.9,
  };
  return w;
}

std::string protein_iri(int family, int member) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "uniprot:F%02dP%03d", family, member);
  return buf;
}

std::string compound_iri(int family, int idx) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "chembl:CPD-F%02d-%03d", family, idx);
  return buf;
}

}  // namespace

std::string random_protein_sequence(Rng& rng, int length) {
  std::string s;
  s.reserve(static_cast<std::size_t>(length));
  const auto& w = residue_weights();
  for (int i = 0; i < length; ++i) {
    s += models::kAminoAcids[rng.pick_weighted(w)];
  }
  return s;
}

std::string mutate_sequence(Rng& rng, const std::string& base, double sub_rate,
                            double indel_rate) {
  std::string out;
  out.reserve(base.size() + 8);
  const auto& w = residue_weights();
  for (char c : base) {
    if (rng.bernoulli(indel_rate * 0.5)) continue;  // deletion
    if (rng.bernoulli(sub_rate)) {
      out += models::kAminoAcids[rng.pick_weighted(w)];
    } else {
      out += c;
    }
    if (rng.bernoulli(indel_rate * 0.5)) {  // insertion
      out += models::kAminoAcids[rng.pick_weighted(w)];
    }
  }
  if (out.empty()) out = base.substr(0, 1);
  return out;
}

LifeSciDataset generate_lifesci(const LifeSciConfig& config,
                                graph::TripleStore* triples,
                                store::FeatureStore* features,
                                store::InvertedIndex* keywords,
                                store::VectorStore* vectors) {
  LifeSciDataset ds;
  Rng rng(config.seed);
  auto& dict = triples->dict();

  // --- Family ancestor sequences -----------------------------------------
  // Family 0 is the target clade; families 1..num_related_families are
  // progressively diverged copies of its ancestor; the rest are fresh
  // background sequences.
  std::vector<std::string> ancestors;
  ancestors.reserve(static_cast<std::size_t>(config.num_families));
  for (int f = 0; f < config.num_families; ++f) {
    int len = config.seq_len_mean +
              static_cast<int>(rng.uniform_int(-config.seq_len_jitter,
                                               config.seq_len_jitter));
    len = std::max(40, len);
    if (f == 0) {
      ancestors.push_back(random_protein_sequence(rng, len));
    } else if (f <= config.num_related_families) {
      // Divergence ladder across the related families puts their SW
      // similarity in the band the Table 2 threshold sweep walks through.
      double div;
      if (!config.related_divergences.empty()) {
        div = config.related_divergences.at(static_cast<std::size_t>(f - 1));
      } else {
        div = config.related_div_min +
              (config.related_div_max - config.related_div_min) *
                  static_cast<double>(f - 1) /
                  std::max(1, config.num_related_families - 1);
      }
      ancestors.push_back(mutate_sequence(rng, ancestors[0], div, 0.02));
    } else {
      ancestors.push_back(random_protein_sequence(rng, len));
    }
  }

  models::DtbaModel dtba;  // reused for protein embeddings

  // --- Proteins ------------------------------------------------------------
  for (int f = 0; f < config.num_families; ++f) {
    std::string family_iri = "bio:family/" + std::to_string(f);
    for (int m = 0; m < config.proteins_per_family; ++m) {
      bool is_target = (f == 0 && m == 0);
      std::string iri =
          is_target ? std::string(Vocab::kTargetProtein) : protein_iri(f, m);
      graph::TermId id = dict.intern(iri);
      ds.proteins.push_back(id);
      ds.protein_family.push_back(f);
      if (is_target) ds.target_protein = id;

      // Members diverge only mildly from their family ancestor, so
      // within-family similarity stays near 1 and the family band is tight.
      std::string seq =
          (is_target) ? ancestors[0]
                      : mutate_sequence(rng,
                                        ancestors[static_cast<std::size_t>(f)],
                                        config.member_sub_rate,
                                        config.member_indel_rate);

      bool reviewed = rng.bernoulli(config.reviewed_fraction);
      triples->add(iri, Vocab::kType, Vocab::kProtein);
      triples->add(iri, Vocab::kReviewed,
                   reviewed ? Vocab::kTrue : Vocab::kFalse);
      triples->add(iri, Vocab::kInFamily, family_iri);
      ds.triples += 3;

      features->set(id, Feat::kSequence, seq);
      features->set(id, Feat::kLength,
                    static_cast<std::int64_t>(seq.size()));

      if (keywords && config.build_keyword_index) {
        std::string doc = "protein family " + std::to_string(f) +
                          (reviewed ? " reviewed" : " unreviewed") +
                          (f == 0 ? " receptor adenosine target clade"
                                  : " enzyme transferase");
        keywords->add_document(id, doc);
      }
      if (vectors && config.build_vector_store) {
        auto emb = models::DtbaModel::protein_features(seq);
        vectors->add(id, emb);
      }
    }
  }

  // --- Compounds -------------------------------------------------------------
  // Each family gets a pool of compounds inhibiting its members; a few
  // cross-family edges mirror promiscuous binders.
  const int ppf = config.proteins_per_family;
  for (int f = 0; f < config.num_families; ++f) {
    models::MolGenParams gen_params;
    gen_params.min_atoms = f == 0 ? config.target_min_atoms
                                  : config.offfamily_min_atoms;
    gen_params.max_atoms = f == 0 ? config.target_max_atoms
                                  : config.offfamily_max_atoms;
    for (int c = 0; c < config.compounds_per_family; ++c) {
      std::string iri = compound_iri(f, c);
      graph::TermId id = dict.intern(iri);
      ds.compounds.push_back(id);

      std::string smiles = models::generate_smiles(rng, gen_params);
      // Log-uniform IC50 between 1 nM and 100 uM.
      double ic50 = std::pow(10.0, rng.uniform(0.0, 5.0));

      triples->add(iri, Vocab::kType, Vocab::kCompound);
      ds.triples += 1;
      features->set(id, Feat::kSmiles, smiles);
      features->set(id, Feat::kIc50Nm, ic50);

      // Inhibit 1-3 proteins of the home family.
      int n_edges = 1 + static_cast<int>(rng.next_below(3));
      for (int e = 0; e < n_edges; ++e) {
        int m = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ppf)));
        std::size_t pidx = static_cast<std::size_t>(f * ppf + m);
        triples->add_ids({id, dict.intern(Vocab::kInhibits),
                          ds.proteins[pidx]});
        ds.triples += 1;
      }
      // Occasional cross-family edge.
      if (rng.bernoulli(config.cross_family_edges * 0.2)) {
        std::size_t pidx = rng.next_below(ds.proteins.size());
        triples->add_ids({id, dict.intern(Vocab::kInhibits),
                          ds.proteins[pidx]});
        ds.triples += 1;
      }

      if (keywords && config.build_keyword_index) {
        keywords->add_document(id, "compound inhibitor family " +
                                       std::to_string(f) + " " + smiles);
      }
    }
  }

  return ds;
}

}  // namespace ids::datagen
