#include "datagen/sources.h"

#include <cstdio>

#include "common/rng.h"
#include "telemetry/trace.h"

namespace ids::datagen {

const std::vector<SourceSpec>& paper_sources() {
  static const std::vector<SourceSpec> kSources = {
      {"UniProt", 12700ull * 1000 * 1000 * 1000, 87600ull * 1000 * 1000},
      {"ChEMBL-RDF", 81ull * 1000 * 1000 * 1000, 539ull * 1000 * 1000},
      {"Bio2RDF", 2400ull * 1000 * 1000 * 1000, 11500ull * 1000 * 1000},
      {"OrthoDB", 275ull * 1000 * 1000 * 1000, 2200ull * 1000 * 1000},
      {"Biomodels", 5200ull * 1000 * 1000, 28ull * 1000 * 1000},
      {"Biosamples", 112800ull * 1000 * 1000, 1100ull * 1000 * 1000},
      {"Reactome", 3200ull * 1000 * 1000, 19ull * 1000 * 1000},
  };
  return kSources;
}

SourceStats generate_source(graph::TripleStore* store, const SourceSpec& spec,
                            std::uint64_t scale_divisor, std::uint64_t seed) {
  SourceStats stats;
  stats.name = spec.name;
  const std::uint64_t n = std::max<std::uint64_t>(
      1, spec.paper_triples / std::max<std::uint64_t>(1, scale_divisor));
  // Literal padding reproduces the source's bytes-per-triple ratio (IRIs
  // account for ~40 bytes of it).
  const std::uint64_t bytes_per_triple =
      spec.paper_raw_bytes / std::max<std::uint64_t>(1, spec.paper_triples);
  const std::uint64_t pad =
      bytes_per_triple > 40 ? bytes_per_triple - 40 : 0;

  Rng rng(seed);
  auto& dict = store->dict();
  // A small predicate vocabulary per source, like real RDF dumps.
  std::vector<graph::TermId> preds;
  for (int p = 0; p < 12; ++p) {
    preds.push_back(dict.intern(spec.name + ":pred/" + std::to_string(p)));
  }

  // Host-side ingest duration (Table 1), read through the telemetry
  // layer's single wall-clock chokepoint — never a raw clock in
  // modeled code (see DESIGN.md §8, [wallclock-in-engine]).
  const std::uint64_t t0 = telemetry::Tracer::wall_now_ns();
  std::string subject, object;
  // Entities are reused ~8x so the graph has realistic fan-out.
  const std::uint64_t n_entities = std::max<std::uint64_t>(1, n / 8);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t s_idx = rng.next_below(n_entities);
    subject = spec.name + ":e/" + std::to_string(s_idx);
    if (rng.bernoulli(0.5)) {
      // Literal-valued triple (carries the padding bytes).
      object = "\"v" + std::to_string(rng.next_u64() & 0xffff) +
               std::string(static_cast<std::size_t>(pad), 'x') + "\"";
    } else {
      object = spec.name + ":e/" + std::to_string(rng.next_below(n_entities));
    }
    graph::TermId sid = dict.intern(subject);
    graph::TermId oid = dict.intern(object);
    store->add_ids({sid, preds[rng.next_below(preds.size())], oid});
    stats.raw_bytes_generated += subject.size() + object.size() + 20;
    ++stats.triples_generated;
  }
  stats.ingest_seconds =
      static_cast<double>(telemetry::Tracer::wall_now_ns() - t0) / 1e9;
  return stats;
}

}  // namespace ids::datagen
