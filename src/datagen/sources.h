#pragma once

// Table 1 dataset sources, scaled down.
//
// The paper's knowledge graph integrates seven public RDF sources (Table
// 1: UniProt 12.7 TB / 87.6 B triples ... Reactome 3.2 GB / 19 M). We
// cannot host 100 B facts in a container, so each source is regenerated at
// a configurable scale divisor with synthetic triples whose string sizes
// approximate the source's bytes-per-triple ratio. bench_table1_ingest
// replays Table 1 from these specs and reports both the paper-scale
// figures and the generated (scaled) measurements.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/triple_store.h"

namespace ids::datagen {

struct SourceSpec {
  std::string name;
  std::uint64_t paper_raw_bytes;  // "Raw Size (disk)" in Table 1
  std::uint64_t paper_triples;    // "Size (triples)" in Table 1
};

/// The seven rows of Table 1.
const std::vector<SourceSpec>& paper_sources();

struct SourceStats {
  std::string name;
  std::uint64_t triples_generated = 0;
  std::uint64_t raw_bytes_generated = 0;  // total IRI/literal bytes emitted
  double ingest_seconds = 0.0;            // wall-clock generation+insert time
};

/// Generates `spec.paper_triples / scale_divisor` synthetic triples into
/// the store, matching the source's bytes-per-triple ratio. Deterministic
/// in `seed`.
SourceStats generate_source(graph::TripleStore* store, const SourceSpec& spec,
                            std::uint64_t scale_divisor, std::uint64_t seed);

}  // namespace ids::datagen
