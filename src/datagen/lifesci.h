#pragma once

// Synthetic life-sciences knowledge graph generator.
//
// Substitution note (DESIGN.md): the paper's NCNPR workflow runs on a
// >100-billion-fact graph integrating UniProt, ChEMBL, Bio2RDF, etc. This
// generator builds a scaled-down graph with the same *shape*:
//
//   - proteins organized in families, each with a Markov-chain ancestor
//     sequence and mutated members, so Smith-Waterman similarity to the
//     target protein is high within the target family, moderate for a few
//     "related" clades, and background-level elsewhere. This is what makes
//     the paper's SW-threshold sweep (Table 2: 0.99 -> 0.20 admits 56 ->
//     1129 compounds) reproducible: lowering the threshold sweeps in the
//     related clades, then the long tail.
//   - compounds with SMILES strings and IC50 assay values, linked to the
//     proteins they inhibit (denser within their home clade).
//   - a designated target protein, the stand-in for UniProt P29274
//     (adenosine receptor A2a).
//
// Everything lands in the caller's TripleStore + FeatureStore (and
// optionally the keyword and vector stores) under stable vocabulary IRIs.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/triple_store.h"
#include "store/feature_store.h"
#include "store/inverted_index.h"
#include "store/vector_store.h"

namespace ids::datagen {

/// Vocabulary IRIs used by the generated graph.
struct Vocab {
  static constexpr const char* kType = "rdf:type";
  static constexpr const char* kProtein = "bio:Protein";
  static constexpr const char* kCompound = "bio:Compound";
  static constexpr const char* kReviewed = "up:reviewed";
  static constexpr const char* kTrue = "\"true\"";
  static constexpr const char* kFalse = "\"false\"";
  static constexpr const char* kInFamily = "bio:inFamily";
  static constexpr const char* kInhibits = "chembl:inhibits";
  static constexpr const char* kTargetProtein = "uniprot:P29274";
};

/// Feature names attached to entities.
struct Feat {
  static constexpr const char* kSequence = "sequence";
  static constexpr const char* kLength = "length";
  static constexpr const char* kSmiles = "smiles";
  static constexpr const char* kIc50Nm = "ic50_nm";
};

struct LifeSciConfig {
  int num_families = 24;
  int proteins_per_family = 20;
  /// Families 1..num_related_families are moderately diverged from the
  /// target family's ancestor (SW similarity ~0.25-0.5 to the target);
  /// the rest are unrelated background.
  int num_related_families = 5;
  int compounds_per_family = 30;
  int seq_len_mean = 320;
  int seq_len_jitter = 60;
  /// Within-family member divergence from the ancestor (substitution
  /// rate). Kept tight so the target family's SW similarity plateaus above
  /// the paper's 0.99 threshold (Table 2 is flat from 0.99 to 0.5).
  double member_sub_rate = 0.0015;
  double member_indel_rate = 0.0005;
  /// Divergence ladder of the related families: family 1 diverges by
  /// `related_div_min`, the last related family by `related_div_max`,
  /// linearly in between. ~0.42 maps to SW similarity ~0.45 and ~0.65 to
  /// ~0.22, spanning the band the Table 2 sweep walks through.
  double related_div_min = 0.42;
  double related_div_max = 0.62;
  /// Explicit per-related-family divergences (overrides the linear ladder
  /// when non-empty; size must equal num_related_families). Lets benches
  /// position families precisely around the Table 2 thresholds.
  std::vector<double> related_divergences;
  double reviewed_fraction = 0.75;
  /// Ligand size bands (atoms). Target-family compounds are drug-like;
  /// the off-family band can be widened so diverse compounds admitted at
  /// low SW thresholds are bigger and dock proportionally slower — the
  /// mechanism behind Table 2's superlinear uncached growth.
  int target_min_atoms = 18;
  int target_max_atoms = 26;
  int offfamily_min_atoms = 18;
  int offfamily_max_atoms = 26;
  /// Extra inhibitor edges from a compound to proteins outside its family.
  double cross_family_edges = 0.6;
  std::uint64_t seed = 42;
  bool build_keyword_index = true;
  bool build_vector_store = true;  // protein embeddings (DTBA features)
};

struct LifeSciDataset {
  graph::TermId target_protein = graph::kInvalidTerm;
  std::vector<graph::TermId> proteins;
  std::vector<graph::TermId> compounds;
  std::vector<int> protein_family;   // parallel to proteins
  std::size_t triples = 0;
};

/// Generates the dataset into the provided stores. `vectors` (if used)
/// must have dim == DtbaModel::kProteinDims. Call triples->finalize(),
/// features->freeze(), and keywords->freeze() afterwards — the generator
/// leaves every store in the ingest phase so callers can add their own
/// facts first; queries require frozen stores.
LifeSciDataset generate_lifesci(const LifeSciConfig& config,
                                graph::TripleStore* triples,
                                store::FeatureStore* features,
                                store::InvertedIndex* keywords = nullptr,
                                store::VectorStore* vectors = nullptr);

/// Generates one protein-like sequence from the background Markov chain.
std::string random_protein_sequence(Rng& rng, int length);

/// Mutates a sequence: each residue substituted with probability
/// `sub_rate`, with occasional short indels at `indel_rate`.
std::string mutate_sequence(Rng& rng, const std::string& base, double sub_rate,
                            double indel_rate);

}  // namespace ids::datagen
