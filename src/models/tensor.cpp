#include "models/tensor.h"

#include "common/check.h"
namespace ids::models {

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (auto& x : m.data_) {
    x = static_cast<float>(rng.uniform(-bound, bound));
  }
  return m;
}

std::vector<float> Matrix::matvec(std::span<const float> x) const {
  IDS_CHECK(x.size() == cols_);
  std::vector<float> y(rows_, 0.0f);
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* w = data_.data() + r * cols_;
    float acc = 0.0f;
    for (std::size_t c = 0; c < cols_; ++c) acc += w[c] * x[c];
    y[r] = acc;
  }
  return y;
}

void l2_normalize(std::vector<float>& v) {
  float n = 0.0f;
  for (float x : v) n += x * x;
  if (n <= 0.0f) return;
  n = std::sqrt(n);
  for (float& x : v) x /= n;
}

}  // namespace ids::models
