#pragma once

// Toy generative molecule model (the MolGAN stand-in).
//
// Substitution note (DESIGN.md): the paper lists MolGAN among the AI
// models IDS integrates for "what-could-be" queries. This generator emits
// syntactically simple SMILES-like strings from a seeded grammar walk,
// optionally conditioned on a target molecular weight — enough to drive
// the generative leg of the example workflows (generate, then screen with
// DTBA + docking).

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ids::models {

struct MolGenParams {
  // Default size band keeps synthetic ligands in the drug-like range whose
  // docking cost lands in the paper's 31-44 s/compound envelope.
  int min_atoms = 14;
  int max_atoms = 30;
  double hetero_prob = 0.3;   // chance of a non-carbon atom
  double branch_prob = 0.12;  // chance of opening a branch
  double ring_prob = 0.08;    // chance of a ring digit pair
  /// When > 0, rejection-sample until molecular weight is within 20% of
  /// the target (bounded retries).
  double target_weight = 0.0;
};

/// Generates one SMILES-like string. Deterministic in the RNG state.
std::string generate_smiles(Rng& rng, const MolGenParams& params = {});

/// Generates a library of n distinct molecules, deterministic in `seed`.
std::vector<std::string> generate_library(std::size_t n, std::uint64_t seed,
                                          const MolGenParams& params = {});

}  // namespace ids::models
