#pragma once

// Minimal dense tensor kernels for the DTBA network.
//
// Just enough linear algebra for a deterministic MLP forward pass: a
// row-major matrix with seeded Xavier-style init, matrix-vector products,
// and elementwise activations. No autograd — the model is "pre-trained"
// (fixed seeded weights; see dtba.h).

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace ids::models {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Xavier-uniform initialized matrix, deterministic in `seed`.
  static Matrix xavier(std::size_t rows, std::size_t cols, std::uint64_t seed);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = W x (rows() outputs from cols() inputs).
  std::vector<float> matvec(std::span<const float> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

inline void relu_inplace(std::vector<float>& v) {
  for (float& x : v) x = x > 0.0f ? x : 0.0f;
}

inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// v /= ||v||_2 (no-op on the zero vector).
void l2_normalize(std::vector<float>& v);

}  // namespace ids::models
