#include "models/smith_waterman.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/simd.h"

namespace ids::models {

namespace {

// BLOSUM62 over ARNDCQEGHILKMFPSTWYV (standard published matrix).
constexpr int kB62[20][20] = {
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    {  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0},  // A
    { -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3},  // R
    { -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3},  // N
    { -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3},  // D
    {  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},  // C
    { -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2},  // Q
    { -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2},  // E
    {  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3},  // G
    { -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3},  // H
    { -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3},  // I
    { -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1},  // L
    { -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2},  // K
    { -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1},  // M
    { -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1},  // F
    { -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2},  // P
    {  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2},  // S
    {  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0},  // T
    { -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3},  // W
    { -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -2},  // Y
    {  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -2,  4},  // V
};

constexpr std::array<int, 256> build_residue_table() {
  std::array<int, 256> t{};
  for (auto& v : t) v = -1;
  for (std::size_t i = 0; i < kAminoAcids.size(); ++i) {
    t[static_cast<unsigned char>(kAminoAcids[i])] = static_cast<int>(i);
    // Lowercase letters map too.
    t[static_cast<unsigned char>(kAminoAcids[i] + 32)] = static_cast<int>(i);
  }
  return t;
}

constexpr std::array<int, 256> kResidueTable = build_residue_table();

/// BLOSUM62 padded with a 21st "unknown residue" row/column scoring -4
/// against everything. Mapping non-residue characters to index 20 makes
/// the DP inner loop a single unconditional table load — no null-row or
/// negative-index branches — while producing the exact same integer
/// scores as the branching form.
constexpr int kUnknown = 20;

constexpr std::array<std::array<int, 21>, 21> build_padded_matrix() {
  std::array<std::array<int, 21>, 21> m{};
  for (int i = 0; i < 21; ++i) {
    for (int j = 0; j < 21; ++j) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          (i < kUnknown && j < kUnknown) ? kB62[i][j] : -4;
    }
  }
  return m;
}

constexpr std::array<std::array<int, 21>, 21> kB62Padded = build_padded_matrix();

/// The padded matrix flattened to int8 for the striped SIMD kernel (every
/// BLOSUM62 entry fits comfortably; the kernel widens to int16).
constexpr std::array<std::int8_t, 21 * 21> build_padded_matrix_i8() {
  std::array<std::int8_t, 21 * 21> m{};
  for (int i = 0; i < 21; ++i) {
    for (int j = 0; j < 21; ++j) {
      m[static_cast<std::size_t>(i * 21 + j)] = static_cast<std::int8_t>(
          kB62Padded[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  return m;
}

constexpr std::array<std::int8_t, 21 * 21> kB62PaddedI8 =
    build_padded_matrix_i8();

}  // namespace

int residue_index(char c) { return kResidueTable[static_cast<unsigned char>(c)]; }

int blosum62(char a, char b) {
  int ia = residue_index(a);
  int ib = residue_index(b);
  if (ia < 0 || ib < 0) return -4;
  return kB62[ia][ib];
}

SwResult smith_waterman(std::string_view a, std::string_view b,
                        const SwParams& params) {
  SwResult result;
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  if (m == 0 || n == 0) return result;
  result.cells = static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n);

  // Fast path: striped (Farrar) saturating-int16 SIMD kernel. Integer DP,
  // so when it runs it returns the exact scalar scores and end positions;
  // it declines (used_simd=false) at the scalar dispatch level and flags
  // overflow when the true score exceeds int16 — both fall through to the
  // int32 scalar loop below, which stays the reference implementation.
  // The modeled cost (cells) is m*n either way, so dispatch level can
  // never leak into the virtual-clock goldens.
  {
    std::vector<std::uint8_t> a_idx(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      int ia = residue_index(a[static_cast<std::size_t>(i)]);
      a_idx[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(ia >= 0 ? ia : kUnknown);
    }
    std::vector<std::uint8_t> b_idx8(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      int ib = residue_index(b[static_cast<std::size_t>(j)]);
      b_idx8[static_cast<std::size_t>(j)] =
          static_cast<std::uint8_t>(ib >= 0 ? ib : kUnknown);
    }
    const simd::SwScore fast = simd::sw_striped_i16(
        a_idx.data(), m, b_idx8.data(), n, kB62PaddedI8.data(), 21,
        params.gap_open, params.gap_extend);
    if (fast.used_simd && !fast.overflow) {
      result.score = fast.score;
      result.end_a = fast.end_a;
      result.end_b = fast.end_b;
      return result;
    }
  }

  // Gotoh affine-gap DP over int32 rows:
  //   H[i][j] = best score of local alignment ending at (i, j)
  //   E[i][j] = best ending with a gap in a (horizontal)
  //   F[i][j] = best ending with a gap in b (vertical)
  // Rolling single-row arrays; contiguous int32 keeps the inner loop
  // branch-light and autovectorizable.
  const int go = params.gap_open;
  const int ge = params.gap_extend;

  std::vector<int> h(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> e(static_cast<std::size_t>(n) + 1, 0);

  // Precompute b's residue indices, with unknowns mapped into the padded
  // matrix so the inner loop never branches on residue validity.
  std::vector<int> b_idx(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    int ib = residue_index(b[static_cast<std::size_t>(j)]);
    b_idx[static_cast<std::size_t>(j)] = ib >= 0 ? ib : kUnknown;
  }

  int best = 0;
  int best_i = 0;
  int best_j = 0;
  for (int i = 0; i < m; ++i) {
    int ia = residue_index(a[static_cast<std::size_t>(i)]);
    const int* row = kB62Padded[static_cast<std::size_t>(ia >= 0 ? ia : kUnknown)].data();
    int f = 0;
    int h_diag = 0;  // H[i-1][j-1]
    for (int j = 1; j <= n; ++j) {
      auto ju = static_cast<std::size_t>(j);
      int sub = row[b_idx[ju - 1]];
      int score = h_diag + sub;
      h_diag = h[ju];

      e[ju] = std::max(e[ju] - ge, h[ju] - go - ge);
      f = std::max(f - ge, h[ju - 1] - go - ge);

      int v = std::max({0, score, e[ju], f});
      h[ju] = v;
      if (v > best) {
        best = v;
        best_i = i + 1;
        best_j = j;
      }
    }
  }

  result.score = best;
  result.end_a = best_i;
  result.end_b = best_j;
  return result;
}

int self_score(std::string_view a) {
  int s = 0;
  for (char c : a) s += blosum62(c, c);
  return s;
}

double normalized_similarity(std::string_view a, std::string_view b,
                             const SwParams& params) {
  if (a.empty() || b.empty()) return 0.0;
  int sa = self_score(a);
  int sb = self_score(b);
  if (sa <= 0 || sb <= 0) return 0.0;
  SwResult r = smith_waterman(a, b, params);
  double denom = std::sqrt(static_cast<double>(sa) * static_cast<double>(sb));
  double sim = static_cast<double>(r.score) / denom;
  return std::clamp(sim, 0.0, 1.0);
}

}  // namespace ids::models
