#pragma once

// Smith–Waterman local sequence alignment with affine gaps (Gotoh).
//
// The paper filters ~66M UniProt sequences against the target protein
// P29274 using the SSW SIMD Smith-Waterman library at <1 ms per
// comparison. This is a faithful reimplementation of the algorithm itself
// (BLOSUM62 scoring, affine gap penalties, O(mn) anti-diagonal-friendly
// inner loop over int16 rows that GCC autovectorizes); only the SIMD
// intrinsics of SSW are substituted by portable code.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ids::models {

/// Standard one-letter amino-acid alphabet used across the repo.
inline constexpr std::string_view kAminoAcids = "ARNDCQEGHILKMFPSTWYV";

/// Maps a residue letter to its alphabet index (0..19), or -1.
int residue_index(char c);

/// BLOSUM62 substitution score for two residue letters (unknown letters
/// score as mismatch -4).
int blosum62(char a, char b);

struct SwParams {
  int gap_open = 11;    // affine gap: cost of opening
  int gap_extend = 1;   // cost of each extension
};

struct SwResult {
  int score = 0;           // raw Smith-Waterman local alignment score
  int end_a = 0;           // alignment end position in a (exclusive)
  int end_b = 0;           // alignment end position in b (exclusive)
  std::uint64_t cells = 0; // DP cells computed (work units for costing)
};

/// Computes the best local alignment score of a vs b.
SwResult smith_waterman(std::string_view a, std::string_view b,
                        const SwParams& params = {});

/// Self-alignment score (sum of diagonal substitution scores) — the
/// normalization denominator.
int self_score(std::string_view a);

/// Normalized similarity in [0, 1]: score / sqrt(self(a) * self(b)).
/// Symmetric, and 1.0 exactly for identical sequences.
double normalized_similarity(std::string_view a, std::string_view b,
                             const SwParams& params = {});

}  // namespace ids::models
