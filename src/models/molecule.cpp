#include "models/molecule.h"

#include <cmath>

#include "common/hash.h"

namespace ids::models {

namespace {

constexpr std::size_t kNumElements = static_cast<std::size_t>(Element::kCount);

constexpr LjParams kLj[kNumElements] = {
    {1.90f, 0.086f},  // C
    {1.82f, 0.170f},  // N
    {1.66f, 0.210f},  // O
    {2.00f, 0.250f},  // S
    {2.10f, 0.200f},  // P
    {1.75f, 0.061f},  // F
    {1.20f, 0.016f},  // H
};

constexpr float kCharge[kNumElements] = {
    0.05f,   // C
    -0.35f,  // N
    -0.45f,  // O
    -0.15f,  // S
    0.30f,   // P
    -0.20f,  // F
    0.10f,   // H
};

constexpr double kAtomicWeight[kNumElements] = {
    12.011, 14.007, 15.999, 32.06, 30.974, 18.998, 1.008,
};

}  // namespace

LjParams lj_params(Element e) { return kLj[static_cast<std::size_t>(e)]; }

float typical_charge(Element e) { return kCharge[static_cast<std::size_t>(e)]; }

Vec3 Molecule::centroid() const {
  Vec3 c;
  if (atoms.empty()) return c;
  for (const auto& a : atoms) {
    c.x += a.x;
    c.y += a.y;
    c.z += a.z;
  }
  double n = static_cast<double>(atoms.size());
  c.x /= n;
  c.y /= n;
  c.z /= n;
  return c;
}

void Molecule::translate(double dx, double dy, double dz) {
  for (auto& a : atoms) {
    a.x += static_cast<float>(dx);
    a.y += static_cast<float>(dy);
    a.z += static_cast<float>(dz);
  }
}

void Molecule::rotate(double rx, double ry, double rz) {
  Vec3 c = centroid();
  double cx = std::cos(rx), sx = std::sin(rx);
  double cy = std::cos(ry), sy = std::sin(ry);
  double cz = std::cos(rz), sz = std::sin(rz);
  for (auto& a : atoms) {
    double x = a.x - c.x;
    double y = a.y - c.y;
    double z = a.z - c.z;
    // Rotate about X, then Y, then Z.
    double y1 = y * cx - z * sx;
    double z1 = y * sx + z * cx;
    double x2 = x * cy + z1 * sy;
    double z2 = -x * sy + z1 * cy;
    double x3 = x2 * cz - y1 * sz;
    double y3 = x2 * sz + y1 * cz;
    a.x = static_cast<float>(x3 + c.x);
    a.y = static_cast<float>(y3 + c.y);
    a.z = static_cast<float>(z2 + c.z);
  }
}

std::vector<Element> elements_from_smiles(std::string_view smiles) {
  std::vector<Element> out;
  for (char ch : smiles) {
    switch (ch) {
      case 'C': case 'c': out.push_back(Element::C); break;
      case 'N': case 'n': out.push_back(Element::N); break;
      case 'O': case 'o': out.push_back(Element::O); break;
      case 'S': case 's': out.push_back(Element::S); break;
      case 'P': case 'p': out.push_back(Element::P); break;
      case 'F': case 'f': out.push_back(Element::F); break;
      case 'H': out.push_back(Element::H); break;
      default: break;  // bonds, rings, branches: geometry-only here
    }
  }
  return out;
}

Molecule ligand_from_smiles(std::string_view smiles, std::uint64_t seed) {
  Molecule m;
  m.name = std::string(smiles);
  auto elems = elements_from_smiles(smiles);
  if (elems.empty()) return m;

  Rng rng(hash_combine(fnv1a64(smiles), seed));
  constexpr double kBond = 1.5;  // Angstrom

  // Self-avoiding-ish chain walk: propose a bond direction, reject when it
  // collides with an earlier atom (bounded retries keep it deterministic
  // and total).
  double px = 0.0, py = 0.0, pz = 0.0;
  for (Element e : elems) {
    double x = px, y = py, z = pz;
    for (int attempt = 0; attempt < 8; ++attempt) {
      double theta = rng.uniform(0.0, 2.0 * 3.14159265358979);
      double cphi = rng.uniform(-1.0, 1.0);
      double sphi = std::sqrt(std::max(0.0, 1.0 - cphi * cphi));
      x = px + kBond * sphi * std::cos(theta);
      y = py + kBond * sphi * std::sin(theta);
      z = pz + kBond * cphi;
      bool clash = false;
      for (const auto& a : m.atoms) {
        double dx = a.x - x, dy = a.y - y, dz = a.z - z;
        if (dx * dx + dy * dy + dz * dz < 1.2 * 1.2) {
          clash = true;
          break;
        }
      }
      if (!clash) break;
    }
    Atom a;
    a.element = e;
    a.x = static_cast<float>(x);
    a.y = static_cast<float>(y);
    a.z = static_cast<float>(z);
    a.charge = typical_charge(e) +
               static_cast<float>(rng.uniform(-0.05, 0.05));
    m.atoms.push_back(a);
    px = x;
    py = y;
    pz = z;
  }

  // Center at the origin so docking starts from a canonical placement.
  Vec3 c = m.centroid();
  m.translate(-c.x, -c.y, -c.z);
  return m;
}

double molecular_weight(std::string_view smiles) {
  double w = 0.0;
  for (Element e : elements_from_smiles(smiles)) {
    w += kAtomicWeight[static_cast<std::size_t>(e)];
  }
  return w;
}

}  // namespace ids::models
