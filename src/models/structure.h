#pragma once

// Toy protein structure predictor (the AlphaFold stand-in).
//
// Substitution note (DESIGN.md): the paper retrieves/predicts 3D protein
// structures (PDB, AlphaFold) to dock against. Here, secondary structure
// is assigned from classical single-residue propensities (Chou-Fasman
// style), and a CA trace is laid out with helix / strand / coil geometry.
// The output is deterministic in the sequence, provides per-residue
// confidence (a pLDDT-like score), and yields a receptor pocket for the
// docking engine — everything the downstream pipeline consumes.

#include <cstdint>
#include <string_view>
#include <vector>

#include "models/molecule.h"

namespace ids::models {

enum class SecondaryStructure : std::uint8_t { kHelix, kSheet, kCoil };

struct ResidueCoord {
  char residue = 'A';
  SecondaryStructure ss = SecondaryStructure::kCoil;
  float x = 0.0f, y = 0.0f, z = 0.0f;
  float confidence = 0.0f;  // pLDDT-like, 0..100
};

struct PredictedStructure {
  std::vector<ResidueCoord> ca_trace;
  double mean_confidence = 0.0;
  std::uint64_t work_units = 0;  // for cost modeling
};

/// Per-residue helix/sheet propensity classification (exposed for tests).
SecondaryStructure residue_propensity(char residue);

/// Predicts a CA trace for the sequence. Deterministic.
PredictedStructure predict_structure(std::string_view sequence);

/// Builds a docking receptor from a predicted structure: pseudo-atoms for
/// the `pocket_residues` residues nearest the structure centroid (the
/// "binding pocket"), centered at the origin.
Molecule receptor_from_structure(const PredictedStructure& s,
                                 std::size_t pocket_residues = 48);

}  // namespace ids::models
