#pragma once

// Drug-Target Binding Affinity prediction (the DeepDTA stand-in, §5.1).
//
// Substitution note (DESIGN.md): the paper runs a TensorFlow DeepDTA model
// that consumes a protein sequence and a SMILES string and predicts
// binding affinity in tenths of a second per call. We reproduce the same
// interface and computational shape with a deterministic MLP: hashed
// k-mer features for the protein (character 3-mers) and the ligand
// (character 2-grams), two hidden layers, and a sigmoid head scaled to a
// pKd-like range. Weights come from a fixed seed — the stand-in for
// "pre-trained" — so predictions are reproducible and consistent
// (identical inputs always score identically, which the cache relies on).

#include <cstdint>
#include <string_view>
#include <vector>

#include "models/tensor.h"

namespace ids::models {

class DtbaModel {
 public:
  static constexpr std::uint64_t kPretrainedSeed = 0xD7BAul;
  static constexpr std::size_t kProteinDims = 128;
  static constexpr std::size_t kLigandDims = 64;
  static constexpr std::size_t kHidden1 = 64;
  static constexpr std::size_t kHidden2 = 16;

  explicit DtbaModel(std::uint64_t weights_seed = kPretrainedSeed);

  struct Prediction {
    double affinity = 0.0;        // pKd-like, ~4 (weak) .. ~11 (strong)
    std::uint64_t work_units = 0; // multiply-adds of the forward pass
  };

  /// Predicts binding affinity for (protein sequence, ligand SMILES).
  Prediction predict(std::string_view protein_seq,
                     std::string_view smiles) const;

  /// Feature extraction, exposed for tests: hashed, L2-normalized k-mer
  /// count vectors.
  static std::vector<float> protein_features(std::string_view seq);
  static std::vector<float> ligand_features(std::string_view smiles);

 private:
  Matrix w1_;  // (kHidden1) x (kProteinDims + kLigandDims)
  Matrix w2_;  // (kHidden2) x (kHidden1)
  Matrix w3_;  // 1 x kHidden2
};

}  // namespace ids::models
