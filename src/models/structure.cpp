#include "models/structure.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/rng.h"

namespace ids::models {

SecondaryStructure residue_propensity(char residue) {
  // Chou-Fasman-like single-residue classes.
  switch (residue) {
    case 'A': case 'E': case 'L': case 'M': case 'Q': case 'K': case 'R':
    case 'H':
      return SecondaryStructure::kHelix;
    case 'V': case 'I': case 'Y': case 'F': case 'W': case 'T': case 'C':
      return SecondaryStructure::kSheet;
    default:
      return SecondaryStructure::kCoil;
  }
}

PredictedStructure predict_structure(std::string_view sequence) {
  PredictedStructure out;
  const std::size_t n = sequence.size();
  if (n == 0) return out;
  out.ca_trace.reserve(n);

  // Smooth per-residue propensities with a 5-wide window vote so secondary
  // structure elements have realistic run lengths.
  std::vector<SecondaryStructure> ss(n);
  for (std::size_t i = 0; i < n; ++i) {
    int votes[3] = {0, 0, 0};
    for (std::size_t j = (i >= 2 ? i - 2 : 0); j < std::min(n, i + 3); ++j) {
      ++votes[static_cast<int>(residue_propensity(sequence[j]))];
    }
    if (votes[0] >= votes[1] && votes[0] >= votes[2]) {
      ss[i] = SecondaryStructure::kHelix;
    } else if (votes[1] >= votes[2]) {
      ss[i] = SecondaryStructure::kSheet;
    } else {
      ss[i] = SecondaryStructure::kCoil;
    }
  }

  Rng rng(fnv1a64(sequence));
  double x = 0.0, y = 0.0, z = 0.0;     // current CA position
  double heading = 0.0;                  // chain direction in the XY plane
  double turn_phase = 0.0;               // helix rotation phase
  double conf_sum = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    ResidueCoord rc;
    rc.residue = sequence[i];
    rc.ss = ss[i];
    switch (ss[i]) {
      case SecondaryStructure::kHelix:
        // 3.6 residues/turn, 1.5 A rise, 2.3 A radius around the axis.
        turn_phase += 2.0 * 3.14159265358979 / 3.6;
        x += 1.5 * std::cos(heading) + 2.3 * std::cos(turn_phase) * 0.4;
        y += 1.5 * std::sin(heading) + 2.3 * std::sin(turn_phase) * 0.4;
        z += 1.5;
        rc.confidence = 90.0f;
        break;
      case SecondaryStructure::kSheet:
        // Extended strand: 3.3 A rise, slight zigzag.
        x += 3.3 * std::cos(heading);
        y += 3.3 * std::sin(heading);
        z += (i % 2 == 0) ? 0.6 : -0.6;
        rc.confidence = 80.0f;
        break;
      case SecondaryStructure::kCoil:
        heading += rng.uniform(-1.1, 1.1);
        x += 3.8 * std::cos(heading);
        y += 3.8 * std::sin(heading);
        z += rng.uniform(-1.5, 1.5);
        rc.confidence = 55.0f;
        break;
    }
    rc.x = static_cast<float>(x);
    rc.y = static_cast<float>(y);
    rc.z = static_cast<float>(z);
    conf_sum += rc.confidence;
    out.ca_trace.push_back(rc);
  }

  out.mean_confidence = conf_sum / static_cast<double>(n);
  // Structure prediction cost scales roughly quadratically in length
  // (attention over residue pairs).
  out.work_units = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
  return out;
}

Molecule receptor_from_structure(const PredictedStructure& s,
                                 std::size_t pocket_residues) {
  Molecule m;
  m.name = "receptor";
  if (s.ca_trace.empty()) return m;

  // Pocket = the densest neighbourhood of the fold: anchor at the residue
  // with the most neighbours within 12 A (a crude cavity detector), then
  // take the residues nearest the anchor.
  std::size_t anchor = 0;
  std::size_t best_neighbors = 0;
  for (std::size_t i = 0; i < s.ca_trace.size(); ++i) {
    std::size_t neighbors = 0;
    for (std::size_t j = 0; j < s.ca_trace.size(); ++j) {
      double dx = s.ca_trace[i].x - s.ca_trace[j].x;
      double dy = s.ca_trace[i].y - s.ca_trace[j].y;
      double dz = s.ca_trace[i].z - s.ca_trace[j].z;
      if (dx * dx + dy * dy + dz * dz < 12.0 * 12.0) ++neighbors;
    }
    if (neighbors > best_neighbors) {
      best_neighbors = neighbors;
      anchor = i;
    }
  }
  const double cx = s.ca_trace[anchor].x;
  const double cy = s.ca_trace[anchor].y;
  const double cz = s.ca_trace[anchor].z;

  std::vector<std::pair<double, std::size_t>> by_dist;
  by_dist.reserve(s.ca_trace.size());
  for (std::size_t i = 0; i < s.ca_trace.size(); ++i) {
    const auto& r = s.ca_trace[i];
    double dx = r.x - cx, dy = r.y - cy, dz = r.z - cz;
    by_dist.emplace_back(dx * dx + dy * dy + dz * dz, i);
  }
  std::sort(by_dist.begin(), by_dist.end());
  std::size_t take = std::min(pocket_residues, by_dist.size());

  for (std::size_t k = 0; k < take; ++k) {
    const auto& r = s.ca_trace[by_dist[k].second];
    Atom a;
    // Pseudo-atom element by residue character class: polar residues get
    // N/O character, hydrophobic get C, cysteine/methionine get S.
    switch (r.residue) {
      case 'D': case 'E': case 'S': case 'T': case 'Y': a.element = Element::O; break;
      case 'K': case 'R': case 'H': case 'N': case 'Q': case 'W': a.element = Element::N; break;
      case 'C': case 'M': a.element = Element::S; break;
      default: a.element = Element::C; break;
    }
    a.x = static_cast<float>(r.x - cx);
    a.y = static_cast<float>(r.y - cy);
    a.z = static_cast<float>(r.z - cz);
    a.charge = typical_charge(a.element);
    m.atoms.push_back(a);
  }
  return m;
}

}  // namespace ids::models
