#include "models/docking.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/rng.h"
#include "common/strings.h"

namespace ids::models {

double interaction_energy(const Molecule& receptor, const Molecule& ligand) {
  double energy = 0.0;
  for (const auto& ra : receptor.atoms) {
    LjParams rl = lj_params(ra.element);
    for (const auto& la : ligand.atoms) {
      double dx = ra.x - la.x;
      double dy = ra.y - la.y;
      double dz = ra.z - la.z;
      double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 > 64.0) continue;  // 8 A cutoff
      r2 = std::max(r2, 0.25);  // clamp to avoid singularities
      double r = std::sqrt(r2);

      LjParams ll = lj_params(la.element);
      double sigma = (rl.radius + ll.radius) * 0.5 * 1.78;
      double eps = std::sqrt(static_cast<double>(rl.well_depth) *
                             static_cast<double>(ll.well_depth));
      double sr2 = (sigma * sigma) / r2;
      double sr6 = sr2 * sr2 * sr2;
      // 6-12 Lennard-Jones, softened on the repulsive side so clashes are
      // steep but finite (Vina similarly caps steric terms).
      double lj = 4.0 * eps * (sr6 * sr6 - sr6);
      energy += std::min(lj, 10.0);

      // Coulomb with distance-dependent dielectric (4r).
      energy += 332.0 * ra.charge * la.charge / (4.0 * r2);

      // Hydrogen-bond-flavoured term: N/O donor-acceptor pairs in the
      // 2.6-3.4 A window get a bonus.
      bool ra_polar = ra.element == Element::N || ra.element == Element::O;
      bool la_polar = la.element == Element::N || la.element == Element::O;
      if (ra_polar && la_polar && r > 2.4 && r < 3.6) {
        double center = 3.0;
        double w = 1.0 - std::abs(r - center) / 0.6;
        if (w > 0.0) energy -= 1.6 * w;
      }

      // Hydrophobic contact (Vina's "hydrophobic" term): carbon-carbon
      // pairs in van-der-Waals contact contribute a mild attraction.
      if (ra.element == Element::C && la.element == Element::C && r > 3.2 &&
          r < 5.0) {
        energy -= 0.45 * (1.0 - (r - 3.2) / 1.8);
      }
    }
  }
  return energy;
}

DockingEngine::DockingEngine(Molecule receptor, DockingParams params)
    : receptor_(std::move(receptor)), params_(params) {}

DockingResult DockingEngine::dock(const Molecule& ligand,
                                  std::uint64_t seed) const {
  DockingResult result;
  if (ligand.atoms.empty() || receptor_.atoms.empty()) return result;

  const std::uint64_t pair_work =
      static_cast<std::uint64_t>(ligand.atoms.size()) *
      static_cast<std::uint64_t>(receptor_.atoms.size());

  // Larger ligands have a larger pose space and need proportionally more
  // Monte Carlo steps to converge (Vina's search effort likewise grows
  // with ligand size/torsions). This is what makes docking cost strongly
  // ligand-dependent — and the uncached Table 2 sweep superlinear once
  // diverse, bigger compounds enter the candidate set.
  const int steps =
      static_cast<int>(params_.steps_per_run *
                       std::max(1.0, static_cast<double>(ligand.atoms.size()) /
                                         10.0));

  Rng base_rng(hash_combine(fnv1a64(ligand.name), seed));

  std::vector<double> mode_energies;
  for (int run = 0; run < params_.exhaustiveness; ++run) {
    Rng rng = base_rng.fork(static_cast<std::uint64_t>(run));

    // Random initial placement inside the box.
    Molecule pose = ligand;
    pose.translate(rng.uniform(-params_.box_radius, params_.box_radius),
                   rng.uniform(-params_.box_radius, params_.box_radius),
                   rng.uniform(-params_.box_radius, params_.box_radius));
    pose.rotate(rng.uniform(0.0, 6.2831853), rng.uniform(0.0, 6.2831853),
                rng.uniform(0.0, 6.2831853));

    double current = interaction_energy(receptor_, pose);
    double best = current;
    result.work_units += pair_work;

    for (int step = 0; step < steps; ++step) {
      double frac = static_cast<double>(step) / static_cast<double>(steps);
      double temp = params_.temp_start *
                    std::pow(params_.temp_end / params_.temp_start, frac);
      double move_scale = 0.3 + 1.2 * (1.0 - frac);  // shrink moves as we cool

      Molecule trial = pose;
      if (rng.bernoulli(0.5)) {
        trial.translate(rng.normal(0.0, move_scale),
                        rng.normal(0.0, move_scale),
                        rng.normal(0.0, move_scale));
      } else {
        trial.rotate(rng.normal(0.0, 0.35 * move_scale),
                     rng.normal(0.0, 0.35 * move_scale),
                     rng.normal(0.0, 0.35 * move_scale));
      }
      // Keep the pose inside the search box.
      Vec3 c = trial.centroid();
      if (std::abs(c.x) > params_.box_radius ||
          std::abs(c.y) > params_.box_radius ||
          std::abs(c.z) > params_.box_radius) {
        continue;
      }

      double e = interaction_energy(receptor_, trial);
      result.work_units += pair_work;
      ++result.iterations;

      if (e < current || rng.bernoulli(std::exp(-(e - current) / temp))) {
        pose = std::move(trial);
        current = e;
        best = std::min(best, e);
      }
    }
    mode_energies.push_back(best);
  }

  std::sort(mode_energies.begin(), mode_energies.end());
  if (mode_energies.size() > static_cast<std::size_t>(params_.num_modes)) {
    mode_energies.resize(static_cast<std::size_t>(params_.num_modes));
  }
  result.mode_energies = std::move(mode_energies);
  result.best_energy = result.mode_energies.front();
  return result;
}

DockingResult DockingEngine::dock_smiles(std::string_view smiles,
                                         std::uint64_t seed) const {
  return dock(ligand_from_smiles(smiles), seed);
}

std::string serialize(const DockingResult& r) {
  std::string out;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", r.best_energy);
  out += buf;
  out += ';';
  for (std::size_t i = 0; i < r.mode_energies.size(); ++i) {
    if (i) out += ',';
    std::snprintf(buf, sizeof(buf), "%.17g", r.mode_energies[i]);
    out += buf;
  }
  out += ';';
  out += std::to_string(r.work_units);
  out += ';';
  out += std::to_string(r.iterations);
  return out;
}

bool deserialize(std::string_view text, DockingResult* out) {
  auto parts = split(text, ';');
  if (parts.size() != 4) return false;
  DockingResult r;
  char* end = nullptr;
  r.best_energy = std::strtod(parts[0].c_str(), &end);
  if (end == parts[0].c_str()) return false;
  if (!parts[1].empty()) {
    for (const auto& tok : split(parts[1], ',')) {
      r.mode_energies.push_back(std::strtod(tok.c_str(), nullptr));
    }
  }
  r.work_units = std::strtoull(parts[2].c_str(), nullptr, 10);
  r.iterations = static_cast<std::uint32_t>(
      std::strtoul(parts[3].c_str(), nullptr, 10));
  *out = r;
  return true;
}

}  // namespace ids::models
