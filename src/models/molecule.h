#pragma once

// Minimal 3D chemistry types shared by the docking engine, the structure
// predictor, and the molecule generator.
//
// Substitution note (see DESIGN.md): the paper docks real PDB receptors
// and ChEMBL ligands with AutoDock Vina. Without those inputs we build
// deterministic synthetic 3D structures — ligands are embedded from our
// SMILES-like strings by a seeded self-avoiding walk with chemically
// plausible bond lengths; receptors come from the toy structure predictor.
// What matters for the evaluation is preserved: molecule size drives
// docking cost, and identical inputs yield identical poses/energies
// (cacheability).

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace ids::models {

/// Chemical elements we model, with Lennard-Jones-style parameters.
enum class Element : std::uint8_t { C = 0, N, O, S, P, F, H, kCount };

struct LjParams {
  float radius = 1.7f;      // van der Waals radius, Angstrom
  float well_depth = 0.1f;  // potential well depth, kcal/mol
};

/// Per-element LJ parameters (AMBER-like magnitudes).
LjParams lj_params(Element e);

/// Typical partial charge of an element in an organic molecule.
float typical_charge(Element e);

struct Atom {
  Element element = Element::C;
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;
  float charge = 0.0f;
};

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

struct Molecule {
  std::string name;
  std::vector<Atom> atoms;

  std::size_t size() const { return atoms.size(); }
  Vec3 centroid() const;
  void translate(double dx, double dy, double dz);
  /// Rotates around the centroid by Euler angles (radians).
  void rotate(double rx, double ry, double rz);
};

/// Parses our SMILES-like strings: every letter is an atom (C/N/O/S/P/F,
/// lowercase = aromatic treated the same); digits, brackets and bond
/// symbols contribute to topology only implicitly. Returns the element
/// sequence.
std::vector<Element> elements_from_smiles(std::string_view smiles);

/// Deterministically embeds a SMILES string into 3D: a seeded
/// self-avoiding chain walk with ~1.5 A bonds. The same (smiles, seed)
/// always produces the same coordinates.
Molecule ligand_from_smiles(std::string_view smiles, std::uint64_t seed = 0);

/// Approximate molecular weight from element counts (Daltons).
double molecular_weight(std::string_view smiles);

}  // namespace ids::models
