#include "models/molgen.h"

#include <cmath>
#include <set>

#include "models/molecule.h"

namespace ids::models {

namespace {

std::string generate_once(Rng& rng, const MolGenParams& p) {
  static const char kHetero[] = {'N', 'O', 'S', 'F'};
  int n_atoms = static_cast<int>(
      rng.uniform_int(p.min_atoms, p.max_atoms));
  std::string s;
  int open_branches = 0;
  bool ring_open = false;
  for (int i = 0; i < n_atoms; ++i) {
    if (rng.bernoulli(p.hetero_prob)) {
      s += kHetero[rng.next_below(4)];
    } else {
      s += rng.bernoulli(0.25) ? 'c' : 'C';  // aromatic or aliphatic carbon
    }
    if (i + 2 < n_atoms && rng.bernoulli(p.branch_prob)) {
      s += '(';
      ++open_branches;
    } else if (open_branches > 0 && rng.bernoulli(0.3)) {
      s += ')';
      --open_branches;
    }
    if (!ring_open && i + 6 < n_atoms && rng.bernoulli(p.ring_prob)) {
      s += '1';
      ring_open = true;
    } else if (ring_open && rng.bernoulli(0.15)) {
      s += '1';
      ring_open = false;
    }
    if (rng.bernoulli(0.1)) s += '=';  // occasional double bond
  }
  while (open_branches-- > 0) s += ')';
  if (ring_open) s += '1';
  return s;
}

}  // namespace

std::string generate_smiles(Rng& rng, const MolGenParams& params) {
  if (params.target_weight <= 0.0) return generate_once(rng, params);
  std::string best = generate_once(rng, params);
  double best_err = std::abs(molecular_weight(best) - params.target_weight);
  for (int attempt = 0; attempt < 24; ++attempt) {
    if (best_err <= 0.2 * params.target_weight) break;
    std::string cand = generate_once(rng, params);
    double err = std::abs(molecular_weight(cand) - params.target_weight);
    if (err < best_err) {
      best = std::move(cand);
      best_err = err;
    }
  }
  return best;
}

std::vector<std::string> generate_library(std::size_t n, std::uint64_t seed,
                                          const MolGenParams& params) {
  Rng rng(seed);
  std::set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(n);
  // Bounded attempts guarantee termination even with tiny atom ranges.
  std::size_t attempts = 0;
  while (out.size() < n && attempts < n * 50 + 100) {
    ++attempts;
    std::string s = generate_smiles(rng, params);
    if (seen.insert(s).second) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace ids::models
