#pragma once

// Synthetic molecular docking engine (the AutoDock Vina stand-in).
//
// Substitution note (DESIGN.md): Vina's role in the paper's evaluation is
// an *expensive, variable-cost, deterministic-per-input, cacheable*
// simulation dominating the query critical path (31-44 s per ligand on
// their testbed). This engine reproduces that role with real computation:
// a pairwise Lennard-Jones + Coulomb + hydrogen-bond-flavoured scoring
// function over receptor/ligand atoms and a multi-restart simulated-
// annealing pose search (Vina's Monte Carlo + local-optimization scheme,
// minus torsional flexibility). Cost genuinely varies with ligand size and
// exhaustiveness; identical (receptor, ligand, seed) inputs produce
// bit-identical results, which is what makes docking outputs cacheable.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "models/molecule.h"

namespace ids::models {

struct DockingParams {
  int exhaustiveness = 8;      // independent annealing restarts (Vina's knob)
  int steps_per_run = 160;     // Monte Carlo steps per restart
  int num_modes = 9;           // binding modes reported
  double box_radius = 12.0;    // search box half-extent around the pocket
  double temp_start = 2.0;     // annealing temperature schedule (kcal/mol)
  double temp_end = 0.1;
};

struct DockingResult {
  double best_energy = 0.0;            // kcal/mol, lower is better
  std::vector<double> mode_energies;   // best per restart, sorted ascending
  std::uint64_t work_units = 0;        // atom-pair evaluations performed
  std::uint32_t iterations = 0;        // total Monte Carlo steps

  friend bool operator==(const DockingResult&, const DockingResult&) = default;
};

/// Pairwise interaction energy (kcal/mol-ish) between receptor and ligand
/// in their current coordinates. Exposed for tests.
double interaction_energy(const Molecule& receptor, const Molecule& ligand);

class DockingEngine {
 public:
  DockingEngine(Molecule receptor, DockingParams params = {});

  const Molecule& receptor() const { return receptor_; }
  const DockingParams& params() const { return params_; }

  /// Docks a ligand. Deterministic in (receptor, ligand, seed).
  DockingResult dock(const Molecule& ligand, std::uint64_t seed) const;

  /// Convenience: embed a SMILES string and dock it.
  DockingResult dock_smiles(std::string_view smiles,
                            std::uint64_t seed = 0) const;

 private:
  Molecule receptor_;
  DockingParams params_;
};

/// Compact text serialization for cache storage. Round-trips exactly
/// (energies are serialized with full precision).
std::string serialize(const DockingResult& r);
/// Parses a serialized result. Returns false on malformed input.
bool deserialize(std::string_view text, DockingResult* out);

}  // namespace ids::models
