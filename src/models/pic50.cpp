#include "models/pic50.h"

#include <cmath>

namespace ids::models {

std::optional<double> pic50_from_ic50_nm(double ic50_nm) {
  if (!(ic50_nm > 0.0)) return std::nullopt;
  // IC50 [M] = IC50 [nM] * 1e-9; pIC50 = -log10(IC50 [M]) = 9 - log10(nM).
  return 9.0 - std::log10(ic50_nm);
}

bool is_potent(double ic50_nm, double pic50_threshold) {
  auto p = pic50_from_ic50_nm(ic50_nm);
  return p.has_value() && *p >= pic50_threshold;
}

}  // namespace ids::models
