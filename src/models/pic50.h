#pragma once

// pIC50 computation.
//
// pIC50 = -log10(IC50 in molar) is the standard potency measure the
// paper's inner FILTER uses ("filtering by ... pIC50"; footnote 1). It is
// the cheapest UDF in the chain (the paper budgets 1e-5 s per call), so it
// is also where the planner's cost-ascending reordering places it.

#include <optional>

namespace ids::models {

/// Converts an IC50 in nanomolar to pIC50. 1 nM -> 9.0, 1 uM -> 6.0.
/// Returns nullopt for non-positive inputs.
std::optional<double> pic50_from_ic50_nm(double ic50_nm);

/// True when the potency clears a drug-likeness bar (pIC50 >= threshold).
bool is_potent(double ic50_nm, double pic50_threshold);

}  // namespace ids::models
