#pragma once

// Calibrated cost model for UDF kernels (the simulation's time base).
//
// Every kernel in src/models reports its *work units* (DP cells, atom-pair
// evaluations, multiply-adds). This profile converts work units into
// modeled time on the virtual clock, calibrated against the per-call
// magnitudes the paper states in §4/§5.1:
//
//   Smith-Waterman   < 1 ms per comparison        (≈350x350-residue DP)
//   pIC50            1e-5 s per call
//   DTBA             tenths of a second, with a variance tail
//                    ("most ≈ 1 s, some longer" in Fig 5's discussion)
//   Docking          31-44 s per ligand on the paper's nodes
//   Structure        minutes per protein (AlphaFold-class)
//   Python import    seconds ("loading Python modules can be
//                    time-consuming", §2.3)
//
// Changing these constants rescales the benchmark tables without touching
// any algorithm; EXPERIMENTS.md records the calibration used for the
// reported runs.

#include <cstdint>

#include "common/hash.h"
#include "sim/time.h"

namespace ids::models {

struct CostProfile {
  // Seconds per unit of work for each kernel.
  double sw_seconds_per_cell = 6.0e-9;        // ~0.7 ms per 350x350 DP
  double pic50_seconds = 1.0e-5;
  double dtba_base_seconds = 0.12;
  double dtba_seconds_per_unit = 2.0e-6;      // feature+MLP multiply-adds
  double dtba_tail_fraction = 0.08;           // calls hit by the slow tail
  double dtba_tail_multiplier = 7.0;          // Fig 5: "some longer"
  double docking_seconds_per_unit = 1.24e-5;  // atom-pair evaluations
  double structure_seconds_per_unit = 1.3e-3; // residue-pair units
  double vector_scan_seconds_per_unit = 1.0e-9;
  double module_load_seconds = 2.0;

  // Graph-engine operator costs (per element touched).
  double triple_scan_seconds_per_triple = 5.0e-9;
  double join_seconds_per_row = 2.0e-8;

  /// Fixed per-operator cost charged to every rank at each scan/join/
  /// filter stage: operator launch, straggler skew, and global
  /// synchronization that do not shrink with more ranks. This is what
  /// makes scan/join/merge plateau beyond ~128 nodes in Fig 4(b) ("ranks
  /// exhaust useful work"). Zero by default; the scaling benches calibrate
  /// it against the paper's plateau.
  double operator_overhead_seconds = 0.0;

  static const CostProfile& paper() {
    static const CostProfile p{};
    return p;
  }

  sim::Nanos sw_cost(std::uint64_t cells) const {
    return sim::from_seconds(sw_seconds_per_cell * static_cast<double>(cells));
  }
  sim::Nanos pic50_cost() const { return sim::from_seconds(pic50_seconds); }

  /// DTBA cost with the deterministic slow tail: `call_hash` (e.g. a hash
  /// of the inputs) selects which calls are slow, so reruns of the same
  /// query see the same variance pattern.
  sim::Nanos dtba_cost(std::uint64_t work_units, std::uint64_t call_hash) const {
    double s = dtba_base_seconds +
               dtba_seconds_per_unit * static_cast<double>(work_units);
    double u = static_cast<double>(mix64(call_hash) >> 11) * 0x1.0p-53;
    if (u < dtba_tail_fraction) s *= dtba_tail_multiplier;
    return sim::from_seconds(s);
  }

  sim::Nanos docking_cost(std::uint64_t work_units) const {
    return sim::from_seconds(docking_seconds_per_unit *
                             static_cast<double>(work_units));
  }
  sim::Nanos structure_cost(std::uint64_t work_units) const {
    return sim::from_seconds(structure_seconds_per_unit *
                             static_cast<double>(work_units));
  }
  sim::Nanos vector_scan_cost(std::uint64_t work_units) const {
    return sim::from_seconds(vector_scan_seconds_per_unit *
                             static_cast<double>(work_units));
  }
  sim::Nanos module_load_cost() const {
    return sim::from_seconds(module_load_seconds);
  }
  sim::Nanos triple_scan_cost(std::uint64_t triples) const {
    return sim::from_seconds(triple_scan_seconds_per_triple *
                             static_cast<double>(triples));
  }
  sim::Nanos join_cost(std::uint64_t rows) const {
    return sim::from_seconds(join_seconds_per_row *
                             static_cast<double>(rows));
  }
};

}  // namespace ids::models
