#include "models/dtba.h"

#include "common/hash.h"

namespace ids::models {

namespace {

void add_kmer_features(std::string_view text, std::size_t k,
                       std::vector<float>* out) {
  if (text.size() < k) return;
  for (std::size_t i = 0; i + k <= text.size(); ++i) {
    std::uint64_t h = fnv1a64(text.substr(i, k));
    (*out)[h % out->size()] += 1.0f;
  }
}

}  // namespace

std::vector<float> DtbaModel::protein_features(std::string_view seq) {
  std::vector<float> f(kProteinDims, 0.0f);
  add_kmer_features(seq, 3, &f);
  l2_normalize(f);
  return f;
}

std::vector<float> DtbaModel::ligand_features(std::string_view smiles) {
  std::vector<float> f(kLigandDims, 0.0f);
  add_kmer_features(smiles, 2, &f);
  l2_normalize(f);
  return f;
}

DtbaModel::DtbaModel(std::uint64_t weights_seed)
    : w1_(Matrix::xavier(kHidden1, kProteinDims + kLigandDims,
                         mix64(weights_seed))),
      w2_(Matrix::xavier(kHidden2, kHidden1, mix64(weights_seed + 1))),
      w3_(Matrix::xavier(1, kHidden2, mix64(weights_seed + 2))) {}

DtbaModel::Prediction DtbaModel::predict(std::string_view protein_seq,
                                         std::string_view smiles) const {
  std::vector<float> x = protein_features(protein_seq);
  std::vector<float> lig = ligand_features(smiles);
  x.insert(x.end(), lig.begin(), lig.end());

  std::vector<float> h1 = w1_.matvec(x);
  relu_inplace(h1);
  std::vector<float> h2 = w2_.matvec(h1);
  relu_inplace(h2);
  std::vector<float> y = w3_.matvec(h2);

  Prediction p;
  // Gain of 6 spreads raw activations across the pKd range.
  p.affinity = 4.0 + 7.0 * static_cast<double>(sigmoid(6.0f * y[0]));
  p.work_units =
      static_cast<std::uint64_t>(w1_.rows() * w1_.cols() +
                                 w2_.rows() * w2_.cols() +
                                 w3_.rows() * w3_.cols()) +
      static_cast<std::uint64_t>(protein_seq.size() + smiles.size());
  return p;
}

}  // namespace ids::models
