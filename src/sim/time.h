#pragma once

// Virtual time base for the whole simulation.
//
// All modeled durations are integer nanoseconds. Integer time keeps the
// simulation deterministic (no floating-point accumulation drift across
// differently-ordered reductions) while still resolving the sub-microsecond
// costs of cache hits and the tens-of-seconds costs of docking runs.

#include <cstdint>

namespace ids::sim {

/// A point or span of modeled time, in nanoseconds.
using Nanos = std::uint64_t;

constexpr Nanos kNanosPerMicro = 1000ull;
constexpr Nanos kNanosPerMilli = 1000ull * 1000ull;
constexpr Nanos kNanosPerSecond = 1000ull * 1000ull * 1000ull;

constexpr Nanos from_micros(double us) {
  return static_cast<Nanos>(us * static_cast<double>(kNanosPerMicro));
}
constexpr Nanos from_millis(double ms) {
  return static_cast<Nanos>(ms * static_cast<double>(kNanosPerMilli));
}
constexpr Nanos from_seconds(double s) {
  return static_cast<Nanos>(s * static_cast<double>(kNanosPerSecond));
}
constexpr double to_seconds(Nanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerSecond);
}
constexpr double to_millis(Nanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerMilli);
}

}  // namespace ids::sim
