#pragma once

// Per-rank virtual clocks.
//
// The paper's evaluation runs on 2048-8192 MPI ranks; here each rank owns a
// VirtualClock that advances by *modeled* cost as it performs *real* (but
// laptop-scale) work. Collective operations synchronize clocks the same way
// an MPI barrier synchronizes ranks: everyone jumps to the maximum. The
// reported time of a query is therefore exactly the critical-path
// (max-over-ranks) time the paper measures.

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "sim/time.h"

namespace ids::sim {

/// One rank's modeled clock.
class VirtualClock {
 public:
  Nanos now() const { return now_; }
  void advance(Nanos ns) { now_ += ns; }
  void advance_seconds(double s) { now_ += from_seconds(s); }
  /// Moves forward to `t` if `t` is later (never moves backwards).
  void raise_to(Nanos t) { now_ = std::max(now_, t); }
  void reset() { now_ = 0; }

 private:
  Nanos now_ = 0;
};

/// The set of clocks for every rank in a run, plus collective operations.
class ClockSet {
 public:
  explicit ClockSet(std::size_t num_ranks) : clocks_(num_ranks) {}

  std::size_t size() const { return clocks_.size(); }
  VirtualClock& at(std::size_t rank) { return clocks_[rank]; }
  const VirtualClock& at(std::size_t rank) const { return clocks_[rank]; }

  /// Barrier: all clocks jump to the current maximum. Returns that maximum.
  Nanos barrier() {
    Nanos m = max();
    for (auto& c : clocks_) c.raise_to(m);
    return m;
  }

  Nanos max() const {
    Nanos m = 0;
    for (const auto& c : clocks_) m = std::max(m, c.now());
    return m;
  }

  Nanos min() const {
    IDS_CHECK(!clocks_.empty());
    Nanos m = clocks_[0].now();
    for (const auto& c : clocks_) m = std::min(m, c.now());
    return m;
  }

  void reset() {
    for (auto& c : clocks_) c.reset();
  }

 private:
  std::vector<VirtualClock> clocks_;
};

}  // namespace ids::sim
