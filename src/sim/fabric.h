#pragma once

// Interconnect cost model.
//
// The paper's systems use HPE Slingshot (25 GB/s per-node injection on the
// 52-node cache testbed). We model every transfer as latency + size /
// bandwidth — the standard alpha-beta (Hockney) model — with separate
// parameters for intra-node (shared memory), inter-node (fabric), and
// storage (Lustre/DAOS backing) paths. These parameters are the calibration
// surface for matching the paper's measured magnitudes.

#include <cstdint>

#include "sim/time.h"

namespace ids::sim {

/// Alpha-beta link model: cost(bytes) = latency + bytes / bandwidth.
struct LinkModel {
  Nanos latency = 0;                 // per-message startup (alpha)
  double bytes_per_second = 1.0e9;   // sustained bandwidth (1/beta)

  Nanos transfer_cost(std::uint64_t bytes) const {
    double secs = static_cast<double>(bytes) / bytes_per_second;
    return latency + from_seconds(secs);
  }
};

/// Fabric parameters for a whole machine. Defaults approximate the paper's
/// testbeds: Slingshot-class fabric (sub-2us latency, 25 GB/s), DDR-class
/// intra-node copies, NVMe-class local SSDs, and a Lustre-class backing
/// store whose effective per-client bandwidth is far below the fabric.
struct FabricParams {
  LinkModel intra_node{from_micros(0.3), 80.0e9};
  LinkModel inter_node{from_micros(1.8), 25.0e9};
  LinkModel local_ssd{from_micros(90.0), 3.0e9};
  LinkModel backing_store{from_millis(4.0), 1.2e9};
};

}  // namespace ids::sim
