#include "fam/fam.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace ids::fam {

FamService::FamService(FamOptions options) : options_(std::move(options)) {
  IDS_CHECK(!options_.server_nodes.empty());
  auto& registry = options_.metrics != nullptr
                       ? *options_.metrics
                       : telemetry::MetricsRegistry::global();
  puts_total_ = registry.counter("ids_fam_puts_total");
  gets_total_ = registry.counter("ids_fam_gets_total");
  atomics_total_ = registry.counter("ids_fam_atomics_total");
  written_bytes_total_ = registry.counter("ids_fam_written_bytes_total");
  read_bytes_total_ = registry.counter("ids_fam_read_bytes_total");
  alloc_failures_total_ = registry.counter("ids_fam_alloc_failures_total");
  server_failures_total_ = registry.counter("ids_fam_server_failures_total");
  servers_.reserve(options_.server_nodes.size());
  for (int node : options_.server_nodes) {
    Server s;
    s.node = node;
    servers_.push_back(std::move(s));
  }
}

sim::Nanos FamService::transfer_cost(int caller_node, int server,
                                     std::uint64_t bytes) const {
  // Reads only the immutable node mapping, so it is safe both under
  // mutex_ (from put/get/atomics) and without it (public cost queries).
  const auto& link = (caller_node == server_node(server))
                         ? options_.fabric.intra_node
                         : options_.fabric.inter_node;
  return link.transfer_cost(bytes);
}

Result<Descriptor> FamService::allocate(std::string_view name,
                                        std::uint64_t size,
                                        int preferred_server) {
  MutexLock lock(mutex_);
  std::string key(name);
  if (names_.contains(key)) {
    return Status::AlreadyExists("fam allocation exists: " + key);
  }

  int server = -1;
  if (preferred_server >= 0) {
    if (preferred_server >= num_servers()) {
      return Status::InvalidArgument("no such fam server");
    }
    const auto& s = servers_[static_cast<std::size_t>(preferred_server)];
    if (s.alive && s.used + size <= options_.server_capacity_bytes) {
      server = preferred_server;
    }
  }
  if (server < 0) {
    // Least-loaded live server with room.
    std::uint64_t best_used = ~0ull;
    for (int i = 0; i < num_servers(); ++i) {
      const auto& s = servers_[static_cast<std::size_t>(i)];
      if (!s.alive) continue;
      if (s.used + size > options_.server_capacity_bytes) continue;
      if (s.used < best_used) {
        best_used = s.used;
        server = i;
      }
    }
  }
  if (server < 0) {
    alloc_failures_total_->inc();
    return Status::ResourceExhausted("no fam server can hold " +
                                     std::to_string(size) + " bytes");
  }

  auto& s = servers_[static_cast<std::size_t>(server)];
  Region r;
  r.id = next_region_++;
  r.size = size;
  r.data.assign(size, std::byte{0});
  Descriptor d{server, r.id, size};
  s.regions.emplace(r.id, std::move(r));
  s.used += size;
  names_.emplace(std::move(key), d);
  return d;
}

Status FamService::deallocate(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = names_.find(std::string(name));
  if (it == names_.end()) {
    return Status::NotFound("fam allocation not found");
  }
  Descriptor d = it->second;
  names_.erase(it);
  auto& s = servers_[static_cast<std::size_t>(d.server)];
  auto rit = s.regions.find(d.region);
  if (rit != s.regions.end()) {
    s.used -= rit->second.size;
    s.regions.erase(rit);
  }
  return Status::Ok();
}

Result<Descriptor> FamService::lookup(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = names_.find(std::string(name));
  if (it == names_.end()) {
    return Status::NotFound("fam allocation not found: " + std::string(name));
  }
  return it->second;
}

Status FamService::check(const Descriptor& d, std::uint64_t offset,
                         std::uint64_t len) const {
  if (!d.valid() || d.server >= num_servers()) {
    return Status::InvalidArgument("invalid fam descriptor");
  }
  const auto& s = servers_[static_cast<std::size_t>(d.server)];
  if (!s.alive) return Status::Unavailable("fam server is down");
  auto rit = s.regions.find(d.region);
  if (rit == s.regions.end()) {
    return Status::NotFound("fam region gone (server failure?)");
  }
  if (offset + len > rit->second.size) {
    return Status::OutOfRange("fam access beyond region");
  }
  return Status::Ok();
}

const FamService::Region* FamService::find_region(const Descriptor& d) const {
  const auto& s = servers_[static_cast<std::size_t>(d.server)];
  auto rit = s.regions.find(d.region);
  return rit == s.regions.end() ? nullptr : &rit->second;
}

Status FamService::put(sim::VirtualClock& clock, int caller_node,
                       const Descriptor& d, std::uint64_t offset,
                       std::span<const std::byte> data) {
  MutexLock lock(mutex_);
  if (Status st = check(d, offset, data.size()); !st.ok()) return st;
  auto& region =
      servers_[static_cast<std::size_t>(d.server)].regions.at(d.region);
  std::memcpy(region.data.data() + offset, data.data(), data.size());
  clock.advance(transfer_cost(caller_node, d.server, data.size()));
  puts_total_->inc();
  written_bytes_total_->inc(data.size());
  return Status::Ok();
}

Status FamService::get(sim::VirtualClock& clock, int caller_node,
                       const Descriptor& d, std::uint64_t offset,
                       std::span<std::byte> out) const {
  MutexLock lock(mutex_);
  if (Status st = check(d, offset, out.size()); !st.ok()) return st;
  const Region* region = find_region(d);
  std::memcpy(out.data(), region->data.data() + offset, out.size());
  clock.advance(transfer_cost(caller_node, d.server, out.size()));
  gets_total_->inc();
  read_bytes_total_->inc(out.size());
  return Status::Ok();
}

Result<std::uint64_t> FamService::fetch_add(sim::VirtualClock& clock,
                                            int caller_node,
                                            const Descriptor& d,
                                            std::uint64_t offset,
                                            std::uint64_t delta) {
  MutexLock lock(mutex_);
  if (offset % 8 != 0) return Status::InvalidArgument("unaligned fam atomic");
  if (Status st = check(d, offset, 8); !st.ok()) return st;
  auto& region =
      servers_[static_cast<std::size_t>(d.server)].regions.at(d.region);
  std::uint64_t old = 0;
  std::memcpy(&old, region.data.data() + offset, 8);
  std::uint64_t updated = old + delta;
  std::memcpy(region.data.data() + offset, &updated, 8);
  clock.advance(transfer_cost(caller_node, d.server, 8) * 2);  // round trip
  atomics_total_->inc();
  return old;
}

Result<std::uint64_t> FamService::compare_swap(sim::VirtualClock& clock,
                                               int caller_node,
                                               const Descriptor& d,
                                               std::uint64_t offset,
                                               std::uint64_t expected,
                                               std::uint64_t desired) {
  MutexLock lock(mutex_);
  if (offset % 8 != 0) return Status::InvalidArgument("unaligned fam atomic");
  if (Status st = check(d, offset, 8); !st.ok()) return st;
  auto& region =
      servers_[static_cast<std::size_t>(d.server)].regions.at(d.region);
  std::uint64_t old = 0;
  std::memcpy(&old, region.data.data() + offset, 8);
  if (old == expected) {
    std::memcpy(region.data.data() + offset, &desired, 8);
  }
  clock.advance(transfer_cost(caller_node, d.server, 8) * 2);
  atomics_total_->inc();
  return old;
}

std::uint64_t FamService::used_bytes(int server) const {
  MutexLock lock(mutex_);
  return servers_[static_cast<std::size_t>(server)].used;
}

void FamService::fail_server(int server) {
  server_failures_total_->inc();
  MutexLock lock(mutex_);
  auto& s = servers_[static_cast<std::size_t>(server)];
  s.alive = false;
  s.regions.clear();
  s.used = 0;
  // Name records for lost allocations are dropped so the names can be
  // re-allocated after recovery. Descriptors clients still hold dangle and
  // fail at access time — matching real FAM semantics.
  for (auto it = names_.begin(); it != names_.end();) {
    if (it->second.server == server) {
      it = names_.erase(it);
    } else {
      ++it;
    }
  }
}

void FamService::recover_server(int server) {
  MutexLock lock(mutex_);
  servers_[static_cast<std::size_t>(server)].alive = true;
}

bool FamService::server_alive(int server) const {
  MutexLock lock(mutex_);
  return servers_[static_cast<std::size_t>(server)].alive;
}

}  // namespace ids::fam
