#pragma once

// OpenFAM-style disaggregated memory (§3.3).
//
// The paper's global cache moves data over RDMA through OpenFAM: named
// allocations on memory servers, descriptor-based put/get, and lightweight
// atomics (the OpenSHMEM-modelled API). This module reproduces that
// surface: FamService owns a set of memory servers (each mapped to a
// cluster node id), allocations are named regions with capacity
// accounting, and every data operation charges the caller's virtual clock
// with the alpha-beta cost of the transfer (intra-node when caller and
// server share a node, fabric otherwise).
//
// Server failure drops the server's contents (fabric-attached memory in
// this prototype is not persistent) — exactly the failure model the cache
// layer must tolerate by re-populating from backing storage.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "sim/fabric.h"
#include "sim/virtual_clock.h"
#include "telemetry/metrics.h"

namespace ids::fam {

/// Identifies one allocation; opaque to clients, like an OpenFAM
/// Fam_Descriptor.
struct Descriptor {
  int server = -1;
  std::uint64_t region = 0;
  std::uint64_t size = 0;

  bool valid() const { return server >= 0; }
};

struct FamOptions {
  /// Cluster node id of each memory server (index = server id).
  std::vector<int> server_nodes;
  std::uint64_t server_capacity_bytes = 64ull << 20;
  sim::FabricParams fabric;
  /// Registry the service reports ids_fam_* metrics into; nullptr means
  /// telemetry::MetricsRegistry::global().
  telemetry::MetricsRegistry* metrics = nullptr;
};

class FamService {
 public:
  explicit FamService(FamOptions options);

  // Server count and node mapping are fixed at construction, so these read
  // the immutable options rather than the guarded server table.
  int num_servers() const {
    return static_cast<int>(options_.server_nodes.size());
  }
  int server_node(int server) const {
    return options_.server_nodes[static_cast<std::size_t>(server)];
  }

  /// Allocates `size` bytes under `name` on `preferred_server` (or the
  /// least-loaded live server when -1). Fails with kResourceExhausted when
  /// no live server has room, kAlreadyExists on a name collision.
  Result<Descriptor> allocate(std::string_view name, std::uint64_t size,
                              int preferred_server = -1) IDS_EXCLUDES(mutex_);

  /// Frees the named allocation (no-op cost; metadata only).
  Status deallocate(std::string_view name) IDS_EXCLUDES(mutex_);

  /// Finds an existing allocation by name.
  Result<Descriptor> lookup(std::string_view name) const IDS_EXCLUDES(mutex_);

  /// Writes `data` at `offset` within the allocation, charging `clock`
  /// with the transfer cost from `caller_node` to the owning server.
  Status put(sim::VirtualClock& clock, int caller_node, const Descriptor& d,
             std::uint64_t offset, std::span<const std::byte> data)
      IDS_EXCLUDES(mutex_);

  /// Reads `out.size()` bytes at `offset`, charging `clock` likewise.
  Status get(sim::VirtualClock& clock, int caller_node, const Descriptor& d,
             std::uint64_t offset, std::span<std::byte> out) const
      IDS_EXCLUDES(mutex_);

  /// Atomic fetch-and-add on a 64-bit word at `offset` (must be 8-aligned).
  /// Charges one small-message round trip.
  Result<std::uint64_t> fetch_add(sim::VirtualClock& clock, int caller_node,
                                  const Descriptor& d, std::uint64_t offset,
                                  std::uint64_t delta) IDS_EXCLUDES(mutex_);

  /// Atomic compare-and-swap; returns the previous value.
  Result<std::uint64_t> compare_swap(sim::VirtualClock& clock, int caller_node,
                                     const Descriptor& d, std::uint64_t offset,
                                     std::uint64_t expected,
                                     std::uint64_t desired)
      IDS_EXCLUDES(mutex_);

  std::uint64_t used_bytes(int server) const IDS_EXCLUDES(mutex_);
  std::uint64_t capacity_bytes() const { return options_.server_capacity_bytes; }

  /// Crashes a server: all its allocations disappear, capacity returns
  /// when it is recovered.
  void fail_server(int server) IDS_EXCLUDES(mutex_);
  /// Brings a failed server back empty.
  void recover_server(int server) IDS_EXCLUDES(mutex_);
  bool server_alive(int server) const IDS_EXCLUDES(mutex_);

  /// Transfer cost between a caller node and a server, exposed so the
  /// cache layer prices placements consistently.
  sim::Nanos transfer_cost(int caller_node, int server,
                           std::uint64_t bytes) const;

 private:
  struct Region {
    std::uint64_t id;
    std::uint64_t size;
    std::vector<std::byte> data;
  };
  struct Server {
    int node;
    bool alive = true;
    std::uint64_t used = 0;
    std::unordered_map<std::uint64_t, Region> regions;
  };

  Status check(const Descriptor& d, std::uint64_t offset,
               std::uint64_t len) const IDS_REQUIRES(mutex_);
  const Region* find_region(const Descriptor& d) const IDS_REQUIRES(mutex_);

  const FamOptions options_;  // immutable after construction

  // ids_fam_* instruments, resolved once at construction (lock-free on
  // the data path; counted only for operations that succeed).
  telemetry::Counter* puts_total_;
  telemetry::Counter* gets_total_;
  telemetry::Counter* atomics_total_;
  telemetry::Counter* written_bytes_total_;
  telemetry::Counter* read_bytes_total_;
  telemetry::Counter* alloc_failures_total_;
  telemetry::Counter* server_failures_total_;

  mutable Mutex mutex_;
  std::vector<Server> servers_ IDS_GUARDED_BY(mutex_);
  std::unordered_map<std::string, Descriptor> names_ IDS_GUARDED_BY(mutex_);
  std::uint64_t next_region_ IDS_GUARDED_BY(mutex_) = 1;
};

}  // namespace ids::fam
