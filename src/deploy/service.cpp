#include "deploy/service.h"

#include "common/strings.h"
#include "models/dtba.h"

namespace ids::deploy {

IdsSession::IdsSession(core::EngineOptions options, int num_shards) {
  triples_ = std::make_unique<graph::TripleStore>(num_shards);
  features_ = std::make_unique<store::FeatureStore>(num_shards);
  keywords_ = std::make_unique<store::InvertedIndex>();
  vectors_ = std::make_unique<store::VectorStore>(
      num_shards, static_cast<int>(models::DtbaModel::kProteinDims));
  engine_ = std::make_unique<core::IdsEngine>(options, triples_.get(),
                                              features_.get(), keywords_.get(),
                                              vectors_.get());
  for (int n = 0; n < options.topology.num_nodes; ++n) {
    agents_.push_back(std::make_unique<DatastoreAgent>(n));
    agents_.back()->log("agent", "backend shard group online");
  }
}

Result<SessionId> DatastoreLauncher::launch(core::EngineOptions options) {
  if (options.topology.num_ranks() <= 0) {
    return Status::InvalidArgument("topology has no ranks");
  }
  auto session = std::make_unique<IdsSession>(options,
                                              options.topology.num_ranks());
  MutexLock lock(mutex_);
  SessionId id = next_id_++;
  session->agent(0).log("launcher",
                        "session " + std::to_string(id) +
                            " launched; query/update endpoint open");
  sessions_.emplace(id, std::move(session));
  return id;
}

Status DatastoreLauncher::teardown(SessionId id) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + std::to_string(id));
  }
  sessions_.erase(it);
  return Status::Ok();
}

IdsSession* DatastoreLauncher::session(SessionId id) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::size_t DatastoreLauncher::active_sessions() const {
  MutexLock lock(mutex_);
  return sessions_.size();
}

bool DatastoreClient::connected() const { return session() != nullptr; }

Result<core::QueryResult> DatastoreClient::query(std::string_view text) {
  IdsSession* s = session();
  if (!s) return Status::Unavailable("session torn down");
  ASSIGN_OR_RETURN(core::Query parsed,
                   core::parse_query(text, &s->triples().dict()));
  s->agent(0).log("client", "query accepted");
  s->freeze_stores();
  core::QueryResult r = s->engine().execute(parsed);
  s->agent(0).log("backend",
                  "query done: " + std::to_string(r.solutions.num_rows()) +
                      " rows in " + format_seconds(r.total_seconds) + " s");
  return r;
}

Result<core::QueryResult> DatastoreClient::execute(const core::Query& q) {
  IdsSession* s = session();
  if (!s) return Status::Unavailable("session torn down");
  s->freeze_stores();
  return s->engine().execute(q);
}

Status DatastoreClient::update(const std::vector<TripleUpdate>& triples) {
  IdsSession* s = session();
  if (!s) return Status::Unavailable("session torn down");
  s->triples().reopen();
  for (const auto& t : triples) {
    s->triples().add(t.subject, t.predicate, t.object);
  }
  s->triples().finalize();
  s->agent(0).log("backend",
                  "update ingested: " + std::to_string(triples.size()) +
                      " triples (indexes rebuilt)");
  return Status::Ok();
}

Status DatastoreClient::import_udf(std::string module, std::string method,
                                   udf::UdfFn fn, sim::Nanos load_cost) {
  IdsSession* s = session();
  if (!s) return Status::Unavailable("session torn down");
  s->engine().registry().register_dynamic(module, method, std::move(fn),
                                          load_cost);
  // Every node's agent imports the user code (§2.2: agents "import new
  // user codes").
  for (int n = 0; n < s->num_nodes(); ++n) {
    s->agent(n).log("agent", "imported user module " + module);
  }
  return Status::Ok();
}

Status DatastoreClient::reload_module(std::string_view module) {
  IdsSession* s = session();
  if (!s) return Status::Unavailable("session torn down");
  s->engine().registry().force_reload(module);
  s->agent(0).log("backend",
                  "module " + std::string(module) +
                      " invalidated; reload on next use per rank");
  return Status::Ok();
}

std::vector<LogEntry> DatastoreClient::fetch_logs() {
  IdsSession* s = session();
  if (!s) return {};
  std::vector<LogEntry> out;
  for (int n = 0; n < s->num_nodes(); ++n) {
    auto part = s->agent(n).drain();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace ids::deploy
