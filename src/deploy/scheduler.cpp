#include "deploy/scheduler.h"

#include <algorithm>
#include <limits>

namespace ids::deploy {

namespace {

/// Modeled fetch seconds for `task` if placed on `node`. Absent objects
/// (recompute sentinel) contribute a large fixed penalty so they do not
/// dominate placement.
double task_cost_on(const cache::CacheManager& cache, const TaskSpec& task,
                    int node) {
  double total = 0.0;
  for (const auto& obj : task.objects) {
    sim::Nanos c = cache.estimated_get_cost(node, obj);
    if (c == std::numeric_limits<sim::Nanos>::max()) {
      total += 1.0;  // absent everywhere: recompute penalty, node-agnostic
    } else {
      total += sim::to_seconds(c);
    }
  }
  return total;
}

}  // namespace

Placement schedule_by_locality(const cache::CacheManager& cache,
                               const std::vector<TaskSpec>& tasks,
                               const SchedulerOptions& options) {
  Placement placement;
  const int nodes = cache.config().num_nodes;
  std::vector<int> load(static_cast<std::size_t>(nodes), 0);

  // Largest tasks first, ties by id for determinism.
  std::vector<const TaskSpec*> order;
  order.reserve(tasks.size());
  for (const auto& t : tasks) order.push_back(&t);
  std::sort(order.begin(), order.end(),
            [](const TaskSpec* a, const TaskSpec* b) {
              if (a->objects.size() != b->objects.size()) {
                return a->objects.size() > b->objects.size();
              }
              return a->id < b->id;
            });

  for (const TaskSpec* task : order) {
    int best_node = -1;
    double best_cost = 0.0;
    for (int n = 0; n < nodes; ++n) {
      if (options.slots_per_node > 0 &&
          load[static_cast<std::size_t>(n)] >= options.slots_per_node) {
        continue;
      }
      double c = task_cost_on(cache, *task, n);
      if (best_node < 0 || c < best_cost) {
        best_node = n;
        best_cost = c;
      }
    }
    if (best_node < 0) best_node = 0;  // over-subscribed: spill to node 0
    placement.node_of_task[task->id] = best_node;
    ++load[static_cast<std::size_t>(best_node)];
    placement.transfer_seconds += best_cost;
  }

  // Locality-blind baseline: round-robin in input order.
  int rr = 0;
  for (const auto& task : tasks) {
    placement.round_robin_seconds += task_cost_on(cache, task, rr);
    rr = (rr + 1) % nodes;
  }
  return placement;
}

}  // namespace ids::deploy
