#pragma once

// Deployment components (§2.2).
//
// The paper's IDS framework consists of a *Datastore Launcher* (launch,
// open the query/update endpoint, tear down), a *Datastore Client*
// (submit queries/updates, fetch logs, add user codes), a per-node
// *Datastore Agent* (cooperates in launch/teardown, log retrieval, code
// import), and the CGE-based backend. This module reproduces that
// life-cycle around the in-process engine: sessions are launched against
// a topology, queries arrive as text (parsed by core/parser) or as ASTs,
// updates ingest triples into a running instance, and dynamic UDF modules
// can be imported and force-reloaded at runtime — each action logged by
// the responsible node's agent.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "core/engine.h"
#include "core/parser.h"

namespace ids::deploy {

struct LogEntry {
  int node = -1;          // -1 = launcher itself
  std::string component;  // "launcher", "agent", "client", "backend"
  std::string message;
};

/// Per-node agent: executes launch/teardown steps on its node and records
/// what happened there.
class DatastoreAgent {
 public:
  explicit DatastoreAgent(int node) : node_(node) {}

  int node() const { return node_; }

  void log(std::string_view component, std::string message)
      IDS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    entries_.push_back(LogEntry{node_, std::string(component),
                                std::move(message)});
  }

  /// Returns and clears the buffered log entries.
  std::vector<LogEntry> drain() IDS_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    std::vector<LogEntry> out = std::move(entries_);
    entries_.clear();
    return out;
  }

 private:
  int node_;
  Mutex mutex_;
  std::vector<LogEntry> entries_ IDS_GUARDED_BY(mutex_);
};

/// A running IDS instance: stores + engine + per-node agents.
class IdsSession {
 public:
  IdsSession(core::EngineOptions options, int num_shards);

  graph::TripleStore& triples() { return *triples_; }
  store::FeatureStore& features() { return *features_; }
  store::InvertedIndex& keywords() { return *keywords_; }
  store::VectorStore& vectors() { return *vectors_; }

  /// Seals every store (ingest→serve epoch transition); idempotent. The
  /// client calls this before each query, so sessions may ingest through
  /// the store accessors freely between queries.
  void freeze_stores() {
    triples_->finalize();
    features_->freeze();
    keywords_->freeze();
  }

  /// Returns every store to the ingest phase (the update endpoint and
  /// bulk loads). Callers own quiescence: no queries in flight until the
  /// next freeze_stores().
  void reopen_stores() {
    triples_->reopen();
    features_->reopen();
    keywords_->reopen();
  }
  core::IdsEngine& engine() { return *engine_; }
  DatastoreAgent& agent(int node) { return *agents_[static_cast<std::size_t>(node)]; }
  int num_nodes() const { return static_cast<int>(agents_.size()); }

 private:
  std::unique_ptr<graph::TripleStore> triples_;
  std::unique_ptr<store::FeatureStore> features_;
  std::unique_ptr<store::InvertedIndex> keywords_;
  std::unique_ptr<store::VectorStore> vectors_;
  std::unique_ptr<core::IdsEngine> engine_;
  std::vector<std::unique_ptr<DatastoreAgent>> agents_;
};

using SessionId = std::uint64_t;

/// The launcher owns sessions: launch brings the backend up across the
/// topology's nodes (one agent per node), teardown destroys it.
class DatastoreLauncher {
 public:
  /// Launches a session across the options' topology (one agent per
  /// node; one store shard per rank) and opens its query/update endpoint.
  Result<SessionId> launch(core::EngineOptions options) IDS_EXCLUDES(mutex_);

  Status teardown(SessionId id) IDS_EXCLUDES(mutex_);

  /// nullptr if the session does not exist (e.g. torn down). The pointee
  /// stays valid until teardown(id) — callers must not race a query
  /// against teardown of the same session.
  IdsSession* session(SessionId id) IDS_EXCLUDES(mutex_);

  std::size_t active_sessions() const IDS_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::uint64_t next_id_ IDS_GUARDED_BY(mutex_) = 1;
  std::unordered_map<SessionId, std::unique_ptr<IdsSession>> sessions_
      IDS_GUARDED_BY(mutex_);
};

/// One fact for the update endpoint.
struct TripleUpdate {
  std::string subject, predicate, object;
};

/// The client talks to a launched session: text queries, updates, dynamic
/// UDF import, log retrieval.
class DatastoreClient {
 public:
  DatastoreClient(DatastoreLauncher* launcher, SessionId id)
      : launcher_(launcher), id_(id) {}

  bool connected() const;

  /// Parses and executes a text query against the session.
  Result<core::QueryResult> query(std::string_view text);

  /// Executes a prebuilt AST query.
  Result<core::QueryResult> execute(const core::Query& q);

  /// Ingests facts into the running instance (reopens the triple store,
  /// adds, and re-finalizes — the ingest→serve epoch round trip).
  Status update(const std::vector<TripleUpdate>& triples);

  /// Imports (or replaces) a dynamic UDF — the paper's Python-module
  /// import path. `load_cost` models the module import time per rank.
  Status import_udf(std::string module, std::string method, udf::UdfFn fn,
                    sim::Nanos load_cost);

  /// Forces a module reload so edited user code takes effect (§2.3).
  Status reload_module(std::string_view module);

  /// Collects and clears logs from every node's agent.
  std::vector<LogEntry> fetch_logs();

 private:
  IdsSession* session() const { return launcher_->session(id_); }

  DatastoreLauncher* launcher_;
  SessionId id_;
};

}  // namespace ids::deploy
