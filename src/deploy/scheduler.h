#pragma once

// Locality-aware task placement (§8, "Opportunities and Next Steps").
//
// The paper hypothesizes: "With our cache's ability to answer questions
// about data locality, custom scheduling algorithms can be developed that
// place IDS's MPI ranks on compute nodes closer to the data they require."
// This scheduler implements that idea: tasks declare the cached objects
// they will read; placement greedily assigns each task to the node where
// its inputs are cheapest to fetch (per the cache's locality/cost query),
// subject to a per-node slot capacity. The result reports the modeled
// transfer time against a locality-blind round-robin baseline.

#include <string>
#include <unordered_map>
#include <vector>

#include "cache/manager.h"

namespace ids::deploy {

struct TaskSpec {
  std::string id;
  std::vector<std::string> objects;  // cache object names the task reads
};

struct SchedulerOptions {
  /// Tasks a node can host; <= 0 means unbounded.
  int slots_per_node = 0;
};

struct Placement {
  std::unordered_map<std::string, int> node_of_task;
  /// Modeled aggregate fetch time of this placement.
  double transfer_seconds = 0.0;
  /// Modeled aggregate fetch time of round-robin placement (baseline).
  double round_robin_seconds = 0.0;

  double improvement() const {
    return transfer_seconds > 0.0 ? round_robin_seconds / transfer_seconds
                                  : 1.0;
  }
};

/// Greedy locality-aware placement over the cache's current copy map.
/// Tasks with the most input data are placed first (they have the most to
/// lose from a bad slot). Deterministic.
Placement schedule_by_locality(const cache::CacheManager& cache,
                               const std::vector<TaskSpec>& tasks,
                               const SchedulerOptions& options = {});

}  // namespace ids::deploy
