#pragma once

// Lightweight Status / Result<T> types used across the IDS codebase.
//
// We deliberately avoid exceptions on hot paths (query execution, cache
// lookups); fallible operations return Result<T> and callers decide how to
// react. Construction failures of whole subsystems may still throw.

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace ids {

/// Error category for Status. Kept coarse on purpose: callers branch on
/// "kind of failure", detailed context goes in the message.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode.
constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A cheap, copyable success/error value. OK statuses carry no allocation.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" — for logs and test failure output.
  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(ids::to_string(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a Status explaining why there is none.
/// Accessing value() on an error aborts in debug builds; check ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace ids
