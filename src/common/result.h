#pragma once

// Lightweight Status / Result<T> types used across the IDS codebase.
//
// We deliberately avoid exceptions on hot paths (query execution, cache
// lookups); fallible operations return Result<T> and callers decide how to
// react. Construction failures of whole subsystems may still throw.
//
// Error discipline (machine-checked by tools/analyzer and the compiler's
// [[nodiscard]] diagnostics):
//   - every returned Status / Result must be consumed; an intentional
//     discard is spelled IDS_IGNORE_ERROR(expr) so reviewers and the
//     analyzer can find it,
//   - value() may only be reached after an ok() check — on an error it
//     hard-aborts with the carried Status in every build type (never UB),
//   - propagation is RETURN_IF_ERROR(expr) for Status expressions and
//     ASSIGN_OR_RETURN(lhs, expr) for Result expressions.

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace ids {

/// Error category for Status. Kept coarse on purpose: callers branch on
/// "kind of failure", detailed context goes in the message.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode.
constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A cheap, copyable success/error value. OK statuses carry no allocation.
/// [[nodiscard]]: dropping a Status on the floor silently swallows the
/// error; wrap genuinely-ignorable calls in IDS_IGNORE_ERROR.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" — for logs and test failure output.
  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(ids::to_string(code_)) + ": " + message_;
  }

  /// Full equality: code AND message. Two failures of the same kind but
  /// with different contexts are different statuses; callers that only
  /// care about the category compare code() directly (or use code_equals).
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

  /// Category-only comparison (the pre-equality-fix semantics, kept for
  /// callers that explicitly want to ignore the message).
  bool code_equals(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a Status explaining why there is none.
/// Accessing value() on an error aborts — in every build type — with the
/// carried Status message; check ok() first (tools/analyzer enforces a
/// dominating ok() check on every value() access).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    IDS_CHECK(!std::get<Status>(data_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    check_ok();
    return std::get<T>(data_);
  }
  T& value() & {
    check_ok();
    return std::get<T>(data_);
  }
  T&& value() && {
    check_ok();
    return std::get<T>(std::move(data_));
  }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  /// Hard failure path shared by the value() overloads: a value() access
  /// on an error is a caller bug, and must not become UB when NDEBUG
  /// compiles assertions out (it used to).
  void check_ok() const {
    IDS_CHECK(ok()) << "Result::value() on error: "
                    << std::get<Status>(data_).to_string();
  }

  std::variant<T, Status> data_;
};

namespace internal {
/// Sink for IDS_IGNORE_ERROR: consumes the [[nodiscard]] value by
/// receiving it as an argument.
template <typename T>
inline void ignore_error(T&&) {}
}  // namespace internal

/// The one sanctioned way to discard a Status/Result return value.
/// Greppable, and recognized as consumption by tools/analyzer — a bare
/// discard (even `(void)`) is a build/analyzer error.
#define IDS_IGNORE_ERROR(expr) ::ids::internal::ignore_error((expr))

#define IDS_STATUS_CONCAT_INNER(a, b) a##b
#define IDS_STATUS_CONCAT(a, b) IDS_STATUS_CONCAT_INNER(a, b)

/// Evaluates a Status expression; returns it from the enclosing function
/// if it is an error.
#define RETURN_IF_ERROR(expr)                              \
  do {                                                     \
    ::ids::Status ids_status_tmp_ = (expr);                \
    if (!ids_status_tmp_.ok()) return ids_status_tmp_;     \
  } while (0)

/// Evaluates a Result expression; on error returns its Status from the
/// enclosing function, otherwise moves the value into `lhs` (which may be
/// a declaration: ASSIGN_OR_RETURN(auto v, Compute())).
#define ASSIGN_OR_RETURN(lhs, expr)                                        \
  auto IDS_STATUS_CONCAT(ids_result_, __LINE__) = (expr);                  \
  if (!IDS_STATUS_CONCAT(ids_result_, __LINE__).ok())                      \
    return IDS_STATUS_CONCAT(ids_result_, __LINE__).status();              \
  lhs = std::move(IDS_STATUS_CONCAT(ids_result_, __LINE__)).value()

}  // namespace ids
