#pragma once

// Small string utilities used by the query parser, data generator, and
// benchmark table printers.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ids {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on any whitespace run; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Formats a byte count as e.g. "12.7 TB" (powers of 1000, one decimal,
/// matching the paper's Table 1 style).
std::string human_bytes(std::uint64_t bytes);

/// Formats a count as e.g. "87.6 Billion" / "539 Million" (Table 1 style).
std::string human_count(std::uint64_t n);

/// Formats seconds with two decimals, e.g. "47.49".
std::string format_seconds(double s);

}  // namespace ids
