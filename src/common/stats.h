#pragma once

// Streaming statistics accumulator used by the UDF profiler, benchmark
// reports, and cache instrumentation.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace ids {

/// Accumulates count/min/max/mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    // Welford's online algorithm.
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    double delta = other.mean_ - mean_;
    std::size_t total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = total;
  }

  std::size_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// One-line summary (`n=5 mean=1.2 min=0.5 max=2 sd=0.6`) for text
  /// reports — telemetry::Tracer::to_text_report() builds on this.
  std::string to_string() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "n=%zu mean=%.6g min=%.6g max=%.6g sd=%.6g",
                  n_, mean(), min(), max(), stddev());
    return buf;
  }

 private:
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Stores samples to answer percentile queries; for small sample sets
/// (per-bench, per-query) where memory is irrelevant.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  /// p in [0, 1]; linearly interpolated percentile. Returns 0 when empty.
  /// Sorts the sample buffer lazily on first query and memoizes — the
  /// mutation is invisible to callers (answers are identical), which is
  /// why a const overload below can exist alongside it.
  double percentile(double p) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    return percentile_sorted(samples_, p);
  }

  /// Const-correct overload for callers holding a `const SampleSet&`.
  /// When the lazy-sorted cache is stale this sorts a copy: O(n log n)
  /// per call with no memoization, so prefer the non-const overload on
  /// repeated queries.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    if (sorted_) return percentile_sorted(samples_, p);
    std::vector<double> copy(samples_);
    std::sort(copy.begin(), copy.end());
    return percentile_sorted(copy, p);
  }

  double median() { return percentile(0.5); }
  double median() const { return percentile(0.5); }

 private:
  static double percentile_sorted(const std::vector<double>& sorted,
                                  double p) {
    double rank = p * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace ids
