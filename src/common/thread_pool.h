#pragma once

// Fixed-size worker pool with a blocking parallel_for.
//
// The pool executes the *real* computation of simulated ranks (the virtual
// clock handles *modeled* time; see src/sim). On a single-core container
// the pool degrades gracefully to near-serial execution without changing
// any result: work items are deterministic functions of their index.
//
// Locking contract: mutex_ guards the task queue and the stopping flag;
// cv_ signals queue-not-empty / shutdown. parallel_for synchronizes
// completion through a stack-allocated std::latch counting chunk exits,
// acquired under no lock, so pool-wide and per-call synchronization can
// never deadlock against each other.

// Telemetry: every pool reports into telemetry::MetricsRegistry::global()
// — ids_threadpool_queue_depth (gauge), ids_threadpool_tasks_total
// (counter), and ids_threadpool_task_{wait,run}_seconds (histograms of
// host wall time spent queued vs. executing).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "telemetry/metrics.h"

namespace ids {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), distributing indices over the workers and
  /// the calling thread. Blocks until every index has completed. fn must be
  /// safe to call concurrently for distinct indices.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      IDS_EXCLUDES(mutex_);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueued_ns = 0;
  };

  void worker_loop() IDS_EXCLUDES(mutex_);
  void run_task(Task task);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<Task> tasks_ IDS_GUARDED_BY(mutex_);
  bool stopping_ IDS_GUARDED_BY(mutex_) = false;

  // Resolved once at construction; the instruments live in the global
  // registry (never destroyed), so raw pointers are safe for the pool's
  // lifetime and the hot path touches only atomics.
  telemetry::Gauge* queue_depth_;
  telemetry::Counter* tasks_total_;
  telemetry::Histogram* task_wait_seconds_;
  telemetry::Histogram* task_run_seconds_;
};

}  // namespace ids
