#pragma once

// Fixed-size worker pool with a blocking parallel_for.
//
// The pool executes the *real* computation of simulated ranks (the virtual
// clock handles *modeled* time; see src/sim). On a single-core container
// the pool degrades gracefully to near-serial execution without changing
// any result: work items are deterministic functions of their index.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ids {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), distributing indices over the workers and
  /// the calling thread. Blocks until every index has completed. fn must be
  /// safe to call concurrently for distinct indices.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

}  // namespace ids
