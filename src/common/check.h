#pragma once

// Invariant checking that survives Release builds.
//
// The IDS engine runs long multi-stage workflows where a silently violated
// invariant in one operator corrupts every downstream stage; `assert()`
// compiles out under NDEBUG and turns those violations into undefined
// behavior. These macros never compile out the failure path:
//
//   IDS_CHECK(cond)  — checked in every build type. On failure prints
//                      file:line, the failed expression, and any streamed
//                      message to stderr, then aborts.
//   IDS_DCHECK(cond) — debug-only cost: the condition is not evaluated
//                      under NDEBUG (it must still compile). Reserve for
//                      per-row hot-path checks where the predicate itself
//                      is too expensive to run in Release.
//
// Both accept a streamed message: IDS_CHECK(rank >= 0) << "rank " << rank;
// For *recoverable* conditions (malformed input, missing cache entries)
// return a Status from common/result.h instead of aborting — see the
// "Static analysis & error discipline" section of DESIGN.md.
//
// tools/lint.sh and tools/analyzer ban bare assert() in src/ in favor of
// these macros.

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ids::internal {

/// Accumulates the streamed failure message; prints and aborts in its
/// destructor. Constructed only on the failure path, so the macros cost one
/// branch when the condition holds.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << ": IDS_CHECK(" << expr << ") failed";
  }
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  ~CheckFailure() {
    const std::string msg = stream_.str();
    std::fprintf(stderr, "%s\n", msg.c_str());
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    if (!streamed_) {
      stream_ << ": ";
      streamed_ = true;
    }
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
  bool streamed_ = false;
};

}  // namespace ids::internal

/// Aborts (in every build type) with file:line + message when `cond` is
/// false. The while-loop form makes the trailing `<< ...` message stream
/// part of the (never-looping) body, evaluated only on failure.
#define IDS_CHECK(cond) \
  while (!(cond)) ::ids::internal::CheckFailure(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
/// Compiled but never evaluated in Release: `false &&` short-circuits, so
/// the predicate costs nothing yet still type-checks and odr-uses its
/// operands (no -Wunused fallout for debug-only locals).
#define IDS_DCHECK(cond) \
  while (false && !(cond)) \
  ::ids::internal::CheckFailure(__FILE__, __LINE__, #cond)
#else
#define IDS_DCHECK(cond) IDS_CHECK(cond)
#endif
