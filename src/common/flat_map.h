#pragma once

// Flat open-addressing hash containers for engine hot paths.
//
// The hash-join build side and DISTINCT previously used node-based std::
// containers (std::unordered_multimap / std::unordered_map) whose
// per-element allocations and pointer chasing dominated the operator inner
// loops. These replacements are contiguous power-of-two tables probed
// linearly after a mix64 of the key. Both preserve insertion order where
// it is observable (group contents, first-wins semantics), so switching
// the engine onto them cannot change query results.

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace ids {

/// Build-once multimap from 64-bit keys to the positions at which they
/// occur: `FlatGroupIndex idx(keys); idx.probe(k)` spans the positions i
/// (in ascending order) with keys[i] == k. The classic radix-join layout:
/// one probe pass over an open-addressing slot table resolves the group,
/// and the group's rows sit contiguously in one array (counting sort by
/// first-occurrence group id).
class FlatGroupIndex {
 public:
  explicit FlatGroupIndex(std::span<const std::uint64_t> keys) {
    const std::size_t n = keys.size();
    IDS_CHECK(n < 0xffffffffull) << "row index space is 32-bit";
    if (n == 0) return;
    std::size_t cap = 8;
    while (cap < n * 2) cap <<= 1;
    mask_ = cap - 1;
    slot_keys_.resize(cap);
    slot_groups_.assign(cap, kEmpty);

    // Pass 1: assign group ids in first-occurrence order and count sizes.
    std::vector<std::uint32_t> row_group(n);
    std::vector<std::uint32_t> counts;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = keys[i];
      std::size_t s = mix64(key) & mask_;
      while (slot_groups_[s] != kEmpty && slot_keys_[s] != key) {
        s = (s + 1) & mask_;
      }
      if (slot_groups_[s] == kEmpty) {
        slot_keys_[s] = key;
        slot_groups_[s] = static_cast<std::uint32_t>(counts.size());
        counts.push_back(0);
      }
      row_group[i] = slot_groups_[s];
      ++counts[row_group[i]];
    }

    // Pass 2: prefix-sum group extents, then scatter rows in input order.
    starts_.resize(counts.size() + 1);
    starts_[0] = 0;
    for (std::size_t g = 0; g < counts.size(); ++g) {
      starts_[g + 1] = starts_[g] + counts[g];
    }
    rows_.resize(n);
    std::vector<std::uint32_t> cursor(starts_.begin(), starts_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      rows_[cursor[row_group[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  /// Positions of `key` in the build keys, ascending; empty when absent.
  std::span<const std::uint32_t> probe(std::uint64_t key) const {
    if (rows_.empty()) return {};
    std::size_t s = mix64(key) & mask_;
    while (slot_groups_[s] != kEmpty) {
      if (slot_keys_[s] == key) {
        const std::uint32_t g = slot_groups_[s];
        return {rows_.data() + starts_[g],
                static_cast<std::size_t>(starts_[g + 1] - starts_[g])};
      }
      s = (s + 1) & mask_;
    }
    return {};
  }

  std::size_t num_keys() const {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }
  std::size_t num_rows() const { return rows_.size(); }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  std::size_t mask_ = 0;
  std::vector<std::uint64_t> slot_keys_;
  std::vector<std::uint32_t> slot_groups_;  // kEmpty = vacant slot
  std::vector<std::uint32_t> rows_;         // grouped row positions
  std::vector<std::uint32_t> starts_;       // group g occupies [g, g+1)
};

/// Open-addressing set of 64-bit keys. insert() returns true when the key
/// was new — the only operation DISTINCT needs. Grows by rehashing at 70%
/// load; any 64-bit value (including 0 and ~0) is a valid key.
class FlatTermSet {
 public:
  explicit FlatTermSet(std::size_t expected = 0) {
    std::size_t cap = 16;
    while (cap * 7 < expected * 10) cap <<= 1;
    keys_.resize(cap);
    used_.assign(cap, 0);
    mask_ = cap - 1;
  }

  bool insert(std::uint64_t key) {
    if ((size_ + 1) * 10 > keys_.size() * 7) grow();
    std::size_t s = mix64(key) & mask_;
    while (used_[s]) {
      if (keys_[s] == key) return false;
      s = (s + 1) & mask_;
    }
    used_[s] = 1;
    keys_[s] = key;
    ++size_;
    return true;
  }

  bool contains(std::uint64_t key) const {
    std::size_t s = mix64(key) & mask_;
    while (used_[s]) {
      if (keys_[s] == key) return true;
      s = (s + 1) & mask_;
    }
    return false;
  }

  std::size_t size() const { return size_; }

 private:
  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<char> old_used = std::move(used_);
    const std::size_t cap = old_keys.size() * 2;
    keys_.assign(cap, 0);
    used_.assign(cap, 0);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t s = mix64(old_keys[i]) & mask_;
      while (used_[s]) s = (s + 1) & mask_;
      used_[s] = 1;
      keys_[s] = old_keys[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<char> used_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace ids
