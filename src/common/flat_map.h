#pragma once

// Flat open-addressing hash containers for engine hot paths.
//
// The hash-join build side and DISTINCT previously used node-based std::
// containers (std::unordered_multimap / std::unordered_map) whose
// per-element allocations and pointer chasing dominated the operator inner
// loops. These replacements are contiguous power-of-two tables, now probed
// SwissTable-style: a parallel control-byte array stores a 7-bit tag per
// slot (high bit set = vacant), and probing scans one aligned 16-slot
// group per step with `simd::group_match` — a single compare+movemask at
// SSE levels, an exact byte loop at the scalar level — so most probes
// touch one cache line of metadata before a single key compare. Both
// containers preserve insertion order where it is observable (group
// contents, first-occurrence group ids, first-wins semantics), so
// switching the engine onto them cannot change query results, and the
// probe result is identical at every SIMD dispatch level.

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/simd.h"
#include "common/thread_annotations.h"

namespace ids {

/// Build-once multimap from 64-bit keys to the positions at which they
/// occur: `FlatGroupIndex idx(keys); idx.probe(k)` spans the positions i
/// (in ascending order) with keys[i] == k. The classic radix-join layout:
/// one group-probe pass over the control bytes resolves the group, and the
/// group's rows sit contiguously in one array (counting sort by
/// first-occurrence group id).
class FlatGroupIndex {
 public:
  explicit FlatGroupIndex(std::span<const std::uint64_t> keys) {
    const std::size_t n = keys.size();
    IDS_CHECK(n < 0xffffffffull) << "row index space is 32-bit";
    if (n == 0) return;
    std::size_t cap = simd::kGroupWidth;
    while (cap < n * 2) cap <<= 1;
    group_mask_ = cap / simd::kGroupWidth - 1;
    slot_keys_.resize(cap);
    slot_groups_.resize(cap);
    ctrl_.assign(cap, simd::kCtrlEmpty);

    // Pass 1: assign group ids in first-occurrence order and count sizes.
    std::vector<std::uint32_t> row_group(n);
    std::vector<std::uint32_t> counts;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = keys[i];
      const std::uint64_t h = mix64(key);
      const auto tag = static_cast<std::uint8_t>(h >> 57);
      std::size_t gi = group_of(h);
      std::uint32_t group;
      for (;;) {
        const std::uint8_t* g = ctrl_.data() + gi * simd::kGroupWidth;
        std::uint32_t m = simd::group_match(g, tag);
        bool found = false;
        while (m != 0) {
          const std::size_t s =
              gi * simd::kGroupWidth +
              static_cast<std::size_t>(std::countr_zero(m));
          if (slot_keys_[s] == key) {
            group = slot_groups_[s];
            found = true;
            break;
          }
          m &= m - 1;
        }
        if (found) break;
        const std::uint32_t e = simd::group_match_empty(g);
        if (e != 0) {
          const std::size_t s =
              gi * simd::kGroupWidth +
              static_cast<std::size_t>(std::countr_zero(e));
          slot_keys_[s] = key;
          group = static_cast<std::uint32_t>(counts.size());
          slot_groups_[s] = group;
          ctrl_[s] = tag;
          counts.push_back(0);
          break;
        }
        gi = (gi + 1) & group_mask_;
      }
      row_group[i] = group;
      ++counts[group];
    }

    // Pass 2: prefix-sum group extents, then scatter rows in input order.
    starts_.resize(counts.size() + 1);
    starts_[0] = 0;
    for (std::size_t g = 0; g < counts.size(); ++g) {
      starts_[g + 1] = starts_[g] + counts[g];
    }
    rows_.resize(n);
    std::vector<std::uint32_t> cursor(starts_.begin(), starts_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      rows_[cursor[row_group[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  /// Positions of `key` in the build keys, ascending; empty when absent.
  std::span<const std::uint32_t> probe(std::uint64_t key) const {
    if (rows_.empty()) return {};
    const std::uint64_t h = mix64(key);
    const auto tag = static_cast<std::uint8_t>(h >> 57);
    std::size_t gi = group_of(h);
    for (;;) {
      const std::uint8_t* g = ctrl_.data() + gi * simd::kGroupWidth;
      std::uint32_t m = simd::group_match(g, tag);
      while (m != 0) {
        const std::size_t s = gi * simd::kGroupWidth +
                              static_cast<std::size_t>(std::countr_zero(m));
        if (slot_keys_[s] == key) {
          const std::uint32_t grp = slot_groups_[s];
          return {rows_.data() + starts_[grp],
                  static_cast<std::size_t>(starts_[grp + 1] - starts_[grp])};
        }
        m &= m - 1;
      }
      // Any vacancy in the group proves the key was never inserted (the
      // table has no deletions, so probe chains never shrink).
      if (simd::group_match_empty(g) != 0) return {};
      gi = (gi + 1) & group_mask_;
    }
  }

  std::size_t num_keys() const {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }
  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::size_t group_of(std::uint64_t h) const {
    return (h / simd::kGroupWidth) & group_mask_;
  }

  std::size_t group_mask_ = 0;
  std::vector<std::uint64_t> slot_keys_;
  std::vector<std::uint32_t> slot_groups_;
  std::vector<std::uint8_t> ctrl_;   // 7-bit tag, or kCtrlEmpty
  std::vector<std::uint32_t> rows_;  // grouped row positions
  std::vector<std::uint32_t> starts_;  // group g occupies [g, g+1)
};

/// Open-addressing set of 64-bit keys. insert() returns true when the key
/// was new — the only operation DISTINCT needs. Grows by rehashing at 70%
/// load; any 64-bit value (including 0 and ~0) is a valid key.
class FlatTermSet {
 public:
  explicit FlatTermSet(std::size_t expected = 0) {
    std::size_t cap = simd::kGroupWidth;
    while (cap * 7 < expected * 10) cap <<= 1;
    keys_.resize(cap);
    ctrl_.assign(cap, simd::kCtrlEmpty);
    group_mask_ = cap / simd::kGroupWidth - 1;
  }

  /// Crossing the 70% load factor rehashes into fresh storage: pointers
  /// and spans into the key array do not survive an insert.
  bool insert(std::uint64_t key) IDS_INVALIDATES(keys_) {
    if ((size_ + 1) * 10 > keys_.size() * 7) grow();
    const std::uint64_t h = mix64(key);
    const auto tag = static_cast<std::uint8_t>(h >> 57);
    std::size_t gi = (h / simd::kGroupWidth) & group_mask_;
    for (;;) {
      const std::uint8_t* g = ctrl_.data() + gi * simd::kGroupWidth;
      std::uint32_t m = simd::group_match(g, tag);
      while (m != 0) {
        const std::size_t s = gi * simd::kGroupWidth +
                              static_cast<std::size_t>(std::countr_zero(m));
        if (keys_[s] == key) return false;
        m &= m - 1;
      }
      const std::uint32_t e = simd::group_match_empty(g);
      if (e != 0) {
        const std::size_t s = gi * simd::kGroupWidth +
                              static_cast<std::size_t>(std::countr_zero(e));
        keys_[s] = key;
        ctrl_[s] = tag;
        ++size_;
        return true;
      }
      gi = (gi + 1) & group_mask_;
    }
  }

  bool contains(std::uint64_t key) const {
    const std::uint64_t h = mix64(key);
    const auto tag = static_cast<std::uint8_t>(h >> 57);
    std::size_t gi = (h / simd::kGroupWidth) & group_mask_;
    for (;;) {
      const std::uint8_t* g = ctrl_.data() + gi * simd::kGroupWidth;
      std::uint32_t m = simd::group_match(g, tag);
      while (m != 0) {
        const std::size_t s = gi * simd::kGroupWidth +
                              static_cast<std::size_t>(std::countr_zero(m));
        if (keys_[s] == key) return true;
        m &= m - 1;
      }
      if (simd::group_match_empty(g) != 0) return false;
      gi = (gi + 1) & group_mask_;
    }
  }

  std::size_t size() const { return size_; }

  /// Slot count before the next rehash moves storage; lets tests (and
  /// callers holding spans over keys_) prove an insert will not grow.
  std::size_t capacity() const { return keys_.size() * 7 / 10; }

 private:
  void grow() IDS_INVALIDATES(keys_) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    const std::size_t cap = old_keys.size() * 2;
    keys_.assign(cap, 0);
    ctrl_.assign(cap, simd::kCtrlEmpty);
    group_mask_ = cap / simd::kGroupWidth - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_ctrl[i] == simd::kCtrlEmpty) continue;
      const std::uint64_t h = mix64(old_keys[i]);
      std::size_t gi = (h / simd::kGroupWidth) & group_mask_;
      for (;;) {
        const std::uint8_t* g = ctrl_.data() + gi * simd::kGroupWidth;
        const std::uint32_t e = simd::group_match_empty(g);
        if (e != 0) {
          const std::size_t s =
              gi * simd::kGroupWidth +
              static_cast<std::size_t>(std::countr_zero(e));
          keys_[s] = old_keys[i];
          ctrl_[s] = static_cast<std::uint8_t>(h >> 57);
          break;
        }
        gi = (gi + 1) & group_mask_;
      }
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint8_t> ctrl_;  // 7-bit tag, or kCtrlEmpty
  std::size_t size_ = 0;
  std::size_t group_mask_ = 0;
};

}  // namespace ids
