// Implementation of the centralized SIMD layer. This is the only TU in the
// tree that may touch raw intrinsics (lint rule 10), and it is compiled
// with -ffp-contract=off so the scalar virtual-lane loops cannot be fused
// into FMA — the bit-identity contract across dispatch levels depends on
// every level performing the same mul-then-add per lane.

#include "common/simd.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "telemetry/metrics.h"

namespace ids::simd {

namespace detail {
std::atomic<int> g_active_level{-1};
}  // namespace detail

namespace {
// Keeps the process-wide ids_simd_level gauge (0=scalar, 1=sse4.2, 2=avx2)
// in sync with the dispatch state; called on every resolution/override.
void export_level_gauge(Level level) {
  telemetry::MetricsRegistry::global()
      .gauge("ids_simd_level")
      ->set(static_cast<double>(static_cast<int>(level)));
}
}  // namespace

Level detected_level() {
#if IDS_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
#endif
  return Level::kScalar;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse42: return "sse4.2";
    case Level::kAvx2: return "avx2";
  }
  return "scalar";
}

std::optional<Level> parse_level(std::string_view s) {
  std::string lower(s);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "scalar") return Level::kScalar;
  if (lower == "sse4.2" || lower == "sse42") return Level::kSse42;
  if (lower == "avx2") return Level::kAvx2;
  return std::nullopt;
}

Level set_level(Level level) {
  Level cap = detected_level();
  if (level > cap) level = cap;
  if (level < Level::kScalar) level = Level::kScalar;
  detail::g_active_level.store(static_cast<int>(level),
                               std::memory_order_relaxed);
  export_level_gauge(level);
  return level;
}

namespace detail {
Level init_level() {
  Level lv = detected_level();
  if (const char* env = std::getenv("IDS_SIMD_LEVEL")) {
    if (auto parsed = parse_level(env)) lv = std::min(*parsed, lv);
    // Unparseable values fall through to auto-detection: a typo in the
    // env should degrade to the safe default, not abort a query.
  }
  int expected = -1;
  g_active_level.compare_exchange_strong(expected, static_cast<int>(lv),
                                         std::memory_order_relaxed);
  const Level installed =
      static_cast<Level>(g_active_level.load(std::memory_order_relaxed));
  export_level_gauge(installed);
  return installed;
}
}  // namespace detail

namespace {

// Pinned reduction tree shared by every dispatch level. The 8 virtual
// lanes must be combined in exactly this association or the bit-identity
// contract breaks.
inline float reduce8(const float* l) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

// Scalar tail shared verbatim by all levels: element i lands in lane
// i mod 8, continuing the same per-lane add sequence as the main loop.
inline void dot_tail(const float* a, const float* b, std::size_t i,
                     std::size_t n, float* lanes) {
  for (; i < n; ++i) lanes[i & 7] += a[i] * b[i];
}

inline void l2_tail(const float* a, const float* b, std::size_t i,
                    std::size_t n, float* lanes) {
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    lanes[i & 7] += d * d;
  }
}

// ---- scalar level --------------------------------------------------------

float dot_1_scalar(const float* a, const float* b, std::size_t n) {
  float lanes[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t l = 0; l < 8; ++l) lanes[l] += a[i + l] * b[i + l];
  }
  dot_tail(a, b, i, n, lanes);
  return reduce8(lanes);
}

float l2_1_scalar(const float* a, const float* b, std::size_t n) {
  float lanes[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      const float d = a[i + l] - b[i + l];
      lanes[l] += d * d;
    }
  }
  l2_tail(a, b, i, n, lanes);
  return reduce8(lanes);
}

// 4-row register blocks share the query loads; per-row math is the exact
// per-lane sequence of the single-row kernel, so out[r] is bit-identical
// to the corresponding single-row call.
void dot_4_scalar(const float* q, const float* const* r, std::size_t n,
                  float* out) {
  float lanes[4][8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      const float qv = q[i + l];
      lanes[0][l] += qv * r[0][i + l];
      lanes[1][l] += qv * r[1][i + l];
      lanes[2][l] += qv * r[2][i + l];
      lanes[3][l] += qv * r[3][i + l];
    }
  }
  for (; i < n; ++i) {
    const float qv = q[i];
    lanes[0][i & 7] += qv * r[0][i];
    lanes[1][i & 7] += qv * r[1][i];
    lanes[2][i & 7] += qv * r[2][i];
    lanes[3][i & 7] += qv * r[3][i];
  }
  for (std::size_t k = 0; k < 4; ++k) out[k] = reduce8(lanes[k]);
}

void l2_4_scalar(const float* q, const float* const* r, std::size_t n,
                 float* out) {
  float lanes[4][8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      const float qv = q[i + l];
      const float d0 = qv - r[0][i + l];
      const float d1 = qv - r[1][i + l];
      const float d2 = qv - r[2][i + l];
      const float d3 = qv - r[3][i + l];
      lanes[0][l] += d0 * d0;
      lanes[1][l] += d1 * d1;
      lanes[2][l] += d2 * d2;
      lanes[3][l] += d3 * d3;
    }
  }
  for (; i < n; ++i) {
    const float qv = q[i];
    const float d0 = qv - r[0][i];
    const float d1 = qv - r[1][i];
    const float d2 = qv - r[2][i];
    const float d3 = qv - r[3][i];
    lanes[0][i & 7] += d0 * d0;
    lanes[1][i & 7] += d1 * d1;
    lanes[2][i & 7] += d2 * d2;
    lanes[3][i & 7] += d3 * d3;
  }
  for (std::size_t k = 0; k < 4; ++k) out[k] = reduce8(lanes[k]);
}

#if IDS_SIMD_X86

#define IDS_TARGET_AVX2 __attribute__((target("avx2")))

// ---- SSE4.2 level (SSE float math is x86-64 baseline; no attribute) -----

float dot_1_sse42(const float* a, const float* b, std::size_t n) {
  __m128 lo = _mm_setzero_ps();
  __m128 hi = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    lo = _mm_add_ps(lo, _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    hi = _mm_add_ps(
        hi, _mm_mul_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4)));
  }
  float lanes[8];
  _mm_storeu_ps(lanes, lo);
  _mm_storeu_ps(lanes + 4, hi);
  dot_tail(a, b, i, n, lanes);
  return reduce8(lanes);
}

float l2_1_sse42(const float* a, const float* b, std::size_t n) {
  __m128 lo = _mm_setzero_ps();
  __m128 hi = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 dlo = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    const __m128 dhi =
        _mm_sub_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4));
    lo = _mm_add_ps(lo, _mm_mul_ps(dlo, dlo));
    hi = _mm_add_ps(hi, _mm_mul_ps(dhi, dhi));
  }
  float lanes[8];
  _mm_storeu_ps(lanes, lo);
  _mm_storeu_ps(lanes + 4, hi);
  l2_tail(a, b, i, n, lanes);
  return reduce8(lanes);
}

void dot_4_sse42(const float* q, const float* const* r, std::size_t n,
                 float* out) {
  __m128 acc[4][2];
  for (auto& a2 : acc) a2[0] = a2[1] = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 qlo = _mm_loadu_ps(q + i);
    const __m128 qhi = _mm_loadu_ps(q + i + 4);
    for (std::size_t k = 0; k < 4; ++k) {
      acc[k][0] =
          _mm_add_ps(acc[k][0], _mm_mul_ps(qlo, _mm_loadu_ps(r[k] + i)));
      acc[k][1] =
          _mm_add_ps(acc[k][1], _mm_mul_ps(qhi, _mm_loadu_ps(r[k] + i + 4)));
    }
  }
  for (std::size_t k = 0; k < 4; ++k) {
    float lanes[8];
    _mm_storeu_ps(lanes, acc[k][0]);
    _mm_storeu_ps(lanes + 4, acc[k][1]);
    dot_tail(q, r[k], i, n, lanes);
    out[k] = reduce8(lanes);
  }
}

void l2_4_sse42(const float* q, const float* const* r, std::size_t n,
                float* out) {
  __m128 acc[4][2];
  for (auto& a2 : acc) a2[0] = a2[1] = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 qlo = _mm_loadu_ps(q + i);
    const __m128 qhi = _mm_loadu_ps(q + i + 4);
    for (std::size_t k = 0; k < 4; ++k) {
      const __m128 dlo = _mm_sub_ps(qlo, _mm_loadu_ps(r[k] + i));
      const __m128 dhi = _mm_sub_ps(qhi, _mm_loadu_ps(r[k] + i + 4));
      acc[k][0] = _mm_add_ps(acc[k][0], _mm_mul_ps(dlo, dlo));
      acc[k][1] = _mm_add_ps(acc[k][1], _mm_mul_ps(dhi, dhi));
    }
  }
  for (std::size_t k = 0; k < 4; ++k) {
    float lanes[8];
    _mm_storeu_ps(lanes, acc[k][0]);
    _mm_storeu_ps(lanes + 4, acc[k][1]);
    l2_tail(q, r[k], i, n, lanes);
    out[k] = reduce8(lanes);
  }
}

// ---- AVX2 level ----------------------------------------------------------

IDS_TARGET_AVX2 float dot_1_avx2(const float* a, const float* b,
                                 std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, acc);
  dot_tail(a, b, i, n, lanes);
  return reduce8(lanes);
}

IDS_TARGET_AVX2 float l2_1_avx2(const float* a, const float* b,
                                std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, acc);
  l2_tail(a, b, i, n, lanes);
  return reduce8(lanes);
}

IDS_TARGET_AVX2 void dot_4_avx2(const float* q, const float* const* r,
                                std::size_t n, float* out) {
  __m256 acc[4];
  for (auto& a1 : acc) a1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 qv = _mm256_loadu_ps(q + i);
    for (std::size_t k = 0; k < 4; ++k) {
      acc[k] = _mm256_add_ps(acc[k],
                             _mm256_mul_ps(qv, _mm256_loadu_ps(r[k] + i)));
    }
  }
  for (std::size_t k = 0; k < 4; ++k) {
    float lanes[8];
    _mm256_storeu_ps(lanes, acc[k]);
    dot_tail(q, r[k], i, n, lanes);
    out[k] = reduce8(lanes);
  }
}

IDS_TARGET_AVX2 void l2_4_avx2(const float* q, const float* const* r,
                               std::size_t n, float* out) {
  __m256 acc[4];
  for (auto& a1 : acc) a1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 qv = _mm256_loadu_ps(q + i);
    for (std::size_t k = 0; k < 4; ++k) {
      const __m256 d = _mm256_sub_ps(qv, _mm256_loadu_ps(r[k] + i));
      acc[k] = _mm256_add_ps(acc[k], _mm256_mul_ps(d, d));
    }
  }
  for (std::size_t k = 0; k < 4; ++k) {
    float lanes[8];
    _mm256_storeu_ps(lanes, acc[k]);
    l2_tail(q, r[k], i, n, lanes);
    out[k] = reduce8(lanes);
  }
}

#endif  // IDS_SIMD_X86

// ---- level → kernel table ------------------------------------------------

struct Kernels {
  float (*dot1)(const float*, const float*, std::size_t);
  float (*l21)(const float*, const float*, std::size_t);
  void (*dot4)(const float*, const float* const*, std::size_t, float*);
  void (*l24)(const float*, const float* const*, std::size_t, float*);
};

constexpr Kernels kKernelTable[3] = {
    {dot_1_scalar, l2_1_scalar, dot_4_scalar, l2_4_scalar},
#if IDS_SIMD_X86
    {dot_1_sse42, l2_1_sse42, dot_4_sse42, l2_4_sse42},
    {dot_1_avx2, l2_1_avx2, dot_4_avx2, l2_4_avx2},
#else
    {dot_1_scalar, l2_1_scalar, dot_4_scalar, l2_4_scalar},
    {dot_1_scalar, l2_1_scalar, dot_4_scalar, l2_4_scalar},
#endif
};

inline const Kernels& kernels() {
  return kKernelTable[static_cast<int>(active_level())];
}

}  // namespace

float dot(const float* a, const float* b, std::size_t n) {
  return kernels().dot1(a, b, n);
}

float l2sq(const float* a, const float* b, std::size_t n) {
  return kernels().l21(a, b, n);
}

void dot_batch(const float* query, const float* rows, std::size_t num_rows,
               std::size_t dim, float* out) {
  const Kernels& k = kernels();
  std::size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* p[4] = {rows + r * dim, rows + (r + 1) * dim,
                         rows + (r + 2) * dim, rows + (r + 3) * dim};
    k.dot4(query, p, dim, out + r);
  }
  for (; r < num_rows; ++r) out[r] = k.dot1(query, rows + r * dim, dim);
}

void l2sq_batch(const float* query, const float* rows, std::size_t num_rows,
                std::size_t dim, float* out) {
  const Kernels& k = kernels();
  std::size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const float* p[4] = {rows + r * dim, rows + (r + 1) * dim,
                         rows + (r + 2) * dim, rows + (r + 3) * dim};
    k.l24(query, p, dim, out + r);
  }
  for (; r < num_rows; ++r) out[r] = k.l21(query, rows + r * dim, dim);
}

void self_dot_batch(const float* rows, std::size_t num_rows, std::size_t dim,
                    float* out) {
  const Kernels& k = kernels();
  for (std::size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * dim;
    out[r] = k.dot1(row, row, dim);
  }
}

void dot_batch_indexed(const float* query, const float* base, std::size_t dim,
                       const std::size_t* idx, std::size_t num, float* out) {
  const Kernels& k = kernels();
  std::size_t r = 0;
  for (; r + 4 <= num; r += 4) {
    const float* p[4] = {base + idx[r] * dim, base + idx[r + 1] * dim,
                         base + idx[r + 2] * dim, base + idx[r + 3] * dim};
    k.dot4(query, p, dim, out + r);
  }
  for (; r < num; ++r) out[r] = k.dot1(query, base + idx[r] * dim, dim);
}

void l2sq_batch_indexed(const float* query, const float* base, std::size_t dim,
                        const std::size_t* idx, std::size_t num, float* out) {
  const Kernels& k = kernels();
  std::size_t r = 0;
  for (; r + 4 <= num; r += 4) {
    const float* p[4] = {base + idx[r] * dim, base + idx[r + 1] * dim,
                         base + idx[r + 2] * dim, base + idx[r + 3] * dim};
    k.l24(query, p, dim, out + r);
  }
  for (; r < num; ++r) out[r] = k.l21(query, base + idx[r] * dim, dim);
}

// ---- Striped Smith–Waterman ---------------------------------------------
//
// Farrar layout over 8 signed int16 lanes: query position i (0-based) lives
// in lane i / segLen at stripe offset i % segLen, segLen = ceil(m / 8).
// Role mapping against the scalar Gotoh loop in models/smith_waterman.cpp:
// the scalar `e` (depends on the previous row, same column) is the striped
// in-column dependency handled by vF + the lazy fixup loop; the scalar `f`
// (same row, previous column) is carried across columns in the striped
// pvE array. Unlike the classic SSW lazy loop, the fixup here also raises
// the stored cross-column pvE from every corrected H, which makes the
// kernel *exact* full Gotoh — adjacent insertion/deletion chains score
// identically to the scalar DP, not just "close enough".
//
// Exactness of the end position: the scalar loop takes the first best cell
// in row-major (i, then j) order under a strict `>` update. Columns are
// processed j-outer here, so each column tracks its post-fixup max; when a
// column reaches (or ties) the running best, the stored H vector is
// destriped and rescanned in ascending i to recover the scalar tie-break.
//
// Overflow: all arithmetic saturates. H is non-negative, so a true score
// above int16 range forces the tracked best to exactly INT16_MAX — that is
// the (sound) overflow signal, and the caller reruns the int32 scalar DP.

SwScore sw_striped_i16(const std::uint8_t* a_idx, int m,
                       const std::uint8_t* b_idx, int n,
                       const std::int8_t* matrix, int num_classes,
                       int gap_open, int gap_extend) {
  SwScore result;
#if IDS_SIMD_X86
  if (active_level() == Level::kScalar) return result;
  // gap_extend >= 1 bounds the lazy loop; go + ge must fit int16.
  if (m <= 0 || n <= 0 || num_classes <= 0) return result;
  if (gap_extend < 1 || gap_open < 0 || gap_open + gap_extend > INT16_MAX) {
    return result;
  }

  const int seg = (m + 7) / 8;
  const std::size_t width = static_cast<std::size_t>(seg) * 8;

  // Striped score profile, one row per residue class of b. Padded lanes
  // (i >= m) score INT16_MIN so their H saturates below zero and clamps
  // back to 0 — they can never influence real cells or the best score.
  std::vector<std::int16_t> prof(static_cast<std::size_t>(num_classes) *
                                 width);
  for (int c = 0; c < num_classes; ++c) {
    for (int s = 0; s < seg; ++s) {
      for (int l = 0; l < 8; ++l) {
        const int i = l * seg + s;
        prof[(static_cast<std::size_t>(c) * seg + static_cast<std::size_t>(s)) *
                 8 +
             static_cast<std::size_t>(l)] =
            i < m ? static_cast<std::int16_t>(
                        matrix[static_cast<std::size_t>(a_idx[i]) *
                                   static_cast<std::size_t>(num_classes) +
                               static_cast<std::size_t>(c)])
                  : INT16_MIN;
      }
    }
  }

  std::vector<std::int16_t> hstore(width, 0);
  std::vector<std::int16_t> hload(width, 0);
  // Cross-column E (the scalar `f`): boundary value for the first real
  // column is max(0 - ge, H[i][0] - go - ge) = -ge, exactly as the scalar
  // per-row init produces.
  std::vector<std::int16_t> evec(width,
                                 static_cast<std::int16_t>(-gap_extend));

  const __m128i vGe = _mm_set1_epi16(static_cast<std::int16_t>(gap_extend));
  const __m128i vGoGe =
      _mm_set1_epi16(static_cast<std::int16_t>(gap_open + gap_extend));
  const __m128i vZero = _mm_setzero_si128();
  const __m128i vMin16 = _mm_set1_epi16(INT16_MIN);

  int best = 0;
  int best_i = 0;
  int best_j = 0;

  for (int j = 0; j < n; ++j) {
    const std::int16_t* prow =
        prof.data() + static_cast<std::size_t>(b_idx[j]) * width;
    // In-column F candidate for each lane's first element: unknown until
    // the lazy loop, so start at -inf. (Lane 0's true boundary is -ge,
    // which is negative and thus observationally identical.)
    __m128i vF = vMin16;
    // Diagonal seed: previous column's H shifted down one query position.
    // slli_si128 inserts zeros at lane 0 — the H[-1][j-1] = 0 boundary.
    __m128i vH = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        hstore.data() + static_cast<std::size_t>(seg - 1) * 8));
    vH = _mm_slli_si128(vH, 2);
    std::swap(hstore, hload);
    __m128i vColMax = vZero;

    for (int s = 0; s < seg; ++s) {
      vH = _mm_adds_epi16(
          vH, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                  prow + static_cast<std::size_t>(s) * 8)));
      __m128i vE = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          evec.data() + static_cast<std::size_t>(s) * 8));
      vH = _mm_max_epi16(vH, vE);
      vH = _mm_max_epi16(vH, vF);
      vH = _mm_max_epi16(vH, vZero);
      vColMax = _mm_max_epi16(vColMax, vH);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(
                           hstore.data() + static_cast<std::size_t>(s) * 8),
                       vH);
      const __m128i vHG = _mm_subs_epi16(vH, vGoGe);
      vE = _mm_max_epi16(_mm_subs_epi16(vE, vGe), vHG);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(
                           evec.data() + static_cast<std::size_t>(s) * 8),
                       vE);
      vF = _mm_max_epi16(_mm_subs_epi16(vF, vGe), vHG);
      vH = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          hload.data() + static_cast<std::size_t>(s) * 8));
    }

    // Lazy fixup: propagate F across lane boundaries until it can no
    // longer beat the H-derived gap starts already folded in above. Each
    // corrected H also re-raises the stored cross-column E — this is the
    // step that upgrades the classic approximation to exact Gotoh.
    for (int k = 0; k < 8; ++k) {
      vF = _mm_slli_si128(vF, 2);
      vF = _mm_insert_epi16(vF, INT16_MIN, 0);
      bool done = false;
      for (int s = 0; s < seg; ++s) {
        std::int16_t* hp = hstore.data() + static_cast<std::size_t>(s) * 8;
        __m128i vHs =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(hp));
        vHs = _mm_max_epi16(vHs, vF);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(hp), vHs);
        vColMax = _mm_max_epi16(vColMax, vHs);
        std::int16_t* ep = evec.data() + static_cast<std::size_t>(s) * 8;
        const __m128i vE2 = _mm_max_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ep)),
            _mm_subs_epi16(vHs, vGoGe));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(ep), vE2);
        vF = _mm_subs_epi16(vF, vGe);
        // Stop only when vF < H - (go+ge) *strictly* in every lane. The
        // classic non-strict check is wrong for gap_open == 0: a lane
        // whose H was just raised to vF has H - goge == vF - ge exactly,
        // and its downstream chain is not yet applied, so equality must
        // keep propagating.
        if (_mm_movemask_epi8(_mm_cmpgt_epi16(
                _mm_subs_epi16(vHs, vGoGe), vF)) == 0xFFFF) {
          done = true;
          break;
        }
      }
      if (done) break;
    }

    // Column max (post-fixup) and the scalar row-major tie-break.
    __m128i t = _mm_max_epi16(vColMax, _mm_srli_si128(vColMax, 8));
    t = _mm_max_epi16(t, _mm_srli_si128(t, 4));
    t = _mm_max_epi16(t, _mm_srli_si128(t, 2));
    const int cm = static_cast<std::int16_t>(_mm_extract_epi16(t, 0));
    if (cm > best || (cm == best && best > 0 && best_i > 1)) {
      int fi = -1;
      for (int i = 0; i < m; ++i) {
        if (hstore[static_cast<std::size_t>(i % seg) * 8 +
                   static_cast<std::size_t>(i / seg)] == cm) {
          fi = i;
          break;
        }
      }
      if (fi >= 0) {
        if (cm > best) {
          best = cm;
          best_i = fi + 1;
          best_j = j + 1;
        } else if (fi + 1 < best_i) {
          best_i = fi + 1;
          best_j = j + 1;
        }
      }
    }
  }

  result.used_simd = true;
  if (best == INT16_MAX) {
    result.overflow = true;
    return result;
  }
  result.score = best;
  result.end_a = best_i;
  result.end_b = best_j;
#else
  (void)a_idx;
  (void)m;
  (void)b_idx;
  (void)n;
  (void)matrix;
  (void)num_classes;
  (void)gap_open;
  (void)gap_extend;
#endif
  return result;
}

}  // namespace ids::simd
