#pragma once

// Shared dense-vector kernels: 4-way unrolled dot product and squared L2
// distance over float spans.
//
// The naive one-accumulator loops in the vector store and the IVF index
// serialize on the floating-point add latency (one FMA every ~4 cycles).
// Four independent accumulators break the dependence chain so the compiler
// can keep the FMA pipes busy, and the fixed association order keeps the
// result deterministic across builds (no -ffast-math required). Both the
// exact scan and the IVF path must use these so their scores agree bit for
// bit (recall tests compare the two directly).

#include <cstddef>
#include <span>

namespace ids {

inline float dot_kernel(const float* a, const float* b, std::size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3) + tail;
}

inline float l2sq_kernel(const float* a, const float* b, std::size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  float tail = 0.0f;
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    tail += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3) + tail;
}

inline float dot_kernel(std::span<const float> a, std::span<const float> b) {
  return dot_kernel(a.data(), b.data(), a.size());
}

inline float l2sq_kernel(std::span<const float> a, std::span<const float> b) {
  return l2sq_kernel(a.data(), b.data(), a.size());
}

}  // namespace ids
