#pragma once

// Centralized SIMD kernel layer with runtime dispatch (ISSUE 7 tentpole).
//
// Every raw intrinsic in the tree lives behind this interface (lint rule 10
// bans <immintrin.h> outside src/common/simd.*). The layer exposes three
// dispatch levels — scalar, SSE4.2, AVX2 — resolved once at startup from
// CPUID, overridable with the IDS_SIMD_LEVEL environment variable
// ("scalar", "sse4.2", "avx2"; requests above the detected level clamp
// down) and at runtime via set_level() for the equivalence tests that
// sweep every level in one process.
//
// Determinism contract (see DESIGN.md §11): the float kernels accumulate
// into a fixed set of 8 "virtual lanes" — lane l sums elements with index
// ≡ l (mod 8) in input order — and reduce them through one pinned tree:
// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). The scalar path materializes the
// 8 lanes as a float array, SSE4.2 as two 4-wide vectors, AVX2 as one
// 8-wide vector; each performs the *same* multiply-then-add sequence per
// lane (simd.cpp is compiled with -ffp-contract=off so no path fuses into
// FMA), so results are bit-identical across all dispatch levels. Exact
// scan vs IVF recall tests compare scores directly, and modeled clocks
// feed the KernelEquivalence goldens — both rely on this.
//
// Integer kernels (striped Smith–Waterman, hash-group byte scans) are
// exact by construction at every level.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#if defined(__x86_64__) || defined(_M_X64)
#define IDS_SIMD_X86 1
#include <immintrin.h>
#else
#define IDS_SIMD_X86 0
#endif

namespace ids::simd {

/// Dispatch levels, ordered: a level implies every lower one.
enum class Level : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// Best level this CPU supports (CPUID; computed once).
Level detected_level();

/// Lowercase display name: "scalar", "sse4.2", "avx2".
const char* level_name(Level level);

/// Parses a level name (accepts "sse42" for "sse4.2"); nullopt on junk.
std::optional<Level> parse_level(std::string_view s);

/// Forces the active level (clamped to detected_level()); returns the
/// level actually installed and refreshes the ids_simd_level gauge.
/// Intended for tests and benchmarks sweeping levels in-process.
Level set_level(Level level);

namespace detail {
// -1 until the first resolution (CPUID + IDS_SIMD_LEVEL env override).
extern std::atomic<int> g_active_level;
Level init_level();
}  // namespace detail

/// The currently active dispatch level. First call resolves CPUID and the
/// IDS_SIMD_LEVEL override; later calls are one relaxed atomic load.
inline Level active_level() {
  int v = detail::g_active_level.load(std::memory_order_relaxed);
  return v >= 0 ? static_cast<Level>(v) : detail::init_level();
}

// ---- Dense float kernels (virtual-lane-8, pinned reduction tree) --------

/// Number of virtual accumulation lanes in every float kernel.
inline constexpr std::size_t kFloatLanes = 8;

/// Dot product of a·b over n floats.
float dot(const float* a, const float* b, std::size_t n);

/// Squared L2 distance between a and b over n floats.
float l2sq(const float* a, const float* b, std::size_t n);

/// Batched scan: one query against num_rows contiguous row-major
/// candidates of width dim; out[r] is bit-identical to
/// dot(query, rows + r*dim, dim) at every dispatch level.
void dot_batch(const float* query, const float* rows, std::size_t num_rows,
               std::size_t dim, float* out);
void l2sq_batch(const float* query, const float* rows, std::size_t num_rows,
                std::size_t dim, float* out);

/// Row self-dots: out[r] = dot(row_r, row_r, dim) (cosine denominators).
void self_dot_batch(const float* rows, std::size_t num_rows, std::size_t dim,
                    float* out);

/// Gathered batch over scattered rows: out[i] scores row idx[i], i.e.
/// dot(query, base + idx[i]*dim, dim) — the IVF cluster-member path.
void dot_batch_indexed(const float* query, const float* base, std::size_t dim,
                       const std::size_t* idx, std::size_t num, float* out);
void l2sq_batch_indexed(const float* query, const float* base, std::size_t dim,
                        const std::size_t* idx, std::size_t num, float* out);

// ---- Striped Smith–Waterman (Farrar), saturating int16 ------------------

struct SwScore {
  int score = 0;   // best local alignment score
  int end_a = 0;   // end position in a (exclusive), scalar tie-break order
  int end_b = 0;   // end position in b (exclusive)
  bool overflow = false;   // int16 saturated: caller must rerun scalar
  bool used_simd = false;  // false when the scalar level is active
};

/// Farrar-style striped affine-gap local alignment over saturating int16,
/// exact Gotoh semantics (the lazy-E correction updates H, E and F to the
/// fixpoint, so adjacent insertion/deletion paths score identically to the
/// scalar DP). a_idx/b_idx are residue-class indices into the
/// num_classes × num_classes substitution matrix. When used_simd is true
/// and overflow is false, {score, end_a, end_b} equal the scalar int32 DP
/// exactly, including its first-(i,j)-in-row-major tie-break for the end
/// position. Returns used_simd=false at the scalar level or when the
/// matrix/gap combination cannot guarantee exactness (min entry below
/// -2*(gap_open+gap_extend) — never true for BLOSUM62 defaults).
SwScore sw_striped_i16(const std::uint8_t* a_idx, int m,
                       const std::uint8_t* b_idx, int n,
                       const std::int8_t* matrix, int num_classes,
                       int gap_open, int gap_extend);

// ---- 16-slot hash-group metadata scan (SwissTable-style) ----------------

/// Width of one control-byte group in the flat hash containers.
inline constexpr std::size_t kGroupWidth = 16;

/// Control byte marking a vacant slot. Full slots store a 7-bit tag
/// (top bits of the hash), so the high bit distinguishes empty exactly.
inline constexpr std::uint8_t kCtrlEmpty = 0x80;

/// Bitmask (bit i ⇔ ctrl[i] == tag) over one 16-byte group. Exact — the
/// same mask at every dispatch level.
inline std::uint32_t group_match(const std::uint8_t* ctrl, std::uint8_t tag) {
#if IDS_SIMD_X86
  if (active_level() != Level::kScalar) {
    // SSE2 is x86-64 baseline, so this path needs no target attribute.
    __m128i g =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
    __m128i t = _mm_set1_epi8(static_cast<char>(tag));
    return static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(g, t)));
  }
#endif
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    m |= ctrl[i] == tag ? (1u << i) : 0u;
  }
  return m;
}

/// Bitmask of vacant slots in one 16-byte group (high-bit scan).
inline std::uint32_t group_match_empty(const std::uint8_t* ctrl) {
#if IDS_SIMD_X86
  if (active_level() != Level::kScalar) {
    __m128i g =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
    return static_cast<std::uint32_t>(_mm_movemask_epi8(g));
  }
#endif
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    m |= (ctrl[i] & 0x80u) ? (1u << i) : 0u;
  }
  return m;
}

}  // namespace ids::simd
