#pragma once

// Clang thread-safety annotations and an annotated mutex wrapper.
//
// Every mutex-protected subsystem in this repository declares its locking
// contract with these macros so that Clang's -Wthread-safety analysis can
// machine-check it at compile time: which members a mutex guards
// (IDS_GUARDED_BY), which private helpers assume the lock is already held
// (IDS_REQUIRES), and which public entry points must never be called with
// it held (IDS_EXCLUDES). On GCC (and any compiler without the capability
// attributes) every macro expands to nothing, so the annotations are
// zero-cost documentation there and enforced contract under Clang.
//
// Use ids::Mutex + ids::MutexLock instead of naked std::mutex +
// std::lock_guard everywhere outside this directory — tools/lint.sh
// enforces that ban so new code cannot silently opt out of the analysis.

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define IDS_THREAD_SAFETY_ANALYSIS_ENABLED 1
#endif
#endif

#ifdef IDS_THREAD_SAFETY_ANALYSIS_ENABLED
#define IDS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IDS_THREAD_SAFETY_ANALYSIS_ENABLED 0
#define IDS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define IDS_CAPABILITY(x) IDS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires in its constructor, releases in its
/// destructor.
#define IDS_SCOPED_CAPABILITY IDS_THREAD_ANNOTATION(scoped_lockable)

/// Data member is protected by the given mutex.
#define IDS_GUARDED_BY(x) IDS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define IDS_PT_GUARDED_BY(x) IDS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called with the listed mutexes held (exclusive).
#define IDS_REQUIRES(...) \
  IDS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function may only be called with the listed mutexes held (shared).
#define IDS_REQUIRES_SHARED(...) \
  IDS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex and does not release it before returning.
#define IDS_ACQUIRE(...) \
  IDS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a mutex the caller held.
#define IDS_RELEASE(...) \
  IDS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the mutex; first argument is the success
/// return value.
#define IDS_TRY_ACQUIRE(...) \
  IDS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed mutexes held (deadlock
/// prevention for non-reentrant locks).
#define IDS_EXCLUDES(...) IDS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given mutex.
#define IDS_RETURN_CAPABILITY(x) IDS_THREAD_ANNOTATION(lock_returned(x))

/// Asserts at runtime that the calling thread holds the mutex, informing
/// the static analysis.
#define IDS_ASSERT_CAPABILITY(x) IDS_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Use sparingly and
/// leave a comment explaining why the contract cannot be expressed.
#define IDS_NO_THREAD_SAFETY_ANALYSIS \
  IDS_THREAD_ANNOTATION(no_thread_safety_analysis)

// --- ids-analyzer contract markers (tools/analyzer, DESIGN.md §8) -----------
//
// These two are consumed by the in-tree interprocedural checker, not by
// Clang: they compile to nothing on every compiler.

/// Declares that a function may block (sleep, wait, join, file/process
/// I/O, or a callee that does). Inside the function, [blocking-under-lock]
/// findings are suppressed — the author has accepted the blocking — and
/// for callers the function counts as a blocking sink: calling it while an
/// ids::MutexLock is held is a finding at the call site.
#define IDS_MAY_BLOCK

/// Declares a sanctioned wall-clock read outside src/telemetry/ (e.g. log
/// timestamps). Suppresses [wallclock-in-engine] for the function.
#define IDS_WALLCLOCK_OK

/// Waives one declaration from the shared-state certificate
/// (`ids-analyzer --certify=concurrent-exec`): the annotated member,
/// static, or global is mutable shared state that is only sound while the
/// engine serves ONE query at a time (e.g. ingest-time mutation that is
/// frozen before serving). The reason is an identifier-style tag, e.g.
/// `IDS_SINGLE_QUERY_ONLY(ingest_mutable_frozen_before_serve)`, and the
/// set of waivers doubles as the worklist for concurrent query serving
/// (ROADMAP item 1). Trails the declarator like IDS_GUARDED_BY; expands to
/// nothing on every compiler.
#define IDS_SINGLE_QUERY_ONLY(reason)

/// Declares an ingest→freeze→serve epoch for one field: the annotated
/// member is mutable only until the owning class's named freeze method
/// (e.g. `IDS_FROZEN_AFTER(finalize)`) has run, and is immutable — hence
/// safe to read from any number of concurrent queries — afterwards. The
/// phase rule family ([phase-discipline], [frozen-ingest-guard]) verifies
/// the contract: every write site must be ingest-phase (a constructor,
/// the freeze method itself, or a mutator that checks `!frozen()`), and
/// no write may be reachable from `IdsEngine::execute`. On the
/// `--certify=concurrent-exec` ladder these fields land on the
/// `frozen-after-init` rung instead of needing an IDS_SINGLE_QUERY_ONLY
/// waiver. Trails the declarator like IDS_GUARDED_BY; expands to nothing
/// on every compiler.
#define IDS_FROZEN_AFTER(freeze_method)

/// Declares that calling this method may invalidate views (spans,
/// string_views, references, pointers, iterators) previously derived from
/// the named container — input for the [view-invalidation] summaries when
/// the inference cannot see it (storage behind an opaque handle, body in a
/// TU the analyzer is not given). Trails the declarator, e.g.
/// `void compact() IDS_INVALIDATES(rows_);`. Expands to nothing.
#define IDS_INVALIDATES(container)

/// Declares that a mutating method preserves existing views into the
/// object (deque-style stable storage, arena append, node-based rehash).
/// The [view-invalidation] summary inference drops the method, so calling
/// it between a view's derivation and use is not a finding. Expands to
/// nothing.
#define IDS_STABLE_STORAGE

/// Audited waiver for the lifetime rule family ([view-invalidation],
/// [dangling-return], [temporary-bound-view], [task-outlives-capture]):
/// suppresses those findings inside the annotated function. The reason is
/// an identifier-style tag recorded in the finding notes, e.g.
/// `IDS_VIEW_OK(span_rederived_after_every_mutation)`. Trails the
/// declarator; expands to nothing on every compiler.
#define IDS_VIEW_OK(reason)

namespace ids {

/// std::mutex with the capability annotation. Satisfies BasicLockable /
/// Lockable, but prefer MutexLock so the scope of the critical section is
/// visible to the analysis.
class IDS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IDS_ACQUIRE() { mu_.lock(); }
  void unlock() IDS_RELEASE() { mu_.unlock(); }
  bool try_lock() IDS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII guard over ids::Mutex (the annotated std::lock_guard analogue).
class IDS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IDS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() IDS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with ids::Mutex. Internally drives the
/// wrapped std::mutex directly, so the analysis never sees an
/// unlock-without-hold inside library code.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits for `pred`, reacquires `mu`. Caller
  /// must hold `mu`, and holds it again on return.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) IDS_REQUIRES(mu) IDS_MAY_BLOCK {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();  // ownership stays with the caller's MutexLock
  }

  /// Timed wait: atomically releases `mu`, waits until `pred` holds or
  /// `timeout` elapses, reacquires `mu`. Returns pred()'s value at wake-up.
  /// This is the sanctioned way to pace a background thread (the sampling
  /// profiler's tick) — tools/lint.sh bans raw host-side sleeps in src/
  /// precisely so pacing stays interruptible through the condvar.
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) IDS_REQUIRES(mu) IDS_MAY_BLOCK {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const bool ok = cv_.wait_for(lk, timeout, std::move(pred));
    lk.release();  // ownership stays with the caller's MutexLock
    return ok;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ids
