#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace ids {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      cv_.wait(mutex_, [this]() IDS_REQUIRES(mutex_) {
        return stopping_ || !tasks_.empty();
      });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Atomic work-stealing counter: each participant grabs the next index.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto done = std::make_shared<std::atomic<std::size_t>>(0);
  Mutex done_mutex;
  CondVar done_cv;

  auto run_chunk = [next, done, n, &fn, &done_mutex, &done_cv] {
    std::size_t processed = 0;
    for (;;) {
      std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
      ++processed;
    }
    if (processed > 0) {
      std::size_t total = done->fetch_add(processed) + processed;
      if (total >= n) {
        MutexLock lock(done_mutex);
        done_cv.notify_all();
      }
    }
  };

  std::size_t helpers = std::min(workers_.size(), n - 1);
  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.push(run_chunk);
    }
  }
  cv_.notify_all();

  run_chunk();  // caller participates

  MutexLock lock(done_mutex);
  done_cv.wait(done_mutex, [&] { return done->load() >= n; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ids
