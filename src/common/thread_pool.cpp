#include "common/thread_pool.h"

#include <atomic>
#include <latch>
#include <utility>

#include "telemetry/trace.h"

namespace ids {

ThreadPool::ThreadPool(std::size_t threads) {
  auto& registry = telemetry::MetricsRegistry::global();
  queue_depth_ = registry.gauge("ids_threadpool_queue_depth");
  tasks_total_ = registry.counter("ids_threadpool_tasks_total");
  task_wait_seconds_ = registry.histogram(
      "ids_threadpool_task_wait_seconds", telemetry::latency_seconds_buckets());
  task_run_seconds_ = registry.histogram(
      "ids_threadpool_task_run_seconds", telemetry::latency_seconds_buckets());

  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_task(Task task) {
  const std::uint64_t start = telemetry::Tracer::wall_now_ns();
  task_wait_seconds_->observe(
      static_cast<double>(start - task.enqueued_ns) / 1e9);
  task.fn();
  task_run_seconds_->observe(
      static_cast<double>(telemetry::Tracer::wall_now_ns() - start) / 1e9);
  tasks_total_->inc();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      cv_.wait(mutex_, [this]() IDS_REQUIRES(mutex_) {
        return stopping_ || !tasks_.empty();
      });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      queue_depth_->set(static_cast<double>(tasks_.size()));
    }
    run_task(std::move(task));
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Atomic work-stealing counter: each participant grabs the next index.
  // All coordination state lives on this stack frame (no shared_ptr
  // control blocks per call); that is safe because the latch counts chunk
  // *completions* — every enqueued chunk, including stragglers that
  // dequeue after the work ran dry, finishes before we return, so no
  // chunk can outlive the frame it references.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  std::atomic<std::size_t> next{0};
  std::latch remaining(static_cast<std::ptrdiff_t>(helpers) + 1);

  auto run_chunk = [&next, &remaining, n, &fn] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
    }
    remaining.count_down();
  };

  const std::uint64_t enqueued = telemetry::Tracer::wall_now_ns();
  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.push(Task{run_chunk, enqueued});
    }
    queue_depth_->set(static_cast<double>(tasks_.size()));
  }
  cv_.notify_all();

  run_task(Task{run_chunk, enqueued});  // caller participates

  remaining.wait();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;  // lint:allow-global: internally synchronized
  return pool;
}

}  // namespace ids
