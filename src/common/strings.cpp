#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace ids {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string human_bytes(std::uint64_t bytes) {
  static constexpr const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1000.0 && u < 5) {
    v /= 1000.0;
    ++u;
  }
  char buf[32];
  if (v >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string human_count(std::uint64_t n) {
  struct Scale {
    std::uint64_t factor;
    const char* name;
  };
  static const Scale scales[] = {
      {1000000000000ull, "Trillion"},
      {1000000000ull, "Billion"},
      {1000000ull, "Million"},
      {1000ull, "Thousand"},
  };
  for (const auto& s : scales) {
    if (n >= s.factor) {
      double v = static_cast<double>(n) / static_cast<double>(s.factor);
      char buf[48];
      if (v >= 100.0) {
        std::snprintf(buf, sizeof(buf), "%.0f %s", v, s.name);
      } else {
        std::snprintf(buf, sizeof(buf), "%.1f %s", v, s.name);
      }
      return buf;
    }
  }
  return std::to_string(n);
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

}  // namespace ids
