#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "common/thread_annotations.h"

namespace ids {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

/// Small stable per-thread id (order of first log call), far more readable
/// in interleaved output than the opaque std::thread::id hash.
int thread_log_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// ISO-8601 UTC with millisecond resolution: 2026-08-05T14:03:22.123Z.
/// Log-line timestamps are the sanctioned wall-clock read outside
/// src/telemetry/ — they never feed modeled time.
void format_timestamp(char* buf, std::size_t size) IDS_WALLCLOCK_OK {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {
void log_line(LogLevel level, const std::string& msg) {
  char ts[80];  // sized so snprintf cannot truncate even for absurd tm years
  format_timestamp(ts, sizeof(ts));
  const int tid = thread_log_id();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[ids %s %s t%02d] %s\n", level_name(level), ts, tid,
               msg.c_str());
}

bool should_log_every_n(std::atomic<std::uint64_t>* counter, std::uint64_t n) {
  if (n <= 1) return true;
  return counter->fetch_add(1, std::memory_order_relaxed) % n == 0;
}
}  // namespace internal

}  // namespace ids
